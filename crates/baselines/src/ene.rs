//! Ene, Im & Moseley (KDD 2011): the first constant-round MapReduce
//! k-center, based on iterative sampling.
//!
//! **Simplification note (DESIGN.md §2):** the original algorithm couples
//! its sampling rate to the per-machine memory `k n^δ`; we implement the
//! same sample-and-prune skeleton with a halving schedule — each pass
//! samples surviving points, adds them to the candidate set, and prunes
//! the half of the survivors closest to the candidates. When few enough
//! points survive, they are gathered centrally and GMM picks the final k
//! centers from candidates ∪ survivors. This preserves the algorithm's
//! structure (random candidate pool, distance-based pruning, final
//! sequential selection) and its empirical behaviour: feasible solutions
//! with a constant but noticeably worse factor than GMM-based methods.

use mpc_core::common::{covering_radius, to_point_ids};
use mpc_core::gmm::gmm;
use mpc_core::{Params, Telemetry};
use mpc_metric::{dist_point_to_set, MetricSpace, PointId};
use mpc_sim::Cluster;
use rand::RngExt;

/// Result of [`ene_kcenter`].
#[derive(Debug, Clone)]
pub struct EneResult {
    /// The k centers.
    pub centers: Vec<PointId>,
    /// Realized covering radius.
    pub radius: f64,
    /// Sampling passes used.
    pub passes: u32,
    /// Measured rounds/communication.
    pub telemetry: Telemetry,
}

const SALT_ENE: u64 = 0x33;

/// Runs the iterative-sampling MPC k-center baseline.
pub fn ene_kcenter<M: MetricSpace + ?Sized>(metric: &M, k: usize, params: &Params) -> EneResult {
    assert!(k >= 1);
    let n = metric.n();
    let w = metric.point_weight();
    let mut cluster = Cluster::new(params.m, params.seed);
    let partition = params.partition.build(n, params.m, params.seed);
    let mut survivors: Vec<Vec<u32>> = partition.all_items().to_vec();

    // Stop sampling when the survivors would fit one machine's coreset
    // budget anyway.
    let gather_threshold = (4 * params.m * k).max(64);
    let mut candidates: Vec<u32> = Vec::new();
    let mut passes = 0u32;

    loop {
        let total: u64 = cluster.all_reduce(
            "ene/count",
            survivors.iter().map(|s| s.len() as u64).collect(),
            1,
            |a, b| a + b,
        );
        if (total as usize) <= gather_threshold {
            break;
        }
        passes += 1;
        // Sample each survivor w.p. ~ 2k/total (expected 2k new candidates
        // per pass) and broadcast the sample.
        let rate = ((2 * k) as f64 / total as f64).min(1.0);
        let sampled: Vec<Vec<u32>> = cluster.map(&survivors, |i, si| {
            let mut rng = cluster.rng(i, SALT_ENE);
            si.iter()
                .copied()
                .filter(|_| rng.random_range(0.0..1.0) < rate)
                .collect()
        });
        let new_cands = cluster.all_broadcast("ene/sample", sampled, w);
        candidates.extend(&new_cands);
        let cand_ids = to_point_ids(&candidates);

        // Prune: globally drop the closest half of the survivors. Each
        // machine reports a local median estimate; we use the max of local
        // medians as the pruning distance (coarse but round-cheap).
        let med: Vec<f64> = cluster.map(&survivors, |_, si| {
            let mut d: Vec<f64> = si
                .iter()
                .map(|&v| dist_point_to_set(metric, PointId(v), &cand_ids))
                .collect();
            if d.is_empty() {
                return 0.0;
            }
            let mid = d.len() / 2;
            d.select_nth_unstable_by(mid, f64::total_cmp);
            d[mid]
        });
        let cut = cluster.reduce("ene/median", med, 1, f64::max);
        cluster.broadcast("ene/cut", 1, 1);
        let next: Vec<Vec<u32>> = cluster.map(&survivors, |_, si| {
            si.iter()
                .copied()
                .filter(|&v| dist_point_to_set(metric, PointId(v), &cand_ids) > cut)
                .collect()
        });
        let next_total: usize = next.iter().map(Vec::len).sum();
        let cur_total: usize = survivors.iter().map(Vec::len).sum();
        survivors = next;
        if next_total >= cur_total {
            break; // cut made no progress (e.g. heavy duplicates): bail out
        }
    }

    // Gather remainder, pick final centers sequentially.
    let rest = cluster.gather("ene/rest", survivors.clone(), w);
    candidates.extend(rest);
    candidates.sort_unstable();
    candidates.dedup();
    let centers_raw = gmm(metric, &candidates, k).selected;
    let all_sets = partition.all_items().to_vec();
    let radius = covering_radius(&mut cluster, metric, &all_sets, &centers_raw);
    EneResult {
        centers: to_point_ids(&centers_raw),
        radius,
        passes,
        telemetry: Telemetry::from_ledger(cluster.ledger()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpc_metric::{datasets, EuclideanSpace};

    #[test]
    fn produces_feasible_clustering() {
        let metric = EuclideanSpace::new(datasets::uniform_cube(600, 2, 3));
        let params = Params::practical(4, 0.1, 3);
        let res = ene_kcenter(&metric, 5, &params);
        assert!(res.centers.len() <= 5 && !res.centers.is_empty());
        assert!(res.radius.is_finite() && res.radius > 0.0);
    }

    #[test]
    fn radius_is_within_constant_of_gmm() {
        let metric = EuclideanSpace::new(datasets::gaussian_clusters(800, 2, 5, 0.02, 7));
        let params = Params::practical(4, 0.1, 7);
        let res = ene_kcenter(&metric, 5, &params);
        let gmm_ref = mpc_core::kcenter::sequential_gmm_kcenter(&metric, 5);
        assert!(
            res.radius <= 10.0 * gmm_ref.radius + 1e-9,
            "ene {} vs gmm {} — sampling baseline drifted beyond its constant",
            res.radius,
            gmm_ref.radius
        );
    }

    #[test]
    fn small_inputs_skip_sampling() {
        let metric = EuclideanSpace::new(datasets::uniform_cube(30, 2, 1));
        let params = Params::practical(2, 0.1, 1);
        let res = ene_kcenter(&metric, 3, &params);
        assert_eq!(res.passes, 0);
        assert!(res.centers.len() <= 3);
    }

    #[test]
    fn deterministic_given_seed() {
        let metric = EuclideanSpace::new(datasets::uniform_cube(500, 2, 11));
        let params = Params::practical(4, 0.1, 11);
        let a = ene_kcenter(&metric, 6, &params);
        let b = ene_kcenter(&metric, 6, &params);
        assert_eq!(a.centers, b.centers);
    }
}
