//! Exact solvers for small instances — the ground truth behind the
//! approximation-ratio columns of experiments E1–E3.
//!
//! Both problems are NP-hard, so these are exponential branch-and-bound
//! searches intended for `n ≲ 60` with small `k`:
//!
//! * **k-center**: binary search over the O(n²) candidate radii; a radius
//!   is feasible iff a depth-k branching (choose an uncovered point, try
//!   every center that covers it) succeeds.
//! * **k-diversity**: binary search over candidate distances; a distance
//!   `d` is achievable iff the graph with edges `dist < d` has an
//!   independent set of size k (branch and bound with a remaining-vertex
//!   pruning rule).

use mpc_metric::{dist_point_to_set, MetricSpace, PointId};

/// Exact optimal k-center. Returns `(radius, centers)` with
/// `|centers| ≤ k`. Exponential in `k`; intended for small instances.
pub fn exact_kcenter<M: MetricSpace + ?Sized>(metric: &M, k: usize) -> (f64, Vec<PointId>) {
    assert!(k >= 1);
    let n = metric.n();
    let all: Vec<PointId> = (0..n as u32).map(PointId).collect();
    if n <= k {
        return (0.0, all);
    }
    let mut cands = Vec::with_capacity(n * (n - 1) / 2);
    for i in 0..n as u32 {
        for j in (i + 1)..n as u32 {
            cands.push(metric.dist(PointId(i), PointId(j)));
        }
    }
    cands.push(0.0); // duplicate-only inputs can be covered at radius 0
    cands.sort_unstable_by(f64::total_cmp);
    cands.dedup();

    let feasible = |r: f64| -> Option<Vec<PointId>> {
        let mut centers = Vec::with_capacity(k);
        if cover_branch(metric, &all, r, k, &mut centers) {
            Some(centers)
        } else {
            None
        }
    };

    // Binary search the smallest feasible candidate radius.
    let mut lo = 0usize;
    let mut hi = cands.len() - 1;
    debug_assert!(
        feasible(cands[hi]).is_some(),
        "max distance always feasible for k >= 1"
    );
    if let Some(c) = feasible(cands[lo]) {
        return (cands[lo], c);
    }
    while hi - lo > 1 {
        let mid = lo + (hi - lo) / 2;
        if feasible(cands[mid]).is_some() {
            hi = mid;
        } else {
            lo = mid;
        }
    }
    let centers = feasible(cands[hi]).expect("hi feasible by invariant");
    (cands[hi], centers)
}

/// Depth-first cover search: find ≤ `k` centers covering every point
/// within `r`.
fn cover_branch<M: MetricSpace + ?Sized>(
    metric: &M,
    all: &[PointId],
    r: f64,
    k: usize,
    centers: &mut Vec<PointId>,
) -> bool {
    // First uncovered point (deterministic: lowest id).
    let uncovered = all
        .iter()
        .find(|&&p| dist_point_to_set(metric, p, centers) > r);
    let Some(&p) = uncovered else {
        return true;
    };
    if centers.len() == k {
        return false;
    }
    // Any point within r of p is a candidate center for p.
    for &c in all {
        if metric.dist(p, c) <= r {
            centers.push(c);
            if cover_branch(metric, all, r, k, centers) {
                return true;
            }
            centers.pop();
        }
    }
    false
}

/// Exact optimal k-diversity. Returns `(diversity, subset)` with
/// `|subset| = min(k, n)`. Exponential; intended for small instances.
pub fn exact_diversity<M: MetricSpace + ?Sized>(metric: &M, k: usize) -> (f64, Vec<PointId>) {
    assert!(k >= 2, "diversity needs k >= 2");
    let n = metric.n();
    let all: Vec<PointId> = (0..n as u32).map(PointId).collect();
    if n <= k {
        let div = mpc_metric::min_pairwise_distance(metric, &all);
        return (div, all);
    }
    let mut cands = Vec::with_capacity(n * (n - 1) / 2);
    for i in 0..n as u32 {
        for j in (i + 1)..n as u32 {
            cands.push(metric.dist(PointId(i), PointId(j)));
        }
    }
    cands.sort_unstable_by(f64::total_cmp);
    cands.dedup();

    // predicate(d): exists a k-subset with min pairwise distance >= d.
    let feasible = |d: f64| -> Option<Vec<PointId>> {
        let mut chosen = Vec::with_capacity(k);
        if spread_branch(metric, &all, d, k, 0, &mut chosen) {
            Some(chosen)
        } else {
            None
        }
    };

    // Monotone decreasing in d: find the largest feasible candidate.
    let mut lo = 0usize; // smallest distance: always feasible (min pairwise)
    let mut hi = cands.len() - 1;
    debug_assert!(feasible(cands[lo]).is_some());
    if let Some(s) = feasible(cands[hi]) {
        return (cands[hi], s);
    }
    while hi - lo > 1 {
        let mid = lo + (hi - lo) / 2;
        if feasible(cands[mid]).is_some() {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    let subset = feasible(cands[lo]).expect("lo feasible by invariant");
    (cands[lo], subset)
}

/// Depth-first search for `k` points with pairwise distance ≥ `d`,
/// scanning ids in order with a counting prune.
fn spread_branch<M: MetricSpace + ?Sized>(
    metric: &M,
    all: &[PointId],
    d: f64,
    k: usize,
    start: usize,
    chosen: &mut Vec<PointId>,
) -> bool {
    if chosen.len() == k {
        return true;
    }
    // Prune: not enough vertices left to complete the subset.
    if all.len() - start < k - chosen.len() {
        return false;
    }
    for i in start..all.len() {
        let p = all[i];
        if chosen.iter().all(|&q| metric.dist(p, q) >= d) {
            chosen.push(p);
            if spread_branch(metric, all, d, k, i + 1, chosen) {
                return true;
            }
            chosen.pop();
        }
        // Re-check the counting prune as we consume the suffix.
        if all.len() - i - 1 < k - chosen.len() {
            return false;
        }
    }
    false
}

/// Exact optimal k-supplier: `(radius, suppliers)` covering every customer.
/// Exponential in `k`; intended for small instances.
pub fn exact_ksupplier<M: MetricSpace + ?Sized>(
    metric: &M,
    customers: &[u32],
    suppliers: &[u32],
    k: usize,
) -> (f64, Vec<PointId>) {
    assert!(k >= 1 && !customers.is_empty() && !suppliers.is_empty());
    let cust: Vec<PointId> = customers.iter().map(|&c| PointId(c)).collect();
    let supp: Vec<PointId> = suppliers.iter().map(|&s| PointId(s)).collect();

    // Candidate radii: customer-supplier distances.
    let mut cands = Vec::with_capacity(cust.len() * supp.len());
    for &c in &cust {
        for &s in &supp {
            cands.push(metric.dist(c, s));
        }
    }
    cands.sort_unstable_by(f64::total_cmp);
    cands.dedup();

    fn cover<M: MetricSpace + ?Sized>(
        metric: &M,
        cust: &[PointId],
        supp: &[PointId],
        r: f64,
        k: usize,
        chosen: &mut Vec<PointId>,
    ) -> bool {
        let uncovered = cust
            .iter()
            .find(|&&c| dist_point_to_set(metric, c, chosen) > r);
        let Some(&c) = uncovered else { return true };
        if chosen.len() == k {
            return false;
        }
        for &s in supp {
            if metric.dist(c, s) <= r {
                chosen.push(s);
                if cover(metric, cust, supp, r, k, chosen) {
                    return true;
                }
                chosen.pop();
            }
        }
        false
    }

    let feasible = |r: f64| -> Option<Vec<PointId>> {
        let mut chosen = Vec::with_capacity(k);
        cover(metric, &cust, &supp, r, k, &mut chosen).then_some(chosen)
    };

    let mut lo = 0usize;
    let mut hi = cands.len() - 1;
    assert!(
        feasible(cands[hi]).is_some(),
        "even the largest customer-supplier distance cannot cover: impossible"
    );
    if let Some(s) = feasible(cands[lo]) {
        return (cands[lo], s);
    }
    while hi - lo > 1 {
        let mid = lo + (hi - lo) / 2;
        if feasible(cands[mid]).is_some() {
            hi = mid;
        } else {
            lo = mid;
        }
    }
    let chosen = feasible(cands[hi]).expect("hi feasible by invariant");
    (cands[hi], chosen)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpc_metric::{datasets, min_pairwise_distance, EuclideanSpace, PointSet};

    fn line(xs: &[f64]) -> EuclideanSpace {
        EuclideanSpace::new(PointSet::from_rows(
            &xs.iter().map(|&x| vec![x]).collect::<Vec<_>>(),
        ))
    }

    #[test]
    fn kcenter_on_line_is_exact() {
        // Points 0, 1, 2, 10, 11, 12: k=2 optimal radius 1 (centers 1, 11).
        let metric = line(&[0.0, 1.0, 2.0, 10.0, 11.0, 12.0]);
        let (r, centers) = exact_kcenter(&metric, 2);
        assert_eq!(r, 1.0);
        assert_eq!(centers.len(), 2);
    }

    #[test]
    fn kcenter_radius_zero_for_duplicates() {
        let metric = line(&[5.0, 5.0, 5.0]);
        let (r, _) = exact_kcenter(&metric, 1);
        assert_eq!(r, 0.0);
    }

    #[test]
    fn kcenter_is_lower_bound_for_approximations() {
        let metric = EuclideanSpace::new(datasets::uniform_cube(25, 2, 3));
        for k in [2, 3] {
            let (opt, _) = exact_kcenter(&metric, k);
            let gmm = mpc_core::kcenter::sequential_gmm_kcenter(&metric, k);
            let hs = crate::hochbaum_shmoys::hochbaum_shmoys_kcenter(&metric, k);
            assert!(gmm.radius >= opt - 1e-9, "k={k}");
            assert!(hs.radius >= opt - 1e-9, "k={k}");
            assert!(gmm.radius <= 2.0 * opt + 1e-9, "GMM 2-approx, k={k}");
            assert!(hs.radius <= 2.0 * opt + 1e-9, "HS 2-approx, k={k}");
        }
    }

    #[test]
    fn diversity_on_line_is_exact() {
        // Points 0, 1, 5, 6, 10: k=3 optimal diversity is 5 ({0, 5, 10}).
        let metric = line(&[0.0, 1.0, 5.0, 6.0, 10.0]);
        let (d, subset) = exact_diversity(&metric, 3);
        assert_eq!(d, 5.0);
        assert_eq!(subset.len(), 3);
        assert_eq!(min_pairwise_distance(&metric, &subset), 5.0);
    }

    #[test]
    fn diversity_is_upper_bound_for_approximations() {
        let metric = EuclideanSpace::new(datasets::uniform_cube(22, 2, 5));
        for k in [3, 4] {
            let (opt, _) = exact_diversity(&metric, k);
            let gmm = mpc_core::diversity::sequential_gmm_diversity(&metric, k);
            assert!(gmm.diversity <= opt + 1e-9, "k={k}");
            assert!(gmm.diversity >= opt / 2.0 - 1e-9, "GMM 2-approx, k={k}");
        }
    }

    #[test]
    fn diversity_with_n_le_k_returns_all() {
        let metric = line(&[0.0, 3.0]);
        let (d, subset) = exact_diversity(&metric, 5);
        assert_eq!(subset.len(), 2);
        assert_eq!(d, 3.0);
    }

    #[test]
    fn ksupplier_on_line_is_exact() {
        // Customers at 0 and 10; suppliers at 1, 5, 9. k = 2: pick 1 and 9
        // for radius 1; k = 1: supplier 5 at radius 5.
        let metric = line(&[0.0, 10.0, 1.0, 5.0, 9.0]);
        let (r2, s2) = exact_ksupplier(&metric, &[0, 1], &[2, 3, 4], 2);
        assert_eq!(r2, 1.0);
        assert_eq!(s2.len(), 2);
        let (r1, _) = exact_ksupplier(&metric, &[0, 1], &[2, 3, 4], 1);
        assert_eq!(r1, 5.0);
    }

    #[test]
    fn ksupplier_lower_bounds_the_mpc_algorithm() {
        let metric = EuclideanSpace::new(datasets::uniform_cube(24, 2, 9));
        let customers: Vec<u32> = (0..16).collect();
        let suppliers: Vec<u32> = (16..24).collect();
        let (opt, _) = exact_ksupplier(&metric, &customers, &suppliers, 3);
        let params = mpc_core::Params::practical(2, 0.2, 9);
        let res = mpc_core::ksupplier::mpc_ksupplier(&metric, &customers, &suppliers, 3, &params);
        assert!(res.radius >= opt - 1e-9);
        assert!(
            res.radius <= 3.0 * (1.0 + 0.2) * opt + 1e-9,
            "(3+eps) guarantee: {} vs opt {opt}",
            res.radius
        );
    }

    #[test]
    fn grid_kcenter_known_value() {
        // 3x3 unit grid with k = 1: optimal center is the middle, radius
        // sqrt(2).
        let metric = EuclideanSpace::new(datasets::grid(3));
        let (r, centers) = exact_kcenter(&metric, 1);
        assert!((r - 2.0f64.sqrt()).abs() < 1e-9);
        assert_eq!(centers.len(), 1);
    }

    #[test]
    fn grid_diversity_known_value() {
        // 3x3 unit grid, k = 4: corners give diversity 2.
        let metric = EuclideanSpace::new(datasets::grid(3));
        let (d, _) = exact_diversity(&metric, 4);
        assert_eq!(d, 2.0);
    }
}
