//! Hochbaum–Shmoys (1986) sequential 2-approximation for k-center via
//! parametric pruning: binary-search the candidate radii; for each guess
//! `r`, a greedy maximal independent set of the graph `G_{2r}` needs at
//! most `k` vertices iff `r` is (up to factor 2) feasible.
//!
//! This is the strongest *sequential* polynomial baseline (factor 2 is
//! optimal unless P = NP), used as the large-instance quality reference in
//! experiment E2.

use mpc_graph::{mis::greedy_mis, ThresholdGraph};
use mpc_metric::{dist_point_to_set, MetricSpace, PointId};

/// Result of [`hochbaum_shmoys_kcenter`].
#[derive(Debug, Clone)]
pub struct HsResult {
    /// At most `k` centers.
    pub centers: Vec<PointId>,
    /// Realized covering radius `r(V, centers)`.
    pub radius: f64,
}

/// Runs the Hochbaum–Shmoys 2-approximation. `O(n² log n)` time.
pub fn hochbaum_shmoys_kcenter<M: MetricSpace + ?Sized>(metric: &M, k: usize) -> HsResult {
    assert!(k >= 1, "k must be positive");
    let n = metric.n();
    let all: Vec<u32> = (0..n as u32).collect();
    if n <= k {
        return HsResult {
            centers: all.iter().map(|&v| PointId(v)).collect(),
            radius: 0.0,
        };
    }

    // Candidate radii: all pairwise distances (the optimum is one of them).
    let mut cands = Vec::with_capacity(n * (n - 1) / 2);
    for i in 0..n as u32 {
        for j in (i + 1)..n as u32 {
            cands.push(metric.dist(PointId(i), PointId(j)));
        }
    }
    cands.sort_unstable_by(f64::total_cmp);
    cands.dedup();

    // Smallest candidate r whose G_{2r} greedy MIS has <= k vertices: that
    // MIS is a k-center solution of radius 2r <= 2 r*.
    let feasible = |r: f64| -> Option<Vec<u32>> {
        let g = ThresholdGraph::new(metric, 2.0 * r);
        let mis = greedy_mis(&g, &all);
        (mis.len() <= k).then_some(mis)
    };

    let mut lo = 0usize;
    let mut hi = cands.len() - 1; // max distance: MIS of G_{2max} is 1 vertex <= k
    debug_assert!(feasible(cands[hi]).is_some());
    if let Some(mis) = feasible(cands[0]) {
        let centers: Vec<PointId> = mis.iter().map(|&v| PointId(v)).collect();
        let radius = realized(metric, &centers);
        return HsResult { centers, radius };
    }
    while hi - lo > 1 {
        let mid = lo + (hi - lo) / 2;
        if feasible(cands[mid]).is_some() {
            hi = mid;
        } else {
            lo = mid;
        }
    }
    let mis = feasible(cands[hi]).expect("hi is feasible by invariant");
    let centers: Vec<PointId> = mis.iter().map(|&v| PointId(v)).collect();
    let radius = realized(metric, &centers);
    HsResult { centers, radius }
}

fn realized<M: MetricSpace + ?Sized>(metric: &M, centers: &[PointId]) -> f64 {
    (0..metric.n() as u32)
        .map(|v| dist_point_to_set(metric, PointId(v), centers))
        .fold(0.0f64, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpc_metric::{datasets, EuclideanSpace, PointSet};

    #[test]
    fn two_tight_clusters_need_tiny_radius() {
        // Two clusters at distance 10 with radius 0.1: k=2 optimal ~0.1.
        let mut rows = Vec::new();
        for i in 0..10 {
            rows.push(vec![0.0 + 0.01 * i as f64, 0.0]);
            rows.push(vec![10.0 + 0.01 * i as f64, 0.0]);
        }
        let metric = EuclideanSpace::new(PointSet::from_rows(&rows));
        let res = hochbaum_shmoys_kcenter(&metric, 2);
        assert!(res.centers.len() <= 2);
        assert!(
            res.radius <= 0.2,
            "radius {} should be cluster-scale",
            res.radius
        );
    }

    #[test]
    fn within_factor_two_of_gmm_reference() {
        let metric = EuclideanSpace::new(datasets::uniform_cube(150, 2, 5));
        for k in [1, 3, 8] {
            let hs = hochbaum_shmoys_kcenter(&metric, k);
            let gmm = mpc_core::kcenter::sequential_gmm_kcenter(&metric, k);
            // Both are 2-approximations: each is within 2x of the optimum,
            // hence within 4x of each other — sanity band.
            assert!(hs.radius <= 2.0 * gmm.radius + 1e-9, "k={k}");
            assert!(gmm.radius <= 2.0 * hs.radius + 1e-9, "k={k}");
        }
    }

    #[test]
    fn n_le_k_is_exact() {
        let metric = EuclideanSpace::new(datasets::uniform_cube(5, 2, 1));
        let res = hochbaum_shmoys_kcenter(&metric, 10);
        assert_eq!(res.centers.len(), 5);
        assert_eq!(res.radius, 0.0);
    }

    #[test]
    fn duplicates_are_fine() {
        let metric = EuclideanSpace::new(PointSet::from_rows(&[vec![1.0], vec![1.0], vec![2.0]]));
        let res = hochbaum_shmoys_kcenter(&metric, 1);
        assert!(res.radius <= 1.0 + 1e-12);
    }
}
