//! Indyk et al. (PODC 2014): composable coresets for diversity
//! maximization — the previous best MPC algorithm, a two-round
//! 6-approximation. Each machine reduces its share to a GMM coreset
//! (a 3-composable coreset for remote-edge diversity); the central machine
//! runs GMM (an offline 2-approximation) on the union, giving 3 × 2 = 6.
//!
//! Experiments E1/E9 measure the gap to the paper's `(2+ε)` algorithm and
//! its two-round 4-approximation side product.

use mpc_core::common::{gmm_coreset, to_point_ids};
use mpc_core::{Params, Telemetry};
use mpc_metric::{min_pairwise_distance, MetricSpace, PointId};
use mpc_sim::Cluster;

/// Result of [`indyk_diversity`].
#[derive(Debug, Clone)]
pub struct IndykResult {
    /// The k selected points.
    pub subset: Vec<PointId>,
    /// Achieved diversity (≥ opt / 6).
    pub diversity: f64,
    /// Measured rounds/communication.
    pub telemetry: Telemetry,
}

/// Runs the two-round 6-approximation composable-coreset MPC algorithm for
/// k-diversity maximization.
pub fn indyk_diversity<M: MetricSpace + ?Sized>(
    metric: &M,
    k: usize,
    params: &Params,
) -> IndykResult {
    assert!(k >= 2, "diversity needs k >= 2");
    let n = metric.n();
    let mut cluster = Cluster::new(params.m, params.seed);
    let partition = params.partition.build(n, params.m, params.seed);
    let local_sets = partition.all_items().to_vec();
    // Unlike the paper's Algorithm 2 (which also considers the best local
    // coreset), Indyk et al. return GMM of the union directly.
    let (q, _) = gmm_coreset(&mut cluster, metric, &local_sets, k);
    let subset = to_point_ids(&q);
    let diversity = min_pairwise_distance(metric, &subset);
    IndykResult {
        subset,
        diversity,
        telemetry: Telemetry::from_ledger(cluster.ledger()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpc_core::diversity::sequential_gmm_diversity;
    use mpc_metric::{datasets, EuclideanSpace};

    #[test]
    fn two_rounds_k_points() {
        let metric = EuclideanSpace::new(datasets::uniform_cube(200, 2, 3));
        let params = Params::practical(4, 0.1, 3);
        let res = indyk_diversity(&metric, 6, &params);
        assert_eq!(res.subset.len(), 6);
        assert!(res.telemetry.rounds <= 2);
    }

    #[test]
    fn within_factor_six_of_sequential_gmm() {
        let metric = EuclideanSpace::new(datasets::gaussian_clusters(250, 2, 8, 0.03, 5));
        let params = Params::practical(4, 0.1, 5);
        let k = 5;
        let res = indyk_diversity(&metric, k, &params);
        let gmm_div = sequential_gmm_diversity(&metric, k).diversity;
        // gmm_div <= opt, res >= opt/6 >= gmm_div/6.
        assert!(
            res.diversity >= gmm_div / 6.0 - 1e-9,
            "{} vs GMM {}",
            res.diversity,
            gmm_div
        );
    }

    #[test]
    fn paper_algorithm_dominates_on_adversarial_partitions() {
        // With clusters split across machines the coreset baseline can
        // lose diversity; the paper's ladder recovers it. We only assert
        // the paper algorithm is never worse.
        let metric = EuclideanSpace::new(datasets::adversarial_outlier(200, 6, 50.0, 9));
        let params = Params::practical(8, 0.1, 9);
        let ours = mpc_core::diversity::mpc_diversity(&metric, 6, &params);
        let base = indyk_diversity(&metric, 6, &params);
        assert!(
            ours.diversity >= base.diversity - 1e-9,
            "paper {} vs coreset {}",
            ours.diversity,
            base.diversity
        );
    }
}
