//! Baselines: the prior algorithms the paper improves upon, plus exact
//! solvers for small instances.
//!
//! | Module | Algorithm | Factor | Source |
//! |---|---|---|---|
//! | [`hochbaum_shmoys`] | sequential threshold + MIS k-center | 2 | Hochbaum & Shmoys 1986 |
//! | [`malkomes`] | two-round MPC coreset k-center | 4 | Malkomes et al., NeurIPS 2015 |
//! | [`indyk`] | two-round MPC composable-coreset diversity | 6 | Indyk et al., PODC 2014 |
//! | [`ene`] | iterative-sampling MapReduce k-center | O(1) w.h.p. | Ene, Im & Moseley, KDD 2011 (simplified; see module docs) |
//! | [`outliers`] | greedy-disk k-center with z outliers | 3 | Charikar et al., SODA 2001 |
//! | [`malkomes_outliers`] | two-round MPC k-center with z outliers | 13 | Malkomes et al., NeurIPS 2015 |
//! | [`streaming`] | one-pass doubling k-center | 8 | Charikar et al., STOC 1997 |
//! | [`exact`] | branch-and-bound k-center / k-diversity / k-supplier | 1 (exact) | — (small n only) |
//! | [`random_pick`] | uniformly random k points | unbounded | sanity floor |
//!
//! These power the E1/E2/E9 quality comparisons in `mpc-bench` — the
//! paper's headline claim is precisely that its `(2+ε)`/`(2+ε)`/`(3+ε)`
//! factors beat the 4 / 6 / — factors of these baselines.

pub mod ene;
pub mod exact;
pub mod hochbaum_shmoys;
pub mod indyk;
pub mod malkomes;
pub mod malkomes_outliers;
pub mod outliers;
pub mod random_pick;
pub mod remote_clique;
pub mod streaming;
