//! Malkomes et al. (NeurIPS 2015): the previous best MPC k-center — a
//! two-round 4-approximation. Every machine reduces its share to a GMM
//! coreset of size k; the central machine runs GMM on the coreset union.
//!
//! This is exactly the paper's coarse stage (lines 1–2 of Algorithm 5);
//! the paper's contribution is the threshold-ladder refinement that takes
//! the factor from 4 down to `2+ε`. Experiment E2 measures that gap.

use mpc_core::common::{covering_radius, gmm_coreset, to_point_ids};
use mpc_core::{Params, Telemetry};
use mpc_metric::{MetricSpace, PointId};
use mpc_sim::Cluster;

/// Result of [`malkomes_kcenter`].
#[derive(Debug, Clone)]
pub struct MalkomesResult {
    /// The k centers.
    pub centers: Vec<PointId>,
    /// Realized covering radius (≤ 4 r*).
    pub radius: f64,
    /// Measured rounds/communication.
    pub telemetry: Telemetry,
}

/// Runs the two-round 4-approximation MPC k-center of Malkomes et al.
pub fn malkomes_kcenter<M: MetricSpace + ?Sized>(
    metric: &M,
    k: usize,
    params: &Params,
) -> MalkomesResult {
    assert!(k >= 1);
    let n = metric.n();
    let mut cluster = Cluster::new(params.m, params.seed);
    let partition = params.partition.build(n, params.m, params.seed);
    let local_sets = partition.all_items().to_vec();
    let (q, _) = gmm_coreset(&mut cluster, metric, &local_sets, k);
    let radius = covering_radius(&mut cluster, metric, &local_sets, &q);
    MalkomesResult {
        centers: to_point_ids(&q),
        radius,
        telemetry: Telemetry::from_ledger(cluster.ledger()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpc_metric::{datasets, EuclideanSpace};

    #[test]
    fn produces_k_centers_in_few_rounds() {
        let metric = EuclideanSpace::new(datasets::uniform_cube(200, 2, 3));
        let params = Params::practical(4, 0.1, 3);
        let res = malkomes_kcenter(&metric, 6, &params);
        assert_eq!(res.centers.len(), 6);
        // 1 gather + broadcast/reduce for the radius = 3 rounds total; the
        // "two-round" claim excludes the radius evaluation we add for
        // reporting.
        assert!(res.telemetry.rounds <= 3);
    }

    #[test]
    fn never_better_than_paper_algorithm_guarantee() {
        // The 4-approx can only be >= the (2+eps) result divided by the
        // guarantee gap; concretely both must be within 4x of GMM.
        let metric = EuclideanSpace::new(datasets::gaussian_clusters(300, 2, 6, 0.02, 7));
        let params = Params::practical(4, 0.1, 7);
        let malk = malkomes_kcenter(&metric, 6, &params);
        let gmm = mpc_core::kcenter::sequential_gmm_kcenter(&metric, 6);
        // gmm.radius >= r*; malkomes <= 4 r* <= 4 gmm.radius.
        assert!(malk.radius <= 4.0 * gmm.radius + 1e-9);
    }
}
