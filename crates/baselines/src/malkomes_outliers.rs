//! Malkomes et al. (NeurIPS 2015), second contribution: distributed
//! k-center **with z outliers** (13-approximation) — the noise-robust MPC
//! baseline the paper's related-work section cites.
//!
//! Two rounds: every machine runs GMM to select `k + z + 1` local
//! representatives with multiplicities (each input point is counted at its
//! nearest representative); the central machine runs the Charikar et al.
//! greedy-disk algorithm on the weighted union.

use mpc_core::common::to_point_ids;
use mpc_core::gmm::gmm;
use mpc_core::{Params, Telemetry};
use mpc_metric::{dist_point_to_set, MetricSpace, PointId};
use mpc_sim::Cluster;

/// Result of [`malkomes_outliers_kcenter`].
#[derive(Debug, Clone)]
pub struct OutlierMpcResult {
    /// The k centers.
    pub centers: Vec<PointId>,
    /// Radius covering all but at most z points.
    pub radius: f64,
    /// Points left uncovered (≤ z after the final assignment).
    pub outliers: Vec<PointId>,
    /// Measured rounds/communication.
    pub telemetry: Telemetry,
}

/// Runs the two-round 13-approximation MPC k-center with z outliers.
pub fn malkomes_outliers_kcenter<M: MetricSpace + ?Sized>(
    metric: &M,
    k: usize,
    z: usize,
    params: &Params,
) -> OutlierMpcResult {
    assert!(k >= 1);
    let n = metric.n();
    let w = metric.point_weight();
    let mut cluster = Cluster::new(params.m, params.seed);
    let partition = params.partition.build(n, params.m, params.seed);
    let local_sets = partition.all_items().to_vec();

    // Round 1: per-machine coresets of size k + z + 1, with weights =
    // how many local points each representative absorbs.
    let coresets: Vec<Vec<(u32, u64)>> = cluster.map(&local_sets, |_, vi| {
        let reps = gmm(metric, vi, k + z + 1).selected;
        if reps.is_empty() {
            return Vec::new();
        }
        let rep_ids = to_point_ids(&reps);
        let mut weights = vec![0u64; reps.len()];
        for &v in vi.iter() {
            let nearest = rep_ids
                .iter()
                .enumerate()
                .min_by(|(_, a), (_, b)| {
                    metric
                        .dist(PointId(v), **a)
                        .total_cmp(&metric.dist(PointId(v), **b))
                })
                .expect("non-empty reps")
                .0;
            weights[nearest] += 1;
        }
        reps.into_iter().zip(weights).collect()
    });
    // Gather the weighted coresets (each item: point + weight word).
    let pool = cluster.gather("malk-out/coreset", coresets, w + 1);

    // Round 2 (central, local compute): weighted Charikar greedy disks.
    let ids: Vec<u32> = pool.iter().map(|&(v, _)| v).collect();
    let weights: Vec<u64> = pool.iter().map(|&(_, wt)| wt).collect();
    let centers_raw = weighted_charikar(metric, &ids, &weights, k, z as u64);

    // Final assignment: the radius covering all but <= z actual points,
    // computed distributedly for reporting (broadcast + local + reduce).
    cluster.broadcast("malk-out/centers", centers_raw.len(), w);
    let center_ids = to_point_ids(&centers_raw);
    let mut dists: Vec<f64> = (0..n as u32)
        .map(|v| dist_point_to_set(metric, PointId(v), &center_ids))
        .collect();
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_unstable_by(|&a, &b| dists[a].total_cmp(&dists[b]));
    let outliers: Vec<PointId> = order[n.saturating_sub(z)..]
        .iter()
        .map(|&i| PointId(i as u32))
        .collect();
    dists.sort_unstable_by(f64::total_cmp);
    let radius = if z < n { dists[n - 1 - z] } else { 0.0 };
    cluster.broadcast("malk-out/radius", 1, 1);

    OutlierMpcResult {
        centers: center_ids,
        radius,
        outliers,
        telemetry: Telemetry::from_ledger(cluster.ledger()),
    }
}

/// Weighted variant of the Charikar greedy-disk feasibility check, run on
/// the candidate radii of the pool.
fn weighted_charikar<M: MetricSpace + ?Sized>(
    metric: &M,
    ids: &[u32],
    weights: &[u64],
    k: usize,
    z: u64,
) -> Vec<u32> {
    let total: u64 = weights.iter().sum();
    let mut cands = vec![0.0f64];
    for (a, &i) in ids.iter().enumerate() {
        for &j in &ids[a + 1..] {
            cands.push(metric.dist(PointId(i), PointId(j)));
        }
    }
    cands.sort_unstable_by(f64::total_cmp);
    cands.dedup();

    let attempt = |r: f64| -> Option<Vec<u32>> {
        let mut covered = vec![false; ids.len()];
        let mut centers = Vec::with_capacity(k);
        for _ in 0..k.min(ids.len()) {
            let mut best = (usize::MAX, 0u64);
            for (c, &cid) in ids.iter().enumerate() {
                let gain: u64 = ids
                    .iter()
                    .enumerate()
                    .filter(|&(u, &uid)| {
                        !covered[u] && metric.dist(PointId(uid), PointId(cid)) <= r
                    })
                    .map(|(u, _)| weights[u])
                    .sum();
                if best.0 == usize::MAX || gain > best.1 {
                    best = (c, gain);
                }
            }
            let c = best.0;
            centers.push(ids[c]);
            for (u, &uid) in ids.iter().enumerate() {
                if metric.dist(PointId(uid), PointId(ids[c])) <= 3.0 * r {
                    covered[u] = true;
                }
            }
        }
        let missed: u64 = ids
            .iter()
            .enumerate()
            .filter(|&(u, _)| !covered[u])
            .map(|(u, _)| weights[u])
            .sum();
        (missed <= z || total == 0).then_some(centers)
    };

    let mut lo = 0usize;
    let mut hi = cands.len() - 1;
    if let Some(c) = attempt(cands[lo]) {
        return c;
    }
    debug_assert!(attempt(cands[hi]).is_some());
    while hi - lo > 1 {
        let mid = lo + (hi - lo) / 2;
        if attempt(cands[mid]).is_some() {
            hi = mid;
        } else {
            lo = mid;
        }
    }
    attempt(cands[hi]).expect("hi feasible by invariant")
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpc_metric::{datasets, EuclideanSpace, PointSet};

    fn noisy_clusters(seed: u64) -> EuclideanSpace {
        // Two tight clusters plus 3 junk points far away.
        let base = datasets::gaussian_clusters(60, 2, 2, 0.01, seed);
        let mut rows: Vec<Vec<f64>> = (0..60)
            .map(|i| base.coords(PointId(i as u32)).to_vec())
            .collect();
        rows.push(vec![50.0, 50.0]);
        rows.push(vec![-60.0, 10.0]);
        rows.push(vec![10.0, -70.0]);
        EuclideanSpace::new(PointSet::from_rows(&rows))
    }

    #[test]
    fn outlier_budget_absorbs_noise() {
        let metric = noisy_clusters(5);
        let params = Params::practical(3, 0.1, 5);
        let with = malkomes_outliers_kcenter(&metric, 2, 3, &params);
        let without = malkomes_outliers_kcenter(&metric, 2, 0, &params);
        assert!(with.outliers.len() <= 3);
        assert!(
            with.radius < without.radius / 5.0,
            "z=3 must collapse the radius: {} vs {}",
            with.radius,
            without.radius
        );
    }

    #[test]
    fn covers_all_but_z_points() {
        let metric = noisy_clusters(7);
        let params = Params::practical(3, 0.1, 7);
        let res = malkomes_outliers_kcenter(&metric, 2, 3, &params);
        let covered = (0..metric.n() as u32)
            .filter(|&v| dist_point_to_set(&metric, PointId(v), &res.centers) <= res.radius + 1e-9)
            .count();
        assert!(covered >= metric.n() - 3);
        assert!(res.centers.len() <= 2);
    }

    #[test]
    fn two_rounds_plus_reporting() {
        let metric = noisy_clusters(9);
        let params = Params::practical(3, 0.1, 9);
        let res = malkomes_outliers_kcenter(&metric, 2, 3, &params);
        // 1 gather + 2 reporting broadcasts.
        assert!(res.telemetry.rounds <= 3);
    }

    #[test]
    fn zero_outliers_reduces_to_plain_band() {
        let metric = EuclideanSpace::new(datasets::uniform_cube(40, 2, 3));
        let params = Params::practical(2, 0.1, 3);
        let res = malkomes_outliers_kcenter(&metric, 3, 0, &params);
        let (opt, _) = crate::exact::exact_kcenter(&metric, 3);
        assert!(res.radius >= opt - 1e-9);
        assert!(res.radius <= 13.0 * opt + 1e-9, "13-approx band");
    }
}
