//! Charikar et al. (SODA 2001): 3-approximation for k-center with `z`
//! outliers — the noise-robust variant the paper's related-work section
//! cites. Sequential; used as an evaluation extension.
//!
//! For a guessed radius `r`, greedily pick the disk of radius `r` covering
//! the most uncovered points and mark everything within `3r` of its center
//! covered; after `k` picks, feasibility means ≤ `z` points remain. The
//! smallest feasible guess among the pairwise distances gives radius
//! ≤ 3 r*(z).

use mpc_metric::{MetricSpace, PointId};

/// Result of [`charikar_outliers_kcenter`].
#[derive(Debug, Clone)]
pub struct OutlierResult {
    /// The k centers.
    pub centers: Vec<PointId>,
    /// Radius covering all but at most `z` points.
    pub radius: f64,
    /// The points left uncovered (≤ z).
    pub outliers: Vec<PointId>,
}

/// Runs the greedy-disk 3-approximation for k-center with `z` outliers.
/// `O(n² log n · k)` time; intended for moderate `n`.
pub fn charikar_outliers_kcenter<M: MetricSpace + ?Sized>(
    metric: &M,
    k: usize,
    z: usize,
) -> OutlierResult {
    assert!(k >= 1);
    let n = metric.n();
    if n <= k {
        return OutlierResult {
            centers: (0..n as u32).map(PointId).collect(),
            radius: 0.0,
            outliers: Vec::new(),
        };
    }
    let mut cands = vec![0.0f64];
    for i in 0..n as u32 {
        for j in (i + 1)..n as u32 {
            cands.push(metric.dist(PointId(i), PointId(j)));
        }
    }
    cands.sort_unstable_by(f64::total_cmp);
    cands.dedup();

    let attempt = |r: f64| -> Option<(Vec<PointId>, Vec<PointId>)> {
        let mut covered = vec![false; n];
        let mut centers = Vec::with_capacity(k);
        for _ in 0..k {
            // Disk of radius r covering the most uncovered points.
            let mut best = (usize::MAX, 0usize);
            for c in 0..n as u32 {
                let gain = (0..n as u32)
                    .filter(|&u| !covered[u as usize] && metric.dist(PointId(u), PointId(c)) <= r)
                    .count();
                if best.0 == usize::MAX || gain > best.1 {
                    best = (c as usize, gain);
                }
            }
            let c = best.0 as u32;
            centers.push(PointId(c));
            // Expansion step: mark everything within 3r covered.
            for u in 0..n as u32 {
                if metric.dist(PointId(u), PointId(c)) <= 3.0 * r {
                    covered[u as usize] = true;
                }
            }
        }
        let outliers: Vec<PointId> = (0..n as u32)
            .filter(|&u| !covered[u as usize])
            .map(PointId)
            .collect();
        (outliers.len() <= z).then_some((centers, outliers))
    };

    let mut lo = 0usize;
    let mut hi = cands.len() - 1;
    debug_assert!(attempt(cands[hi]).is_some());
    if let Some((centers, outliers)) = attempt(cands[lo]) {
        return OutlierResult {
            centers,
            radius: 3.0 * cands[lo],
            outliers,
        };
    }
    while hi - lo > 1 {
        let mid = lo + (hi - lo) / 2;
        if attempt(cands[mid]).is_some() {
            hi = mid;
        } else {
            lo = mid;
        }
    }
    let (centers, outliers) = attempt(cands[hi]).expect("hi feasible by invariant");
    OutlierResult {
        centers,
        radius: 3.0 * cands[hi],
        outliers,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpc_metric::{dist_point_to_set, EuclideanSpace, PointSet};

    /// Two tight clusters plus two far-away junk points.
    fn noisy_instance() -> EuclideanSpace {
        let mut rows = Vec::new();
        for i in 0..8 {
            rows.push(vec![0.0 + 0.01 * i as f64, 0.0]);
            rows.push(vec![5.0 + 0.01 * i as f64, 0.0]);
        }
        rows.push(vec![100.0, 100.0]);
        rows.push(vec![-100.0, 50.0]);
        EuclideanSpace::new(PointSet::from_rows(&rows))
    }

    #[test]
    fn outliers_absorb_the_noise() {
        let metric = noisy_instance();
        let with = charikar_outliers_kcenter(&metric, 2, 2);
        let without = charikar_outliers_kcenter(&metric, 2, 0);
        assert!(with.outliers.len() <= 2);
        assert!(
            with.radius < without.radius / 10.0,
            "ignoring 2 outliers must collapse the radius: {} vs {}",
            with.radius,
            without.radius
        );
    }

    #[test]
    fn covered_points_respect_radius() {
        let metric = noisy_instance();
        let res = charikar_outliers_kcenter(&metric, 2, 2);
        for u in 0..metric.n() as u32 {
            let p = PointId(u);
            if !res.outliers.contains(&p) {
                assert!(dist_point_to_set(&metric, p, &res.centers) <= res.radius + 1e-9);
            }
        }
    }

    #[test]
    fn zero_outliers_matches_plain_kcenter_band() {
        let metric = noisy_instance();
        let res = charikar_outliers_kcenter(&metric, 3, 0);
        let (opt, _) = crate::exact::exact_kcenter(&metric, 3);
        assert!(res.radius >= opt - 1e-9);
        assert!(res.radius <= 3.0 * opt + 1e-9, "3-approximation bound");
    }

    #[test]
    fn n_le_k_trivial() {
        let metric = EuclideanSpace::new(PointSet::from_rows(&[vec![0.0], vec![1.0]]));
        let res = charikar_outliers_kcenter(&metric, 5, 0);
        assert_eq!(res.centers.len(), 2);
        assert_eq!(res.radius, 0.0);
    }
}
