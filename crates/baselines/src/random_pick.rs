//! Uniformly random k-subset — the sanity floor for the quality tables:
//! any algorithm that cannot beat random selection is broken.

use mpc_metric::{dist_point_to_set, min_pairwise_distance, MetricSpace, PointId};
use rand::{RngExt, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Picks `min(k, n)` points uniformly at random (without replacement).
pub fn random_subset<M: MetricSpace + ?Sized>(metric: &M, k: usize, seed: u64) -> Vec<PointId> {
    let n = metric.n();
    let mut ids: Vec<u32> = (0..n as u32).collect();
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let take = k.min(n);
    for i in 0..take {
        let j = rng.random_range(i..ids.len());
        ids.swap(i, j);
    }
    ids.truncate(take);
    ids.into_iter().map(PointId).collect()
}

/// Diversity of a random k-subset.
pub fn random_diversity<M: MetricSpace + ?Sized>(metric: &M, k: usize, seed: u64) -> f64 {
    min_pairwise_distance(metric, &random_subset(metric, k, seed))
}

/// k-center radius of a random k-subset of centers.
pub fn random_kcenter_radius<M: MetricSpace + ?Sized>(metric: &M, k: usize, seed: u64) -> f64 {
    let centers = random_subset(metric, k, seed);
    (0..metric.n() as u32)
        .map(|v| dist_point_to_set(metric, PointId(v), &centers))
        .fold(0.0f64, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpc_metric::{datasets, EuclideanSpace};

    #[test]
    fn subset_has_distinct_points() {
        let metric = EuclideanSpace::new(datasets::uniform_cube(50, 2, 1));
        let s = random_subset(&metric, 10, 7);
        assert_eq!(s.len(), 10);
        let mut ids: Vec<u32> = s.iter().map(|p| p.0).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 10);
    }

    #[test]
    fn k_exceeding_n_takes_everything() {
        let metric = EuclideanSpace::new(datasets::uniform_cube(5, 2, 1));
        assert_eq!(random_subset(&metric, 100, 1).len(), 5);
    }

    #[test]
    fn deterministic_per_seed() {
        let metric = EuclideanSpace::new(datasets::uniform_cube(40, 2, 1));
        assert_eq!(random_subset(&metric, 8, 3), random_subset(&metric, 8, 3));
        assert_ne!(random_subset(&metric, 8, 3), random_subset(&metric, 8, 4));
    }

    #[test]
    fn gmm_beats_random_on_diversity() {
        let metric = EuclideanSpace::new(datasets::uniform_cube(200, 2, 9));
        let k = 8;
        let gmm = mpc_core::diversity::sequential_gmm_diversity(&metric, k).diversity;
        let rnd = random_diversity(&metric, k, 9);
        assert!(gmm >= rnd, "GMM {gmm} must beat random {rnd}");
    }
}
