//! Remote-clique diversity maximization — the *sum*-of-pairwise-distances
//! objective the paper's related work contrasts with its remote-edge
//! (minimum pairwise distance) objective.
//!
//! Indyk et al. (PODC 2014) introduced composable coresets for both
//! measures, and Mirrokni & Zadimoghaddam (STOC 2015) improved
//! remote-clique via *randomized* composable coresets. This module builds
//! the family so experiment E13 can contrast the two objectives:
//!
//! * [`greedy_remote_clique`] — furthest-sum greedy heuristic;
//! * [`local_search_remote_clique`] — swap local search, the classic
//!   2-approximation (Abbassi et al., KDD 2013) used as the sequential
//!   reference;
//! * [`mpc_remote_clique`] — randomized-composable-coreset MPC algorithm:
//!   random partition, per-machine greedy coresets, central local search
//!   on the union (constant-factor w.h.p. per Mirrokni–Zadimoghaddam).

use mpc_core::common::to_point_ids;
use mpc_core::{Params, Telemetry};
use mpc_metric::{MetricSpace, PointId};
use mpc_sim::{Cluster, Partition};

/// Sum of pairwise distances of `set` (the remote-clique objective).
pub fn clique_value<M: MetricSpace + ?Sized>(metric: &M, set: &[PointId]) -> f64 {
    let mut total = 0.0;
    for (i, &a) in set.iter().enumerate() {
        for &b in &set[i + 1..] {
            total += metric.dist(a, b);
        }
    }
    total
}

/// Result of the remote-clique algorithms.
#[derive(Debug, Clone)]
pub struct RemoteCliqueResult {
    /// The selected k points.
    pub subset: Vec<PointId>,
    /// Sum of pairwise distances achieved.
    pub value: f64,
    /// Swaps performed (local search) or 0.
    pub swaps: u32,
    /// Measured rounds/communication (zero for sequential algorithms).
    pub telemetry: Telemetry,
}

/// Furthest-sum greedy: repeatedly add the point with the largest total
/// distance to the current selection (seeded by the globally furthest
/// pair). Fast, no guarantee better than a constant.
pub fn greedy_remote_clique<M: MetricSpace + ?Sized>(
    metric: &M,
    subset: &[u32],
    k: usize,
) -> RemoteCliqueResult {
    assert!(k >= 2, "remote-clique needs k >= 2");
    if subset.len() <= k {
        let ids = to_point_ids(subset);
        let value = clique_value(metric, &ids);
        return RemoteCliqueResult {
            subset: ids,
            value,
            swaps: 0,
            telemetry: Telemetry::zero(),
        };
    }
    // Seed: the furthest pair.
    let mut best = (0.0f64, subset[0], subset[0]);
    for (i, &a) in subset.iter().enumerate() {
        for &b in &subset[i + 1..] {
            let d = metric.dist(PointId(a), PointId(b));
            if d > best.0 {
                best = (d, a, b);
            }
        }
    }
    let mut chosen = vec![best.1, best.2];
    // sum_d[i] = total distance of subset[i] to chosen.
    let mut sum_d: Vec<f64> = subset
        .iter()
        .map(|&v| {
            metric.dist(PointId(v), PointId(best.1)) + metric.dist(PointId(v), PointId(best.2))
        })
        .collect();
    while chosen.len() < k {
        let (idx, _) = subset
            .iter()
            .enumerate()
            .filter(|(_, v)| !chosen.contains(v))
            .max_by(|a, b| sum_d[a.0].total_cmp(&sum_d[b.0]).then(b.1.cmp(a.1)))
            .expect("subset larger than k");
        let v = subset[idx];
        chosen.push(v);
        for (i, &u) in subset.iter().enumerate() {
            sum_d[i] += metric.dist(PointId(u), PointId(v));
        }
    }
    let ids = to_point_ids(&chosen);
    let value = clique_value(metric, &ids);
    RemoteCliqueResult {
        subset: ids,
        value,
        swaps: 0,
        telemetry: Telemetry::zero(),
    }
}

/// Swap local search: start from the greedy solution and keep applying the
/// best improving single swap until none exists (or `max_swaps` is hit).
/// 2-approximation at a local optimum.
pub fn local_search_remote_clique<M: MetricSpace + ?Sized>(
    metric: &M,
    subset: &[u32],
    k: usize,
    max_swaps: u32,
) -> RemoteCliqueResult {
    let mut current = greedy_remote_clique(metric, subset, k);
    if subset.len() <= k {
        return current;
    }
    let mut swaps = 0u32;
    // sum_to_sel[v-position-in-subset] = Σ_{c in chosen} d(v, c)
    let recompute = |chosen: &[PointId]| -> Vec<f64> {
        subset
            .iter()
            .map(|&v| chosen.iter().map(|&c| metric.dist(PointId(v), c)).sum())
            .collect()
    };
    let mut sum_to_sel = recompute(&current.subset);
    while swaps < max_swaps {
        // Best single swap (out, in): gain = (sum_in - d(in,out)) - (sum_out - d(in,out)... )
        let mut best_gain = 1e-12;
        let mut best_pair: Option<(usize, usize)> = None;
        for (oi, &out) in current.subset.iter().enumerate() {
            // contribution of `out` to the objective
            let out_contrib: f64 = current.subset.iter().map(|&c| metric.dist(out, c)).sum();
            for (ii, &inn) in subset.iter().enumerate() {
                let inn_id = PointId(inn);
                if current.subset.contains(&inn_id) {
                    continue;
                }
                let in_contrib = sum_to_sel[ii] - metric.dist(inn_id, out);
                let gain = in_contrib - out_contrib;
                if gain > best_gain {
                    best_gain = gain;
                    best_pair = Some((oi, ii));
                }
            }
        }
        let Some((oi, ii)) = best_pair else { break };
        current.subset[oi] = PointId(subset[ii]);
        sum_to_sel = recompute(&current.subset);
        swaps += 1;
    }
    current.value = clique_value(metric, &current.subset);
    current.swaps = swaps;
    current
}

/// Randomized-composable-coreset MPC remote-clique: random partition,
/// per-machine furthest-sum greedy coresets of size k, central local
/// search on the gathered union. Two rounds.
pub fn mpc_remote_clique<M: MetricSpace + ?Sized>(
    metric: &M,
    k: usize,
    params: &Params,
) -> RemoteCliqueResult {
    assert!(k >= 2);
    let n = metric.n();
    let w = metric.point_weight();
    let mut cluster = Cluster::new(params.m, params.seed);
    // Randomized composable coresets *require* a random partition.
    let partition = Partition::random(n, params.m, params.seed);
    let coresets: Vec<Vec<u32>> = cluster.map(partition.all_items(), |_, vi| {
        greedy_remote_clique(metric, vi, k)
            .subset
            .iter()
            .map(|p| p.0)
            .collect()
    });
    let union = cluster.gather("rclique/coreset", coresets, w);
    let mut result = local_search_remote_clique(metric, &union, k, 64);
    result.telemetry = Telemetry::from_ledger(cluster.ledger());
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpc_metric::{datasets, EuclideanSpace, PointSet};

    fn line(xs: &[f64]) -> EuclideanSpace {
        EuclideanSpace::new(PointSet::from_rows(
            &xs.iter().map(|&x| vec![x]).collect::<Vec<_>>(),
        ))
    }

    /// Exact optimum by enumeration (tiny n).
    fn exact<M: MetricSpace>(metric: &M, k: usize) -> f64 {
        fn rec<M: MetricSpace>(
            metric: &M,
            chosen: &mut Vec<PointId>,
            start: u32,
            k: usize,
            best: &mut f64,
        ) {
            if chosen.len() == k {
                *best = best.max(clique_value(metric, chosen));
                return;
            }
            for v in start..metric.n() as u32 {
                chosen.push(PointId(v));
                rec(metric, chosen, v + 1, k, best);
                chosen.pop();
            }
        }
        let mut best = 0.0;
        rec(metric, &mut Vec::new(), 0, k, &mut best);
        best
    }

    #[test]
    fn clique_value_sums_pairs() {
        let m = line(&[0.0, 1.0, 3.0]);
        let ids = [PointId(0), PointId(1), PointId(2)];
        // 1 + 3 + 2 = 6
        assert_eq!(clique_value(&m, &ids), 6.0);
        assert_eq!(clique_value(&m, &ids[..1]), 0.0);
    }

    #[test]
    fn greedy_reaches_line_optimum() {
        // On a line, every interior point has the same distance-sum to the
        // two extremes, so many optima tie; check the value, not identity.
        let m = line(&[0.0, 0.1, 0.2, 5.0, 10.0]);
        let all: Vec<u32> = (0..5).collect();
        let res = greedy_remote_clique(&m, &all, 3);
        assert_eq!(
            res.value,
            exact(&m, 3),
            "greedy must reach the (tied) optimum here"
        );
        assert!(res.subset.contains(&PointId(0)) && res.subset.contains(&PointId(4)));
    }

    #[test]
    fn local_search_never_worse_than_greedy() {
        for seed in [1u64, 5, 9] {
            let m = EuclideanSpace::new(datasets::uniform_cube(60, 2, seed));
            let all: Vec<u32> = (0..60).collect();
            let g = greedy_remote_clique(&m, &all, 6);
            let ls = local_search_remote_clique(&m, &all, 6, 64);
            assert!(
                ls.value >= g.value - 1e-9,
                "seed {seed}: {} < {}",
                ls.value,
                g.value
            );
        }
    }

    #[test]
    fn near_optimal_on_small_instances() {
        let m = EuclideanSpace::new(datasets::uniform_cube(14, 2, 3));
        let k = 4;
        let opt = exact(&m, k);
        let ls = local_search_remote_clique(&m, &(0..14).collect::<Vec<u32>>(), k, 64);
        assert!(
            ls.value >= opt / 2.0 - 1e-9,
            "local search below its 2-approx: {} vs {opt}",
            ls.value
        );
        let mpc = mpc_remote_clique(&m, k, &Params::practical(2, 0.1, 3));
        assert!(
            mpc.value >= opt / 3.0 - 1e-9,
            "MPC coreset collapsed: {} vs {opt}",
            mpc.value
        );
    }

    #[test]
    fn mpc_variant_is_two_rounds() {
        let m = EuclideanSpace::new(datasets::gaussian_clusters(300, 2, 5, 0.05, 7));
        let res = mpc_remote_clique(&m, 8, &Params::practical(4, 0.1, 7));
        assert_eq!(res.subset.len(), 8);
        assert!(res.telemetry.rounds <= 2);
        let seq = local_search_remote_clique(&m, &(0..300).collect::<Vec<u32>>(), 8, 64);
        // Randomized coresets are constant-factor: generous band.
        assert!(res.value >= seq.value / 3.0);
    }

    #[test]
    fn n_le_k_returns_everything() {
        let m = line(&[0.0, 2.0, 5.0]);
        let res = greedy_remote_clique(&m, &[0, 1, 2], 5);
        assert_eq!(res.subset.len(), 3);
        assert_eq!(res.value, 2.0 + 5.0 + 3.0);
    }

    #[test]
    fn remote_edge_and_remote_clique_disagree() {
        // A cluster pair far apart plus spread singles: remote-edge (min)
        // prefers pairwise-separated points, remote-clique (sum) happily
        // takes near-duplicates at the extremes.
        let m = line(&[0.0, 0.01, 100.0, 100.01, 50.0]);
        let all: Vec<u32> = (0..5).collect();
        let clique = local_search_remote_clique(&m, &all, 4, 64);
        let edge = mpc_core::diversity::sequential_gmm_diversity(&m, 4);
        let clique_ids: std::collections::BTreeSet<u32> =
            clique.subset.iter().map(|p| p.0).collect();
        // Remote-clique takes both extreme pairs {0, 1, 2, 3}.
        assert_eq!(clique_ids, [0u32, 1, 2, 3].into_iter().collect());
        // Remote-edge keeps the middle point instead of a near-duplicate.
        let edge_ids: std::collections::BTreeSet<u32> = edge.subset.iter().map(|p| p.0).collect();
        assert!(
            edge_ids.contains(&4),
            "remote-edge should keep the midpoint: {edge_ids:?}"
        );
    }
}
