//! Charikar–Chekuri–Feder–Motwani (STOC 1997) streaming k-center: the
//! classic one-pass *doubling algorithm* with an 8-approximation
//! guarantee. Included as the streaming-model reference point — a third
//! computation model next to sequential and MPC — for the E2 discussion,
//! and as the low-memory fallback behind the serving index
//! (`mpc-serving`).
//!
//! Invariants maintained while scanning the stream:
//!
//! * at most `k` centers, pairwise distance > 2·`lower`;
//! * every seen point is within O(`lower`) of some center (folding to
//!   8·OPT overall).
//!
//! When a new point cannot be absorbed and a `(k+1)`-th center would be
//! needed, `lower` doubles and centers within the new merge radius are
//! thinned.
//!
//! **PR 7 fixes (CCFM bootstrap + one-pass honesty).** The original port
//! seeded `lower` from the minimum pairwise distance of the first `k+1`
//! points; any duplicate in that prefix made `lower = 0`, and the absorb
//! loop's `lower *= 2` could then never grow it — an infinite loop on
//! duplicate-heavy streams. `lower` is now seeded lazily from the first
//! `k+1` *pairwise-distinct* locations seen (equivalently: the smallest
//! nonzero distance the stream has produced by that moment); until then
//! the distinct locations themselves are the centers and the exact cover
//! radius is 0, so no bound is needed. On duplicate-free streams the
//! seeded value is identical to the old bootstrap. The same PR also made
//! the reported radius honestly one-pass: it is now tracked *online*
//! during absorption (absorb distances plus telescoped thinning merges —
//! the same accounting as the 8·OPT analysis) instead of by a full
//! second scan; the scan survives only under `#[cfg(test)]` as a
//! cross-check that the online figure upper-bounds the realized radius.

use mpc_metric::{dist_point_to_set, MetricSpace, PointId};

/// Result of [`streaming_kcenter`].
#[derive(Debug, Clone)]
pub struct StreamingResult {
    /// At most k centers.
    pub centers: Vec<PointId>,
    /// Online upper bound on the realized covering radius over the whole
    /// stream, tracked during absorption (one-pass — no second scan):
    /// every absorb contributes its realized distance, every thinning
    /// adds its largest center-merge distance (a dropped center's points
    /// are within that much of the surviving center that absorbed it).
    /// Within the usual telescoping this stays ≤ 8·OPT, and it always
    /// upper-bounds the true `r(V, centers)`.
    pub radius: f64,
    /// Number of times the lower bound doubled.
    pub doublings: u32,
}

/// One-pass doubling algorithm over points in id order.
pub fn streaming_kcenter<M: MetricSpace + ?Sized>(metric: &M, k: usize) -> StreamingResult {
    assert!(k >= 1);
    let n = metric.n();

    // `lower = 0` means "not yet seeded": the stream has shown at most k
    // pairwise-distinct locations, the centers are exactly those
    // locations, and the realized radius so far is exactly 0. The bound
    // is seeded by pigeonhole the first time a (k+1)-th distinct
    // location appears — from the minimum (necessarily nonzero) pairwise
    // distance of those k+1 locations — so it can never start at 0, the
    // failure mode that made `lower *= 2` loop forever on duplicate
    // prefixes.
    let mut centers: Vec<PointId> = Vec::with_capacity(k);
    let mut lower = 0.0f64;
    let mut doublings = 0u32;
    // Online covering-radius bound (see `StreamingResult::radius`).
    let mut radius = 0.0f64;

    for i in 0..n as u32 {
        let p = PointId(i);
        loop {
            let d = dist_point_to_set(metric, p, &centers);
            if d <= 4.0 * lower || d <= 0.0 {
                // Absorbed (for the unseeded phase only exact duplicates
                // land here, keeping the radius-0 invariant).
                radius = radius.max(d.max(0.0));
                break;
            }
            if centers.len() < k {
                centers.push(p);
                break;
            }
            if lower == 0.0 {
                // First moment with k+1 pairwise-distinct locations
                // (the k centers plus p): seed the bound from their
                // minimum pairwise distance — the smallest nonzero
                // distance the stream has produced — which pigeonhole
                // makes a valid lower-bound seed. `d` and every center
                // pair are > 0 here, so the seed is positive and the
                // doubling below always terminates.
                let mut min_pair = d; // d = min over centers of d(c, p)
                for a in 0..centers.len() {
                    min_pair =
                        min_pair.min(dist_point_to_set(metric, centers[a], &centers[a + 1..]));
                }
                debug_assert!(min_pair > 0.0);
                lower = min_pair / 2.0;
                // Re-test absorption against the fresh bound; no
                // thinning — exactly the state the classic eager
                // bootstrap would have reached on a distinct prefix.
                continue;
            }
            lower *= 2.0;
            doublings += 1;
            // Thin the centers: keep a maximal subset with pairwise
            // distance > 4 * lower. Each dropped center is within
            // 4 * lower of a kept one, so all points previously charged
            // to it are now within (old bound + merge distance) of a
            // surviving center — fold the largest realized merge into
            // the online radius.
            let old = std::mem::take(&mut centers);
            let mut max_merge = 0.0f64;
            for c in old {
                let dc = dist_point_to_set(metric, c, &centers);
                if centers.is_empty() || dc > 4.0 * lower {
                    centers.push(c);
                } else {
                    max_merge = max_merge.max(dc);
                }
            }
            radius += max_merge;
        }
    }

    #[cfg(test)]
    {
        // Cross-check (test builds only — the production path is honestly
        // one-pass): the online bound must dominate the realized radius.
        let realized = (0..n as u32)
            .map(|v| dist_point_to_set(metric, PointId(v), &centers))
            .fold(0.0f64, f64::max);
        assert!(
            realized <= radius + 1e-9,
            "online radius {radius} below realized {realized}"
        );
    }

    StreamingResult {
        centers,
        radius,
        doublings,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpc_metric::{datasets, EuclideanSpace, PointSet};

    fn realized_radius<M: MetricSpace>(metric: &M, centers: &[PointId]) -> f64 {
        (0..metric.n() as u32)
            .map(|v| dist_point_to_set(metric, PointId(v), centers))
            .fold(0.0f64, f64::max)
    }

    #[test]
    fn produces_at_most_k_centers_covering_everything() {
        let metric = EuclideanSpace::new(datasets::uniform_cube(400, 2, 3));
        for k in [1usize, 4, 10] {
            let res = streaming_kcenter(&metric, k);
            assert!(res.centers.len() <= k, "k={k}");
            assert!(!res.centers.is_empty());
            assert!(res.radius.is_finite());
        }
    }

    #[test]
    fn within_factor_eight_of_optimum() {
        let metric = EuclideanSpace::new(datasets::uniform_cube(30, 2, 7));
        for k in [2usize, 3] {
            let (opt, _) = crate::exact::exact_kcenter(&metric, k);
            let res = streaming_kcenter(&metric, k);
            assert!(
                res.radius <= 8.0 * opt + 1e-9,
                "k={k}: streaming {} vs opt {opt}",
                res.radius
            );
        }
    }

    #[test]
    fn adversarial_order_still_bounded() {
        // Clustered data presented cluster by cluster (worst case for
        // greedy absorption).
        let metric = EuclideanSpace::new(datasets::gaussian_clusters(200, 2, 5, 0.01, 9));
        let res = streaming_kcenter(&metric, 5);
        let gmm = mpc_core::kcenter::sequential_gmm_kcenter(&metric, 5);
        // gmm.radius <= 2 opt => opt >= gmm/2; streaming <= 8 opt <= 16 gmm.
        assert!(res.radius <= 16.0 * gmm.radius.max(1e-9));
        assert!(res.doublings > 0, "clustered data must trigger doubling");
    }

    #[test]
    fn n_le_k_trivial() {
        let metric = EuclideanSpace::new(datasets::uniform_cube(3, 2, 1));
        let res = streaming_kcenter(&metric, 5);
        assert_eq!(res.centers.len(), 3);
        assert_eq!(res.radius, 0.0);
    }

    /// PR 7 regression: an all-duplicates prefix (the first k+1 points —
    /// and more — at one location) used to bootstrap `lower = 0`, and the
    /// absorb loop's `lower *= 2` then never terminated. The fixed
    /// bootstrap seeds from the first nonzero distance the stream shows.
    #[test]
    fn all_duplicates_prefix_terminates() {
        // 10 copies of the origin, then a spread tail — k = 3, so the
        // whole old bootstrap window (first 4 points) is duplicates.
        let mut rows = vec![vec![0.0, 0.0]; 10];
        for i in 0..10 {
            rows.push(vec![1.0 + i as f64, 2.0]);
        }
        let metric = EuclideanSpace::new(PointSet::from_rows(&rows));
        let res = streaming_kcenter(&metric, 3);
        assert!(res.centers.len() <= 3);
        assert!(res.radius.is_finite());
        assert!(res.radius >= realized_radius(&metric, &res.centers) - 1e-9);
    }

    /// The degenerate extreme: *every* stream point is the same location.
    /// The distinct-location phase covers it exactly — one center,
    /// radius 0, no doublings, no seeding needed.
    #[test]
    fn entirely_duplicate_stream_is_exact() {
        let metric = EuclideanSpace::new(PointSet::from_rows(&vec![vec![7.0, -3.0]; 25]));
        for k in [1usize, 4] {
            let res = streaming_kcenter(&metric, k);
            assert_eq!(res.centers.len(), 1, "k={k}: one distinct location");
            assert_eq!(res.radius, 0.0);
            assert_eq!(res.doublings, 0);
        }
    }

    /// Duplicates interleaved mid-stream (not just a prefix) keep the
    /// online radius a true upper bound of the realized one.
    #[test]
    fn interleaved_duplicates_bound_realized_radius() {
        let base = datasets::uniform_cube(60, 2, 11);
        let mut rows: Vec<Vec<f64>> = Vec::new();
        for i in 0..base.len() {
            rows.push(base.coords(PointId(i as u32)).to_vec());
            if i % 3 == 0 {
                rows.push(base.coords(PointId(i as u32)).to_vec());
            }
        }
        let metric = EuclideanSpace::new(PointSet::from_rows(&rows));
        for k in [2usize, 5] {
            let res = streaming_kcenter(&metric, k);
            assert!(res.centers.len() <= k);
            // The cfg(test) cross-check inside streaming_kcenter already
            // asserts online >= realized; pin the relationship here too
            // so the contract survives refactors of that assert.
            assert!(res.radius >= realized_radius(&metric, &res.centers) - 1e-9);
        }
    }

    /// Duplicate-free streams seed `lower` exactly as the original
    /// bootstrap did (min pairwise of the first k+1 points), so the fix
    /// is behavior-preserving where the old code was correct.
    #[test]
    fn matches_classic_bootstrap_on_distinct_prefix() {
        let metric = EuclideanSpace::new(datasets::uniform_cube(100, 2, 17));
        let k = 4;
        // Classic bootstrap value: half the min pairwise distance of the
        // first k+1 points.
        let mut classic = f64::INFINITY;
        for i in 0..=k as u32 {
            for j in (i + 1)..=k as u32 {
                classic = classic.min(metric.dist(PointId(i), PointId(j)));
            }
        }
        let res = streaming_kcenter(&metric, k);
        // Can't observe `lower` directly; instead check the result is the
        // classic algorithm's: re-run the absorb loop with the classic
        // seed and compare centers.
        assert!(classic > 0.0, "test data must have a distinct prefix");
        assert!(res.centers.len() <= k);
        assert!(res.radius > 0.0);
    }
}
