//! Charikar–Chekuri–Feder–Motwani (STOC 1997) streaming k-center: the
//! classic one-pass *doubling algorithm* with an 8-approximation
//! guarantee. Included as the streaming-model reference point — a third
//! computation model next to sequential and MPC — for the E2 discussion.
//!
//! Invariants maintained while scanning the stream:
//!
//! * at most `k` centers, pairwise distance > 2·`lower`;
//! * every seen point is within O(`lower`) of some center (folding to
//!   8·OPT overall).
//!
//! When a new point cannot be absorbed and a `(k+1)`-th center would be
//! needed, `lower` doubles and centers within the new merge radius are
//! thinned.

use mpc_metric::{dist_point_to_set, MetricSpace, PointId};

/// Result of [`streaming_kcenter`].
#[derive(Debug, Clone)]
pub struct StreamingResult {
    /// At most k centers.
    pub centers: Vec<PointId>,
    /// Realized covering radius over the whole stream.
    pub radius: f64,
    /// Number of times the lower bound doubled.
    pub doublings: u32,
}

/// One-pass doubling algorithm over points in id order.
pub fn streaming_kcenter<M: MetricSpace + ?Sized>(metric: &M, k: usize) -> StreamingResult {
    assert!(k >= 1);
    let n = metric.n();
    if n <= k {
        return StreamingResult {
            centers: (0..n as u32).map(PointId).collect(),
            radius: 0.0,
            doublings: 0,
        };
    }

    // Bootstrap on the first k+1 points: centers = first k, lower = half
    // the minimum pairwise distance among the first k+1.
    let mut centers: Vec<PointId> = (0..k as u32).map(PointId).collect();
    let mut lower = f64::INFINITY;
    for i in 0..=k as u32 {
        for j in (i + 1)..=k as u32 {
            lower = lower.min(metric.dist(PointId(i), PointId(j)));
        }
    }
    lower /= 2.0;
    let mut doublings = 0u32;

    let absorb = |centers: &mut Vec<PointId>, lower: &mut f64, doublings: &mut u32, p: PointId| {
        loop {
            if dist_point_to_set(metric, p, centers) <= 4.0 * *lower {
                return;
            }
            if centers.len() < k {
                centers.push(p);
                return;
            }
            // Double the bound and thin the centers: keep a maximal subset
            // with pairwise distance > 4 * new lower.
            *lower *= 2.0;
            *doublings += 1;
            let old = std::mem::take(centers);
            for c in old {
                if centers.is_empty() || dist_point_to_set(metric, c, centers) > 4.0 * *lower {
                    centers.push(c);
                }
            }
        }
    };

    for i in k as u32..n as u32 {
        absorb(&mut centers, &mut lower, &mut doublings, PointId(i));
    }

    let radius = (0..n as u32)
        .map(|v| dist_point_to_set(metric, PointId(v), &centers))
        .fold(0.0f64, f64::max);
    StreamingResult {
        centers,
        radius,
        doublings,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpc_metric::{datasets, EuclideanSpace};

    #[test]
    fn produces_at_most_k_centers_covering_everything() {
        let metric = EuclideanSpace::new(datasets::uniform_cube(400, 2, 3));
        for k in [1usize, 4, 10] {
            let res = streaming_kcenter(&metric, k);
            assert!(res.centers.len() <= k, "k={k}");
            assert!(!res.centers.is_empty());
            assert!(res.radius.is_finite());
        }
    }

    #[test]
    fn within_factor_eight_of_optimum() {
        let metric = EuclideanSpace::new(datasets::uniform_cube(30, 2, 7));
        for k in [2usize, 3] {
            let (opt, _) = crate::exact::exact_kcenter(&metric, k);
            let res = streaming_kcenter(&metric, k);
            assert!(
                res.radius <= 8.0 * opt + 1e-9,
                "k={k}: streaming {} vs opt {opt}",
                res.radius
            );
        }
    }

    #[test]
    fn adversarial_order_still_bounded() {
        // Clustered data presented cluster by cluster (worst case for
        // greedy absorption).
        let metric = EuclideanSpace::new(datasets::gaussian_clusters(200, 2, 5, 0.01, 9));
        let res = streaming_kcenter(&metric, 5);
        let gmm = mpc_core::kcenter::sequential_gmm_kcenter(&metric, 5);
        // gmm.radius <= 2 opt => opt >= gmm/2; streaming <= 8 opt <= 16 gmm.
        assert!(res.radius <= 16.0 * gmm.radius.max(1e-9));
        assert!(res.doublings > 0, "clustered data must trigger doubling");
    }

    #[test]
    fn n_le_k_trivial() {
        let metric = EuclideanSpace::new(datasets::uniform_cube(3, 2, 1));
        let res = streaming_kcenter(&metric, 5);
        assert_eq!(res.centers.len(), 3);
        assert_eq!(res.radius, 0.0);
    }
}
