//! Property-based tests across the baseline algorithms: approximation
//! bands relative to the exact solvers, and mutual consistency, on random
//! small instances.

use mpc_baselines::exact::{exact_diversity, exact_kcenter};
use mpc_baselines::hochbaum_shmoys::hochbaum_shmoys_kcenter;
use mpc_baselines::outliers::charikar_outliers_kcenter;
use mpc_baselines::random_pick::{random_diversity, random_kcenter_radius};
use mpc_baselines::remote_clique::{clique_value, local_search_remote_clique};
use mpc_baselines::streaming::streaming_kcenter;
use mpc_core::diversity::sequential_gmm_diversity;
use mpc_core::kcenter::sequential_gmm_kcenter;
use mpc_metric::{EuclideanSpace, PointSet};
use proptest::prelude::*;

fn arb_points(max_n: usize) -> impl Strategy<Value = PointSet> {
    prop::collection::vec((0.0f64..10.0, 0.0f64..10.0), 4..max_n).prop_map(|pts| {
        PointSet::from_rows(&pts.iter().map(|&(x, y)| vec![x, y]).collect::<Vec<_>>())
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Every k-center algorithm respects its proven factor against the
    /// exact optimum, and none beats the optimum.
    #[test]
    fn kcenter_factor_bands(points in arb_points(20)) {
        let metric = EuclideanSpace::new(points);
        let n = metric.points().len();
        let k = 3.min(n - 1);
        if k == 0 { return Ok(()); }
        let (opt, _) = exact_kcenter(&metric, k);
        let tol = 1e-9;

        let gmm = sequential_gmm_kcenter(&metric, k).radius;
        prop_assert!(gmm >= opt - tol && gmm <= 2.0 * opt + tol, "GMM {gmm} vs opt {opt}");

        let hs = hochbaum_shmoys_kcenter(&metric, k).radius;
        prop_assert!(hs >= opt - tol && hs <= 2.0 * opt + tol, "HS {hs} vs opt {opt}");

        let stream = streaming_kcenter(&metric, k).radius;
        prop_assert!(stream >= opt - tol && stream <= 8.0 * opt + tol, "stream {stream} vs opt {opt}");

        let charikar = charikar_outliers_kcenter(&metric, k, 0).radius;
        prop_assert!(charikar >= opt - tol && charikar <= 3.0 * opt + tol, "charikar {charikar}");

        let rnd = random_kcenter_radius(&metric, k, 7);
        prop_assert!(rnd >= opt - tol, "random cannot beat the optimum");
    }

    /// Diversity: GMM is a true 2-approximation; random never beats the
    /// optimum; local-search remote-clique ≥ half the exact clique value
    /// of the GMM set (weak cross-check).
    #[test]
    fn diversity_factor_bands(points in arb_points(16)) {
        let metric = EuclideanSpace::new(points);
        let n = metric.points().len();
        let k = 3.min(n);
        if k < 2 || n <= k { return Ok(()); }
        let (opt, _) = exact_diversity(&metric, k);
        let tol = 1e-9;

        let gmm = sequential_gmm_diversity(&metric, k).diversity;
        prop_assert!(gmm <= opt + tol && gmm >= opt / 2.0 - tol, "GMM {gmm} vs opt {opt}");

        let rnd = random_diversity(&metric, k, 11);
        prop_assert!(rnd <= opt + tol, "random {rnd} beats opt {opt}?");

        // The local-search remote-clique value must at least match the
        // clique value of the GMM (remote-edge) selection — they optimize
        // different objectives but LS starts from a spread-greedy seed.
        let all: Vec<u32> = (0..n as u32).collect();
        let ls = local_search_remote_clique(&metric, &all, k, 32);
        let gmm_set = sequential_gmm_diversity(&metric, k).subset;
        let gmm_clique = clique_value(&metric, &gmm_set);
        prop_assert!(ls.value >= gmm_clique - tol,
            "LS clique {} below GMM-set clique {gmm_clique}", ls.value);
    }

    /// Streaming k-center is insertion-order sensitive but must stay in
    /// its band for any permutation (tested via seeded shuffles).
    #[test]
    fn streaming_robust_to_order(points in arb_points(18), _perm_seed in any::<u64>()) {
        let metric = EuclideanSpace::new(points);
        let n = metric.points().len();
        let k = 2.min(n - 1);
        if k == 0 { return Ok(()); }
        let (opt, _) = exact_kcenter(&metric, k);
        // The streaming algorithm scans ids in order; the generator already
        // randomizes coordinates, so this is an arbitrary order.
        let res = streaming_kcenter(&metric, k);
        prop_assert!(res.centers.len() <= k);
        prop_assert!(res.radius <= 8.0 * opt + 1e-9);
    }
}
