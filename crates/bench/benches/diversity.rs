//! E8/E1/E9 Criterion benches: wall-clock of the MPC diversity pipelines
//! (full (2+ε) ladder, two-round 4-approx, Indyk 6-approx coreset).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mpc_baselines::indyk::indyk_diversity;
use mpc_baselines::remote_clique::mpc_remote_clique;
use mpc_bench::workloads::Workload;
use mpc_core::diversity::{four_approx_diversity, mpc_diversity, sequential_gmm_diversity};
use mpc_core::Params;

fn bench_diversity(c: &mut Criterion) {
    let mut group = c.benchmark_group("diversity");
    group.sample_size(10);
    for n in [500usize, 2000] {
        let metric = Workload::Uniform.build(n, 42);
        let params = Params::practical(8, 0.1, 42);
        group.bench_with_input(BenchmarkId::new("ours-2eps", n), &n, |b, _| {
            b.iter(|| mpc_diversity(&metric, 10, &params))
        });
        group.bench_with_input(BenchmarkId::new("ours-4approx", n), &n, |b, _| {
            b.iter(|| four_approx_diversity(&metric, 10, &params))
        });
        group.bench_with_input(BenchmarkId::new("indyk-6", n), &n, |b, _| {
            b.iter(|| indyk_diversity(&metric, 10, &params))
        });
        group.bench_with_input(BenchmarkId::new("gmm-seq", n), &n, |b, _| {
            b.iter(|| sequential_gmm_diversity(&metric, 10))
        });
        group.bench_with_input(BenchmarkId::new("remote-clique-mpc", n), &n, |b, _| {
            b.iter(|| mpc_remote_clique(&metric, 10, &params))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_diversity);
criterion_main!(benches);
