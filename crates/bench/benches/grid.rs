//! Grid-engine benchmarks (`BENCH_grid.json`): the rung-evaluation
//! head-to-head behind ISSUE 9's acceptance criterion.
//!
//! Both arms answer the *same* ladder question — a (k+1)-bounded MIS of
//! `G_τ` at one τ — over the same points, partition, and machine count:
//!
//! * `grid/rung-allpairs/…` — Algorithm 4 (`k_bounded_mis`) at the
//!   fastest all-pairs tier (`soa+sketch`), whose degree-approximation
//!   rounds scan `Θ(n²/m)` pairs;
//! * `grid/rung-grid/…` — the grid engine (`grid_k_bounded_mis`), whose
//!   stencil scans touch `O(n·3^d)` pairs.
//!
//! The `d4-n1e6` pair is the acceptance read-off (grid must be ≥ 5×
//! faster); the `d4-n1e5` pair gives CI a fast regression signal on both
//! engines, and `grid/build/…` isolates the per-rung `GridIndex`
//! construction the grid arm pays. The workload is the drifting
//! user-embedding stream shared with the serving benchmarks
//! (`datasets::user_embeddings`). `bench_diff --threshold 75` gates this
//! file in CI like the other groups.

use criterion::{criterion_group, criterion_main, Criterion};
use mpc_core::grid::grid_k_bounded_mis;
use mpc_core::kbmis::k_bounded_mis;
use mpc_core::Params;
use mpc_metric::{datasets, EuclideanSpace, GridIndex, KernelStats, SpeedTier};
use mpc_sim::Cluster;

const DIM: usize = 4;
const K: usize = 64;
const M: usize = 32;
const SEED: u64 = 31;

fn space_of(n: usize) -> EuclideanSpace {
    EuclideanSpace::new(datasets::user_embeddings(n, DIM, K, 0.02, 1e-4, SEED))
        .with_speed_tier(SpeedTier::SoaSketch)
}

/// Round-robin machine partition (id % m), the same shape
/// `PartitionStrategy` produces for contiguous inputs.
fn round_robin(n: usize, m: usize) -> Vec<Vec<u32>> {
    let mut sets = vec![Vec::with_capacity(n / m + 1); m];
    for id in 0..n as u32 {
        sets[id as usize % m].push(id);
    }
    sets
}

fn bench_grid(c: &mut Criterion) {
    let mut group = c.benchmark_group("grid");
    let params = Params::practical(M, 0.1, SEED);

    for (n, label, samples) in [(100_000usize, "n1e5", 10usize), (1_000_000, "n1e6", 2)] {
        let space = space_of(n);
        let local_sets = round_robin(n, M);
        // A mid-ladder τ: far enough below the coarse radius that the MIS
        // genuinely iterates, high enough that it stays ≤ k (the accepted
        // regime where rung cost is paid repeatedly during the search).
        let tau = mpc_bench::distance_quantile(&space, 0.02, SEED);
        group.sample_size(samples);

        group.bench_function(format!("rung-grid/d{DIM}-{label}").as_str(), |b| {
            b.iter(|| {
                let mut cluster = Cluster::new(M, SEED);
                let mut stats = KernelStats::default();
                grid_k_bounded_mis(&mut cluster, &space, &local_sets, tau, K + 1, &mut stats)
            })
        });

        group.bench_function(format!("rung-allpairs/d{DIM}-{label}").as_str(), |b| {
            b.iter(|| {
                let mut cluster = Cluster::new(M, SEED);
                k_bounded_mis(
                    &mut cluster,
                    &space,
                    &local_sets,
                    tau,
                    K + 1,
                    n,
                    &params,
                    false,
                )
                .set
            })
        });

        group.bench_function(format!("build/d{DIM}-{label}").as_str(), |b| {
            b.iter(|| GridIndex::build(space.points(), &local_sets[0], tau))
        });
    }
    group.sample_size(10);
    c.final_summary();
}

criterion_group!(benches, bench_grid);
criterion_main!(benches);
