//! E4/E7 Criterion benches: the k-bounded MIS engine across graph
//! densities and machine counts, plus the degree-approximation primitive.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mpc_bench::{distance_quantile, workloads::Workload};
use mpc_core::degree::approximate_degrees;
use mpc_core::kbmis::k_bounded_mis;
use mpc_core::Params;
use mpc_sim::{Cluster, Partition};

fn bench_kbmis(c: &mut Criterion) {
    let n = 1500;
    let metric = Workload::Uniform.build(n, 42);
    let mut group = c.benchmark_group("kbmis");
    group.sample_size(10);
    for density in [0.05, 0.3] {
        let tau = distance_quantile(&metric, density, 42);
        for m in [4usize, 16] {
            let params = Params::practical(m, 0.1, 42);
            let alive = Partition::round_robin(n, m).all_items().to_vec();
            let id = format!("d{density}/m{m}");
            group.bench_with_input(BenchmarkId::new("mis", &id), &id, |b, _| {
                b.iter(|| {
                    let mut cluster = Cluster::new(m, 42);
                    k_bounded_mis(&mut cluster, &metric, &alive, tau, 10, n, &params, false)
                })
            });
        }
    }
    group.finish();
}

fn bench_degree(c: &mut Criterion) {
    let n = 1500;
    let metric = Workload::Uniform.build(n, 42);
    let tau = distance_quantile(&metric, 0.3, 42);
    let m = 8;
    let alive = Partition::round_robin(n, m).all_items().to_vec();
    let mut group = c.benchmark_group("degree");
    group.sample_size(10);
    for (name, exact) in [("approx", false), ("exact", true)] {
        let mut params = Params::practical(m, 0.1, 42);
        params.exact_degrees = exact;
        group.bench_function(name, |b| {
            b.iter(|| {
                let mut cluster = Cluster::new(m, 42);
                approximate_degrees(&mut cluster, &metric, &alive, tau, 10, n, &params)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_kbmis, bench_degree);
criterion_main!(benches);
