//! E8/E2 Criterion benches: wall-clock of the MPC k-center pipeline versus
//! the baselines across input sizes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mpc_baselines::malkomes::malkomes_kcenter;
use mpc_bench::workloads::Workload;
use mpc_core::kcenter::{mpc_kcenter, sequential_gmm_kcenter};
use mpc_core::Params;

fn bench_kcenter(c: &mut Criterion) {
    let mut group = c.benchmark_group("kcenter");
    group.sample_size(10);
    for n in [500usize, 2000] {
        let metric = Workload::Clustered.build(n, 42);
        let params = Params::practical(8, 0.1, 42);
        group.bench_with_input(BenchmarkId::new("ours-2eps", n), &n, |b, _| {
            b.iter(|| mpc_kcenter(&metric, 10, &params))
        });
        group.bench_with_input(BenchmarkId::new("malkomes-4", n), &n, |b, _| {
            b.iter(|| malkomes_kcenter(&metric, 10, &params))
        });
        group.bench_with_input(BenchmarkId::new("gmm-seq", n), &n, |b, _| {
            b.iter(|| sequential_gmm_kcenter(&metric, 10))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_kcenter);
criterion_main!(benches);
