//! E3 Criterion benches: the (3+ε) MPC k-supplier pipeline versus the
//! sequential 3-approximation, plus the §7 dominating-set extension.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mpc_bench::{distance_quantile, workloads::supplier_instance, workloads::Workload};
use mpc_core::dominating::mpc_dominating_set;
use mpc_core::ksupplier::{mpc_ksupplier, sequential_ksupplier};
use mpc_core::Params;

fn bench_ksupplier(c: &mut Criterion) {
    let mut group = c.benchmark_group("ksupplier");
    group.sample_size(10);
    for nc in [400usize, 1200] {
        let ns = nc / 3;
        let (metric, customers, suppliers) = supplier_instance(nc, ns, 42);
        let params = Params::practical(6, 0.1, 42);
        group.bench_with_input(BenchmarkId::new("ours-3eps", nc), &nc, |b, _| {
            b.iter(|| mpc_ksupplier(&metric, &customers, &suppliers, 8, &params))
        });
        group.bench_with_input(BenchmarkId::new("seq-3", nc), &nc, |b, _| {
            b.iter(|| sequential_ksupplier(&metric, &customers, &suppliers, 8))
        });
    }
    group.finish();
}

fn bench_dominating(c: &mut Criterion) {
    let n = 1200;
    let metric = Workload::Uniform.build(n, 42);
    let tau = distance_quantile(&metric, 0.1, 42);
    let mut group = c.benchmark_group("dominating-set");
    group.sample_size(10);
    for m in [4usize, 16] {
        let params = Params::practical(m, 0.1, 42);
        group.bench_with_input(BenchmarkId::new("mis-based", m), &m, |b, _| {
            b.iter(|| mpc_dominating_set(&metric, tau, &params))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_ksupplier, bench_dominating);
criterion_main!(benches);
