//! τ-sweep ladder engine benchmarks (`BENCH_ladder.json`), three series:
//!
//! 1. **Warm-memo rung re-probe** — `warm-sorted` (sorted companion rows:
//!    each rung is a `partition_point` prefix) vs `warm-scan` (the PR-4
//!    behavior: cached distance vectors re-scanned per rung), both over an
//!    identical fully warmed memo at d=32, n=1e5, Q=32, 6 rungs, threads=1.
//!    The ISSUE 5 acceptance criterion reads off this pair: `warm-sorted`
//!    must be ≥ 2× faster than `warm-scan`.
//! 2. **Sharded-memo warm hits** — bulk hit traffic through the sharded
//!    locks at threads {1, default} (deduplicated — on a 1-core host only
//!    `t1` runs, honestly recording t_default ≈ t1).
//! 3. **Multi-τ vs per-τ kernels** — `EuclideanSpace::count_within_taus`
//!    classifying one candidate pass against all 6 rungs vs the per-τ
//!    `count_within` loop (no memo: raw kernels).
//!
//! The consistency suites (`crates/metric/tests/kernel_consistency.rs`,
//! memo unit tests) separately pin that every pair of ids computes
//! identical answers.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mpc_core::memo::MemoizedSpace;
use mpc_metric::{datasets, EuclideanSpace, MetricSpace, PointId};
use rayon::with_threads;

/// Thread counts to measure: sequential and the process default,
/// deduplicated.
fn thread_variants() -> Vec<usize> {
    let mut v = vec![1, rayon::default_threads()];
    v.sort_unstable();
    v.dedup();
    v
}

fn bench_ladder(c: &mut Criterion) {
    let mut group = c.benchmark_group("ladder");
    group.sample_size(10);

    let (n, dim, q) = (100_000usize, 32usize, 32usize);
    let metric = EuclideanSpace::new(datasets::uniform_cube(n, dim, 7));
    let candidates: Vec<u32> = (0..n as u32).collect();
    // Queries spread across the id range with a prime stride, matching the
    // tiled group's convention.
    let vs: Vec<u32> = (0..q).map(|i| (i * 7919 % n) as u32).collect();
    let base = mpc_bench::distance_quantile(&metric, 0.2, 7);
    let rungs: Vec<f64> = (0..6).map(|i| base * 1.1f64.powi(i)).collect();

    // Q=32 rows of n=1e5 distances ≈ 3.2M words + 1.6M sorted companions:
    // comfortably inside an 8M-word cap, so nothing flushes mid-bench.
    let sorted = MemoizedSpace::with_capacity(&metric, 1 << 23);
    let scan = MemoizedSpace::with_capacity(&metric, 1 << 23).without_sorted_rows();
    for memo in [&sorted, &scan] {
        // Warm pass: fill every query row.
        let _ = memo.count_within_many(&vs, &candidates, rungs[0]);
    }
    // Retrofit the sorted companions outside the measured region.
    sorted.prewarm_taus(&rungs);
    assert!(sorted.sorted_rows_built() >= q as u64, "prewarm must sort");

    // Series 1: the acceptance pair, pinned to threads=1 (pure data
    // structure work — no parallelism in either id).
    for (id, memo) in [("warm-sorted", &sorted), ("warm-scan", &scan)] {
        group.bench_with_input(
            BenchmarkId::new(format!("{id}-d{dim}-n{n}-q{q}"), "t1"),
            &1usize,
            |b, &t| {
                b.iter(|| {
                    with_threads(t, || {
                        rungs
                            .iter()
                            .map(|&tau| memo.count_within_many(&vs, &candidates, tau))
                            .collect::<Vec<_>>()
                    })
                })
            },
        );
    }

    // Series 2: warm hit traffic through the sharded locks.
    for t in thread_variants() {
        group.bench_with_input(
            BenchmarkId::new(format!("shard-hits-d{dim}-n{n}-q{q}"), format!("t{t}")),
            &t,
            |b, &t| {
                b.iter(|| with_threads(t, || sorted.count_within_many(&vs, &candidates, rungs[3])))
            },
        );
    }

    // Series 3: one-pass multi-τ kernel vs the per-τ loop on the raw
    // Euclidean kernels (no memo involved).
    for t in thread_variants() {
        group.bench_with_input(
            BenchmarkId::new(format!("multitau-d{dim}-n{n}-q{q}"), format!("t{t}")),
            &t,
            |b, &t| {
                b.iter(|| {
                    with_threads(t, || {
                        vs.iter()
                            .map(|&v| metric.count_within_taus(PointId(v), &candidates, &rungs))
                            .collect::<Vec<_>>()
                    })
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new(format!("pertau-d{dim}-n{n}-q{q}"), format!("t{t}")),
            &t,
            |b, &t| {
                b.iter(|| {
                    with_threads(t, || {
                        vs.iter()
                            .map(|&v| {
                                rungs
                                    .iter()
                                    .map(|&tau| metric.count_within(PointId(v), &candidates, tau))
                                    .collect::<Vec<usize>>()
                            })
                            .collect::<Vec<_>>()
                    })
                })
            },
        );
    }

    group.finish();
}

criterion_group!(benches, bench_ladder);
criterion_main!(benches);
