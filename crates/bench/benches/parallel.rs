//! 1-vs-N-thread speedups (`BENCH_parallel.json`): the bulk `count_within`
//! kernel at d ∈ {4, 32}, n ∈ {1e4, 1e5}, and one full Algorithm 5 ladder,
//! each measured at thread counts {1, 2, default} (deduplicated — on a
//! 1-core host only `t1` and `t2` run). Ids embed the thread count, e.g.
//! `parallel/count-d32-n100000/t2`, so the JSON is self-describing; the
//! determinism suite (`crates/core/tests/parallel_determinism.rs`)
//! separately pins that every variant computes identical outputs.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mpc_core::kcenter::mpc_kcenter;
use mpc_core::Params;
use mpc_metric::{datasets, EuclideanSpace, MetricSpace, PointId};
use rayon::with_threads;

/// Sorted, deduplicated thread counts to measure: sequential baseline,
/// minimal parallel, and the process default (`KCENTER_THREADS` /
/// available parallelism).
fn thread_variants() -> Vec<usize> {
    let mut v = vec![1, 2, rayon::default_threads()];
    v.sort_unstable();
    v.dedup();
    v
}

fn bench_count_within(c: &mut Criterion) {
    let mut group = c.benchmark_group("parallel");
    group.sample_size(20);
    for dim in [4usize, 32] {
        for n in [10_000usize, 100_000] {
            let metric = EuclideanSpace::new(datasets::uniform_cube(n, dim, 7));
            let tau = mpc_bench::distance_quantile(&metric, 0.2, 7);
            let candidates: Vec<u32> = (0..n as u32).collect();
            for t in thread_variants() {
                group.bench_with_input(
                    BenchmarkId::new(format!("count-d{dim}-n{n}"), format!("t{t}")),
                    &t,
                    |b, &t| {
                        b.iter(|| {
                            with_threads(t, || metric.count_within(PointId(0), &candidates, tau))
                        })
                    },
                );
            }
        }
    }
    group.finish();
}

fn bench_ladder(c: &mut Criterion) {
    let mut group = c.benchmark_group("parallel");
    group.sample_size(10);
    let (n, k, m) = (10_000, 16, 8);
    let metric = EuclideanSpace::new(datasets::gaussian_clusters(n, 8, k, 0.05, 42));
    let params = Params::practical(m, 0.1, 42);
    for t in thread_variants() {
        group.bench_with_input(
            BenchmarkId::new(format!("kcenter-ladder-n{n}-k{k}-m{m}"), format!("t{t}")),
            &t,
            |b, &t| b.iter(|| with_threads(t, || mpc_kcenter(&metric, k, &params))),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_count_within, bench_ladder);
criterion_main!(benches);
