//! Serving-layer benchmarks (`BENCH_serving.json`): the three costs that
//! decide whether the incremental `DiversityIndex` earns its keep over
//! re-running batch Algorithm 5/2 per query.
//!
//! * `serving/insert/n2000` — absorbing a 2,000-point burst into a warm
//!   index (per-insert cost is O(coreset_k) distance evals; no rebuilds
//!   on this path).
//! * `serving/query-warm/kmix` — one k-center + k-diversity pair against
//!   a live snapshot whose memo and answer caches are hot (the steady
//!   high-QPS state; mixed `k` keeps the answer cache from trivializing
//!   it, matching `examples/serving_diversification.rs`). Criterion's
//!   sample distribution over this id is the query p50/p95 record.
//! * `serving/refresh/incremental` vs `serving/refresh/batch` — the
//!   coreset-merge path. Both arms run the *identical* per-iteration
//!   work on a long-lived index (absorb a 2% burst, snapshot, serve one
//!   query); the batch arm additionally forces `refresh_all`, i.e.
//!   rebuilds every shard coreset from scratch the way a batch pipeline
//!   would. Their ratio is the incremental-vs-rebuild speedup the
//!   ISSUE-7 acceptance criterion reads off this file.
//!
//! `bench_diff --threshold 75` gates regressions in CI like the other
//! groups.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mpc_metric::{datasets, PointId, PointSet};
use mpc_serving::{DiversityIndex, IndexParams};
use rayon::with_threads;

const DIM: usize = 16;
const SEED: u64 = 29;
const N: usize = 20_000;

fn filled_index(points: &PointSet, n: usize) -> DiversityIndex {
    let mut index = DiversityIndex::new(DIM, IndexParams::new(8, 16, SEED));
    for i in 0..n as u32 {
        index.insert(points.coords(PointId(i)));
    }
    index.refresh_all();
    index
}

/// Streams `count` coordinates into the index, cycling through the
/// dataset (the index keeps growing across iterations — steady-state
/// serving shape; insert cost is size-independent).
fn absorb_burst(index: &mut DiversityIndex, points: &PointSet, cursor: &mut u32, count: usize) {
    for _ in 0..count {
        index.insert(points.coords(PointId(*cursor % points.len() as u32)));
        *cursor = cursor.wrapping_add(1);
    }
}

fn bench_serving(c: &mut Criterion) {
    let mut group = c.benchmark_group("serving");
    group.sample_size(10);
    let points = datasets::gaussian_clusters(N, DIM, 12, 0.05, SEED);

    group.bench_function(BenchmarkId::new("insert", "n2000"), |b| {
        let mut index = filled_index(&points, N);
        let mut cursor = 0u32;
        b.iter(|| {
            with_threads(1, || {
                absorb_burst(&mut index, &points, &mut cursor, 2_000);
                index.len() as u64
            })
        })
    });

    group.bench_function(BenchmarkId::new("query-warm", "kmix"), |b| {
        let mut index = filled_index(&points, N);
        let mut snap = index.snapshot();
        // Prime memo + caches once; iterations then measure the steady
        // high-QPS state (cache hits plus occasional re-walks).
        for k in 2..11 {
            snap.kcenter(k);
            snap.kdiversity(k);
        }
        let mut q = 0usize;
        b.iter(|| {
            with_threads(1, || {
                let k = 2 + (q % 9);
                q += 1;
                let kc = snap.kcenter(k);
                let kd = snap.kdiversity(k);
                kc.radius.to_bits() ^ kd.diversity.to_bits()
            })
        })
    });

    group.bench_function(BenchmarkId::new("user-stream", "chunk4096"), |b| {
        // The drifting user-embedding stream shared with the grid bench,
        // absorbed chunk-by-chunk the way a production feed would arrive:
        // O(chunk) staging memory regardless of stream length.
        let mut index = filled_index(&points, N);
        let mut offset = 0u64;
        b.iter(|| {
            with_threads(1, || {
                datasets::user_embeddings_chunked(
                    4_096,
                    DIM,
                    12,
                    0.02,
                    1e-4,
                    SEED ^ offset,
                    512,
                    |batch| {
                        for row in batch.chunks_exact(DIM) {
                            index.insert(row);
                        }
                    },
                );
                offset = offset.wrapping_add(1);
                index.len() as u64
            })
        })
    });

    group.bench_function(BenchmarkId::new("refresh", "incremental"), |b| {
        let mut index = filled_index(&points, N);
        let mut cursor = 0u32;
        b.iter(|| {
            with_threads(1, || {
                absorb_burst(&mut index, &points, &mut cursor, N / 50);
                let mut snap = index.snapshot();
                snap.kcenter(8).radius.to_bits()
            })
        })
    });

    group.bench_function(BenchmarkId::new("refresh", "batch"), |b| {
        let mut index = filled_index(&points, N);
        let mut cursor = 0u32;
        b.iter(|| {
            with_threads(1, || {
                absorb_burst(&mut index, &points, &mut cursor, N / 50);
                index.refresh_all();
                let mut snap = index.snapshot();
                snap.kcenter(8).radius.to_bits()
            })
        })
    });

    group.finish();
}

criterion_group!(benches, bench_serving);
criterion_main!(benches);
