//! Speed-tier benchmarks (`BENCH_speed.json`): the multi-query
//! `count_within_many` kernel at every [`SpeedTier`], on the same
//! d=32 / n=1e5 / Q=1024 shape whose `tiled/many` median is the PR-6
//! acceptance baseline. Ids embed the tier, e.g.
//! `speed/many-d32-n100000-q1024/soa+sketch`.
//!
//! The acceptance criterion reads off this group against
//! `BENCH_tiled.json`: `speed/…/soa+sketch` must be ≥ 2× faster than
//! `tiled/many-d32-n100000-q1024/t1`. The tier proptests
//! (`crates/metric/tests/speed_tiers.rs`) separately pin that every tier
//! computes bit-identical answers, so this group measures pure speed —
//! there is no accuracy axis to trade against.
//!
//! Tiers are fixed per space via `with_speed_tier` (not `KCENTER_SPEED`),
//! so one run measures all three; the sketch/SoA builds happen on the
//! first iteration and are amortized away by the remaining samples, which
//! matches production shape (the ladder reuses one space across rungs).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mpc_metric::{datasets, EuclideanSpace, MetricSpace, PointId, SpeedTier};
use rayon::with_threads;

fn bench_speed(c: &mut Criterion) {
    let mut group = c.benchmark_group("speed");
    group.sample_size(10);
    let tiers = [SpeedTier::Exact, SpeedTier::Soa, SpeedTier::SoaSketch];
    for (dim, n, q) in [(32usize, 100_000usize, 1024usize), (32, 10_000, 256)] {
        let candidates: Vec<u32> = (0..n as u32).collect();
        let vs: Vec<u32> = (0..q).map(|i| (i * 7919 % n) as u32).collect();
        for tier in tiers {
            let metric =
                EuclideanSpace::new(datasets::uniform_cube(n, dim, 7)).with_speed_tier(tier);
            let tau = mpc_bench::distance_quantile(&metric, 0.2, 7);
            group.bench_with_input(
                BenchmarkId::new(format!("many-d{dim}-n{n}-q{q}"), tier.name()),
                &tier,
                |b, _| {
                    b.iter(|| with_threads(1, || metric.count_within_many(&vs, &candidates, tau)))
                },
            );
        }
    }

    // Multi-τ ladder sweep per tier, on the exact workload of
    // `ladder/multitau-d32-n100000-q32/t1` in `BENCH_ladder.json` (same
    // dataset seed, queries, and 6-rung schedule), so the two groups are
    // directly comparable: the ISSUE 8 acceptance criterion requires
    // `speed/ladder_taus-…/soa+sketch` ≥ 2× faster than that baseline
    // median.
    {
        let (dim, n, q) = (32usize, 100_000usize, 32usize);
        let candidates: Vec<u32> = (0..n as u32).collect();
        let vs: Vec<u32> = (0..q).map(|i| (i * 7919 % n) as u32).collect();
        for tier in tiers {
            let metric =
                EuclideanSpace::new(datasets::uniform_cube(n, dim, 7)).with_speed_tier(tier);
            let base = mpc_bench::distance_quantile(&metric, 0.2, 7);
            let rungs: Vec<f64> = (0..6).map(|i| base * 1.1f64.powi(i)).collect();
            group.bench_with_input(
                BenchmarkId::new(format!("ladder_taus-d{dim}-n{n}-q{q}"), tier.name()),
                &tier,
                |b, _| {
                    b.iter(|| {
                        with_threads(1, || {
                            vs.iter()
                                .map(|&v| metric.count_within_taus(PointId(v), &candidates, &rungs))
                                .collect::<Vec<_>>()
                        })
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_speed);
criterion_main!(benches);
