//! Microbenchmarks of the substrates: distance kernels, GMM, trim, and the
//! simulator collectives — the building blocks whose costs dominate the
//! pipelines.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mpc_bench::workloads::Workload;
use mpc_core::gmm::gmm;
use mpc_graph::mis::{trim, TieBreak};
use mpc_graph::{GraphView, ThresholdGraph};
use mpc_metric::{datasets, EuclideanSpace, HammingSpace, MatrixSpace, MetricSpace, PointId};
use mpc_sim::Cluster;

/// Re-exposes a space through `n`/`dist`/`point_weight` only, so every
/// threshold query falls back to the `MetricSpace` trait defaults —
/// per-pair `within` via `dist`, sqrt included. This is exactly the
/// pre-kernel hot path (the `&M` blanket impl used to drop the `within`
/// override too), and the baseline the `kernels/*` benchmarks compare
/// against.
struct ScalarOnly<M>(M);

impl<M: MetricSpace> MetricSpace for ScalarOnly<M> {
    fn n(&self) -> usize {
        self.0.n()
    }
    fn dist(&self, i: PointId, j: PointId) -> f64 {
        self.0.dist(i, j)
    }
    fn point_weight(&self) -> u64 {
        self.0.point_weight()
    }
}

fn bench_metrics(c: &mut Criterion) {
    let mut group = c.benchmark_group("metric-dist");
    for dim in [2usize, 16, 128] {
        let e = EuclideanSpace::new(datasets::uniform_cube(1000, dim, 1));
        group.bench_with_input(BenchmarkId::new("euclidean", dim), &dim, |b, _| {
            b.iter(|| {
                let mut acc = 0.0;
                for i in 0..999u32 {
                    acc += e.dist(PointId(i), PointId(i + 1));
                }
                acc
            })
        });
    }
    let h = HammingSpace::from_set_bits(1000, 256, &datasets::random_bitsets(1000, 256, 0.3, 1));
    group.bench_function("hamming-256b", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for i in 0..999u32 {
                acc += h.dist(PointId(i), PointId(i + 1));
            }
            acc
        })
    });
    group.finish();
}

fn bench_gmm(c: &mut Criterion) {
    let mut group = c.benchmark_group("gmm");
    group.sample_size(10);
    for n in [1000usize, 10_000] {
        let metric = Workload::Uniform.build(n, 42);
        let subset: Vec<u32> = (0..n as u32).collect();
        group.bench_with_input(BenchmarkId::new("k32", n), &n, |b, _| {
            b.iter(|| gmm(&metric, &subset, 32))
        });
    }
    group.finish();
}

fn bench_trim(c: &mut Criterion) {
    let n = 2000;
    let metric = Workload::Uniform.build(n, 42);
    let tau = mpc_bench::distance_quantile(&metric, 0.2, 42);
    let g = ThresholdGraph::new(&metric, tau);
    let sample: Vec<u32> = (0..n as u32).step_by(4).collect();
    let weights: Vec<f64> = (0..n).map(|i| ((i * 31) % 97) as f64).collect();
    c.bench_function("trim-500-sample", |b| {
        b.iter(|| trim(&g, &sample, &weights, TieBreak::ById))
    });
}

fn bench_collectives(c: &mut Criterion) {
    let mut group = c.benchmark_group("sim-collectives");
    for m in [8usize, 64] {
        group.bench_with_input(BenchmarkId::new("all_broadcast", m), &m, |b, &m| {
            b.iter(|| {
                let mut cluster = Cluster::new(m, 1);
                let contributions: Vec<Vec<u32>> = (0..m).map(|i| vec![i as u32; 100]).collect();
                cluster.all_broadcast("bench", contributions, 2)
            })
        });
    }
    group.finish();
}

/// Scalar-vs-batched threshold kernels (`BENCH_kernels.json`): the same
/// `count_within` / `degree_among` queries answered by the per-pair loop
/// default and by the specialized flat-storage kernels, across dimensions
/// and candidate-set sizes.
fn bench_kernels(c: &mut Criterion) {
    let mut group = c.benchmark_group("kernels");
    group.sample_size(20);
    for dim in [4usize, 32] {
        for n in [1_000usize, 10_000, 100_000] {
            let metric = EuclideanSpace::new(datasets::uniform_cube(n, dim, 7));
            let scalar = ScalarOnly(metric.clone());
            let tau = mpc_bench::distance_quantile(&metric, 0.2, 7);
            let candidates: Vec<u32> = (0..n as u32).collect();
            group.bench_with_input(
                BenchmarkId::new(format!("euclidean-count-batched-d{dim}"), n),
                &n,
                |b, _| b.iter(|| metric.count_within(PointId(0), &candidates, tau)),
            );
            group.bench_with_input(
                BenchmarkId::new(format!("euclidean-count-scalar-d{dim}"), n),
                &n,
                |b, _| b.iter(|| scalar.count_within(PointId(0), &candidates, tau)),
            );
            // The graph-layer consumers the algorithms actually call.
            let g_fast = ThresholdGraph::new(&metric, tau);
            let g_slow = ThresholdGraph::new(&scalar, tau);
            group.bench_with_input(
                BenchmarkId::new(format!("degree-among-batched-d{dim}"), n),
                &n,
                |b, _| b.iter(|| g_fast.degree_among(0, &candidates)),
            );
            group.bench_with_input(
                BenchmarkId::new(format!("degree-among-scalar-d{dim}"), n),
                &n,
                |b, _| b.iter(|| g_slow.degree_among(0, &candidates)),
            );
        }
    }
    // Precomputed-matrix spaces: the kernel is a contiguous row scan.
    let n = 2000;
    let e = EuclideanSpace::new(datasets::uniform_cube(n, 3, 9));
    let m = MatrixSpace::from_fn(n, |i, j| e.dist(PointId(i as u32), PointId(j as u32))).unwrap();
    let tau = mpc_bench::distance_quantile(&m, 0.2, 9);
    let scalar = ScalarOnly(m.clone());
    let candidates: Vec<u32> = (0..n as u32).collect();
    group.bench_function("matrix-count-batched-n2000", |b| {
        b.iter(|| m.count_within(PointId(0), &candidates, tau))
    });
    group.bench_function("matrix-count-scalar-n2000", |b| {
        b.iter(|| scalar.count_within(PointId(0), &candidates, tau))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_metrics,
    bench_gmm,
    bench_trim,
    bench_collectives,
    bench_kernels
);
criterion_main!(benches);
