//! Multi-query tiled kernel benchmarks (`BENCH_tiled.json`): the
//! `count_within_many` Gram-block kernel against the Q-independent-calls
//! baseline (`count_within` in a loop), at d ∈ {4, 32} × n ∈ {1e4, 1e5} ×
//! Q ∈ {64, 1024} and thread counts {1, default} (deduplicated — on a
//! 1-core host only `t1` runs). Ids embed every axis, e.g.
//! `tiled/many-d32-n100000-q1024/t1` vs `tiled/loop-d32-n100000-q1024/t1`.
//!
//! The ISSUE 4 acceptance criterion reads off this group: at threads=1,
//! d=32, n=1e5, Q=1024, `many` must be ≥ 2× faster than `loop` — pure
//! cache blocking + the cached-norm dot-product inner loop, no
//! parallelism. The consistency proptests
//! (`crates/metric/tests/kernel_consistency.rs`) separately pin that both
//! ids compute identical answers.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mpc_metric::{datasets, EuclideanSpace, MetricSpace, PointId};
use rayon::with_threads;

/// Thread counts to measure: sequential and the process default,
/// deduplicated.
fn thread_variants() -> Vec<usize> {
    let mut v = vec![1, rayon::default_threads()];
    v.sort_unstable();
    v.dedup();
    v
}

fn bench_tiled(c: &mut Criterion) {
    let mut group = c.benchmark_group("tiled");
    group.sample_size(10);
    for dim in [4usize, 32] {
        for n in [10_000usize, 100_000] {
            let metric = EuclideanSpace::new(datasets::uniform_cube(n, dim, 7));
            let tau = mpc_bench::distance_quantile(&metric, 0.2, 7);
            let candidates: Vec<u32> = (0..n as u32).collect();
            for q in [64usize, 1024] {
                // Queries spread across the id range with a prime stride,
                // so tiles see no accidental locality between query rows.
                let vs: Vec<u32> = (0..q).map(|i| (i * 7919 % n) as u32).collect();
                for t in thread_variants() {
                    group.bench_with_input(
                        BenchmarkId::new(format!("many-d{dim}-n{n}-q{q}"), format!("t{t}")),
                        &t,
                        |b, &t| {
                            b.iter(|| {
                                with_threads(t, || metric.count_within_many(&vs, &candidates, tau))
                            })
                        },
                    );
                    group.bench_with_input(
                        BenchmarkId::new(format!("loop-d{dim}-n{n}-q{q}"), format!("t{t}")),
                        &t,
                        |b, &t| {
                            b.iter(|| {
                                with_threads(t, || {
                                    vs.iter()
                                        .map(|&v| metric.count_within(PointId(v), &candidates, tau))
                                        .collect::<Vec<usize>>()
                                })
                            })
                        },
                    );
                }
            }
        }
    }
    group.finish();
}

criterion_group!(benches, bench_tiled);
criterion_main!(benches);
