//! E8-W Criterion benches: framing overhead of the byte-level transport.
//!
//! Runs the same Algorithm 5 ladder workload on the `sim` backend (direct
//! in-memory hand-off, zero serialization) and the `loopback` backend
//! (every collective encoded into length-prefixed frames, copied through
//! per-machine arenas, and decoded back). The ratio of the two medians is
//! the end-to-end cost of the wire format itself; the acceptance bar is
//! ≤ 10% on this workload. Raw collectives are benched too, so a
//! regression can be attributed to encode/decode versus the ladder's
//! compute share.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mpc_bench::workloads::Workload;
use mpc_core::kcenter::mpc_kcenter_on;
use mpc_core::Params;
use mpc_sim::{Cluster, TransportKind};

fn bench_transport(c: &mut Criterion) {
    let mut group = c.benchmark_group("transport");
    group.sample_size(10);

    // End-to-end ladder: compute-dominated, so this is the honest
    // "what does the wire cost a real run" number.
    for n in [500usize, 2000] {
        let metric = Workload::Clustered.build(n, 42);
        let params = Params::practical(8, 0.1, 42);
        for kind in [TransportKind::Sim, TransportKind::Loopback] {
            group.bench_with_input(
                BenchmarkId::new(format!("ladder-{}", kind.name()), n),
                &n,
                |b, _| {
                    b.iter(|| {
                        let mut cluster = Cluster::with_transport(8, 42, kind);
                        mpc_kcenter_on(&mut cluster, &metric, 10, &params)
                    })
                },
            );
        }
    }

    // Raw collective throughput: all_broadcast of per-machine id lists,
    // serialization-dominated, isolating the codec + arena cost.
    for items in [256usize, 4096] {
        let contribs: Vec<Vec<u32>> = (0..8)
            .map(|mach| (0..items as u32).map(|i| i * 8 + mach).collect())
            .collect();
        for kind in [TransportKind::Sim, TransportKind::Loopback] {
            group.bench_with_input(
                BenchmarkId::new(format!("all-broadcast-{}", kind.name()), items),
                &items,
                |b, _| {
                    b.iter(|| {
                        let mut cluster = Cluster::with_transport(8, 42, kind);
                        cluster.all_broadcast("bench/all_broadcast", contribs.clone(), 1)
                    })
                },
            );
        }
    }

    group.finish();
}

criterion_group!(benches, bench_transport);
criterion_main!(benches);
