//! Benchmark regression gate: compares a fresh criterion run against a
//! checked-in `BENCH_*.json` and fails on median regressions.
//!
//! ```text
//! bench_diff [--threshold PCT] [--allow-missing] <baseline.json> <fresh.json>
//! bench_diff --list <file.json> [<file.json>…]
//! ```
//!
//! Both files use the shim's `CRITERION_JSON` format — a JSON array of
//! `{"id", "median_ns", "min_ns", "samples"}` records. For every id
//! present in both files the fresh median may exceed the baseline median
//! by at most `PCT` percent (default 25). Ids only in one file are
//! reported **with their median** (so a rename or filter still shows what
//! the orphaned entry measured): a baseline id absent from the fresh run
//! is an **error** — a silently dropped benchmark would otherwise read as
//! a pass forever — unless `--allow-missing` downgrades it to a warning
//! (for deliberately filtered runs). Fresh-only ids are never fatal, so
//! adding benchmarks doesn't require regenerating baselines in the same
//! commit.
//!
//! `--list` skips the comparison and dumps every record of the given
//! file(s), one `id → median` line each — a quick way to inspect a
//! checked-in baseline without reading raw JSON.
//!
//! Exit status: 0 when every shared id is within the threshold, 1
//! otherwise — which is what lets CI use this as a smoke leg:
//!
//! ```text
//! CRITERION_JSON=/tmp/fresh.json cargo bench -p mpc-bench --bench tiled
//! cargo run --release -p mpc-bench --bin bench_diff -- BENCH_tiled.json /tmp/fresh.json
//! ```
//!
//! No serde: the shim's writer emits one record per line with no nested
//! structures or escaped quotes, so a string scanner is enough (and keeps
//! the tool dependency-free).

use std::process::ExitCode;

/// One benchmark measurement parsed back out of the shim's JSON.
struct Record {
    id: String,
    median_ns: f64,
}

/// Extracts the string value of `"key": "…"` from one object's text.
fn field_str(obj: &str, key: &str) -> Option<String> {
    let pat = format!("\"{key}\":");
    let rest = obj[obj.find(&pat)? + pat.len()..].trim_start();
    let rest = rest.strip_prefix('"')?;
    Some(rest[..rest.find('"')?].to_string())
}

/// Extracts the numeric value of `"key": <number>` from one object's text.
fn field_num(obj: &str, key: &str) -> Option<f64> {
    let pat = format!("\"{key}\":");
    let rest = obj[obj.find(&pat)? + pat.len()..].trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || "+-.eE".contains(c)))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Parses every `{…}` object in a `CRITERION_JSON` file. Objects missing
/// either field are an error — a malformed baseline silently parsed as
/// empty would pass every gate.
fn parse_records(text: &str, path: &str) -> Result<Vec<Record>, String> {
    let mut records = Vec::new();
    let mut rest = text;
    while let Some(start) = rest.find('{') {
        let end = rest[start..]
            .find('}')
            .ok_or_else(|| format!("{path}: unterminated object"))?;
        let obj = &rest[start..start + end + 1];
        let id = field_str(obj, "id").ok_or_else(|| format!("{path}: object without id: {obj}"))?;
        let median_ns = field_num(obj, "median_ns")
            .ok_or_else(|| format!("{path}: record {id} without median_ns"))?;
        records.push(Record { id, median_ns });
        rest = &rest[start + end + 1..];
    }
    if records.is_empty() {
        return Err(format!("{path}: no benchmark records found"));
    }
    Ok(records)
}

/// The comparison proper, decoupled from I/O so it is unit-testable:
/// returns the report lines and whether the gate passed. One-sided ids are
/// always reported with their median so the report carries every number
/// both files contain.
fn compare(
    baseline: &[Record],
    fresh: &[Record],
    threshold_pct: f64,
    allow_missing: bool,
) -> Result<(Vec<String>, bool), String> {
    let allowed = 1.0 + threshold_pct / 100.0;
    let mut lines = Vec::new();
    let mut ok = true;
    let mut compared = 0usize;
    for base in baseline {
        let Some(new) = fresh.iter().find(|r| r.id == base.id) else {
            if allow_missing {
                lines.push(format!(
                    "base-only {:60} {:>12.0} ns -> (absent)      (not in fresh run)",
                    base.id, base.median_ns
                ));
            } else {
                ok = false;
                lines.push(format!(
                    "MISSING   {:60} {:>12.0} ns -> (absent)      (baseline id not in fresh run)",
                    base.id, base.median_ns
                ));
            }
            continue;
        };
        compared += 1;
        let ratio = new.median_ns / base.median_ns;
        let verdict = if ratio > allowed {
            ok = false;
            "REGRESSED"
        } else {
            "ok"
        };
        lines.push(format!(
            "{verdict:9} {:60} {:>12.0} ns -> {:>12.0} ns  ({:+.1}%)",
            base.id,
            base.median_ns,
            new.median_ns,
            (ratio - 1.0) * 100.0
        ));
    }
    for new in fresh {
        if !baseline.iter().any(|r| r.id == new.id) {
            lines.push(format!(
                "new       {:60} (absent)      -> {:>12.0} ns  (no baseline)",
                new.id, new.median_ns
            ));
        }
    }
    if compared == 0 {
        return Err("no shared benchmark ids between baseline and fresh run".into());
    }
    lines.push(format!(
        "{compared} benchmarks compared, threshold +{threshold_pct}% on medians: {}",
        if ok { "PASS" } else { "FAIL" }
    ));
    Ok((lines, ok))
}

/// `--list` rendering of one parsed file.
fn list_lines(path: &str, records: &[Record]) -> Vec<String> {
    let mut lines = vec![format!("{path}: {} records", records.len())];
    for r in records {
        lines.push(format!("  {:60} {:>12.0} ns", r.id, r.median_ns));
    }
    lines
}

fn run() -> Result<bool, String> {
    let mut threshold_pct = 25.0f64;
    let mut allow_missing = false;
    let mut list = false;
    let mut files: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--threshold" => {
                let v = args.next().ok_or("--threshold needs a value")?;
                threshold_pct = v
                    .parse()
                    .map_err(|_| format!("bad --threshold value: {v}"))?;
            }
            "--allow-missing" => allow_missing = true,
            // Former opt-in for the now-default strictness; kept so old
            // invocations don't break.
            "--require-all" => allow_missing = false,
            "--list" => list = true,
            "--help" | "-h" => {
                println!(
                    "usage: bench_diff [--threshold PCT] [--allow-missing] \
                     <baseline.json> <fresh.json>\n       bench_diff --list <file.json>…"
                );
                return Ok(true);
            }
            _ => files.push(arg),
        }
    }
    let read = |p: &str| std::fs::read_to_string(p).map_err(|e| format!("{p}: {e}"));
    if list {
        if files.is_empty() {
            return Err("--list needs at least one file".into());
        }
        for path in &files {
            for line in list_lines(path, &parse_records(&read(path)?, path)?) {
                println!("{line}");
            }
        }
        return Ok(true);
    }
    let [baseline_path, fresh_path] = files.as_slice() else {
        return Err("expected exactly two files: <baseline.json> <fresh.json>".into());
    };
    let baseline = parse_records(&read(baseline_path)?, baseline_path)?;
    let fresh = parse_records(&read(fresh_path)?, fresh_path)?;
    let (lines, ok) = compare(&baseline, &fresh, threshold_pct, allow_missing)?;
    for line in &lines {
        println!("{line}");
    }
    println!("baseline: {baseline_path}");
    Ok(ok)
}

fn main() -> ExitCode {
    match run() {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::FAILURE,
        Err(e) => {
            eprintln!("bench_diff: {e}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"[
  {"id": "tiled/many-d4-n10000-q64/t1", "median_ns": 1706570.0, "min_ns": 1606963.0, "samples": 10},
  {"id": "tiled/loop-d4-n10000-q64/t1", "median_ns": 1553935.0, "min_ns": 1477839.0, "samples": 10}
]
"#;

    #[test]
    fn parses_shim_output() {
        let recs = parse_records(SAMPLE, "sample").unwrap();
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[0].id, "tiled/many-d4-n10000-q64/t1");
        assert_eq!(recs[0].median_ns, 1706570.0);
        assert_eq!(recs[1].median_ns, 1553935.0);
    }

    #[test]
    fn rejects_empty_and_malformed() {
        assert!(parse_records("[]", "empty").is_err());
        assert!(parse_records("[{\"median_ns\": 1.0}]", "noid").is_err());
        assert!(parse_records("[{\"id\": \"x\"}]", "nomedian").is_err());
    }

    #[test]
    fn numeric_field_handles_scientific_notation() {
        let obj = "{\"id\": \"x\", \"median_ns\": 1.5e6}";
        assert_eq!(field_num(obj, "median_ns"), Some(1.5e6));
    }

    fn rec(id: &str, median_ns: f64) -> Record {
        Record {
            id: id.into(),
            median_ns,
        }
    }

    #[test]
    fn one_sided_entries_report_their_medians() {
        let baseline = [rec("shared", 100.0), rec("gone", 250.0)];
        let fresh = [rec("shared", 110.0), rec("added", 75.0)];
        let (lines, ok) = compare(&baseline, &fresh, 25.0, true).unwrap();
        assert!(ok, "--allow-missing keeps one-sided ids non-fatal");
        let gone = lines.iter().find(|l| l.contains("gone")).unwrap();
        assert!(gone.starts_with("base-only"), "{gone}");
        assert!(gone.contains("250 ns"), "must carry the median: {gone}");
        let added = lines.iter().find(|l| l.contains("added")).unwrap();
        assert!(added.starts_with("new"), "{added}");
        assert!(added.contains("75 ns"), "must carry the median: {added}");
        assert!(lines.last().unwrap().contains("1 benchmarks compared"));
    }

    #[test]
    fn missing_baseline_entries_fail_by_default() {
        let baseline = [rec("shared", 100.0), rec("gone", 250.0)];
        let fresh = [rec("shared", 100.0)];
        let (lines, ok) = compare(&baseline, &fresh, 25.0, false).unwrap();
        assert!(!ok, "a dropped benchmark must not read as a pass");
        let gone = lines.iter().find(|l| l.contains("gone")).unwrap();
        assert!(gone.starts_with("MISSING"), "{gone}");
        assert!(gone.contains("250 ns"), "{gone}");
        // Fresh-only ids stay non-fatal even in strict mode.
        let (_, ok) = compare(&[rec("shared", 100.0)], &fresh, 25.0, false).unwrap();
        assert!(ok);
    }

    #[test]
    fn regressions_fail_within_threshold_passes() {
        let baseline = [rec("a", 100.0), rec("b", 100.0)];
        let fresh = [rec("a", 124.0), rec("b", 126.0)];
        let (lines, ok) = compare(&baseline, &fresh, 25.0, false).unwrap();
        assert!(!ok);
        assert!(lines.iter().any(|l| l.starts_with("ok") && l.contains('a')));
        assert!(lines.iter().any(|l| l.starts_with("REGRESSED")));
    }

    #[test]
    fn disjoint_files_are_an_error_not_a_pass() {
        let baseline = [rec("only-here", 1.0)];
        let fresh = [rec("only-there", 1.0)];
        assert!(compare(&baseline, &fresh, 25.0, false).is_err());
    }

    #[test]
    fn list_mode_prints_every_record() {
        let recs = parse_records(SAMPLE, "sample").unwrap();
        let lines = list_lines("sample", &recs);
        assert_eq!(lines.len(), 3);
        assert!(lines[0].contains("2 records"));
        assert!(lines[1].contains("tiled/many-d4-n10000-q64/t1"));
        assert!(lines[1].contains("1706570 ns"));
    }
}
