//! E10 (Table 6) — ablations of the design decisions D1–D6 (DESIGN.md §4)
//! on a fixed k-center workload: each row toggles one decision and reports
//! quality, rounds, and communication.

use mpc_core::kcenter::mpc_kcenter;
use mpc_core::{BoundarySearch, Params, PartitionStrategy};
use mpc_graph::mis::TieBreak;

use crate::table::{fnum, Table};
use crate::workloads::Workload;
use crate::Scale;

/// Runs E10.
pub fn run(scale: Scale) -> Vec<Table> {
    let seed = 29;
    let n = scale.pick(300, 1500);
    let k = 8;
    let m = 6;
    let metric = Workload::Uniform.build(n, seed);

    let base = Params::practical(m, 0.1, seed);
    let mut variants: Vec<(&str, Params)> = vec![("baseline (practical)", base.clone())];

    let mut v = base.clone();
    v.tie_break = TieBreak::Strict;
    variants.push(("D1: strict trim ties (paper)", v));

    let mut v = base.clone();
    v.enable_pruning = false;
    variants.push(("D2: pruning disabled", v));

    let mut v = base.clone();
    v.exact_degrees = true;
    variants.push(("D3: exact degrees", v));

    let mut v = base.clone();
    v.boundary_search = BoundarySearch::Linear;
    variants.push(("D4: linear ladder scan", v));

    let mut v = base.clone();
    v.delta = (12.0 / (v.deg_epsilon * v.deg_epsilon)).max(18.0);
    variants.push(("D5: theory constants (δ = 432)", v));

    let mut v = base.clone();
    v.partition = PartitionStrategy::Skewed(2.0);
    variants.push(("D6: skewed partition (α = 2)", v));

    let mut v = base.clone();
    v.partition = PartitionStrategy::Random;
    variants.push(("D6: random partition", v));

    let mut t = Table::new(
        "E10 (Table 6)",
        "design-decision ablations on MPC k-center (uniform, fixed n/k/m; radius lower is better)",
        &[
            "variant",
            "radius",
            "rounds",
            "max words/machine",
            "total words",
        ],
    );
    for (name, params) in variants {
        let res = mpc_kcenter(&metric, k, &params);
        t.row(vec![
            name.into(),
            fnum(res.radius),
            res.telemetry.rounds.to_string(),
            res.telemetry.max_machine_words.to_string(),
            res.telemetry.total_words.to_string(),
        ]);
    }
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_covers_all_variants() {
        let tables = run(Scale::Quick);
        assert_eq!(tables.len(), 1);
        assert_eq!(tables[0].len(), 8);
    }
}
