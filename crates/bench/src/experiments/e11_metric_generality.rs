//! E11 (Table 7) — "any metric space": the same binaries run unchanged
//! over eight metric families, staying within their guarantees relative to
//! sequential GMM. This validates the paper's central generality claim —
//! no algorithmic step ever looks at coordinates, only at the oracle.

use mpc_core::diversity::{mpc_diversity, sequential_gmm_diversity};
use mpc_core::kcenter::{mpc_kcenter, sequential_gmm_kcenter};
use mpc_core::Params;
use mpc_metric::{
    datasets, AngularSpace, ChebyshevSpace, EditDistanceSpace, EuclideanSpace, GraphMetricSpace,
    HammingSpace, JaccardSpace, ManhattanSpace, MetricSpace, PointId, PointSet,
};

use crate::table::{ratio, Table};
use crate::Scale;

fn shifted_cube(n: usize, dim: usize, seed: u64) -> PointSet {
    // Shift away from the origin so AngularSpace accepts every vector.
    let ps = datasets::uniform_cube(n, dim, seed);
    let rows: Vec<Vec<f64>> = (0..n)
        .map(|i| {
            ps.coords(PointId(i as u32))
                .iter()
                .map(|c| c + 0.1)
                .collect()
        })
        .collect();
    PointSet::from_rows(&rows)
}

fn run_one<M: MetricSpace>(t: &mut Table, name: &str, metric: &M, k: usize, params: &Params) {
    let kc = mpc_kcenter(metric, k, params);
    let kc_seq = sequential_gmm_kcenter(metric, k);
    let dv = mpc_diversity(metric, k, params);
    let dv_seq = sequential_gmm_diversity(metric, k);
    t.row(vec![
        name.into(),
        metric.n().to_string(),
        k.to_string(),
        ratio(kc.radius, kc_seq.radius),
        ratio(dv.diversity, dv_seq.diversity),
        kc.telemetry.rounds.to_string(),
        kc.telemetry.max_machine_words.to_string(),
    ]);
}

/// Runs E11.
pub fn run(scale: Scale) -> Vec<Table> {
    let seed = 37;
    let n = scale.pick(120, 600);
    let n_edit = scale.pick(60, 150); // O(len²) oracle: keep modest
    let k = 6;
    let params = Params::practical(4, 0.1, seed);

    let mut t = Table::new(
        "E11 (Table 7)",
        "metric-space generality: k-center radius / GMM-seq (≤ ~2.2 by both being bounded) and diversity / GMM-seq (≥ ~0.45) across metric families",
        &["metric", "n", "k", "kcenter/GMM", "diversity/GMM", "rounds", "max words/machine"],
    );

    run_one(
        &mut t,
        "euclidean (L2)",
        &EuclideanSpace::new(shifted_cube(n, 4, seed)),
        k,
        &params,
    );
    run_one(
        &mut t,
        "manhattan (L1)",
        &ManhattanSpace::new(shifted_cube(n, 4, seed)),
        k,
        &params,
    );
    run_one(
        &mut t,
        "chebyshev (L∞)",
        &ChebyshevSpace::new(shifted_cube(n, 4, seed)),
        k,
        &params,
    );
    run_one(
        &mut t,
        "angular",
        &AngularSpace::new(shifted_cube(n, 4, seed)),
        k,
        &params,
    );
    run_one(
        &mut t,
        "hamming (128b)",
        &HammingSpace::from_set_bits(n, 128, &datasets::random_bitsets(n, 128, 0.3, seed)),
        k,
        &params,
    );
    run_one(
        &mut t,
        "jaccard (128b)",
        &JaccardSpace::from_set_bits(n, 128, &datasets::random_bitsets(n, 128, 0.3, seed)),
        k,
        &params,
    );
    let words: Vec<String> = (0..n_edit)
        .map(|i| format!("{:08b}-{:05}", i % 256, (i * 131) % 9973))
        .collect();
    run_one(
        &mut t,
        "edit distance",
        &EditDistanceSpace::new(&words),
        k,
        &params,
    );
    run_one(
        &mut t,
        "road network",
        &GraphMetricSpace::from_edges(n, &datasets::random_road_network(n, n / 2, seed)).unwrap(),
        k,
        &params,
    );
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_covers_all_metrics() {
        let tables = run(Scale::Quick);
        assert_eq!(tables.len(), 1);
        assert_eq!(tables[0].len(), 8);
    }
}
