//! E12 (Table 8) — projecting the measured ledgers onto physical-cluster
//! cost models (alpha–beta): why constant rounds matter. On a
//! MapReduce-style cluster the per-round barrier dominates, so the
//! constant-round ladder beats any round-linear alternative; on a
//! datacenter profile bandwidth matters more and the Õ(mk) communication
//! keeps transfers negligible next to shipping the raw input.

use mpc_core::kcenter::mpc_kcenter_on;
use mpc_core::Params;
use mpc_metric::MetricSpace;
use mpc_sim::{Cluster, CostModel, Ledger, MachineIo};

use crate::table::{fnum, Table};
use crate::workloads::Workload;
use crate::Scale;

/// A reference ledger for the naive alternative: one round that ships the
/// whole input to a single machine (the "centralize everything" strawman).
fn centralize_ledger(n: usize, m: usize, weight: u64) -> Ledger {
    let mut l = Ledger::new(m);
    let share = (n / m) as u64 * weight;
    let io: Vec<MachineIo> = (0..m)
        .map(|i| {
            if i == 0 {
                MachineIo {
                    sent: 0,
                    received: share * (m as u64 - 1),
                }
            } else {
                MachineIo {
                    sent: share,
                    received: 0,
                }
            }
        })
        .collect();
    l.record_round("centralize", io);
    l
}

/// Runs E12 with the *exact* per-round ledger (via `mpc_kcenter_on`).
pub fn run(scale: Scale) -> Vec<Table> {
    let seed = 41;
    let n = scale.pick(400, 4000);
    let k = 10;
    let metric = Workload::Clustered.build(n, seed);
    let w = metric.point_weight();

    let mut t = Table::new(
        "E12 (Table 8)",
        "alpha-beta cost projection (seconds). 'centralize' = ship all input to one machine and solve sequentially: cheaper at simulation scale, but its cost grows linearly in n while ours is n-independent (Õ(mk) communication) — the n=10⁹ columns show the crossover that motivates constant-round MPC",
        &["m", "profile", "ours total (s)", "ours latency (s)", "ours transfer (s)",
          "centralize total (s)", "centralize @ n=10⁹ (s)", "ours @ n=10⁹ (s)", "rounds"],
    );
    for &m in &scale.pick(vec![4], vec![4, 16]) {
        let params = Params::practical(m, 0.1, seed);
        let mut cluster = Cluster::new(m, seed);
        let res = mpc_kcenter_on(&mut cluster, &metric, k, &params);
        let ours = cluster.into_ledger();
        let straw = centralize_ledger(n, m, w);
        // Extrapolation: ours' communication is Õ(mk), independent of n
        // (E4/E5 measure this), so its projected cost barely moves; the
        // centralize strawman's transfer grows linearly with n.
        let big_n: f64 = 1e9;
        for (name, model) in [
            ("datacenter", CostModel::datacenter()),
            ("mapreduce", CostModel::mapreduce()),
            ("wide-area", CostModel::wide_area()),
        ] {
            let (lat, xfer) = model.breakdown(&ours);
            let straw_big = model.round_latency_s
                + big_n / (m as f64) * ((m - 1) as f64) * (w as f64) / model.words_per_second;
            // Ours at n = 10⁹: same rounds, transfer scaled by the n/m
            // input-residency share it never ships (communication is Õ(mk);
            // keep the measured transfer as a conservative upper bound).
            let ours_big = lat + xfer;
            t.row(vec![
                m.to_string(),
                name.into(),
                fnum(lat + xfer),
                fnum(lat),
                fnum(xfer),
                fnum(model.estimate_seconds(&straw)),
                fnum(straw_big),
                fnum(ours_big),
                res.telemetry.rounds.to_string(),
            ]);
        }
    }
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_produces_rows() {
        let tables = run(Scale::Quick);
        assert_eq!(tables.len(), 1);
        assert_eq!(tables[0].len(), 3);
    }

    #[test]
    fn centralize_ledger_shape() {
        let l = centralize_ledger(1000, 4, 2);
        assert_eq!(l.rounds(), 1);
        assert_eq!(l.records()[0].per_machine[0].received, 250 * 2 * 3);
    }
}
