//! E13 (Table 9) — remote-edge vs remote-clique diversity: the two
//! measures the related work contrasts, side by side on the same data.
//! Remote-edge (this paper, min pairwise) and remote-clique (sum of
//! pairwise, Mirrokni–Zadimoghaddam-style randomized coresets) optimize
//! different things; the cross-evaluation columns quantify how much each
//! objective sacrifices under the other's solution.

use mpc_baselines::remote_clique::{clique_value, local_search_remote_clique, mpc_remote_clique};
use mpc_core::diversity::mpc_diversity;
use mpc_core::Params;
use mpc_metric::min_pairwise_distance;

use crate::table::{fnum, ratio, Table};
use crate::workloads::Workload;
use crate::Scale;

/// Runs E13.
pub fn run(scale: Scale) -> Vec<Table> {
    let seed = 47;
    let n = scale.pick(120, 1000);
    let k = 8;
    let params = Params::practical(4, 0.1, seed);

    let mut t = Table::new(
        "E13 (Table 9)",
        "remote-edge vs remote-clique: each MPC solution evaluated under both objectives (edge = min pairwise, clique = sum pairwise), plus the sequential local-search reference",
        &["workload", "n", "edge-alg: edge", "edge-alg: clique", "clique-alg: edge",
          "clique-alg: clique", "clique vs seq-LS", "edge rounds", "clique rounds"],
    );
    for w in Workload::ALL {
        let metric = w.build(n, seed);
        let edge = mpc_diversity(&metric, k, &params);
        let clique = mpc_remote_clique(&metric, k, &params);
        let all: Vec<u32> = (0..n as u32).collect();
        let seq = local_search_remote_clique(&metric, &all, k, 64);
        t.row(vec![
            w.name().into(),
            n.to_string(),
            fnum(edge.diversity),
            fnum(clique_value(&metric, &edge.subset)),
            fnum(min_pairwise_distance(&metric, &clique.subset)),
            fnum(clique.value),
            ratio(clique.value, seq.value),
            edge.telemetry.rounds.to_string(),
            clique.telemetry.rounds.to_string(),
        ]);
    }
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_produces_rows() {
        let tables = run(Scale::Quick);
        assert_eq!(tables.len(), 1);
        assert_eq!(tables[0].len(), Workload::ALL.len());
    }
}
