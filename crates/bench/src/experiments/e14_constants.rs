//! E14 (Table 10) — sensitivity to the practical constants (δ and the
//! pruning factor): how the heavy/light threshold and the sample-mass
//! bailout move the rounds/communication/quality trade-off. This is the
//! tuning guide behind `Params::practical`'s defaults, and a second
//! round/communication breakdown table shows where the budget goes
//! (`Ledger::summary_by_label`).

use mpc_core::kcenter::{mpc_kcenter, mpc_kcenter_on};
use mpc_core::Params;
use mpc_sim::Cluster;

use crate::table::{fnum, Table};
use crate::workloads::Workload;
use crate::Scale;

/// Runs E14.
pub fn run(scale: Scale) -> Vec<Table> {
    let seed = 53;
    let n = scale.pick(300, 2000);
    let k = 8;
    let m = 6;
    let metric = Workload::Uniform.build(n, seed);

    let mut t = Table::new(
        "E14-A (Table 10a)",
        "constants sensitivity on MPC k-center: δ sweeps the heavy/light split, the pruning factor sweeps the dense-sample bailout",
        &["δ", "pruning factor", "radius", "rounds", "max words/machine", "total words"],
    );
    for &delta in &[0.5, 2.0, 8.0, 32.0] {
        for &pf in &[2.0, 10.0, 50.0] {
            let mut params = Params::practical(m, 0.1, seed);
            params.delta = delta;
            params.pruning_factor = pf;
            let res = mpc_kcenter(&metric, k, &params);
            t.row(vec![
                fnum(delta),
                fnum(pf),
                fnum(res.radius),
                res.telemetry.rounds.to_string(),
                res.telemetry.max_machine_words.to_string(),
                res.telemetry.total_words.to_string(),
            ]);
        }
    }

    let mut b = Table::new(
        "E14-B (Table 10b)",
        "round/communication budget by collective (default constants): where Õ(mk) actually goes",
        &["collective", "rounds", "total words sent"],
    );
    let params = Params::practical(m, 0.1, seed);
    let mut cluster = Cluster::new(m, seed);
    let _ = mpc_kcenter_on(&mut cluster, &metric, k, &params);
    for (label, rounds, words) in cluster.into_ledger().summary_by_label() {
        b.row(vec![label, rounds.to_string(), words.to_string()]);
    }
    vec![t, b]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_produces_rows() {
        let tables = run(Scale::Quick);
        assert_eq!(tables.len(), 2);
        assert_eq!(tables[0].len(), 12);
        assert!(!tables[1].is_empty());
    }
}
