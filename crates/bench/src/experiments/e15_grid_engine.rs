//! E15 — the grid engine past the all-pairs barrier (ISSUE 9).
//!
//! Two tables:
//!
//! * **E15a** runs the grid-engine k-center pipeline at the scale the
//!   all-pairs engine cannot reach (full scale: n = 10⁷ at d ∈ {2, 4, 8})
//!   and records the ledger evidence — rounds, per-machine communication,
//!   peak memory, stencil pair counts, wall time. The pair column is the
//!   story: the grid ladder touches `O(n·3^d)` candidate pairs where the
//!   all-pairs degree rounds would touch `Θ(n²/m)` *per rung* (projected
//!   in the last column — at n = 10⁷ that is ~10⁶× more work than one
//!   grid rung actually did).
//! * **E15b** makes "cannot" precise at a size both engines *can* run:
//!   with the paper's per-round budget `m·k·(d+1)·ln n` words on the
//!   ledger, the all-pairs engine's degree-sampling `all_broadcast`
//!   (`Θ(n/m)` points to every machine) breaches the budget every rung
//!   while the grid engine's candidate traffic (`O(mk)` points) never
//!   does — same input, same k, same cluster budget.

use std::time::Instant;

use mpc_core::grid::mpc_kcenter_grid;
use mpc_core::kcenter::mpc_kcenter;
use mpc_core::Params;
use mpc_metric::{datasets, EuclideanSpace};

use crate::table::{fnum, ratio, Table};
use crate::Scale;

/// Runs E15.
pub fn run(scale: Scale) -> Vec<Table> {
    let seed = 37;

    // E15a: the grid engine at scale.
    let n = scale.pick(20_000, 10_000_000);
    let (k, m) = (32usize, 64usize);
    let mut a = Table::new(
        "E15a",
        "grid-engine k-center at the scale the all-pairs ladder cannot reach \
         (per-rung all-pairs cost projected as n²/m pairs)",
        &[
            "dim",
            "n",
            "k",
            "m",
            "radius",
            "rounds",
            "max words/machine",
            "total words",
            "peak mem/machine",
            "grid pairs (ladder)",
            "n²/m pairs (1 all-pairs rung)",
            "wall s",
        ],
    );
    for dim in [2usize, 4, 8] {
        let space = EuclideanSpace::new(datasets::user_embeddings(n, dim, k, 0.02, 1e-4, seed));
        let params = Params::practical(m, 0.1, seed);
        let started = Instant::now();
        let res = mpc_kcenter_grid(&space, k, &params);
        let wall = started.elapsed().as_secs_f64();
        let grid_pairs = res.telemetry.kernels.as_ref().map_or(0, |ks| ks.grid_pairs);
        a.row(vec![
            dim.to_string(),
            n.to_string(),
            k.to_string(),
            m.to_string(),
            fnum(res.radius),
            res.telemetry.rounds.to_string(),
            res.telemetry.max_machine_words.to_string(),
            res.telemetry.total_words.to_string(),
            res.telemetry.max_machine_memory.to_string(),
            grid_pairs.to_string(),
            fnum((n as f64) * (n as f64) / m as f64),
            fnum(wall),
        ]);
    }

    // E15b: both engines under the paper's per-round word budget.
    let nb = scale.pick(10_000, 200_000);
    let (kb, mb, dim) = (16usize, 16usize, 4usize);
    let budget = (mb * kb * (dim + 1)) as u64 * (nb as f64).ln().ceil() as u64;
    let space = EuclideanSpace::new(datasets::user_embeddings(nb, dim, kb, 0.02, 1e-4, seed));
    let mut b = Table::new(
        "E15b",
        "engines under the m·k·(d+1)·ln n per-round budget: all-pairs degree \
         sampling breaches it, grid candidate traffic does not",
        &[
            "engine",
            "n",
            "budget words/round",
            "max round words/machine",
            "violations",
            "radius",
            "radius ratio",
        ],
    );
    let mut params = Params::practical(mb, 0.1, seed);
    params.budget_words = Some(budget);
    let grid = mpc_kcenter_grid(&space, kb, &params);
    let all = mpc_kcenter(&space, kb, &params);
    for (name, res) in [("grid", &grid), ("allpairs", &all)] {
        b.row(vec![
            name.to_string(),
            nb.to_string(),
            budget.to_string(),
            res.telemetry.max_machine_words_per_round.to_string(),
            res.telemetry.violations.to_string(),
            fnum(res.radius),
            ratio(res.radius, all.radius),
        ]);
    }

    vec![a, b]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_produces_rows() {
        let tables = run(Scale::Quick);
        assert_eq!(tables.len(), 2);
        assert_eq!(tables[0].len(), 3);
        assert_eq!(tables[1].len(), 2);
    }

    #[test]
    fn budget_separates_the_engines() {
        let tables = run(Scale::Quick);
        let rows = tables[1].rows();
        // grid row: zero violations; allpairs row: at least one.
        assert_eq!(rows[0][4], "0", "grid must fit the budget: {rows:?}");
        assert_ne!(rows[1][4], "0", "all-pairs must breach it: {rows:?}");
    }
}
