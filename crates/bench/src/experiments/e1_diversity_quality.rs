//! E1 (Table 1) — k-diversity approximation quality (validates Theorem 3).
//!
//! Part A compares against the **exact optimum** on small instances; the
//! paper's algorithm must stay within `2(1+ε)` while the Indyk et al.
//! coreset baseline is only guaranteed 6. Part B scales up, using
//! sequential GMM (a 2-approximation, hence `opt ≤ 2·GMM`) as the anchor.

use mpc_baselines::exact::exact_diversity;
use mpc_baselines::indyk::indyk_diversity;
use mpc_baselines::random_pick::random_diversity;
use mpc_core::diversity::{four_approx_diversity, mpc_diversity, sequential_gmm_diversity};
use mpc_core::Params;

use crate::table::{fnum, ratio, Table};
use crate::workloads::Workload;
use crate::Scale;

/// Runs E1.
pub fn run(scale: Scale) -> Vec<Table> {
    let seed = 42;
    let eps = 0.1;

    // Part A: versus the exact optimum (ratios are opt/achieved, >= 1,
    // smaller is better).
    let mut a = Table::new(
        "E1-A (Table 1a)",
        "k-diversity vs exact optimum (small instances; ratio = opt/achieved, guarantee 2(1+ε) = 2.2)",
        &["workload", "n", "k", "opt", "ours (2+ε)", "ours ratio", "4-approx ratio",
          "Indyk-6 ratio", "GMM-seq ratio", "random ratio"],
    );
    let n_small = scale.pick(24, 40);
    let ks = scale.pick(vec![4], vec![4, 6]);
    for w in Workload::ALL {
        let metric = w.build(n_small, seed);
        for &k in &ks {
            let m = 4;
            let params = Params::practical(m, eps, seed);
            let (opt, _) = exact_diversity(&metric, k);
            let ours = mpc_diversity(&metric, k, &params);
            let four = four_approx_diversity(&metric, k, &params);
            let six = indyk_diversity(&metric, k, &params);
            let gmm = sequential_gmm_diversity(&metric, k);
            let rnd = random_diversity(&metric, k, seed);
            a.row(vec![
                w.name().into(),
                n_small.to_string(),
                k.to_string(),
                fnum(opt),
                fnum(ours.diversity),
                ratio(opt, ours.diversity),
                ratio(opt, four.diversity),
                ratio(opt, six.diversity),
                ratio(opt, gmm.diversity),
                ratio(opt, rnd),
            ]);
        }
    }

    // Part B: larger instances, anchored on sequential GMM (achieved/GMM,
    // >= 0.5 is within the (2+eps) guarantee since opt <= 2 GMM).
    let mut b = Table::new(
        "E1-B (Table 1b)",
        "k-diversity at scale (ratio = achieved/GMM-seq; ours must stay ≥ 1/(2+ε)·opt/GMM ≥ 0.45; rounds and per-machine words from the ledger)",
        &["workload", "n", "k", "GMM-seq", "ours/GMM", "4-approx/GMM", "Indyk-6/GMM",
          "ours rounds", "ours max words/machine"],
    );
    let n_big = scale.pick(300, 4000);
    let ks_big = scale.pick(vec![8], vec![8, 16]);
    for w in Workload::ALL {
        let metric = w.build(n_big, seed);
        for &k in &ks_big {
            let m = 8;
            let params = Params::practical(m, eps, seed);
            let ours = mpc_diversity(&metric, k, &params);
            let four = four_approx_diversity(&metric, k, &params);
            let six = indyk_diversity(&metric, k, &params);
            let gmm = sequential_gmm_diversity(&metric, k).diversity;
            b.row(vec![
                w.name().into(),
                n_big.to_string(),
                k.to_string(),
                fnum(gmm),
                ratio(ours.diversity, gmm),
                ratio(four.diversity, gmm),
                ratio(six.diversity, gmm),
                ours.telemetry.rounds.to_string(),
                ours.telemetry.max_machine_words.to_string(),
            ]);
        }
    }
    vec![a, b]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_produces_rows() {
        let tables = run(Scale::Quick);
        assert_eq!(tables.len(), 2);
        assert_eq!(tables[0].len(), Workload::ALL.len());
        assert!(!tables[1].is_empty());
    }
}
