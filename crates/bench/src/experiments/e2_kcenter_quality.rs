//! E2 (Table 2) — k-center approximation quality (validates Theorem 17).
//!
//! Part A compares against the exact optimum on small instances — the
//! paper's `(2+ε)` versus the Malkomes et al. 4-approximation and the
//! Ene et al. sampling baseline. Part B scales up, anchored on
//! Hochbaum–Shmoys (a sequential 2-approximation).

use mpc_baselines::ene::ene_kcenter;
use mpc_baselines::exact::exact_kcenter;
use mpc_baselines::hochbaum_shmoys::hochbaum_shmoys_kcenter;
use mpc_baselines::malkomes::malkomes_kcenter;
use mpc_baselines::random_pick::random_kcenter_radius;
use mpc_core::kcenter::{mpc_kcenter, sequential_gmm_kcenter};
use mpc_core::Params;

use crate::table::{fnum, ratio, Table};
use crate::workloads::Workload;
use crate::Scale;

/// Runs E2.
pub fn run(scale: Scale) -> Vec<Table> {
    let seed = 42;
    let eps = 0.1;

    let mut a = Table::new(
        "E2-A (Table 2a)",
        "k-center vs exact optimum (small instances; ratio = achieved/opt, guarantee 2(1+ε) = 2.2)",
        &[
            "workload",
            "n",
            "k",
            "opt",
            "ours (2+ε)",
            "ours ratio",
            "Malkomes-4 ratio",
            "Ene ratio",
            "GMM-seq ratio",
            "HS ratio",
            "random ratio",
        ],
    );
    let n_small = scale.pick(24, 40);
    let ks = scale.pick(vec![3], vec![3, 4]);
    for w in Workload::ALL {
        let metric = w.build(n_small, seed);
        for &k in &ks {
            let m = 4;
            let params = Params::practical(m, eps, seed);
            let (opt, _) = exact_kcenter(&metric, k);
            let ours = mpc_kcenter(&metric, k, &params);
            let malk = malkomes_kcenter(&metric, k, &params);
            let ene = ene_kcenter(&metric, k, &params);
            let gmm = sequential_gmm_kcenter(&metric, k);
            let hs = hochbaum_shmoys_kcenter(&metric, k);
            let rnd = random_kcenter_radius(&metric, k, seed);
            a.row(vec![
                w.name().into(),
                n_small.to_string(),
                k.to_string(),
                fnum(opt),
                fnum(ours.radius),
                ratio(ours.radius, opt),
                ratio(malk.radius, opt),
                ratio(ene.radius, opt),
                ratio(gmm.radius, opt),
                ratio(hs.radius, opt),
                ratio(rnd, opt),
            ]);
        }
    }

    let mut b = Table::new(
        "E2-B (Table 2b)",
        "k-center at scale (ratio = achieved/HS; HS is a 2-approx so opt ≥ HS/2; ours should sit near or below 1)",
        &["workload", "n", "k", "HS radius", "ours/HS", "Malkomes/HS", "Ene/HS",
          "GMM-seq/HS", "ours rounds", "ours max words/machine"],
    );
    let n_big = scale.pick(300, 4000);
    let ks_big = scale.pick(vec![8], vec![8, 16]);
    for w in Workload::ALL {
        let metric = w.build(n_big, seed);
        for &k in &ks_big {
            let m = 8;
            let params = Params::practical(m, eps, seed);
            let ours = mpc_kcenter(&metric, k, &params);
            let malk = malkomes_kcenter(&metric, k, &params);
            let ene = ene_kcenter(&metric, k, &params);
            let gmm = sequential_gmm_kcenter(&metric, k);
            let hs = hochbaum_shmoys_kcenter(&metric, k);
            b.row(vec![
                w.name().into(),
                n_big.to_string(),
                k.to_string(),
                fnum(hs.radius),
                ratio(ours.radius, hs.radius),
                ratio(malk.radius, hs.radius),
                ratio(ene.radius, hs.radius),
                ratio(gmm.radius, hs.radius),
                ours.telemetry.rounds.to_string(),
                ours.telemetry.max_machine_words.to_string(),
            ]);
        }
    }
    vec![a, b]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_produces_rows() {
        let tables = run(Scale::Quick);
        assert_eq!(tables.len(), 2);
        assert!(!tables[0].is_empty());
        assert!(!tables[1].is_empty());
    }
}
