//! E3 (Table 3) — k-supplier approximation quality (validates Theorem 18):
//! the `(3+ε)` MPC algorithm versus the exact optimum (small) and the
//! sequential 3-approximation (large).

use mpc_baselines::exact::exact_ksupplier;
use mpc_core::ksupplier::{mpc_ksupplier, sequential_ksupplier};
use mpc_core::Params;

use crate::table::{fnum, ratio, Table};
use crate::workloads::supplier_instance;
use crate::Scale;

/// Runs E3.
pub fn run(scale: Scale) -> Vec<Table> {
    let eps = 0.1;

    let mut a = Table::new(
        "E3-A (Table 3a)",
        "k-supplier vs exact optimum (small instances; ratio = achieved/opt, guarantee 3(1+ε) = 3.3)",
        &["nc", "ns", "k", "opt", "ours (3+ε)", "ours ratio", "seq-3 ratio", "ours rounds"],
    );
    let cases_a: Vec<(usize, usize, usize)> =
        scale.pick(vec![(14, 8, 2)], vec![(14, 8, 2), (20, 12, 3), (24, 10, 4)]);
    for (i, &(nc, ns, k)) in cases_a.iter().enumerate() {
        let seed = 100 + i as u64;
        let (metric, customers, suppliers) = supplier_instance(nc, ns, seed);
        let params = Params::practical(2, eps, seed);
        let (opt, _) = exact_ksupplier(&metric, &customers, &suppliers, k);
        let ours = mpc_ksupplier(&metric, &customers, &suppliers, k, &params);
        let seq = sequential_ksupplier(&metric, &customers, &suppliers, k);
        a.row(vec![
            nc.to_string(),
            ns.to_string(),
            k.to_string(),
            fnum(opt),
            fnum(ours.radius),
            ratio(ours.radius, opt),
            ratio(seq.radius, opt),
            ours.telemetry.rounds.to_string(),
        ]);
    }

    let mut b = Table::new(
        "E3-B (Table 3b)",
        "k-supplier at scale (ratio = achieved/seq-3; seq is a 3-approx so opt ≥ seq/3)",
        &[
            "nc",
            "ns",
            "k",
            "seq-3 radius",
            "ours/seq",
            "ours rounds",
            "ours max words/machine",
        ],
    );
    let cases_b: Vec<(usize, usize, usize)> =
        scale.pick(vec![(120, 60, 4)], vec![(1000, 400, 8), (2000, 800, 12)]);
    for (i, &(nc, ns, k)) in cases_b.iter().enumerate() {
        let seed = 200 + i as u64;
        let (metric, customers, suppliers) = supplier_instance(nc, ns, seed);
        let params = Params::practical(6, eps, seed);
        let ours = mpc_ksupplier(&metric, &customers, &suppliers, k, &params);
        let seq = sequential_ksupplier(&metric, &customers, &suppliers, k);
        b.row(vec![
            nc.to_string(),
            ns.to_string(),
            k.to_string(),
            fnum(seq.radius),
            ratio(ours.radius, seq.radius),
            ours.telemetry.rounds.to_string(),
            ours.telemetry.max_machine_words.to_string(),
        ]);
    }
    vec![a, b]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_produces_rows() {
        let tables = run(Scale::Quick);
        assert_eq!(tables.len(), 2);
        assert!(!tables[0].is_empty());
        assert!(!tables[1].is_empty());
    }
}
