//! E4 (Figure 1) — round complexity of the k-bounded MIS (validates
//! Theorem 13): the number of outer rounds must stay (near-)constant as
//! `n` grows at fixed `m`, and shrink as `m` grows (`O(1/γ)` with
//! `m = n^γ`). Rendered as two table-series (one per swept axis).

use mpc_core::kbmis::k_bounded_mis;
use mpc_core::Params;
use mpc_sim::{Cluster, Partition};

use crate::table::Table;
use crate::workloads::Workload;
use crate::{distance_quantile, Scale};

fn mis_rounds(n: usize, m: usize, k: usize, seed: u64) -> (u64, u64, u64) {
    let metric = Workload::Uniform.build(n, seed);
    // Mid-density threshold: the regime where the MIS actually iterates.
    let tau = distance_quantile(&metric, 0.2, seed);
    let params = Params::practical(m, 0.1, seed);
    let mut cluster = Cluster::new(m, seed);
    let alive = Partition::round_robin(n, m).all_items().to_vec();
    let res = k_bounded_mis(&mut cluster, &metric, &alive, tau, k, n, &params, false);
    (res.outer_rounds, cluster.rounds(), res.forced_progress)
}

/// Runs E4.
pub fn run(scale: Scale) -> Vec<Table> {
    let seed = 7;
    let k = 10;

    let mut by_n = Table::new(
        "E4-A (Figure 1a)",
        "k-bounded MIS rounds vs n at m = 8 (series; outer rounds should stay flat)",
        &[
            "n",
            "m",
            "k",
            "outer rounds",
            "MPC rounds total",
            "forced progress",
        ],
    );
    let ns: Vec<usize> = scale.pick(vec![200, 400], vec![500, 1000, 2000, 4000, 8000]);
    for &n in &ns {
        let (outer, total, forced) = mis_rounds(n, 8, k, seed);
        by_n.row(vec![
            n.to_string(),
            "8".into(),
            k.to_string(),
            outer.to_string(),
            total.to_string(),
            forced.to_string(),
        ]);
    }

    let mut by_m = Table::new(
        "E4-B (Figure 1b)",
        "k-bounded MIS rounds vs m at fixed n (series; more machines = more compression per round)",
        &[
            "n",
            "m",
            "k",
            "outer rounds",
            "MPC rounds total",
            "forced progress",
        ],
    );
    let n = scale.pick(400, 4000);
    for &m in &scale.pick(vec![2, 4], vec![2, 4, 8, 16, 32]) {
        let (outer, total, forced) = mis_rounds(n, m, k, seed);
        by_m.row(vec![
            n.to_string(),
            m.to_string(),
            k.to_string(),
            outer.to_string(),
            total.to_string(),
            forced.to_string(),
        ]);
    }
    vec![by_n, by_m]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_produces_rows() {
        let tables = run(Scale::Quick);
        assert_eq!(tables.len(), 2);
        assert_eq!(tables[0].len(), 2);
        assert_eq!(tables[1].len(), 2);
    }
}
