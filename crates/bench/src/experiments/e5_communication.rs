//! E5 (Figure 2) — per-machine communication of the full `(2+ε)` k-center
//! pipeline (validates Theorems 9/14/15): max words through any machine,
//! normalized by `m·k·ln n`, should stay bounded as `m` and `k` sweep.

use mpc_core::kcenter::mpc_kcenter;
use mpc_core::Params;

use crate::table::{fnum, Table};
use crate::workloads::Workload;
use crate::Scale;

/// Runs E5.
pub fn run(scale: Scale) -> Vec<Table> {
    let seed = 11;
    let n = scale.pick(400, 3000);
    let metric = Workload::Clustered.build(n, seed);
    let ln_n = (n as f64).ln();

    let mut t = Table::new(
        "E5 (Figure 2)",
        "max per-machine communication of MPC k-center vs m·k (normalized column should stay O(polylog))",
        &["n", "m", "k", "max words/machine", "m·k·ln n", "words/(m·k·ln n)", "peak memory/machine", "n/m + mk", "rounds", "violations"],
    );
    let ms: Vec<usize> = scale.pick(vec![2, 4], vec![2, 4, 8, 16]);
    let ks: Vec<usize> = scale.pick(vec![5], vec![5, 10, 20]);
    for &m in &ms {
        for &k in &ks {
            let params = Params::practical(m, 0.1, seed);
            let res = mpc_kcenter(&metric, k, &params);
            let mk = (m * k) as f64 * ln_n;
            t.row(vec![
                n.to_string(),
                m.to_string(),
                k.to_string(),
                res.telemetry.max_machine_words.to_string(),
                fnum(mk),
                fnum(res.telemetry.max_machine_words as f64 / mk),
                res.telemetry.max_machine_memory.to_string(),
                (n / m + m * k).to_string(),
                res.telemetry.rounds.to_string(),
                res.telemetry.violations.to_string(),
            ]);
        }
    }
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_produces_rows() {
        let tables = run(Scale::Quick);
        assert_eq!(tables.len(), 1);
        assert_eq!(tables[0].len(), 2);
    }
}
