//! E6 (Table 4) — accuracy of the degree approximation (validates
//! Lemmas 5–8): light vertices must be **exact**, heavy estimates close to
//! the truth, across graph densities.

use mpc_core::degree::{approximate_degrees, DegreeOutcome};
use mpc_core::Params;
use mpc_graph::{GraphView, ThresholdGraph};
use mpc_sim::{Cluster, Partition};

use crate::table::{fnum, Table};
use crate::workloads::Workload;
use crate::{distance_quantile, Scale};

/// Runs E6.
pub fn run(scale: Scale) -> Vec<Table> {
    let seed = 13;
    let n = scale.pick(300, 2000);
    let m = 8;
    let k = 10;

    let mut t = Table::new(
        "E6 (Table 4)",
        "degree-approximation accuracy by graph density (light degrees must be exact; heavy within sampling error)",
        &["workload", "density quantile", "outcome", "heavy", "light",
          "light exact?", "heavy mean rel err", "heavy max rel err"],
    );

    for w in [Workload::Uniform, Workload::Clustered] {
        let metric = w.build(n, seed);
        for q in [0.05, 0.2, 0.5] {
            let tau = distance_quantile(&metric, q, seed);
            let mut cluster = Cluster::new(m, seed);
            let params = Params::practical(m, 0.1, seed);
            let alive = Partition::round_robin(n, m).all_items().to_vec();
            let out = approximate_degrees(&mut cluster, &metric, &alive, tau, k, n, &params);

            // Ground truth.
            let g = ThresholdGraph::new(&metric, tau);
            let all: Vec<u32> = (0..n as u32).collect();
            let truth: Vec<f64> = all
                .iter()
                .map(|&v| g.degree_among(v, &all) as f64)
                .collect();

            match out {
                DegreeOutcome::Estimates { p, heavy, light } => {
                    // Identify light vertices again to check exactness.
                    let mut light_exact = true;
                    let mut err_sum = 0.0;
                    let mut err_max = 0.0f64;
                    let mut heavy_seen = 0usize;
                    for v in 0..n {
                        let is_exact = p[v] == truth[v];
                        if truth[v] > 0.0 && !is_exact {
                            let rel = (p[v] - truth[v]).abs() / truth[v];
                            err_sum += rel;
                            err_max = err_max.max(rel);
                            heavy_seen += 1;
                        }
                    }
                    // All light vertices were exact iff mismatches <= heavy.
                    // (`heavy` counts only genuinely classified-heavy
                    // vertices; on the D3 exact-degree path it is 0 and
                    // every estimate is exact, so the check still holds.)
                    if heavy_seen > heavy {
                        light_exact = false;
                    }
                    let mean = if heavy_seen > 0 {
                        err_sum / heavy_seen as f64
                    } else {
                        0.0
                    };
                    t.row(vec![
                        w.name().into(),
                        fnum(q),
                        "estimates".into(),
                        heavy.to_string(),
                        light.to_string(),
                        light_exact.to_string(),
                        fnum(mean),
                        fnum(err_max),
                    ]);
                }
                DegreeOutcome::IndependentSet(is) => {
                    t.row(vec![
                        w.name().into(),
                        fnum(q),
                        format!("IS of size {}", is.len()),
                        "—".into(),
                        "—".into(),
                        "—".into(),
                        "—".into(),
                        "—".into(),
                    ]);
                }
            }
        }
    }
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_produces_rows() {
        let tables = run(Scale::Quick);
        assert_eq!(tables.len(), 1);
        assert_eq!(tables[0].len(), 6);
    }
}
