//! E7 (Figure 3) — edge decay per outer round of Algorithm 4 (validates
//! the inner claim of Theorem 13: edges shrink by ~`√m/5` per round).
//! Uses the MIS round tracer (a measurement probe outside the MPC
//! accounting) with `k = n` so the algorithm runs to graph exhaustion.

use mpc_core::kbmis::k_bounded_mis;
use mpc_core::Params;
use mpc_sim::{Cluster, Partition};

use crate::table::{fnum, Table};
use crate::workloads::Workload;
use crate::{distance_quantile, Scale};

/// Runs E7.
pub fn run(scale: Scale) -> Vec<Table> {
    let seed = 17;
    let n = scale.pick(300, 2000);

    let mut t = Table::new(
        "E7 (Figure 3)",
        "alive vertices and edges per outer round of Algorithm 4 (shrink = edges / previous edges; theory predicts ≤ 5/√m once sampling engages)",
        &["m", "round", "alive", "edges", "shrink", "5/√m reference"],
    );
    for &m in &scale.pick(vec![4], vec![4, 16]) {
        let metric = Workload::Uniform.build(n, seed);
        let tau = distance_quantile(&metric, 0.3, seed);
        let params = Params::practical(m, 0.1, seed);
        let mut cluster = Cluster::new(m, seed);
        let alive = Partition::round_robin(n, m).all_items().to_vec();
        let res = k_bounded_mis(&mut cluster, &metric, &alive, tau, n, n, &params, true);
        let reference = 5.0 / (m as f64).sqrt();
        let mut prev_edges: Option<u64> = None;
        for (i, tr) in res.trace.iter().enumerate() {
            let shrink = match prev_edges {
                Some(p) if p > 0 => fnum(tr.edges as f64 / p as f64),
                _ => "—".to_string(),
            };
            t.row(vec![
                m.to_string(),
                (i + 1).to_string(),
                tr.alive.to_string(),
                tr.edges.to_string(),
                shrink,
                fnum(reference),
            ]);
            prev_edges = Some(tr.edges);
        }
    }
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_produces_rows() {
        let tables = run(Scale::Quick);
        assert_eq!(tables.len(), 1);
        assert!(!tables[0].is_empty());
    }
}
