//! E8 (Figure 4) — wall-clock scaling of the simulated pipelines.
//!
//! The simulator runs machine-local work across the rayon shim's worker
//! pool, so this measures algorithmic work, not real network time; the
//! Criterion benches in `benches/` provide the statistically rigorous
//! version of the same series. This table gives the single-shot numbers
//! for EXPERIMENTS.md. The E8-T companion table re-runs the two MPC
//! pipelines at 1 / 2 / max threads ([`rayon::with_threads`]) and reports
//! per-round wall-clock, making thread-count speedups (or, on a 1-core
//! host, pool overhead) visible in `results_tables.md`.

use std::time::Instant;

use mpc_baselines::indyk::indyk_diversity;
use mpc_baselines::malkomes::malkomes_kcenter;
use mpc_core::diversity::mpc_diversity;
use mpc_core::kcenter::{mpc_kcenter, sequential_gmm_kcenter};
use mpc_core::Params;

use crate::table::{fnum, Table};
use crate::workloads::Workload;
use crate::Scale;

fn time_ms(f: impl FnOnce()) -> f64 {
    let t0 = Instant::now();
    f();
    t0.elapsed().as_secs_f64() * 1e3
}

/// Runs E8.
pub fn run(scale: Scale) -> Vec<Table> {
    let seed = 19;
    let k = 10;
    let m = 8;

    let mut t = Table::new(
        "E8 (Figure 4)",
        "single-shot wall-clock (ms) of the simulated pipelines vs n (see `cargo bench` for Criterion statistics)",
        &["n", "ours k-center", "ours k-diversity", "Malkomes-4", "Indyk-6", "GMM sequential"],
    );
    let ns: Vec<usize> = scale.pick(vec![200, 400], vec![1000, 2000, 4000, 8000]);
    for &n in &ns {
        let metric = Workload::Clustered.build(n, seed);
        let params = Params::practical(m, 0.1, seed);
        let t_kc = time_ms(|| {
            let _ = mpc_kcenter(&metric, k, &params);
        });
        let t_div = time_ms(|| {
            let _ = mpc_diversity(&metric, k, &params);
        });
        let t_malk = time_ms(|| {
            let _ = malkomes_kcenter(&metric, k, &params);
        });
        let t_indyk = time_ms(|| {
            let _ = indyk_diversity(&metric, k, &params);
        });
        let t_gmm = time_ms(|| {
            let _ = sequential_gmm_kcenter(&metric, k);
        });
        t.row(vec![
            n.to_string(),
            fnum(t_kc),
            fnum(t_div),
            fnum(t_malk),
            fnum(t_indyk),
            fnum(t_gmm),
        ]);
    }

    // E8-T: the same MPC pipelines at 1 / 2 / max worker threads, with
    // per-round wall-clock. Rounds are thread-count invariant (asserted by
    // the determinism suite), so ms/round isolates the local-compute
    // speedup from the fixed round structure.
    let mut tt = Table::new(
        "E8-T",
        "wall-clock (ms) and ms/round of the MPC pipelines vs worker threads (pool default = `KCENTER_THREADS` or available parallelism)",
        &[
            "n",
            "threads",
            "k-center ms",
            "k-center ms/round",
            "k-diversity ms",
            "k-diversity ms/round",
        ],
    );
    let mut thread_counts = vec![1, 2, rayon::default_threads()];
    thread_counts.sort_unstable();
    thread_counts.dedup();
    let n = *ns.last().expect("scale picks at least one n");
    let metric = Workload::Clustered.build(n, seed);
    let params = Params::practical(m, 0.1, seed);
    for &threads in &thread_counts {
        rayon::with_threads(threads, || {
            let t0 = Instant::now();
            let kc = mpc_kcenter(&metric, k, &params);
            let t_kc = t0.elapsed().as_secs_f64() * 1e3;
            let t0 = Instant::now();
            let div = mpc_diversity(&metric, k, &params);
            let t_div = t0.elapsed().as_secs_f64() * 1e3;
            tt.row(vec![
                n.to_string(),
                threads.to_string(),
                fnum(t_kc),
                fnum(t_kc / kc.telemetry.rounds.max(1) as f64),
                fnum(t_div),
                fnum(t_div / div.telemetry.rounds.max(1) as f64),
            ]);
        });
    }

    vec![t, tt]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_produces_rows() {
        let tables = run(Scale::Quick);
        assert_eq!(tables.len(), 2);
        assert_eq!(tables[0].len(), 2);
        // E8-T: one row per deduplicated thread count ⊆ {1, 2, max}, so
        // at least {1, 2} even on a single-core host.
        assert!(tables[1].len() >= 2);
        assert!(tables[1].len() <= 3);
    }
}
