//! E8 (Figure 4) — wall-clock scaling of the simulated pipelines.
//!
//! The simulator runs machine-local work across the rayon shim's worker
//! pool, so this measures algorithmic work, not real network time; the
//! Criterion benches in `benches/` provide the statistically rigorous
//! version of the same series. This table gives the single-shot numbers
//! for EXPERIMENTS.md. The E8-T companion table re-runs the two MPC
//! pipelines at 1 / 2 / max threads ([`rayon::with_threads`]) and reports
//! per-round wall-clock, making thread-count speedups (or, on a 1-core
//! host, pool overhead) visible in `results_tables.md`.

use std::time::Instant;

use mpc_baselines::indyk::indyk_diversity;
use mpc_baselines::malkomes::malkomes_kcenter;
use mpc_core::diversity::mpc_diversity;
use mpc_core::kcenter::{mpc_kcenter, sequential_gmm_kcenter};
use mpc_core::memo::MemoizedSpace;
use mpc_core::Params;
use mpc_metric::{datasets, EuclideanSpace, MetricSpace};

use crate::table::{fnum, Table};
use crate::workloads::Workload;
use crate::Scale;

fn time_ms(f: impl FnOnce()) -> f64 {
    let t0 = Instant::now();
    f();
    t0.elapsed().as_secs_f64() * 1e3
}

/// Runs E8.
pub fn run(scale: Scale) -> Vec<Table> {
    let seed = 19;
    let k = 10;
    let m = 8;

    let mut t = Table::new(
        "E8 (Figure 4)",
        "single-shot wall-clock (ms) of the simulated pipelines vs n (see `cargo bench` for Criterion statistics)",
        &["n", "ours k-center", "ours k-diversity", "Malkomes-4", "Indyk-6", "GMM sequential"],
    );
    let ns: Vec<usize> = scale.pick(vec![200, 400], vec![1000, 2000, 4000, 8000]);
    for &n in &ns {
        let metric = Workload::Clustered.build(n, seed);
        let params = Params::practical(m, 0.1, seed);
        let t_kc = time_ms(|| {
            let _ = mpc_kcenter(&metric, k, &params);
        });
        let t_div = time_ms(|| {
            let _ = mpc_diversity(&metric, k, &params);
        });
        let t_malk = time_ms(|| {
            let _ = malkomes_kcenter(&metric, k, &params);
        });
        let t_indyk = time_ms(|| {
            let _ = indyk_diversity(&metric, k, &params);
        });
        let t_gmm = time_ms(|| {
            let _ = sequential_gmm_kcenter(&metric, k);
        });
        t.row(vec![
            n.to_string(),
            fnum(t_kc),
            fnum(t_div),
            fnum(t_malk),
            fnum(t_indyk),
            fnum(t_gmm),
        ]);
    }

    // E8-T: the same MPC pipelines at 1 / 2 / max worker threads, with
    // per-round wall-clock. Rounds are thread-count invariant (asserted by
    // the determinism suite), so ms/round isolates the local-compute
    // speedup from the fixed round structure.
    let mut tt = Table::new(
        "E8-T",
        "wall-clock (ms) and ms/round of the MPC pipelines vs worker threads (pool default = `KCENTER_THREADS` or available parallelism)",
        &[
            "n",
            "threads",
            "k-center ms",
            "k-center ms/round",
            "k-center phases (coarse/ladder/final ms)",
            "k-diversity ms",
            "k-diversity ms/round",
        ],
    );
    let mut thread_counts = vec![1, 2, rayon::default_threads()];
    thread_counts.sort_unstable();
    thread_counts.dedup();
    let n = *ns.last().expect("scale picks at least one n");
    let metric = Workload::Clustered.build(n, seed);
    let params = Params::practical(m, 0.1, seed);
    for &threads in &thread_counts {
        rayon::with_threads(threads, || {
            let t0 = Instant::now();
            let kc = mpc_kcenter(&metric, k, &params);
            let t_kc = t0.elapsed().as_secs_f64() * 1e3;
            let t0 = Instant::now();
            let div = mpc_diversity(&metric, k, &params);
            let t_div = t0.elapsed().as_secs_f64() * 1e3;
            tt.row(vec![
                n.to_string(),
                threads.to_string(),
                fnum(t_kc),
                fnum(t_kc / kc.telemetry.rounds.max(1) as f64),
                format!(
                    "{}/{}/{}",
                    fnum(kc.telemetry.phases.coarse_s * 1e3),
                    fnum(kc.telemetry.phases.ladder_s * 1e3),
                    fnum(kc.telemetry.phases.finalize_s * 1e3)
                ),
                fnum(t_div),
                fnum(t_div / div.telemetry.rounds.max(1) as f64),
            ]);
        });
    }

    // E8-L: the warm-ladder rung re-probe. Both memos hold the identical
    // cached distance vectors; the sorted variant answers each rung with a
    // `partition_point` prefix, the plain variant (the PR-4 behavior)
    // re-scans every cached vector per rung. Answers are bit-identical —
    // only the time differs. `BENCH_ladder.json` carries the Criterion
    // version of this series.
    let mut tl = Table::new(
        "E8-L",
        "warm-memo ladder rung re-probe (ms, best of 3): sorted companion rows vs per-τ re-scan of the cached distance vectors",
        &["n", "d", "queries", "rungs", "sorted ms", "re-scan ms", "speedup"],
    );
    let (ln, ld, lq) = scale.pick((2_000usize, 16usize, 8u32), (100_000, 32, 32));
    let lmetric = EuclideanSpace::new(datasets::uniform_cube(ln, ld, seed));
    let candidates: Vec<u32> = (0..ln as u32).collect();
    let queries: Vec<u32> = (0..lq).map(|i| (i as usize * 7919 % ln) as u32).collect();
    let base = crate::distance_quantile(&lmetric, 0.2, seed);
    let rungs: Vec<f64> = (0..6).map(|i| base * 1.1f64.powi(i)).collect();
    // Q rows of n distances plus the sorted companions (len + len/2 words)
    // must fit without epoch flushes, or the sorted memo spends the sweep
    // recomputing and re-sorting evicted rows; 8M words covers the full
    // scale (32 × 1e5 × 1.5 = 4.8M) with headroom. Same cap as the
    // Criterion group in `benches/ladder.rs`.
    let sorted = MemoizedSpace::with_capacity(&lmetric, 1 << 23);
    let scan = MemoizedSpace::with_capacity(&lmetric, 1 << 23).without_sorted_rows();
    for memo in [&sorted, &scan] {
        // Warm pass: fill every query row.
        let _ = memo.count_within_many(&queries, &candidates, rungs[0]);
    }
    // Retrofit the sorted companions outside the measured sweeps.
    sorted.prewarm_taus(&rungs);
    let sweep = |memo: &MemoizedSpace<'_, EuclideanSpace>| {
        for &tau in &rungs {
            std::hint::black_box(memo.count_within_many(&queries, &candidates, tau));
        }
    };
    let best_of_3 = |memo: &MemoizedSpace<'_, EuclideanSpace>| {
        (0..3)
            .map(|_| time_ms(|| sweep(memo)))
            .fold(f64::INFINITY, f64::min)
    };
    let t_sorted = best_of_3(&sorted);
    let t_scan = best_of_3(&scan);
    tl.row(vec![
        ln.to_string(),
        ld.to_string(),
        lq.to_string(),
        rungs.len().to_string(),
        fnum(t_sorted),
        fnum(t_scan),
        format!("{:.2}x", t_scan / t_sorted),
    ]);

    vec![t, tt, tl]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_produces_rows() {
        let tables = run(Scale::Quick);
        assert_eq!(tables.len(), 3);
        assert_eq!(tables[0].len(), 2);
        // E8-T: one row per deduplicated thread count ⊆ {1, 2, max}, so
        // at least {1, 2} even on a single-core host.
        assert!(tables[1].len() >= 2);
        assert!(tables[1].len() <= 3);
        // E8-L: the warm-ladder re-probe row.
        assert_eq!(tables[2].len(), 1);
    }
}
