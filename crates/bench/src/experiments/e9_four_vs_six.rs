//! E9 (Table 5) — the §3 side product: the paper's two-round
//! 4-approximation for k-diversity versus the previous two-round
//! 6-approximation of Indyk et al., head to head at equal round budgets.

use mpc_baselines::indyk::indyk_diversity;
use mpc_core::diversity::{four_approx_diversity, sequential_gmm_diversity};
use mpc_core::Params;

use crate::table::{fnum, ratio, Table};
use crate::workloads::Workload;
use crate::Scale;

/// Runs E9.
pub fn run(scale: Scale) -> Vec<Table> {
    let seed = 23;
    let n = scale.pick(300, 3000);
    let k = 8;
    let m = 8;

    let mut t = Table::new(
        "E9 (Table 5)",
        "two-round diversity head-to-head: paper's 4-approx vs Indyk 6-approx (improvement = 4-approx / 6-approx, ≥ 1 everywhere by construction)",
        &["workload", "n", "k", "4-approx div", "Indyk-6 div", "improvement",
          "GMM-seq div", "4-approx rounds", "Indyk rounds"],
    );
    for w in Workload::ALL {
        let metric = w.build(n, seed);
        let params = Params::practical(m, 0.1, seed);
        let four = four_approx_diversity(&metric, k, &params);
        let six = indyk_diversity(&metric, k, &params);
        let gmm = sequential_gmm_diversity(&metric, k);
        t.row(vec![
            w.name().into(),
            n.to_string(),
            k.to_string(),
            fnum(four.diversity),
            fnum(six.diversity),
            ratio(four.diversity, six.diversity),
            fnum(gmm.diversity),
            four.telemetry.rounds.to_string(),
            six.telemetry.rounds.to_string(),
        ]);
    }
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn four_never_loses_to_six() {
        // By construction the 4-approx takes the max over candidates that
        // include the 6-approx's answer; verify on the quick scale.
        for table in run(Scale::Quick) {
            assert_eq!(table.len(), Workload::ALL.len());
        }
    }
}
