//! The experiment suite E1–E15 (DESIGN.md §5). Each experiment returns
//! markdown [`crate::table::Table`]s; the `report` binary prints them.

pub mod e10_ablations;
pub mod e11_metric_generality;
pub mod e12_cost_projection;
pub mod e13_remote_clique;
pub mod e14_constants;
pub mod e15_grid_engine;
pub mod e1_diversity_quality;
pub mod e2_kcenter_quality;
pub mod e3_ksupplier_quality;
pub mod e4_rounds;
pub mod e5_communication;
pub mod e6_degree_accuracy;
pub mod e7_edge_decay;
pub mod e8_timing;
pub mod e9_four_vs_six;

use crate::table::Table;
use crate::Scale;

/// Experiment ids in report order.
pub const ALL: [&str; 15] = [
    "e1", "e2", "e3", "e4", "e5", "e6", "e7", "e8", "e9", "e10", "e11", "e12", "e13", "e14", "e15",
];

/// Runs one experiment by id. Panics on unknown ids.
pub fn run(id: &str, scale: Scale) -> Vec<Table> {
    match id {
        "e1" => e1_diversity_quality::run(scale),
        "e2" => e2_kcenter_quality::run(scale),
        "e3" => e3_ksupplier_quality::run(scale),
        "e4" => e4_rounds::run(scale),
        "e5" => e5_communication::run(scale),
        "e6" => e6_degree_accuracy::run(scale),
        "e7" => e7_edge_decay::run(scale),
        "e8" => e8_timing::run(scale),
        "e9" => e9_four_vs_six::run(scale),
        "e10" => e10_ablations::run(scale),
        "e11" => e11_metric_generality::run(scale),
        "e12" => e12_cost_projection::run(scale),
        "e13" => e13_remote_clique::run(scale),
        "e14" => e14_constants::run(scale),
        "e15" => e15_grid_engine::run(scale),
        other => panic!("unknown experiment id {other:?} (expected one of {ALL:?})"),
    }
}
