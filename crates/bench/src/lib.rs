//! Experiment harness regenerating every table and figure of the
//! constructed evaluation (the paper is theory-only; DESIGN.md §5 defines
//! the experiment suite E1–E10 that validates each theorem's measurable
//! claim).
//!
//! Run `cargo run --release -p mpc-bench --bin report -- all` to print
//! every table as markdown; `cargo bench` runs the Criterion wall-clock
//! benches (E8).

pub mod experiments;
pub mod table;
pub mod workloads;

/// Experiment sizing: `Quick` keeps everything test-suite sized, `Full`
/// produces the EXPERIMENTS.md numbers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Small instances for CI and unit tests (seconds).
    Quick,
    /// Report-quality instances (minutes).
    Full,
}

impl Scale {
    /// Picks `q` under Quick and `f` under Full.
    pub fn pick<T>(&self, q: T, f: T) -> T {
        match self {
            Scale::Quick => q,
            Scale::Full => f,
        }
    }
}

/// An approximate distance quantile of a metric space, estimated from a
/// deterministic sample of point pairs — used to pick threshold values at
/// controlled graph densities.
pub fn distance_quantile<M: mpc_metric::MetricSpace + ?Sized>(
    metric: &M,
    quantile: f64,
    seed: u64,
) -> f64 {
    use mpc_metric::PointId;
    use rand::{RngExt, SeedableRng};
    assert!((0.0..=1.0).contains(&quantile));
    let n = metric.n();
    assert!(n >= 2);
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
    let samples = 4000.min(n * (n - 1) / 2);
    let mut d: Vec<f64> = (0..samples)
        .map(|_| loop {
            let i = rng.random_range(0..n as u32);
            let j = rng.random_range(0..n as u32);
            if i != j {
                return metric.dist(PointId(i), PointId(j));
            }
        })
        .collect();
    d.sort_unstable_by(f64::total_cmp);
    let idx = ((d.len() - 1) as f64 * quantile).round() as usize;
    d[idx]
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpc_metric::{datasets, EuclideanSpace};

    #[test]
    fn quantiles_are_ordered() {
        let m = EuclideanSpace::new(datasets::uniform_cube(200, 2, 1));
        let q1 = distance_quantile(&m, 0.1, 7);
        let q5 = distance_quantile(&m, 0.5, 7);
        let q9 = distance_quantile(&m, 0.9, 7);
        assert!(q1 <= q5 && q5 <= q9);
        assert!(q1 > 0.0);
    }

    #[test]
    fn scale_picks() {
        assert_eq!(Scale::Quick.pick(1, 2), 1);
        assert_eq!(Scale::Full.pick(1, 2), 2);
    }
}
