//! Minimal markdown table builder for the experiment reports.

use std::fmt::Write as _;

/// A titled markdown table.
#[derive(Debug, Clone)]
pub struct Table {
    /// Experiment id, e.g. "E1 (Table 1)".
    pub id: String,
    /// One-line caption describing what the table shows.
    pub caption: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// A new table with the given id, caption and column headers.
    pub fn new(id: &str, caption: &str, headers: &[&str]) -> Self {
        Self {
            id: id.to_string(),
            caption: caption.to_string(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row; must match the header count.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when no rows were added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// The data rows (tests read cells back through this).
    pub fn rows(&self) -> &[Vec<String>] {
        &self.rows
    }

    /// Renders the table as GitHub-flavored markdown.
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "### {} — {}\n", self.id, self.caption);
        let _ = writeln!(out, "| {} |", self.headers.join(" | "));
        let _ = writeln!(
            out,
            "|{}|",
            self.headers
                .iter()
                .map(|_| "---")
                .collect::<Vec<_>>()
                .join("|")
        );
        for r in &self.rows {
            let _ = writeln!(out, "| {} |", r.join(" | "));
        }
        out
    }
}

/// Formats a float with 4 significant decimals, or "—" for non-finite.
pub fn fnum(x: f64) -> String {
    if !x.is_finite() {
        "—".to_string()
    } else if x == 0.0 {
        "0".to_string()
    } else if x.abs() >= 1000.0 {
        format!("{x:.0}")
    } else {
        format!("{x:.4}")
    }
}

/// Formats a ratio like `1.23×`, or "—" if the denominator is degenerate.
pub fn ratio(num: f64, den: f64) -> String {
    if den <= 0.0 || !num.is_finite() || !den.is_finite() {
        "—".to_string()
    } else {
        format!("{:.3}×", num / den)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_markdown() {
        let mut t = Table::new("E0", "demo", &["a", "b"]);
        t.row(vec!["1".into(), "2".into()]);
        let md = t.to_markdown();
        assert!(md.contains("### E0 — demo"));
        assert!(md.contains("| a | b |"));
        assert!(md.contains("| 1 | 2 |"));
        assert_eq!(t.len(), 1);
        assert!(!t.is_empty());
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn rejects_ragged_rows() {
        let mut t = Table::new("E0", "demo", &["a", "b"]);
        t.row(vec!["1".into()]);
    }

    #[test]
    fn number_formats() {
        assert_eq!(fnum(f64::INFINITY), "—");
        assert_eq!(fnum(0.0), "0");
        assert_eq!(fnum(1234.5), "1234"); // round-half-to-even
        assert_eq!(fnum(0.12345), "0.1235");
        assert_eq!(ratio(2.0, 1.0), "2.000×");
        assert_eq!(ratio(1.0, 0.0), "—");
    }
}
