//! Minimal markdown table builder for the experiment reports.

use std::fmt::Write as _;

use serde::{Deserialize, Serialize};

/// `b"KCTB"` — k-center result table, the native codec container.
pub const TABLE_MAGIC: u32 = u32::from_le_bytes(*b"KCTB");

/// Native table container version.
pub const TABLE_VERSION: u32 = 1;

/// A titled markdown table.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table {
    /// Experiment id, e.g. "E1 (Table 1)".
    pub id: String,
    /// One-line caption describing what the table shows.
    pub caption: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// A new table with the given id, caption and column headers.
    pub fn new(id: &str, caption: &str, headers: &[&str]) -> Self {
        Self {
            id: id.to_string(),
            caption: caption.to_string(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row; must match the header count.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when no rows were added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// The data rows (tests read cells back through this).
    pub fn rows(&self) -> &[Vec<String>] {
        &self.rows
    }

    /// Serializes the table into the compact codec behind a magic/version
    /// header, so computed E-tables can be archived and diffed without
    /// re-running the experiments.
    pub fn to_codec_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        TABLE_MAGIC.to_bytes(&mut out);
        TABLE_VERSION.to_bytes(&mut out);
        self.to_bytes(&mut out);
        out
    }

    /// Parses a table back from [`Table::to_codec_bytes`] output. Errors on
    /// bad magic/version, decode failures, trailing bytes, or ragged rows.
    pub fn from_codec_bytes(bytes: &[u8]) -> Result<Self, String> {
        let mut cursor = bytes;
        let magic = u32::from_bytes(&mut cursor).map_err(|e| e.to_string())?;
        let version = u32::from_bytes(&mut cursor).map_err(|e| e.to_string())?;
        if magic != TABLE_MAGIC || version != TABLE_VERSION {
            return Err("not a KCTB table container (bad magic/version)".into());
        }
        let t = Table::from_bytes(&mut cursor).map_err(|e| e.to_string())?;
        if !cursor.is_empty() {
            return Err(format!("{} trailing bytes", cursor.len()));
        }
        for r in &t.rows {
            if r.len() != t.headers.len() {
                return Err("ragged rows in decoded table".into());
            }
        }
        Ok(t)
    }

    /// Writes the codec container to a file.
    pub fn save(&self, path: &std::path::Path) -> std::io::Result<()> {
        std::fs::write(path, self.to_codec_bytes())
    }

    /// Reads a codec container from a file.
    pub fn load(path: &std::path::Path) -> Result<Self, String> {
        let bytes =
            std::fs::read(path).map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        Self::from_codec_bytes(&bytes)
    }

    /// Renders the table as GitHub-flavored markdown.
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "### {} — {}\n", self.id, self.caption);
        let _ = writeln!(out, "| {} |", self.headers.join(" | "));
        let _ = writeln!(
            out,
            "|{}|",
            self.headers
                .iter()
                .map(|_| "---")
                .collect::<Vec<_>>()
                .join("|")
        );
        for r in &self.rows {
            let _ = writeln!(out, "| {} |", r.join(" | "));
        }
        out
    }
}

/// Formats a float with 4 significant decimals, or "—" for non-finite.
pub fn fnum(x: f64) -> String {
    if !x.is_finite() {
        "—".to_string()
    } else if x == 0.0 {
        "0".to_string()
    } else if x.abs() >= 1000.0 {
        format!("{x:.0}")
    } else {
        format!("{x:.4}")
    }
}

/// Formats a ratio like `1.23×`, or "—" if the denominator is degenerate.
pub fn ratio(num: f64, den: f64) -> String {
    if den <= 0.0 || !num.is_finite() || !den.is_finite() {
        "—".to_string()
    } else {
        format!("{:.3}×", num / den)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_markdown() {
        let mut t = Table::new("E0", "demo", &["a", "b"]);
        t.row(vec!["1".into(), "2".into()]);
        let md = t.to_markdown();
        assert!(md.contains("### E0 — demo"));
        assert!(md.contains("| a | b |"));
        assert!(md.contains("| 1 | 2 |"));
        assert_eq!(t.len(), 1);
        assert!(!t.is_empty());
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn rejects_ragged_rows() {
        let mut t = Table::new("E0", "demo", &["a", "b"]);
        t.row(vec!["1".into()]);
    }

    #[test]
    fn codec_container_round_trips() {
        let mut t = Table::new("E8-W", "wire overhead", &["backend", "bytes"]);
        t.row(vec!["loopback".into(), "5928".into()]);
        t.row(vec!["process".into(), "5928".into()]);
        let back = Table::from_codec_bytes(&t.to_codec_bytes()).unwrap();
        assert_eq!(back.id, t.id);
        assert_eq!(back.caption, t.caption);
        assert_eq!(back.rows(), t.rows());
        assert_eq!(back.to_markdown(), t.to_markdown());
    }

    #[test]
    fn codec_container_rejects_garbage() {
        assert!(Table::from_codec_bytes(b"nope").is_err());
        let mut bytes = Table::new("E0", "x", &["a"]).to_codec_bytes();
        bytes.extend_from_slice(&[0u8; 3]); // trailing junk
        assert!(Table::from_codec_bytes(&bytes).is_err());
    }

    #[test]
    fn number_formats() {
        assert_eq!(fnum(f64::INFINITY), "—");
        assert_eq!(fnum(0.0), "0");
        assert_eq!(fnum(1234.5), "1234"); // round-half-to-even
        assert_eq!(fnum(0.12345), "0.1235");
        assert_eq!(ratio(2.0, 1.0), "2.000×");
        assert_eq!(ratio(1.0, 0.0), "—");
    }
}
