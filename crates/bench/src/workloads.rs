//! The dataset matrix shared by all experiments.

use mpc_metric::{datasets, EuclideanSpace, PointId, PointSet};

/// A named dataset generator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Workload {
    /// Uniform in the unit square.
    Uniform,
    /// Gaussian mixture with tight clusters.
    Clustered,
    /// 2-D annulus (no cluster structure).
    Annulus,
    /// Power-law cluster sizes (coreset-hostile).
    PowerLaw,
    /// Tight groups plus a far outlier group (greedy-hostile partitions).
    Adversarial,
}

impl Workload {
    /// All workloads, in report order.
    pub const ALL: [Workload; 5] = [
        Workload::Uniform,
        Workload::Clustered,
        Workload::Annulus,
        Workload::PowerLaw,
        Workload::Adversarial,
    ];

    /// Human-readable name.
    pub fn name(&self) -> &'static str {
        match self {
            Workload::Uniform => "uniform",
            Workload::Clustered => "clustered",
            Workload::Annulus => "annulus",
            Workload::PowerLaw => "power-law",
            Workload::Adversarial => "adversarial",
        }
    }

    /// Builds the dataset at size `n` with the given seed.
    pub fn build(&self, n: usize, seed: u64) -> EuclideanSpace {
        let ps = match self {
            Workload::Uniform => datasets::uniform_cube(n, 2, seed),
            Workload::Clustered => datasets::gaussian_clusters(n, 2, 8, 0.01, seed),
            Workload::Annulus => datasets::annulus(n, 1.0, 2.0, seed),
            Workload::PowerLaw => datasets::powerlaw_clusters(n, 2, 12, 1.5, 0.01, seed),
            Workload::Adversarial => datasets::adversarial_outlier(n, 8, 100.0, seed),
        };
        EuclideanSpace::new(ps)
    }
}

/// A bipartite customers/suppliers instance for k-supplier experiments:
/// customers clustered, suppliers uniform over an enclosing box.
pub fn supplier_instance(nc: usize, ns: usize, seed: u64) -> (EuclideanSpace, Vec<u32>, Vec<u32>) {
    let c = datasets::gaussian_clusters(nc, 2, 6, 0.03, seed);
    let s = datasets::uniform_cube(ns, 2, seed ^ 0xBEEF);
    let mut rows = Vec::with_capacity(nc + ns);
    for i in 0..nc {
        rows.push(c.coords(PointId(i as u32)).to_vec());
    }
    for i in 0..ns {
        // Stretch suppliers to a slightly larger box than the unit square.
        let p = s.coords(PointId(i as u32));
        rows.push(vec![p[0] * 1.4 - 0.2, p[1] * 1.4 - 0.2]);
    }
    let metric = EuclideanSpace::new(PointSet::from_rows(&rows));
    let customers = (0..nc as u32).collect();
    let suppliers = (nc as u32..(nc + ns) as u32).collect();
    (metric, customers, suppliers)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpc_metric::MetricSpace;

    #[test]
    fn every_workload_builds() {
        for w in Workload::ALL {
            let m = w.build(64, 1);
            assert_eq!(m.n(), 64, "{}", w.name());
        }
    }

    #[test]
    fn supplier_instance_is_disjoint_and_sized() {
        let (metric, c, s) = supplier_instance(40, 20, 2);
        assert_eq!(metric.n(), 60);
        assert_eq!(c.len(), 40);
        assert_eq!(s.len(), 20);
        assert!(c.iter().all(|x| !s.contains(x)));
    }
}
