//! End-to-end test of the `report` binary: the quick suite must emit a
//! well-formed markdown table for every experiment.

use std::process::Command;

#[test]
fn quick_report_emits_every_table() {
    let out = Command::new(env!("CARGO_BIN_EXE_report"))
        .args(["all", "--quick"])
        .output()
        .expect("report binary runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    for id in mpc_bench::experiments::ALL {
        let tag = format!("### {}", id.to_uppercase());
        assert!(
            stdout.contains(&tag),
            "experiment {id} missing from the report (expected a heading starting {tag:?})"
        );
    }
    // Every table needs a header separator row.
    let headings = stdout.matches("### ").count();
    let separators = stdout.matches("|---").count();
    assert!(
        separators >= headings,
        "{headings} headings but only {separators} table bodies"
    );
}

#[test]
fn selecting_single_experiments_works() {
    let out = Command::new(env!("CARGO_BIN_EXE_report"))
        .args(["e4", "--quick"])
        .output()
        .unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("### E4-A"));
    assert!(
        !stdout.contains("### E1-A"),
        "unselected experiments must not run"
    );
}
