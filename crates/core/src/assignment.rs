//! Cluster assignment: turn a set of centers into the full clustering a
//! downstream consumer actually uses, computed distributedly.
//!
//! The paper's algorithms return centers; assigning every point to its
//! nearest center is one more broadcast + local scan (1 MPC round of
//! traffic for the centers, assignments stay machine-local as in any real
//! deployment).

use mpc_metric::{MetricSpace, PointId};
use mpc_sim::Cluster;

use crate::common::to_point_ids;
use crate::params::Params;
use crate::telemetry::Telemetry;

/// A full clustering: per-point nearest centers plus per-cluster stats.
#[derive(Debug, Clone)]
pub struct Assignment {
    /// The centers, in the order cluster indices refer to.
    pub centers: Vec<PointId>,
    /// `cluster_of[p]` = index into `centers` of point `p`'s nearest
    /// center.
    pub cluster_of: Vec<u32>,
    /// `distance[p]` = distance of point `p` to its center.
    pub distance: Vec<f64>,
    /// Number of points per cluster.
    pub sizes: Vec<usize>,
    /// Radius (max member distance) per cluster.
    pub radii: Vec<f64>,
    /// Measured rounds/communication of the assignment step.
    pub telemetry: Telemetry,
}

impl Assignment {
    /// The overall covering radius (max over clusters).
    pub fn radius(&self) -> f64 {
        self.radii.iter().copied().fold(0.0, f64::max)
    }

    /// Mean point-to-center distance.
    pub fn mean_distance(&self) -> f64 {
        if self.distance.is_empty() {
            0.0
        } else {
            self.distance.iter().sum::<f64>() / self.distance.len() as f64
        }
    }
}

/// Assigns every point of `metric` to its nearest center, distributedly:
/// broadcast the centers (1 round), scan locally, reduce the per-cluster
/// stats (1 round).
pub fn assign_to_centers<M: MetricSpace + ?Sized>(
    metric: &M,
    centers: &[PointId],
    params: &Params,
) -> Assignment {
    assert!(!centers.is_empty(), "need at least one center");
    let n = metric.n();
    let mut cluster = Cluster::new(params.m, params.seed);
    let partition = params.partition.build(n, params.m, params.seed);
    let local_sets = partition.all_items().to_vec();

    cluster.broadcast("assign/centers", centers.len(), metric.point_weight());
    // Local assignment: (cluster index, distance) per owned point.
    let local: Vec<Vec<(u32, u32, f64)>> = cluster.map(&local_sets, |_, vi| {
        vi.iter()
            .map(|&v| {
                let (ci, d) = centers
                    .iter()
                    .enumerate()
                    .map(|(ci, &c)| (ci, metric.dist(PointId(v), c)))
                    .min_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)))
                    .expect("non-empty centers");
                (v, ci as u32, d)
            })
            .collect()
    });

    // Per-cluster stats reduced to the central machine (k counts + k
    // radii per machine).
    let stats: Vec<Vec<(u64, f64)>> = local
        .iter()
        .map(|rows| {
            let mut acc = vec![(0u64, 0.0f64); centers.len()];
            for &(_, ci, d) in rows {
                acc[ci as usize].0 += 1;
                acc[ci as usize].1 = acc[ci as usize].1.max(d);
            }
            acc
        })
        .collect();
    let gathered = cluster.gather("assign/stats", stats, 2);
    let mut sizes = vec![0usize; centers.len()];
    let mut radii = vec![0.0f64; centers.len()];
    for (i, &(cnt, rad)) in gathered.iter().enumerate() {
        let ci = i % centers.len();
        sizes[ci] += cnt as usize;
        radii[ci] = radii[ci].max(rad);
    }

    // Global views for the caller (machine-local in a real deployment;
    // assembling them here costs nothing extra in the model).
    let mut cluster_of = vec![0u32; n];
    let mut distance = vec![0.0f64; n];
    for rows in &local {
        for &(v, ci, d) in rows {
            cluster_of[v as usize] = ci;
            distance[v as usize] = d;
        }
    }

    Assignment {
        centers: centers.to_vec(),
        cluster_of,
        distance,
        sizes,
        radii,
        telemetry: Telemetry::from_ledger(cluster.ledger()),
    }
}

/// Convenience: run MPC k-center and return the full assignment.
pub fn kcenter_with_assignment<M: MetricSpace + ?Sized>(
    metric: &M,
    k: usize,
    params: &Params,
) -> (crate::kcenter::KCenterResult, Assignment) {
    let res = crate::kcenter::mpc_kcenter(metric, k, params);
    let assignment = assign_to_centers(metric, &res.centers, params);
    (res, assignment)
}

/// Convenience alias used by examples: ids instead of `PointId`s.
pub fn assign_ids<M: MetricSpace + ?Sized>(
    metric: &M,
    centers: &[u32],
    params: &Params,
) -> Assignment {
    assign_to_centers(metric, &to_point_ids(centers), params)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpc_metric::{datasets, EuclideanSpace, PointSet};

    fn line(xs: &[f64]) -> EuclideanSpace {
        EuclideanSpace::new(PointSet::from_rows(
            &xs.iter().map(|&x| vec![x]).collect::<Vec<_>>(),
        ))
    }

    #[test]
    fn assigns_to_nearest_center() {
        let m = line(&[0.0, 1.0, 9.0, 10.0]);
        let params = Params::practical(2, 0.1, 1);
        let a = assign_ids(&m, &[0, 3], &params);
        assert_eq!(a.cluster_of, vec![0, 0, 1, 1]);
        assert_eq!(a.sizes, vec![2, 2]);
        assert_eq!(a.radii, vec![1.0, 1.0]);
        assert_eq!(a.radius(), 1.0);
        assert_eq!(a.distance[1], 1.0);
        assert!((a.mean_distance() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn ties_break_to_lower_cluster_index() {
        let m = line(&[0.0, 5.0, 10.0]);
        let params = Params::practical(2, 0.1, 1);
        let a = assign_ids(&m, &[0, 2], &params);
        assert_eq!(a.cluster_of[1], 0, "midpoint ties to the first center");
    }

    #[test]
    fn matches_kcenter_reported_radius() {
        let metric = EuclideanSpace::new(datasets::gaussian_clusters(300, 2, 5, 0.02, 9));
        let params = Params::practical(4, 0.1, 9);
        let (res, a) = kcenter_with_assignment(&metric, 5, &params);
        assert!((a.radius() - res.radius).abs() < 1e-9);
        assert_eq!(a.sizes.iter().sum::<usize>(), 300);
        assert!(a.telemetry.rounds >= 2);
    }

    #[test]
    fn every_cluster_contains_its_center() {
        let metric = EuclideanSpace::new(datasets::uniform_cube(120, 2, 5));
        let params = Params::practical(3, 0.1, 5);
        let (res, a) = kcenter_with_assignment(&metric, 6, &params);
        for (ci, c) in res.centers.iter().enumerate() {
            assert_eq!(
                a.cluster_of[c.idx()],
                ci as u32,
                "center {c} not in its own cluster"
            );
            assert_eq!(a.distance[c.idx()], 0.0);
        }
    }
}
