//! Distributed helpers shared by the top-level algorithms (Algorithms 2,
//! 5, 6): coreset construction and covering-radius evaluation.

use mpc_metric::{dist_point_to_set, MetricSpace, PointId};
use mpc_sim::Cluster;

use crate::gmm::gmm;

/// Converts raw vertex ids to [`PointId`]s.
pub fn to_point_ids(ids: &[u32]) -> Vec<PointId> {
    ids.iter().map(|&v| PointId(v)).collect()
}

/// Lines 1–2 of Algorithms 2/5/6: every machine runs GMM on its local
/// points and ships the size-≤k coreset `T_i` to the central machine, which
/// runs GMM on the union. Returns `(q, t_union)` where `q = GMM(∪ T_i, k)`.
/// One MPC round (the gather).
pub fn gmm_coreset<M: MetricSpace + ?Sized>(
    cluster: &mut Cluster,
    metric: &M,
    local_sets: &[Vec<u32>],
    k: usize,
) -> (Vec<u32>, Vec<Vec<u32>>) {
    let w = metric.point_weight();
    let coresets: Vec<Vec<u32>> = cluster.map(local_sets, |_, vi| gmm(metric, vi, k).selected);
    let tagged: Vec<Vec<u32>> = coresets.clone();
    let union = cluster.gather("coreset/gather", tagged, w);
    let q = gmm(metric, &union, k).selected;
    (q, coresets)
}

/// `r(X, Q) = max_{x ∈ X} d(x, Q)` where `X` is distributed as
/// `local_sets`. Two rounds: broadcast `Q`, reduce the local maxima.
/// Returns 0 when `X` is empty, and `f64::INFINITY` when `Q` is empty
/// while `X` is not (each `d(x, ∅) = ∞`, per the
/// [`dist_point_to_set`] empty-set contract) — callers that can produce
/// an empty `Q`, like a serving index queried before its first insert,
/// must branch on `X` first.
pub fn covering_radius<M: MetricSpace + ?Sized>(
    cluster: &mut Cluster,
    metric: &M,
    local_sets: &[Vec<u32>],
    q: &[u32],
) -> f64 {
    let w = metric.point_weight();
    cluster.broadcast("radius/bcast", q.len(), w);
    let q_ids = to_point_ids(q);
    let local_max: Vec<f64> = cluster.map(local_sets, |_, vi| {
        vi.iter()
            .map(|&v| dist_point_to_set(metric, PointId(v), &q_ids))
            .fold(0.0f64, f64::max)
    });
    cluster.reduce("radius/reduce", local_max, 1, f64::max)
}

/// For each point of `q`, its nearest point among the distributed
/// `local_sets` (id and distance). Two rounds: broadcast `q`, gather the
/// per-machine candidates. Panics if `local_sets` is entirely empty while
/// `q` is not.
pub fn nearest_in_distributed_set<M: MetricSpace + ?Sized>(
    cluster: &mut Cluster,
    metric: &M,
    local_sets: &[Vec<u32>],
    q: &[u32],
) -> Vec<(u32, f64)> {
    let w = metric.point_weight();
    cluster.broadcast("nearest/bcast", q.len(), w);
    // candidates[machine][idx in q] = (best id, best dist) on that machine
    let candidates: Vec<Vec<(u32, f64)>> = cluster.map(local_sets, |_, si| {
        q.iter()
            .map(|&target| {
                si.iter()
                    .map(|&s| (s, metric.dist(PointId(target), PointId(s))))
                    .min_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)))
                    .unwrap_or((u32::MAX, f64::INFINITY))
            })
            .collect()
    });
    let all = cluster.gather("nearest/gather", candidates, 2);
    // Fold the m candidate rows (gathered in machine order) per q index.
    let mut best = vec![(u32::MAX, f64::INFINITY); q.len()];
    for (flat_idx, cand) in all.into_iter().enumerate() {
        let qi = flat_idx % q.len().max(1);
        if cand.1 < best[qi].1 || (cand.1 == best[qi].1 && cand.0 < best[qi].0) {
            best[qi] = cand;
        }
    }
    assert!(
        q.is_empty() || best.iter().all(|&(id, _)| id != u32::MAX),
        "no candidate found: the distributed set is empty"
    );
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpc_metric::{datasets, EuclideanSpace, PointSet};
    use mpc_sim::Partition;

    fn line(xs: &[f64]) -> EuclideanSpace {
        EuclideanSpace::new(PointSet::from_rows(
            &xs.iter().map(|&x| vec![x]).collect::<Vec<_>>(),
        ))
    }

    #[test]
    fn coreset_q_has_k_points() {
        let metric = EuclideanSpace::new(datasets::uniform_cube(120, 2, 3));
        let mut cluster = Cluster::new(4, 1);
        let parts = Partition::round_robin(120, 4).all_items().to_vec();
        let (q, coresets) = gmm_coreset(&mut cluster, &metric, &parts, 6);
        assert_eq!(q.len(), 6);
        assert_eq!(coresets.len(), 4);
        assert!(coresets.iter().all(|c| c.len() == 6));
        assert_eq!(cluster.rounds(), 1);
    }

    #[test]
    fn coreset_handles_tiny_machines() {
        let metric = line(&[0.0, 1.0, 2.0]);
        let mut cluster = Cluster::new(2, 1);
        let (q, _) = gmm_coreset(&mut cluster, &metric, &[vec![0], vec![1, 2]], 5);
        assert_eq!(q.len(), 3, "k > n returns everything");
    }

    #[test]
    fn covering_radius_matches_direct_computation() {
        let metric = line(&[0.0, 1.0, 5.0, 9.0]);
        let mut cluster = Cluster::new(2, 1);
        let local = vec![vec![0, 1], vec![2, 3]];
        // Q = {1}: furthest is 9 at distance 8.
        let r = covering_radius(&mut cluster, &metric, &local, &[1]);
        assert_eq!(r, 8.0);
        assert_eq!(cluster.rounds(), 2);
    }

    #[test]
    fn covering_radius_of_empty_x_is_zero() {
        let metric = line(&[0.0]);
        let mut cluster = Cluster::new(2, 1);
        assert_eq!(
            covering_radius(&mut cluster, &metric, &[vec![], vec![]], &[0]),
            0.0
        );
    }

    /// The empty-`Q` side of the contract (ISSUE 7 satellite): an empty
    /// center set covers nothing, so the radius over any non-empty `X`
    /// is `∞` — a *defined* value callers can branch on, never a panic.
    /// Both-empty stays the empty-`X` case (0).
    #[test]
    fn covering_radius_of_empty_center_set_is_infinite() {
        let metric = line(&[0.0, 1.0, 2.0]);
        let mut cluster = Cluster::new(2, 1);
        assert_eq!(
            covering_radius(&mut cluster, &metric, &[vec![0, 1], vec![2]], &[]),
            f64::INFINITY
        );
        assert_eq!(
            covering_radius(&mut cluster, &metric, &[vec![], vec![]], &[]),
            0.0
        );
    }

    #[test]
    fn nearest_finds_global_minimum_across_machines() {
        let metric = line(&[0.0, 10.0, 4.9, 5.1, 20.0]);
        let mut cluster = Cluster::new(2, 1);
        // Suppliers 2 (x=4.9) on machine 0, suppliers 3, 4 on machine 1.
        let local = vec![vec![2], vec![3, 4]];
        // Query points 0 (x=0) and 1 (x=10).
        let best = nearest_in_distributed_set(&mut cluster, &metric, &local, &[0, 1]);
        assert_eq!(best[0].0, 2); // x=4.9 closest to 0
        assert!((best[0].1 - 4.9).abs() < 1e-12);
        assert_eq!(best[1].0, 3); // x=5.1 closest to 10
        assert!((best[1].1 - 4.9).abs() < 1e-12);
    }
}
