//! Algorithm 3 — MPC vertex-degree approximation in a threshold graph.
//!
//! Every machine samples its alive vertices with probability `1/m` and
//! broadcasts the sample. Vertices whose sampled-neighbor count reaches
//! `δ ln n` are *heavy* and get the unbiased estimate `m · |N(v) ∩ S|`
//! (within `1 ± ε` w.h.p., Lemma 8); the rest are *light* and get exact
//! degrees computed cooperatively (their true degree is small w.h.p.,
//! Lemma 5, so this is affordable). If there are too many light vertices
//! for that to be affordable, an independent set of size `k` can be
//! extracted from them directly instead (Lemma 6) — short-circuiting the
//! caller, Algorithm 4, entirely.
//!
//! Deviation from the paper (DESIGN.md §2): with practical constants the
//! light-vertex extraction may fail to reach `k` (the w.h.p. degree bound
//! of Lemma 5 can be violated); we then *fall through* to the exact-degree
//! path rather than give an invalid answer, trading communication
//! (recorded on the ledger) for unconditional correctness.

use mpc_graph::{GraphView, ThresholdGraph};
use mpc_metric::MetricSpace;
use mpc_sim::Cluster;
use rand::RngExt;

use crate::params::Params;

/// Result of [`approximate_degrees`].
#[derive(Debug, Clone)]
pub enum DegreeOutcome {
    /// Per-vertex degree estimates `p_v`, indexed by global vertex id
    /// (entries for non-alive vertices are 0 and meaningless).
    Estimates {
        /// The estimates.
        p: Vec<f64>,
        /// Number of vertices classified heavy. Both counts are 0 on the
        /// exact-degree ablation path (D3), where no heavy/light
        /// classification happens at all.
        heavy: usize,
        /// Number of vertices classified light.
        light: usize,
    },
    /// An independent set of size exactly `k` found among light vertices.
    IndependentSet(Vec<u32>),
}

/// Salt values distinguishing this module's RNG call sites.
const SALT_SAMPLE: u64 = 0x10;
const SALT_EXTRACT: u64 = 0x11;

/// Runs Algorithm 3 on the subgraph of `G_tau` induced by the `alive`
/// vertices (one list per machine).
///
/// * `k` — size of the independent set the caller would accept as a
///   short-circuit (`k ≥ 1`).
/// * `n_total` — the original input size `n`, fixing `ln n` in all
///   thresholds (the paper's w.h.p. statements are in terms of the input
///   size, not the shrinking alive count).
///
/// Degrees are with respect to the alive-induced subgraph, which is what
/// Algorithm 4 needs round by round.
pub fn approximate_degrees<M: MetricSpace + ?Sized>(
    cluster: &mut Cluster,
    metric: &M,
    alive: &[Vec<u32>],
    tau: f64,
    k: usize,
    n_total: usize,
    params: &Params,
) -> DegreeOutcome {
    assert!(k >= 1, "k must be positive");
    assert_eq!(alive.len(), cluster.m(), "one alive list per machine");
    let graph = ThresholdGraph::new(metric, tau);
    let m = cluster.m();
    let ln_n = (n_total.max(2) as f64).ln();
    let w = metric.point_weight();

    if params.exact_degrees {
        return exact_degrees(cluster, &graph, alive, w);
    }

    // Lines 1–3: sample with probability 1/m, broadcast to everyone.
    let sample_prob = 1.0 / m as f64;
    let samples: Vec<Vec<u32>> = cluster.map(alive, |i, vi| {
        let mut rng = cluster.rng(i, SALT_SAMPLE);
        vi.iter()
            .copied()
            .filter(|_| rng.random_range(0.0..1.0) < sample_prob)
            .collect()
    });
    let sample: Vec<u32> = cluster.all_broadcast("deg/sample", samples, w);

    // Sampled-neighbor counts for every alive vertex (local compute; the
    // O(|V_i|·|S|) scan is the hot kernel, routed through the graph's bulk
    // `degrees_among` so threshold graphs hit the metric's batched
    // count_within kernel instead of per-pair oracle calls).
    let counts: Vec<Vec<u32>> = cluster.map(alive, |_, vi| {
        graph
            .degrees_among(vi, &sample)
            .into_iter()
            .map(|d| d as u32)
            .collect()
    });

    // Line 4: classify light vertices (Definition 4).
    let light_threshold = params.delta * ln_n;
    let light_flags: Vec<Vec<bool>> = counts
        .iter()
        .map(|cs| cs.iter().map(|&c| (c as f64) < light_threshold).collect())
        .collect();
    let local_light: Vec<u64> = light_flags
        .iter()
        .map(|fs| fs.iter().filter(|&&f| f).count() as u64)
        .collect();
    let total_light = cluster.all_reduce("deg/light-count", local_light.clone(), 1, |a, b| a + b);

    // Lines 5–6: too many light vertices — extract an independent set of
    // size k from a ρ-fraction of them at the central machine (Lemma 6).
    let light_cap = 2.0 * params.delta * (m as f64) * (k as f64) * ln_n;
    if total_light as f64 > light_cap {
        let rho = (light_cap / total_light as f64).min(1.0);
        // The central machine computed ρ from the gathered counts; it now
        // broadcasts it (one scalar).
        cluster.broadcast("deg/rho", 1, 1);
        let contributions: Vec<Vec<u32>> = cluster.map(alive, |i, vi| {
            let mut rng = cluster.rng(i, SALT_EXTRACT);
            let lights: Vec<u32> = vi
                .iter()
                .zip(&light_flags[i])
                .filter(|&(_, &f)| f)
                .map(|(&v, _)| v)
                .collect();
            let want = ((rho * lights.len() as f64).ceil() as usize).min(lights.len());
            // Random `want`-subset via partial Fisher–Yates.
            let mut pool = lights;
            for idx in 0..want {
                let j = rng.random_range(idx..pool.len());
                pool.swap(idx, j);
            }
            pool.truncate(want);
            pool
        });
        let pool = cluster.gather("deg/light-pool", contributions, w);
        let (is, _) = mpc_graph::mis::greedy_k_bounded_mis(&graph, &pool, k);
        if is.len() == k {
            // Central announces the result so all machines terminate.
            cluster.broadcast("deg/is-result", is.len(), w);
            return DegreeOutcome::IndependentSet(is);
        }
        // Extraction under-delivered (possible under practical constants);
        // fall through to the exact path below. One scalar tells the
        // machines to continue.
        cluster.broadcast("deg/is-miss", 1, 1);
    }

    // Lines 7–12: exact degrees for light vertices, sampled estimate for
    // heavy ones.
    let light_lists: Vec<Vec<u32>> = alive
        .iter()
        .zip(&light_flags)
        .map(|(vi, fs)| {
            vi.iter()
                .zip(fs)
                .filter(|&(_, &f)| f)
                .map(|(&v, _)| v)
                .collect()
        })
        .collect();
    let all_light: Vec<u32> = cluster.all_broadcast("deg/light-bcast", light_lists, w);

    // d_i(v) for every light v against machine i's alive vertices (batched
    // per vertex through the metric kernel, as above).
    let partials: Vec<Vec<u32>> = cluster.map(alive, |_, vi| {
        graph
            .degrees_among(&all_light, vi)
            .into_iter()
            .map(|d| d as u32)
            .collect()
    });
    // Line 9: route each partial count to the machine *owning* the light
    // vertex (not all-to-all — that would cost Õ(m²k) per machine; owner
    // routing keeps it Õ(mk), which is what Theorem 9 charges: only the
    // owner needs p_v, for the sampling step of Algorithm 4).
    let light_seg_sizes: Vec<usize> = {
        // all_light is the concatenation of each machine's light list in
        // machine order; recover the segment boundaries.
        alive
            .iter()
            .zip(&light_flags)
            .map(|(_, fs)| fs.iter().filter(|&&f| f).count())
            .collect()
    };
    let outboxes: Vec<Vec<Vec<u32>>> = partials
        .iter()
        .map(|row| {
            let mut boxes = Vec::with_capacity(m);
            let mut off = 0;
            for &len in &light_seg_sizes {
                boxes.push(row[off..off + len].to_vec());
                off += len;
            }
            boxes
        })
        .collect();
    let _ = cluster.exchange("deg/light-partials", outboxes, 1);

    let mut p = vec![0.0f64; n_total];
    // Exact light degrees: sum of partials. A light vertex's self-adjacency
    // never counts (GraphView excludes self-loops).
    for (idx, &v) in all_light.iter().enumerate() {
        let exact: u32 = partials.iter().map(|row| row[idx]).sum();
        p[v as usize] = exact as f64;
    }
    // Heavy estimates: (1/p) · |N(v) ∩ S| = m · count.
    let mut heavy = 0usize;
    for (machine, vi) in alive.iter().enumerate() {
        for ((&v, &cnt), &is_light) in vi.iter().zip(&counts[machine]).zip(&light_flags[machine]) {
            if !is_light {
                p[v as usize] = (m as f64) * (cnt as f64);
                heavy += 1;
            }
        }
    }
    DegreeOutcome::Estimates {
        p,
        heavy,
        light: total_light as usize,
    }
}

/// Ablation D3: exact degrees for every alive vertex, computed by
/// broadcasting all alive vertices (communication `O(n)` per machine —
/// exactly what Algorithm 3 exists to avoid).
///
/// No heavy/light classification happens on this path — every degree is
/// exact — so the returned split is `heavy: 0, light: 0` rather than a
/// fabricated one (an earlier version reported every vertex as heavy,
/// poisoning the E6/E10 telemetry).
fn exact_degrees<M: MetricSpace + ?Sized>(
    cluster: &mut Cluster,
    graph: &ThresholdGraph<&M>,
    alive: &[Vec<u32>],
    weight: u64,
) -> DegreeOutcome {
    let all_alive: Vec<u32> = cluster.all_broadcast("deg/exact-bcast", alive.to_vec(), weight);
    let per_machine: Vec<Vec<(u32, u32)>> = cluster.map(alive, |_, vi| {
        vi.iter()
            .zip(graph.degrees_among(vi, &all_alive))
            .map(|(&v, d)| (v, d as u32))
            .collect()
    });
    let n_total = graph.n_vertices();
    let mut p = vec![0.0f64; n_total];
    for row in per_machine {
        for (v, d) in row {
            p[v as usize] = d as f64;
        }
    }
    DegreeOutcome::Estimates {
        p,
        heavy: 0,
        light: 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpc_metric::{datasets, EuclideanSpace};
    use mpc_sim::Partition;

    fn split(n: usize, m: usize) -> Vec<Vec<u32>> {
        Partition::round_robin(n, m).all_items().to_vec()
    }

    fn true_degrees<M: MetricSpace>(metric: &M, tau: f64, n: usize) -> Vec<usize> {
        let g = ThresholdGraph::new(metric, tau);
        let all: Vec<u32> = (0..n as u32).collect();
        all.iter().map(|&v| g.degree_among(v, &all)).collect()
    }

    #[test]
    fn exact_mode_matches_true_degrees() {
        let n = 120;
        let metric = EuclideanSpace::new(datasets::uniform_cube(n, 2, 3));
        let mut cluster = Cluster::new(4, 9);
        let mut params = Params::practical(4, 0.1, 9);
        params.exact_degrees = true;
        let alive = split(n, 4);
        let out = approximate_degrees(&mut cluster, &metric, &alive, 0.3, 5, n, &params);
        let truth = true_degrees(&metric, 0.3, n);
        match out {
            DegreeOutcome::Estimates { p, .. } => {
                for v in 0..n {
                    assert_eq!(p[v], truth[v] as f64, "vertex {v}");
                }
            }
            other => panic!("expected estimates, got {other:?}"),
        }
    }

    #[test]
    fn light_vertices_get_exact_degrees() {
        // Sparse graph: everyone is light, so all degrees must be exact.
        let n = 200;
        let metric = EuclideanSpace::new(datasets::uniform_cube(n, 2, 7));
        let mut cluster = Cluster::new(2, 5);
        // Huge delta forces everyone light; huge k avoids the extraction
        // path trigger (cap = 2*delta*m*k*ln n >> n).
        let mut params = Params::practical(2, 0.1, 5);
        params.delta = 50.0;
        let alive = split(n, 2);
        let out = approximate_degrees(&mut cluster, &metric, &alive, 0.05, 100, n, &params);
        let truth = true_degrees(&metric, 0.05, n);
        match out {
            DegreeOutcome::Estimates { p, heavy, light } => {
                assert_eq!(heavy, 0);
                assert_eq!(light, n);
                for v in 0..n {
                    assert_eq!(p[v], truth[v] as f64, "light vertex {v} must be exact");
                }
            }
            other => panic!("expected estimates, got {other:?}"),
        }
    }

    #[test]
    fn extraction_path_returns_valid_independent_set() {
        // Sparse graph + tiny cap: force the light-extraction branch.
        let n = 400;
        let metric = EuclideanSpace::new(datasets::uniform_cube(n, 2, 11));
        let m = 4;
        let mut cluster = Cluster::new(m, 13);
        let mut params = Params::practical(m, 0.1, 13);
        params.delta = 0.05; // cap = 2*0.05*4*k*ln(400) is tiny
        let alive = split(n, m);
        let k = 3;
        let tau = 0.01; // near-empty graph: independent sets abound
        let out = approximate_degrees(&mut cluster, &metric, &alive, tau, k, n, &params);
        match out {
            DegreeOutcome::IndependentSet(is) => {
                assert_eq!(is.len(), k);
                let g = ThresholdGraph::new(&metric, tau);
                assert!(mpc_graph::verify::is_independent(&g, &is));
            }
            other => panic!("expected extraction, got {other:?}"),
        }
    }

    #[test]
    fn heavy_estimates_are_close_on_dense_graphs() {
        // Dense threshold: most vertices heavy; estimates within a loose
        // multiplicative band of the truth (statistical test, fixed seed).
        let n = 1500;
        let m = 5;
        let metric = EuclideanSpace::new(datasets::uniform_cube(n, 2, 21));
        let mut cluster = Cluster::new(m, 17);
        let params = Params::practical(m, 0.1, 17);
        let alive = split(n, m);
        let tau = 0.5; // ~50%+ of the square within range: degrees ~n/2
        let out = approximate_degrees(&mut cluster, &metric, &alive, tau, 5, n, &params);
        let truth = true_degrees(&metric, tau, n);
        match out {
            DegreeOutcome::Estimates { p, heavy, .. } => {
                assert!(
                    heavy > n / 2,
                    "dense graph should be mostly heavy, got {heavy}"
                );
                let mut rel_err_sum = 0.0;
                let mut count = 0;
                for v in 0..n {
                    if truth[v] > 200 {
                        rel_err_sum += (p[v] - truth[v] as f64).abs() / truth[v] as f64;
                        count += 1;
                    }
                }
                let mean_rel_err = rel_err_sum / count as f64;
                assert!(
                    mean_rel_err < 0.25,
                    "mean relative error {mean_rel_err} too large for sampled estimates"
                );
            }
            other => panic!("expected estimates, got {other:?}"),
        }
    }

    #[test]
    fn rounds_and_communication_are_charged() {
        let n = 100;
        let metric = EuclideanSpace::new(datasets::uniform_cube(n, 2, 3));
        let mut cluster = Cluster::new(4, 1);
        let params = Params::practical(4, 0.1, 1);
        let alive = split(n, 4);
        let _ = approximate_degrees(&mut cluster, &metric, &alive, 0.2, 5, n, &params);
        assert!(
            cluster.rounds() >= 3,
            "sampling, counting and light paths each cost rounds"
        );
        assert!(cluster.ledger().total_words() > 0);
    }

    #[test]
    fn single_machine_cluster_degenerates_gracefully() {
        let n = 60;
        let metric = EuclideanSpace::new(datasets::uniform_cube(n, 2, 2));
        let mut cluster = Cluster::new(1, 3);
        let params = Params::practical(1, 0.1, 3);
        let alive = split(n, 1);
        // With m = 1 the sample is everything, so counts are exact degrees.
        let out = approximate_degrees(&mut cluster, &metric, &alive, 0.4, 5, n, &params);
        let truth = true_degrees(&metric, 0.4, n);
        match out {
            DegreeOutcome::Estimates { p, .. } => {
                for v in 0..n {
                    assert_eq!(p[v], truth[v] as f64);
                }
            }
            DegreeOutcome::IndependentSet(is) => {
                let g = ThresholdGraph::new(&metric, 0.4);
                assert!(mpc_graph::verify::is_independent(&g, &is));
            }
        }
    }
}
