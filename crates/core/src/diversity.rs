//! Algorithm 2 — `(2+ε)`-approximation MPC k-diversity maximization
//! (Theorem 3), plus the two-round 4-approximation that falls out of its
//! first three lines (§3, side product).
//!
//! The algorithm first computes a 4-approximation `r` of the optimal
//! diversity from per-machine GMM coresets, then walks the geometric
//! threshold ladder `τ_i = r(1+ε)^i`: the largest threshold whose
//! k-bounded MIS still has `k` points is a `(2+ε)`-approximate solution,
//! because the *maximal* independent set one rung higher covers all of `V`
//! with balls that must pin two optimal points together (pigeonhole).

use std::time::Instant;

use mpc_metric::{min_pairwise_distance, MetricSpace, PointId};
use mpc_sim::Cluster;

use crate::common::{gmm_coreset, to_point_ids};
use crate::gmm::gmm;
use crate::kbmis::k_bounded_mis;
use crate::ladder::{BoundaryMode, LadderSearch, RungEval};
use crate::memo::MemoizedSpace;
use crate::params::Params;
use crate::telemetry::{PhaseTimes, Telemetry};

/// Result of [`mpc_diversity`] / [`four_approx_diversity`].
#[derive(Debug, Clone)]
pub struct DiversityResult {
    /// The selected k points.
    pub subset: Vec<PointId>,
    /// `div(subset)` — the minimum pairwise distance achieved.
    pub diversity: f64,
    /// The coarse estimate `r` of line 3 (a 4-approximation of the
    /// optimum: `r ≤ div_k(V) ≤ 4r`).
    pub coarse_r: f64,
    /// Ladder index of the returned solution (0 = the coarse solution Q).
    pub boundary_index: usize,
    /// Measured rounds/communication.
    pub telemetry: Telemetry,
}

/// Lines 1–3 of Algorithm 2: the candidate `(r, Q)` with the largest
/// diversity among the per-machine coresets and the coreset-union GMM.
///
/// Returns `(r, q)` with `|q| = min(k, n)` and `div(q) = r`; `r` is a
/// 4-approximation of `div_k(V)`.
fn coarse_estimate<M: MetricSpace + ?Sized>(
    cluster: &mut Cluster,
    metric: &M,
    local_sets: &[Vec<u32>],
    k: usize,
) -> (f64, Vec<u32>) {
    let (s, coresets) = gmm_coreset(cluster, metric, local_sets, k);
    // div for each candidate; candidates need exactly min(k, n) points.
    let need = s.len(); // = min(k, |T|) and |T| >= min(k, n)
    let div_of = |set: &[u32]| min_pairwise_distance(metric, &to_point_ids(set));
    let mut best_r = div_of(&s);
    let mut best: &[u32] = &s;
    for t_i in &coresets {
        if t_i.len() == need {
            let r_i = div_of(t_i);
            if r_i > best_r {
                best_r = r_i;
                best = t_i;
            }
        }
    }
    (best_r, best.to_vec())
}

/// The two-round 4-approximation MPC algorithm for k-diversity (§3 side
/// product) — already better than the 6-approximation composable-coreset
/// baseline of Indyk et al.
pub fn four_approx_diversity<M: MetricSpace + ?Sized>(
    metric: &M,
    k: usize,
    params: &Params,
) -> DiversityResult {
    assert!(k >= 2, "diversity needs k >= 2");
    let n = metric.n();
    let mut cluster = new_cluster(params);
    let partition = params.partition.build(n, params.m, params.seed);
    let (r, q) = coarse_estimate(&mut cluster, metric, partition.all_items(), k);
    let subset = to_point_ids(&q);
    let diversity = min_pairwise_distance(metric, &subset);
    DiversityResult {
        subset,
        diversity,
        coarse_r: r,
        boundary_index: 0,
        telemetry: Telemetry::from_ledger(cluster.ledger()),
    }
}

fn new_cluster(params: &Params) -> Cluster {
    match params.budget_words {
        Some(b) => Cluster::with_budget(params.m, params.seed, b),
        None => Cluster::new(params.m, params.seed),
    }
}

/// The diversity ladder for [`LadderSearch`]: rung `i` is the k-bounded
/// MIS of the threshold graph at `τ_i = r(1+ε)^i`, acceptable while it
/// still finds `k` independent points (they then have pairwise distance
/// > τ_i).
struct DiversityRungs<'a, M: MetricSpace + ?Sized> {
    memo: &'a MemoizedSpace<'a, M>,
    local_sets: &'a [Vec<u32>],
    r: f64,
    k: usize,
    n: usize,
    params: &'a Params,
}

impl<M: MetricSpace + ?Sized> DiversityRungs<'_, M> {
    fn tau(&self, i: usize) -> f64 {
        self.r * (1.0 + self.params.epsilon).powi(i as i32)
    }
}

impl<M: MetricSpace + ?Sized> RungEval for DiversityRungs<'_, M> {
    type Rung = Vec<u32>;

    fn eval(&mut self, cluster: &mut Cluster, i: usize) -> Vec<u32> {
        k_bounded_mis(
            cluster,
            self.memo,
            self.local_sets,
            self.tau(i),
            self.k,
            self.n,
            self.params,
            false,
        )
        .set
    }

    fn accept(&self, _i: usize, rung: &Vec<u32>) -> bool {
        rung.len() == self.k
    }

    fn prewarm(&mut self, reachable: &[usize]) {
        let taus: Vec<f64> = reachable.iter().map(|&i| self.tau(i)).collect();
        self.memo.prewarm_taus(&taus);
    }
}

/// Algorithm 2: the `(2+ε)`-approximation MPC algorithm for k-diversity
/// maximization (Theorem 3). Constant rounds (`O(log 1/ε)` k-bounded-MIS
/// invocations via binary search), `Õ(mk)` communication per machine.
///
/// ```
/// use mpc_core::{diversity::mpc_diversity, Params};
/// use mpc_metric::{datasets, EuclideanSpace};
///
/// let space = EuclideanSpace::new(datasets::uniform_cube(300, 2, 1));
/// let res = mpc_diversity(&space, 6, &Params::practical(4, 0.1, 3));
/// assert_eq!(res.subset.len(), 6);
/// assert!(res.diversity >= res.coarse_r); // never worse than the 4-approx stage
/// ```
pub fn mpc_diversity<M: MetricSpace + ?Sized>(
    metric: &M,
    k: usize,
    params: &Params,
) -> DiversityResult {
    let mut cluster = new_cluster(params);
    mpc_diversity_on(&mut cluster, metric, k, params)
}

/// Like [`mpc_diversity`] but on a caller-provided cluster, keeping the
/// full round-by-round [`mpc_sim::Ledger`] with the caller.
pub fn mpc_diversity_on<M: MetricSpace + ?Sized>(
    cluster: &mut Cluster,
    metric: &M,
    k: usize,
    params: &Params,
) -> DiversityResult {
    assert!(k >= 2, "diversity needs k >= 2");
    params.validate();
    assert_eq!(cluster.m(), params.m, "cluster size must match params.m");
    let n = metric.n();
    let partition = params.partition.build(n, params.m, params.seed);
    let local_sets = partition.all_items().to_vec();
    let input_words: Vec<u64> = local_sets
        .iter()
        .map(|s| s.len() as u64 * metric.point_weight())
        .collect();
    cluster.note_memory_all(&input_words);
    cluster.ship_shards("setup/shards", &local_sets, metric.point_weight());

    // Lines 1–3: coarse 4-approximation (r, Q).
    let coarse_started = Instant::now();
    let (r, q) = coarse_estimate(cluster, metric, &local_sets, k);
    let coarse_s = coarse_started.elapsed().as_secs_f64();

    // Degenerate inputs: fewer than k distinct-ish points, or all optimal
    // diversity collapsed to ~0 (r = 0 implies div_k(V) <= 4r = 0).
    if q.len() < k || r <= 0.0 || !r.is_finite() {
        let subset = to_point_ids(&q);
        let diversity = min_pairwise_distance(metric, &subset);
        let mut telemetry = Telemetry::from_ledger(cluster.ledger());
        telemetry.phases.coarse_s = coarse_s;
        telemetry.wire = cluster.wire_summary();
        return DiversityResult {
            subset,
            diversity,
            coarse_r: r.max(0.0),
            boundary_index: 0,
            telemetry,
        };
    }

    // Line 4: the threshold ladder τ_i = r (1+ε)^i, i = 0..=t with
    // (1+ε)^t ≥ 4(1+ε) so τ_t > 4r ≥ div_k(V).
    // Lines 5–6: M_0 = Q; find j with |M_j| = k and |M_{j+1}| < k.
    // |M_t| < k is guaranteed: an independent set of k points in G_{τ_t}
    // would have diversity > τ_t > div_k(V), a contradiction — and our MIS
    // routine only reports size k for genuine independent sets.
    // Every rung re-queries the same (vertex, candidate-set) pairs with
    // only τ changing, so the pre-warmed distance memo serves the whole
    // search from one distance pass per pair (ledger-invisible — see
    // [`crate::memo`]).
    let ladder_started = Instant::now();
    let t = params.ladder_len(4.0, 1);
    let memo = MemoizedSpace::new(metric);
    let mut rungs = DiversityRungs {
        memo: &memo,
        local_sets: &local_sets,
        r,
        k,
        n,
        params,
    };
    let mut search = LadderSearch::new(t);
    search.seed(0, q.clone());
    let boundary = search.search(
        cluster,
        &mut rungs,
        BoundaryMode::LastAccept,
        params.boundary_search,
    );
    let ladder_s = ladder_started.elapsed().as_secs_f64();

    let finalize_started = Instant::now();
    let set = search.take(boundary).expect("boundary was evaluated");
    debug_assert_eq!(set.len(), k);
    let subset = to_point_ids(&set);
    let diversity = min_pairwise_distance(metric, &subset);
    let mut telemetry = Telemetry::from_ledger(cluster.ledger());
    telemetry.phases = PhaseTimes {
        coarse_s,
        ladder_s,
        finalize_s: finalize_started.elapsed().as_secs_f64(),
    };
    telemetry.ladder_evals = search.evals() as u64;
    telemetry.ladder_probes = search.probes() as u64;
    telemetry.kernels = metric.kernel_stats();
    telemetry.wire = cluster.wire_summary();
    DiversityResult {
        subset,
        diversity,
        coarse_r: r,
        boundary_index: boundary,
        telemetry,
    }
}

/// Sequential GMM on the full input — the optimal-factor (2) sequential
/// reference both experiments compare against.
pub fn sequential_gmm_diversity<M: MetricSpace + ?Sized>(metric: &M, k: usize) -> DiversityResult {
    assert!(k >= 2);
    let all: Vec<u32> = (0..metric.n() as u32).collect();
    let out = gmm(metric, &all, k);
    let subset = to_point_ids(&out.selected);
    let diversity = min_pairwise_distance(metric, &subset);
    DiversityResult {
        subset,
        diversity,
        coarse_r: diversity,
        boundary_index: 0,
        telemetry: Telemetry::zero(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::BoundarySearch;
    use mpc_metric::{datasets, EuclideanSpace, PointSet};

    fn unit_square_corners_plus_noise() -> EuclideanSpace {
        // 4 far corners plus a dense blob near the origin: optimal
        // 4-diversity picks the corners.
        let mut rows = vec![
            vec![0.0, 0.0],
            vec![10.0, 0.0],
            vec![0.0, 10.0],
            vec![10.0, 10.0],
        ];
        for i in 0..40 {
            rows.push(vec![4.0 + 0.01 * i as f64, 5.0]);
        }
        EuclideanSpace::new(PointSet::from_rows(&rows))
    }

    #[test]
    fn finds_the_corners() {
        let metric = unit_square_corners_plus_noise();
        let params = Params::practical(4, 0.2, 1);
        let res = mpc_diversity(&metric, 4, &params);
        assert_eq!(res.subset.len(), 4);
        // Optimal diversity is 10 (the corners); the guarantee is
        // 2(1+eps) before rescaling eps.
        assert!(
            res.diversity >= 10.0 / (2.0 * 1.2) - 1e-9,
            "diversity {} below the 2(1+eps) guarantee",
            res.diversity
        );
    }

    #[test]
    fn respects_two_plus_eps_on_random_data() {
        for seed in [1u64, 2, 3] {
            let metric = EuclideanSpace::new(datasets::gaussian_clusters(300, 2, 8, 0.03, seed));
            let k = 6;
            let params = Params::practical(4, 0.1, seed);
            let res = mpc_diversity(&metric, k, &params);
            assert_eq!(res.subset.len(), k);
            // GMM's value lower-bounds the optimum, and our guarantee is
            // opt / (2(1+eps)), so the result must reach at least
            // gmm_div / (2(1+eps)).
            let gmm_div = sequential_gmm_diversity(&metric, k).diversity;
            assert!(
                res.diversity >= gmm_div / (2.0 * (1.0 + params.epsilon)) - 1e-9,
                "seed {seed}: {} vs GMM {}",
                res.diversity,
                gmm_div
            );
        }
    }

    #[test]
    fn coarse_r_is_consistent_lower_bound() {
        let metric = EuclideanSpace::new(datasets::uniform_cube(200, 2, 9));
        let params = Params::practical(4, 0.1, 9);
        let res = mpc_diversity(&metric, 5, &params);
        // div_k >= achieved diversity >= ... and r <= div_k(V) <= 4r; the
        // returned solution must do at least as well as the coarse one.
        assert!(res.diversity >= res.coarse_r - 1e-12);
    }

    #[test]
    fn four_approx_matches_coarse_stage() {
        let metric = EuclideanSpace::new(datasets::uniform_cube(150, 2, 5));
        let params = Params::practical(3, 0.1, 5);
        let four = four_approx_diversity(&metric, 5, &params);
        let full = mpc_diversity(&metric, 5, &params);
        assert_eq!(four.coarse_r, full.coarse_r);
        assert!(
            full.diversity >= four.diversity - 1e-12,
            "ladder can only improve"
        );
        assert!(
            four.telemetry.rounds <= 2,
            "4-approx must be two rounds or fewer"
        );
    }

    #[test]
    fn linear_and_binary_search_agree_on_validity() {
        let metric = EuclideanSpace::new(datasets::annulus(150, 1.0, 2.0, 3));
        let mut params = Params::practical(3, 0.2, 3);
        let a = mpc_diversity(&metric, 5, &params);
        params.boundary_search = BoundarySearch::Linear;
        let b = mpc_diversity(&metric, 5, &params);
        for r in [&a, &b] {
            assert_eq!(r.subset.len(), 5);
            assert!(r.diversity >= r.coarse_r - 1e-12);
        }
    }

    #[test]
    fn n_smaller_than_k_returns_everything() {
        let metric = EuclideanSpace::new(datasets::uniform_cube(3, 2, 1));
        let params = Params::practical(2, 0.1, 1);
        let res = mpc_diversity(&metric, 5, &params);
        assert_eq!(res.subset.len(), 3);
    }

    #[test]
    fn duplicate_points_collapse_gracefully() {
        let metric = EuclideanSpace::new(PointSet::from_rows(&[
            vec![1.0, 1.0],
            vec![1.0, 1.0],
            vec![1.0, 1.0],
            vec![1.0, 1.0],
        ]));
        let params = Params::practical(2, 0.1, 1);
        let res = mpc_diversity(&metric, 2, &params);
        assert_eq!(res.subset.len(), 2);
        assert_eq!(res.diversity, 0.0);
    }

    #[test]
    fn deterministic_given_seed() {
        let metric = EuclideanSpace::new(datasets::uniform_cube(200, 3, 17));
        let params = Params::practical(4, 0.15, 17);
        let a = mpc_diversity(&metric, 7, &params);
        let b = mpc_diversity(&metric, 7, &params);
        assert_eq!(a.subset, b.subset);
        assert_eq!(a.telemetry.rounds, b.telemetry.rounds);
    }
}
