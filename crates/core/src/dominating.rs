//! Extension (paper §7): constant-factor minimum dominating set in graphs
//! of bounded neighborhood independence, via k-bounded MIS.
//!
//! A graph has *neighborhood independence* bounded by `c` when no vertex
//! has more than `c` pairwise non-adjacent neighbors (threshold graphs of
//! doubling metrics have small `c`; e.g. unit-disk graphs have `c ≤ 5`).
//! In such graphs **any** maximal independent set is a `c`-approximate
//! minimum dominating set: an MIS dominates by maximality, and each vertex
//! of an optimal dominating set can dominate at most `c` MIS members.
//!
//! The paper observes its k-bounded MIS machinery therefore gives a
//! constant-round MPC dominating-set algorithm: run Algorithm 4 with
//! `k = n` (the bound never binds), so it terminates only by exhausting
//! the graph — i.e. with a genuine maximal independent set — in the same
//! constant number of rounds Theorem 13 gives.

use mpc_metric::{MetricSpace, PointId};
use mpc_sim::Cluster;

use crate::kbmis::k_bounded_mis;
use crate::params::Params;
use crate::telemetry::Telemetry;

/// Result of [`mpc_dominating_set`].
#[derive(Debug, Clone)]
pub struct DominatingSetResult {
    /// The dominating set (a maximal independent set of `G_tau`).
    pub set: Vec<PointId>,
    /// Outer rounds the single MIS invocation used.
    pub outer_rounds: u64,
    /// Measured rounds/communication.
    pub telemetry: Telemetry,
}

/// Computes a dominating set of the threshold graph `G_tau` that is
/// simultaneously a maximal independent set — a `c`-approximation of the
/// minimum dominating set whenever the graph's neighborhood independence
/// is bounded by `c`.
pub fn mpc_dominating_set<M: MetricSpace + ?Sized>(
    metric: &M,
    tau: f64,
    params: &Params,
) -> DominatingSetResult {
    let n = metric.n();
    let mut cluster = match params.budget_words {
        Some(b) => Cluster::with_budget(params.m, params.seed, b),
        None => Cluster::new(params.m, params.seed),
    };
    let partition = params.partition.build(n, params.m, params.seed);
    let local_sets = partition.all_items().to_vec();

    // k = n never binds, so Algorithm 4 runs to graph exhaustion and the
    // result is a true maximal independent set — one constant-round
    // invocation, as the paper's §7 remark intends.
    let res = k_bounded_mis(
        &mut cluster,
        metric,
        &local_sets,
        tau,
        n.max(1),
        n,
        params,
        false,
    );
    // Either the graph exhausted (maximal MIS) or all n vertices joined
    // (edgeless graph: ReachedK at k = n, also a maximal MIS).
    debug_assert!(
        res.maximal || res.set.len() == n,
        "k = n run must end maximal, got {:?} with {} vertices",
        res.outcome,
        res.set.len()
    );
    DominatingSetResult {
        set: res.set.iter().map(|&v| PointId(v)).collect(),
        outer_rounds: res.outer_rounds,
        telemetry: Telemetry::from_ledger(cluster.ledger()),
    }
}

/// A full (unbounded) maximal independent set of `G_tau` in constant MPC
/// rounds — Algorithm 4 with `k = n`.
pub fn mpc_full_mis<M: MetricSpace + ?Sized>(metric: &M, tau: f64, params: &Params) -> Vec<u32> {
    mpc_dominating_set(metric, tau, params)
        .set
        .iter()
        .map(|p| p.0)
        .collect()
}

/// Sequential greedy dominating-set baseline (ln-n–approximate): repeatedly
/// takes the vertex covering the most uncovered vertices. Used in tests to
/// sanity-check sizes.
pub fn greedy_dominating_set<M: MetricSpace + ?Sized>(metric: &M, tau: f64) -> Vec<PointId> {
    let n = metric.n();
    let mut covered = vec![false; n];
    let mut remaining = n;
    let mut set = Vec::new();
    while remaining > 0 {
        let mut best = (0usize, u32::MAX);
        for v in 0..n as u32 {
            let gain = (0..n as u32)
                .filter(|&u| {
                    !covered[u as usize] && (u == v || metric.within(PointId(u), PointId(v), tau))
                })
                .count();
            if gain > best.0 || (gain == best.0 && v < best.1) {
                best = (gain, v);
            }
        }
        let v = best.1;
        set.push(PointId(v));
        for u in 0..n as u32 {
            if !covered[u as usize] && (u == v || metric.within(PointId(u), PointId(v), tau)) {
                covered[u as usize] = true;
                remaining -= 1;
            }
        }
    }
    set
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpc_graph::{verify::is_maximal, ThresholdGraph};
    use mpc_metric::{datasets, EuclideanSpace};

    #[test]
    fn output_dominates_everything() {
        let metric = EuclideanSpace::new(datasets::uniform_cube(150, 2, 3));
        let tau = 0.25;
        let params = Params::practical(3, 0.1, 3);
        let res = mpc_dominating_set(&metric, tau, &params);
        let g = ThresholdGraph::new(&metric, tau);
        let universe: Vec<u32> = (0..150).collect();
        let set: Vec<u32> = res.set.iter().map(|p| p.0).collect();
        assert!(is_maximal(&g, &set, &universe), "MIS must dominate");
    }

    #[test]
    fn size_is_comparable_to_greedy() {
        // Unit-disk-style graph: neighborhood independence <= 5, so the
        // MIS is a 5-approximation; greedy is ~ln n. Sizes should be in
        // the same ballpark.
        let metric = EuclideanSpace::new(datasets::uniform_cube(120, 2, 7));
        let tau = 0.3;
        let params = Params::practical(3, 0.1, 7);
        let ours = mpc_dominating_set(&metric, tau, &params);
        let greedy = greedy_dominating_set(&metric, tau);
        assert!(
            ours.set.len() <= 6 * greedy.len(),
            "ours {} vs greedy {} — beyond the unit-disk factor",
            ours.set.len(),
            greedy.len()
        );
    }

    #[test]
    fn dense_graph_needs_one_vertex() {
        let metric = EuclideanSpace::new(datasets::uniform_cube(60, 2, 9));
        let params = Params::practical(2, 0.1, 9);
        let res = mpc_dominating_set(&metric, 10.0, &params);
        assert_eq!(res.set.len(), 1);
    }

    #[test]
    fn empty_threshold_takes_all_vertices() {
        let metric = EuclideanSpace::new(datasets::uniform_cube(30, 2, 11));
        let params = Params::practical(2, 0.1, 11);
        let res = mpc_dominating_set(&metric, 0.0, &params);
        assert_eq!(
            res.set.len(),
            30,
            "edgeless graph: every vertex dominates only itself"
        );
    }
}
