//! Algorithm 1 — GMM, the Gonzalez greedy (1985).
//!
//! GMM repeatedly picks the point furthest from those already chosen. It is
//! a sequential 2-approximation for **both** k-center (Gonzalez) and
//! k-diversity (Ravi et al.), and its output satisfies the *anti-cover*
//! properties (§2.2):
//!
//! * every selected point is at distance ≥ r from the other selected
//!   points, and
//! * every input point is at distance ≤ r from the selection,
//!
//! where `r = div(T)` is the minimum pairwise distance of the output `T`.
//! The paper uses GMM twice: machine-locally to build coresets, and as the
//! final sequential step on the coreset union.

use mpc_metric::MetricSpace;

/// Output of [`gmm`].
#[derive(Debug, Clone, PartialEq)]
pub struct GmmOutput {
    /// The selected points, in selection order (first is the seed).
    pub selected: Vec<u32>,
    /// `radii[i]` is the distance of the `i`-th selected point from the
    /// previously selected set (`radii[0] = f64::INFINITY` by convention).
    /// The sequence is non-increasing from index 1 on.
    pub radii: Vec<f64>,
    pub(crate) next_radius: f64,
}

impl GmmOutput {
    /// `div(T)` — the minimum pairwise distance of the selection, which for
    /// GMM equals the last selection radius.
    ///
    /// `f64::INFINITY` when fewer than two points were selected.
    pub fn diversity(&self) -> f64 {
        if self.selected.len() < 2 {
            f64::INFINITY
        } else {
            *self.radii.last().expect("non-empty radii")
        }
    }

    /// `r(S, T)` for the input subset `S` this selection was computed from:
    /// the distance of the furthest unselected point. Available as the
    /// would-be next radius; `0` when the selection exhausted the input.
    pub fn covering_radius(&self) -> f64 {
        self.next_radius
    }
}

/// Runs GMM on the points `subset` of `metric`, selecting `min(k,
/// |subset|)` points. Deterministic: seeds with the first element of
/// `subset` and breaks distance ties by scan order.
///
/// O(|subset| · k) distance evaluations.
///
/// ```
/// use mpc_core::gmm::gmm;
/// use mpc_metric::{EuclideanSpace, PointSet};
///
/// // Points at x = 0, 1, 9 — GMM picks the two extremes for k = 2.
/// let space = EuclideanSpace::new(PointSet::from_rows(&[
///     vec![0.0], vec![1.0], vec![9.0],
/// ]));
/// let out = gmm(&space, &[0, 1, 2], 2);
/// assert_eq!(out.selected, vec![0, 2]);
/// assert_eq!(out.diversity(), 9.0);
/// ```
pub fn gmm<M: MetricSpace + ?Sized>(metric: &M, subset: &[u32], k: usize) -> GmmOutput {
    if subset.is_empty() || k == 0 {
        return GmmOutput {
            selected: Vec::new(),
            radii: Vec::new(),
            next_radius: 0.0,
        };
    }
    let mut selected = Vec::with_capacity(k.min(subset.len()));
    let mut radii = Vec::with_capacity(k.min(subset.len()));
    // dist_to_sel[i] = d(subset[i], selected); chosen marks selected indices
    // so coincident points are never re-picked.
    let mut dist_to_sel = vec![f64::INFINITY; subset.len()];
    let mut chosen = vec![false; subset.len()];

    let mut next = 0usize; // index into subset of the point to add
    let mut next_radius = f64::INFINITY;
    // Scratch for the bulk distance fills: one |subset|-long vector reused
    // across iterations.
    let mut dists = Vec::with_capacity(subset.len());
    while selected.len() < k {
        let v = subset[next];
        selected.push(v);
        radii.push(next_radius);
        chosen[next] = true;
        if selected.len() == subset.len() {
            next_radius = 0.0;
            break;
        }
        // One bulk kernel computes d(v, ·) against the whole subset
        // (`dists_into` is bit-identical to the per-pair `dist` loop, and
        // metric symmetry holds bitwise for every implementation here), then
        // the relaxation tracks the new furthest unselected point. Large
        // inputs run the relaxation across the worker pool; the reduction
        // selects the lexicographic max of (distance, lower index), a total
        // order, so any associative combine of the fixed chunk partials
        // matches the sequential scan exactly (determinism at every thread
        // count).
        metric.dists_into(v.into(), subset, &mut dists);
        const PAR_THRESHOLD: usize = 4096;
        let best = if subset.len() >= PAR_THRESHOLD {
            use rayon::prelude::*;
            dists
                .par_iter()
                .zip(dist_to_sel.par_iter_mut())
                .enumerate()
                .map(|(i, (&dv, slot))| {
                    let d = dv.min(*slot);
                    *slot = d;
                    if chosen[i] {
                        (f64::NEG_INFINITY, usize::MAX)
                    } else {
                        (d, i)
                    }
                })
                .reduce(
                    || (f64::NEG_INFINITY, usize::MAX),
                    |a, b| {
                        if b.0 > a.0 || (b.0 == a.0 && b.1 < a.1) {
                            b
                        } else {
                            a
                        }
                    },
                )
        } else {
            let mut best = (f64::NEG_INFINITY, usize::MAX);
            for (i, &dv) in dists.iter().enumerate() {
                let d = dv.min(dist_to_sel[i]);
                dist_to_sel[i] = d;
                if !chosen[i] && d > best.0 {
                    best = (d, i);
                }
            }
            best
        };
        next_radius = best.0;
        next = best.1;
    }
    GmmOutput {
        selected,
        radii,
        next_radius,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpc_metric::{
        datasets, dist_point_to_set, min_pairwise_distance, EuclideanSpace, PointId, PointSet,
    };

    fn line(xs: &[f64]) -> EuclideanSpace {
        EuclideanSpace::new(PointSet::from_rows(
            &xs.iter().map(|&x| vec![x]).collect::<Vec<_>>(),
        ))
    }

    fn as_ids(v: &[u32]) -> Vec<PointId> {
        v.iter().map(|&x| PointId(x)).collect()
    }

    #[test]
    fn picks_extremes_on_a_line() {
        // Points 0, 1, 2, 10: seed at 0, then furthest is 10, then 2 (wait:
        // distances to {0, 10}: 1 -> 1, 2 -> 2; picks x=2).
        let m = line(&[0.0, 1.0, 2.0, 10.0]);
        let out = gmm(&m, &[0, 1, 2, 3], 3);
        assert_eq!(out.selected, vec![0, 3, 2]);
        assert_eq!(out.radii[1], 10.0);
        assert_eq!(out.radii[2], 2.0);
        assert_eq!(out.diversity(), 2.0);
    }

    #[test]
    fn diversity_equals_min_pairwise_distance() {
        let m = EuclideanSpace::new(datasets::uniform_cube(200, 3, 5));
        let subset: Vec<u32> = (0..200).collect();
        for k in [2, 5, 17] {
            let out = gmm(&m, &subset, k);
            let ids = as_ids(&out.selected);
            let true_div = min_pairwise_distance(&m, &ids);
            assert!(
                (out.diversity() - true_div).abs() < 1e-9,
                "k={k}: reported {} vs true {}",
                out.diversity(),
                true_div
            );
        }
    }

    #[test]
    fn anti_cover_properties_hold() {
        let m = EuclideanSpace::new(datasets::gaussian_clusters(150, 2, 6, 0.05, 9));
        let subset: Vec<u32> = (0..150).collect();
        let out = gmm(&m, &subset, 8);
        let r = out.diversity();
        let ids = as_ids(&out.selected);
        // (1) every selected point is >= r from the rest of the selection
        for (i, &p) in ids.iter().enumerate() {
            let others: Vec<PointId> = ids
                .iter()
                .enumerate()
                .filter(|&(j, _)| j != i)
                .map(|(_, &q)| q)
                .collect();
            assert!(dist_point_to_set(&m, p, &others) >= r - 1e-12);
        }
        // (2) every input point is <= r from the selection
        for p in 0..150u32 {
            assert!(dist_point_to_set(&m, PointId(p), &ids) <= r + 1e-12);
        }
        // covering radius is the max over (2), and it is <= r.
        let max_d = (0..150u32)
            .map(|p| dist_point_to_set(&m, PointId(p), &ids))
            .fold(0.0f64, f64::max);
        assert!((out.covering_radius() - max_d).abs() < 1e-12);
    }

    #[test]
    fn selection_radii_non_increasing() {
        let m = EuclideanSpace::new(datasets::uniform_cube(100, 2, 3));
        let subset: Vec<u32> = (0..100).collect();
        let out = gmm(&m, &subset, 20);
        for w in out.radii[1..].windows(2) {
            assert!(w[0] >= w[1] - 1e-12, "radii must be non-increasing: {w:?}");
        }
    }

    #[test]
    fn k_larger_than_input_returns_everything() {
        let m = line(&[0.0, 5.0, 9.0]);
        let out = gmm(&m, &[0, 1, 2], 10);
        assert_eq!(out.selected.len(), 3);
        assert_eq!(out.covering_radius(), 0.0);
    }

    #[test]
    fn empty_and_zero_k() {
        let m = line(&[0.0]);
        assert!(gmm(&m, &[], 3).selected.is_empty());
        assert!(gmm(&m, &[0], 0).selected.is_empty());
    }

    #[test]
    fn single_point() {
        let m = line(&[0.0, 1.0]);
        let out = gmm(&m, &[1], 1);
        assert_eq!(out.selected, vec![1]);
        assert_eq!(out.diversity(), f64::INFINITY);
    }

    #[test]
    fn works_on_arbitrary_subsets() {
        let m = line(&[0.0, 1.0, 2.0, 3.0, 100.0]);
        // Only odd-indexed points participate.
        let out = gmm(&m, &[1, 3], 2);
        assert_eq!(out.selected, vec![1, 3]);
        assert_eq!(out.diversity(), 2.0);
    }

    #[test]
    fn lemma_16_covering_radius_bounded_by_next_diversity() {
        // Lemma 16: if T = GMM(S) with |T| = k, then r(S, T) <= div_{k+1}(S).
        // div_{k+1} is exactly the next selection radius' upper bound; test
        // against the brute-force optimum on small instances.
        let metric = EuclideanSpace::new(datasets::uniform_cube(16, 2, 13));
        let subset: Vec<u32> = (0..16).collect();
        for k in [2usize, 3, 4] {
            let out = gmm(&metric, &subset, k);
            // Brute-force div_{k+1}(S).
            let mut best = 0.0f64;
            let ids: Vec<PointId> = subset.iter().map(|&v| PointId(v)).collect();
            fn rec(
                metric: &EuclideanSpace,
                ids: &[PointId],
                chosen: &mut Vec<PointId>,
                start: usize,
                k1: usize,
                best: &mut f64,
            ) {
                if chosen.len() == k1 {
                    *best = best.max(min_pairwise_distance(metric, chosen));
                    return;
                }
                for i in start..ids.len() {
                    chosen.push(ids[i]);
                    rec(metric, ids, chosen, i + 1, k1, best);
                    chosen.pop();
                }
            }
            rec(&metric, &ids, &mut Vec::new(), 0, k + 1, &mut best);
            assert!(
                out.covering_radius() <= best + 1e-9,
                "k={k}: r(S, T) = {} > div_(k+1)(S) = {best}",
                out.covering_radius()
            );
        }
    }

    #[test]
    fn duplicate_points_give_zero_diversity() {
        let m = line(&[1.0, 1.0, 1.0]);
        let out = gmm(&m, &[0, 1, 2], 3);
        assert_eq!(out.selected.len(), 3);
        assert_eq!(out.diversity(), 0.0);
    }
}
