//! The grid k-center engine — a second Euclidean evaluation engine for
//! Algorithm 5's τ-ladder that answers each rung with spatial hashing
//! instead of all-pairs threshold kernels.
//!
//! The all-pairs engine ([`crate::kcenter`]) evaluates a rung by running
//! the Algorithm 3/4 machinery, whose dominant cost is the degree
//! approximation: every alive point is scanned against an `n/m`-point
//! sample, `Θ(n²/m)` pairs per round, and the sample itself costs
//! `Θ(n/m)` words of all-to-all traffic per machine. The grid engine
//! replaces both: each machine buckets its local points into a
//! [`GridIndex`] with cell side `τ`, so domination queries touch only the
//! ≤ `3^d` stencil-adjacent cells — near-linear local work in `n` for
//! constant dimension — and the only traffic is candidate centers,
//! `O(mk)` points per round. This is the "fully scalable" regime of the
//! follow-up line (Coy–Czumaj–Mishra; Czumaj–Gao–Ghaffari–Jiang,
//! arXiv:2504.16382): per-machine communication independent of `n`.
//!
//! ## The rung protocol
//!
//! A rung asks for a (k+1)-bounded maximal independent set of the
//! threshold graph `G_τ`. The grid engine computes a **true** bounded MIS
//! (same acceptance semantics and approximation factor as Algorithm 4's,
//! different tie-breaking) by iterating:
//!
//! 1. every machine proposes a greedy independent set of its undominated
//!    local points (id order, tentative τ-ball marking via its grid), at
//!    most `k + 1 − |C|` proposals each;
//! 2. proposals are gathered; the coordinator extends `C` greedily in
//!    global id order, keeping candidates pairwise > τ apart;
//! 3. accepted centers are broadcast; machines mark their τ-balls
//!    dominated via stencil scans.
//!
//! The smallest-id candidate of every round is independent of `C` (its
//! machine checked domination before proposing), so each iteration grows
//! `C` or terminates: ≤ k + 2 iterations, 2 rounds each. Accepted rungs
//! are genuinely maximal — every point is within τ of a center — which is
//! exactly the invariant Algorithm 5's `2(1+ε)` guarantee needs; rejected
//! rungs expose k + 1 points pairwise > τ, the same pigeonhole
//! certificate. Tentative marks from unaccepted proposals are discarded
//! each iteration (an unaccepted candidate is only known to be within τ
//! of a *center*, not its markees), so maximality never leaks.
//!
//! Engine selection is explicit ([`KCenterEngine`]) with an environment
//! override: `KCENTER_ENGINE=allpairs|grid|auto`, where `auto` picks the
//! grid for Euclidean inputs of dimension ≤ [`KCenterEngine::GRID_MAX_DIM`]
//! (the 3^d stencil is the budget) and all-pairs otherwise. The default
//! stays all-pairs so existing digests are unchanged.

use std::sync::OnceLock;
use std::time::Instant;

use mpc_metric::{EuclideanSpace, GridIndex, KernelStats, MetricSpace, PointId};
use mpc_sim::Cluster;

use crate::common::{covering_radius, gmm_coreset, to_point_ids};
use crate::kcenter::KCenterResult;
use crate::ladder::{BoundaryMode, LadderSearch, RungEval};
use crate::params::Params;
use crate::telemetry::{PhaseTimes, Telemetry};

/// Which evaluation engine answers the k-center ladder's rungs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum KCenterEngine {
    /// Algorithm 3/4 threshold-graph machinery over all candidate pairs —
    /// works in any metric space.
    #[default]
    AllPairs,
    /// τ-scaled spatial hashing ([`GridIndex`]) — Euclidean only, work
    /// per rung near-linear in `n` for constant dimension.
    Grid,
}

impl KCenterEngine {
    /// Largest dimension the grid engine auto-selects for (and the cap
    /// [`mpc_kcenter_euclidean`] enforces even when forced): the stencil
    /// visits 3^d cells per query, which at d = 8 is 6 561 — past that the
    /// stencil itself rivals an all-pairs scan on realistic candidate
    /// counts.
    pub const GRID_MAX_DIM: usize = 8;

    /// Parses a `KCENTER_ENGINE` value. Unrecognized strings yield `None`.
    pub fn parse(s: &str) -> Option<KCenterEngine> {
        match s.trim() {
            "allpairs" | "all-pairs" => Some(KCenterEngine::AllPairs),
            "grid" => Some(KCenterEngine::Grid),
            _ => None,
        }
    }

    /// The engine for a `dim`-dimensional Euclidean input: the
    /// `KCENTER_ENGINE` choice if set and valid (`auto` selects by
    /// dimension), else all-pairs. The env var is read once and cached,
    /// mirroring `KCENTER_SPEED`. Any selection is clamped to all-pairs
    /// above [`KCenterEngine::GRID_MAX_DIM`].
    pub fn from_env(dim: usize) -> KCenterEngine {
        #[derive(Clone, Copy)]
        enum EnvChoice {
            Fixed(KCenterEngine),
            Auto,
        }
        static CHOICE: OnceLock<EnvChoice> = OnceLock::new();
        let choice = *CHOICE.get_or_init(|| {
            match std::env::var("KCENTER_ENGINE")
                .ok()
                .as_deref()
                .map(str::trim)
            {
                Some("auto") => EnvChoice::Auto,
                Some(s) => EnvChoice::Fixed(KCenterEngine::parse(s).unwrap_or_default()),
                None => EnvChoice::Fixed(KCenterEngine::AllPairs),
            }
        });
        let picked = match choice {
            EnvChoice::Fixed(e) => e,
            EnvChoice::Auto => KCenterEngine::Grid,
        };
        if dim > Self::GRID_MAX_DIM {
            KCenterEngine::AllPairs
        } else {
            picked
        }
    }

    /// The `KCENTER_ENGINE` spelling of this engine.
    pub fn name(self) -> &'static str {
        match self {
            KCenterEngine::AllPairs => "allpairs",
            KCenterEngine::Grid => "grid",
        }
    }
}

/// Per-machine state of one rung's grid protocol: the local τ-grid, the
/// authoritative domination flags (within τ of an accepted center), and
/// the per-iteration tentative marks (within τ of this iteration's own
/// proposals), all indexed by grid slot.
struct MachineGrid {
    members: Vec<u32>,
    grid: GridIndex,
    dominated: Vec<bool>,
    tentative: Vec<u32>,
    /// Input positions before this are authoritatively dominated — the
    /// resume point for the proposal scan.
    start: usize,
}

impl MachineGrid {
    fn build(space: &EuclideanSpace, members: &[u32], tau: f64) -> Self {
        let grid = GridIndex::build(space.points(), members, tau);
        let n = members.len();
        Self {
            members: members.to_vec(),
            grid,
            dominated: vec![false; n],
            tentative: vec![0; n],
            start: 0,
        }
    }

    /// Ledger words for the grid plus the two per-point flag arrays.
    fn memory_words(&self) -> u64 {
        self.grid.memory_words() + (5 * self.members.len() as u64).div_ceil(8)
    }

    /// Greedy independent proposals among undominated local points, at
    /// most `need`, folding stencil tallies into `stats`.
    fn propose(
        &mut self,
        space: &EuclideanSpace,
        tau: f64,
        need: usize,
        epoch: u32,
        stats: &mut KernelStats,
    ) -> Vec<u32> {
        let mut out = Vec::new();
        if need == 0 {
            return out;
        }
        while self.start < self.members.len() && self.dominated[self.grid.slot_of(self.start)] {
            self.start += 1;
        }
        let Self {
            members,
            grid,
            dominated,
            tentative,
            ..
        } = self;
        for (i, &id) in members.iter().enumerate().skip(self.start) {
            let slot = grid.slot_of(i);
            if dominated[slot] || tentative[slot] == epoch {
                continue;
            }
            out.push(id);
            let mut pairs = 0u64;
            let scan = grid.stencil(space.points().coords(PointId(id)), |s2, id2| {
                pairs += 1;
                if space.dist(PointId(id), PointId(id2)) <= tau {
                    tentative[s2] = epoch;
                }
            });
            stats.grid_stencil_cells += scan.cells as u64;
            stats.grid_pairs += pairs;
            if out.len() == need {
                break;
            }
        }
        out
    }

    /// Marks the τ-balls of newly accepted centers as dominated.
    fn mark(&mut self, space: &EuclideanSpace, tau: f64, centers: &[u32], stats: &mut KernelStats) {
        let Self {
            grid, dominated, ..
        } = self;
        for &c in centers {
            let mut pairs = 0u64;
            let scan = grid.stencil(space.points().coords(PointId(c)), |s2, id2| {
                if !dominated[s2] {
                    pairs += 1;
                    if space.dist(PointId(c), PointId(id2)) <= tau {
                        dominated[s2] = true;
                    }
                }
            });
            stats.grid_stencil_cells += scan.cells as u64;
            stats.grid_pairs += pairs;
        }
    }
}

/// One rung of the grid engine: a true (≤ `bound`)-bounded maximal
/// independent set of `G_τ` over `local_sets`, by the iterated
/// propose/extend/mark protocol described in the module docs. Returns the
/// set sorted ascending; `|set| = bound` means the rung's independence
/// certificate fired (the set may then not be maximal, exactly like
/// Algorithm 4's truncated returns).
pub fn grid_k_bounded_mis(
    cluster: &mut Cluster,
    space: &EuclideanSpace,
    local_sets: &[Vec<u32>],
    tau: f64,
    bound: usize,
    stats: &mut KernelStats,
) -> Vec<u32> {
    assert!(bound >= 1);
    let point_words = space.point_weight() + 1; // coords + id

    // Machine-local grid builds (no communication; memory is noted).
    let mut machines: Vec<MachineGrid> = cluster.map(local_sets, |_, members| {
        MachineGrid::build(space, members, tau)
    });
    let grid_words: Vec<u64> = machines.iter().map(|m| m.memory_words()).collect();
    cluster.note_memory_all(&grid_words);
    for m in &machines {
        stats.grid_cells += m.grid.n_cells() as u64;
    }

    let mut centers: Vec<u32> = Vec::new();
    let mut epoch = 0u32;
    loop {
        epoch += 1;
        let need = bound - centers.len();
        let mut proposal_stats: Vec<KernelStats> = Vec::new();
        let proposals: Vec<Vec<u32>> = {
            let outs = cluster.map_mut(&mut machines, |_, st| {
                let mut s = KernelStats::default();
                let out = st.propose(space, tau, need, epoch, &mut s);
                (out, s)
            });
            outs.into_iter()
                .map(|(out, s)| {
                    proposal_stats.push(s);
                    out
                })
                .collect()
        };
        for s in &proposal_stats {
            stats.merge(s);
        }
        let mut cands = cluster.gather("grid/propose", proposals, point_words);
        if cands.is_empty() {
            // Termination signal: one word to every machine.
            cluster.broadcast("grid/stop", 1, 1);
            break;
        }
        // Coordinator: extend greedily in global id order; candidates are
        // already > τ from `centers` (their machines checked domination),
        // so only pairwise checks among this round's acceptances remain.
        cands.sort_unstable();
        let mut fresh: Vec<u32> = Vec::new();
        for c in cands {
            let independent = fresh
                .iter()
                .all(|&z| space.dist(PointId(c), PointId(z)) > tau);
            stats.grid_pairs += fresh.len() as u64;
            if independent {
                fresh.push(c);
                if centers.len() + fresh.len() == bound {
                    break;
                }
            }
        }
        centers.extend(&fresh);
        cluster.broadcast("grid/centers", fresh.len(), point_words);
        if centers.len() == bound {
            break;
        }
        let mark_stats: Vec<KernelStats> = cluster.map_mut(&mut machines, |_, st| {
            let mut s = KernelStats::default();
            st.mark(space, tau, &fresh, &mut s);
            s
        });
        for s in &mark_stats {
            stats.merge(s);
        }
    }
    centers.sort_unstable();
    centers
}

/// The k-center ladder rungs evaluated by the grid engine (mirrors
/// `KCenterRungs` of the all-pairs engine).
struct GridRungs<'a> {
    space: &'a EuclideanSpace,
    local_sets: &'a [Vec<u32>],
    r: f64,
    k: usize,
    params: &'a Params,
    stats: KernelStats,
}

impl GridRungs<'_> {
    fn tau(&self, i: usize) -> f64 {
        self.r / (1.0 + self.params.epsilon).powi(i as i32)
    }
}

impl RungEval for GridRungs<'_> {
    type Rung = Vec<u32>;

    fn eval(&mut self, cluster: &mut Cluster, i: usize) -> Vec<u32> {
        grid_k_bounded_mis(
            cluster,
            self.space,
            self.local_sets,
            self.tau(i),
            self.k + 1,
            &mut self.stats,
        )
    }

    fn accept(&self, _i: usize, rung: &Vec<u32>) -> bool {
        rung.len() <= self.k
    }
}

/// Algorithm 5 with the grid engine answering every rung: the same coarse
/// GMM seeding, ladder schedule, and acceptance semantics as
/// [`crate::kcenter::mpc_kcenter`], with rungs evaluated by
/// [`grid_k_bounded_mis`] — same `2(1+ε)` guarantee, different (still
/// deterministic) tie-breaking, per-machine traffic `O(mk)` instead of
/// `Θ(n/m)`.
pub fn mpc_kcenter_grid(space: &EuclideanSpace, k: usize, params: &Params) -> KCenterResult {
    let mut cluster = match params.budget_words {
        Some(b) => Cluster::with_budget(params.m, params.seed, b),
        None => Cluster::new(params.m, params.seed),
    };
    mpc_kcenter_grid_on(&mut cluster, space, k, params)
}

/// Like [`mpc_kcenter_grid`] on a caller-provided cluster.
pub fn mpc_kcenter_grid_on(
    cluster: &mut Cluster,
    space: &EuclideanSpace,
    k: usize,
    params: &Params,
) -> KCenterResult {
    assert!(k >= 1, "k must be positive");
    params.validate();
    assert_eq!(cluster.m(), params.m, "cluster size must match params.m");
    let n = space.n();
    let partition = params.partition.build(n, params.m, params.seed);
    let local_sets = partition.all_items().to_vec();
    let input_words: Vec<u64> = local_sets
        .iter()
        .map(|s| s.len() as u64 * space.point_weight())
        .collect();
    cluster.note_memory_all(&input_words);
    cluster.ship_shards("setup/shards", &local_sets, space.point_weight());

    let coarse_started = Instant::now();
    let (q, _) = gmm_coreset(cluster, &space, &local_sets, k);
    let r = covering_radius(cluster, space, &local_sets, &q);
    let coarse_s = coarse_started.elapsed().as_secs_f64();

    if q.len() < k || r <= 0.0 {
        let mut telemetry = Telemetry::from_ledger(cluster.ledger());
        telemetry.phases.coarse_s = coarse_s;
        telemetry.kernels = space.kernel_stats();
        telemetry.wire = cluster.wire_summary();
        return KCenterResult {
            centers: to_point_ids(&q),
            radius: r.max(0.0),
            coarse_r: r.max(0.0),
            boundary_index: 0,
            telemetry,
        };
    }

    let ladder_started = Instant::now();
    let t = params.ladder_len(4.0, 1);
    let mut rungs = GridRungs {
        space,
        local_sets: &local_sets,
        r,
        k,
        params,
        stats: KernelStats::default(),
    };
    let mut search = LadderSearch::new(t);
    search.seed(0, q.clone());
    let boundary = search.search(
        cluster,
        &mut rungs,
        BoundaryMode::LastAccept,
        params.boundary_search,
    );
    let ladder_s = ladder_started.elapsed().as_secs_f64();

    let finalize_started = Instant::now();
    let centers_raw = search.take(boundary).expect("boundary was evaluated");
    debug_assert!(centers_raw.len() <= k);
    let radius = covering_radius(cluster, space, &local_sets, &centers_raw);
    let mut telemetry = Telemetry::from_ledger(cluster.ledger());
    telemetry.phases = PhaseTimes {
        coarse_s,
        ladder_s,
        finalize_s: finalize_started.elapsed().as_secs_f64(),
    };
    telemetry.ladder_evals = search.evals() as u64;
    telemetry.ladder_probes = search.probes() as u64;
    let mut kernels = space.kernel_stats().unwrap_or_default();
    kernels.merge(&rungs.stats);
    telemetry.kernels = Some(kernels);
    telemetry.wire = cluster.wire_summary();
    KCenterResult {
        centers: to_point_ids(&centers_raw),
        radius,
        coarse_r: r,
        boundary_index: boundary,
        telemetry,
    }
}

/// Engine-dispatched MPC k-center for Euclidean inputs: routes to the
/// grid or all-pairs engine per [`KCenterEngine::from_env`] (explicit
/// callers pick an engine with [`mpc_kcenter_grid`] /
/// [`crate::kcenter::mpc_kcenter`] directly).
pub fn mpc_kcenter_euclidean(space: &EuclideanSpace, k: usize, params: &Params) -> KCenterResult {
    match KCenterEngine::from_env(space.points().dim()) {
        KCenterEngine::Grid => mpc_kcenter_grid(space, k, params),
        KCenterEngine::AllPairs => crate::kcenter::mpc_kcenter(space, k, params),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kcenter::{mpc_kcenter, sequential_gmm_kcenter};
    use mpc_metric::{datasets, dist_point_to_set, PointSet};

    fn realized_radius(space: &EuclideanSpace, centers: &[PointId]) -> f64 {
        (0..space.n() as u32)
            .map(|v| dist_point_to_set(space, PointId(v), centers))
            .fold(0.0f64, f64::max)
    }

    #[test]
    fn grid_mis_is_maximal_and_independent() {
        let space = EuclideanSpace::new(datasets::uniform_cube(400, 3, 5));
        let members: Vec<u32> = (0..400u32).collect();
        let local_sets: Vec<Vec<u32>> = (0..4)
            .map(|m| members.iter().copied().filter(|id| id % 4 == m).collect())
            .collect();
        let tau = 0.4;
        let mut cluster = Cluster::new(4, 5);
        let mut stats = KernelStats::default();
        let set = grid_k_bounded_mis(&mut cluster, &space, &local_sets, tau, 400, &mut stats);
        // Independent: pairwise > τ.
        for (a, &i) in set.iter().enumerate() {
            for &j in &set[a + 1..] {
                assert!(space.dist(PointId(i), PointId(j)) > tau);
            }
        }
        // Maximal: every point within τ of the set.
        let ids: Vec<PointId> = set.iter().map(|&i| PointId(i)).collect();
        for v in 0..400u32 {
            assert!(dist_point_to_set(&space, PointId(v), &ids) <= tau);
        }
        assert!(stats.grid_pairs > 0 && stats.grid_cells > 0);
    }

    #[test]
    fn grid_mis_truncates_at_bound() {
        let space = EuclideanSpace::new(datasets::uniform_cube(200, 2, 9));
        let local_sets: Vec<Vec<u32>> = vec![(0..200u32).collect()];
        let mut cluster = Cluster::new(1, 9);
        let mut stats = KernelStats::default();
        let set = grid_k_bounded_mis(&mut cluster, &space, &local_sets, 1e-6, 5, &mut stats);
        assert_eq!(set.len(), 5, "tiny τ forces the independence certificate");
    }

    #[test]
    fn grid_engine_matches_allpairs_guarantee() {
        for (n, dim, k, seed) in [(500usize, 2usize, 5usize, 3u64), (400, 3, 7, 11)] {
            let space = EuclideanSpace::new(datasets::gaussian_clusters(n, dim, k, 0.03, seed));
            let params = Params::practical(4, 0.1, seed);
            let grid = mpc_kcenter_grid(&space, k, &params);
            let seq = sequential_gmm_kcenter(&space, k);
            assert!(grid.centers.len() <= k);
            assert!(
                grid.radius <= 2.0 * (1.0 + params.epsilon) * seq.radius + 1e-9,
                "grid radius {} vs sequential {}",
                grid.radius,
                seq.radius
            );
            let all = mpc_kcenter(&space, k, &params);
            // Both engines carry the same 2(1+ε) guarantee against r*, and
            // each radius is itself ≥ r*, so either is within 2(1+ε) of
            // the other.
            assert!(
                grid.radius <= 2.0 * (1.0 + params.epsilon) * all.radius + 1e-9,
                "grid {} vs allpairs {}",
                grid.radius,
                all.radius
            );
            let true_r = realized_radius(&space, &grid.centers);
            assert!((grid.radius - true_r).abs() < 1e-9);
        }
    }

    #[test]
    fn duplicates_collapse_to_zero_radius() {
        let rows: Vec<Vec<f64>> = (0..30).map(|i| vec![(i % 3) as f64, 0.0]).collect();
        let space = EuclideanSpace::new(PointSet::from_rows(&rows));
        let res = mpc_kcenter_grid(&space, 3, &Params::practical(2, 0.1, 1));
        assert!(res.radius <= 1e-12);
    }

    #[test]
    fn engine_env_parsing_and_clamp() {
        assert_eq!(KCenterEngine::parse("grid"), Some(KCenterEngine::Grid));
        assert_eq!(
            KCenterEngine::parse("allpairs"),
            Some(KCenterEngine::AllPairs)
        );
        assert_eq!(KCenterEngine::parse("quantum"), None);
        assert_eq!(KCenterEngine::default(), KCenterEngine::AllPairs);
        assert_eq!(KCenterEngine::Grid.name(), "grid");
    }
}
