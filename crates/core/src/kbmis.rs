//! Algorithm 4 — massively parallel k-bounded MIS in a threshold graph.
//!
//! Each outer round:
//!
//! 1. approximate all alive degrees (Algorithm 3, [`crate::degree`]); if
//!    that already yields an independent set completing `k`, stop;
//! 2. every machine draws `m` weighted samples (vertex `v` with probability
//!    `1/(2 p_v)`);
//! 3. **pruning** (Theorem 14): if the expected sample mass exceeds
//!    `10 k ln n`, the samples are dense enough that trimming them yields a
//!    size-`k` independent set directly — machines trim locally, exchange,
//!    trim again, and the largest `T_j` wins;
//! 4. otherwise all samples go to the central machine, which runs `m`
//!    compressed iterations of the local Luby variant `trim` (Lemma 10),
//!    greedily growing the MIS and deleting closed neighborhoods from its
//!    local copy;
//! 5. the newly added vertices are broadcast and every machine removes
//!    their closed neighborhood from its alive set.
//!
//! Edges shrink by a `Θ(√m)` factor per outer round w.h.p. (Theorem 13),
//! giving `O(1/γ)` rounds at `m = n^γ`.
//!
//! Deviations from the paper (DESIGN.md §2/§4): `trim` tie-breaking is
//! configurable (D1); when a w.h.p. shortcut under-delivers we fall through
//! instead of failing (unconditional validity); and a *forced-progress*
//! rule (add the globally smallest alive vertex when a round's samples were
//! all empty) guarantees termination even under adversarial sampling luck.

use std::collections::HashSet;

use mpc_graph::{mis::trim, GraphView, ThresholdGraph};
use mpc_metric::MetricSpace;
use mpc_sim::Cluster;
use rand::RngExt;

use crate::degree::{approximate_degrees, DegreeOutcome};
use crate::params::Params;

/// How a [`k_bounded_mis`] run terminated.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MisOutcome {
    /// The alive set emptied: the result is a *maximal* independent set of
    /// size ≤ k.
    ExhaustedGraph,
    /// The MIS reached size `k` through the normal central path.
    ReachedK,
    /// Algorithm 3 extracted a size-`k` independent set from light vertices
    /// (line 4 of Algorithm 4).
    DegreeShortcut,
    /// The pruning step produced a size-`k` independent set (line 8).
    PruningShortcut,
}

/// Per-outer-round diagnostics (experiment E7). Collected outside the MPC
/// accounting — a measurement probe, not part of the algorithm.
#[derive(Debug, Clone, Copy)]
pub struct RoundTrace {
    /// Alive vertices at the start of the round.
    pub alive: u64,
    /// Edges among alive vertices at the start of the round (only computed
    /// when tracing was requested; expensive).
    pub edges: u64,
}

/// Result of [`k_bounded_mis`].
#[derive(Debug, Clone)]
pub struct KBoundedMis {
    /// The k-bounded MIS: independent, and either of size exactly `k` or
    /// maximal within the input vertices.
    pub set: Vec<u32>,
    /// True iff the set is maximal (every input vertex is in it or adjacent
    /// to it).
    pub maximal: bool,
    /// Termination cause.
    pub outcome: MisOutcome,
    /// Number of outer while-loop iterations.
    pub outer_rounds: u64,
    /// Times the forced-progress rule fired (0 in healthy executions).
    pub forced_progress: u64,
    /// Per-round alive/edge counts when `trace` was requested.
    pub trace: Vec<RoundTrace>,
}

const SALT_WEIGHTED_SAMPLES: u64 = 0x20;

/// Membership probability for a vertex with degree estimate `p_v`
/// (`min(1, 1/(2 p_v))`; isolated vertices are always sampled).
#[inline]
fn sample_prob(p_v: f64) -> f64 {
    if p_v <= 0.5 {
        1.0
    } else {
        1.0 / (2.0 * p_v)
    }
}

/// Runs Algorithm 4 on the subgraph of `G_tau` induced by `initial_alive`
/// (one vertex list per machine), looking for a k-bounded MIS.
///
/// `n_total` is the original input size (fixes `ln n`); `trace` enables the
/// E7 edge-decay probe.
#[allow(clippy::too_many_arguments)] // mirrors Algorithm 4's parameter list
pub fn k_bounded_mis<M: MetricSpace + ?Sized>(
    cluster: &mut Cluster,
    metric: &M,
    initial_alive: &[Vec<u32>],
    tau: f64,
    k: usize,
    n_total: usize,
    params: &Params,
    trace: bool,
) -> KBoundedMis {
    assert!(k >= 1, "k must be positive");
    assert_eq!(
        initial_alive.len(),
        cluster.m(),
        "one vertex list per machine"
    );
    let graph = ThresholdGraph::new(metric, tau);
    let m = cluster.m();
    let ln_n = (n_total.max(2) as f64).ln();
    let w = metric.point_weight();

    let mut alive: Vec<Vec<u32>> = initial_alive.to_vec();
    let mut mis: Vec<u32> = Vec::new();
    let mut outer_rounds = 0u64;
    let mut forced_progress = 0u64;
    let mut traces = Vec::new();

    loop {
        // Line 2's loop conditions. |MIS| ≥ k takes precedence: a k-subset
        // of an independent set is a valid k-bounded MIS (line 20), whereas
        // an over-sized "maximal" return would not be.
        if mis.len() >= k {
            mis.truncate(k);
            return KBoundedMis {
                set: mis,
                maximal: false,
                outcome: MisOutcome::ReachedK,
                outer_rounds,
                forced_progress,
                trace: traces,
            };
        }
        let sizes: Vec<u64> = alive.iter().map(|a| a.len() as u64).collect();
        let total_alive = cluster.all_reduce("mis/alive-count", sizes, 1, |a, b| a + b);
        if total_alive == 0 {
            return KBoundedMis {
                set: mis,
                maximal: true,
                outcome: MisOutcome::ExhaustedGraph,
                outer_rounds,
                forced_progress,
                trace: traces,
            };
        }
        // Memory accounting: each machine holds its alive share.
        let residency: Vec<u64> = alive.iter().map(|a| a.len() as u64 * w).collect();
        cluster.note_memory_all(&residency);
        outer_rounds += 1;
        if trace {
            traces.push(probe_alive_graph(&graph, &alive, total_alive));
        }
        let k_rem = k - mis.len();

        // Line 3–4: degree approximation, possibly short-circuiting.
        let p = match approximate_degrees(cluster, metric, &alive, tau, k_rem, n_total, params) {
            DegreeOutcome::IndependentSet(is) => {
                debug_assert_eq!(is.len(), k_rem);
                mis.extend(is);
                return KBoundedMis {
                    set: mis,
                    maximal: false,
                    outcome: MisOutcome::DegreeShortcut,
                    outer_rounds,
                    forced_progress,
                    trace: traces,
                };
            }
            DegreeOutcome::Estimates { p, .. } => p,
        };

        // Line 5: every machine draws m independent weighted samples.
        let samples: Vec<Vec<Vec<u32>>> = cluster.map(&alive, |i, vi| {
            let mut rng = cluster.rng(i, SALT_WEIGHTED_SAMPLES);
            (0..m)
                .map(|_| {
                    vi.iter()
                        .copied()
                        .filter(|&v| rng.random_range(0.0..1.0) < sample_prob(p[v as usize]))
                        .collect()
                })
                .collect()
        });

        // Line 6: pruning trigger on the expected sample mass.
        let mass: Vec<f64> = alive
            .iter()
            .map(|vi| vi.iter().map(|&v| sample_prob(p[v as usize])).sum())
            .collect();
        let expected_mass = cluster.all_reduce("mis/sample-mass", mass, 1, |a, b| a + b);
        let prune =
            params.enable_pruning && expected_mass > params.pruning_factor * (k_rem as f64) * ln_n;

        if prune {
            if let Some(found) = pruning_step(cluster, &graph, &samples, &p, k_rem, params, w) {
                mis.extend(found);
                mis.truncate(k);
                return KBoundedMis {
                    set: mis,
                    maximal: false,
                    outcome: MisOutcome::PruningShortcut,
                    outer_rounds,
                    forced_progress,
                    trace: traces,
                };
            }
            // w.h.p. shortfall under practical constants: fall through to
            // the central path (its traffic is recorded either way).
        }

        // Line 10: all samples go to the central machine, tagged by sample
        // index j.
        let tagged: Vec<Vec<(u32, u32)>> = samples
            .iter()
            .map(|per_j| {
                per_j
                    .iter()
                    .enumerate()
                    .flat_map(|(j, s)| s.iter().map(move |&v| (j as u32, v)))
                    .collect()
            })
            .collect();
        // Sampled points travel with their p_v value (one extra word),
        // since degree estimates live only at their owners.
        let received = cluster.gather("mis/samples", tagged, w + 1);

        // Lines 11–16: m compressed trim iterations on the central machine
        // (all local compute). The central machine's copy of G is exactly
        // the set of sampled vertices; removals apply to that copy.
        let mut by_j: Vec<Vec<u32>> = vec![Vec::new(); m];
        for (j, v) in received {
            by_j[j as usize].push(v);
        }
        let mut selected: HashSet<u32> = HashSet::new();
        let mut delta: Vec<u32> = Vec::new();
        for s_j in by_j {
            if mis.len() + delta.len() >= k {
                break;
            }
            // Remove M_1..M_{j-1} and their neighborhoods from the central
            // copy: a sampled vertex is dead if already selected or
            // adjacent to any selected vertex.
            let s_j: Vec<u32> = s_j
                .into_iter()
                .filter(|&v| !selected.contains(&v) && delta.iter().all(|&d| !graph.is_edge(v, d)))
                .collect();
            if s_j.is_empty() {
                continue;
            }
            let m_j = trim(&graph, &s_j, &p, params.tie_break);
            selected.extend(&m_j);
            delta.extend(&m_j);
        }

        // Forced progress: if every sample was empty, adopt the smallest
        // alive vertex (it is independent of the MIS by construction).
        if delta.is_empty() {
            let minima: Vec<u32> = alive
                .iter()
                .map(|vi| vi.iter().copied().min().unwrap_or(u32::MAX))
                .collect();
            let global_min = cluster.reduce("mis/forced", minima, 1, u32::min);
            debug_assert_ne!(global_min, u32::MAX, "total_alive > 0 guarantees a vertex");
            delta.push(global_min);
            forced_progress += 1;
        }

        // Lines 17–18: broadcast the additions; machines delete closed
        // neighborhoods locally. One multi-query kernel per machine scans
        // the whole alive share against Δ (degrees of Δ-members are
        // computed too, but Δ is tiny and they are dropped by the
        // membership test regardless).
        cluster.broadcast("mis/delta", delta.len(), w);
        let new_alive: Vec<Vec<u32>> = cluster.map(&alive, |_, vi| {
            let degs = graph.degrees_among(vi, &delta);
            vi.iter()
                .zip(degs)
                .filter(|&(v, d)| d == 0 && !delta.contains(v))
                .map(|(&v, _)| v)
                .collect()
        });
        alive = new_alive;
        mis.extend(delta);
    }
}

/// Lines 7–8 of Algorithm 4 (Theorem 14): double-trim the dense samples
/// and return a `k_rem`-subset of the largest resulting independent set,
/// or `None` if even the best `T_j` came up short.
fn pruning_step<M: MetricSpace + ?Sized>(
    cluster: &mut Cluster,
    graph: &ThresholdGraph<&M>,
    samples: &[Vec<Vec<u32>>],
    p: &[f64],
    k_rem: usize,
    params: &Params,
    weight: u64,
) -> Option<Vec<u32>> {
    // Local trims; a local trim already of size >= k_rem is itself an
    // independent set and can answer immediately (note in Theorem 14).
    let local_trims: Vec<Vec<Vec<u32>>> = cluster.map(samples, |_, per_j| {
        per_j
            .iter()
            .map(|s| trim(graph, s, p, params.tie_break))
            .collect()
    });
    for trims in &local_trims {
        for t in trims {
            if t.len() >= k_rem {
                let subset: Vec<u32> = t[..k_rem].to_vec();
                // The winning machine ships the subset to the central
                // machine for the final answer.
                cluster.broadcast("mis/prune-local-hit", subset.len(), weight);
                return Some(subset);
            }
        }
    }
    // Exchange: machine j collects every machine's trim of sample j, then
    // trims the union.
    // Trimmed vertices carry their p_v value (one extra word).
    let inbox = cluster.exchange("mis/prune-exchange", local_trims, weight + 1);
    let t_j: Vec<Vec<u32>> = cluster.map(&inbox, |_, parts| {
        let union: Vec<u32> = parts.iter().flatten().copied().collect();
        trim(graph, &union, p, params.tie_break)
    });
    let sizes: Vec<u64> = t_j.iter().map(|t| t.len() as u64).collect();
    let best = cluster.all_reduce("mis/prune-best", sizes.clone(), 1, u64::max);
    if best as usize >= k_rem {
        let winner = sizes.iter().position(|&s| s == best).expect("max exists");
        let subset: Vec<u32> = t_j[winner][..k_rem].to_vec();
        cluster.broadcast("mis/prune-result", subset.len(), weight);
        return Some(subset);
    }
    None
}

/// E7 probe: alive vertex and edge counts, computed directly (outside MPC
/// accounting; O(alive²) distances).
fn probe_alive_graph<M: MetricSpace + ?Sized>(
    graph: &ThresholdGraph<&M>,
    alive: &[Vec<u32>],
    total_alive: u64,
) -> RoundTrace {
    use rayon::prelude::*;
    let all: Vec<u32> = alive.iter().flatten().copied().collect();
    let edges: u64 = all
        .par_iter()
        .enumerate()
        .map(|(i, &u)| graph.degree_among(u, &all[i + 1..]) as u64)
        .sum();
    RoundTrace {
        alive: total_alive,
        edges,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpc_graph::verify::{is_independent, is_k_bounded_mis};
    use mpc_metric::{datasets, EuclideanSpace};
    use mpc_sim::Partition;

    fn run(
        n: usize,
        m: usize,
        tau: f64,
        k: usize,
        seed: u64,
    ) -> (EuclideanSpace, Vec<u32>, KBoundedMis) {
        let metric = EuclideanSpace::new(datasets::uniform_cube(n, 2, seed));
        let mut cluster = Cluster::new(m, seed);
        let params = Params::practical(m, 0.1, seed);
        let alive = Partition::round_robin(n, m).all_items().to_vec();
        let result = k_bounded_mis(&mut cluster, &metric, &alive, tau, k, n, &params, false);
        let universe: Vec<u32> = (0..n as u32).collect();
        (metric, universe, result)
    }

    #[test]
    fn output_is_always_a_k_bounded_mis() {
        for (n, m, tau, k, seed) in [
            (100, 4, 0.2, 5, 1u64),
            (100, 4, 0.05, 5, 2),
            (250, 5, 0.1, 10, 3),
            (60, 2, 0.5, 3, 4),
            (60, 2, 0.9, 8, 5),
            (40, 8, 0.01, 30, 6),
            (100, 4, 0.2, 5, 7), // re-run of config 1 under another seed
            (100, 4, 0.2, 5, 8),
            (500, 10, 0.05, 20, 9), // many machines, mid density
            (500, 2, 0.4, 3, 10),   // few machines, dense
            (64, 64, 0.1, 5, 11),   // machines = points
        ] {
            let (metric, universe, res) = run(n, m, tau, k, seed);
            let g = ThresholdGraph::new(&metric, tau);
            assert!(
                is_k_bounded_mis(&g, &res.set, &universe, k),
                "n={n} m={m} tau={tau} k={k} seed={seed}: {:?} (outcome {:?})",
                res.set,
                res.outcome
            );
        }
    }

    #[test]
    fn sparse_graph_reaches_k() {
        // tau tiny: nearly edgeless graph, k points must be found.
        let (metric, _, res) = run(300, 4, 1e-4, 12, 7);
        assert_eq!(res.set.len(), 12);
        let g = ThresholdGraph::new(&metric, 1e-4);
        assert!(is_independent(&g, &res.set));
    }

    #[test]
    fn dense_graph_returns_small_maximal_set() {
        // tau huge: complete graph, the only MIS is a single vertex.
        let (metric, universe, res) = run(100, 4, 10.0, 5, 8);
        assert_eq!(res.set.len(), 1);
        assert!(res.maximal);
        assert_eq!(res.outcome, MisOutcome::ExhaustedGraph);
        let g = ThresholdGraph::new(&metric, 10.0);
        assert!(is_k_bounded_mis(&g, &res.set, &universe, 5));
    }

    #[test]
    fn maximal_flag_matches_outcome() {
        for seed in 0..6 {
            let (_, _, res) = run(120, 3, 0.15, 6, 100 + seed);
            match res.outcome {
                MisOutcome::ExhaustedGraph => assert!(res.maximal),
                _ => {
                    assert!(!res.maximal);
                    assert_eq!(res.set.len(), 6);
                }
            }
        }
    }

    #[test]
    fn pruning_disabled_still_correct() {
        let n = 200;
        let metric = EuclideanSpace::new(datasets::uniform_cube(n, 2, 31));
        let mut params = Params::practical(4, 0.1, 31);
        params.enable_pruning = false;
        let mut cluster = Cluster::new(4, 31);
        let alive = Partition::round_robin(n, 4).all_items().to_vec();
        let res = k_bounded_mis(&mut cluster, &metric, &alive, 0.08, 8, n, &params, false);
        let g = ThresholdGraph::new(&metric, 0.08);
        let universe: Vec<u32> = (0..n as u32).collect();
        assert!(is_k_bounded_mis(&g, &res.set, &universe, 8));
    }

    #[test]
    fn strict_tie_break_still_terminates() {
        let n = 150;
        let metric = EuclideanSpace::new(datasets::uniform_cube(n, 2, 37));
        let mut params = Params::practical(3, 0.1, 37);
        params.tie_break = mpc_graph::mis::TieBreak::Strict;
        let mut cluster = Cluster::new(3, 37);
        let alive = Partition::round_robin(n, 3).all_items().to_vec();
        let res = k_bounded_mis(&mut cluster, &metric, &alive, 0.1, 6, n, &params, false);
        let g = ThresholdGraph::new(&metric, 0.1);
        let universe: Vec<u32> = (0..n as u32).collect();
        assert!(is_k_bounded_mis(&g, &res.set, &universe, 6));
    }

    #[test]
    fn trace_records_decreasing_alive_counts() {
        let n = 400;
        let metric = EuclideanSpace::new(datasets::uniform_cube(n, 2, 41));
        let params = Params::practical(4, 0.1, 41);
        let mut cluster = Cluster::new(4, 41);
        let alive = Partition::round_robin(n, 4).all_items().to_vec();
        let res = k_bounded_mis(&mut cluster, &metric, &alive, 0.3, 400, n, &params, true);
        assert!(!res.trace.is_empty());
        assert_eq!(res.trace[0].alive, 400);
        for w in res.trace.windows(2) {
            assert!(w[1].alive < w[0].alive, "alive must strictly decrease");
        }
    }

    #[test]
    fn consumed_rounds_are_recorded() {
        let n = 150;
        let metric = EuclideanSpace::new(datasets::uniform_cube(n, 2, 43));
        let params = Params::practical(4, 0.1, 43);
        let mut cluster = Cluster::new(4, 43);
        let alive = Partition::round_robin(n, 4).all_items().to_vec();
        let before = cluster.rounds();
        let _ = k_bounded_mis(&mut cluster, &metric, &alive, 0.2, 5, n, &params, false);
        assert!(cluster.rounds() > before);
    }

    #[test]
    fn empty_input_yields_empty_maximal_set() {
        let metric = EuclideanSpace::new(datasets::uniform_cube(10, 2, 1));
        let params = Params::practical(2, 0.1, 1);
        let mut cluster = Cluster::new(2, 1);
        let res = k_bounded_mis(
            &mut cluster,
            &metric,
            &[vec![], vec![]],
            0.5,
            3,
            10,
            &params,
            false,
        );
        assert!(res.set.is_empty());
        assert!(res.maximal);
    }

    #[test]
    fn pruning_shortcut_fires_on_sparse_graphs_with_small_k() {
        // tau ~ 0: the threshold graph is edgeless, every p_v is 0, so the
        // sampling probability is 1 and the expected sample mass is n —
        // way past 10·k·ln n. The pruning step must answer immediately.
        let n = 2000;
        let metric = EuclideanSpace::new(datasets::uniform_cube(n, 2, 61));
        let params = Params::practical(4, 0.1, 61);
        let mut cluster = Cluster::new(4, 61);
        let alive = Partition::round_robin(n, 4).all_items().to_vec();
        let res = k_bounded_mis(&mut cluster, &metric, &alive, 1e-9, 5, n, &params, false);
        assert_eq!(res.set.len(), 5);
        assert!(
            matches!(
                res.outcome,
                MisOutcome::PruningShortcut | MisOutcome::DegreeShortcut
            ),
            "dense sampling on an edgeless graph must shortcut, got {:?}",
            res.outcome
        );
        assert_eq!(res.outer_rounds, 1, "one outer round suffices");
    }

    #[test]
    fn degree_shortcut_fires_with_tiny_delta() {
        // Tiny delta shrinks the light cap so the light-extraction branch
        // of Algorithm 3 answers before any sampling happens.
        let n = 600;
        let metric = EuclideanSpace::new(datasets::uniform_cube(n, 2, 67));
        let mut params = Params::practical(4, 0.1, 67);
        params.delta = 0.01;
        let mut cluster = Cluster::new(4, 67);
        let alive = Partition::round_robin(n, 4).all_items().to_vec();
        let res = k_bounded_mis(&mut cluster, &metric, &alive, 1e-6, 4, n, &params, false);
        assert_eq!(res.outcome, MisOutcome::DegreeShortcut);
        assert_eq!(res.set.len(), 4);
    }

    #[test]
    fn forced_progress_keeps_dense_tiny_graphs_terminating() {
        // Complete graph on few vertices with exact degrees: sampling
        // probability 1/(2(n-1)) is small, so empty sample rounds happen
        // and the forced-progress rule must carry termination. Whatever
        // path executes, the output must stay valid for many seeds.
        let n = 8;
        let metric = EuclideanSpace::new(datasets::uniform_cube(n, 2, 71));
        let universe: Vec<u32> = (0..n as u32).collect();
        let mut any_forced = false;
        for seed in 0..30u64 {
            let mut params = Params::practical(2, 0.1, seed);
            params.exact_degrees = true;
            params.enable_pruning = false;
            let mut cluster = Cluster::new(2, seed);
            let alive = Partition::round_robin(n, 2).all_items().to_vec();
            let res = k_bounded_mis(&mut cluster, &metric, &alive, 10.0, 3, n, &params, false);
            let g = ThresholdGraph::new(&metric, 10.0);
            assert!(mpc_graph::verify::is_k_bounded_mis(
                &g, &res.set, &universe, 3
            ));
            any_forced |= res.forced_progress > 0;
        }
        assert!(
            any_forced,
            "30 seeds of tiny complete graphs should exercise forced progress"
        );
    }

    #[test]
    fn theory_preset_remains_valid() {
        // delta = 432 classifies everything light; the exact-degree path
        // carries the whole run. Output validity must be unaffected.
        let n = 300;
        let metric = EuclideanSpace::new(datasets::uniform_cube(n, 2, 73));
        let params = Params::theory(3, 0.1, 73);
        let mut cluster = Cluster::new(3, 73);
        let alive = Partition::round_robin(n, 3).all_items().to_vec();
        let res = k_bounded_mis(&mut cluster, &metric, &alive, 0.2, 6, n, &params, false);
        let g = ThresholdGraph::new(&metric, 0.2);
        let universe: Vec<u32> = (0..n as u32).collect();
        assert!(mpc_graph::verify::is_k_bounded_mis(
            &g, &res.set, &universe, 6
        ));
    }

    #[test]
    fn deterministic_given_seed() {
        let (_, _, a) = run(200, 4, 0.12, 7, 55);
        let (_, _, b) = run(200, 4, 0.12, 7, 55);
        assert_eq!(a.set, b.set);
        assert_eq!(a.outer_rounds, b.outer_rounds);
    }
}
