//! Algorithm 5 — `(2+ε)`-approximation MPC k-center clustering
//! (Theorem 17).
//!
//! A coarse radius `r` with `r/4 ≤ r* ≤ r` comes from a two-level GMM
//! coreset (Lemma 16 bounds its error through `div_{k+1}`). The algorithm
//! then descends the ladder `τ_i = r/(1+ε)^i`, running a **(k+1)-bounded
//! MIS** at each rung: while the MIS stays ≤ k it is maximal, hence a
//! k-center solution of radius `τ_i`; the first rung where k+1 independent
//! points appear certifies `r* ≥ τ_{j+1}/2` by pigeonhole, sandwiching the
//! returned radius within `2(1+ε) r*`.

use std::time::Instant;

use mpc_metric::{MetricSpace, PointId};
use mpc_sim::Cluster;

use crate::common::{covering_radius, gmm_coreset, to_point_ids};
use crate::kbmis::k_bounded_mis;
use crate::ladder::{BoundaryMode, LadderSearch, RungEval};
use crate::memo::MemoizedSpace;
use crate::params::Params;
use crate::telemetry::{PhaseTimes, Telemetry};

/// Result of [`mpc_kcenter`].
#[derive(Debug, Clone)]
pub struct KCenterResult {
    /// The selected centers (≤ k).
    pub centers: Vec<PointId>,
    /// `r(V, centers)` — the realized covering radius.
    pub radius: f64,
    /// The coarse estimate of line 3 (`r/4 ≤ r* ≤ r`).
    pub coarse_r: f64,
    /// Ladder index of the returned solution (0 = the coarse solution Q).
    pub boundary_index: usize,
    /// Measured rounds/communication.
    pub telemetry: Telemetry,
}

fn new_cluster(params: &Params) -> Cluster {
    match params.budget_words {
        Some(b) => Cluster::with_budget(params.m, params.seed, b),
        None => Cluster::new(params.m, params.seed),
    }
}

/// The k-center ladder for [`LadderSearch`]: rung `i` is the (k+1)-bounded
/// MIS of the threshold graph at `τ_i = r/(1+ε)^i`, acceptable while it
/// has ≤ k vertices (it is then maximal, hence a radius-`τ_i` solution).
struct KCenterRungs<'a, M: MetricSpace + ?Sized> {
    memo: &'a MemoizedSpace<'a, M>,
    local_sets: &'a [Vec<u32>],
    r: f64,
    k: usize,
    n: usize,
    params: &'a Params,
}

impl<M: MetricSpace + ?Sized> KCenterRungs<'_, M> {
    fn tau(&self, i: usize) -> f64 {
        self.r / (1.0 + self.params.epsilon).powi(i as i32)
    }
}

impl<M: MetricSpace + ?Sized> RungEval for KCenterRungs<'_, M> {
    type Rung = Vec<u32>;

    fn eval(&mut self, cluster: &mut Cluster, i: usize) -> Vec<u32> {
        k_bounded_mis(
            cluster,
            self.memo,
            self.local_sets,
            self.tau(i),
            self.k + 1,
            self.n,
            self.params,
            false,
        )
        .set
    }

    fn accept(&self, _i: usize, rung: &Vec<u32>) -> bool {
        rung.len() <= self.k
    }

    fn prewarm(&mut self, reachable: &[usize]) {
        let taus: Vec<f64> = reachable.iter().map(|&i| self.tau(i)).collect();
        self.memo.prewarm_taus(&taus);
    }
}

/// Algorithm 5: the `(2+ε)`-approximation MPC algorithm for k-center in
/// any metric space (Theorem 17). `O(log 1/ε)` k-bounded-MIS invocations,
/// `Õ(mk)` communication per machine.
///
/// ```
/// use mpc_core::{kcenter::mpc_kcenter, Params};
/// use mpc_metric::{datasets, EuclideanSpace};
///
/// let space = EuclideanSpace::new(datasets::gaussian_clusters(500, 2, 5, 0.01, 42));
/// let res = mpc_kcenter(&space, 5, &Params::practical(4, 0.1, 7));
/// assert!(res.centers.len() <= 5);
/// assert!(res.radius <= res.coarse_r); // the ladder refines the coarse stage
/// assert!(res.telemetry.rounds > 0);   // and the simulator measured it
/// ```
pub fn mpc_kcenter<M: MetricSpace + ?Sized>(
    metric: &M,
    k: usize,
    params: &Params,
) -> KCenterResult {
    let mut cluster = new_cluster(params);
    mpc_kcenter_on(&mut cluster, metric, k, params)
}

/// Like [`mpc_kcenter`] but running on a caller-provided cluster, so the
/// caller keeps the full round-by-round [`mpc_sim::Ledger`] (used by the
/// cost-projection experiment and by pipelines composing several
/// algorithms on one cluster).
pub fn mpc_kcenter_on<M: MetricSpace + ?Sized>(
    cluster: &mut Cluster,
    metric: &M,
    k: usize,
    params: &Params,
) -> KCenterResult {
    assert!(k >= 1, "k must be positive");
    params.validate();
    assert_eq!(cluster.m(), params.m, "cluster size must match params.m");
    let n = metric.n();
    let partition = params.partition.build(n, params.m, params.seed);
    let local_sets = partition.all_items().to_vec();
    let input_words: Vec<u64> = local_sets
        .iter()
        .map(|s| s.len() as u64 * metric.point_weight())
        .collect();
    cluster.note_memory_all(&input_words);
    // Setup plane: distribute the per-machine shards through the transport
    // (resident on workers under the process backend). Never touches the
    // ledger, so round/word counts stay identical across backends.
    cluster.ship_shards("setup/shards", &local_sets, metric.point_weight());

    // Lines 1–2: Q = GMM(∪ GMM(V_i)).
    let coarse_started = Instant::now();
    let (q, _) = gmm_coreset(cluster, &metric, &local_sets, k);

    // Line 3: r = r(V, Q), a 4-approximation of the optimal radius.
    let r = covering_radius(cluster, metric, &local_sets, &q);
    let coarse_s = coarse_started.elapsed().as_secs_f64();

    // Degenerate inputs: the coreset already covers everything exactly
    // (duplicates / n ≤ k), so the optimum is 0 and Q is optimal.
    if q.len() < k || r <= 0.0 {
        let mut telemetry = Telemetry::from_ledger(cluster.ledger());
        telemetry.phases.coarse_s = coarse_s;
        telemetry.kernels = metric.kernel_stats();
        telemetry.wire = cluster.wire_summary();
        return KCenterResult {
            centers: to_point_ids(&q),
            radius: r.max(0.0),
            coarse_r: r.max(0.0),
            boundary_index: 0,
            telemetry,
        };
    }

    // Line 4: descending ladder τ_i = r/(1+ε)^i with τ_t < r/4 ≤ r*.
    // Lines 5–6: M_0 = Q; find j with |M_j| ≤ k and |M_{j+1}| = k + 1.
    // |M_t| = k+1 is guaranteed: a maximal IS of size ≤ k in G_{τ_t} would
    // be a k-center solution of radius τ_t < r* — impossible — and our MIS
    // routine's sub-(k+1) outputs are genuinely maximal.
    // Every rung queries the same (vertex, candidate-set) pairs with only
    // τ changing, so one τ-independent distance memo (pre-warmed with the
    // rung schedule so re-probes are `partition_point` prefixes) serves
    // the whole search. Local compute only — the ledger is unaffected
    // (see [`crate::memo`]).
    let ladder_started = Instant::now();
    let t = params.ladder_len(4.0, 1);
    let memo = MemoizedSpace::new(metric);
    let mut rungs = KCenterRungs {
        memo: &memo,
        local_sets: &local_sets,
        r,
        k,
        n,
        params,
    };
    let mut search = LadderSearch::new(t);
    search.seed(0, q.clone());
    let boundary = search.search(
        cluster,
        &mut rungs,
        BoundaryMode::LastAccept,
        params.boundary_search,
    );
    let ladder_s = ladder_started.elapsed().as_secs_f64();

    let finalize_started = Instant::now();
    let centers_raw = search.take(boundary).expect("boundary was evaluated");
    debug_assert!(centers_raw.len() <= k);
    // Line 3 analog for the final answer: realized radius (2 rounds).
    let radius = covering_radius(cluster, metric, &local_sets, &centers_raw);
    let mut telemetry = Telemetry::from_ledger(cluster.ledger());
    telemetry.phases = PhaseTimes {
        coarse_s,
        ladder_s,
        finalize_s: finalize_started.elapsed().as_secs_f64(),
    };
    telemetry.ladder_evals = search.evals() as u64;
    telemetry.ladder_probes = search.probes() as u64;
    telemetry.memo = Some(memo.stats());
    telemetry.kernels = metric.kernel_stats();
    telemetry.wire = cluster.wire_summary();
    KCenterResult {
        centers: to_point_ids(&centers_raw),
        radius,
        coarse_r: r,
        boundary_index: boundary,
        telemetry,
    }
}

/// Sequential GMM k-center (Gonzalez 2-approximation) on the full input —
/// the sequential reference.
pub fn sequential_gmm_kcenter<M: MetricSpace + ?Sized>(metric: &M, k: usize) -> KCenterResult {
    assert!(k >= 1);
    let all: Vec<u32> = (0..metric.n() as u32).collect();
    let out = crate::gmm::gmm(metric, &all, k);
    let radius = out.covering_radius();
    KCenterResult {
        centers: to_point_ids(&out.selected),
        radius,
        coarse_r: radius,
        boundary_index: 0,
        telemetry: Telemetry::zero(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::BoundarySearch;
    use mpc_metric::{datasets, dist_point_to_set, EuclideanSpace, PointSet};

    fn realized_radius<M: MetricSpace>(metric: &M, centers: &[PointId]) -> f64 {
        (0..metric.n() as u32)
            .map(|v| dist_point_to_set(metric, PointId(v), centers))
            .fold(0.0f64, f64::max)
    }

    #[test]
    fn clustered_data_recovers_cluster_scale() {
        // 5 tight clusters: optimal 5-center radius ~ sigma scale, far less
        // than the inter-cluster distance.
        let metric = EuclideanSpace::new(datasets::gaussian_clusters(400, 2, 5, 0.01, 3));
        let params = Params::practical(4, 0.1, 3);
        let res = mpc_kcenter(&metric, 5, &params);
        assert!(res.centers.len() <= 5);
        assert!(!res.centers.is_empty());
        let seq = sequential_gmm_kcenter(&metric, 5);
        // seq.radius <= 2 r*; our guarantee is 2(1+eps) r*, so at most
        // 2(1+eps) * seq.radius — loose sanity bound.
        assert!(
            res.radius <= 2.0 * (1.0 + params.epsilon) * seq.radius + 1e-9,
            "radius {} vs sequential {}",
            res.radius,
            seq.radius
        );
    }

    #[test]
    fn reported_radius_matches_realized_radius() {
        let metric = EuclideanSpace::new(datasets::uniform_cube(250, 2, 7));
        let params = Params::practical(5, 0.1, 7);
        let res = mpc_kcenter(&metric, 8, &params);
        let true_r = realized_radius(&metric, &res.centers);
        assert!((res.radius - true_r).abs() < 1e-9);
    }

    #[test]
    fn guarantee_against_optimal_on_grid() {
        // 4x4 unit grid, k = 4: optimal radius is 1/sqrt(2)·... known small
        // case — compute optimum by brute force over all center subsets.
        let metric = EuclideanSpace::new(datasets::grid(4));
        let n = 16u32;
        let k = 4;
        let mut opt = f64::INFINITY;
        // All C(16,4) subsets: 1820, cheap.
        let ids: Vec<u32> = (0..n).collect();
        let mut comb = vec![0usize; k];
        fn rec(
            ids: &[u32],
            metric: &EuclideanSpace,
            chosen: &mut Vec<PointId>,
            start: usize,
            k: usize,
            opt: &mut f64,
        ) {
            if chosen.len() == k {
                let r = (0..metric.n() as u32)
                    .map(|v| dist_point_to_set(metric, PointId(v), chosen))
                    .fold(0.0f64, f64::max);
                if r < *opt {
                    *opt = r;
                }
                return;
            }
            for i in start..ids.len() {
                chosen.push(PointId(ids[i]));
                rec(ids, metric, chosen, i + 1, k, opt);
                chosen.pop();
            }
        }
        let _ = &mut comb;
        rec(&ids, &metric, &mut Vec::new(), 0, k, &mut opt);

        let params = Params::practical(4, 0.1, 11);
        let res = mpc_kcenter(&metric, k, &params);
        assert!(
            res.radius <= 2.0 * (1.0 + params.epsilon) * opt + 1e-9,
            "radius {} vs optimal {opt}",
            res.radius
        );
    }

    #[test]
    fn coarse_r_sandwiches_the_result() {
        let metric = EuclideanSpace::new(datasets::uniform_cube(300, 2, 13));
        let params = Params::practical(4, 0.1, 13);
        let res = mpc_kcenter(&metric, 6, &params);
        // The final radius can only improve on (or match) the coarse one,
        // and never collapses below the r/4 lower bound of the optimum /
        // the (2+eps) guarantee: radius >= r*/1 >= r/4 / ... — just check
        // the improvement direction and positivity.
        assert!(res.radius <= res.coarse_r + 1e-12);
        assert!(res.radius > 0.0);
    }

    #[test]
    fn k_one_returns_single_center() {
        let metric = EuclideanSpace::new(datasets::uniform_cube(50, 2, 1));
        let params = Params::practical(2, 0.1, 1);
        let res = mpc_kcenter(&metric, 1, &params);
        assert_eq!(res.centers.len(), 1);
        let seq = sequential_gmm_kcenter(&metric, 1);
        assert!(res.radius <= 2.0 * (1.0 + params.epsilon) * seq.radius + 1e-9);
    }

    #[test]
    fn n_at_most_k_gives_zero_radius() {
        let metric = EuclideanSpace::new(datasets::uniform_cube(4, 2, 1));
        let params = Params::practical(2, 0.1, 1);
        let res = mpc_kcenter(&metric, 10, &params);
        assert_eq!(res.centers.len(), 4);
        assert_eq!(res.radius, 0.0);
    }

    #[test]
    fn duplicates_collapse_to_zero_radius() {
        let rows: Vec<Vec<f64>> = (0..20).map(|i| vec![(i % 2) as f64, 0.0]).collect();
        let metric = EuclideanSpace::new(PointSet::from_rows(&rows));
        let params = Params::practical(2, 0.1, 1);
        let res = mpc_kcenter(&metric, 2, &params);
        assert!(res.radius <= 1e-12, "two distinct locations, two centers");
    }

    #[test]
    fn linear_scan_matches_binary_validity() {
        let metric = EuclideanSpace::new(datasets::annulus(200, 1.0, 3.0, 5));
        let mut params = Params::practical(4, 0.15, 5);
        let bin = mpc_kcenter(&metric, 6, &params);
        params.boundary_search = BoundarySearch::Linear;
        let lin = mpc_kcenter(&metric, 6, &params);
        for r in [&bin, &lin] {
            assert!(r.centers.len() <= 6);
            assert!(r.radius <= r.coarse_r + 1e-12);
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let metric = EuclideanSpace::new(datasets::uniform_cube(200, 3, 23));
        let params = Params::practical(4, 0.1, 23);
        let a = mpc_kcenter(&metric, 7, &params);
        let b = mpc_kcenter(&metric, 7, &params);
        assert_eq!(a.centers, b.centers);
        assert_eq!(a.telemetry.rounds, b.telemetry.rounds);
    }
}
