//! Algorithm 6 — `(3+ε)`-approximation MPC k-supplier (Theorem 18).
//!
//! In k-supplier the centers must come from a separate supplier set `S`
//! while the objective covers the customer set `C`; the approximability
//! lower bound rises from 2 to 3 (Hochbaum–Shmoys). The algorithm:
//!
//! 1. coarse estimate `r = r(C, Q) + r(Q, S)` with `r/9 ≤ r* ≤ r` from the
//!    k-center coreset `Q` of the customers;
//! 2. ascend the ladder `τ_i = (r/9)(1+ε)^i`, at each rung computing a
//!    (k+1)-bounded MIS `M_i` of the customer threshold graph `G_{2τ_i}`;
//! 3. the smallest rung `j` where `|M_j| ≤ k` **and** every point of `M_j`
//!    has a supplier within `τ_j` yields a solution of radius `3 τ_j ≤
//!    3(1+ε) r*` — each customer reaches an `M_j` point within `2τ_j` and
//!    that point's supplier within another `τ_j`.

use std::time::Instant;

use mpc_metric::{MetricSpace, PointId};
use mpc_sim::Cluster;

use crate::common::{covering_radius, gmm_coreset, nearest_in_distributed_set, to_point_ids};
use crate::kbmis::k_bounded_mis;
use crate::ladder::{BoundaryMode, LadderSearch, RungEval};
use crate::memo::MemoizedSpace;
use crate::params::Params;
use crate::telemetry::{PhaseTimes, Telemetry};

/// Result of [`mpc_ksupplier`].
#[derive(Debug, Clone)]
pub struct KSupplierResult {
    /// The selected suppliers (≤ k, deduplicated).
    pub suppliers: Vec<PointId>,
    /// `r(C, suppliers)` — the realized covering radius of the customers.
    pub radius: f64,
    /// The coarse estimate of line 3 (`r/9 ≤ r* ≤ r`).
    pub coarse_r: f64,
    /// Ladder index of the accepted rung.
    pub boundary_index: usize,
    /// Measured rounds/communication.
    pub telemetry: Telemetry,
}

fn new_cluster(params: &Params) -> Cluster {
    match params.budget_words {
        Some(b) => Cluster::with_budget(params.m, params.seed, b),
        None => Cluster::new(params.m, params.seed),
    }
}

/// Splits `ids` over `m` machines with the partition strategy (reusing the
/// strategy over positions, then mapping back to the actual ids).
fn split_ids(ids: &[u32], params: &Params, salt: u64) -> Vec<Vec<u32>> {
    let part = params
        .partition
        .build(ids.len(), params.m, params.seed ^ salt);
    part.all_items()
        .iter()
        .map(|positions| positions.iter().map(|&p| ids[p as usize]).collect())
        .collect()
}

/// The k-supplier ladder for [`LadderSearch`]: rung `i` carries the
/// (k+1)-bounded MIS of the customer graph at `2τ_i` plus — whenever that
/// MIS is small enough to possibly qualify — its nearest-supplier
/// assignment. Rung `i` is acceptable when `|M_i| ≤ k` and every MIS point
/// has a supplier within `τ_i`.
///
/// The assignment is computed inside `eval` (each rung is evaluated at
/// most once, so the collective sequence equals the old lazily-memoized
/// predicate's), leaving `accept` pure as [`RungEval`] requires. The
/// seeded backstop rung `t` carries `None` for its assignment — the
/// `FirstAccept` schedules never probe it, and the caller backfills the
/// assignment if the search settles there.
struct KSupplierRungs<'a, M: MetricSpace + ?Sized> {
    memo: &'a MemoizedSpace<'a, M>,
    metric: &'a M,
    local_c: &'a [Vec<u32>],
    local_s: &'a [Vec<u32>],
    r: f64,
    k: usize,
    n: usize,
    params: &'a Params,
}

type SupplierRung = (Vec<u32>, Option<Vec<(u32, f64)>>);

impl<M: MetricSpace + ?Sized> KSupplierRungs<'_, M> {
    fn tau(&self, i: usize) -> f64 {
        (self.r / 9.0) * (1.0 + self.params.epsilon).powi(i as i32)
    }
}

impl<M: MetricSpace + ?Sized> RungEval for KSupplierRungs<'_, M> {
    type Rung = SupplierRung;

    fn eval(&mut self, cluster: &mut Cluster, i: usize) -> SupplierRung {
        let set = k_bounded_mis(
            cluster,
            self.memo,
            self.local_c,
            2.0 * self.tau(i),
            self.k + 1,
            self.n,
            self.params,
            false,
        )
        .set;
        let assign = (set.len() <= self.k)
            .then(|| nearest_in_distributed_set(cluster, self.metric, self.local_s, &set));
        (set, assign)
    }

    fn accept(&self, i: usize, rung: &SupplierRung) -> bool {
        match &rung.1 {
            Some(assign) => {
                let worst = assign.iter().map(|&(_, d)| d).fold(0.0f64, f64::max);
                worst <= self.tau(i)
            }
            None => false, // |M_i| > k: the rung can't qualify
        }
    }

    fn prewarm(&mut self, reachable: &[usize]) {
        let taus: Vec<f64> = reachable.iter().map(|&i| 2.0 * self.tau(i)).collect();
        self.memo.prewarm_taus(&taus);
    }
}

/// Algorithm 6: `(3+ε)`-approximation MPC k-supplier in any metric space
/// (Theorem 18).
///
/// `customers` and `suppliers` are disjoint id sets within `metric`; each
/// machine stores a share of both.
pub fn mpc_ksupplier<M: MetricSpace + ?Sized>(
    metric: &M,
    customers: &[u32],
    suppliers: &[u32],
    k: usize,
    params: &Params,
) -> KSupplierResult {
    let mut cluster = new_cluster(params);
    mpc_ksupplier_on(&mut cluster, metric, customers, suppliers, k, params)
}

/// Like [`mpc_ksupplier`] but on a caller-provided cluster, keeping the
/// full round-by-round [`mpc_sim::Ledger`] with the caller.
pub fn mpc_ksupplier_on<M: MetricSpace + ?Sized>(
    cluster: &mut Cluster,
    metric: &M,
    customers: &[u32],
    suppliers: &[u32],
    k: usize,
    params: &Params,
) -> KSupplierResult {
    assert!(k >= 1, "k must be positive");
    assert!(!customers.is_empty(), "need at least one customer");
    assert!(!suppliers.is_empty(), "need at least one supplier");
    assert_eq!(cluster.m(), params.m, "cluster size must match params.m");
    params.validate();
    let n = metric.n();
    let local_c = split_ids(customers, params, 0xC);
    let local_s = split_ids(suppliers, params, 0x5);
    let input_words: Vec<u64> = local_c
        .iter()
        .zip(&local_s)
        .map(|(c, s)| (c.len() + s.len()) as u64 * metric.point_weight())
        .collect();
    cluster.note_memory_all(&input_words);

    // Lines 1–2: customer coreset Q.
    let coarse_started = Instant::now();
    let (q, _) = gmm_coreset(cluster, metric, &local_c, k);

    // Line 3: r = r(C, Q) + r(Q, S).
    let r_cq = covering_radius(cluster, metric, &local_c, &q);
    let q_nearest = nearest_in_distributed_set(cluster, metric, &local_s, &q);
    let r_qs = q_nearest.iter().map(|&(_, d)| d).fold(0.0f64, f64::max);
    let r = r_cq + r_qs;
    let coarse_s = coarse_started.elapsed().as_secs_f64();

    if r <= 0.0 {
        // Every customer sits on a supplier: pick Q's suppliers directly.
        let mut sel: Vec<u32> = q_nearest.iter().map(|&(s, _)| s).collect();
        sel.sort_unstable();
        sel.dedup();
        sel.truncate(k);
        let mut telemetry = Telemetry::from_ledger(cluster.ledger());
        telemetry.phases.coarse_s = coarse_s;
        telemetry.wire = cluster.wire_summary();
        return KSupplierResult {
            suppliers: to_point_ids(&sel),
            radius: 0.0,
            coarse_r: 0.0,
            boundary_index: 0,
            telemetry,
        };
    }

    // Line 4: ascending ladder τ_i = (r/9)(1+ε)^i with τ_t ≥ r.
    // Lines 5–6: M_t = Q; find the smallest j with |M_j| ≤ k and
    // r(M_j, S) ≤ τ_j. Index t always qualifies: |Q| ≤ k and
    // r(Q, S) = r_qs ≤ r ≤ τ_t — it is seeded as the backstop and never
    // probed by the FirstAccept schedules.
    // Every rung re-queries the same (vertex, candidate-set) pairs with
    // only the threshold 2τ_i changing, so the pre-warmed distance memo
    // serves the whole search (ledger-invisible — see [`crate::memo`]).
    let ladder_started = Instant::now();
    let t = params.ladder_len(9.0, 0);
    let memo = MemoizedSpace::new(metric);
    let mut rungs = KSupplierRungs {
        memo: &memo,
        metric,
        local_c: &local_c,
        local_s: &local_s,
        r,
        k,
        n,
        params,
    };
    let mut search = LadderSearch::new(t);
    search.seed(t, (q.clone(), None));
    let boundary = search.search(
        cluster,
        &mut rungs,
        BoundaryMode::FirstAccept,
        params.boundary_search,
    );
    let ladder_s = ladder_started.elapsed().as_secs_f64();

    // Line 8: the suppliers realizing r(M_j, S) ≤ τ_j.
    let finalize_started = Instant::now();
    let (m_b, assign) = search.take(boundary).expect("boundary rung exists");
    let assign = assign.unwrap_or_else(|| {
        // Possible when the search settled on the seeded rung t without
        // evaluating it: its backstop payload carries no assignment.
        nearest_in_distributed_set(cluster, metric, &local_s, &m_b)
    });
    let mut sel: Vec<u32> = assign.iter().map(|&(s, _)| s).collect();
    sel.sort_unstable();
    sel.dedup();
    debug_assert!(sel.len() <= k);

    let radius = covering_radius(cluster, metric, &local_c, &sel);
    let mut telemetry = Telemetry::from_ledger(cluster.ledger());
    telemetry.phases = PhaseTimes {
        coarse_s,
        ladder_s,
        finalize_s: finalize_started.elapsed().as_secs_f64(),
    };
    telemetry.ladder_evals = search.evals() as u64;
    telemetry.ladder_probes = search.probes() as u64;
    telemetry.kernels = metric.kernel_stats();
    telemetry.wire = cluster.wire_summary();
    KSupplierResult {
        suppliers: to_point_ids(&sel),
        radius,
        coarse_r: r,
        boundary_index: boundary,
        telemetry,
    }
}

/// Sequential 3-approximation reference: GMM the customers, then map each
/// chosen customer to its nearest supplier (the classic Hochbaum–Shmoys
/// style bound: 2 r* from the k-center step + r* for the hop to S).
pub fn sequential_ksupplier<M: MetricSpace + ?Sized>(
    metric: &M,
    customers: &[u32],
    suppliers: &[u32],
    k: usize,
) -> KSupplierResult {
    assert!(k >= 1 && !customers.is_empty() && !suppliers.is_empty());
    let centers = crate::gmm::gmm(metric, customers, k).selected;
    let mut sel: Vec<u32> = centers
        .iter()
        .map(|&c| {
            suppliers
                .iter()
                .copied()
                .min_by(|&a, &b| {
                    metric
                        .dist(PointId(c), PointId(a))
                        .total_cmp(&metric.dist(PointId(c), PointId(b)))
                        .then(a.cmp(&b))
                })
                .expect("non-empty suppliers")
        })
        .collect();
    sel.sort_unstable();
    sel.dedup();
    let sel_ids = to_point_ids(&sel);
    let radius = customers
        .iter()
        .map(|&c| mpc_metric::dist_point_to_set(metric, PointId(c), &sel_ids))
        .fold(0.0f64, f64::max);
    KSupplierResult {
        suppliers: sel_ids,
        radius,
        coarse_r: radius,
        boundary_index: 0,
        telemetry: Telemetry::zero(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::BoundarySearch;
    use mpc_metric::{datasets, dist_point_to_set, EuclideanSpace, PointSet};
    use rand::{RngExt, SeedableRng};

    /// Builds one space containing customers then suppliers; returns
    /// (metric, customer ids, supplier ids).
    fn instance(nc: usize, ns: usize, seed: u64) -> (EuclideanSpace, Vec<u32>, Vec<u32>) {
        let c = datasets::gaussian_clusters(nc, 2, 5, 0.05, seed);
        let mut rows: Vec<Vec<f64>> = (0..nc)
            .map(|i| c.coords(PointId(i as u32)).to_vec())
            .collect();
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed ^ 0xF00D);
        for _ in 0..ns {
            rows.push(vec![
                rng.random_range(-0.2..1.2),
                rng.random_range(-0.2..1.2),
            ]);
        }
        let metric = EuclideanSpace::new(PointSet::from_rows(&rows));
        let customers: Vec<u32> = (0..nc as u32).collect();
        let suppliers: Vec<u32> = (nc as u32..(nc + ns) as u32).collect();
        (metric, customers, suppliers)
    }

    #[test]
    fn output_is_feasible_and_bounded() {
        let (metric, customers, suppliers) = instance(150, 60, 3);
        let params = Params::practical(4, 0.2, 3);
        let res = mpc_ksupplier(&metric, &customers, &suppliers, 5, &params);
        assert!(res.suppliers.len() <= 5);
        assert!(!res.suppliers.is_empty());
        // Every chosen id must be a supplier.
        for s in &res.suppliers {
            assert!(suppliers.contains(&s.0), "{s} is not a supplier");
        }
        // Radius consistency.
        let true_r = customers
            .iter()
            .map(|&c| dist_point_to_set(&metric, PointId(c), &res.suppliers))
            .fold(0.0f64, f64::max);
        assert!((res.radius - true_r).abs() < 1e-9);
        // Coarse estimate is an upper bound on a feasible radius; the
        // guarantee keeps the result within 3(1+eps) of the optimum, which
        // is itself ≤ coarse r.
        assert!(res.radius <= 3.0 * (1.0 + params.epsilon) * res.coarse_r / 1.0 + 1e-9);
    }

    #[test]
    fn beats_three_plus_eps_against_sequential_reference() {
        for seed in [1u64, 7] {
            let (metric, customers, suppliers) = instance(120, 50, seed);
            let k = 4;
            let params = Params::practical(3, 0.2, seed);
            let ours = mpc_ksupplier(&metric, &customers, &suppliers, k, &params);
            let seq = sequential_ksupplier(&metric, &customers, &suppliers, k);
            // seq.radius <= 3 r*  =>  r* >= seq.radius / 3; ours must be
            // <= 3(1+eps) r* <= 3(1+eps) seq.radius — very loose but it
            // pins the approximation relationship.
            assert!(
                ours.radius <= 3.0 * (1.0 + params.epsilon) * seq.radius + 1e-9,
                "seed {seed}: ours {} vs sequential {}",
                ours.radius,
                seq.radius
            );
        }
    }

    #[test]
    fn customers_on_suppliers_give_zero_radius() {
        // Customers and suppliers at identical coordinates.
        let rows = vec![
            vec![0.0, 0.0],
            vec![1.0, 0.0], // customers
            vec![0.0, 0.0],
            vec![1.0, 0.0], // suppliers
        ];
        let metric = EuclideanSpace::new(PointSet::from_rows(&rows));
        let params = Params::practical(2, 0.1, 1);
        let res = mpc_ksupplier(&metric, &[0, 1], &[2, 3], 2, &params);
        assert_eq!(res.radius, 0.0);
    }

    #[test]
    fn single_supplier_is_always_chosen() {
        let (metric, customers, _) = instance(50, 0, 5);
        // Append one supplier far away.
        let mut rows: Vec<Vec<f64>> = (0..50)
            .map(|i| metric.points().coords(PointId(i)).to_vec())
            .collect();
        rows.push(vec![5.0, 5.0]);
        let metric = EuclideanSpace::new(PointSet::from_rows(&rows));
        let params = Params::practical(2, 0.1, 5);
        let res = mpc_ksupplier(&metric, &customers, &[50], 3, &params);
        assert_eq!(res.suppliers, vec![PointId(50)]);
        let seq = sequential_ksupplier(&metric, &customers, &[50], 3);
        assert!(
            (res.radius - seq.radius).abs() < 1e-9,
            "only one possible answer"
        );
    }

    #[test]
    fn linear_scan_gives_valid_rung() {
        let (metric, customers, suppliers) = instance(100, 40, 9);
        let mut params = Params::practical(3, 0.2, 9);
        params.boundary_search = BoundarySearch::Linear;
        let res = mpc_ksupplier(&metric, &customers, &suppliers, 4, &params);
        assert!(res.suppliers.len() <= 4);
        assert!(res.radius.is_finite());
    }

    /// A single far-away supplier forces every rung below `t` to reject
    /// (`worst = D > τ_i` while `(1+ε)^i < 9`), so both schedules settle
    /// on the seeded backstop rung `t` *without evaluating it* and the
    /// driver must backfill its supplier assignment — the branch behind
    /// the old "possible when binary search settled on t" comment.
    #[test]
    fn backfills_assignment_when_search_settles_on_seeded_top() {
        let metric = mpc_metric::MatrixSpace::new(2, vec![0.0, 1.0, 1.0, 0.0]).unwrap();
        for strategy in [BoundarySearch::Binary, BoundarySearch::Linear] {
            let mut params = Params::practical(1, 0.1, 1);
            params.boundary_search = strategy;
            let t = params.ladder_len(9.0, 0);
            let res = mpc_ksupplier(&metric, &[0], &[1], 1, &params);
            assert_eq!(res.suppliers, vec![PointId(1)], "{strategy:?}");
            assert_eq!(res.radius, 1.0, "{strategy:?}");
            assert_eq!(
                res.boundary_index, t,
                "{strategy:?} must settle on the backstop rung"
            );
            assert!(res.telemetry.ladder_evals >= 1);
            assert!(res.telemetry.ladder_probes >= res.telemetry.ladder_evals);
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let (metric, customers, suppliers) = instance(120, 60, 21);
        let params = Params::practical(4, 0.15, 21);
        let a = mpc_ksupplier(&metric, &customers, &suppliers, 5, &params);
        let b = mpc_ksupplier(&metric, &customers, &suppliers, 5, &params);
        assert_eq!(a.suppliers, b.suppliers);
        assert_eq!(a.telemetry.rounds, b.telemetry.rounds);
    }
}
