//! The shared τ-ladder boundary-search driver.
//!
//! Algorithms 2 (k-center), 5 (k-supplier) and 6 (diversity) all reduce to
//! the same one-dimensional search: a geometric threshold ladder
//! `τ_0, …, τ_t`, a monotone accept predicate over rungs (monotone because
//! every underlying `within(τ)` answer is), and a boundary rung to locate
//! with either a binary or a linear probe schedule
//! ([`BoundarySearch`]). Before this module the three algorithms each
//! carried their own copy of the cache-vector + eval-closure + probe-loop
//! driver; [`LadderSearch`] is that driver extracted once, so rung
//! caching, probe accounting, and the memo pre-warm hook
//! ([`RungEval::prewarm`]) are shared.
//!
//! The probe schedules are bit-compatible with the loops they replaced:
//! for a given mode, strategy, and accept sequence, the same rungs are
//! evaluated in the same order, so the MPC collective sequence — and with
//! it the [`mpc_sim::Ledger`] — is unchanged (pinned by the neutrality
//! suite).

use mpc_sim::Cluster;

use crate::params::BoundarySearch;

/// Which side of the monotone accept frontier the search returns.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BoundaryMode {
    /// Accepts form a prefix `0..=b`; return the last accepted rung `b`.
    /// Used by the descending k-center ladder (`|M_i| ≤ k` holds for small
    /// `i`) and the ascending diversity ladder (`|M_i| = k` holds for
    /// small `i`).
    ///
    /// The binary schedule probes the top rung first; theory guarantees
    /// rejection there (e.g. `|M_t| = k + 1` for k-center), but if the
    /// probe *does* accept, the search returns `t` immediately — the
    /// "theoretically impossible" fallback the previous per-algorithm
    /// drivers each carried, pinned by the tests below.
    LastAccept,
    /// Rejects form a prefix; return the first accepted rung. Used by the
    /// k-supplier ladder (coverage holds from the boundary up). The top
    /// rung is the seeded always-accept backstop and is **never probed**
    /// by either schedule — a `FirstAccept` search can return `t` with
    /// `t`'s rung never evaluated, and callers that need `t`'s payload
    /// must backfill it (see `ksupplier.rs`).
    FirstAccept,
}

/// One algorithm's view of its ladder: how to evaluate a rung (the only
/// part that talks to the [`Cluster`]) and how to judge it.
pub trait RungEval {
    /// Whatever the algorithm caches per rung (the rung's MIS, an
    /// assignment, …).
    type Rung;

    /// Runs the rung's MPC computation. Called at most once per rung;
    /// [`LadderSearch`] caches the result.
    fn eval(&mut self, cluster: &mut Cluster, i: usize) -> Self::Rung;

    /// Judges a (cached) rung. Must be pure: the driver may consult it in
    /// any probe order, and seeded rungs are judged without `eval` having
    /// run.
    fn accept(&self, i: usize, rung: &Self::Rung) -> bool;

    /// Called once, before the first probe, with every rung index the
    /// schedule could still evaluate (at least two, else the hook is
    /// skipped). Implementations use it to register the rung thresholds
    /// with [`crate::memo::MemoizedSpace::prewarm_taus`] so sorted
    /// companion rows are built from each distance vector's first touch.
    /// Purely a local-compute hint; must not touch the cluster.
    fn prewarm(&mut self, _reachable: &[usize]) {}
}

/// The rung cache plus probe bookkeeping for one ladder search.
///
/// Indices run `0..=t` where `t` is the ladder length passed to
/// [`LadderSearch::new`]. Algorithms seed rungs they know a priori
/// (k-center/diversity seed rung 0 with the coreset, k-supplier seeds rung
/// `t` with its backstop) via [`LadderSearch::seed`]; the schedules below
/// never evaluate a seeded rung's index, so seeding never masks an `eval`.
pub struct LadderSearch<R> {
    cache: Vec<Option<R>>,
    evals: u32,
    probes: u32,
}

impl<R> LadderSearch<R> {
    /// A fresh search over rungs `0..=t`.
    pub fn new(t: usize) -> Self {
        Self {
            cache: std::iter::repeat_with(|| None).take(t + 1).collect(),
            evals: 0,
            probes: 0,
        }
    }

    /// The top rung index `t`.
    pub fn top(&self) -> usize {
        self.cache.len() - 1
    }

    /// Pre-fills rung `i` with a result known without evaluation.
    pub fn seed(&mut self, i: usize, rung: R) {
        self.cache[i] = Some(rung);
    }

    /// The cached rung at `i`, if evaluated or seeded.
    pub fn rung(&self, i: usize) -> Option<&R> {
        self.cache[i].as_ref()
    }

    /// Moves the cached rung at `i` out of the search.
    pub fn take(&mut self, i: usize) -> Option<R> {
        self.cache[i].take()
    }

    /// Rungs actually evaluated (MPC work done), excluding seeds.
    pub fn evals(&self) -> u32 {
        self.evals
    }

    /// Accept-predicate consultations, including cache hits.
    pub fn probes(&self) -> u32 {
        self.probes
    }

    fn accept_at<E: RungEval<Rung = R>>(
        &mut self,
        cluster: &mut Cluster,
        eval: &mut E,
        i: usize,
    ) -> bool {
        self.probes += 1;
        if self.cache[i].is_none() {
            self.evals += 1;
            self.cache[i] = Some(eval.eval(cluster, i));
        }
        eval.accept(i, self.cache[i].as_ref().expect("just filled"))
    }

    /// Locates the boundary rung of the monotone accept frontier and
    /// returns its index. Probe orders replicate the per-algorithm loops
    /// this module replaced, rung for rung:
    ///
    /// * `LastAccept` + `Binary`: probe `t` (returning it on the
    ///   impossible accept), then bisect `(lo, hi)` with `lo` accepted /
    ///   `hi` rejected, returning `lo`.
    /// * `LastAccept` + `Linear`: walk `1, 2, …` while accepting; return
    ///   the last accepted rung (0 if rung 1 already rejects).
    /// * `FirstAccept` + `Binary`: lower-bound bisection over `0..t`;
    ///   never probes `t`.
    /// * `FirstAccept` + `Linear`: walk `0, 1, …` while rejecting; never
    ///   probes `t`.
    pub fn search<E: RungEval<Rung = R>>(
        &mut self,
        cluster: &mut Cluster,
        eval: &mut E,
        mode: BoundaryMode,
        strategy: BoundarySearch,
    ) -> usize {
        let t = self.top();
        if t >= 2 {
            let unevaluated: Vec<usize> = (0..=t).filter(|&i| self.cache[i].is_none()).collect();
            eval.prewarm(&unevaluated);
        }
        match (mode, strategy) {
            (BoundaryMode::LastAccept, BoundarySearch::Binary) => {
                if self.accept_at(cluster, eval, t) {
                    // Theoretically impossible; accept the bottom rung.
                    return t;
                }
                let (mut lo, mut hi) = (0usize, t);
                while hi - lo > 1 {
                    let mid = lo + (hi - lo) / 2;
                    if self.accept_at(cluster, eval, mid) {
                        lo = mid;
                    } else {
                        hi = mid;
                    }
                }
                lo
            }
            (BoundaryMode::LastAccept, BoundarySearch::Linear) => {
                let mut j = 0usize;
                while j < t && self.accept_at(cluster, eval, j + 1) {
                    j += 1;
                }
                j
            }
            (BoundaryMode::FirstAccept, BoundarySearch::Binary) => {
                let (mut lo, mut hi) = (0usize, t);
                while lo < hi {
                    let mid = lo + (hi - lo) / 2;
                    if self.accept_at(cluster, eval, mid) {
                        hi = mid;
                    } else {
                        lo = mid + 1;
                    }
                }
                lo
            }
            (BoundaryMode::FirstAccept, BoundarySearch::Linear) => {
                let mut j = 0usize;
                while j < t && !self.accept_at(cluster, eval, j) {
                    j += 1;
                }
                j
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A metric-free rung evaluator: rung `i`'s payload is `i` itself,
    /// acceptance is a pure function of the index, and every call is
    /// recorded for probe-order assertions.
    struct Stub {
        accept: fn(usize, usize) -> bool,
        boundary: usize,
        evaluated: Vec<usize>,
        prewarmed: Vec<Vec<usize>>,
    }

    impl Stub {
        fn new(accept: fn(usize, usize) -> bool, boundary: usize) -> Self {
            Self {
                accept,
                boundary,
                evaluated: Vec::new(),
                prewarmed: Vec::new(),
            }
        }
    }

    impl RungEval for Stub {
        type Rung = usize;
        fn eval(&mut self, _cluster: &mut Cluster, i: usize) -> usize {
            self.evaluated.push(i);
            i
        }
        fn accept(&self, i: usize, rung: &usize) -> bool {
            assert_eq!(i, *rung, "accept must see rung {i}'s own payload");
            (self.accept)(i, self.boundary)
        }
        fn prewarm(&mut self, reachable: &[usize]) {
            assert!(
                self.evaluated.is_empty(),
                "prewarm must precede the first eval"
            );
            self.prewarmed.push(reachable.to_vec());
        }
    }

    fn cluster() -> Cluster {
        Cluster::new(1, 1)
    }

    /// The "theoretically impossible" fallback: the top rung of a
    /// `LastAccept` binary search accepts, so the search returns `t` after
    /// exactly that one probe. This is the `lo = t` branch the three
    /// per-algorithm drivers each carried (e.g. the old `kcenter.rs:133`);
    /// no metric can reach it, so it is pinned here at driver level.
    #[test]
    fn impossible_top_accept_returns_top_after_one_probe() {
        for t in [1usize, 2, 5, 9] {
            let mut stub = Stub::new(|_, _| true, 0);
            let mut search = LadderSearch::new(t);
            let b = search.search(
                &mut cluster(),
                &mut stub,
                BoundaryMode::LastAccept,
                BoundarySearch::Binary,
            );
            assert_eq!(b, t);
            assert_eq!(stub.evaluated, vec![t], "only the top rung evaluates");
            assert_eq!(search.evals(), 1);
            assert_eq!(search.probes(), 1);
            assert!(search.rung(t).is_some());
        }
    }

    /// The all-reject twin on the `FirstAccept` side: every probed rung
    /// rejects, the search settles on `t`, and `t` itself is never
    /// evaluated — the branch behind k-supplier's assignment backfill.
    #[test]
    fn first_accept_settles_on_unevaluated_top() {
        for strategy in [BoundarySearch::Binary, BoundarySearch::Linear] {
            let t = 7;
            let mut stub = Stub::new(|_, _| false, 0);
            let mut search = LadderSearch::new(t);
            search.seed(t, 99); // the backstop payload
            let b = search.search(
                &mut cluster(),
                &mut stub,
                BoundaryMode::FirstAccept,
                strategy,
            );
            assert_eq!(b, t);
            assert!(
                stub.evaluated.iter().all(|&i| i < t),
                "rung t must never be evaluated by a FirstAccept schedule"
            );
            assert_eq!(search.rung(t), Some(&99), "seed untouched");
        }
    }

    /// Binary and linear schedules agree on every boundary of every small
    /// ladder, in both modes — the Linear-vs-Binary validity pin.
    #[test]
    fn linear_matches_binary_on_all_boundaries() {
        for t in 1usize..=9 {
            for boundary in 0..=t {
                for (mode, accept) in [
                    (
                        BoundaryMode::LastAccept,
                        (|i, b| i <= b) as fn(usize, usize) -> bool,
                    ),
                    (BoundaryMode::FirstAccept, |i, b| i >= b),
                ] {
                    // LastAccept's binary schedule would take the
                    // impossible fallback when the top rung accepts;
                    // real ladders guarantee it rejects, so skip that
                    // combination (covered by its own test above).
                    if mode == BoundaryMode::LastAccept && boundary == t {
                        continue;
                    }
                    let mut results = Vec::new();
                    for strategy in [BoundarySearch::Binary, BoundarySearch::Linear] {
                        let mut stub = Stub::new(accept, boundary);
                        let mut search = LadderSearch::new(t);
                        results.push(search.search(&mut cluster(), &mut stub, mode, strategy));
                    }
                    assert_eq!(
                        results[0], results[1],
                        "t={t} boundary={boundary} mode={mode:?}"
                    );
                    assert_eq!(results[0], boundary, "t={t} mode={mode:?}");
                }
            }
        }
    }

    /// Each rung evaluates at most once regardless of how often the
    /// schedule consults it, and seeded rungs never evaluate at all.
    #[test]
    fn rungs_evaluate_at_most_once_and_seeds_never() {
        let t = 8;
        let mut stub = Stub::new(|i, b| i <= b, 5);
        let mut search = LadderSearch::new(t);
        search.seed(0, 0);
        let b = search.search(
            &mut cluster(),
            &mut stub,
            BoundaryMode::LastAccept,
            BoundarySearch::Binary,
        );
        assert_eq!(b, 5);
        let mut seen = stub.evaluated.clone();
        seen.sort_unstable();
        seen.dedup();
        assert_eq!(seen.len(), stub.evaluated.len(), "no rung evaluates twice");
        assert!(!stub.evaluated.contains(&0), "seeded rung never evaluates");
        assert_eq!(search.evals() as usize, stub.evaluated.len());
        assert!(search.probes() >= search.evals());
    }

    /// The binary probe order is exactly the order of the loops this
    /// module replaced: top rung first, then midpoint bisection.
    #[test]
    fn binary_probe_order_matches_replaced_loops() {
        // LastAccept over t=8 with boundary 5: the old k-center loop
        // probed 8, then mids of (0,8)=4, (4,8)=6, (4,6)=5.
        let mut stub = Stub::new(|i, b| i <= b, 5);
        let mut search = LadderSearch::new(8);
        search.search(
            &mut cluster(),
            &mut stub,
            BoundaryMode::LastAccept,
            BoundarySearch::Binary,
        );
        assert_eq!(stub.evaluated, vec![8, 4, 6, 5]);

        // FirstAccept over t=8 with boundary 5: the old k-supplier
        // lower bound probed mids of [0,8)=4, [5,8)=6, [5,6)=5.
        let mut stub = Stub::new(|i, b| i >= b, 5);
        let mut search = LadderSearch::new(8);
        search.search(
            &mut cluster(),
            &mut stub,
            BoundaryMode::FirstAccept,
            BoundarySearch::Binary,
        );
        assert_eq!(stub.evaluated, vec![4, 6, 5]);
    }

    /// `prewarm` fires once, before any probe, with exactly the
    /// unevaluated rung indices; ladders too short to profit (t < 2) skip
    /// it.
    #[test]
    fn prewarm_reports_unevaluated_rungs_before_probing() {
        // (Stub::prewarm itself asserts it runs before the first eval.)
        let mut stub = Stub::new(|i, b| i <= b, 2);
        let mut search = LadderSearch::new(4);
        search.seed(0, 0);
        search.search(
            &mut cluster(),
            &mut stub,
            BoundaryMode::LastAccept,
            BoundarySearch::Binary,
        );
        assert_eq!(stub.prewarmed, vec![vec![1, 2, 3, 4]]);

        let mut stub = Stub::new(|i, b| i <= b, 0);
        let mut search = LadderSearch::new(1);
        search.search(
            &mut cluster(),
            &mut stub,
            BoundaryMode::LastAccept,
            BoundarySearch::Linear,
        );
        assert!(stub.prewarmed.is_empty(), "t=1 ladders skip the hook");
    }
}
