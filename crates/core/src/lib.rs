//! The paper's algorithms: "Almost Optimal Massively Parallel Algorithms
//! for k-Center Clustering and Diversity Maximization" (Haqi &
//! Zarrabi-Zadeh, SPAA 2023).
//!
//! | Paper | Module | What it does |
//! |---|---|---|
//! | Algorithm 1 | [`gmm`] | Gonzalez greedy — sequential 2-approx for both problems, and the coreset builder |
//! | Algorithm 3 / Theorem 9 | [`degree`] | `1 ± ε` MPC degree approximation in threshold graphs |
//! | Algorithm 4 / Theorem 15 | [`kbmis`] | constant-round MPC *k-bounded MIS* |
//! | Algorithm 2 / Theorem 3 | [`diversity`] | `(2+ε)`-approx MPC k-diversity maximization |
//! | Algorithm 5 / Theorem 17 | [`kcenter`] | `(2+ε)`-approx MPC k-center |
//! | Algorithm 6 / Theorem 18 | [`ksupplier`] | `(3+ε)`-approx MPC k-supplier |
//! | §7 (extension) | [`dominating`] | dominating sets in graphs of bounded neighborhood independence |
//!
//! All algorithms run on the [`mpc_sim::Cluster`] simulator, use a
//! constant number of MPC rounds, and keep per-machine communication in
//! `Õ(mk)` — quantities the simulator's ledger measures and the
//! `mpc-bench` experiments validate.
//!
//! Outputs are **unconditionally valid** (true k-bounded MISes, feasible
//! clusterings); the probabilistic parts of the paper's analysis affect
//! only the measured round/communication counts. See DESIGN.md.

pub mod assignment;
pub mod common;
pub mod degree;
pub mod diversity;
pub mod dominating;
pub mod gmm;
pub mod grid;
pub mod kbmis;
pub mod kcenter;
pub mod ksupplier;
pub mod ladder;
pub mod memo;
pub mod params;
pub mod telemetry;
pub mod verify;

pub use grid::KCenterEngine;
pub use memo::MemoStats;
pub use params::{BoundarySearch, Params, PartitionStrategy};
pub use telemetry::{PhaseTimes, Telemetry};
