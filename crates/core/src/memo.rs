//! τ-independent distance memo for the threshold ladders (Algorithms 2,
//! 5, 6).
//!
//! The boundary searches driven by [`crate::ladder`] re-run
//! [`crate::kbmis::k_bounded_mis`] at `O(log 1/ε)` rungs `τ_i` over the
//! *same* point set with the *same* per-machine RNG streams, so successive
//! rungs issue bulk threshold queries for identical `(vertex, candidate
//! set)` pairs — only the threshold changes. [`MemoizedSpace`] caches the
//! **distance vector** of each such pair once and answers every later
//! `count_within` / `neighbors_within` for any `τ` from the cached
//! distances, turning `O(log 1/ε)` full distance passes into one.
//!
//! Two further layers make the re-probes cheap (DESIGN.md §6.3):
//!
//! * **Sharded locks.** The cache is striped over [`MEMO_SHARDS`]
//!   independently locked shards keyed by the pair fingerprint, so the
//!   worker pool's machine closures don't convoy on one global mutex.
//! * **Sorted companion rows.** On a cached vector's *second* touch the
//!   memo attaches a copy of the vector sorted ascending plus the sort
//!   permutation. Every later `count_within(τ)` is then a
//!   `partition_point` prefix — O(log c) instead of the O(c) re-scan —
//!   and `neighbors_within(τ)` maps the prefix positions back through the
//!   candidate list in candidate order. The ladder probes ~4–7 rungs
//!   through identical pairs, so this deletes the dominant repeated DRAM
//!   traffic. Demonstrated reuse is deliberately the *only* trigger: an
//!   eager variant (sort on first store once a rung schedule was
//!   registered) slowed the full n=8000 k-center pipeline ~8× — most rows
//!   the inner MIS loops fill are never queried again, and sorting a
//!   never-reused row costs more than every scan it could ever save.
//!   [`MemoizedSpace::prewarm_taus`] instead *retrofits* companions onto
//!   rows already cached at call time, which benches use to take the
//!   one-time sort out of the measured region.
//!
//! The memo is a *local compute* optimization and lives entirely outside
//! MPC accounting: it forwards [`MetricSpace::point_weight`] untouched and
//! never talks to the [`mpc_sim::Cluster`], so round and word counts are
//! bit-for-bit those of the unmemoized run (asserted by the tests below
//! and the neutrality suite).

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use mpc_metric::{MetricSpace, PointId};

/// Default cap on cached distances (`f64`-equivalent words): 2²² ≈ 32 MiB,
/// split evenly across the shards.
pub const DEFAULT_MEMO_CAPACITY: usize = 1 << 22;

/// Number of independently locked cache shards. Enough that the PR-3 pool's
/// machine closures (typically ≤ a few dozen concurrent lookups) rarely
/// collide, small enough that striping the capacity doesn't starve any
/// shard.
pub const MEMO_SHARDS: usize = 16;

/// FNV-1a over the candidate ids (length-prefixed). Two distinct candidate
/// sets colliding on both length and this 64-bit digest would silently
/// alias a cache entry; at the cache sizes involved (thousands of entries)
/// the collision probability is ≪ 2⁻⁴⁰, which we accept for an
/// accounting-invisible cache.
fn fingerprint(candidates: &[u32]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut eat = |x: u32| {
        for b in x.to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    };
    eat(candidates.len() as u32);
    for &c in candidates {
        eat(c);
    }
    h
}

/// The sorted companion of a cached distance vector: `d` ascending by
/// `total_cmp`, `pos[i]` the index of `d[i]` in the unsorted vector (ties
/// broken by position, so the permutation is a pure function of the
/// vector). Never built over vectors containing NaN — a NaN would break
/// the `d <= τ` prefix structure `partition_point` needs — those rows
/// simply keep the scan path.
struct SortedRow {
    d: Vec<f64>,
    pos: Vec<u32>,
}

impl SortedRow {
    fn build(dists: &[f64]) -> Option<SortedRow> {
        if dists.iter().any(|d| d.is_nan()) {
            return None;
        }
        let mut pos: Vec<u32> = (0..dists.len() as u32).collect();
        pos.sort_unstable_by(|&a, &b| {
            dists[a as usize]
                .total_cmp(&dists[b as usize])
                .then(a.cmp(&b))
        });
        let d = pos.iter().map(|&i| dists[i as usize]).collect();
        Some(SortedRow { d, pos })
    }

    /// `|{i : d[i] <= tau}|` in O(log c): the `d <= τ` predicate is a true
    /// prefix of the ascending array (NaNs were excluded at build time),
    /// so the partition point *is* the count — for any τ, including NaN
    /// (empty prefix) and ±∞.
    fn count(&self, tau: f64) -> usize {
        self.d.partition_point(|&d| d <= tau)
    }
}

/// Extra capacity words a sorted companion row charges: the sorted copy
/// (`len` f64s) plus the `u32` permutation (`len/2` f64-equivalents).
fn sorted_cost(len: usize) -> usize {
    len + len.div_ceil(2)
}

/// Point-in-time snapshot of a [`MemoizedSpace`]'s counters and residency
/// (see [`MemoizedSpace::stats`]). All counts are cumulative since
/// construction except `entries`/`sorted_rows`/`stored_words`, which
/// describe what is resident *now* (post-flush).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MemoStats {
    /// Bulk queries answered from cache.
    pub hits: u64,
    /// Bulk queries that had to compute their distance vector.
    pub misses: u64,
    /// Shard flushes forced by the capacity cap.
    pub flushes: u64,
    /// Sorted companion rows built (counting rebuilds after eviction).
    pub sorted_builds: u64,
    /// Rows currently resident.
    pub entries: usize,
    /// Resident rows that carry a sorted companion.
    pub sorted_rows: usize,
    /// `f64`-equivalent words held by resident vectors and sorted rows.
    pub stored_words: usize,
}

impl MemoStats {
    /// Approximate resident heap footprint in bytes.
    pub fn bytes(&self) -> usize {
        self.stored_words * std::mem::size_of::<f64>()
    }
}

struct Entry {
    dists: Arc<Vec<f64>>,
    sorted: Option<Arc<SortedRow>>,
    /// The vector contains NaN; don't retry the sort on every touch.
    unsortable: bool,
    /// Lookups served from this entry, counting the initial fill.
    touches: u32,
}

#[derive(Default)]
struct Shard {
    map: HashMap<(u32, u64), Entry>,
    /// Total `f64`-equivalent words held by this shard's vectors and
    /// sorted rows.
    stored: usize,
    flushes: u64,
}

/// A cached `(vertex, candidate-set)` row handed to the kernel impls:
/// the distance vector plus its sorted companion when one exists.
#[derive(Clone)]
struct Row {
    dists: Arc<Vec<f64>>,
    sorted: Option<Arc<SortedRow>>,
}

impl Row {
    fn count(&self, tau: f64) -> usize {
        match &self.sorted {
            Some(s) => s.count(tau),
            None => self.dists.iter().filter(|&&d| d <= tau).count(),
        }
    }

    /// Appends the neighbors within `tau` in candidate order. The sorted
    /// fast path copies the prefix positions and re-sorts them ascending —
    /// position order *is* candidate order — and falls back to the linear
    /// scan when the prefix is most of the row (the scan is then cheaper
    /// and both produce identical output).
    fn neighbors(&self, candidates: &[u32], tau: f64, out: &mut Vec<u32>) {
        out.clear();
        if let Some(s) = &self.sorted {
            let cnt = s.count(tau);
            if cnt * 4 < s.d.len() {
                let mut prefix: Vec<u32> = s.pos[..cnt].to_vec();
                prefix.sort_unstable();
                out.extend(prefix.iter().map(|&i| candidates[i as usize]));
                return;
            }
        }
        out.extend(
            candidates
                .iter()
                .zip(self.dists.iter())
                .filter(|&(_, &d)| d <= tau)
                .map(|(&c, _)| c),
        );
    }
}

/// A [`MetricSpace`] adapter that memoizes the distance vectors behind the
/// bulk threshold kernels. See the module docs for when this pays off.
///
/// Scalar comparisons (`within`) and the bulk kernels both decide
/// adjacency as `dist(i, j) <= τ` on the *same* `dist` values, so the
/// wrapper is self-consistent across call shapes — including the sorted
/// and multi-τ paths, which compare the identical cached values. Note the
/// wrapped space's own `within` may use an algebraically equal but
/// floating-point-different test (e.g. `EuclideanSpace` compares squared
/// distances); the two can in principle disagree within 1 ulp of a
/// threshold boundary, which the ladder's irrational rungs never hit in
/// practice.
pub struct MemoizedSpace<'a, M: MetricSpace + ?Sized> {
    inner: &'a M,
    shards: Vec<Mutex<Shard>>,
    hits: AtomicU64,
    misses: AtomicU64,
    sorted_builds: AtomicU64,
    sorted_enabled: bool,
    /// Per-shard word cap ([`DEFAULT_MEMO_CAPACITY`] `/` [`MEMO_SHARDS`]
    /// by default).
    shard_capacity: usize,
}

impl<'a, M: MetricSpace + ?Sized> MemoizedSpace<'a, M> {
    /// Wraps `inner` with the default ≈32 MiB cache.
    pub fn new(inner: &'a M) -> Self {
        Self::with_capacity(inner, DEFAULT_MEMO_CAPACITY)
    }

    /// Wraps `inner`, capping the cache at `capacity` stored words total
    /// (`capacity / MEMO_SHARDS` per shard). When an insert would exceed a
    /// shard's cap, that shard is flushed first (cheap epoch eviction — the
    /// ladder's access pattern has no useful LRU structure, it either
    /// reuses everything or nothing). Vectors larger than the per-shard cap
    /// are computed but never stored, so `with_capacity(0)` degrades to a
    /// pass-through rather than looping.
    pub fn with_capacity(inner: &'a M, capacity: usize) -> Self {
        Self {
            inner,
            shards: (0..MEMO_SHARDS)
                .map(|_| Mutex::new(Shard::default()))
                .collect(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            sorted_builds: AtomicU64::new(0),
            sorted_enabled: true,
            shard_capacity: capacity / MEMO_SHARDS,
        }
    }

    /// Disables the sorted companion rows, leaving only the PR-4 behavior
    /// (cached vectors re-scanned per τ). For benchmarking the sorted-row
    /// speedup and for isolating regressions; results are identical either
    /// way.
    pub fn without_sorted_rows(mut self) -> Self {
        self.sorted_enabled = false;
        self
    }

    /// The wrapped space.
    pub fn inner(&self) -> &'a M {
        self.inner
    }

    /// Bulk queries answered from cache.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Bulk queries that had to compute their distance vector.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Times any shard was flushed to respect the capacity cap.
    pub fn flushes(&self) -> u64 {
        self.shards.iter().map(|s| s.lock().unwrap().flushes).sum()
    }

    /// Sorted companion rows built so far (counting rebuilds after
    /// eviction).
    pub fn sorted_rows_built(&self) -> u64 {
        self.sorted_builds.load(Ordering::Relaxed)
    }

    /// One consistent snapshot of the cache counters and residency — for
    /// telemetry and the `ladder_digest` probe. Counter reads are relaxed
    /// (exact once the queries being summarized have completed); residency
    /// takes each shard lock briefly. Purely observational: calling this
    /// never changes cache behavior.
    pub fn stats(&self) -> MemoStats {
        let mut entries = 0usize;
        let mut sorted_rows = 0usize;
        let mut stored_words = 0usize;
        let mut flushes = 0u64;
        for shard in &self.shards {
            let s = shard.lock().unwrap();
            entries += s.map.len();
            sorted_rows += s.map.values().filter(|e| e.sorted.is_some()).count();
            stored_words += s.stored;
            flushes += s.flushes;
        }
        MemoStats {
            hits: self.hits(),
            misses: self.misses(),
            flushes,
            sorted_builds: self.sorted_rows_built(),
            entries,
            sorted_rows,
            stored_words,
        }
    }

    /// Registers a rung schedule: the boundary search will probe (up to)
    /// `taus.len()` thresholds through the same cached pairs, so every row
    /// *already cached* gets its sorted companion retrofitted now (a row
    /// that survived to prewarm time is a reuse candidate, and with ≥ 2
    /// rungs ahead the sort pays for itself). Rows cached *later* keep the
    /// second-touch trigger — sorting on first store was measured to be a
    /// large pessimization on fill-dominated ladders (see the module
    /// docs). Purely a local-compute hint — cache *values*, hit/miss
    /// counters, and all query answers are unchanged.
    pub fn prewarm_taus(&self, taus: &[f64]) {
        if !self.sorted_enabled || taus.len() < 2 {
            return;
        }
        for shard in &self.shards {
            let mut guard = shard.lock().unwrap();
            let Shard { map, stored, .. } = &mut *guard;
            for e in map.values_mut() {
                if e.sorted.is_some() || e.unsortable {
                    continue;
                }
                let cost = sorted_cost(e.dists.len());
                if *stored + cost > self.shard_capacity {
                    continue;
                }
                match SortedRow::build(&e.dists) {
                    Some(sr) => {
                        *stored += cost;
                        e.sorted = Some(Arc::new(sr));
                        self.sorted_builds.fetch_add(1, Ordering::Relaxed);
                    }
                    None => e.unsortable = true,
                }
            }
        }
    }

    fn shard_of(&self, key: (u32, u64)) -> usize {
        // Spread same-fingerprint entries (the common case: every machine
        // querying different vertices against one shared candidate set)
        // across shards by mixing the vertex in.
        let h = (key.0 as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ key.1;
        (h % MEMO_SHARDS as u64) as usize
    }

    /// Computes the distance vector for one missing query through the
    /// inner space's bulk [`MetricSpace::dists_into`] kernel — bit-identical
    /// to a per-pair `dist` loop by that method's contract, at every thread
    /// count by the chunked fill's determinism contract.
    fn fill_vector(&self, v: PointId, candidates: &[u32]) -> Arc<Vec<f64>> {
        let mut filled = Vec::new();
        self.inner.dists_into(v, candidates, &mut filled);
        Arc::new(filled)
    }

    /// Cache probe: on a hit, bumps the touch count and lazily attaches
    /// the sorted companion row on the second touch, charging it against
    /// the shard budget.
    fn lookup(&self, key: (u32, u64)) -> Option<Row> {
        let mut guard = self.shards[self.shard_of(key)].lock().unwrap();
        let Shard { map, stored, .. } = &mut *guard;
        let e = map.get_mut(&key)?;
        e.touches += 1;
        if e.sorted.is_none() && !e.unsortable && self.sorted_enabled && e.touches >= 2 {
            let cost = sorted_cost(e.dists.len());
            if *stored + cost <= self.shard_capacity {
                match SortedRow::build(&e.dists) {
                    Some(sr) => {
                        *stored += cost;
                        e.sorted = Some(Arc::new(sr));
                        self.sorted_builds.fetch_add(1, Ordering::Relaxed);
                    }
                    None => e.unsortable = true,
                }
            }
        }
        Some(Row {
            dists: Arc::clone(&e.dists),
            sorted: e.sorted.clone(),
        })
    }

    /// Inserts a freshly computed vector, honoring the per-shard cap with
    /// the epoch flush. Never sorts: a fresh row has no demonstrated
    /// reuse, and sorting every fill was measured to dominate the ladder's
    /// wall-clock (module docs).
    fn store(&self, key: (u32, u64), d: &Arc<Vec<f64>>) {
        let mut guard = self.shards[self.shard_of(key)].lock().unwrap();
        let shard = &mut *guard;
        if shard.stored + d.len() > self.shard_capacity {
            shard.map.clear();
            shard.stored = 0;
            shard.flushes += 1;
        }
        if d.len() > self.shard_capacity {
            return;
        }
        shard.stored += d.len();
        if let Some(old) = shard.map.insert(
            key,
            Entry {
                dists: Arc::clone(d),
                sorted: None,
                unsortable: false,
                touches: 1,
            },
        ) {
            // Concurrent fill of the same pair: refund the replaced entry.
            let mut refund = old.dists.len();
            if old.sorted.is_some() {
                refund += sorted_cost(old.dists.len());
            }
            shard.stored = shard.stored.saturating_sub(refund);
        }
    }

    /// The distance row from `v` to `candidates`, cached by
    /// `(v, fingerprint(candidates))` — deliberately *not* keyed by any
    /// threshold, so every ladder rung shares one entry.
    fn row(&self, v: PointId, candidates: &[u32]) -> Row {
        let key = (v.0, fingerprint(candidates));
        if let Some(r) = self.lookup(key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return r;
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let d = self.fill_vector(v, candidates);
        self.store(key, &d);
        Row {
            dists: d,
            sorted: None,
        }
    }

    /// Multi-query twin of [`MemoizedSpace::row`]: one row per query in
    /// `vs`, against the shared `candidates`. Hits and misses are decided
    /// sequentially on the caller thread (duplicate missing queries
    /// collapse onto the first occurrence's fill and count as hits,
    /// mirroring the sequential loop); the missing vectors are then
    /// computed in one batched pass — fixed query chunks across the worker
    /// pool, each vector an independent deterministic fill — and inserted
    /// in first-occurrence order, so cache state, counters, and values are
    /// identical at every thread count.
    fn rows_many(&self, vs: &[u32], candidates: &[u32]) -> Vec<Row> {
        let fp = fingerprint(candidates);
        let mut rows: Vec<Option<Row>> = vec![None; vs.len()];
        // missing[i] = (vertex, every position) of a distinct missing
        // vertex, in first-occurrence order.
        let mut missing: Vec<(u32, Vec<usize>)> = Vec::new();
        let mut hits = 0u64;
        for (i, &v) in vs.iter().enumerate() {
            if let Some(r) = self.lookup((v, fp)) {
                hits += 1;
                rows[i] = Some(r);
            } else if let Some(entry) = missing.iter_mut().find(|(u, _)| *u == v) {
                hits += 1;
                entry.1.push(i);
            } else {
                missing.push((v, vec![i]));
            }
        }
        self.hits.fetch_add(hits, Ordering::Relaxed);
        self.misses
            .fetch_add(missing.len() as u64, Ordering::Relaxed);
        if !missing.is_empty() {
            let filled: Vec<Arc<Vec<f64>>> =
                if mpc_metric::par_bulk_pairs(missing.len(), candidates.len()) {
                    use rayon::prelude::*;
                    let chunk = missing.len().div_ceil(rayon::pool::MAX_CHUNKS).max(1);
                    missing
                        .par_chunks(chunk)
                        .map(|part| {
                            part.iter()
                                .map(|&(v, _)| self.fill_vector(PointId(v), candidates))
                                .collect::<Vec<_>>()
                        })
                        .collect::<Vec<_>>()
                        .concat()
                } else {
                    missing
                        .iter()
                        .map(|&(v, _)| self.fill_vector(PointId(v), candidates))
                        .collect()
                };
            for ((v, positions), d) in missing.iter().zip(&filled) {
                self.store((*v, fp), d);
                let row = Row {
                    dists: Arc::clone(d),
                    sorted: None,
                };
                for &i in positions {
                    rows[i] = Some(row.clone());
                }
            }
        }
        rows.into_iter().map(|r| r.expect("row filled")).collect()
    }
}

impl<M: MetricSpace + ?Sized> MetricSpace for MemoizedSpace<'_, M> {
    fn n(&self) -> usize {
        self.inner.n()
    }

    fn dist(&self, i: PointId, j: PointId) -> f64 {
        self.inner.dist(i, j)
    }

    fn point_weight(&self) -> u64 {
        self.inner.point_weight()
    }

    fn within(&self, i: PointId, j: PointId, tau: f64) -> bool {
        // `dist`-based on purpose: matches how the cached vectors are
        // compared below, keeping scalar and bulk answers identical.
        self.inner.dist(i, j) <= tau
    }

    fn count_within(&self, v: PointId, candidates: &[u32], tau: f64) -> usize {
        self.row(v, candidates).count(tau)
    }

    fn neighbors_within(&self, v: PointId, candidates: &[u32], tau: f64, out: &mut Vec<u32>) {
        self.row(v, candidates).neighbors(candidates, tau, out)
    }

    /// Answers the whole batch from `MemoizedSpace::rows_many`: cached
    /// rows answer via their sorted companion (a `partition_point`) or a
    /// direct scan, and the misses were filled in one batched pass instead
    /// of one fill per query.
    fn count_within_many(&self, vs: &[u32], candidates: &[u32], tau: f64) -> Vec<usize> {
        self.rows_many(vs, candidates)
            .into_iter()
            .map(|row| row.count(tau))
            .collect()
    }

    /// See [`MemoizedSpace::count_within_many`] on this impl.
    fn neighbors_within_many(&self, vs: &[u32], candidates: &[u32], tau: f64) -> Vec<Vec<u32>> {
        let mut out = Vec::new();
        self.rows_many(vs, candidates)
            .into_iter()
            .map(|row| {
                row.neighbors(candidates, tau, &mut out);
                out.clone()
            })
            .collect()
    }

    /// Multi-τ sweep over one cached row. With a sorted companion every
    /// rung is an independent `partition_point` (O(|taus| log c) total);
    /// without one, a single entry-rung pass over the vector answers all
    /// rungs. Both compare the identical cached `dist` values the per-τ
    /// kernels compare, so every rung's answer is bit-identical to calling
    /// [`MetricSpace::count_within`] per τ.
    ///
    /// Deliberately *not* forwarded to the inner space's multi-τ kernel:
    /// Euclidean's works on squared thresholds, and mixing its verdicts
    /// with this wrapper's `dist`-based ones could flip 1-ulp boundary
    /// cases depending on cache state (see DESIGN.md §6.3).
    fn count_within_taus(&self, v: PointId, candidates: &[u32], taus: &[f64]) -> Vec<usize> {
        debug_assert!(
            taus.windows(2).all(|w| w[0] <= w[1]),
            "count_within_taus requires non-decreasing thresholds"
        );
        let row = self.row(v, candidates);
        match &row.sorted {
            Some(s) => taus.iter().map(|&t| s.count(t)).collect(),
            None => {
                let mut counts = vec![0usize; taus.len()];
                if let Some(&last) = taus.last() {
                    for &d in row.dists.iter() {
                        // `!(d <= last)` sheds NaNs along with the
                        // out-of-ladder distances.
                        if d <= last {
                            counts[taus.partition_point(|&t| t < d)] += 1;
                        }
                    }
                    for j in 1..counts.len() {
                        counts[j] += counts[j - 1];
                    }
                }
                counts
            }
        }
    }

    /// See [`MemoizedSpace::count_within_taus`] on this impl; each rung's
    /// list preserves candidate order.
    fn neighbors_within_taus(&self, v: PointId, candidates: &[u32], taus: &[f64]) -> Vec<Vec<u32>> {
        debug_assert!(
            taus.windows(2).all(|w| w[0] <= w[1]),
            "neighbors_within_taus requires non-decreasing thresholds"
        );
        let row = self.row(v, candidates);
        let mut out = Vec::new();
        taus.iter()
            .map(|&t| {
                row.neighbors(candidates, t, &mut out);
                out.clone()
            })
            .collect()
    }

    /// Raw distance fills bypass the memo (they are not keyed by a reusable
    /// `(vertex, candidate-set)` bulk query) and forward to the inner
    /// space's exact bulk kernel.
    fn dists_into(&self, v: PointId, candidates: &[u32], out: &mut Vec<f64>) {
        self.inner.dists_into(v, candidates, out)
    }

    fn dist_to_set(&self, p: PointId, set: &[PointId]) -> f64 {
        self.inner.dist_to_set(p, set)
    }

    /// Kernel tallies surface from the inner space: memo hits answer from
    /// cached rows without touching the kernels, so the inner counts are
    /// exactly the pairs that actually ran.
    fn kernel_stats(&self) -> Option<mpc_metric::KernelStats> {
        self.inner.kernel_stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kbmis::k_bounded_mis;
    use crate::params::Params;
    use mpc_metric::{datasets, EuclideanSpace};
    use mpc_sim::{Cluster, Partition};

    fn space(n: usize, seed: u64) -> EuclideanSpace {
        EuclideanSpace::new(datasets::uniform_cube(n, 3, seed))
    }

    #[test]
    fn bulk_answers_match_scalar_dist_filter() {
        let m = space(60, 1);
        let memo = MemoizedSpace::new(&m);
        let candidates: Vec<u32> = (0..60).step_by(2).collect();
        for v in [0u32, 7, 59] {
            for tau in [0.0, 0.2, 0.5, 2.0] {
                let want: Vec<u32> = candidates
                    .iter()
                    .copied()
                    .filter(|&c| m.dist(PointId(v), PointId(c)) <= tau)
                    .collect();
                assert_eq!(memo.count_within(PointId(v), &candidates, tau), want.len());
                let mut got = Vec::new();
                memo.neighbors_within(PointId(v), &candidates, tau, &mut got);
                assert_eq!(got, want);
            }
        }
    }

    #[test]
    fn reuse_across_thresholds_hits_the_cache() {
        let m = space(50, 2);
        let memo = MemoizedSpace::new(&m);
        let candidates: Vec<u32> = (0..50).collect();
        memo.count_within(PointId(3), &candidates, 0.4);
        assert_eq!((memo.hits(), memo.misses()), (0, 1));
        // Same pair, three other thresholds and the filter shape: all hits.
        memo.count_within(PointId(3), &candidates, 0.2);
        memo.count_within(PointId(3), &candidates, 0.1);
        let mut out = Vec::new();
        memo.neighbors_within(PointId(3), &candidates, 0.3, &mut out);
        assert_eq!((memo.hits(), memo.misses()), (3, 1));
        // Different vertex or candidate set: miss.
        memo.count_within(PointId(4), &candidates, 0.2);
        memo.count_within(PointId(3), &candidates[1..], 0.2);
        assert_eq!((memo.hits(), memo.misses()), (3, 3));
    }

    #[test]
    fn capacity_cap_flushes_but_stays_correct() {
        let m = space(40, 3);
        // Room for a single 40-distance vector: every new pair flushes.
        let memo = MemoizedSpace::with_capacity(&m, 40);
        let candidates: Vec<u32> = (0..40).collect();
        for v in 0..10u32 {
            let got = memo.count_within(PointId(v), &candidates, 0.6);
            let want = candidates
                .iter()
                .filter(|&&c| m.dist(PointId(v), PointId(c)) <= 0.6)
                .count();
            assert_eq!(got, want);
        }
        assert!(memo.flushes() > 0);
        // A vector larger than the whole cap is computed but never stored.
        let big = MemoizedSpace::with_capacity(&m, 8);
        big.count_within(PointId(0), &candidates, 0.6);
        big.count_within(PointId(0), &candidates, 0.6);
        assert_eq!(big.hits(), 0);
    }

    /// Satellite regression: counters across a forced epoch flush. A tiny
    /// cache serving a rotating set of pairs must miss on re-queries of
    /// evicted pairs, flush repeatedly, and keep every answer correct.
    #[test]
    fn epoch_flush_counter_regression() {
        let m = space(32, 11);
        let candidates: Vec<u32> = (0..32).collect();
        // Per-shard capacity = 512 / 16 = 32: room for exactly one
        // 32-distance vector per shard, so shards holding several of the
        // 32 pairs evict on every insert.
        let memo = MemoizedSpace::with_capacity(&m, 512);
        let want = |v: u32| {
            candidates
                .iter()
                .filter(|&&c| m.dist(PointId(v), PointId(c)) <= 0.7)
                .count()
        };
        for round in 0..3 {
            for v in 0..32u32 {
                assert_eq!(
                    memo.count_within(PointId(v), &candidates, 0.7),
                    want(v),
                    "round {round} vertex {v}"
                );
            }
        }
        // 32 distinct pairs over 16 shards of 1-vector effective capacity:
        // most re-queries evicted their predecessor, so misses dominate and
        // flushes accumulated; hits + misses always equals total queries.
        assert_eq!(memo.hits() + memo.misses(), 96);
        assert!(memo.flushes() > 0, "tiny cache must have flushed");
        assert!(memo.misses() > 32, "evicted pairs must re-miss");
    }

    /// Satellite regression: sorted companion rows are rebuilt after an
    /// eviction wiped them, and answers stay correct throughout.
    #[test]
    fn sorted_rows_rebuilt_after_eviction() {
        let m = space(64, 13);
        let candidates: Vec<u32> = (0..64).collect();
        // Per-shard capacity = 224: one 64-distance vector + its sorted
        // companion (64 + 32 words) + one bare evictor vector.
        let memo = MemoizedSpace::with_capacity(&m, 224 * MEMO_SHARDS);
        let want = |v: u32, tau: f64| {
            candidates
                .iter()
                .filter(|&&c| m.dist(PointId(v), PointId(c)) <= tau)
                .count()
        };
        // Two touches: second touch builds the sorted row.
        assert_eq!(
            memo.count_within(PointId(1), &candidates, 0.5),
            want(1, 0.5)
        );
        assert_eq!(
            memo.count_within(PointId(1), &candidates, 0.3),
            want(1, 0.3)
        );
        assert_eq!(memo.sorted_rows_built(), 1);
        // For a fixed candidate fingerprint, the shard hash reduces to
        // (v * mult) mod MEMO_SHARDS xor-ed with a constant, so with 16
        // shards vertices ≡ 1 (mod 16) deterministically share vertex 1's
        // shard. Two of them overflow the 224-word budget and flush it.
        let flushes_before = memo.flushes();
        memo.count_within(PointId(17), &candidates, 0.5);
        memo.count_within(PointId(33), &candidates, 0.5);
        assert!(memo.flushes() > flushes_before, "evictors must flush");
        // Re-touch vertex 1 twice: vector refills, sorted row rebuilds.
        let builds_before = memo.sorted_rows_built();
        assert_eq!(
            memo.count_within(PointId(1), &candidates, 0.5),
            want(1, 0.5)
        );
        assert_eq!(
            memo.count_within(PointId(1), &candidates, 0.2),
            want(1, 0.2)
        );
        assert!(
            memo.sorted_rows_built() > builds_before,
            "sorted row must be rebuilt after eviction"
        );
    }

    /// Satellite regression: `with_capacity(0)` never stores, never loops,
    /// and stays a correct pass-through.
    #[test]
    fn zero_capacity_is_a_pass_through() {
        let m = space(24, 5);
        let candidates: Vec<u32> = (0..24).collect();
        let memo = MemoizedSpace::with_capacity(&m, 0);
        for _ in 0..3 {
            assert_eq!(
                memo.count_within(PointId(0), &candidates, 0.6),
                m.count_within_taus(PointId(0), &candidates, &[0.6])[0]
            );
        }
        assert_eq!(memo.hits(), 0);
        assert_eq!(memo.misses(), 3);
        assert_eq!(memo.sorted_rows_built(), 0);
    }

    /// The sorted fast path and the scan answer identically for every
    /// query shape, including ties, τ = 0, and the multi-τ sweep.
    #[test]
    fn sorted_rows_answer_identically_to_scans() {
        let m = space(64, 17);
        let candidates: Vec<u32> = {
            let mut v: Vec<u32> = (0..64).collect();
            v.extend([0, 0, 31]); // duplicates exercise position mapping
            v
        };
        let sorted = MemoizedSpace::new(&m);
        let plain = MemoizedSpace::new(&m).without_sorted_rows();
        let taus: Vec<f64> = vec![-1.0, 0.0, 0.15, 0.3, 0.3, 0.6, 2.0];
        for v in [0u32, 5, 63] {
            // Touch twice so the sorted row exists for later probes.
            sorted.count_within(PointId(v), &candidates, 0.4);
            plain.count_within(PointId(v), &candidates, 0.4);
            for &tau in &taus {
                assert_eq!(
                    sorted.count_within(PointId(v), &candidates, tau),
                    plain.count_within(PointId(v), &candidates, tau),
                    "count v={v} tau={tau}"
                );
                let (mut a, mut b) = (Vec::new(), Vec::new());
                sorted.neighbors_within(PointId(v), &candidates, tau, &mut a);
                plain.neighbors_within(PointId(v), &candidates, tau, &mut b);
                assert_eq!(a, b, "neighbors v={v} tau={tau}");
            }
            assert_eq!(
                sorted.count_within_taus(PointId(v), &candidates, &taus),
                plain.count_within_taus(PointId(v), &candidates, &taus),
                "multi-τ counts v={v}"
            );
            assert_eq!(
                sorted.neighbors_within_taus(PointId(v), &candidates, &taus),
                plain.neighbors_within_taus(PointId(v), &candidates, &taus),
                "multi-τ lists v={v}"
            );
        }
        assert!(sorted.sorted_rows_built() > 0);
        assert_eq!(plain.sorted_rows_built(), 0);
    }

    /// `prewarm_taus` retrofits sorted rows onto already-cached entries
    /// and *only* those — fresh fills keep the second-touch trigger (an
    /// eager-on-store variant was a measured pipeline pessimization).
    /// Counters and answers are unchanged.
    #[test]
    fn prewarm_retrofits_cached_rows_only() {
        let m = space(40, 19);
        let candidates: Vec<u32> = (0..40).collect();
        let memo = MemoizedSpace::new(&m);
        memo.count_within(PointId(2), &candidates, 0.5); // cached, unsorted
        assert_eq!(memo.sorted_rows_built(), 0);
        let taus = [0.1, 0.2, 0.4, 0.8];
        memo.prewarm_taus(&taus);
        assert_eq!(memo.sorted_rows_built(), 1, "existing row retrofitted");
        memo.count_within(PointId(3), &candidates, 0.5); // fresh fill
        assert_eq!(memo.sorted_rows_built(), 1, "first touch must not sort");
        memo.count_within(PointId(3), &candidates, 0.3); // second touch
        assert_eq!(memo.sorted_rows_built(), 2, "reuse builds the companion");
        // A one-rung schedule is not worth sorting for.
        let single = MemoizedSpace::new(&m);
        single.count_within(PointId(2), &candidates, 0.5);
        single.prewarm_taus(&[0.5]);
        assert_eq!(single.sorted_rows_built(), 0);
        // Answers across the schedule match the inner metric exactly.
        for &tau in &taus {
            assert_eq!(
                memo.count_within(PointId(2), &candidates, tau),
                candidates
                    .iter()
                    .filter(|&&c| m.dist(PointId(2), PointId(c)) <= tau)
                    .count()
            );
        }
    }

    /// The acceptance criterion for the ladder memo: per-rung results and
    /// the full MPC ledger are identical with and without the memo, and a
    /// multi-τ sequence actually reuses cached work.
    #[test]
    fn memo_is_result_and_accounting_neutral_for_kbmis() {
        let n = 180;
        let metric = space(n, 7);
        let params = Params::practical(4, 0.1, 7);
        let alive = Partition::round_robin(n, 4).all_items().to_vec();
        let memo = MemoizedSpace::new(&metric);
        let mut hits_before = 0;
        for (rung, tau) in [0.35, 0.25, 0.18, 0.12].into_iter().enumerate() {
            let mut plain_cluster = Cluster::new(4, 7);
            let plain = k_bounded_mis(
                &mut plain_cluster,
                &metric,
                &alive,
                tau,
                6,
                n,
                &params,
                false,
            );
            let mut memo_cluster = Cluster::new(4, 7);
            let memod = k_bounded_mis(&mut memo_cluster, &memo, &alive, tau, 6, n, &params, false);
            assert_eq!(plain.set, memod.set, "rung {rung} (tau {tau})");
            assert_eq!(plain.outcome, memod.outcome);
            let (a, b) = (plain_cluster.ledger(), memo_cluster.ledger());
            assert_eq!(a.rounds(), b.rounds(), "rung {rung}: round counts");
            for (ra, rb) in a.records().iter().zip(b.records().iter()) {
                assert_eq!(ra.label, rb.label);
                assert_eq!(ra.per_machine, rb.per_machine, "round {}", ra.round);
            }
            if rung > 0 {
                assert!(
                    memo.hits() > hits_before,
                    "rung {rung} should reuse cached distance vectors"
                );
            }
            hits_before = memo.hits();
        }
    }
}
