//! τ-independent distance memo for the k-center ladder (Algorithm 5).
//!
//! The binary search of [`crate::kcenter::mpc_kcenter`] re-runs
//! [`crate::kbmis::k_bounded_mis`] at `O(log 1/ε)` rungs `τ_i` over the
//! *same* point set with the *same* per-machine RNG streams, so successive
//! rungs issue bulk threshold queries for identical `(vertex, candidate
//! set)` pairs — only the threshold changes. [`MemoizedSpace`] caches the
//! **distance vector** of each such pair once and answers every later
//! `count_within` / `neighbors_within` for any `τ` by comparing the cached
//! distances, turning `O(log 1/ε)` full distance passes into one.
//!
//! The memo is a *local compute* optimization and lives entirely outside
//! MPC accounting: it forwards [`MetricSpace::point_weight`] untouched and
//! never talks to the [`mpc_sim::Cluster`], so round and word counts are
//! bit-for-bit those of the unmemoized run (asserted by the tests below).

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use mpc_metric::{MetricSpace, PointId};

/// Default cap on cached distances (`f64`s): 2²² entries ≈ 32 MiB.
pub const DEFAULT_MEMO_CAPACITY: usize = 1 << 22;

/// FNV-1a over the candidate ids (length-prefixed). Two distinct candidate
/// sets colliding on both length and this 64-bit digest would silently
/// alias a cache entry; at the cache sizes involved (thousands of entries)
/// the collision probability is ≪ 2⁻⁴⁰, which we accept for an
/// accounting-invisible cache.
fn fingerprint(candidates: &[u32]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut eat = |x: u32| {
        for b in x.to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    };
    eat(candidates.len() as u32);
    for &c in candidates {
        eat(c);
    }
    h
}

#[derive(Default)]
struct MemoState {
    map: HashMap<(u32, u64), Arc<Vec<f64>>>,
    /// Total `f64`s held across all cached vectors.
    stored: usize,
    flushes: u64,
}

/// A [`MetricSpace`] adapter that memoizes the distance vectors behind the
/// bulk threshold kernels. See the module docs for when this pays off.
///
/// Scalar comparisons (`within`) and the bulk kernels both decide
/// adjacency as `dist(i, j) <= τ` on the *same* `dist` values, so the
/// wrapper is self-consistent across call shapes. Note the wrapped space's
/// own `within` may use an algebraically equal but floating-point-different
/// test (e.g. `EuclideanSpace` compares squared distances); the two can in
/// principle disagree within 1 ulp of a threshold boundary, which the
/// ladder's irrational rungs never hit in practice.
pub struct MemoizedSpace<'a, M: MetricSpace + ?Sized> {
    inner: &'a M,
    state: Mutex<MemoState>,
    hits: AtomicU64,
    misses: AtomicU64,
    capacity: usize,
}

impl<'a, M: MetricSpace + ?Sized> MemoizedSpace<'a, M> {
    /// Wraps `inner` with the default ≈32 MiB cache.
    pub fn new(inner: &'a M) -> Self {
        Self::with_capacity(inner, DEFAULT_MEMO_CAPACITY)
    }

    /// Wraps `inner`, capping the cache at `capacity` stored distances.
    /// When an insert would exceed the cap, the whole cache is flushed
    /// first (cheap epoch eviction — the ladder's access pattern has no
    /// useful LRU structure, it either reuses everything or nothing).
    pub fn with_capacity(inner: &'a M, capacity: usize) -> Self {
        Self {
            inner,
            state: Mutex::new(MemoState::default()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            capacity,
        }
    }

    /// The wrapped space.
    pub fn inner(&self) -> &'a M {
        self.inner
    }

    /// Bulk queries answered from cache.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Bulk queries that had to compute their distance vector.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Times the cache was flushed to respect the capacity cap.
    pub fn flushes(&self) -> u64 {
        self.state.lock().unwrap().flushes
    }

    /// Computes the distance vector for one missing query through the
    /// inner space's bulk [`MetricSpace::dists_into`] kernel — bit-identical
    /// to a per-pair `dist` loop by that method's contract, at every thread
    /// count by the chunked fill's determinism contract.
    fn fill_vector(&self, v: PointId, candidates: &[u32]) -> Arc<Vec<f64>> {
        let mut filled = Vec::new();
        self.inner.dists_into(v, candidates, &mut filled);
        Arc::new(filled)
    }

    /// Inserts a freshly computed vector, honoring the capacity cap with
    /// the epoch flush.
    fn store(&self, state: &mut MemoState, key: (u32, u64), d: &Arc<Vec<f64>>) {
        if state.stored + d.len() > self.capacity {
            state.map.clear();
            state.stored = 0;
            state.flushes += 1;
        }
        if d.len() <= self.capacity {
            state.stored += d.len();
            state.map.insert(key, Arc::clone(d));
        }
    }

    /// The distance vector from `v` to `candidates`, cached by
    /// `(v, fingerprint(candidates))` — deliberately *not* keyed by any
    /// threshold, so every ladder rung shares one entry.
    fn distances(&self, v: PointId, candidates: &[u32]) -> Arc<Vec<f64>> {
        let key = (v.0, fingerprint(candidates));
        {
            let state = self.state.lock().unwrap();
            if let Some(d) = state.map.get(&key) {
                self.hits.fetch_add(1, Ordering::Relaxed);
                return Arc::clone(d);
            }
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let d = self.fill_vector(v, candidates);
        self.store(&mut self.state.lock().unwrap(), key, &d);
        d
    }

    /// Multi-query twin of [`MemoizedSpace::distances`]: one distance
    /// vector per query in `vs`, against the shared `candidates`. Hits and
    /// misses are decided for the whole batch under one lock (duplicate
    /// missing queries collapse onto the first occurrence's fill and count
    /// as hits, mirroring the sequential loop); the missing vectors are
    /// then computed in one batched pass — fixed query chunks across the
    /// worker pool, each vector an independent deterministic fill — and
    /// inserted in first-occurrence order, so cache state, counters, and
    /// values are identical at every thread count.
    fn distances_many(&self, vs: &[u32], candidates: &[u32]) -> Vec<Arc<Vec<f64>>> {
        let fp = fingerprint(candidates);
        let mut rows: Vec<Option<Arc<Vec<f64>>>> = vec![None; vs.len()];
        // missing[i] = (first position, every position) of a distinct
        // missing vertex, in first-occurrence order.
        let mut missing: Vec<(u32, Vec<usize>)> = Vec::new();
        let mut hits = 0u64;
        {
            let state = self.state.lock().unwrap();
            for (i, &v) in vs.iter().enumerate() {
                if let Some(d) = state.map.get(&(v, fp)) {
                    hits += 1;
                    rows[i] = Some(Arc::clone(d));
                } else if let Some(entry) = missing.iter_mut().find(|(u, _)| *u == v) {
                    hits += 1;
                    entry.1.push(i);
                } else {
                    missing.push((v, vec![i]));
                }
            }
        }
        self.hits.fetch_add(hits, Ordering::Relaxed);
        self.misses
            .fetch_add(missing.len() as u64, Ordering::Relaxed);
        if !missing.is_empty() {
            let filled: Vec<Arc<Vec<f64>>> =
                if mpc_metric::par_bulk_pairs(missing.len(), candidates.len()) {
                    use rayon::prelude::*;
                    let chunk = missing.len().div_ceil(rayon::pool::MAX_CHUNKS).max(1);
                    missing
                        .par_chunks(chunk)
                        .map(|part| {
                            part.iter()
                                .map(|&(v, _)| self.fill_vector(PointId(v), candidates))
                                .collect::<Vec<_>>()
                        })
                        .collect::<Vec<_>>()
                        .concat()
                } else {
                    missing
                        .iter()
                        .map(|&(v, _)| self.fill_vector(PointId(v), candidates))
                        .collect()
                };
            let mut state = self.state.lock().unwrap();
            for ((v, positions), d) in missing.iter().zip(&filled) {
                self.store(&mut state, (*v, fp), d);
                for &i in positions {
                    rows[i] = Some(Arc::clone(d));
                }
            }
        }
        rows.into_iter().map(|r| r.expect("row filled")).collect()
    }
}

impl<M: MetricSpace + ?Sized> MetricSpace for MemoizedSpace<'_, M> {
    fn n(&self) -> usize {
        self.inner.n()
    }

    fn dist(&self, i: PointId, j: PointId) -> f64 {
        self.inner.dist(i, j)
    }

    fn point_weight(&self) -> u64 {
        self.inner.point_weight()
    }

    fn within(&self, i: PointId, j: PointId, tau: f64) -> bool {
        // `dist`-based on purpose: matches how the cached vectors are
        // compared below, keeping scalar and bulk answers identical.
        self.inner.dist(i, j) <= tau
    }

    fn count_within(&self, v: PointId, candidates: &[u32], tau: f64) -> usize {
        self.distances(v, candidates)
            .iter()
            .filter(|&&d| d <= tau)
            .count()
    }

    fn neighbors_within(&self, v: PointId, candidates: &[u32], tau: f64, out: &mut Vec<u32>) {
        let d = self.distances(v, candidates);
        out.clear();
        out.extend(
            candidates
                .iter()
                .zip(d.iter())
                .filter(|&(_, &d)| d <= tau)
                .map(|(&c, _)| c),
        );
    }

    /// Answers the whole batch from [`MemoizedSpace::distances_many`]:
    /// cached vectors are compared against `tau` directly, and the misses
    /// were filled in one batched pass instead of one fill per query.
    fn count_within_many(&self, vs: &[u32], candidates: &[u32], tau: f64) -> Vec<usize> {
        self.distances_many(vs, candidates)
            .into_iter()
            .map(|d| d.iter().filter(|&&d| d <= tau).count())
            .collect()
    }

    /// See [`MemoizedSpace::count_within_many`] on this impl.
    fn neighbors_within_many(&self, vs: &[u32], candidates: &[u32], tau: f64) -> Vec<Vec<u32>> {
        self.distances_many(vs, candidates)
            .into_iter()
            .map(|d| {
                candidates
                    .iter()
                    .zip(d.iter())
                    .filter(|&(_, &d)| d <= tau)
                    .map(|(&c, _)| c)
                    .collect()
            })
            .collect()
    }

    /// Raw distance fills bypass the memo (they are not keyed by a reusable
    /// `(vertex, candidate-set)` bulk query) and forward to the inner
    /// space's exact bulk kernel.
    fn dists_into(&self, v: PointId, candidates: &[u32], out: &mut Vec<f64>) {
        self.inner.dists_into(v, candidates, out)
    }

    fn dist_to_set(&self, p: PointId, set: &[PointId]) -> f64 {
        self.inner.dist_to_set(p, set)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kbmis::k_bounded_mis;
    use crate::params::Params;
    use mpc_metric::{datasets, EuclideanSpace};
    use mpc_sim::{Cluster, Partition};

    fn space(n: usize, seed: u64) -> EuclideanSpace {
        EuclideanSpace::new(datasets::uniform_cube(n, 3, seed))
    }

    #[test]
    fn bulk_answers_match_scalar_dist_filter() {
        let m = space(60, 1);
        let memo = MemoizedSpace::new(&m);
        let candidates: Vec<u32> = (0..60).step_by(2).collect();
        for v in [0u32, 7, 59] {
            for tau in [0.0, 0.2, 0.5, 2.0] {
                let want: Vec<u32> = candidates
                    .iter()
                    .copied()
                    .filter(|&c| m.dist(PointId(v), PointId(c)) <= tau)
                    .collect();
                assert_eq!(memo.count_within(PointId(v), &candidates, tau), want.len());
                let mut got = Vec::new();
                memo.neighbors_within(PointId(v), &candidates, tau, &mut got);
                assert_eq!(got, want);
            }
        }
    }

    #[test]
    fn reuse_across_thresholds_hits_the_cache() {
        let m = space(50, 2);
        let memo = MemoizedSpace::new(&m);
        let candidates: Vec<u32> = (0..50).collect();
        memo.count_within(PointId(3), &candidates, 0.4);
        assert_eq!((memo.hits(), memo.misses()), (0, 1));
        // Same pair, three other thresholds and the filter shape: all hits.
        memo.count_within(PointId(3), &candidates, 0.2);
        memo.count_within(PointId(3), &candidates, 0.1);
        let mut out = Vec::new();
        memo.neighbors_within(PointId(3), &candidates, 0.3, &mut out);
        assert_eq!((memo.hits(), memo.misses()), (3, 1));
        // Different vertex or candidate set: miss.
        memo.count_within(PointId(4), &candidates, 0.2);
        memo.count_within(PointId(3), &candidates[1..], 0.2);
        assert_eq!((memo.hits(), memo.misses()), (3, 3));
    }

    #[test]
    fn capacity_cap_flushes_but_stays_correct() {
        let m = space(40, 3);
        // Room for a single 40-distance vector: every new pair flushes.
        let memo = MemoizedSpace::with_capacity(&m, 40);
        let candidates: Vec<u32> = (0..40).collect();
        for v in 0..10u32 {
            let got = memo.count_within(PointId(v), &candidates, 0.6);
            let want = candidates
                .iter()
                .filter(|&&c| m.dist(PointId(v), PointId(c)) <= 0.6)
                .count();
            assert_eq!(got, want);
        }
        assert!(memo.flushes() > 0);
        // A vector larger than the whole cap is computed but never stored.
        let big = MemoizedSpace::with_capacity(&m, 8);
        big.count_within(PointId(0), &candidates, 0.6);
        big.count_within(PointId(0), &candidates, 0.6);
        assert_eq!(big.hits(), 0);
    }

    /// The acceptance criterion for the ladder memo: per-rung results and
    /// the full MPC ledger are identical with and without the memo, and a
    /// multi-τ sequence actually reuses cached work.
    #[test]
    fn memo_is_result_and_accounting_neutral_for_kbmis() {
        let n = 180;
        let metric = space(n, 7);
        let params = Params::practical(4, 0.1, 7);
        let alive = Partition::round_robin(n, 4).all_items().to_vec();
        let memo = MemoizedSpace::new(&metric);
        let mut hits_before = 0;
        for (rung, tau) in [0.35, 0.25, 0.18, 0.12].into_iter().enumerate() {
            let mut plain_cluster = Cluster::new(4, 7);
            let plain = k_bounded_mis(
                &mut plain_cluster,
                &metric,
                &alive,
                tau,
                6,
                n,
                &params,
                false,
            );
            let mut memo_cluster = Cluster::new(4, 7);
            let memod = k_bounded_mis(&mut memo_cluster, &memo, &alive, tau, 6, n, &params, false);
            assert_eq!(plain.set, memod.set, "rung {rung} (tau {tau})");
            assert_eq!(plain.outcome, memod.outcome);
            let (a, b) = (plain_cluster.ledger(), memo_cluster.ledger());
            assert_eq!(a.rounds(), b.rounds(), "rung {rung}: round counts");
            for (ra, rb) in a.records().iter().zip(b.records().iter()) {
                assert_eq!(ra.label, rb.label);
                assert_eq!(ra.per_machine, rb.per_machine, "round {}", ra.round);
            }
            if rung > 0 {
                assert!(
                    memo.hits() > hits_before,
                    "rung {rung} should reuse cached distance vectors"
                );
            }
            hits_before = memo.hits();
        }
    }
}
