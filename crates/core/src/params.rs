//! Tunable parameters shared by all of the paper's algorithms.

use mpc_graph::mis::TieBreak;
use mpc_sim::Partition;

/// How the threshold-ladder boundary index is located in Algorithms 2, 5
/// and 6 (design decision D4).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BoundarySearch {
    /// Binary search over the ladder — `O(log t)` k-bounded-MIS runs, the
    /// paper's `O(log 1/ε)` round bound.
    Binary,
    /// Linear scan — `O(t)` runs; used by the E10 ablation and as a
    /// belt-and-braces mode when predicate monotonicity is in doubt.
    Linear,
}

/// How the input points are initially distributed over machines.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PartitionStrategy {
    /// Point `i` on machine `i mod m`.
    RoundRobin,
    /// Contiguous blocks in input order.
    Contiguous,
    /// Uniformly random machine per point.
    Random,
    /// Power-law skew with the given exponent (design decision D6).
    Skewed(f64),
}

impl PartitionStrategy {
    /// Materializes the strategy for `n` items over `m` machines.
    pub fn build(&self, n: usize, m: usize, seed: u64) -> Partition {
        match *self {
            Self::RoundRobin => Partition::round_robin(n, m),
            Self::Contiguous => Partition::contiguous(n, m),
            Self::Random => Partition::random(n, m, seed),
            Self::Skewed(alpha) => Partition::skewed(n, m, alpha, seed),
        }
    }
}

/// Parameters of the MPC algorithms.
///
/// Two presets are provided. [`Params::theory`] uses the constants under
/// which the paper's with-high-probability lemmas are proven (`δ ≥ 12/ε²`,
/// Lemmas 5–8) — correct but so conservative that the heavy/light split
/// never engages at laptop scale. [`Params::practical`] keeps every
/// *deterministic* guarantee (outputs are always valid k-bounded MISes /
/// clusterings) while using small constants, so the probabilistic round and
/// communication bounds become measured quantities instead of certainties;
/// the ledger records any budget breaches. See DESIGN.md §2.
#[derive(Debug, Clone)]
pub struct Params {
    /// Number of machines `m` (the paper takes `m = n^γ`).
    pub m: usize,
    /// Approximation slack `ε > 0` of the top-level algorithms.
    pub epsilon: f64,
    /// Precision of the degree approximation; the paper fixes `1/6` for the
    /// Algorithm 4 analysis (§5).
    pub deg_epsilon: f64,
    /// The `δ` constant of Algorithm 3 (heavy/light threshold `δ ln n`).
    pub delta: f64,
    /// Multiplier in Algorithm 4's pruning trigger `Σ 1/(2 p_v) > C·k·ln n`
    /// (the paper uses `C = 10`).
    pub pruning_factor: f64,
    /// Whether Algorithm 4's pruning step is enabled (ablation D2).
    pub enable_pruning: bool,
    /// Tie-breaking rule for `trim` (ablation D1).
    pub tie_break: TieBreak,
    /// Boundary search mode for the threshold ladder (ablation D4).
    pub boundary_search: BoundarySearch,
    /// Initial distribution of points over machines (ablation D6).
    pub partition: PartitionStrategy,
    /// RNG seed for all sampling.
    pub seed: u64,
    /// Optional per-round per-machine communication budget in words;
    /// breaches are recorded on the ledger, never fatal.
    pub budget_words: Option<u64>,
    /// When true, use exact degrees instead of Algorithm 3 (ablation D3).
    pub exact_degrees: bool,
}

impl Params {
    /// Practical preset: small constants, deterministic validity, measured
    /// probabilistic behaviour. This is what the experiments run.
    pub fn practical(m: usize, epsilon: f64, seed: u64) -> Self {
        assert!(m >= 1, "need at least one machine");
        assert!(
            epsilon > 0.0 && epsilon.is_finite(),
            "epsilon must be positive and finite"
        );
        Self {
            m,
            epsilon,
            deg_epsilon: 1.0 / 6.0,
            delta: 2.0,
            pruning_factor: 10.0,
            enable_pruning: true,
            tie_break: TieBreak::ById,
            boundary_search: BoundarySearch::Binary,
            partition: PartitionStrategy::RoundRobin,
            seed,
            budget_words: None,
            exact_degrees: false,
        }
    }

    /// Paper-constant preset: `δ = max(18, 12/ε_deg²)` so Lemmas 5–8 hold
    /// w.h.p. (δ = 432 at the paper's `ε_deg = 1/6`).
    pub fn theory(m: usize, epsilon: f64, seed: u64) -> Self {
        let mut p = Self::practical(m, epsilon, seed);
        p.delta = (12.0 / (p.deg_epsilon * p.deg_epsilon)).max(18.0);
        p.tie_break = TieBreak::Strict;
        p
    }

    /// Validates field combinations reachable through direct mutation.
    /// Called by the algorithms on entry (cheap).
    pub fn validate(&self) {
        assert!(self.m >= 1, "need at least one machine");
        assert!(
            self.epsilon > 0.0 && self.epsilon.is_finite(),
            "bad epsilon"
        );
        assert!(
            self.deg_epsilon > 0.0 && self.deg_epsilon < 1.0,
            "degree-approximation precision must lie in (0, 1)"
        );
        assert!(self.delta > 0.0, "delta must be positive");
        assert!(self.pruning_factor > 0.0, "pruning factor must be positive");
    }

    /// The ladder length `t = ⌈log_{1+ε} c⌉ + extra` used by the top-level
    /// algorithms (c = 4 for diversity/k-center, 9 for k-supplier).
    pub fn ladder_len(&self, c: f64, extra: usize) -> usize {
        assert!(c > 1.0);
        ((c.ln() / (1.0 + self.epsilon).ln()).ceil() as usize) + extra
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_differ_in_delta() {
        let p = Params::practical(8, 0.1, 1);
        let t = Params::theory(8, 0.1, 1);
        assert_eq!(p.delta, 2.0);
        assert_eq!(t.delta, 432.0);
        assert_eq!(t.tie_break, TieBreak::Strict);
    }

    #[test]
    fn ladder_covers_the_constant() {
        let p = Params::practical(4, 0.1, 0);
        let t = p.ladder_len(4.0, 1);
        // (1+eps)^(t-1) must reach 4.
        assert!((1.1f64).powi(t as i32 - 1) >= 4.0);
        // And the ladder is not absurdly long.
        assert!((t as f64) <= 4.0f64.ln() / 1.1f64.ln() + 2.0);
    }

    #[test]
    fn partition_strategies_build() {
        for s in [
            PartitionStrategy::RoundRobin,
            PartitionStrategy::Contiguous,
            PartitionStrategy::Random,
            PartitionStrategy::Skewed(1.5),
        ] {
            let p = s.build(100, 5, 3);
            assert_eq!(p.n(), 100);
            assert_eq!(p.m(), 5);
        }
    }

    #[test]
    #[should_panic(expected = "epsilon")]
    fn rejects_nonpositive_epsilon() {
        Params::practical(4, 0.0, 0);
    }

    #[test]
    fn validate_accepts_presets() {
        Params::practical(4, 0.1, 0).validate();
        Params::theory(4, 0.1, 0).validate();
    }

    #[test]
    #[should_panic(expected = "delta")]
    fn validate_rejects_bad_delta() {
        let mut p = Params::practical(4, 0.1, 0);
        p.delta = -1.0;
        p.validate();
    }

    #[test]
    #[should_panic(expected = "precision")]
    fn validate_rejects_bad_deg_epsilon() {
        let mut p = Params::practical(4, 0.1, 0);
        p.deg_epsilon = 1.5;
        p.validate();
    }
}
