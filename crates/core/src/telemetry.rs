//! Execution summaries extracted from the simulator ledger.

use mpc_sim::Ledger;

/// Summary of one MPC execution — the measured counterparts of the paper's
/// claimed complexities (rounds, `Õ(mk)` communication per machine).
#[derive(Debug, Clone)]
pub struct Telemetry {
    /// MPC rounds consumed.
    pub rounds: u64,
    /// Largest per-machine traffic in any single round (the MPC constraint).
    pub max_machine_words_per_round: u64,
    /// Largest total traffic through any one machine over the whole run —
    /// the paper's communication-per-machine measure.
    pub max_machine_words: u64,
    /// Total words moved across all machines and rounds.
    pub total_words: u64,
    /// Number of recorded communication-budget violations.
    pub violations: usize,
    /// Largest peak resident memory noted on any machine (words) — the
    /// paper's `Õ(n/m + mk)` memory measure.
    pub max_machine_memory: u64,
}

impl Telemetry {
    /// Summarizes a ledger.
    pub fn from_ledger(ledger: &Ledger) -> Self {
        Self {
            rounds: ledger.rounds(),
            max_machine_words_per_round: ledger.max_machine_words_per_round(),
            max_machine_words: ledger.max_machine_words(),
            total_words: ledger.total_words(),
            violations: ledger.violations().len(),
            max_machine_memory: ledger.max_machine_memory(),
        }
    }

    /// The all-zero telemetry of a purely sequential execution.
    pub fn zero() -> Self {
        Self {
            rounds: 0,
            max_machine_words_per_round: 0,
            max_machine_words: 0,
            total_words: 0,
            violations: 0,
            max_machine_memory: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpc_sim::MachineIo;

    #[test]
    fn summarizes_ledger() {
        let mut l = Ledger::new(2);
        l.record_round(
            "a",
            vec![
                MachineIo {
                    sent: 4,
                    received: 0,
                },
                MachineIo {
                    sent: 0,
                    received: 4,
                },
            ],
        );
        let t = Telemetry::from_ledger(&l);
        assert_eq!(t.rounds, 1);
        assert_eq!(t.max_machine_words_per_round, 4);
        assert_eq!(t.max_machine_words, 4);
        assert_eq!(t.total_words, 4);
        assert_eq!(t.violations, 0);
    }
}
