//! Execution summaries extracted from the simulator ledger.

use mpc_metric::KernelStats;
use mpc_sim::{Ledger, WireSummary};

use crate::memo::MemoStats;

/// Coarse wall-clock phase breakdown of one end-to-end run, in seconds:
/// the coarse estimate (GMM coresets + covering radius), the τ-ladder
/// boundary search, and the finalization step (realized radius /
/// assignment). Wall-clock only — host- and thread-count-dependent, and
/// deliberately **not** part of any determinism or neutrality contract
/// (those pin the ledger, which has no time dimension).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct PhaseTimes {
    /// Coarse estimate: coreset construction and the first covering radius.
    pub coarse_s: f64,
    /// The τ-ladder boundary search (every rung evaluation).
    pub ladder_s: f64,
    /// Finalization: realized radius / final assignment after the search.
    pub finalize_s: f64,
}

impl PhaseTimes {
    /// Total tracked wall-clock time.
    pub fn total_s(&self) -> f64 {
        self.coarse_s + self.ladder_s + self.finalize_s
    }
}

/// Summary of one MPC execution — the measured counterparts of the paper's
/// claimed complexities (rounds, `Õ(mk)` communication per machine).
#[derive(Debug, Clone)]
pub struct Telemetry {
    /// MPC rounds consumed.
    pub rounds: u64,
    /// Largest per-machine traffic in any single round (the MPC constraint).
    pub max_machine_words_per_round: u64,
    /// Largest total traffic through any one machine over the whole run —
    /// the paper's communication-per-machine measure.
    pub max_machine_words: u64,
    /// Total words moved across all machines and rounds.
    pub total_words: u64,
    /// Number of recorded communication-budget violations.
    pub violations: usize,
    /// Largest peak resident memory noted on any machine (words) — the
    /// paper's `Õ(n/m + mk)` memory measure.
    pub max_machine_memory: u64,
    /// Wall-clock phase breakdown (zeroed until the driver stamps it).
    pub phases: PhaseTimes,
    /// Ladder rungs actually evaluated (MPC work done) by the boundary
    /// search; 0 for runs without a ladder.
    pub ladder_evals: u64,
    /// Accept-predicate probes issued by the boundary search, including
    /// rung-cache hits; 0 for runs without a ladder.
    pub ladder_probes: u64,
    /// Distance-memo cache snapshot taken when the ladder finished; `None`
    /// for runs without a ladder. Local-compute observability only — the
    /// memo never touches the ledger.
    pub memo: Option<MemoStats>,
    /// Metric-space fast-path kernel tallies snapshotted when the run
    /// finished; `None` when the space keeps none (exact tier, or a
    /// non-SIMD space). Cumulative per space, so a run's own hits are the
    /// delta against a snapshot taken at its start. Local-compute
    /// observability only, like `memo`.
    pub kernels: Option<KernelStats>,
    /// Transport wire measurements: per-run byte totals plus
    /// encode/decode/transit wall-clock, stamped by drivers from
    /// [`mpc_sim::Cluster::wire_summary`]. `None` on the `sim` backend,
    /// which moves no bytes. Like `phases`, the time fields are host
    /// wall-clock and outside every determinism contract; the byte fields
    /// equal `8 ×` the corresponding ledger words when conformant.
    pub wire: Option<WireSummary>,
}

impl Telemetry {
    /// Summarizes a ledger.
    pub fn from_ledger(ledger: &Ledger) -> Self {
        Self {
            rounds: ledger.rounds(),
            max_machine_words_per_round: ledger.max_machine_words_per_round(),
            max_machine_words: ledger.max_machine_words(),
            total_words: ledger.total_words(),
            violations: ledger.violations().len(),
            max_machine_memory: ledger.max_machine_memory(),
            phases: PhaseTimes::default(),
            ladder_evals: 0,
            ladder_probes: 0,
            memo: None,
            kernels: None,
            wire: None,
        }
    }

    /// The all-zero telemetry of a purely sequential execution.
    pub fn zero() -> Self {
        Self {
            rounds: 0,
            max_machine_words_per_round: 0,
            max_machine_words: 0,
            total_words: 0,
            violations: 0,
            max_machine_memory: 0,
            phases: PhaseTimes::default(),
            ladder_evals: 0,
            ladder_probes: 0,
            memo: None,
            kernels: None,
            wire: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpc_sim::MachineIo;

    #[test]
    fn summarizes_ledger() {
        let mut l = Ledger::new(2);
        l.record_round(
            "a",
            vec![
                MachineIo {
                    sent: 4,
                    received: 0,
                },
                MachineIo {
                    sent: 0,
                    received: 4,
                },
            ],
        );
        let t = Telemetry::from_ledger(&l);
        assert_eq!(t.rounds, 1);
        assert_eq!(t.max_machine_words_per_round, 4);
        assert_eq!(t.max_machine_words, 4);
        assert_eq!(t.total_words, 4);
        assert_eq!(t.violations, 0);
    }
}
