//! Independent verification of algorithm outputs — for downstream users
//! who want to check a result against the problem definition without
//! trusting this library's internals (and for the test suites, which do
//! exactly that).

use mpc_graph::{verify::is_k_bounded_mis, ThresholdGraph};
use mpc_metric::{dist_point_to_set, min_pairwise_distance, MetricSpace, PointId};

use crate::diversity::DiversityResult;
use crate::kcenter::KCenterResult;
use crate::ksupplier::KSupplierResult;

/// A verification failure, naming the violated property.
#[derive(Debug, Clone, PartialEq)]
pub enum VerifyError {
    /// The solution has the wrong number of elements.
    WrongSize { expected: usize, got: usize },
    /// A reported objective value does not match the solution.
    ObjectiveMismatch { reported: f64, actual: f64 },
    /// An element is outside its allowed ground set.
    NotInGroundSet(PointId),
    /// Elements are not distinct.
    Duplicates,
    /// The k-bounded MIS definition is violated.
    NotKBoundedMis,
}

impl std::fmt::Display for VerifyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::WrongSize { expected, got } => {
                write!(
                    f,
                    "solution has {got} elements, expected at most {expected}"
                )
            }
            Self::ObjectiveMismatch { reported, actual } => {
                write!(
                    f,
                    "reported objective {reported} but solution realizes {actual}"
                )
            }
            Self::NotInGroundSet(p) => write!(f, "{p} is outside the allowed ground set"),
            Self::Duplicates => write!(f, "solution contains duplicate points"),
            Self::NotKBoundedMis => write!(f, "set violates the k-bounded MIS definition"),
        }
    }
}

impl std::error::Error for VerifyError {}

const TOL: f64 = 1e-9;

fn check_distinct(ids: &[PointId]) -> Result<(), VerifyError> {
    let mut seen: Vec<u32> = ids.iter().map(|p| p.0).collect();
    seen.sort_unstable();
    let before = seen.len();
    seen.dedup();
    if seen.len() != before {
        return Err(VerifyError::Duplicates);
    }
    Ok(())
}

/// Checks a k-center result: ≤ k distinct centers drawn from the input,
/// and the reported radius equals the realized covering radius.
pub fn check_kcenter<M: MetricSpace + ?Sized>(
    metric: &M,
    k: usize,
    result: &KCenterResult,
) -> Result<(), VerifyError> {
    if result.centers.len() > k {
        return Err(VerifyError::WrongSize {
            expected: k,
            got: result.centers.len(),
        });
    }
    check_distinct(&result.centers)?;
    for c in &result.centers {
        if c.idx() >= metric.n() {
            return Err(VerifyError::NotInGroundSet(*c));
        }
    }
    let actual = (0..metric.n() as u32)
        .map(|v| dist_point_to_set(metric, PointId(v), &result.centers))
        .fold(0.0f64, f64::max);
    if (actual - result.radius).abs() > TOL * (1.0 + actual.abs()) {
        return Err(VerifyError::ObjectiveMismatch {
            reported: result.radius,
            actual,
        });
    }
    Ok(())
}

/// Checks a diversity result: `min(k, n)` distinct points and a truthful
/// diversity value.
pub fn check_diversity<M: MetricSpace + ?Sized>(
    metric: &M,
    k: usize,
    result: &DiversityResult,
) -> Result<(), VerifyError> {
    let expected = k.min(metric.n());
    if result.subset.len() != expected {
        return Err(VerifyError::WrongSize {
            expected,
            got: result.subset.len(),
        });
    }
    check_distinct(&result.subset)?;
    for p in &result.subset {
        if p.idx() >= metric.n() {
            return Err(VerifyError::NotInGroundSet(*p));
        }
    }
    let actual = min_pairwise_distance(metric, &result.subset);
    let matches = if actual.is_finite() {
        (actual - result.diversity).abs() <= TOL * (1.0 + actual.abs())
    } else {
        !result.diversity.is_finite()
    };
    if !matches {
        return Err(VerifyError::ObjectiveMismatch {
            reported: result.diversity,
            actual,
        });
    }
    Ok(())
}

/// Checks a k-supplier result: ≤ k distinct suppliers from the supplier
/// ground set, radius realized over the customers.
pub fn check_ksupplier<M: MetricSpace + ?Sized>(
    metric: &M,
    customers: &[u32],
    suppliers: &[u32],
    k: usize,
    result: &KSupplierResult,
) -> Result<(), VerifyError> {
    if result.suppliers.len() > k {
        return Err(VerifyError::WrongSize {
            expected: k,
            got: result.suppliers.len(),
        });
    }
    check_distinct(&result.suppliers)?;
    for s in &result.suppliers {
        if !suppliers.contains(&s.0) {
            return Err(VerifyError::NotInGroundSet(*s));
        }
    }
    let actual = customers
        .iter()
        .map(|&c| dist_point_to_set(metric, PointId(c), &result.suppliers))
        .fold(0.0f64, f64::max);
    if (actual - result.radius).abs() > TOL * (1.0 + actual.abs()) {
        return Err(VerifyError::ObjectiveMismatch {
            reported: result.radius,
            actual,
        });
    }
    Ok(())
}

/// Checks a raw k-bounded MIS against Definition 1 over the full vertex
/// set of `G_tau`.
pub fn check_k_bounded_mis<M: MetricSpace + ?Sized>(
    metric: &M,
    tau: f64,
    k: usize,
    set: &[u32],
) -> Result<(), VerifyError> {
    let g = ThresholdGraph::new(metric, tau);
    let universe: Vec<u32> = (0..metric.n() as u32).collect();
    if is_k_bounded_mis(&g, set, &universe, k) {
        Ok(())
    } else {
        Err(VerifyError::NotKBoundedMis)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diversity::mpc_diversity;
    use crate::kcenter::mpc_kcenter;
    use crate::ksupplier::mpc_ksupplier;
    use crate::Params;
    use mpc_metric::{datasets, EuclideanSpace};

    #[test]
    fn real_results_verify() {
        let metric = EuclideanSpace::new(datasets::uniform_cube(100, 2, 3));
        let params = Params::practical(3, 0.1, 3);
        let kc = mpc_kcenter(&metric, 5, &params);
        assert_eq!(check_kcenter(&metric, 5, &kc), Ok(()));
        let dv = mpc_diversity(&metric, 5, &params);
        assert_eq!(check_diversity(&metric, 5, &dv), Ok(()));
        let customers: Vec<u32> = (0..70).collect();
        let suppliers: Vec<u32> = (70..100).collect();
        let ks = mpc_ksupplier(&metric, &customers, &suppliers, 4, &params);
        assert_eq!(
            check_ksupplier(&metric, &customers, &suppliers, 4, &ks),
            Ok(())
        );
    }

    #[test]
    fn tampered_results_are_caught() {
        let metric = EuclideanSpace::new(datasets::uniform_cube(50, 2, 7));
        let params = Params::practical(2, 0.1, 7);
        let mut kc = mpc_kcenter(&metric, 4, &params);

        let honest_radius = kc.radius;
        kc.radius = honest_radius / 2.0;
        assert!(matches!(
            check_kcenter(&metric, 4, &kc),
            Err(VerifyError::ObjectiveMismatch { .. })
        ));
        kc.radius = honest_radius;
        kc.centers.push(kc.centers[0]);
        assert!(matches!(
            check_kcenter(&metric, 8, &kc),
            Err(VerifyError::Duplicates)
        ));
        kc.centers.pop();
        kc.centers.push(PointId(9999));
        assert!(matches!(
            check_kcenter(&metric, 8, &kc),
            Err(VerifyError::NotInGroundSet(_))
        ));

        let mut dv = mpc_diversity(&metric, 4, &params);
        dv.diversity *= 2.0;
        assert!(matches!(
            check_diversity(&metric, 4, &dv),
            Err(VerifyError::ObjectiveMismatch { .. })
        ));
    }

    #[test]
    fn size_violations_are_caught() {
        let metric = EuclideanSpace::new(datasets::uniform_cube(50, 2, 9));
        let params = Params::practical(2, 0.1, 9);
        let kc = mpc_kcenter(&metric, 5, &params);
        assert!(matches!(
            check_kcenter(&metric, 2, &kc),
            Err(VerifyError::WrongSize { .. })
        ));
    }

    #[test]
    fn mis_check_agrees_with_algorithm() {
        use mpc_sim::{Cluster, Partition};
        let metric = EuclideanSpace::new(datasets::uniform_cube(80, 2, 11));
        let params = Params::practical(2, 0.1, 11);
        let mut cluster = Cluster::new(2, 11);
        let alive = Partition::round_robin(80, 2).all_items().to_vec();
        let res =
            crate::kbmis::k_bounded_mis(&mut cluster, &metric, &alive, 0.2, 6, 80, &params, false);
        assert_eq!(check_k_bounded_mis(&metric, 0.2, 6, &res.set), Ok(()));
        // A non-maximal strict subset of size < k must fail.
        if res.set.len() >= 2 {
            assert_eq!(
                check_k_bounded_mis(&metric, 0.2, 6, &res.set[..1]),
                Err(VerifyError::NotKBoundedMis)
            );
        }
    }
}
