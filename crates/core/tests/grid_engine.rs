//! Cross-engine contract for the grid k-center engine: on any Euclidean
//! input the grid ladder must stay within Algorithm 5's approximation
//! factor of the all-pairs ladder (both are `2(1+ε)`-approximations, so
//! each is within `2(1+ε)` of the other and of the sequential Gonzalez
//! radius), and — like everything else in this repo — must be
//! bit-identical across worker-pool widths.

use mpc_core::grid::{grid_k_bounded_mis, mpc_kcenter_grid, mpc_kcenter_grid_on};
use mpc_core::kcenter::{mpc_kcenter, sequential_gmm_kcenter};
use mpc_core::Params;
use mpc_metric::{
    datasets, dist_point_to_set, EuclideanSpace, KernelStats, MetricSpace, PointId, PointSet,
};
use mpc_sim::Cluster;
use proptest::prelude::*;
use rayon::with_threads;

const THREAD_COUNTS: [usize; 3] = [1, 2, 8];

/// Both engines carry the same guarantee chain: `radius ∈ [r*, 2(1+ε)r*]`
/// for either engine and `seq.radius ∈ [r*, 2r*]`, so the grid radius is
/// at most `2(1+ε)` times either reference (and exact on its own centers).
fn check_guarantee(space: &EuclideanSpace, k: usize, params: &Params) {
    let grid = mpc_kcenter_grid(space, k, params);
    assert!(grid.centers.len() <= k);
    let factor = 2.0 * (1.0 + params.epsilon);
    let seq = sequential_gmm_kcenter(space, k);
    assert!(
        grid.radius <= factor * seq.radius + 1e-9,
        "grid {} vs sequential {}",
        grid.radius,
        seq.radius
    );
    let all = mpc_kcenter(space, k, params);
    assert!(
        grid.radius <= factor * all.radius + 1e-9,
        "grid {} vs all-pairs {}",
        grid.radius,
        all.radius
    );
    let realized = (0..space.n() as u32)
        .map(|v| dist_point_to_set(space, PointId(v), &grid.centers))
        .fold(0.0f64, f64::max);
    assert!(
        (grid.radius - realized).abs() < 1e-9,
        "reported radius must be the realized radius"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn grid_radius_within_factor_on_clusters(
        n in 80usize..400,
        dim in 2usize..5,
        k in 2usize..8,
        seed in 0u64..1000,
    ) {
        let space =
            EuclideanSpace::new(datasets::gaussian_clusters(n, dim, k, 0.05, seed));
        check_guarantee(&space, k, &Params::practical(4, 0.1, seed));
    }

    #[test]
    fn grid_radius_within_factor_on_uniform(
        n in 60usize..300,
        dim in 2usize..4,
        k in 1usize..7,
        seed in 0u64..1000,
    ) {
        let space = EuclideanSpace::new(datasets::uniform_cube(n, dim, seed));
        check_guarantee(&space, k, &Params::practical(3, 0.15, seed));
    }
}

#[test]
fn duplicate_heavy_input() {
    // 3 distinct locations, each repeated 40 times: optimum 0 at k = 3.
    let rows: Vec<Vec<f64>> = (0..120).map(|i| vec![(i % 3) as f64, 1.0]).collect();
    let space = EuclideanSpace::new(PointSet::from_rows(&rows));
    let res = mpc_kcenter_grid(&space, 3, &Params::practical(4, 0.1, 5));
    assert!(res.radius <= 1e-12);
    check_guarantee(&space, 2, &Params::practical(4, 0.1, 5));
}

#[test]
fn collinear_points() {
    // Equally spaced points on a line: every ladder τ lands exactly on a
    // multiple of the spacing, so cell-boundary assignment is exercised at
    // the rung thresholds themselves.
    let rows: Vec<Vec<f64>> = (0..200).map(|i| vec![i as f64, 0.0]).collect();
    let space = EuclideanSpace::new(PointSet::from_rows(&rows));
    for k in [2usize, 5, 9] {
        check_guarantee(&space, k, &Params::practical(4, 0.1, 17));
    }
}

#[test]
fn near_cell_boundary_points() {
    // Pairs straddling cell boundaries by ±1e-9 at unit spacing: a grid
    // with side τ ≈ 1 must still surface the cross-cell neighbor through
    // the stencil, or maximality (hence the radius) breaks.
    let mut rows: Vec<Vec<f64>> = Vec::new();
    for i in 0..60 {
        let base = 3.0 * i as f64;
        rows.push(vec![base - 1e-9, 0.5]);
        rows.push(vec![base + 1e-9, 0.5]);
    }
    let space = EuclideanSpace::new(PointSet::from_rows(&rows));
    for k in [3usize, 7] {
        check_guarantee(&space, k, &Params::practical(4, 0.1, 23));
    }
}

#[test]
fn grid_mis_exact_domination_at_tau() {
    // Distances exactly τ are dominations (≤ τ), exercised on the integer
    // line with τ = 1: the MIS must pick every other point at most.
    let rows: Vec<Vec<f64>> = (0..50).map(|i| vec![i as f64]).collect();
    let space = EuclideanSpace::new(PointSet::from_rows(&rows));
    let local_sets: Vec<Vec<u32>> = vec![(0..25u32).collect(), (25..50u32).collect()];
    let mut cluster = Cluster::new(2, 1);
    let mut stats = KernelStats::default();
    let set = grid_k_bounded_mis(&mut cluster, &space, &local_sets, 1.0, 50, &mut stats);
    for w in set.windows(2) {
        assert!(w[1] - w[0] >= 2, "adjacent integers are mutually dominated");
    }
    let ids: Vec<PointId> = set.iter().map(|&i| PointId(i)).collect();
    for v in 0..50u32 {
        assert!(dist_point_to_set(&space, PointId(v), &ids) <= 1.0);
    }
}

#[test]
fn grid_engine_is_thread_count_invariant() {
    for (n, dim, k, m, seed) in [
        (900usize, 3usize, 6usize, 4usize, 42u64),
        (600, 2, 8, 8, 7),
        (500, 5, 4, 2, 13),
    ] {
        let space = EuclideanSpace::new(datasets::user_embeddings(n, dim, k, 0.03, 1e-3, seed));
        let params = Params::practical(m, 0.1, seed);
        let runs: Vec<_> = THREAD_COUNTS
            .iter()
            .map(|&t| {
                with_threads(t, || {
                    let mut cluster = Cluster::new(m, seed);
                    let out = mpc_kcenter_grid_on(&mut cluster, &space, k, &params);
                    (
                        out.centers.clone(),
                        out.radius.to_bits(),
                        out.boundary_index,
                        out.telemetry.rounds,
                        out.telemetry.total_words,
                    )
                })
            })
            .collect();
        for r in &runs[1..] {
            assert_eq!(
                r, &runs[0],
                "n={n} dim={dim}: engine must not depend on pool width"
            );
        }
    }
}
