//! The batched distance kernels are a *local compute* substitution: wiring
//! `ThresholdGraph` through `count_within` / `neighbors_within` instead of
//! per-pair `within` calls must leave Algorithm 3 (degree approximation)
//! and Algorithm 4 (k-bounded MIS) bit-for-bit unchanged — same outputs,
//! same rounds, same per-machine word counts.
//!
//! `ScalarOnly` re-exposes a space through nothing but the scalar oracle,
//! so every bulk query inside the algorithms falls back to the
//! `MetricSpace` loop defaults — exactly the pre-kernel code path.

use mpc_core::degree::{approximate_degrees, DegreeOutcome};
use mpc_core::diversity::mpc_diversity_on;
use mpc_core::kbmis::k_bounded_mis;
use mpc_core::kcenter::mpc_kcenter_on;
use mpc_core::ksupplier::mpc_ksupplier_on;
use mpc_core::memo::MemoizedSpace;
use mpc_core::Params;
use mpc_metric::{datasets, EuclideanSpace, MetricSpace, PointId};
use mpc_sim::{Cluster, Partition};

/// Forwards only `n`, `dist` and `point_weight`; `within` and the bulk
/// kernels fall back to the trait defaults (per-pair `dist <= tau`, sqrt
/// included) — exactly the pre-kernel code path.
struct ScalarOnly<M>(M);

impl<M: MetricSpace> MetricSpace for ScalarOnly<M> {
    fn n(&self) -> usize {
        self.0.n()
    }
    fn dist(&self, i: PointId, j: PointId) -> f64 {
        self.0.dist(i, j)
    }
    fn point_weight(&self) -> u64 {
        self.0.point_weight()
    }
}

#[test]
fn degree_approximation_is_unchanged_by_kernel_swap() {
    for (n, m, tau, k, seed) in [
        (300, 4, 0.1, 8, 3u64),
        (300, 4, 0.4, 8, 3),
        (150, 8, 0.05, 5, 11),
    ] {
        let metric = EuclideanSpace::new(datasets::uniform_cube(n, 2, seed));
        let scalar = ScalarOnly(metric.clone());
        let params = Params::practical(m, 0.1, seed);
        let alive = Partition::round_robin(n, m).all_items().to_vec();

        let mut ck = Cluster::new(m, seed);
        let fast = approximate_degrees(&mut ck, &metric, &alive, tau, k, n, &params);
        let mut cs = Cluster::new(m, seed);
        let slow = approximate_degrees(&mut cs, &scalar, &alive, tau, k, n, &params);

        let ctx = format!("degrees n={n} m={m} tau={tau}");
        match (fast, slow) {
            (
                DegreeOutcome::Estimates {
                    p: pf,
                    heavy: hf,
                    light: lf,
                },
                DegreeOutcome::Estimates {
                    p: ps,
                    heavy: hs,
                    light: ls,
                },
            ) => {
                assert_eq!(pf, ps, "{ctx}: estimates");
                assert_eq!((hf, lf), (hs, ls), "{ctx}: classification counts");
            }
            (DegreeOutcome::IndependentSet(f), DegreeOutcome::IndependentSet(s)) => {
                assert_eq!(f, s, "{ctx}: shortcut sets");
            }
            (f, s) => panic!("{ctx}: outcomes diverged: {f:?} vs {s:?}"),
        }
        ck.ledger().assert_identical(cs.ledger(), &ctx);
    }
}

#[test]
fn k_bounded_mis_is_unchanged_by_kernel_swap() {
    for (n, m, tau, k, seed) in [
        (200, 4, 0.12, 7, 55u64),
        (100, 4, 0.05, 5, 2),
        (250, 5, 0.1, 10, 3),
        (60, 2, 0.9, 8, 5),
    ] {
        let metric = EuclideanSpace::new(datasets::uniform_cube(n, 2, seed));
        let scalar = ScalarOnly(metric.clone());
        let params = Params::practical(m, 0.1, seed);
        let alive = Partition::round_robin(n, m).all_items().to_vec();

        let mut ck = Cluster::new(m, seed);
        let fast = k_bounded_mis(&mut ck, &metric, &alive, tau, k, n, &params, false);
        let mut cs = Cluster::new(m, seed);
        let slow = k_bounded_mis(&mut cs, &scalar, &alive, tau, k, n, &params, false);

        let ctx = format!("kbmis n={n} m={m} tau={tau} k={k}");
        assert_eq!(fast.set, slow.set, "{ctx}: MIS");
        assert_eq!(fast.outcome, slow.outcome, "{ctx}: outcome");
        assert_eq!(fast.outer_rounds, slow.outer_rounds, "{ctx}: outer rounds");
        ck.ledger().assert_identical(cs.ledger(), &ctx);
    }
}

/// The full Algorithm 5 ladder through the batched kernels — tiled
/// multi-query threshold scans in `ThresholdGraph::degrees_among` and
/// `trim`, `dists_into` in GMM, the memo's batched miss fill — must
/// produce exactly the run the scalar-oracle path produces: same centers,
/// bitwise-same radii, same rounds, same per-machine words, same peak
/// memory.
#[test]
fn full_kcenter_ladder_is_unchanged_by_kernel_swap() {
    for (n, m, k, seed) in [(900, 4, 6, 42u64), (600, 8, 10, 7)] {
        let metric = EuclideanSpace::new(datasets::gaussian_clusters(n, 3, k, 0.05, seed));
        let scalar = ScalarOnly(metric.clone());
        let params = Params::practical(m, 0.1, seed);

        let mut ck = Cluster::new(m, seed);
        let fast = mpc_kcenter_on(&mut ck, &metric, k, &params);
        let mut cs = Cluster::new(m, seed);
        let slow = mpc_kcenter_on(&mut cs, &scalar, k, &params);

        let ctx = format!("ladder n={n} m={m} k={k}");
        assert_eq!(fast.centers, slow.centers, "{ctx}: centers");
        assert_eq!(
            fast.radius.to_bits(),
            slow.radius.to_bits(),
            "{ctx}: radius"
        );
        assert_eq!(
            fast.coarse_r.to_bits(),
            slow.coarse_r.to_bits(),
            "{ctx}: coarse_r"
        );
        assert_eq!(fast.boundary_index, slow.boundary_index, "{ctx}: boundary");
        assert_eq!(
            fast.telemetry.rounds, slow.telemetry.rounds,
            "{ctx}: telemetry rounds"
        );
        ck.ledger().assert_identical(cs.ledger(), &ctx);
    }
}

/// The other two consumers of the shared ladder driver take the same
/// kernel-swap guarantee: Algorithm 6 (diversity) and the k-supplier
/// pipeline through `ScalarOnly` must reproduce the batched-kernel run —
/// outputs, boundary index, rounds, and the full ledger.
#[test]
fn diversity_and_ksupplier_ladders_unchanged_by_kernel_swap() {
    for (n, m, k, seed) in [(400, 4, 6, 42u64), (300, 8, 5, 7)] {
        let metric = EuclideanSpace::new(datasets::uniform_cube(n, 2, seed));
        let scalar = ScalarOnly(metric.clone());
        let params = Params::practical(m, 0.1, seed);

        let mut ck = Cluster::new(m, seed);
        let fast = mpc_diversity_on(&mut ck, &metric, k, &params);
        let mut cs = Cluster::new(m, seed);
        let slow = mpc_diversity_on(&mut cs, &scalar, k, &params);
        let ctx = format!("diversity ladder n={n} m={m} k={k}");
        assert_eq!(fast.subset, slow.subset, "{ctx}: subset");
        assert_eq!(
            fast.diversity.to_bits(),
            slow.diversity.to_bits(),
            "{ctx}: diversity"
        );
        assert_eq!(fast.boundary_index, slow.boundary_index, "{ctx}: boundary");
        ck.ledger().assert_identical(cs.ledger(), &ctx);

        let customers: Vec<u32> = (0..n as u32 / 2).collect();
        let suppliers: Vec<u32> = (n as u32 / 2..n as u32).collect();
        let mut ck = Cluster::new(m, seed);
        let fast = mpc_ksupplier_on(&mut ck, &metric, &customers, &suppliers, k, &params);
        let mut cs = Cluster::new(m, seed);
        let slow = mpc_ksupplier_on(&mut cs, &scalar, &customers, &suppliers, k, &params);
        let ctx = format!("ksupplier ladder n={n} m={m} k={k}");
        assert_eq!(fast.suppliers, slow.suppliers, "{ctx}: suppliers");
        assert_eq!(
            fast.radius.to_bits(),
            slow.radius.to_bits(),
            "{ctx}: radius"
        );
        assert_eq!(fast.boundary_index, slow.boundary_index, "{ctx}: boundary");
        ck.ledger().assert_identical(cs.ledger(), &ctx);
    }
}

/// The memo's sorted companion rows, τ-batch prewarm, and multi-τ answer
/// path are pure local-compute caching: replaying the same kbMIS ladder
/// through a prewarmed sorted memo, a scan-only memo, and the raw metric
/// must produce identical independent sets and — collective by collective
/// — identical ledgers. (The memo unit tests pin the same invariant for a
/// single configuration; this pins the *pairwise* equality of all three.)
#[test]
fn sorted_rows_prewarm_and_multi_tau_are_ledger_invisible() {
    for (n, m, k, seed) in [(240, 4, 7, 11u64), (160, 8, 5, 3)] {
        let metric = EuclideanSpace::new(datasets::uniform_cube(n, 2, seed));
        let params = Params::practical(m, 0.1, seed);
        let alive = Partition::round_robin(n, m).all_items().to_vec();
        let base = 0.35;
        let taus: Vec<f64> = (0..5).map(|i| base / 1.3f64.powi(i)).collect();

        let sorted = MemoizedSpace::new(&metric);
        sorted.prewarm_taus(&taus);
        let scan = MemoizedSpace::new(&metric).without_sorted_rows();

        let run = |space: &dyn MetricSpace| {
            let mut cluster = Cluster::new(m, seed);
            let sets: Vec<Vec<u32>> = taus
                .iter()
                .map(|&tau| {
                    k_bounded_mis(&mut cluster, space, &alive, tau, k, n, &params, false).set
                })
                .collect();
            (sets, cluster.into_ledger())
        };
        let (raw_sets, raw_ledger) = run(&metric);
        let (sorted_sets, sorted_ledger) = run(&sorted);
        let (scan_sets, scan_ledger) = run(&scan);

        let ctx = format!("memo ladder n={n} m={m} k={k}");
        assert_eq!(sorted_sets, raw_sets, "{ctx}: sorted memo vs raw");
        assert_eq!(scan_sets, raw_sets, "{ctx}: scan memo vs raw");
        raw_ledger.assert_identical(&sorted_ledger, &format!("{ctx}: sorted"));
        raw_ledger.assert_identical(&scan_ledger, &format!("{ctx}: scan"));
        assert!(
            sorted.sorted_rows_built() > 0,
            "{ctx}: prewarmed memo must actually build sorted rows"
        );
        assert!(
            sorted.hits() > 0 && scan.hits() > 0,
            "{ctx}: ladder replay must hit both memos"
        );
    }
}
