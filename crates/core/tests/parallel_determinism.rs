//! Thread-count determinism: every parallelized kernel and the full
//! k-center ladder must produce bit-for-bit identical outputs at
//! `threads ∈ {1, 2, 8}`.
//!
//! `threads = 1` bypasses the worker pool entirely (the pre-pool
//! sequential scans), so these tests pin the whole chain: sequential path
//! ≡ chunked path at 2 threads ≡ chunked path at 8 threads. The bridge is
//! the shim's determinism contract — fixed candidate chunking that depends
//! only on the item count, order-preserving collects, and associative
//! combines — which the assertions here enforce end to end, ledger
//! included.
//!
//! Candidate batches are stretched past `PAR_MIN_BULK` by cycling ids, so
//! the parallel kernel paths genuinely engage even on small point sets.

use mpc_core::gmm::gmm;
use mpc_core::kcenter::mpc_kcenter_on;
use mpc_core::memo::MemoizedSpace;
use mpc_core::Params;
use mpc_graph::{GraphView, ThresholdGraph};
use mpc_metric::{
    datasets, dist_set_to_set, EuclideanSpace, MatrixSpace, MetricSpace, PointId, PAR_MIN_BULK,
};
use mpc_sim::Cluster;
use proptest::prelude::*;
use rayon::with_threads;

/// The pool widths the ISSUE pins: sequential, minimal parallel, wide.
const THREAD_COUNTS: [usize; 3] = [1, 2, 8];

/// A candidate batch long enough to open the `par_bulk` gate on a space of
/// `n` points: ids cycle with a stride coprime to most small `n`, so the
/// batch hits many distinct rows and contains duplicates (both shapes the
/// kernels must preserve).
fn big_candidates(n: u32, len: usize) -> Vec<u32> {
    (0..len)
        .map(|i| (i as u32).wrapping_mul(7).wrapping_add(3) % n)
        .collect()
}

/// Runs both bulk kernels on `space` at every thread count and checks the
/// 2- and 8-thread answers against the sequential baseline.
fn check_bulk_kernels<M: MetricSpace>(
    space: &M,
    v: PointId,
    candidates: &[u32],
    tau: f64,
) -> Result<(), TestCaseError> {
    let run = || {
        let mut out = Vec::new();
        space.neighbors_within(v, candidates, tau, &mut out);
        (space.count_within(v, candidates, tau), out)
    };
    let baseline = with_threads(1, run);
    prop_assert_eq!(
        baseline.0,
        baseline.1.len(),
        "count and filter must agree on the sequential path"
    );
    for &t in &THREAD_COUNTS[1..] {
        let got = with_threads(t, run);
        prop_assert_eq!(&got, &baseline, "threads={}", t);
    }
    Ok(())
}

/// Runs the multi-query kernels and the distance-returning bulk paths at
/// every thread count and checks the 2- and 8-thread answers (bitwise,
/// for the distances) against the sequential baseline. The query batch is
/// sized so `|vs| × |candidates|` clears the pair gate and the kernels
/// split across query chunks.
fn check_many_kernels<M: MetricSpace>(
    space: &M,
    vs: &[u32],
    candidates: &[u32],
    tau: f64,
) -> Result<(), TestCaseError> {
    let run = || {
        let counts = space.count_within_many(vs, candidates, tau);
        let neighbors = space.neighbors_within_many(vs, candidates, tau);
        let mut dists = Vec::new();
        space.dists_into(PointId(vs[0]), candidates, &mut dists);
        let dist_bits: Vec<u64> = dists.iter().map(|d| d.to_bits()).collect();
        let ids: Vec<PointId> = candidates.iter().map(|&c| PointId(c)).collect();
        let set_bits = space.dist_to_set(PointId(vs[0]), &ids).to_bits();
        (counts, neighbors, dist_bits, set_bits)
    };
    let baseline = with_threads(1, run);
    for &t in &THREAD_COUNTS[1..] {
        prop_assert_eq!(&with_threads(t, run), &baseline, "threads={}", t);
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn euclidean_kernels_identical_across_thread_counts(
        seed in 0u64..1_000,
        dim in 1usize..5,
        tau in 0.0f64..2.0,
    ) {
        let n = 64u32;
        let space = EuclideanSpace::new(datasets::uniform_cube(n as usize, dim, seed));
        let cands = big_candidates(n, PAR_MIN_BULK + 37);
        check_bulk_kernels(&space, PointId(seed as u32 % n), &cands, tau)?;
    }

    #[test]
    fn matrix_kernels_identical_across_thread_counts(
        seed in 0u64..1_000,
        tau in 0.0f64..2.0,
    ) {
        let n = 48;
        let e = EuclideanSpace::new(datasets::uniform_cube(n, 3, seed));
        let m = MatrixSpace::from_fn(n, |i, j| e.dist(PointId(i as u32), PointId(j as u32)))
            .expect("euclidean distances form a metric");
        let cands = big_candidates(n as u32, PAR_MIN_BULK + 11);
        check_bulk_kernels(&m, PointId(seed as u32 % n as u32), &cands, tau)?;
    }

    #[test]
    fn memoized_kernels_identical_across_thread_counts(
        seed in 0u64..1_000,
        tau in 0.0f64..2.0,
    ) {
        let n = 64u32;
        let space = EuclideanSpace::new(datasets::uniform_cube(n as usize, 3, seed));
        let cands = big_candidates(n, PAR_MIN_BULK + 5);
        let run = |threads: usize| {
            with_threads(threads, || {
                // Fresh memo per width: the parallel chunk fill happens on
                // the miss, so each run exercises fill *and* reuse.
                let memo = MemoizedSpace::new(&space);
                let mut out = Vec::new();
                memo.neighbors_within(PointId(3), &cands, tau, &mut out);
                let count = memo.count_within(PointId(3), &cands, tau);
                (count, out, memo.hits(), memo.misses())
            })
        };
        let baseline = run(1);
        prop_assert_eq!(baseline.2, 1, "second bulk query must hit the memo");
        for &t in &THREAD_COUNTS[1..] {
            let got = run(t);
            prop_assert_eq!(&got, &baseline, "threads={}", t);
        }
    }

    #[test]
    fn euclidean_many_kernels_identical_across_thread_counts(
        seed in 0u64..1_000,
        tau in 0.0f64..2.0,
    ) {
        let n = 64u32;
        // dim 3 exercises the tiled diff path, dim 18 (≥ GRAM_MIN_DIM) the
        // norm-cached Gram path; both must be thread-count invariant.
        for dim in [3usize, 18] {
            let space = EuclideanSpace::new(datasets::uniform_cube(n as usize, dim, seed));
            let vs = big_candidates(n, 96);
            let cands = big_candidates(n, 128);
            check_many_kernels(&space, &vs, &cands, tau)?;
        }
    }

    #[test]
    fn matrix_many_kernels_identical_across_thread_counts(
        seed in 0u64..1_000,
        tau in 0.0f64..2.0,
    ) {
        let n = 48;
        let e = EuclideanSpace::new(datasets::uniform_cube(n, 3, seed));
        let m = MatrixSpace::from_fn(n, |i, j| e.dist(PointId(i as u32), PointId(j as u32)))
            .expect("euclidean distances form a metric");
        let vs = big_candidates(n as u32, 96);
        let cands = big_candidates(n as u32, 128);
        check_many_kernels(&m, &vs, &cands, tau)?;
    }

    #[test]
    fn memoized_many_kernels_identical_across_thread_counts(
        seed in 0u64..1_000,
        tau in 0.0f64..2.0,
    ) {
        let n = 64u32;
        let space = EuclideanSpace::new(datasets::uniform_cube(n as usize, 3, seed));
        // Duplicate queries in the batch: the batched miss fill must
        // collapse them onto one computation (counted as hits) exactly
        // like the sequential per-query loop would.
        let mut vs = big_candidates(n, 48);
        vs.extend_from_slice(&vs.clone()[..16]);
        let cands = big_candidates(n, PAR_MIN_BULK / 32 + 7);
        let run = |threads: usize| {
            with_threads(threads, || {
                let memo = MemoizedSpace::new(&space);
                let counts = memo.count_within_many(&vs, &cands, tau);
                let neighbors = memo.neighbors_within_many(&vs, &cands, tau);
                (counts, neighbors, memo.hits(), memo.misses())
            })
        };
        let baseline = run(1);
        for &t in &THREAD_COUNTS[1..] {
            let got = run(t);
            prop_assert_eq!(&got, &baseline, "threads={}", t);
        }
    }

    #[test]
    fn multi_tau_kernels_identical_across_thread_counts(
        seed in 0u64..1_000,
        base in 0.05f64..1.0,
    ) {
        let n = 64u32;
        let taus: Vec<f64> = (0..6).map(|i| base * 1.25f64.powi(i)).collect();
        // dim 3 exercises the tiled rung scan, dim 18 (≥ GRAM_MIN_DIM) the
        // Gram-banded rung classification; both must be thread-invariant.
        for dim in [3usize, 18] {
            let space = EuclideanSpace::new(datasets::uniform_cube(n as usize, dim, seed));
            let cands = big_candidates(n, PAR_MIN_BULK + 29);
            let v = PointId(seed as u32 % n);
            let run = || {
                (
                    space.count_within_taus(v, &cands, &taus),
                    space.neighbors_within_taus(v, &cands, &taus),
                )
            };
            let baseline = with_threads(1, run);
            for &t in &THREAD_COUNTS[1..] {
                prop_assert_eq!(&with_threads(t, run), &baseline, "dim={} threads={}", dim, t);
            }
        }
    }

    #[test]
    fn memoized_sorted_paths_identical_across_thread_counts(
        seed in 0u64..1_000,
        base in 0.05f64..1.0,
    ) {
        let n = 64u32;
        let space = EuclideanSpace::new(datasets::uniform_cube(n as usize, 3, seed));
        let taus: Vec<f64> = (0..5).map(|i| base * 1.2f64.powi(i)).collect();
        let vs = big_candidates(n, 48);
        let cands = big_candidates(n, PAR_MIN_BULK / 32 + 13);
        let run = |threads: usize| {
            with_threads(threads, || {
                // Fresh memo per width: the parallel batched fill happens
                // on the first sweep, the second sweep's re-touch builds
                // the sorted rows (prewarm then retrofits any stragglers),
                // and the sorted `partition_point` path answers the rest.
                // Counters pin that the hit/miss classification (and thus
                // the sorted build schedule) is thread-count invariant.
                let memo = MemoizedSpace::new(&space);
                let first = memo.count_within_many(&vs, &cands, taus[0]);
                memo.prewarm_taus(&taus);
                let sweeps: Vec<Vec<usize>> = std::iter::once(first)
                    .chain(taus.iter().map(|&tau| memo.count_within_many(&vs, &cands, tau)))
                    .collect();
                let neighbors = memo.neighbors_within_many(&vs, &cands, taus[0]);
                let per_tau: Vec<Vec<usize>> = vs
                    .iter()
                    .map(|&v| memo.count_within_taus(PointId(v), &cands, &taus))
                    .collect();
                (
                    sweeps,
                    neighbors,
                    per_tau,
                    memo.hits(),
                    memo.misses(),
                    memo.sorted_rows_built(),
                )
            })
        };
        let baseline = run(1);
        prop_assert!(baseline.5 > 0, "retouched rows must gain sorted rows");
        for &t in &THREAD_COUNTS[1..] {
            let got = run(t);
            prop_assert_eq!(&got, &baseline, "threads={}", t);
        }
    }

    #[test]
    fn set_distances_identical_across_thread_counts(
        seed in 0u64..1_000,
    ) {
        let n = 96u32;
        let space = EuclideanSpace::new(datasets::uniform_cube(n as usize, 3, seed));
        let xs: Vec<PointId> = big_candidates(n, 192).into_iter().map(PointId).collect();
        let ys: Vec<PointId> = big_candidates(n, 96).into_iter().map(PointId).collect();
        let baseline = with_threads(1, || dist_set_to_set(&space, &xs, &ys).to_bits());
        for &t in &THREAD_COUNTS[1..] {
            prop_assert_eq!(
                with_threads(t, || dist_set_to_set(&space, &xs, &ys).to_bits()),
                baseline,
                "threads={}",
                t
            );
        }
    }

    #[test]
    fn degrees_among_identical_across_thread_counts(
        seed in 0u64..1_000,
        tau in 0.0f64..1.5,
    ) {
        let n = 64u32;
        let space = EuclideanSpace::new(datasets::uniform_cube(n as usize, 2, seed));
        let g = ThresholdGraph::new(&space, tau);
        // 128 × 96 = 12288 pairs: past the `par_bulk_pairs` gate.
        let vs = big_candidates(n, 128);
        let cands = big_candidates(n, 96);
        let run = || g.degrees_among(&vs, &cands);
        let baseline = with_threads(1, run);
        for &t in &THREAD_COUNTS[1..] {
            prop_assert_eq!(with_threads(t, run), baseline.clone(), "threads={}", t);
        }
    }
}

/// The default `GraphView::degrees_among` (used by adjacency-backed
/// graphs) takes the same parallel path; pin it with an oracle that only
/// implements the required methods.
#[test]
fn graph_view_default_degrees_identical_across_thread_counts() {
    struct ParityGraph(u32);
    impl GraphView for ParityGraph {
        fn n_vertices(&self) -> usize {
            self.0 as usize
        }
        fn is_edge(&self, u: u32, v: u32) -> bool {
            u != v && (u + v).is_multiple_of(3)
        }
    }
    let g = ParityGraph(50);
    let vs = big_candidates(50, 200);
    let cands = big_candidates(50, 64);
    let baseline = with_threads(1, || g.degrees_among(&vs, &cands));
    for &t in &THREAD_COUNTS[1..] {
        assert_eq!(
            with_threads(t, || g.degrees_among(&vs, &cands)),
            baseline,
            "threads={t}"
        );
    }
}

#[test]
fn gmm_identical_across_thread_counts() {
    // n past the GMM parallel-relaxation threshold so the pool path runs.
    let n = 5_000;
    for seed in [1u64, 9] {
        let space = EuclideanSpace::new(datasets::uniform_cube(n, 3, seed));
        let subset: Vec<u32> = (0..n as u32).collect();
        let baseline = with_threads(1, || gmm(&space, &subset, 8));
        for &t in &THREAD_COUNTS[1..] {
            let got = with_threads(t, || gmm(&space, &subset, 8));
            assert_eq!(got.selected, baseline.selected, "seed={seed} threads={t}");
            assert_eq!(got.radii, baseline.radii, "seed={seed} threads={t}");
            assert_eq!(
                got.covering_radius(),
                baseline.covering_radius(),
                "seed={seed} threads={t}"
            );
        }
    }
}

/// The acceptance criterion for the tentpole: a full Algorithm 5 ladder
/// run — centers, radius, every derived field, and the complete MPC
/// ledger (labels, per-machine words, peak memory) — is bit-for-bit
/// identical at 1, 2, and 8 threads.
#[test]
fn full_kcenter_ladder_identical_across_thread_counts() {
    for (n, m, k, seed) in [(900, 4, 6, 42u64), (600, 8, 10, 7)] {
        let space = EuclideanSpace::new(datasets::gaussian_clusters(n, 3, k, 0.05, seed));
        let params = Params::practical(m, 0.1, seed);
        let run = |threads: usize| {
            with_threads(threads, || {
                let mut cluster = Cluster::new(m, seed);
                let res = mpc_kcenter_on(&mut cluster, &space, k, &params);
                (res, cluster.into_ledger())
            })
        };
        let (base, base_ledger) = run(1);
        for &t in &THREAD_COUNTS[1..] {
            let ctx = format!("ladder n={n} m={m} k={k} threads={t}");
            let (got, ledger) = run(t);
            assert_eq!(got.centers, base.centers, "{ctx}: centers");
            assert_eq!(got.radius.to_bits(), base.radius.to_bits(), "{ctx}: radius");
            assert_eq!(
                got.coarse_r.to_bits(),
                base.coarse_r.to_bits(),
                "{ctx}: coarse_r"
            );
            assert_eq!(got.boundary_index, base.boundary_index, "{ctx}: boundary");
            assert_eq!(
                got.telemetry.rounds, base.telemetry.rounds,
                "{ctx}: telemetry rounds"
            );
            base_ledger.assert_identical(&ledger, &ctx);
        }
    }
}
