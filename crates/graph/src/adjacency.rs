//! Explicit adjacency-list graphs, used in unit tests of the MIS machinery
//! and to materialize small threshold graphs for exact baselines.

use crate::GraphView;

/// An explicit undirected graph over vertices `0..n` with sorted adjacency
/// lists.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AdjacencyGraph {
    adj: Vec<Vec<u32>>,
}

impl AdjacencyGraph {
    /// An edgeless graph on `n` vertices.
    pub fn empty(n: usize) -> Self {
        Self {
            adj: vec![Vec::new(); n],
        }
    }

    /// Builds from an edge list; duplicate edges and self-loops are
    /// rejected.
    pub fn from_edges(n: usize, edges: &[(u32, u32)]) -> Self {
        let mut g = Self::empty(n);
        for &(u, v) in edges {
            g.add_edge(u, v);
        }
        g
    }

    /// Materializes any [`GraphView`] restricted to `vertices` (ids are
    /// preserved; vertices outside the slice are isolated).
    pub fn materialize<G: GraphView>(view: &G, vertices: &[u32]) -> Self {
        let mut g = Self::empty(view.n_vertices());
        for (i, &u) in vertices.iter().enumerate() {
            for &v in &vertices[i + 1..] {
                if view.is_edge(u, v) {
                    g.add_edge(u, v);
                }
            }
        }
        g
    }

    /// Adds the undirected edge `{u, v}`; panics on self-loops, duplicates,
    /// or out-of-range ids.
    pub fn add_edge(&mut self, u: u32, v: u32) {
        assert_ne!(u, v, "self-loop");
        let n = self.adj.len() as u32;
        assert!(u < n && v < n, "vertex out of range");
        let pos = self.adj[u as usize]
            .binary_search(&v)
            .expect_err("duplicate edge");
        self.adj[u as usize].insert(pos, v);
        let pos = self.adj[v as usize]
            .binary_search(&u)
            .expect_err("duplicate edge");
        self.adj[v as usize].insert(pos, u);
    }

    /// Degree of `v`.
    pub fn degree(&self, v: u32) -> usize {
        self.adj[v as usize].len()
    }

    /// Sorted neighbors of `v`.
    pub fn neighbors(&self, v: u32) -> &[u32] {
        &self.adj[v as usize]
    }

    /// Number of undirected edges.
    pub fn edge_count(&self) -> usize {
        self.adj.iter().map(Vec::len).sum::<usize>() / 2
    }
}

impl GraphView for AdjacencyGraph {
    fn n_vertices(&self) -> usize {
        self.adj.len()
    }

    fn is_edge(&self, u: u32, v: u32) -> bool {
        u != v && self.adj[u as usize].binary_search(&v).is_ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn triangle() {
        let g = AdjacencyGraph::from_edges(3, &[(0, 1), (1, 2), (0, 2)]);
        assert_eq!(g.edge_count(), 3);
        assert!(g.is_edge(0, 2));
        assert_eq!(g.degree(1), 2);
        assert_eq!(g.neighbors(0), &[1, 2]);
    }

    #[test]
    #[should_panic(expected = "duplicate")]
    fn rejects_duplicates() {
        AdjacencyGraph::from_edges(2, &[(0, 1), (1, 0)]);
    }

    #[test]
    #[should_panic(expected = "self-loop")]
    fn rejects_self_loops() {
        AdjacencyGraph::from_edges(2, &[(1, 1)]);
    }

    #[test]
    fn materialize_restricts_to_subset() {
        // Path 0-1-2-3 as an explicit view; materialize on {0, 1, 3}.
        let full = AdjacencyGraph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        let sub = AdjacencyGraph::materialize(&full, &[0, 1, 3]);
        assert!(sub.is_edge(0, 1));
        assert!(!sub.is_edge(1, 2), "vertex 2 excluded");
        assert!(!sub.is_edge(2, 3));
        assert_eq!(sub.edge_count(), 1);
    }
}
