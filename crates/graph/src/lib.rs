//! Graph substrate: threshold graphs over metric spaces, explicit graphs,
//! and maximal-independent-set primitives.
//!
//! The paper's central object is the *threshold graph* `G_τ` on a point set
//! `V`: vertices are points, and `u ~ v` iff `d(u, v) ≤ τ` (§2). All of its
//! algorithms reduce to finding a *k-bounded MIS* in such graphs —
//! either a maximal independent set of size ≤ k, or an independent set of
//! size exactly k (Definition 1).
//!
//! This crate provides:
//!
//! * [`GraphView`] — the adjacency oracle both implicit
//!   ([`ThresholdGraph`]) and explicit ([`AdjacencyGraph`]) graphs expose;
//! * sequential MIS algorithms ([`mis::greedy_mis`],
//!   [`mis::greedy_k_bounded_mis`], [`mis::luby_mis`]) used as reference
//!   implementations and baselines;
//! * the paper's [`mis::trim`] primitive (the "local variant of Luby's
//!   algorithm" of §5) with configurable tie-breaking;
//! * verification predicates ([`verify`]) used across the test suites.

pub mod adjacency;
pub mod mis;
pub mod threshold;
pub mod verify;

pub use adjacency::AdjacencyGraph;
pub use threshold::ThresholdGraph;

/// An adjacency oracle over vertices identified by `u32` ids.
///
/// `is_edge` must be symmetric and irreflexive. Implementations are `Sync`
/// so per-machine computation can query them under rayon.
pub trait GraphView: Sync {
    /// Upper bound (exclusive) on vertex ids.
    fn n_vertices(&self) -> usize;

    /// Whether distinct vertices `u` and `v` are adjacent. Must return
    /// `false` when `u == v`.
    fn is_edge(&self, u: u32, v: u32) -> bool;

    /// Number of neighbors of `v` within `candidates` (which may contain
    /// `v` itself; self-loops never count).
    fn degree_among(&self, v: u32, candidates: &[u32]) -> usize {
        candidates.iter().filter(|&&u| self.is_edge(v, u)).count()
    }

    /// The neighbors of `v` within `candidates`.
    fn neighbors_among(&self, v: u32, candidates: &[u32]) -> Vec<u32> {
        candidates
            .iter()
            .copied()
            .filter(|&u| self.is_edge(v, u))
            .collect()
    }

    /// Bulk counterpart of [`GraphView::degree_among`]: the degree of every
    /// vertex in `vs` within `candidates`, in order. The hot scans of
    /// Algorithms 3–4 (sampled-neighbor counts, exact-light partials) call
    /// this so implicit graphs can route the whole batch through one metric
    /// kernel per vertex instead of per-pair oracle calls. When the
    /// `vs × candidates` grid is large enough (see
    /// [`mpc_metric::par_bulk_pairs`]) the per-vertex scans run across the
    /// worker pool; the order-preserving collect keeps the output identical
    /// to the sequential loop.
    fn degrees_among(&self, vs: &[u32], candidates: &[u32]) -> Vec<usize> {
        if mpc_metric::par_bulk_pairs(vs.len(), candidates.len()) {
            use rayon::prelude::*;
            vs.par_iter()
                .map(|&v| self.degree_among(v, candidates))
                .collect()
        } else {
            vs.iter()
                .map(|&v| self.degree_among(v, candidates))
                .collect()
        }
    }

    /// Bulk counterpart of [`GraphView::neighbors_among`]: the neighbor
    /// list of every vertex in `vs` within `candidates`, in order. The
    /// `trim` primitive of Algorithm 4 scans every sampled vertex against
    /// the same sample; batching the whole grid lets implicit graphs route
    /// it through one multi-query metric kernel. Same parallel/determinism
    /// contract as [`GraphView::degrees_among`].
    fn neighbors_among_many(&self, vs: &[u32], candidates: &[u32]) -> Vec<Vec<u32>> {
        if mpc_metric::par_bulk_pairs(vs.len(), candidates.len()) {
            use rayon::prelude::*;
            vs.par_iter()
                .map(|&v| self.neighbors_among(v, candidates))
                .collect()
        } else {
            vs.iter()
                .map(|&v| self.neighbors_among(v, candidates))
                .collect()
        }
    }
}

impl<G: GraphView + ?Sized> GraphView for &G {
    fn n_vertices(&self) -> usize {
        (**self).n_vertices()
    }
    fn is_edge(&self, u: u32, v: u32) -> bool {
        (**self).is_edge(u, v)
    }
    fn degree_among(&self, v: u32, candidates: &[u32]) -> usize {
        (**self).degree_among(v, candidates)
    }
    fn neighbors_among(&self, v: u32, candidates: &[u32]) -> Vec<u32> {
        (**self).neighbors_among(v, candidates)
    }
    fn degrees_among(&self, vs: &[u32], candidates: &[u32]) -> Vec<usize> {
        (**self).degrees_among(vs, candidates)
    }
    fn neighbors_among_many(&self, vs: &[u32], candidates: &[u32]) -> Vec<Vec<u32>> {
        (**self).neighbors_among_many(vs, candidates)
    }
}
