//! Sequential maximal-independent-set algorithms and the paper's `trim`
//! primitive.

use rand::{RngExt, SeedableRng};
use rand_chacha::ChaCha8Rng;

use crate::{AdjacencyGraph, GraphView};

/// Greedy MIS over `vertices` in the given order: a vertex joins the set
/// iff it has no neighbor already in the set. The result is a maximal
/// independent set of the subgraph induced by `vertices`.
pub fn greedy_mis<G: GraphView>(view: &G, vertices: &[u32]) -> Vec<u32> {
    let mut set: Vec<u32> = Vec::new();
    for &v in vertices {
        // Batched adjacency test: one kernel call against the whole set.
        if view.degree_among(v, &set) == 0 {
            set.push(v);
        }
    }
    set
}

/// Greedy *k-bounded* MIS (Definition 1), the sequential reference for the
/// paper's Algorithm 4: scans `vertices` in order and stops as soon as the
/// independent set reaches size `k`.
///
/// ```
/// use mpc_graph::{AdjacencyGraph, mis::greedy_k_bounded_mis};
///
/// // Path 0-1-2-3-4: the greedy MIS is {0, 2, 4}; with k = 2 it stops early.
/// let g = AdjacencyGraph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4)]);
/// let (set, maximal) = greedy_k_bounded_mis(&g, &[0, 1, 2, 3, 4], 2);
/// assert_eq!(set, vec![0, 2]);
/// assert!(!maximal); // stopped at k, not at exhaustion
/// ```
///
/// Returns `(set, maximal)` where `maximal` is true iff the scan finished,
/// i.e. the set is a maximal independent set of the induced subgraph. When
/// `maximal` is false the set is an independent set of size exactly `k`.
/// Either case is a valid k-bounded MIS.
pub fn greedy_k_bounded_mis<G: GraphView>(
    view: &G,
    vertices: &[u32],
    k: usize,
) -> (Vec<u32>, bool) {
    assert!(k > 0, "k must be positive");
    let mut set: Vec<u32> = Vec::with_capacity(k.min(vertices.len()));
    for &v in vertices {
        // Batched adjacency test, as in [`greedy_mis`].
        if view.degree_among(v, &set) == 0 {
            set.push(v);
            if set.len() == k {
                return (set, false);
            }
        }
    }
    (set, true)
}

/// Classic Luby (1986) randomized MIS on an explicit graph, used as a
/// reference point for the paper's compressed variant. Each round, every
/// live vertex draws a random priority; local maxima join the MIS and are
/// removed with their neighborhoods.
pub fn luby_mis(graph: &AdjacencyGraph, seed: u64) -> Vec<u32> {
    let n = graph.n_vertices();
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut alive: Vec<bool> = vec![true; n];
    let mut mis = Vec::new();
    let mut live_count = n;
    while live_count > 0 {
        let priority: Vec<u64> = (0..n).map(|_| rng.random()).collect();
        let mut selected = Vec::new();
        for v in 0..n as u32 {
            if !alive[v as usize] {
                continue;
            }
            let is_local_max = graph.neighbors(v).iter().all(|&u| {
                !alive[u as usize] || (priority[v as usize], v) > (priority[u as usize], u)
            });
            if is_local_max {
                selected.push(v);
            }
        }
        for &v in &selected {
            mis.push(v);
            if std::mem::replace(&mut alive[v as usize], false) {
                live_count -= 1;
            }
            for &u in graph.neighbors(v) {
                if std::mem::replace(&mut alive[u as usize], false) {
                    live_count -= 1;
                }
            }
        }
    }
    mis.sort_unstable();
    mis
}

/// Tie-breaking policy for [`trim`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TieBreak {
    /// The paper's rule: `v` survives iff `p_v > p_u` strictly for every
    /// sampled neighbor `u`. Adjacent equal-weight vertices both drop out
    /// (still an independent set, but progress can stall on ties).
    Strict,
    /// Lexicographic `(p_v, v) > (p_u, u)`: deterministic total order, so
    /// any non-empty sample with an edge still makes progress. This is the
    /// default (design decision D1; see the E10 ablation).
    ById,
}

/// The paper's `trim` function (§5): the subset of `sample` that are local
/// weight-maxima,
///
/// ```text
/// trim(S) = { v ∈ S : p_v > p_u for all u ∈ N(v) ∩ S }
/// ```
///
/// `weights[v]` is the (approximate) degree `p_v` of vertex `v`; entries
/// for vertices outside `sample` are ignored. The result is always an
/// independent set within `sample` (see `verify` tests).
pub fn trim<G: GraphView>(view: &G, sample: &[u32], weights: &[f64], tie: TieBreak) -> Vec<u32> {
    // One multi-query kernel call materializes every N(v) ∩ S row of the
    // sample-vs-sample grid; weights are then compared only against actual
    // neighbors.
    let neighborhoods = view.neighbors_among_many(sample, sample);
    sample
        .iter()
        .zip(neighborhoods)
        .filter(|&(&v, ref neighbors)| {
            neighbors.iter().all(|&u| {
                let (pv, pu) = (weights[v as usize], weights[u as usize]);
                match tie {
                    TieBreak::Strict => pv > pu,
                    TieBreak::ById => (pv, v) > (pu, u),
                }
            })
        })
        .map(|(&v, _)| v)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::{is_independent, is_k_bounded_mis, is_maximal};

    fn path(n: usize) -> AdjacencyGraph {
        AdjacencyGraph::from_edges(
            n,
            &(0..n as u32 - 1).map(|i| (i, i + 1)).collect::<Vec<_>>(),
        )
    }

    #[test]
    fn greedy_mis_on_path_is_maximal() {
        let g = path(5);
        let vertices: Vec<u32> = (0..5).collect();
        let mis = greedy_mis(&g, &vertices);
        assert_eq!(mis, vec![0, 2, 4]);
        assert!(is_independent(&g, &mis));
        assert!(is_maximal(&g, &mis, &vertices));
    }

    #[test]
    fn greedy_mis_respects_scan_order() {
        let g = path(3);
        assert_eq!(greedy_mis(&g, &[1, 0, 2]), vec![1]);
    }

    #[test]
    fn k_bounded_stops_at_k() {
        let g = AdjacencyGraph::empty(10);
        let vertices: Vec<u32> = (0..10).collect();
        let (set, maximal) = greedy_k_bounded_mis(&g, &vertices, 4);
        assert_eq!(set.len(), 4);
        assert!(!maximal);
        assert!(is_k_bounded_mis(&g, &set, &vertices, 4));
    }

    #[test]
    fn k_bounded_maximal_when_small() {
        let g = path(5);
        let vertices: Vec<u32> = (0..5).collect();
        let (set, maximal) = greedy_k_bounded_mis(&g, &vertices, 100);
        assert!(maximal);
        assert_eq!(set, vec![0, 2, 4]);
        assert!(is_k_bounded_mis(&g, &set, &vertices, 100));
    }

    #[test]
    fn luby_produces_maximal_independent_set() {
        for seed in 0..10 {
            let g = path(20);
            let mis = luby_mis(&g, seed);
            let vertices: Vec<u32> = (0..20).collect();
            assert!(is_independent(&g, &mis), "seed {seed}");
            assert!(is_maximal(&g, &mis, &vertices), "seed {seed}");
        }
    }

    #[test]
    fn luby_on_complete_graph_picks_one() {
        let mut edges = Vec::new();
        for i in 0..6u32 {
            for j in (i + 1)..6 {
                edges.push((i, j));
            }
        }
        let g = AdjacencyGraph::from_edges(6, &edges);
        assert_eq!(luby_mis(&g, 3).len(), 1);
    }

    #[test]
    fn trim_keeps_local_maxima() {
        // Path 0-1-2 with weights 1, 3, 2: only vertex 1 is a local max.
        let g = path(3);
        let w = [1.0, 3.0, 2.0];
        assert_eq!(trim(&g, &[0, 1, 2], &w, TieBreak::Strict), vec![1]);
    }

    #[test]
    fn trim_strict_drops_tied_pairs() {
        let g = path(2);
        let w = [5.0, 5.0];
        assert_eq!(trim(&g, &[0, 1], &w, TieBreak::Strict), Vec::<u32>::new());
        // ById keeps the higher id.
        assert_eq!(trim(&g, &[0, 1], &w, TieBreak::ById), vec![1]);
    }

    #[test]
    fn trim_output_is_independent() {
        let g = path(8);
        let sample: Vec<u32> = (0..8).collect();
        let w: Vec<f64> = (0..8).map(|i| ((i * 7) % 5) as f64).collect();
        for tie in [TieBreak::Strict, TieBreak::ById] {
            let t = trim(&g, &sample, &w, tie);
            assert!(is_independent(&g, &t), "{tie:?}: {t:?}");
        }
    }

    #[test]
    fn trim_of_isolated_vertices_keeps_all() {
        let g = AdjacencyGraph::empty(4);
        let w = [0.0; 4];
        assert_eq!(
            trim(&g, &[0, 1, 2, 3], &w, TieBreak::Strict),
            vec![0, 1, 2, 3]
        );
    }
}
