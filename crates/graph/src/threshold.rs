//! Implicit threshold graphs `G_τ` over a metric space.

use std::collections::HashMap;

use mpc_metric::{MetricSpace, PointId};

use crate::GraphView;

/// The threshold graph `G_τ` of a metric space: vertex ids are point ids
/// and `u ~ v` iff `u != v` and `d(u, v) ≤ τ` (paper §2).
///
/// Adjacency is *implicit* — resolved through the distance oracle on
/// demand — so the graph costs no memory beyond the points themselves.
/// This is what lets the MPC algorithms query edges among any subset of
/// vertices a machine happens to hold.
///
/// ```
/// use mpc_graph::{GraphView, ThresholdGraph};
/// use mpc_metric::{EuclideanSpace, PointSet};
///
/// let space = EuclideanSpace::new(PointSet::from_rows(&[
///     vec![0.0], vec![1.0], vec![5.0],
/// ]));
/// let g = ThresholdGraph::new(&space, 1.5);
/// assert!(g.is_edge(0, 1));  // d = 1 <= 1.5
/// assert!(!g.is_edge(1, 2)); // d = 4
/// ```
#[derive(Debug, Clone, Copy)]
pub struct ThresholdGraph<M> {
    metric: M,
    tau: f64,
}

impl<M: MetricSpace> ThresholdGraph<M> {
    /// The graph `G_tau` over `metric`. `tau` must be non-negative and
    /// finite.
    pub fn new(metric: M, tau: f64) -> Self {
        assert!(
            tau.is_finite() && tau >= 0.0,
            "threshold must be finite and non-negative"
        );
        Self { metric, tau }
    }

    /// The threshold τ.
    pub fn tau(&self) -> f64 {
        self.tau
    }

    /// The underlying metric.
    pub fn metric(&self) -> &M {
        &self.metric
    }
}

impl<M: MetricSpace> GraphView for ThresholdGraph<M> {
    fn n_vertices(&self) -> usize {
        self.metric.n()
    }

    #[inline]
    fn is_edge(&self, u: u32, v: u32) -> bool {
        u != v && self.metric.within(PointId(u), PointId(v), self.tau)
    }

    /// Forwards the whole batch to the metric's [`MetricSpace::count_within`]
    /// kernel, then subtracts the self-pairs the kernel counted: τ ≥ 0 means
    /// every occurrence of `v` itself in `candidates` is within threshold,
    /// but the graph is irreflexive.
    fn degree_among(&self, v: u32, candidates: &[u32]) -> usize {
        let within = self.metric.count_within(PointId(v), candidates, self.tau);
        let selfs = candidates.iter().filter(|&&c| c == v).count();
        within - selfs
    }

    /// Batched via [`MetricSpace::neighbors_within`], dropping self-pairs.
    fn neighbors_among(&self, v: u32, candidates: &[u32]) -> Vec<u32> {
        let mut out = Vec::new();
        self.metric
            .neighbors_within(PointId(v), candidates, self.tau, &mut out);
        out.retain(|&c| c != v);
        out
    }

    /// One multi-query metric kernel call for the whole grid
    /// ([`MetricSpace::count_within_many`] — tiled on coordinate-backed
    /// spaces, memo-served on `MemoizedSpace`), then a self-pair fixup:
    /// τ ≥ 0 means every occurrence of a query vertex in `candidates` was
    /// counted within threshold, but the graph is irreflexive. Candidate
    /// multiplicities are tallied once for the batch (restricted to ids
    /// that actually occur in `vs`), replacing the per-query self scan.
    fn degrees_among(&self, vs: &[u32], candidates: &[u32]) -> Vec<usize> {
        let within = self.metric.count_within_many(vs, candidates, self.tau);
        let mut selfs: HashMap<u32, usize> = vs.iter().map(|&v| (v, 0)).collect();
        for &c in candidates {
            if let Some(count) = selfs.get_mut(&c) {
                *count += 1;
            }
        }
        vs.iter().zip(within).map(|(&v, w)| w - selfs[&v]).collect()
    }

    /// Batched via [`MetricSpace::neighbors_within_many`], dropping
    /// self-pairs per row.
    fn neighbors_among_many(&self, vs: &[u32], candidates: &[u32]) -> Vec<Vec<u32>> {
        let mut rows = self.metric.neighbors_within_many(vs, candidates, self.tau);
        for (row, &v) in rows.iter_mut().zip(vs) {
            row.retain(|&c| c != v);
        }
        rows
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpc_metric::{EuclideanSpace, PointSet};

    fn line() -> EuclideanSpace {
        EuclideanSpace::new(PointSet::from_rows(&[
            vec![0.0],
            vec![1.0],
            vec![2.5],
            vec![10.0],
        ]))
    }

    #[test]
    fn adjacency_follows_threshold() {
        let g = ThresholdGraph::new(line(), 1.5);
        assert!(g.is_edge(0, 1)); // d = 1
        assert!(g.is_edge(1, 2)); // d = 1.5, boundary inclusive
        assert!(!g.is_edge(0, 2)); // d = 2.5
        assert!(!g.is_edge(2, 3));
    }

    #[test]
    fn no_self_loops() {
        let g = ThresholdGraph::new(line(), 100.0);
        for v in 0..4 {
            assert!(!g.is_edge(v, v));
        }
    }

    #[test]
    fn degree_and_neighbors_among_subsets() {
        let g = ThresholdGraph::new(line(), 1.5);
        let all = [0, 1, 2, 3];
        assert_eq!(g.degree_among(1, &all), 2);
        assert_eq!(g.neighbors_among(1, &all), vec![0, 2]);
        assert_eq!(
            g.degree_among(1, &[1, 3]),
            0,
            "self and far vertex contribute nothing"
        );
    }

    #[test]
    fn zero_threshold_isolates_distinct_points() {
        let g = ThresholdGraph::new(line(), 0.0);
        assert!(!g.is_edge(0, 1));
    }

    #[test]
    #[should_panic(expected = "finite and non-negative")]
    fn rejects_negative_threshold() {
        ThresholdGraph::new(line(), -1.0);
    }
}
