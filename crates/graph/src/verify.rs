//! Verification predicates for independent sets — the invariants every
//! test suite in the workspace checks against.

use crate::GraphView;

/// True iff no two vertices of `set` are adjacent.
pub fn is_independent<G: GraphView>(view: &G, set: &[u32]) -> bool {
    for (i, &u) in set.iter().enumerate() {
        for &v in &set[i + 1..] {
            if view.is_edge(u, v) {
                return false;
            }
        }
    }
    true
}

/// True iff every vertex of `universe` is in `set` or adjacent to a member
/// of `set` (i.e. `set` dominates `universe`; together with independence
/// this is maximality of the independent set within `universe`).
pub fn is_maximal<G: GraphView>(view: &G, set: &[u32], universe: &[u32]) -> bool {
    universe
        .iter()
        .all(|&v| set.contains(&v) || set.iter().any(|&s| view.is_edge(v, s)))
}

/// Definition 1 of the paper: `set` is a k-bounded MIS of the subgraph
/// induced by `universe` iff it is independent and either
/// (a) maximal with `|set| ≤ k`, or (b) of size exactly `k`.
pub fn is_k_bounded_mis<G: GraphView>(view: &G, set: &[u32], universe: &[u32], k: usize) -> bool {
    if !is_independent(view, set) {
        return false;
    }
    if set.len() == k {
        return true;
    }
    set.len() < k && is_maximal(view, set, universe)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::AdjacencyGraph;

    fn path4() -> AdjacencyGraph {
        AdjacencyGraph::from_edges(4, &[(0, 1), (1, 2), (2, 3)])
    }

    #[test]
    fn independence() {
        let g = path4();
        assert!(is_independent(&g, &[0, 2]));
        assert!(is_independent(&g, &[]));
        assert!(!is_independent(&g, &[0, 1]));
    }

    #[test]
    fn maximality() {
        let g = path4();
        let universe = [0, 1, 2, 3];
        assert!(is_maximal(&g, &[0, 2], &universe)); // 3 adjacent to 2
        assert!(is_maximal(&g, &[1, 3], &universe));
        assert!(!is_maximal(&g, &[0], &universe)); // 3 uncovered
        assert!(is_maximal(&g, &[0], &[0, 1]));
    }

    #[test]
    fn k_bounded_cases() {
        let g = path4();
        let universe = [0, 1, 2, 3];
        // Size exactly k, independent but not maximal: valid.
        assert!(is_k_bounded_mis(&g, &[0], &universe, 1));
        // Maximal of size 2 <= k = 3: valid.
        assert!(is_k_bounded_mis(&g, &[0, 2], &universe, 3));
        // Not independent: invalid even at size k.
        assert!(!is_k_bounded_mis(&g, &[0, 1], &universe, 2));
        // Size < k and not maximal: invalid.
        assert!(!is_k_bounded_mis(&g, &[0], &universe, 2));
        // Size > k is impossible to satisfy.
        assert!(!is_k_bounded_mis(&g, &[0, 2], &universe, 1));
    }
}
