//! Property-based tests of the MIS toolkit on random explicit graphs.

use mpc_graph::mis::{greedy_k_bounded_mis, greedy_mis, luby_mis, trim, TieBreak};
use mpc_graph::verify::{is_independent, is_k_bounded_mis, is_maximal};
use mpc_graph::{AdjacencyGraph, GraphView};
use proptest::prelude::*;

/// Random graphs as (n, edge list) with no duplicates or self-loops.
fn arb_graph(max_n: usize) -> impl Strategy<Value = AdjacencyGraph> {
    (2usize..max_n).prop_flat_map(|n| {
        let all_pairs: Vec<(u32, u32)> = (0..n as u32)
            .flat_map(|i| ((i + 1)..n as u32).map(move |j| (i, j)))
            .collect();
        prop::collection::vec(any::<bool>(), all_pairs.len()..=all_pairs.len()).prop_map(
            move |mask| {
                let edges: Vec<(u32, u32)> = all_pairs
                    .iter()
                    .zip(&mask)
                    .filter(|&(_, &keep)| keep)
                    .map(|(&e, _)| e)
                    .collect();
                AdjacencyGraph::from_edges(n, &edges)
            },
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Greedy MIS is always a maximal independent set.
    #[test]
    fn greedy_mis_is_maximal(g in arb_graph(24)) {
        let vertices: Vec<u32> = (0..g.n_vertices() as u32).collect();
        let mis = greedy_mis(&g, &vertices);
        prop_assert!(is_independent(&g, &mis));
        prop_assert!(is_maximal(&g, &mis, &vertices));
    }

    /// Luby's algorithm agrees with the definition for every seed, and both
    /// Luby and greedy MIS sizes are within the trivial bounds.
    #[test]
    fn luby_is_maximal_any_seed(g in arb_graph(20), seed in any::<u64>()) {
        let vertices: Vec<u32> = (0..g.n_vertices() as u32).collect();
        let mis = luby_mis(&g, seed);
        prop_assert!(is_independent(&g, &mis));
        prop_assert!(is_maximal(&g, &mis, &vertices));
        prop_assert!(!mis.is_empty());
    }

    /// The k-bounded greedy MIS satisfies Definition 1 for every k.
    #[test]
    fn k_bounded_definition_holds(g in arb_graph(20), k in 1usize..25) {
        let vertices: Vec<u32> = (0..g.n_vertices() as u32).collect();
        let (set, maximal) = greedy_k_bounded_mis(&g, &vertices, k);
        prop_assert!(is_k_bounded_mis(&g, &set, &vertices, k));
        if maximal {
            prop_assert!(is_maximal(&g, &set, &vertices));
        } else {
            prop_assert_eq!(set.len(), k);
        }
    }

    /// trim is an independent subset of the sample under both tie rules,
    /// and the ById rule retains a superset of the Strict rule.
    #[test]
    fn trim_rules_relate(g in arb_graph(20), weights in prop::collection::vec(0.0f64..8.0, 25)) {
        let n = g.n_vertices();
        let sample: Vec<u32> = (0..n as u32).collect();
        let w = &weights[..n.min(weights.len())];
        if w.len() < n { return Ok(()); }
        let strict = trim(&g, &sample, w, TieBreak::Strict);
        let by_id = trim(&g, &sample, w, TieBreak::ById);
        prop_assert!(is_independent(&g, &strict));
        prop_assert!(is_independent(&g, &by_id));
        for v in &strict {
            prop_assert!(by_id.contains(v), "ById must keep every Strict survivor");
        }
    }

    /// On an edgeless graph every MIS routine returns the whole vertex set.
    #[test]
    fn edgeless_graphs_keep_everything(n in 1usize..30, seed in any::<u64>()) {
        let g = AdjacencyGraph::empty(n);
        let vertices: Vec<u32> = (0..n as u32).collect();
        prop_assert_eq!(greedy_mis(&g, &vertices).len(), n);
        prop_assert_eq!(luby_mis(&g, seed).len(), n);
    }
}
