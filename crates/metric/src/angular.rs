//! Angular (arc-cosine of cosine similarity) metric — the proper-metric
//! counterpart of cosine similarity, ubiquitous for embedding vectors.
//!
//! Plain "cosine distance" `1 − cos θ` violates the triangle inequality;
//! the angle `θ = arccos(cos θ)` itself is a genuine metric on the unit
//! sphere, so that is what this space implements.

use crate::point::{PointId, PointSet};
use crate::space::MetricSpace;

/// The angular metric `d(x, y) = arccos(⟨x, y⟩ / (‖x‖‖y‖))` in radians.
///
/// Construction rejects zero vectors (their angle is undefined). Norms are
/// precomputed so the oracle stays O(dim).
#[derive(Debug, Clone)]
pub struct AngularSpace {
    points: PointSet,
    inv_norms: Vec<f64>,
}

impl AngularSpace {
    /// Wraps a point set with the angular metric; panics on zero vectors.
    pub fn new(points: PointSet) -> Self {
        let inv_norms: Vec<f64> = (0..points.len())
            .map(|i| {
                let c = points.coords(PointId::from(i));
                let norm = c.iter().map(|x| x * x).sum::<f64>().sqrt();
                assert!(norm > 0.0, "zero vector at index {i} has no direction");
                1.0 / norm
            })
            .collect();
        Self { points, inv_norms }
    }

    /// The underlying point set.
    pub fn points(&self) -> &PointSet {
        &self.points
    }
}

impl MetricSpace for AngularSpace {
    fn n(&self) -> usize {
        self.points.len()
    }

    #[inline]
    fn dist(&self, i: PointId, j: PointId) -> f64 {
        if i == j {
            return 0.0;
        }
        let a = self.points.coords(i);
        let b = self.points.coords(j);
        let mut dot = 0.0;
        for d in 0..a.len() {
            dot += a[d] * b[d];
        }
        let cos = (dot * self.inv_norms[i.idx()] * self.inv_norms[j.idx()]).clamp(-1.0, 1.0);
        cos.acos()
    }

    fn point_weight(&self) -> u64 {
        self.points.dim() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::{FRAC_PI_2, PI};

    fn space() -> AngularSpace {
        AngularSpace::new(PointSet::from_rows(&[
            vec![1.0, 0.0],
            vec![0.0, 1.0],
            vec![-1.0, 0.0],
            vec![5.0, 0.0], // same direction as point 0, different magnitude
        ]))
    }

    #[test]
    fn right_angles_and_opposites() {
        let m = space();
        assert!((m.dist(PointId(0), PointId(1)) - FRAC_PI_2).abs() < 1e-12);
        assert!((m.dist(PointId(0), PointId(2)) - PI).abs() < 1e-12);
    }

    #[test]
    fn magnitude_invariant() {
        let m = space();
        assert_eq!(m.dist(PointId(0), PointId(3)), 0.0);
        assert!((m.dist(PointId(1), PointId(3)) - FRAC_PI_2).abs() < 1e-12);
    }

    #[test]
    fn satisfies_metric_axioms() {
        use crate::datasets;
        // Random directions (shift cube points away from the origin).
        let mut rows = Vec::new();
        let ps = datasets::uniform_cube(80, 3, 5);
        for id in ps.ids() {
            let c = ps.coords(id);
            rows.push(vec![c[0] + 0.1, c[1] + 0.1, c[2] + 0.1]);
        }
        let m = AngularSpace::new(PointSet::from_rows(&rows));
        assert_eq!(crate::validate::check_metric_axioms(&m, 800, 1e-9, 3), None);
    }

    #[test]
    #[should_panic(expected = "zero vector")]
    fn rejects_zero_vectors() {
        AngularSpace::new(PointSet::from_rows(&[vec![0.0, 0.0]]));
    }
}
