//! Distance-evaluation counting wrapper, used by the benchmark harness to
//! compare oracle usage across algorithms.

use std::sync::atomic::{AtomicU64, Ordering};

use crate::point::PointId;
use crate::space::MetricSpace;

/// Wraps any [`MetricSpace`] and counts how many times the distance oracle
/// is invoked. Thread-safe (relaxed atomic), so counts are exact even when
/// machine-local computation runs under rayon.
#[derive(Debug)]
pub struct CountingSpace<M> {
    inner: M,
    calls: AtomicU64,
}

impl<M: MetricSpace> CountingSpace<M> {
    /// Wraps `inner` with a zeroed counter.
    pub fn new(inner: M) -> Self {
        Self {
            inner,
            calls: AtomicU64::new(0),
        }
    }

    /// Number of `dist`/`within` oracle calls since construction or the last
    /// [`CountingSpace::reset`].
    pub fn calls(&self) -> u64 {
        self.calls.load(Ordering::Relaxed)
    }

    /// Resets the counter to zero.
    pub fn reset(&self) {
        self.calls.store(0, Ordering::Relaxed);
    }

    /// The wrapped space.
    pub fn inner(&self) -> &M {
        &self.inner
    }
}

impl<M: MetricSpace> MetricSpace for CountingSpace<M> {
    fn n(&self) -> usize {
        self.inner.n()
    }

    #[inline]
    fn dist(&self, i: PointId, j: PointId) -> f64 {
        self.calls.fetch_add(1, Ordering::Relaxed);
        self.inner.dist(i, j)
    }

    fn point_weight(&self) -> u64 {
        self.inner.point_weight()
    }

    #[inline]
    fn within(&self, i: PointId, j: PointId, tau: f64) -> bool {
        self.calls.fetch_add(1, Ordering::Relaxed);
        self.inner.within(i, j, tau)
    }

    /// Forwards to the inner batched kernel, charging one oracle call per
    /// candidate so counts stay comparable across scalar and batched paths.
    fn count_within(&self, v: PointId, candidates: &[u32], tau: f64) -> usize {
        self.calls
            .fetch_add(candidates.len() as u64, Ordering::Relaxed);
        self.inner.count_within(v, candidates, tau)
    }

    /// See [`CountingSpace::count_within`] on this impl.
    fn neighbors_within(&self, v: PointId, candidates: &[u32], tau: f64, out: &mut Vec<u32>) {
        self.calls
            .fetch_add(candidates.len() as u64, Ordering::Relaxed);
        self.inner.neighbors_within(v, candidates, tau, out)
    }

    /// Forwards the whole grid to the inner multi-query kernel, charging
    /// `|vs| × |candidates|` oracle calls — what the per-query loop would
    /// charge — so tiling stays invisible to evaluation counts.
    fn count_within_many(&self, vs: &[u32], candidates: &[u32], tau: f64) -> Vec<usize> {
        self.calls
            .fetch_add((vs.len() * candidates.len()) as u64, Ordering::Relaxed);
        self.inner.count_within_many(vs, candidates, tau)
    }

    /// See [`CountingSpace::count_within_many`] on this impl.
    fn neighbors_within_many(&self, vs: &[u32], candidates: &[u32], tau: f64) -> Vec<Vec<u32>> {
        self.calls
            .fetch_add((vs.len() * candidates.len()) as u64, Ordering::Relaxed);
        self.inner.neighbors_within_many(vs, candidates, tau)
    }

    /// Forwards the batch to the inner multi-τ kernel, charging
    /// `|candidates| × |taus|` oracle calls — what the per-τ loop would
    /// charge — so the one-pass rung sweep stays invisible to evaluation
    /// counts.
    fn count_within_taus(&self, v: PointId, candidates: &[u32], taus: &[f64]) -> Vec<usize> {
        self.calls
            .fetch_add((candidates.len() * taus.len()) as u64, Ordering::Relaxed);
        self.inner.count_within_taus(v, candidates, taus)
    }

    /// See [`CountingSpace::count_within_taus`] on this impl.
    fn neighbors_within_taus(&self, v: PointId, candidates: &[u32], taus: &[f64]) -> Vec<Vec<u32>> {
        self.calls
            .fetch_add((candidates.len() * taus.len()) as u64, Ordering::Relaxed);
        self.inner.neighbors_within_taus(v, candidates, taus)
    }

    /// One oracle call per filled entry.
    fn dists_into(&self, v: PointId, candidates: &[u32], out: &mut Vec<f64>) {
        self.calls
            .fetch_add(candidates.len() as u64, Ordering::Relaxed);
        self.inner.dists_into(v, candidates, out)
    }

    /// One oracle call per set element.
    fn dist_to_set(&self, p: PointId, set: &[PointId]) -> f64 {
        self.calls.fetch_add(set.len() as u64, Ordering::Relaxed);
        self.inner.dist_to_set(p, set)
    }

    /// Kernel tallies are observability, not oracle work: forwarded
    /// without charging.
    fn kernel_stats(&self) -> Option<crate::space::KernelStats> {
        self.inner.kernel_stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::euclidean::EuclideanSpace;
    use crate::point::PointSet;

    #[test]
    fn counts_and_resets() {
        let m = CountingSpace::new(EuclideanSpace::new(PointSet::from_rows(&[
            vec![0.0],
            vec![1.0],
        ])));
        assert_eq!(m.calls(), 0);
        let _ = m.dist(PointId(0), PointId(1));
        let _ = m.within(PointId(0), PointId(1), 0.5);
        assert_eq!(m.calls(), 2);
        m.reset();
        assert_eq!(m.calls(), 0);
    }

    #[test]
    fn forwards_distances_unchanged() {
        let m = CountingSpace::new(EuclideanSpace::new(PointSet::from_rows(&[
            vec![0.0],
            vec![3.0],
        ])));
        assert_eq!(m.dist(PointId(0), PointId(1)), 3.0);
        assert_eq!(m.n(), 2);
        assert_eq!(m.point_weight(), 1);
    }
}
