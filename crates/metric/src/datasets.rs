//! Deterministic synthetic dataset generators.
//!
//! Every generator is seeded with a `u64` and driven by ChaCha8, so a
//! (generator, seed, parameters) triple reproduces bit-identical datasets
//! across runs, platforms, and thread schedules — a prerequisite for the
//! experiment harness.

use rand::{RngExt, SeedableRng};
use rand_chacha::ChaCha8Rng;

use crate::point::PointSet;

fn rng_for(seed: u64, salt: u64) -> ChaCha8Rng {
    ChaCha8Rng::seed_from_u64(seed ^ salt.wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

/// One standard-normal draw via Box–Muller (keeps us off `rand_distr`).
fn gaussian(rng: &mut impl RngExt) -> f64 {
    let u1: f64 = rng.random_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.random_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// `n` points uniform in the unit cube `[0, 1]^dim`.
pub fn uniform_cube(n: usize, dim: usize, seed: u64) -> PointSet {
    let mut rng = rng_for(seed, 1);
    let mut data = Vec::with_capacity(n * dim);
    for _ in 0..n * dim {
        data.push(rng.random_range(0.0..1.0));
    }
    PointSet::new(data, dim)
}

/// `n` points from a mixture of `clusters` spherical Gaussians with standard
/// deviation `sigma`, centers uniform in the unit cube. Equal mixture
/// weights; points are emitted cluster-interleaved so any prefix is still a
/// mixture.
pub fn gaussian_clusters(n: usize, dim: usize, clusters: usize, sigma: f64, seed: u64) -> PointSet {
    assert!(clusters > 0);
    let mut rng = rng_for(seed, 2);
    let mut centers = Vec::with_capacity(clusters * dim);
    for _ in 0..clusters * dim {
        centers.push(rng.random_range(0.0..1.0));
    }
    let mut data = Vec::with_capacity(n * dim);
    for i in 0..n {
        let c = i % clusters;
        for d in 0..dim {
            data.push(centers[c * dim + d] + sigma * gaussian(&mut rng));
        }
    }
    PointSet::new(data, dim)
}

/// Like [`gaussian_clusters`] but with power-law cluster sizes (`size_j ∝
/// 1/(j+1)^alpha`): a few huge clusters and a long tail of tiny ones, the
/// regime where coreset baselines degrade.
pub fn powerlaw_clusters(
    n: usize,
    dim: usize,
    clusters: usize,
    alpha: f64,
    sigma: f64,
    seed: u64,
) -> PointSet {
    assert!(clusters > 0 && clusters <= n);
    let mut rng = rng_for(seed, 3);
    let mut centers = Vec::with_capacity(clusters * dim);
    for _ in 0..clusters * dim {
        centers.push(rng.random_range(0.0..1.0));
    }
    // Power-law sizes, then round so they sum to n with each cluster >= 1.
    let weights: Vec<f64> = (0..clusters)
        .map(|j| 1.0 / ((j + 1) as f64).powf(alpha))
        .collect();
    let total: f64 = weights.iter().sum();
    let mut sizes: Vec<usize> = weights
        .iter()
        .map(|w| ((w / total) * n as f64) as usize)
        .collect();
    for s in sizes.iter_mut() {
        if *s == 0 {
            *s = 1;
        }
    }
    while sizes.iter().sum::<usize>() > n {
        let j = sizes.iter().enumerate().max_by_key(|(_, &s)| s).unwrap().0;
        sizes[j] -= 1;
    }
    while sizes.iter().sum::<usize>() < n {
        sizes[0] += 1;
    }
    let mut data = Vec::with_capacity(n * dim);
    for (c, &size) in sizes.iter().enumerate() {
        for _ in 0..size {
            for d in 0..dim {
                data.push(centers[c * dim + d] + sigma * gaussian(&mut rng));
            }
        }
    }
    PointSet::new(data, dim)
}

/// `n` points on a 2-D annulus with radii in `[inner, outer]` — a workload
/// where cluster structure is absent and thresholds sweep smoothly.
pub fn annulus(n: usize, inner: f64, outer: f64, seed: u64) -> PointSet {
    assert!(0.0 <= inner && inner <= outer);
    let mut rng = rng_for(seed, 4);
    let mut data = Vec::with_capacity(n * 2);
    for _ in 0..n {
        let theta = rng.random_range(0.0..std::f64::consts::TAU);
        // Area-uniform radius within the annulus.
        let r2 = rng.random_range(inner * inner..=outer * outer);
        let r = r2.sqrt();
        data.push(r * theta.cos());
        data.push(r * theta.sin());
    }
    PointSet::new(data, 2)
}

/// A `side × side` unit grid in 2-D (deterministic, no randomness): the
/// worst case for greedy center placement and a fixture with known optimal
/// k-center/k-diversity values for small sizes.
pub fn grid(side: usize) -> PointSet {
    let mut data = Vec::with_capacity(side * side * 2);
    for x in 0..side {
        for y in 0..side {
            data.push(x as f64);
            data.push(y as f64);
        }
    }
    PointSet::new(data, 2)
}

/// An adversarial instance for GMM-style greedy algorithms: `k` tight groups
/// at mutual distance ~1 plus one far outlier group at distance `spread`.
/// Sequential GMM handles it, but per-machine coresets can miss structure
/// when the partition splits groups.
pub fn adversarial_outlier(n: usize, k: usize, spread: f64, seed: u64) -> PointSet {
    assert!(k >= 2 && n >= k);
    let mut rng = rng_for(seed, 5);
    let mut data = Vec::with_capacity(n * 2);
    // k - 1 groups on a unit circle, 1 group far away.
    for i in 0..n {
        let g = i % k;
        let (cx, cy) = if g == k - 1 {
            (spread, 0.0)
        } else {
            let ang = std::f64::consts::TAU * (g as f64) / ((k - 1) as f64);
            (ang.cos(), ang.sin())
        };
        data.push(cx + 1e-3 * gaussian(&mut rng));
        data.push(cy + 1e-3 * gaussian(&mut rng));
    }
    PointSet::new(data, 2)
}

/// Random binary feature vectors for [`crate::HammingSpace`]: `n` points,
/// `bits` features, each set independently with probability `density`.
pub fn random_bitsets(n: usize, bits: usize, density: f64, seed: u64) -> Vec<Vec<usize>> {
    assert!((0.0..=1.0).contains(&density));
    let mut rng = rng_for(seed, 6);
    (0..n)
        .map(|_| {
            (0..bits)
                .filter(|_| rng.random_range(0.0..1.0) < density)
                .collect()
        })
        .collect()
}

/// A connected random geometric-style road network for
/// [`crate::GraphMetricSpace`]: `n` vertices on a random spanning tree plus
/// `extra_edges` random chords, weights uniform in `[1, 10]`.
pub fn random_road_network(n: usize, extra_edges: usize, seed: u64) -> Vec<(usize, usize, f64)> {
    assert!(n >= 2);
    let mut rng = rng_for(seed, 7);
    let mut edges = Vec::with_capacity(n - 1 + extra_edges);
    // Random spanning tree: attach vertex i to a random earlier vertex.
    for i in 1..n {
        let parent = rng.random_range(0..i);
        edges.push((parent, i, rng.random_range(1.0..10.0)));
    }
    for _ in 0..extra_edges {
        let a = rng.random_range(0..n);
        let b = rng.random_range(0..n);
        if a != b {
            edges.push((a, b, rng.random_range(1.0..10.0)));
        }
    }
    edges
}

/// Streams the "user embedding" workload — `clusters` interest groups whose
/// centers random-walk through `[0, 1]^dim` (drift `drift` per emitted
/// point), points Gaussian around the current center with deviation
/// `sigma` and cluster-interleaved emission — in `chunk` -point batches to
/// `emit`. Memory is O(chunk · dim + clusters · dim) regardless of `n`, so
/// n = 10⁷-scale grid-engine runs never materialize the full set; the
/// batches concatenate to exactly [`user_embeddings`] for the same
/// arguments.
#[allow(clippy::too_many_arguments)]
pub fn user_embeddings_chunked(
    n: usize,
    dim: usize,
    clusters: usize,
    sigma: f64,
    drift: f64,
    seed: u64,
    chunk: usize,
    mut emit: impl FnMut(&[f64]),
) {
    assert!(clusters > 0 && dim > 0 && chunk > 0);
    let mut rng = rng_for(seed, 8);
    let mut centers = Vec::with_capacity(clusters * dim);
    for _ in 0..clusters * dim {
        centers.push(rng.random_range(0.0..1.0));
    }
    let mut batch = Vec::with_capacity(chunk * dim);
    for i in 0..n {
        let c = i % clusters;
        for d in 0..dim {
            // Reflecting random walk keeps the drifting center in-cube.
            let mut x = centers[c * dim + d] + drift * gaussian(&mut rng);
            if x < 0.0 {
                x = -x;
            }
            if x > 1.0 {
                x = 2.0 - x;
            }
            centers[c * dim + d] = x.clamp(0.0, 1.0);
            batch.push(centers[c * dim + d] + sigma * gaussian(&mut rng));
        }
        if batch.len() == chunk * dim {
            emit(&batch);
            batch.clear();
        }
    }
    if !batch.is_empty() {
        emit(&batch);
    }
}

/// Materialized [`user_embeddings_chunked`]: the full `n`-point drifting
/// cluster workload as a [`PointSet`]. Prefer the chunked form above
/// n ≈ 10⁶ — this one allocates `n · dim` floats.
pub fn user_embeddings(
    n: usize,
    dim: usize,
    clusters: usize,
    sigma: f64,
    drift: f64,
    seed: u64,
) -> PointSet {
    let mut data = Vec::with_capacity(n * dim);
    user_embeddings_chunked(n, dim, clusters, sigma, drift, seed, 8192, |batch| {
        data.extend_from_slice(batch)
    });
    PointSet::new(data, dim)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generators_are_deterministic() {
        assert_eq!(uniform_cube(50, 3, 7), uniform_cube(50, 3, 7));
        assert_eq!(
            gaussian_clusters(40, 2, 4, 0.05, 9),
            gaussian_clusters(40, 2, 4, 0.05, 9)
        );
        assert_ne!(uniform_cube(50, 3, 7), uniform_cube(50, 3, 8));
    }

    #[test]
    fn sizes_and_dims_are_respected() {
        assert_eq!(uniform_cube(10, 5, 1).len(), 10);
        assert_eq!(uniform_cube(10, 5, 1).dim(), 5);
        assert_eq!(gaussian_clusters(33, 4, 5, 0.1, 1).len(), 33);
        assert_eq!(powerlaw_clusters(100, 2, 10, 1.5, 0.01, 1).len(), 100);
        assert_eq!(annulus(25, 1.0, 2.0, 1).len(), 25);
        assert_eq!(grid(4).len(), 16);
        assert_eq!(adversarial_outlier(30, 5, 100.0, 1).len(), 30);
    }

    #[test]
    fn annulus_respects_radii() {
        let ps = annulus(200, 2.0, 3.0, 42);
        for id in ps.ids() {
            let c = ps.coords(id);
            let r = (c[0] * c[0] + c[1] * c[1]).sqrt();
            assert!(
                (2.0 - 1e-9..=3.0 + 1e-9).contains(&r),
                "radius {r} outside annulus"
            );
        }
    }

    #[test]
    fn grid_is_integer_lattice() {
        let ps = grid(3);
        let mut seen = std::collections::HashSet::new();
        for id in ps.ids() {
            let c = ps.coords(id);
            assert_eq!(c[0].fract(), 0.0);
            assert_eq!(c[1].fract(), 0.0);
            seen.insert((c[0] as i64, c[1] as i64));
        }
        assert_eq!(seen.len(), 9);
    }

    #[test]
    fn road_network_is_connected() {
        let edges = random_road_network(30, 10, 3);
        let g = crate::GraphMetricSpace::from_edges(30, &edges);
        assert!(
            g.is_ok(),
            "spanning-tree construction must connect the graph"
        );
    }

    #[test]
    fn user_embeddings_chunks_concatenate_to_the_materialized_set() {
        let full = user_embeddings(500, 4, 7, 0.02, 1e-3, 11);
        assert_eq!(full.len(), 500);
        assert_eq!(full.dim(), 4);
        for chunk in [1usize, 97, 128, 500, 1000] {
            let mut data = Vec::new();
            user_embeddings_chunked(500, 4, 7, 0.02, 1e-3, 11, chunk, |b| {
                data.extend_from_slice(b)
            });
            assert_eq!(PointSet::new(data, 4), full, "chunk = {chunk}");
        }
        // In-cube up to the Gaussian tail around a clamped center.
        for id in full.ids() {
            for &x in full.coords(id) {
                assert!((-0.5..1.5).contains(&x));
            }
        }
        assert_ne!(user_embeddings(500, 4, 7, 0.02, 1e-3, 12), full);
    }

    #[test]
    fn bitsets_respect_density_extremes() {
        let none = random_bitsets(10, 64, 0.0, 1);
        assert!(none.iter().all(|b| b.is_empty()));
        let all = random_bitsets(10, 64, 1.0, 1);
        assert!(all.iter().all(|b| b.len() == 64));
    }
}
