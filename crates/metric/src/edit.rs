//! Levenshtein (edit-distance) metric over byte strings — sequence data
//! (k-center over reads/keywords) as yet another non-geometric space.
//!
//! Pairwise edit distance is O(len²); the space computes distances **on
//! demand** with a small LRU-free memo of the full matrix when `n` is
//! modest, because the clustering algorithms revisit pairs.

use parking_lot::Mutex;

use crate::point::PointId;
use crate::space::MetricSpace;

/// Levenshtein distance metric over a set of byte strings.
///
/// Distances are memoized in a shared upper-triangle cache (thread-safe,
/// so rayon-parallel machine computation reuses entries).
#[derive(Debug)]
pub struct EditDistanceSpace {
    strings: Vec<Vec<u8>>,
    // memo[i * n + j] = distance + 1 (0 = unset); Mutex keeps it simple —
    // the O(len²) DP dwarfs the lock cost.
    memo: Mutex<Vec<u32>>,
}

fn levenshtein(a: &[u8], b: &[u8]) -> u32 {
    if a.is_empty() {
        return b.len() as u32;
    }
    if b.is_empty() {
        return a.len() as u32;
    }
    let mut prev: Vec<u32> = (0..=b.len() as u32).collect();
    let mut cur = vec![0u32; b.len() + 1];
    for (i, &ca) in a.iter().enumerate() {
        cur[0] = i as u32 + 1;
        for (j, &cb) in b.iter().enumerate() {
            let sub = prev[j] + u32::from(ca != cb);
            cur[j + 1] = sub.min(prev[j + 1] + 1).min(cur[j] + 1);
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[b.len()]
}

impl EditDistanceSpace {
    /// Builds the space over the given strings.
    pub fn new<S: AsRef<[u8]>>(strings: &[S]) -> Self {
        let strings: Vec<Vec<u8>> = strings.iter().map(|s| s.as_ref().to_vec()).collect();
        let n = strings.len();
        Self {
            strings,
            memo: Mutex::new(vec![0u32; n * n]),
        }
    }

    /// The string behind a point id.
    pub fn string(&self, i: PointId) -> &[u8] {
        &self.strings[i.idx()]
    }
}

impl MetricSpace for EditDistanceSpace {
    fn n(&self) -> usize {
        self.strings.len()
    }

    fn dist(&self, i: PointId, j: PointId) -> f64 {
        if i == j {
            return 0.0;
        }
        let n = self.strings.len();
        let key = i.idx() * n + j.idx();
        {
            let memo = self.memo.lock();
            let v = memo[key];
            if v != 0 {
                return (v - 1) as f64;
            }
        }
        let d = levenshtein(&self.strings[i.idx()], &self.strings[j.idx()]);
        let mut memo = self.memo.lock();
        memo[key] = d + 1;
        memo[j.idx() * n + i.idx()] = d + 1;
        d as f64
    }

    fn point_weight(&self) -> u64 {
        // Average string length in 8-byte words, at least 1.
        let total: usize = self.strings.iter().map(Vec::len).sum();
        ((total / self.strings.len().max(1)) as u64 / 8).max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn textbook_distances() {
        let m = EditDistanceSpace::new(&["kitten", "sitting", "", "kitten"]);
        assert_eq!(m.dist(PointId(0), PointId(1)), 3.0);
        assert_eq!(m.dist(PointId(0), PointId(2)), 6.0);
        assert_eq!(m.dist(PointId(0), PointId(3)), 0.0);
        assert_eq!(m.dist(PointId(2), PointId(2)), 0.0);
    }

    #[test]
    fn memo_is_consistent_and_symmetric() {
        let m = EditDistanceSpace::new(&["abc", "axc", "xyz"]);
        let d1 = m.dist(PointId(0), PointId(1));
        let d2 = m.dist(PointId(1), PointId(0)); // memo hit, reversed
        assert_eq!(d1, d2);
        assert_eq!(d1, 1.0);
    }

    #[test]
    fn satisfies_metric_axioms() {
        let words: Vec<String> = (0..40)
            .map(|i| format!("{:06b}x{:04}", i % 64, (i * 37) % 97))
            .collect();
        let m = EditDistanceSpace::new(&words);
        assert_eq!(
            crate::validate::check_metric_axioms(&m, 1500, 1e-9, 5),
            None
        );
    }
}
