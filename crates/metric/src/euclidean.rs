//! Euclidean (L2) metric over flat point storage.

use crate::point::{PointId, PointSet};
use crate::space::{self, MetricSpace};

/// The Euclidean metric `d(x, y) = ||x - y||_2` over a [`PointSet`].
#[derive(Debug, Clone)]
pub struct EuclideanSpace {
    points: PointSet,
}

impl EuclideanSpace {
    /// Wraps a point set with the L2 metric.
    pub fn new(points: PointSet) -> Self {
        Self { points }
    }

    /// The underlying point set.
    pub fn points(&self) -> &PointSet {
        &self.points
    }

    /// Squared distance; cheaper than [`MetricSpace::dist`] when only
    /// comparisons are needed. (Note: squared L2 is *not* itself a metric.)
    #[inline]
    pub fn dist_sq(&self, i: PointId, j: PointId) -> f64 {
        let a = self.points.coords(i);
        let b = self.points.coords(j);
        // Simple indexed loop: auto-vectorizes for the common small dims.
        let mut acc = 0.0;
        for d in 0..a.len() {
            let t = a[d] - b[d];
            acc += t * t;
        }
        acc
    }
}

impl MetricSpace for EuclideanSpace {
    fn n(&self) -> usize {
        self.points.len()
    }

    #[inline]
    fn dist(&self, i: PointId, j: PointId) -> f64 {
        self.dist_sq(i, j).sqrt()
    }

    fn point_weight(&self) -> u64 {
        self.points.dim() as u64
    }

    #[inline]
    fn within(&self, i: PointId, j: PointId, tau: f64) -> bool {
        // Avoids the sqrt on the hot threshold-graph adjacency path.
        tau >= 0.0 && self.dist_sq(i, j) <= tau * tau
    }

    /// Batched kernel over the flat coordinate buffer: one slice borrow for
    /// the query row, direct row offsets for candidates (no `PointId`
    /// indirection or per-pair slice setup), squared-threshold comparison
    /// with no sqrt — the bulk extension of the [`EuclideanSpace::dist_sq`]
    /// trick above. The `zip` keeps the inner loop bounds-check-free so it
    /// vectorizes. Batches past [`space::PAR_MIN_BULK`] split into fixed
    /// candidate chunks across the worker pool; the integer chunk counts
    /// sum to exactly the sequential count.
    fn count_within(&self, v: PointId, candidates: &[u32], tau: f64) -> usize {
        if tau < 0.0 {
            return 0;
        }
        let t2 = tau * tau;
        let dim = self.points.dim();
        let data = self.points.raw();
        let a = &data[v.idx() * dim..(v.idx() + 1) * dim];
        let scan = |chunk: &[u32]| {
            chunk
                .iter()
                .filter(|&&c| {
                    let b = &data[c as usize * dim..c as usize * dim + dim];
                    let mut acc = 0.0;
                    for (x, y) in a.iter().zip(b) {
                        let t = x - y;
                        acc += t * t;
                    }
                    acc <= t2
                })
                .count()
        };
        if space::par_bulk(candidates.len()) {
            space::par_count_chunks(candidates, scan)
        } else {
            scan(candidates)
        }
    }

    /// Batched filter twin of [`MetricSpace::count_within`]; same kernel,
    /// collecting ids instead of counting. The parallel path concatenates
    /// per-chunk survivors in chunk order, so candidate order is preserved
    /// exactly as in the sequential filter.
    fn neighbors_within(&self, v: PointId, candidates: &[u32], tau: f64, out: &mut Vec<u32>) {
        out.clear();
        if tau < 0.0 {
            return;
        }
        let t2 = tau * tau;
        let dim = self.points.dim();
        let data = self.points.raw();
        let a = &data[v.idx() * dim..(v.idx() + 1) * dim];
        let keep = |c: u32| {
            let b = &data[c as usize * dim..c as usize * dim + dim];
            let mut acc = 0.0;
            for (x, y) in a.iter().zip(b) {
                let t = x - y;
                acc += t * t;
            }
            acc <= t2
        };
        if space::par_bulk(candidates.len()) {
            space::par_filter_chunks(candidates, out, |chunk| {
                chunk.iter().copied().filter(|&c| keep(c)).collect()
            });
        } else {
            out.extend(candidates.iter().copied().filter(|&c| keep(c)));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn space() -> EuclideanSpace {
        EuclideanSpace::new(PointSet::from_rows(&[
            vec![0.0, 0.0],
            vec![3.0, 4.0],
            vec![-3.0, -4.0],
        ]))
    }

    #[test]
    fn pythagoras() {
        let m = space();
        assert_eq!(m.dist(PointId(0), PointId(1)), 5.0);
        assert_eq!(m.dist(PointId(1), PointId(2)), 10.0);
    }

    #[test]
    fn identity_and_symmetry() {
        let m = space();
        assert_eq!(m.dist(PointId(1), PointId(1)), 0.0);
        assert_eq!(
            m.dist(PointId(0), PointId(2)),
            m.dist(PointId(2), PointId(0))
        );
    }

    #[test]
    fn within_avoids_sqrt_consistently() {
        let m = space();
        assert!(m.within(PointId(0), PointId(1), 5.0));
        assert!(!m.within(PointId(0), PointId(1), 4.999));
        assert!(!m.within(PointId(0), PointId(1), -1.0));
    }

    #[test]
    fn point_weight_is_dimension() {
        assert_eq!(space().point_weight(), 2);
    }
}
