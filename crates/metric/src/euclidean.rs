//! Euclidean (L2) metric over flat point storage.

use crate::point::{PointId, PointSet};
use crate::space::{self, MetricSpace};

/// Target footprint of one candidate tile in the multi-query kernels:
/// small enough to live in L1 alongside the query row and norm slices, so
/// each candidate row is streamed from DRAM once per tile and then reused
/// from cache across every query in the batch.
const TILE_BYTES: usize = 16 * 1024;

/// Candidate-tile length for `dim`-dimensional rows: [`TILE_BYTES`] worth
/// of coordinates, floored so tiny tiles don't drown in loop overhead. A
/// function of the dimension only — never of thread count or batch size —
/// so tiling can't perturb determinism (and per-pair arithmetic is
/// independent of tile boundaries anyway).
fn tile_len(dim: usize) -> usize {
    (TILE_BYTES / (8 * dim.max(1))).clamp(16, 4096)
}

/// Minimum dimension for the Gram-estimate pair decision in the tiled
/// kernels. The estimate costs a fixed ~10 extra ops per pair (norm adds,
/// band, two compares) on top of the dot product; that amortizes over the
/// `dim` multiply-adds it saves only for wide rows. Below this, the tiled
/// scan keeps the plain diff evaluation — measured at d=4 the diff loop is
/// already ≈3× faster per pair than Gram + band (see DESIGN.md §6.2).
const GRAM_MIN_DIM: usize = 16;

/// Runtime-detected AVX2+FMA dot product for the Gram **estimate** only.
///
/// rustc's default `x86-64` baseline is SSE2 (two f64 lanes), which leaves
/// most of a modern core idle in the dot-product inner loop. This kernel
/// uses 256-bit FMA when the host supports it — roughly 4× the multiply-add
/// throughput. FMA and the wider accumulator split round differently than
/// the scalar fold, which is safe *here only*: the result feeds the banded
/// Gram estimate, whose error band already covers accumulation-order slack
/// (FMA's fused rounding is strictly tighter than mul-then-add), and every
/// pair inside the band is re-decided with the exact scalar
/// `row_dist_sq`. Decisions therefore stay bit-identical to the scalar
/// kernel on every host, SIMD or not. Exact distance-returning paths never
/// call this.
#[cfg(target_arch = "x86_64")]
mod simd {
    use std::sync::OnceLock;

    /// One-time cpuid probe; a cached bool thereafter (function of the
    /// host, never of thread count or input — determinism is untouched).
    #[inline]
    pub fn avx_available() -> bool {
        static AVX: OnceLock<bool> = OnceLock::new();
        *AVX.get_or_init(|| {
            std::arch::is_x86_feature_detected!("avx2")
                && std::arch::is_x86_feature_detected!("fma")
        })
    }

    /// # Safety
    /// Caller must ensure the host supports AVX2 and FMA
    /// ([`avx_available`]).
    #[target_feature(enable = "avx2", enable = "fma")]
    pub unsafe fn dot_avx2_fma(a: &[f64], b: &[f64]) -> f64 {
        use std::arch::x86_64::*;
        let n = a.len();
        debug_assert_eq!(n, b.len());
        let mut acc0 = _mm256_setzero_pd();
        let mut acc1 = _mm256_setzero_pd();
        let mut i = 0;
        while i + 8 <= n {
            let a0 = _mm256_loadu_pd(a.as_ptr().add(i));
            let b0 = _mm256_loadu_pd(b.as_ptr().add(i));
            acc0 = _mm256_fmadd_pd(a0, b0, acc0);
            let a1 = _mm256_loadu_pd(a.as_ptr().add(i + 4));
            let b1 = _mm256_loadu_pd(b.as_ptr().add(i + 4));
            acc1 = _mm256_fmadd_pd(a1, b1, acc1);
            i += 8;
        }
        if i + 4 <= n {
            let a0 = _mm256_loadu_pd(a.as_ptr().add(i));
            let b0 = _mm256_loadu_pd(b.as_ptr().add(i));
            acc0 = _mm256_fmadd_pd(a0, b0, acc0);
            i += 4;
        }
        let acc = _mm256_add_pd(acc0, acc1);
        let lo = _mm256_castpd256_pd128(acc);
        let hi = _mm256_extractf128_pd(acc, 1);
        let pair = _mm_add_pd(lo, hi);
        let one = _mm_add_sd(pair, _mm_unpackhi_pd(pair, pair));
        let mut dot = _mm_cvtsd_f64(one);
        while i < n {
            dot += a.get_unchecked(i) * b.get_unchecked(i);
            i += 1;
        }
        dot
    }
}

/// The Euclidean metric `d(x, y) = ||x - y||_2` over a [`PointSet`].
#[derive(Debug, Clone)]
pub struct EuclideanSpace {
    points: PointSet,
    /// `sq_norms[i] = ||x_i||²`, cached at construction for the Gram-trick
    /// multi-query kernels (`||u − v||² = ||u||² + ||v||² − 2⟨u, v⟩`).
    sq_norms: Vec<f64>,
}

impl EuclideanSpace {
    /// Wraps a point set with the L2 metric, caching per-point squared
    /// norms (one pass over the coordinates).
    pub fn new(points: PointSet) -> Self {
        let dim = points.dim();
        let sq_norms = points
            .raw()
            .chunks(dim.max(1))
            .map(|row| row.iter().map(|x| x * x).sum())
            .collect();
        Self { points, sq_norms }
    }

    /// The underlying point set.
    pub fn points(&self) -> &PointSet {
        &self.points
    }

    /// Squared distance; cheaper than [`MetricSpace::dist`] when only
    /// comparisons are needed. (Note: squared L2 is *not* itself a metric.)
    #[inline]
    pub fn dist_sq(&self, i: PointId, j: PointId) -> f64 {
        let a = self.points.coords(i);
        let b = self.points.coords(j);
        // Simple indexed loop: auto-vectorizes for the common small dims.
        let mut acc = 0.0;
        for d in 0..a.len() {
            let t = a[d] - b[d];
            acc += t * t;
        }
        acc
    }

    /// Exact squared distance between two raw rows — the same
    /// floating-point evaluation as [`EuclideanSpace::dist_sq`], used by
    /// the tiled kernels to resolve pairs the Gram estimate can't classify.
    #[inline]
    fn row_dist_sq(a: &[f64], b: &[f64]) -> f64 {
        let mut acc = 0.0;
        for (x, y) in a.iter().zip(b) {
            let t = x - y;
            acc += t * t;
        }
        acc
    }

    /// Dot product with four independent accumulators. A single-accumulator
    /// loop is a serial FP add chain the compiler must not reorder (adds
    /// aren't associative), capping it at one add per cycle; splitting the
    /// chain four ways lets it vectorize. The summation order differs from
    /// a sequential fold, which is fine *here only*: the result feeds the
    /// Gram **estimate**, whose error band already covers any
    /// accumulation-order slack, never a returned distance. The order is a
    /// fixed function of the slice, so determinism is untouched.
    #[inline]
    fn row_dot(a: &[f64], b: &[f64]) -> f64 {
        #[cfg(target_arch = "x86_64")]
        if simd::avx_available() {
            // SAFETY: gated on runtime AVX2+FMA detection.
            return unsafe { simd::dot_avx2_fma(a, b) };
        }
        let split = a.len() & !3;
        let mut acc = [0.0f64; 4];
        for (ca, cb) in a[..split].chunks_exact(4).zip(b[..split].chunks_exact(4)) {
            acc[0] += ca[0] * cb[0];
            acc[1] += ca[1] * cb[1];
            acc[2] += ca[2] * cb[2];
            acc[3] += ca[3] * cb[3];
        }
        let mut dot = (acc[0] + acc[1]) + (acc[2] + acc[3]);
        for (x, y) in a[split..].iter().zip(&b[split..]) {
            dot += x * y;
        }
        dot
    }

    /// Tiled multi-query threshold scan: for each query in `qs`, decides
    /// every candidate against `t2 = τ²` and folds the per-candidate
    /// verdicts with `emit`. Candidates stream in [`tile_len`]-row tiles so
    /// a tile is loaded from memory once and reused from cache by all
    /// queries (the whole point — the one-query kernels are memory-bound
    /// at d=32, see DESIGN.md §6.2).
    ///
    /// Per pair, the Gram identity `||u−v||² = ||u||² + ||v||² − 2⟨u,v⟩`
    /// gives an estimate `g` of the squared distance from cached norms and
    /// a dot product. `g` rounds differently than the diff-based
    /// `dist_sq`, so it is only trusted outside a conservative error band
    /// around `t2`; pairs inside the band are re-decided with the exact
    /// [`EuclideanSpace::row_dist_sq`]. Decisions therefore match the
    /// scalar kernel bit-for-bit — including at exact-boundary thresholds
    /// — while the band (≈ ulp-scale, so re-computes are vanishingly rare
    /// on real data) keeps the fast path hot. Non-finite inputs fall into
    /// the band's "unclassified" branch and get the exact answer too.
    fn scan_tiles<R: Default>(
        &self,
        qs: &[u32],
        candidates: &[u32],
        t2: f64,
        mut emit: impl FnMut(&mut R, u32, bool),
    ) -> Vec<R> {
        let dim = self.points.dim();
        let data = self.points.raw();
        let norms = &self.sq_norms;
        // |g − dist_sq| for same-pair inputs is bounded by the usual
        // γ-style accumulation-error analysis at ≈ (4d + 32)·ε·(‖u‖² +
        // ‖v‖² + τ²); anything closer to t2 than that is re-computed
        // exactly, so overshooting the constant only costs speed.
        let band_scale = (4.0 * dim as f64 + 32.0) * f64::EPSILON;
        let gram = dim >= GRAM_MIN_DIM;
        let mut rows: Vec<R> = std::iter::repeat_with(R::default).take(qs.len()).collect();
        for tile in candidates.chunks(tile_len(dim)) {
            for (row, &q) in rows.iter_mut().zip(qs) {
                let a = &data[q as usize * dim..q as usize * dim + dim];
                let na = norms[q as usize];
                for &c in tile {
                    let b = &data[c as usize * dim..c as usize * dim + dim];
                    let keep = if gram {
                        let nb = norms[c as usize];
                        let g = na + nb - 2.0 * Self::row_dot(a, b);
                        let band = band_scale * (na + nb + t2);
                        if g <= t2 - band {
                            true
                        } else if g > t2 + band {
                            false
                        } else {
                            Self::row_dist_sq(a, b) <= t2
                        }
                    } else {
                        // Narrow rows: the diff evaluation is as cheap as
                        // the dot product and needs no band — the tiles
                        // still deliver the cache reuse.
                        Self::row_dist_sq(a, b) <= t2
                    };
                    emit(row, c, keep);
                }
            }
        }
        rows
    }

    /// Multi-τ single-query scan: classifies each candidate in `chunk`
    /// into its entry rung against the ascending squared thresholds `t2s`
    /// and emits `(candidate, entry)` for candidates some rung admits.
    ///
    /// Per pair the Gram estimate and norms are computed **once** and
    /// re-judged against each rung's own error band; the exact
    /// [`EuclideanSpace::row_dist_sq`] is computed lazily on the first
    /// band hit and reused for every later rung. Each rung's verdict is
    /// therefore exactly `dist_sq <= t2s[j]` — the scalar kernel's — and
    /// since `t2s` is non-decreasing the verdict sequence is monotone, so
    /// the first admitting rung fully describes all of them.
    fn scan_rungs(
        &self,
        a: &[f64],
        na: f64,
        chunk: &[u32],
        t2s: &[f64],
        mut emit: impl FnMut(u32, usize),
    ) {
        let dim = self.points.dim();
        let data = self.points.raw();
        let norms = &self.sq_norms;
        let band_scale = (4.0 * dim as f64 + 32.0) * f64::EPSILON;
        let gram = dim >= GRAM_MIN_DIM;
        for &c in chunk {
            let b = &data[c as usize * dim..c as usize * dim + dim];
            if gram {
                let nb = norms[c as usize];
                let g = na + nb - 2.0 * Self::row_dot(a, b);
                let mut exact = f64::NAN;
                let mut have_exact = false;
                for (j, &t2) in t2s.iter().enumerate() {
                    let band = band_scale * (na + nb + t2);
                    let keep = if g <= t2 - band {
                        true
                    } else if g > t2 + band {
                        false
                    } else {
                        if !have_exact {
                            exact = Self::row_dist_sq(a, b);
                            have_exact = true;
                        }
                        exact <= t2
                    };
                    if keep {
                        emit(c, j);
                        break;
                    }
                }
            } else {
                let ds = Self::row_dist_sq(a, b);
                // First rung with t2 >= ds, i.e. ds <= t2 — the scalar
                // verdict. `!(ds <= last)` also sheds NaN distances, which
                // no rung admits.
                if t2s.last().is_some_and(|&last| ds <= last) {
                    emit(c, t2s.partition_point(|&t2| t2 < ds));
                }
            }
        }
    }

    /// Splits the non-decreasing `taus` into the negative prefix (always
    /// empty/zero rungs — the scalar kernels return nothing for τ < 0) and
    /// the squared non-negative suffix.
    fn split_taus(taus: &[f64]) -> (usize, Vec<f64>) {
        debug_assert!(
            taus.windows(2).all(|w| w[0] <= w[1]),
            "multi-τ kernels require non-decreasing thresholds"
        );
        let j0 = taus.partition_point(|&t| t < 0.0);
        (j0, taus[j0..].iter().map(|&t| t * t).collect())
    }
}

impl MetricSpace for EuclideanSpace {
    fn n(&self) -> usize {
        self.points.len()
    }

    #[inline]
    fn dist(&self, i: PointId, j: PointId) -> f64 {
        self.dist_sq(i, j).sqrt()
    }

    fn point_weight(&self) -> u64 {
        self.points.dim() as u64
    }

    #[inline]
    fn within(&self, i: PointId, j: PointId, tau: f64) -> bool {
        // Avoids the sqrt on the hot threshold-graph adjacency path.
        tau >= 0.0 && self.dist_sq(i, j) <= tau * tau
    }

    /// Batched kernel over the flat coordinate buffer: one slice borrow for
    /// the query row, direct row offsets for candidates (no `PointId`
    /// indirection or per-pair slice setup), squared-threshold comparison
    /// with no sqrt — the bulk extension of the [`EuclideanSpace::dist_sq`]
    /// trick above. The `zip` keeps the inner loop bounds-check-free so it
    /// vectorizes. Batches whose total work passes the weighted gate split
    /// into fixed candidate chunks across the worker pool; the integer
    /// chunk counts sum to exactly the sequential count.
    fn count_within(&self, v: PointId, candidates: &[u32], tau: f64) -> usize {
        if tau < 0.0 {
            return 0;
        }
        let t2 = tau * tau;
        let dim = self.points.dim();
        let data = self.points.raw();
        let a = &data[v.idx() * dim..(v.idx() + 1) * dim];
        let scan = |chunk: &[u32]| {
            chunk
                .iter()
                .filter(|&&c| {
                    let b = &data[c as usize * dim..c as usize * dim + dim];
                    Self::row_dist_sq(a, b) <= t2
                })
                .count()
        };
        if space::par_bulk_weighted(candidates.len(), dim) {
            space::par_count_chunks_weighted(candidates, dim, scan)
        } else {
            scan(candidates)
        }
    }

    /// Batched filter twin of [`MetricSpace::count_within`]; same kernel,
    /// collecting ids instead of counting. The parallel path concatenates
    /// per-chunk survivors in chunk order, so candidate order is preserved
    /// exactly as in the sequential filter.
    fn neighbors_within(&self, v: PointId, candidates: &[u32], tau: f64, out: &mut Vec<u32>) {
        out.clear();
        if tau < 0.0 {
            return;
        }
        let t2 = tau * tau;
        let dim = self.points.dim();
        let data = self.points.raw();
        let a = &data[v.idx() * dim..(v.idx() + 1) * dim];
        let keep = |c: u32| {
            let b = &data[c as usize * dim..c as usize * dim + dim];
            Self::row_dist_sq(a, b) <= t2
        };
        if space::par_bulk_weighted(candidates.len(), dim) {
            space::par_filter_chunks_weighted(candidates, dim, out, |chunk| {
                chunk.iter().copied().filter(|&c| keep(c)).collect()
            });
        } else {
            out.extend(candidates.iter().copied().filter(|&c| keep(c)));
        }
    }

    /// Tiled Gram-block kernel (see [`EuclideanSpace::scan_tiles`]). Large
    /// query batches split into fixed query chunks across the worker pool;
    /// whole queries never straddle a chunk and rows concatenate in query
    /// order, so the output matches the sequential tile walk — which in
    /// turn matches the per-query scalar kernel bit-for-bit.
    fn count_within_many(&self, vs: &[u32], candidates: &[u32], tau: f64) -> Vec<usize> {
        if tau < 0.0 {
            return vec![0; vs.len()];
        }
        let t2 = tau * tau;
        let run = |qs: &[u32]| {
            self.scan_tiles(qs, candidates, t2, |count: &mut usize, _, keep| {
                *count += keep as usize;
            })
        };
        if space::par_bulk_pairs(vs.len(), candidates.len()) {
            space::par_query_chunks(vs, run)
        } else {
            run(vs)
        }
    }

    /// Filter twin of [`MetricSpace::count_within_many`] over the same
    /// tiled scan: tiles visit candidates in order and each query row
    /// appends within-tile survivors in order, so every neighbor list
    /// preserves candidate order exactly.
    fn neighbors_within_many(&self, vs: &[u32], candidates: &[u32], tau: f64) -> Vec<Vec<u32>> {
        if tau < 0.0 {
            return vec![Vec::new(); vs.len()];
        }
        let t2 = tau * tau;
        let run = |qs: &[u32]| {
            self.scan_tiles(qs, candidates, t2, |row: &mut Vec<u32>, c, keep| {
                if keep {
                    row.push(c);
                }
            })
        };
        if space::par_bulk_pairs(vs.len(), candidates.len()) {
            space::par_query_chunks(vs, run)
        } else {
            run(vs)
        }
    }

    /// Multi-τ kernel over one candidate pass (see
    /// [`EuclideanSpace::scan_rungs`]): norms and the Gram dot product are
    /// computed once per pair and classified against every rung, instead of
    /// once per rung. Chunked counts combine by elementwise integer sums,
    /// so the parallel path equals the sequential scan exactly.
    fn count_within_taus(&self, v: PointId, candidates: &[u32], taus: &[f64]) -> Vec<usize> {
        let (j0, t2s) = Self::split_taus(taus);
        let mut counts = vec![0usize; taus.len()];
        if t2s.is_empty() {
            return counts;
        }
        let dim = self.points.dim();
        let data = self.points.raw();
        let a = &data[v.idx() * dim..(v.idx() + 1) * dim];
        let na = self.sq_norms[v.idx()];
        let scan = |chunk: &[u32]| -> Vec<usize> {
            let mut entry_counts = vec![0usize; t2s.len()];
            self.scan_rungs(a, na, chunk, &t2s, |_, j| entry_counts[j] += 1);
            entry_counts
        };
        let entry_counts = if space::par_bulk_weighted(candidates.len(), dim * t2s.len()) {
            use rayon::prelude::*;
            candidates
                .par_chunks(space::par_chunk_size_weighted(candidates.len(), dim))
                .map(scan)
                .reduce(
                    || vec![0usize; t2s.len()],
                    |mut acc, part| {
                        for (a, b) in acc.iter_mut().zip(&part) {
                            *a += b;
                        }
                        acc
                    },
                )
        } else {
            scan(candidates)
        };
        let mut acc = 0usize;
        for (j, &e) in entry_counts.iter().enumerate() {
            acc += e;
            counts[j0 + j] = acc;
        }
        counts
    }

    /// Filter twin of [`MetricSpace::count_within_taus`]: one classification
    /// pass, then each rung's list is the ordered filter of the admitted
    /// `(candidate, entry)` pairs — candidate order preserved per rung, as
    /// the per-rung scalar kernel would produce.
    fn neighbors_within_taus(&self, v: PointId, candidates: &[u32], taus: &[f64]) -> Vec<Vec<u32>> {
        let (j0, t2s) = Self::split_taus(taus);
        if t2s.is_empty() {
            return vec![Vec::new(); taus.len()];
        }
        let dim = self.points.dim();
        let data = self.points.raw();
        let a = &data[v.idx() * dim..(v.idx() + 1) * dim];
        let na = self.sq_norms[v.idx()];
        let scan = |chunk: &[u32]| -> Vec<(u32, u32)> {
            let mut entries = Vec::new();
            self.scan_rungs(a, na, chunk, &t2s, |c, j| entries.push((c, j as u32)));
            entries
        };
        let entries: Vec<(u32, u32)> =
            if space::par_bulk_weighted(candidates.len(), dim * t2s.len()) {
                use rayon::prelude::*;
                let parts: Vec<Vec<(u32, u32)>> = candidates
                    .par_chunks(space::par_chunk_size_weighted(candidates.len(), dim))
                    .map(scan)
                    .collect();
                parts.concat()
            } else {
                scan(candidates)
            };
        (0..taus.len())
            .map(|j| {
                if j < j0 {
                    return Vec::new();
                }
                let rung = (j - j0) as u32;
                entries
                    .iter()
                    .filter(|&&(_, e)| e <= rung)
                    .map(|&(c, _)| c)
                    .collect()
            })
            .collect()
    }

    /// Bulk distance fill over flat rows. Deliberately **not** the Gram
    /// trick: consumers of this method use the values themselves (GMM
    /// radii, memo vectors), so each entry is the exact
    /// `row_dist_sq(..).sqrt()` evaluation [`MetricSpace::dist`] performs —
    /// bit-identical, just without the per-pair `PointId` indirection.
    fn dists_into(&self, v: PointId, candidates: &[u32], out: &mut Vec<f64>) {
        out.clear();
        let dim = self.points.dim();
        let data = self.points.raw();
        let a = &data[v.idx() * dim..(v.idx() + 1) * dim];
        let fill = |chunk: &[u32]| -> Vec<f64> {
            chunk
                .iter()
                .map(|&c| {
                    let b = &data[c as usize * dim..c as usize * dim + dim];
                    Self::row_dist_sq(a, b).sqrt()
                })
                .collect()
        };
        if space::par_bulk_weighted(candidates.len(), dim) {
            use rayon::prelude::*;
            let parts: Vec<Vec<f64>> = candidates
                .par_chunks(space::par_chunk_size_weighted(candidates.len(), dim))
                .map(fill)
                .collect();
            for part in parts {
                out.extend(part);
            }
        } else {
            out.extend(candidates.iter().map(|&c| {
                let b = &data[c as usize * dim..c as usize * dim + dim];
                Self::row_dist_sq(a, b).sqrt()
            }));
        }
    }

    /// Flat-row minimum: folds the *squared* distances and takes one final
    /// `sqrt`. `x ↦ fl(√x)` is monotone non-decreasing, so the square root
    /// of the minimum squared distance equals the minimum of the per-pair
    /// square roots bit-for-bit — same result as the default per-pair fold,
    /// with |S| − 1 fewer square roots and no `PointId` indirection.
    fn dist_to_set(&self, p: PointId, set: &[PointId]) -> f64 {
        if set.is_empty() {
            return f64::INFINITY;
        }
        let dim = self.points.dim();
        let data = self.points.raw();
        let a = &data[p.idx() * dim..(p.idx() + 1) * dim];
        set.iter()
            .map(|s| {
                let b = &data[s.idx() * dim..s.idx() * dim + dim];
                Self::row_dist_sq(a, b)
            })
            .fold(f64::INFINITY, f64::min)
            .sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn space() -> EuclideanSpace {
        EuclideanSpace::new(PointSet::from_rows(&[
            vec![0.0, 0.0],
            vec![3.0, 4.0],
            vec![-3.0, -4.0],
        ]))
    }

    #[test]
    fn pythagoras() {
        let m = space();
        assert_eq!(m.dist(PointId(0), PointId(1)), 5.0);
        assert_eq!(m.dist(PointId(1), PointId(2)), 10.0);
    }

    #[test]
    fn identity_and_symmetry() {
        let m = space();
        assert_eq!(m.dist(PointId(1), PointId(1)), 0.0);
        assert_eq!(
            m.dist(PointId(0), PointId(2)),
            m.dist(PointId(2), PointId(0))
        );
    }

    #[test]
    fn within_avoids_sqrt_consistently() {
        let m = space();
        assert!(m.within(PointId(0), PointId(1), 5.0));
        assert!(!m.within(PointId(0), PointId(1), 4.999));
        assert!(!m.within(PointId(0), PointId(1), -1.0));
    }

    #[test]
    fn point_weight_is_dimension() {
        assert_eq!(space().point_weight(), 2);
    }

    #[test]
    fn cached_norms_match_rows() {
        let m = space();
        assert_eq!(m.sq_norms, vec![0.0, 25.0, 25.0]);
    }

    #[test]
    fn many_kernels_match_scalar_at_exact_boundaries() {
        // d(0,1) = d(0,2) = 5 exactly: τ = 5 must include both, τ just
        // below must not — the Gram estimate alone cannot make this call,
        // the band fallback must.
        let m = space();
        let vs = [0u32, 1, 2];
        let cands = [0u32, 1, 2, 1];
        for tau in [5.0, 4.999_999_999_999_999, 0.0, 10.0] {
            let want: Vec<usize> = vs
                .iter()
                .map(|&v| m.count_within(PointId(v), &cands, tau))
                .collect();
            assert_eq!(m.count_within_many(&vs, &cands, tau), want, "tau={tau}");
            let lists = m.neighbors_within_many(&vs, &cands, tau);
            for (i, &v) in vs.iter().enumerate() {
                let mut scalar = Vec::new();
                m.neighbors_within(PointId(v), &cands, tau, &mut scalar);
                assert_eq!(lists[i], scalar, "v={v} tau={tau}");
            }
        }
    }

    #[test]
    fn negative_tau_matches_scalar_kernels() {
        let m = space();
        assert_eq!(m.count_within_many(&[0, 1], &[0, 1, 2], -1.0), vec![0, 0]);
        assert_eq!(
            m.neighbors_within_many(&[0, 1], &[0, 1, 2], -1.0),
            vec![Vec::<u32>::new(), Vec::new()]
        );
    }

    #[test]
    fn dists_into_is_bitwise_dist() {
        let m = space();
        let cands = [2u32, 0, 1, 1];
        let mut out = Vec::new();
        m.dists_into(PointId(1), &cands, &mut out);
        let want: Vec<f64> = cands
            .iter()
            .map(|&c| m.dist(PointId(1), PointId(c)))
            .collect();
        assert_eq!(
            out.iter().map(|d| d.to_bits()).collect::<Vec<_>>(),
            want.iter().map(|d| d.to_bits()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn dist_to_set_matches_per_pair_fold() {
        let m = space();
        let set = [PointId(1), PointId(2)];
        let want = m
            .dist(PointId(0), PointId(1))
            .min(m.dist(PointId(0), PointId(2)));
        assert_eq!(m.dist_to_set(PointId(0), &set).to_bits(), want.to_bits());
        assert_eq!(m.dist_to_set(PointId(0), &[]), f64::INFINITY);
    }
}
