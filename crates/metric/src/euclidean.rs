//! Euclidean (L2) metric over flat point storage.

use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;

use crate::point::{PointId, PointSet};
use crate::simd;
use crate::sketch::Sketch;
use crate::soa::{f32_band_scale, SoaStorage, SpeedTier};
use crate::space::{self, KernelStats, MetricSpace};

/// Target footprint of one candidate tile in the multi-query kernels:
/// small enough to live in L1 alongside the query row and norm slices, so
/// each candidate row is streamed from DRAM once per tile and then reused
/// from cache across every query in the batch.
const TILE_BYTES: usize = 16 * 1024;

/// Candidate-tile length for `dim`-dimensional rows of `bytes_per_coord`-
/// byte coordinates: [`TILE_BYTES`] worth, floored so tiny tiles don't
/// drown in loop overhead. A function of the dimension and storage width
/// only — never of thread count or batch size — so tiling can't perturb
/// determinism (per-pair arithmetic is independent of tile boundaries
/// anyway). The f32 SoA tiers pass 4, doubling the rows per tile: the tile
/// streams f32 rows, so the same L1 budget covers twice as many
/// candidates, halving query-row restreaming.
fn tile_len(dim: usize, bytes_per_coord: usize) -> usize {
    (TILE_BYTES / (bytes_per_coord * dim.max(1))).clamp(16, 4096)
}

/// Minimum dimension for the Gram-estimate pair decision in the tiled
/// kernels. The estimate costs a fixed ~10 extra ops per pair (norm adds,
/// band, two compares) on top of the dot product; that amortizes over the
/// `dim` multiply-adds it saves only for wide rows. Below this, the tiled
/// scan keeps the plain diff evaluation — measured at d=4 the diff loop is
/// already ≈3× faster per pair than Gram + band (see DESIGN.md §6.2).
const GRAM_MIN_DIM: usize = 16;

/// The Euclidean metric `d(x, y) = ||x - y||_2` over a [`PointSet`].
#[derive(Debug, Clone)]
pub struct EuclideanSpace {
    points: PointSet,
    /// `sq_norms[i] = ||x_i||²`, cached at construction for the Gram-trick
    /// multi-query kernels (`||u − v||² = ||u||² + ||v||² − 2⟨u, v⟩`).
    sq_norms: Vec<f64>,
    /// Which estimate layers the bulk threshold kernels may use (see
    /// [`SpeedTier`]); verdicts are bit-identical at every tier.
    tier: SpeedTier,
    /// Lazily built f32 mirror ([`SpeedTier::Soa`]+). Derived purely from
    /// `points`, so cloning the cache with the space is sound.
    soa: OnceLock<SoaStorage>,
    /// Lazily built Hamming prefilter sketch ([`SpeedTier::SoaSketch`]).
    sketch: OnceLock<Sketch>,
    /// Cumulative fast-path kernel hit counters ([`KernelStats`]).
    counters: KernelCounters,
}

/// Process-lifetime tallies behind [`KernelStats`]: relaxed atomics bumped
/// once per classified tile (never per pair), so observing them costs a
/// few adds per ~10³ floating-point ops. Observability only — no verdict,
/// and no output byte, ever depends on these.
#[derive(Debug, Default)]
struct KernelCounters {
    run_pairs: AtomicU64,
    indexed_pairs: AtomicU64,
    taus_run_pairs: AtomicU64,
    taus_indexed_pairs: AtomicU64,
    sketch_rejects: AtomicU64,
    exact_fallbacks: AtomicU64,
}

impl Clone for KernelCounters {
    /// Clones the current snapshot — a cloned space starts its own tally
    /// from the original's counts, mirroring how its caches are cloned.
    fn clone(&self) -> Self {
        let s = self.snapshot();
        let c = Self::default();
        c.run_pairs.store(s.run_pairs, Ordering::Relaxed);
        c.indexed_pairs.store(s.indexed_pairs, Ordering::Relaxed);
        c.taus_run_pairs.store(s.taus_run_pairs, Ordering::Relaxed);
        c.taus_indexed_pairs
            .store(s.taus_indexed_pairs, Ordering::Relaxed);
        c.sketch_rejects.store(s.sketch_rejects, Ordering::Relaxed);
        c.exact_fallbacks
            .store(s.exact_fallbacks, Ordering::Relaxed);
        c
    }
}

impl KernelCounters {
    fn snapshot(&self) -> KernelStats {
        KernelStats {
            run_pairs: self.run_pairs.load(Ordering::Relaxed),
            indexed_pairs: self.indexed_pairs.load(Ordering::Relaxed),
            taus_run_pairs: self.taus_run_pairs.load(Ordering::Relaxed),
            taus_indexed_pairs: self.taus_indexed_pairs.load(Ordering::Relaxed),
            sketch_rejects: self.sketch_rejects.load(Ordering::Relaxed),
            exact_fallbacks: self.exact_fallbacks.load(Ordering::Relaxed),
            ..KernelStats::default()
        }
    }

    /// Folds one single-τ tile classification into the tally.
    fn record_single(&self, contiguous: bool, pairs: usize, sketch_rejects: usize, exact: usize) {
        let ctr = if contiguous {
            &self.run_pairs
        } else {
            &self.indexed_pairs
        };
        ctr.fetch_add(pairs as u64, Ordering::Relaxed);
        if sketch_rejects > 0 {
            self.sketch_rejects
                .fetch_add(sketch_rejects as u64, Ordering::Relaxed);
        }
        if exact > 0 {
            self.exact_fallbacks
                .fetch_add(exact as u64, Ordering::Relaxed);
        }
    }

    /// Folds one multi-τ chunk scan into the tally.
    fn record_taus(&self, run: usize, indexed: usize, sketch_rejects: usize, exact: usize) {
        if run > 0 {
            self.taus_run_pairs.fetch_add(run as u64, Ordering::Relaxed);
        }
        if indexed > 0 {
            self.taus_indexed_pairs
                .fetch_add(indexed as u64, Ordering::Relaxed);
        }
        if sketch_rejects > 0 {
            self.sketch_rejects
                .fetch_add(sketch_rejects as u64, Ordering::Relaxed);
        }
        if exact > 0 {
            self.exact_fallbacks
                .fetch_add(exact as u64, Ordering::Relaxed);
        }
    }
}

/// Per-kernel-call fast-path context: the f32 mirror, the optional sketch,
/// the f32 error-band scale, and the space's kernel tallies, resolved once
/// so the per-pair loop only branches on data.
struct Fast<'a> {
    soa: &'a SoaStorage,
    sketch: Option<&'a Sketch>,
    band_scale: f64,
    counters: &'a KernelCounters,
}

/// One query's slice of the fast path: its exact f64 row (for band
/// fallbacks), its f32 mirror row and norm, and its sketch limbs.
struct FastQuery<'a> {
    a64: &'a [f64],
    a32: &'a [f32],
    na32: f64,
    qsk: Option<&'a [u64]>,
}

impl Fast<'_> {
    /// Binds query `q`'s rows/norm/limbs for repeated candidate tests.
    fn query<'a>(&'a self, q: usize, data: &'a [f64], dim: usize) -> FastQuery<'a> {
        FastQuery {
            a64: &data[q * dim..(q + 1) * dim],
            a32: self.soa.row(q),
            na32: self.soa.norm(q) as f64,
            qsk: self.sketch.map(|s| s.limbs(q)),
        }
    }

    /// Turns a batched class ([`simd::classify_f32_indexed`]) into the
    /// final verdict, **bit-identically** to the exact kernel: the f32
    /// estimate decides only outside its error band ([`simd::CLASS_KEEP`]
    /// / [`simd::CLASS_REJECT`]), band hits ([`simd::CLASS_EXACT`]) fall
    /// back to the exact f64 evaluation.
    #[inline]
    fn resolve(fq: &FastQuery<'_>, c: usize, class: u8, t2: f64, data: &[f64], dim: usize) -> bool {
        match class {
            simd::CLASS_KEEP => true,
            simd::CLASS_REJECT => false,
            _ => {
                let b = &data[c * dim..(c + 1) * dim];
                EuclideanSpace::row_dist_sq(fq.a64, b) <= t2
            }
        }
    }

    /// One batched call per (query, tile): optional certified sketch
    /// rejects, then SIMD dot + banded classification over the survivors.
    /// Returns the survivor ids, their tile positions (when sketched), and
    /// fills `classes`.
    fn classify_tile<'a>(
        &self,
        fq: &FastQuery<'_>,
        sieve: &'a mut SketchSieve,
        classes: &mut Vec<u8>,
        tile: &'a [u32],
        t2: f64,
        dim: usize,
    ) -> (&'a [u32], Option<&'a [u32]>) {
        let (surv, pos) = sieve.prefilter(self, fq, tile, t2);
        classes.resize(surv.len(), 0);
        let contiguous = is_contiguous_run(surv);
        if contiguous {
            // Contiguous candidates (the whole-set scan, and sketched
            // tiles where nothing was rejected): the dimension-major run
            // kernel — no gathers, no horizontal sums.
            simd::classify_f32_run(
                fq.a32,
                self.soa.cols(),
                self.soa.col_stride(),
                self.soa.raw(),
                self.soa.norms(),
                dim,
                surv[0] as usize,
                fq.na32,
                t2,
                self.band_scale,
                classes,
            );
        } else {
            simd::classify_f32_indexed(
                fq.a32,
                self.soa.raw(),
                self.soa.norms(),
                dim,
                surv,
                fq.na32,
                t2,
                self.band_scale,
                classes,
            );
        }
        self.counters.record_single(
            contiguous,
            surv.len(),
            tile.len() - surv.len(),
            classes
                .iter()
                .filter(|&&cl| cl == simd::CLASS_EXACT)
                .count(),
        );
        (surv, pos)
    }
}

/// Whether `ids` is `ids[0], ids[0]+1, …` — the access pattern the
/// dimension-major run kernel accepts. Short-circuits on the first gap, so
/// scattered candidate lists pay a handful of compares.
#[inline]
fn is_contiguous_run(ids: &[u32]) -> bool {
    ids.len() >= 8 && ids.windows(2).all(|w| w[1] == w[0] + 1)
}

/// Once a sieve has judged this many pairs, its cumulative certified-
/// reject rate decides whether the sketch keeps running for the rest of
/// the scan (see [`SketchSieve::prefilter`]).
const SIEVE_SAMPLE: usize = 2048;
/// Keep the sketch only while it certifies at least 1-in-`SIEVE_MIN_RATE`
/// rejects over the sample — below that its popcounts cost more than the
/// dot products they skip.
const SIEVE_MIN_RATE: usize = 16;

/// Reusable sketch-prefilter scratch — allocated once per bulk kernel
/// call, resized per tile, so the batched tile kernels in [`crate::simd`]
/// run one call frame per tile with no per-pair allocation. Also carries
/// the scan's adaptive on/off state (see [`SketchSieve::prefilter`]).
#[derive(Default)]
struct SketchSieve {
    /// Batched sketch lower bounds over the tile.
    lb2: Vec<f64>,
    /// Candidate ids the sketch could not reject, in tile order.
    ids: Vec<u32>,
    /// Their positions within the tile (parallel to `ids`).
    pos: Vec<u32>,
    /// Multi-τ survivors' certified entry-index floors (parallel to `ids`
    /// in [`SketchSieve::prefilter_taus`]): rung `mins[k] − 1` and below
    /// are sketch-certified rejects for `ids[k]`.
    mins: Vec<u8>,
    /// Pairs this scan has sketch-judged so far.
    tested: usize,
    /// How many of them the sketch certified as rejects.
    rejected: usize,
}

impl SketchSieve {
    /// Rewinds the adaptive on/off state for a fresh scan. Hoisted sieves
    /// (see `TauScratch`) call this per kernel chunk so reuse across calls
    /// cannot change where the sketch switches off — the adaptivity stays
    /// a function of the scan alone, exactly as a freshly-allocated sieve.
    fn reset(&mut self) {
        self.tested = 0;
        self.rejected = 0;
    }

    /// Sketch-prefilters `tile`: batch-computes lower bounds and keeps the
    /// candidates the sketch cannot certify as rejected at squared
    /// threshold `t2` (callers with several rungs pass the largest).
    /// Returns `(survivor_ids, Some(their_tile_positions))`, or the whole
    /// tile with `None` when the sketch was skipped. Certified rejects are
    /// exactly the pairs [`Sketch::certified_reject`] rejects, so dropping
    /// them here cannot change any verdict — only skip their dot products.
    ///
    /// The sieve is **adaptive**: a certified reject is never wrong, but
    /// at a τ near or above the data's typical distances it is also never
    /// *available*, and then the popcounts are pure overhead. So the sieve
    /// tracks its cumulative reject rate and switches itself off for the
    /// remainder of the scan once a [`SIEVE_SAMPLE`]-pair sample shows the
    /// rate under 1/[`SIEVE_MIN_RATE`]. Skipped pairs flow to the banded
    /// estimate + exact fallback, which decides every pair correctly on
    /// its own — the adaptivity moves cycles, never verdicts. It depends
    /// only on data and tile order, not thread count or timing.
    fn prefilter<'a>(
        &'a mut self,
        fast: &Fast<'_>,
        fq: &FastQuery<'_>,
        tile: &'a [u32],
        t2: f64,
    ) -> (&'a [u32], Option<&'a [u32]>) {
        let (Some(sk), Some(qa)) = (fast.sketch, fq.qsk) else {
            return (tile, None);
        };
        if self.tested >= SIEVE_SAMPLE && self.rejected * SIEVE_MIN_RATE < self.tested {
            return (tile, None);
        }
        self.lb2.resize(tile.len(), 0.0);
        sk.lower_bounds_sq_indexed(qa, tile, &mut self.lb2);
        let margin = sk.margin();
        // Same predicate as `Sketch::certified_reject`; `!reject` keeps
        // NaN thresholds on the survivor (exact-evaluation) side.
        let rejects = self.lb2.iter().filter(|&&lb2| lb2 * margin > t2).count();
        self.tested += tile.len();
        self.rejected += rejects;
        // A near-empty reject set is not worth compacting: handing the
        // whole tile to the contiguous-run kernel beats gathering the
        // survivor list, and the few rejects re-decide cheaply there.
        if rejects * 8 < tile.len() {
            return (tile, None);
        }
        self.ids.clear();
        self.pos.clear();
        for (p, (&c, &lb2)) in tile.iter().zip(&self.lb2).enumerate() {
            let reject = lb2 * margin > t2;
            if !reject {
                self.ids.push(c);
                self.pos.push(p as u32);
            }
        }
        (&self.ids, Some(&self.pos))
    }

    /// Multi-τ twin of [`SketchSieve::prefilter`]: one batched
    /// lower-bound pass yields a certified **entry-index floor** per
    /// survivor instead of a single keep/drop bit. A certified rejection
    /// at rung `j` (`lb2 · margin > t2s[j]`) proves `d² > t2s[j]`, so the
    /// pair's entry index is at least `j + 1`; since the predicate is
    /// monotone over the ascending `t2s`, the floor is a partition point.
    /// Candidates floored past the last rung are dropped outright —
    /// exactly the pairs the single-τ sieve would reject at the top rung,
    /// which is also what the adaptivity counters keep tracking (partial
    /// floors ride along for free; only full rejects pay for popcounts).
    /// Returns `(survivor_ids, Some(their_floors))`, or the whole tile
    /// with `None` when the sketch was skipped.
    fn prefilter_taus<'a>(
        &'a mut self,
        fast: &Fast<'_>,
        fq: &FastQuery<'_>,
        tile: &'a [u32],
        t2s: &[f64],
    ) -> (&'a [u32], Option<&'a [u8]>) {
        let (Some(sk), Some(qa)) = (fast.sketch, fq.qsk) else {
            return (tile, None);
        };
        if self.tested >= SIEVE_SAMPLE && self.rejected * SIEVE_MIN_RATE < self.tested {
            return (tile, None);
        }
        let top = *t2s.last().expect("prefilter_taus requires rungs");
        self.lb2.resize(tile.len(), 0.0);
        sk.lower_bounds_sq_indexed(qa, tile, &mut self.lb2);
        let margin = sk.margin();
        let rejects = self.lb2.iter().filter(|&&lb2| lb2 * margin > top).count();
        self.tested += tile.len();
        self.rejected += rejects;
        // Same compaction threshold as the single-τ sieve: a near-empty
        // full-reject set is not worth breaking the contiguous run over.
        if rejects * 8 < tile.len() {
            return (tile, None);
        }
        self.ids.clear();
        self.mins.clear();
        for (&c, &lb2) in tile.iter().zip(&self.lb2) {
            // First rung the sketch cannot certify-reject; NaN bounds
            // compare false everywhere and land at floor 0 (survivor).
            let floor = t2s.partition_point(|&t2| lb2 * margin > t2);
            if floor < t2s.len() {
                self.ids.push(c);
                self.mins.push(floor as u8);
            }
        }
        (&self.ids, Some(&self.mins))
    }
}

/// Reusable multi-τ kernel scratch, one per worker thread: the squared
/// rungs, the sketch sieve, and the per-tile class/dot buffers the
/// `scan_rungs` paths fill. Hoisting these out of the per-call (and
/// per-chunk) hot paths removes every allocation from the τ-sweep except
/// the output vectors themselves.
#[derive(Default)]
struct TauScratch {
    /// Squared non-negative rungs (`EuclideanSpace::with_t2s`).
    t2s: Vec<f64>,
    /// Sketch sieve state + buffers (reset per chunk scan).
    sieve: SketchSieve,
    /// Per-tile rung-entry bytes from the `*_taus` kernels.
    classes: Vec<u8>,
    /// Per-tile f64 dots for the Gram (non-SoA) path.
    dots64: Vec<f64>,
}

thread_local! {
    /// Per-thread [`TauScratch`]. Thread-local rather than per-call so the
    /// parallel chunk closures reuse buffers across chunks *and* across
    /// kernel calls; the buffers never carry data between uses, so reuse
    /// is invisible to results.
    static TAU_SCRATCH: RefCell<TauScratch> = RefCell::new(TauScratch::default());
}

impl EuclideanSpace {
    /// Wraps a point set with the L2 metric, caching per-point squared
    /// norms (one pass over the coordinates). The speed tier defaults to
    /// the process-wide `KCENTER_SPEED` setting ([`SpeedTier::from_env`]).
    pub fn new(points: PointSet) -> Self {
        let dim = points.dim();
        let sq_norms = points
            .raw()
            .chunks(dim.max(1))
            .map(|row| row.iter().map(|x| x * x).sum())
            .collect();
        Self {
            points,
            sq_norms,
            tier: SpeedTier::from_env(),
            soa: OnceLock::new(),
            sketch: OnceLock::new(),
            counters: KernelCounters::default(),
        }
    }

    /// Overrides the speed tier for this space (builder-style). Tiers only
    /// move cycles around — verdicts, and therefore every downstream
    /// result, are bit-identical across tiers.
    pub fn with_speed_tier(mut self, tier: SpeedTier) -> Self {
        self.tier = tier;
        self
    }

    /// The speed tier this space's bulk kernels run at.
    pub fn speed_tier(&self) -> SpeedTier {
        self.tier
    }

    /// The underlying point set.
    pub fn points(&self) -> &PointSet {
        &self.points
    }

    /// Appends one point to the space in place, returning its id — the
    /// serving-index insert path (`mpc-serving`). All derived state is
    /// maintained incrementally, never rebuilt from scratch:
    ///
    /// * the f64 squared norm is folded in the same order as
    ///   [`EuclideanSpace::new`]'s batch pass;
    /// * a built f32 SoA mirror is **extended** via [`SoaStorage::push`]
    ///   (amortized O(dim) — geometric lane re-striding), yielding values
    ///   bit-identical to a from-scratch build over the extended set;
    /// * a built Hamming sketch is invalidated and lazily rebuilt on the
    ///   next sketch-tier kernel call: its thermometer quantization step
    ///   is calibrated from the whole population, so per-point extension
    ///   would drift from the deterministic batch construction that the
    ///   certified-reject proof (and cross-tier digest CI) relies on.
    ///
    /// Verdicts after an insert remain bit-identical across speed tiers,
    /// exactly as for batch-constructed spaces.
    pub fn push_point(&mut self, coords: &[f64]) -> PointId {
        let id = self.points.push(coords);
        self.sq_norms.push(coords.iter().map(|x| x * x).sum());
        if let Some(soa) = self.soa.get_mut() {
            soa.push(coords);
        }
        self.sketch.take();
        id
    }

    /// Resolves the fast-path context for a bulk kernel call, building the
    /// f32 mirror / sketch on first use. `None` when the tier is exact or
    /// the rows are too narrow to benefit (below [`GRAM_MIN_DIM`] the
    /// plain diff loop already wins — same gate as the f64 Gram path).
    /// Kernels call this **before** any parallel fan-out so the lazy
    /// builds run once, on the calling thread.
    fn fast(&self) -> Option<Fast<'_>> {
        let dim = self.points.dim();
        if dim < GRAM_MIN_DIM || !self.tier.uses_soa() {
            return None;
        }
        let soa = self.soa.get_or_init(|| SoaStorage::build(&self.points));
        let sketch = self
            .tier
            .uses_sketch()
            .then(|| self.sketch.get_or_init(|| Sketch::build(&self.points)));
        Some(Fast {
            soa,
            sketch,
            band_scale: f32_band_scale(dim),
            counters: &self.counters,
        })
    }

    /// Squared distance; cheaper than [`MetricSpace::dist`] when only
    /// comparisons are needed. (Note: squared L2 is *not* itself a metric.)
    #[inline]
    pub fn dist_sq(&self, i: PointId, j: PointId) -> f64 {
        let a = self.points.coords(i);
        let b = self.points.coords(j);
        // Simple indexed loop: auto-vectorizes for the common small dims.
        let mut acc = 0.0;
        for d in 0..a.len() {
            let t = a[d] - b[d];
            acc += t * t;
        }
        acc
    }

    /// Exact squared distance between two raw rows — the same
    /// floating-point evaluation as [`EuclideanSpace::dist_sq`], used by
    /// the tiled kernels to resolve pairs the Gram estimate can't classify.
    #[inline]
    fn row_dist_sq(a: &[f64], b: &[f64]) -> f64 {
        let mut acc = 0.0;
        for (x, y) in a.iter().zip(b) {
            let t = x - y;
            acc += t * t;
        }
        acc
    }

    /// Tiled multi-query threshold scan: for each query in `qs`, decides
    /// every candidate against `t2 = τ²` and folds the per-candidate
    /// verdicts with `emit`. Candidates stream in [`tile_len`]-row tiles so
    /// a tile is loaded from memory once and reused from cache by all
    /// queries (the whole point — the one-query kernels are memory-bound
    /// at d=32, see DESIGN.md §6.2).
    ///
    /// Per pair, the Gram identity `||u−v||² = ||u||² + ||v||² − 2⟨u,v⟩`
    /// gives an estimate `g` of the squared distance from cached norms and
    /// a dot product. `g` rounds differently than the diff-based
    /// `dist_sq`, so it is only trusted outside a conservative error band
    /// around `t2`; pairs inside the band are re-decided with the exact
    /// [`EuclideanSpace::row_dist_sq`]. Decisions therefore match the
    /// scalar kernel bit-for-bit — including at exact-boundary thresholds
    /// — while the band (≈ ulp-scale, so re-computes are vanishingly rare
    /// on real data) keeps the fast path hot. Non-finite inputs fall into
    /// the band's "unclassified" branch and get the exact answer too.
    ///
    /// `emit` receives one call per (query, tile) with the tile's
    /// candidate ids and their verdicts as parallel slices — per-tile
    /// rather than per-pair, so counting consumers reduce the verdict
    /// slice with an auto-vectorized filter instead of paying a closure
    /// call and branch per candidate.
    fn scan_tiles<R: Default>(
        &self,
        qs: &[u32],
        candidates: &[u32],
        t2: f64,
        mut emit: impl FnMut(&mut R, &[u32], &[bool]),
    ) -> Vec<R> {
        let dim = self.points.dim();
        let data = self.points.raw();
        let norms = &self.sq_norms;
        // |g − dist_sq| for same-pair inputs is bounded by the usual
        // γ-style accumulation-error analysis at ≈ (4d + 32)·ε·(‖u‖² +
        // ‖v‖² + τ²); anything closer to t2 than that is re-computed
        // exactly, so overshooting the constant only costs speed.
        let band_scale = (4.0 * dim as f64 + 32.0) * f64::EPSILON;
        let gram = dim >= GRAM_MIN_DIM;
        let fast = self.fast();
        let mut rows: Vec<R> = std::iter::repeat_with(R::default).take(qs.len()).collect();
        // Per-call scratch for the batched tile kernels (fast/Gram paths).
        let mut sieve = SketchSieve::default();
        let mut classes: Vec<u8> = Vec::new();
        let mut dots64: Vec<f64> = Vec::new();
        let mut verdicts: Vec<bool> = Vec::new();
        for tile in candidates.chunks(tile_len(dim, if fast.is_some() { 4 } else { 8 })) {
            for (row, &q) in rows.iter_mut().zip(qs) {
                if let Some(fast) = &fast {
                    // SoA tiers: optional batched certified sketch rejects,
                    // then one batched SIMD dot + banded classification
                    // over the survivors — bit-identical verdicts.
                    let fq = fast.query(q as usize, data, dim);
                    let (surv, pos) =
                        fast.classify_tile(&fq, &mut sieve, &mut classes, tile, t2, dim);
                    match pos {
                        // No sketch: survivors are the whole tile. Bulk
                        // keep/reject translation (vectorizable byte
                        // compare), then exact fallbacks only if the tile
                        // had any band hit (`contains` is a SIMD scan).
                        None => {
                            verdicts.clear();
                            verdicts.extend(classes.iter().map(|&cl| cl == simd::CLASS_KEEP));
                            if classes.contains(&simd::CLASS_EXACT) {
                                for ((v, &cl), &c) in verdicts.iter_mut().zip(&classes).zip(surv) {
                                    if cl == simd::CLASS_EXACT {
                                        *v = Fast::resolve(&fq, c as usize, cl, t2, data, dim);
                                    }
                                }
                            }
                            emit(row, surv, &verdicts);
                        }
                        // Sketched: scatter survivor verdicts over the
                        // tile (rejects stay `false`), then emit in order.
                        Some(pos) => {
                            verdicts.clear();
                            verdicts.resize(tile.len(), false);
                            for (k, (&c, &cl)) in surv.iter().zip(&classes).enumerate() {
                                verdicts[pos[k] as usize] =
                                    Fast::resolve(&fq, c as usize, cl, t2, data, dim);
                            }
                            emit(row, tile, &verdicts);
                        }
                    }
                    continue;
                }
                let a = &data[q as usize * dim..q as usize * dim + dim];
                let na = norms[q as usize];
                if gram {
                    // One batched f64-dot call per (query, tile): the
                    // per-pair dispatch cannot inline the SIMD kernel, and
                    // its call + horizontal-sum overhead rivals the dot
                    // itself at d≈32.
                    dots64.resize(tile.len(), 0.0);
                    simd::dots_f64_indexed(a, data, dim, tile, &mut dots64);
                    verdicts.clear();
                    verdicts.extend(tile.iter().zip(&dots64).map(|(&c, &dot)| {
                        let nb = norms[c as usize];
                        let g = na + nb - 2.0 * dot;
                        let band = band_scale * (na + nb + t2);
                        if g <= t2 - band {
                            true
                        } else if g > t2 + band {
                            false
                        } else {
                            let b = &data[c as usize * dim..c as usize * dim + dim];
                            Self::row_dist_sq(a, b) <= t2
                        }
                    }));
                    emit(row, tile, &verdicts);
                } else {
                    // Narrow rows: the diff evaluation is as cheap as
                    // the dot product and needs no band — the tiles
                    // still deliver the cache reuse.
                    verdicts.clear();
                    verdicts.extend(tile.iter().map(|&c| {
                        let b = &data[c as usize * dim..c as usize * dim + dim];
                        Self::row_dist_sq(a, b) <= t2
                    }));
                    emit(row, tile, &verdicts);
                }
            }
        }
        rows
    }

    /// Multi-τ single-query scan: classifies each candidate in `chunk`
    /// into its entry rung against the ascending squared thresholds `t2s`
    /// and emits `(candidate, entry)` for candidates some rung admits.
    ///
    /// Per pair the Gram estimate and norms are computed **once** and
    /// judged against each rung's own error band — vectorized across both
    /// pairs and rungs on the SoA tiers ([`simd::classify_f32_run_taus`] /
    /// [`simd::classify_f32_indexed_taus`]), a scalar rung walk on the f64
    /// Gram path — with the exact [`EuclideanSpace::row_dist_sq`] deciding
    /// any pair whose ladder had a band hit. Each rung's verdict is
    /// therefore exactly `dist_sq <= t2s[j]` — the scalar kernel's — and
    /// since `t2s` is non-decreasing the verdict sequence is monotone, so
    /// the first admitting rung fully describes all of them.
    fn scan_rungs(
        &self,
        fast: Option<&Fast<'_>>,
        v: u32,
        chunk: &[u32],
        t2s: &[f64],
        mut emit: impl FnMut(u32, usize),
    ) {
        let dim = self.points.dim();
        let data = self.points.raw();
        let norms = &self.sq_norms;
        let a = &data[v as usize * dim..(v as usize + 1) * dim];
        let na = norms[v as usize];
        let band_scale = (4.0 * dim as f64 + 32.0) * f64::EPSILON;
        let gram = dim >= GRAM_MIN_DIM;
        // Ladders longer than the u8 entry encoding fall back to the Gram
        // path below — verdict-identical, and far beyond any real sweep.
        let fast = fast.filter(|_| t2s.len() <= simd::MAX_RUNGS);
        if let Some(fast) = fast {
            // SoA tiers: one batched rung-entry classification per tile —
            // each f32 dot is computed once (contiguous tiles through the
            // dimension-major run kernel, gathered tiles through the
            // 4-blocked indexed kernel) and bucketed against every rung's
            // own f32 band in vector code. Certain entries are emitted
            // as-is (they provably equal the exact sweep's first admitting
            // rung); band hits re-derive the entry from the exact f64
            // distance. The sketch contributes per-pair entry floors:
            // a certified lb² rejection at rung `j` skips rungs `≤ j`,
            // and pairs floored past the top rung are dropped outright.
            let fq = fast.query(v as usize, data, dim);
            let top = *t2s.last().expect("scan_rungs requires rungs");
            let soa = fast.soa;
            let (mut run, mut indexed, mut sketched, mut exact_hits) =
                (0usize, 0usize, 0usize, 0usize);
            TAU_SCRATCH.with(|cell| {
                let scratch = &mut *cell.borrow_mut();
                let TauScratch { sieve, classes, .. } = scratch;
                sieve.reset();
                for tile in chunk.chunks(tile_len(dim, 4)) {
                    let (surv, mins) = sieve.prefilter_taus(fast, &fq, tile, t2s);
                    classes.resize(surv.len(), 0);
                    if mins.is_none() && is_contiguous_run(surv) {
                        simd::classify_f32_run_taus(
                            fq.a32,
                            soa.cols(),
                            soa.col_stride(),
                            soa.raw(),
                            soa.norms(),
                            dim,
                            surv[0] as usize,
                            fq.na32,
                            t2s,
                            fast.band_scale,
                            classes,
                        );
                        run += surv.len();
                    } else {
                        simd::classify_f32_indexed_taus(
                            fq.a32,
                            soa.raw(),
                            soa.norms(),
                            dim,
                            surv,
                            fq.na32,
                            t2s,
                            fast.band_scale,
                            mins,
                            classes,
                        );
                        indexed += surv.len();
                    }
                    sketched += tile.len() - surv.len();
                    for (&c, &cl) in surv.iter().zip(&*classes) {
                        match cl {
                            simd::RUNG_NONE => {}
                            simd::RUNG_EXACT => {
                                // Some rung's verdict sat inside its band:
                                // re-derive the entry from the exact
                                // distance. `!(ds <= top)` also sheds NaN
                                // distances, which no rung admits.
                                exact_hits += 1;
                                let b = &data[c as usize * dim..c as usize * dim + dim];
                                let ds = Self::row_dist_sq(a, b);
                                if ds <= top {
                                    emit(c, t2s.partition_point(|&t2| t2 < ds));
                                }
                            }
                            entry => emit(c, entry as usize),
                        }
                    }
                }
            });
            fast.counters
                .record_taus(run, indexed, sketched, exact_hits);
            return;
        }
        if gram {
            TAU_SCRATCH.with(|cell| {
                let scratch = &mut *cell.borrow_mut();
                let dots64 = &mut scratch.dots64;
                for tile in chunk.chunks(tile_len(dim, 8)) {
                    dots64.resize(tile.len(), 0.0);
                    simd::dots_f64_indexed(a, data, dim, tile, dots64);
                    for (&c, &dot) in tile.iter().zip(&*dots64) {
                        let nb = norms[c as usize];
                        let g = na + nb - 2.0 * dot;
                        let mut exact = f64::NAN;
                        let mut have_exact = false;
                        for (j, &t2) in t2s.iter().enumerate() {
                            let band = band_scale * (na + nb + t2);
                            let keep = if g <= t2 - band {
                                true
                            } else if g > t2 + band {
                                false
                            } else {
                                if !have_exact {
                                    let b = &data[c as usize * dim..c as usize * dim + dim];
                                    exact = Self::row_dist_sq(a, b);
                                    have_exact = true;
                                }
                                exact <= t2
                            };
                            if keep {
                                emit(c, j);
                                break;
                            }
                        }
                    }
                }
            });
            return;
        }
        for &c in chunk {
            let b = &data[c as usize * dim..c as usize * dim + dim];
            let ds = Self::row_dist_sq(a, b);
            // First rung with t2 >= ds, i.e. ds <= t2 — the scalar
            // verdict. `!(ds <= last)` also sheds NaN distances, which
            // no rung admits.
            if t2s.last().is_some_and(|&last| ds <= last) {
                emit(c, t2s.partition_point(|&t2| t2 < ds));
            }
        }
    }

    /// Splits the non-decreasing `taus` into the negative prefix (always
    /// empty/zero rungs — the scalar kernels return nothing for τ < 0) and
    /// the squared non-negative suffix, handing `f` the prefix length and
    /// the squared rungs. The rung buffer is borrowed from the calling
    /// thread's [`TauScratch`] (taken out for the duration of `f`, so the
    /// chunk closures `f` fans out — possibly onto this same thread — can
    /// still borrow the scratch for their own buffers) and returned after,
    /// so repeated sweeps allocate nothing.
    fn with_t2s<R>(taus: &[f64], f: impl FnOnce(usize, &[f64]) -> R) -> R {
        debug_assert!(
            taus.windows(2).all(|w| w[0] <= w[1]),
            "multi-τ kernels require non-decreasing thresholds"
        );
        let mut t2s = TAU_SCRATCH.with(|cell| std::mem::take(&mut cell.borrow_mut().t2s));
        t2s.clear();
        let j0 = taus.partition_point(|&t| t < 0.0);
        t2s.extend(taus[j0..].iter().map(|&t| t * t));
        let out = f(j0, &t2s);
        TAU_SCRATCH.with(|cell| cell.borrow_mut().t2s = t2s);
        out
    }
}

impl MetricSpace for EuclideanSpace {
    fn n(&self) -> usize {
        self.points.len()
    }

    #[inline]
    fn dist(&self, i: PointId, j: PointId) -> f64 {
        self.dist_sq(i, j).sqrt()
    }

    fn point_weight(&self) -> u64 {
        self.points.dim() as u64
    }

    #[inline]
    fn within(&self, i: PointId, j: PointId, tau: f64) -> bool {
        // Avoids the sqrt on the hot threshold-graph adjacency path.
        tau >= 0.0 && self.dist_sq(i, j) <= tau * tau
    }

    /// Batched kernel over the flat coordinate buffer: one slice borrow for
    /// the query row, direct row offsets for candidates (no `PointId`
    /// indirection or per-pair slice setup), squared-threshold comparison
    /// with no sqrt — the bulk extension of the [`EuclideanSpace::dist_sq`]
    /// trick above. The `zip` keeps the inner loop bounds-check-free so it
    /// vectorizes. Batches whose total work passes the weighted gate split
    /// into fixed candidate chunks across the worker pool; the integer
    /// chunk counts sum to exactly the sequential count.
    fn count_within(&self, v: PointId, candidates: &[u32], tau: f64) -> usize {
        if tau < 0.0 {
            return 0;
        }
        let t2 = tau * tau;
        let dim = self.points.dim();
        let data = self.points.raw();
        let a = &data[v.idx() * dim..(v.idx() + 1) * dim];
        let fast = self.fast();
        let scan = |chunk: &[u32]| {
            if let Some(fast) = &fast {
                let fq = fast.query(v.idx(), data, dim);
                let mut sieve = SketchSieve::default();
                let mut classes: Vec<u8> = Vec::new();
                let mut count = 0usize;
                for tile in chunk.chunks(tile_len(dim, 4)) {
                    let (surv, _) =
                        fast.classify_tile(&fq, &mut sieve, &mut classes, tile, t2, dim);
                    // Bulk keep count (vectorized byte compare); band hits
                    // are resolved exactly only when the tile has any.
                    count += classes.iter().filter(|&&cl| cl == simd::CLASS_KEEP).count();
                    if classes.contains(&simd::CLASS_EXACT) {
                        count += surv
                            .iter()
                            .zip(&classes)
                            .filter(|&(&c, &cl)| {
                                cl == simd::CLASS_EXACT
                                    && Fast::resolve(&fq, c as usize, cl, t2, data, dim)
                            })
                            .count();
                    }
                }
                return count;
            }
            chunk
                .iter()
                .filter(|&&c| {
                    let b = &data[c as usize * dim..c as usize * dim + dim];
                    Self::row_dist_sq(a, b) <= t2
                })
                .count()
        };
        if space::par_bulk_weighted(candidates.len(), dim) {
            space::par_count_chunks_weighted(candidates, dim, scan)
        } else {
            scan(candidates)
        }
    }

    /// Batched filter twin of [`MetricSpace::count_within`]; same kernel,
    /// collecting ids instead of counting. The parallel path concatenates
    /// per-chunk survivors in chunk order, so candidate order is preserved
    /// exactly as in the sequential filter.
    fn neighbors_within(&self, v: PointId, candidates: &[u32], tau: f64, out: &mut Vec<u32>) {
        out.clear();
        if tau < 0.0 {
            return;
        }
        let t2 = tau * tau;
        let dim = self.points.dim();
        let data = self.points.raw();
        let a = &data[v.idx() * dim..(v.idx() + 1) * dim];
        let fast = self.fast();
        let filter_chunk = |chunk: &[u32]| -> Vec<u32> {
            if let Some(fast) = &fast {
                let fq = fast.query(v.idx(), data, dim);
                let mut sieve = SketchSieve::default();
                let mut classes: Vec<u8> = Vec::new();
                let mut out = Vec::new();
                for tile in chunk.chunks(tile_len(dim, 4)) {
                    let (surv, _) =
                        fast.classify_tile(&fq, &mut sieve, &mut classes, tile, t2, dim);
                    out.extend(surv.iter().zip(&classes).filter_map(|(&c, &cl)| {
                        Fast::resolve(&fq, c as usize, cl, t2, data, dim).then_some(c)
                    }));
                }
                return out;
            }
            chunk
                .iter()
                .copied()
                .filter(|&c| {
                    let b = &data[c as usize * dim..c as usize * dim + dim];
                    Self::row_dist_sq(a, b) <= t2
                })
                .collect()
        };
        if space::par_bulk_weighted(candidates.len(), dim) {
            space::par_filter_chunks_weighted(candidates, dim, out, filter_chunk);
        } else {
            out.extend(filter_chunk(candidates));
        }
    }

    /// Tiled Gram-block kernel (see `EuclideanSpace::scan_tiles`). Large
    /// query batches split into fixed query chunks across the worker pool;
    /// whole queries never straddle a chunk and rows concatenate in query
    /// order, so the output matches the sequential tile walk — which in
    /// turn matches the per-query scalar kernel bit-for-bit.
    fn count_within_many(&self, vs: &[u32], candidates: &[u32], tau: f64) -> Vec<usize> {
        if tau < 0.0 {
            return vec![0; vs.len()];
        }
        let t2 = tau * tau;
        let run = |qs: &[u32]| {
            self.scan_tiles(qs, candidates, t2, |count: &mut usize, _, verdicts| {
                *count += verdicts.iter().filter(|&&keep| keep).count();
            })
        };
        if space::par_bulk_pairs(vs.len(), candidates.len()) {
            space::par_query_chunks(vs, run)
        } else {
            run(vs)
        }
    }

    /// Filter twin of [`MetricSpace::count_within_many`] over the same
    /// tiled scan: tiles visit candidates in order and each query row
    /// appends within-tile survivors in order, so every neighbor list
    /// preserves candidate order exactly.
    fn neighbors_within_many(&self, vs: &[u32], candidates: &[u32], tau: f64) -> Vec<Vec<u32>> {
        if tau < 0.0 {
            return vec![Vec::new(); vs.len()];
        }
        let t2 = tau * tau;
        let run = |qs: &[u32]| {
            self.scan_tiles(qs, candidates, t2, |row: &mut Vec<u32>, tile, verdicts| {
                row.extend(
                    tile.iter()
                        .zip(verdicts)
                        .filter_map(|(&c, &keep)| keep.then_some(c)),
                );
            })
        };
        if space::par_bulk_pairs(vs.len(), candidates.len()) {
            space::par_query_chunks(vs, run)
        } else {
            run(vs)
        }
    }

    /// Multi-τ kernel over one candidate pass (see
    /// `EuclideanSpace::scan_rungs`): norms and the Gram dot product are
    /// computed once per pair and classified against every rung, instead of
    /// once per rung. Chunked counts combine by elementwise integer sums,
    /// so the parallel path equals the sequential scan exactly.
    fn count_within_taus(&self, v: PointId, candidates: &[u32], taus: &[f64]) -> Vec<usize> {
        let mut counts = vec![0usize; taus.len()];
        Self::with_t2s(taus, |j0, t2s| {
            if t2s.is_empty() {
                return;
            }
            let dim = self.points.dim();
            let fast = self.fast();
            let scan = |chunk: &[u32]| -> Vec<usize> {
                let mut entry_counts = vec![0usize; t2s.len()];
                self.scan_rungs(fast.as_ref(), v.0, chunk, t2s, |_, j| entry_counts[j] += 1);
                entry_counts
            };
            let entry_counts = if space::par_bulk_weighted(candidates.len(), dim * t2s.len()) {
                use rayon::prelude::*;
                candidates
                    .par_chunks(space::par_chunk_size_weighted(candidates.len(), dim))
                    .map(scan)
                    .reduce(
                        || vec![0usize; t2s.len()],
                        |mut acc, part| {
                            for (a, b) in acc.iter_mut().zip(&part) {
                                *a += b;
                            }
                            acc
                        },
                    )
            } else {
                scan(candidates)
            };
            let mut acc = 0usize;
            for (j, &e) in entry_counts.iter().enumerate() {
                acc += e;
                counts[j0 + j] = acc;
            }
        });
        counts
    }

    /// Filter twin of [`MetricSpace::count_within_taus`]: one classification
    /// pass, then one bucketizing pass over the admitted `(candidate,
    /// entry)` pairs and a prefix-merge across rungs — O(entries + output)
    /// instead of re-scanning every entry per rung. Candidate order is
    /// preserved per rung (as the per-rung scalar kernel would produce):
    /// entries arrive in candidate scan order, so their sequence positions
    /// key the merges.
    fn neighbors_within_taus(&self, v: PointId, candidates: &[u32], taus: &[f64]) -> Vec<Vec<u32>> {
        Self::with_t2s(taus, |j0, t2s| {
            if t2s.is_empty() {
                return vec![Vec::new(); taus.len()];
            }
            let dim = self.points.dim();
            let fast = self.fast();
            let scan = |chunk: &[u32]| -> Vec<(u32, u32)> {
                let mut entries = Vec::new();
                self.scan_rungs(fast.as_ref(), v.0, chunk, t2s, |c, j| {
                    entries.push((c, j as u32))
                });
                entries
            };
            let entries: Vec<(u32, u32)> =
                if space::par_bulk_weighted(candidates.len(), dim * t2s.len()) {
                    use rayon::prelude::*;
                    let parts: Vec<Vec<(u32, u32)>> = candidates
                        .par_chunks(space::par_chunk_size_weighted(candidates.len(), dim))
                        .map(scan)
                        .collect();
                    parts.concat()
                } else {
                    scan(candidates)
                };
            // Bucketize each entry to its rung, keyed by its position in
            // the scan order (chunks concatenate in candidate order, so
            // position order IS candidate order).
            let mut buckets: Vec<Vec<(u32, u32)>> = vec![Vec::new(); t2s.len()];
            for (p, &(c, e)) in entries.iter().enumerate() {
                buckets[e as usize].push((p as u32, c));
            }
            // Rung j's list is every entry with rung ≤ j in scan order:
            // prefix-merge the buckets, two ordered lists at a time.
            let mut out: Vec<Vec<u32>> = vec![Vec::new(); j0];
            let mut acc: Vec<(u32, u32)> = Vec::new();
            let mut merged: Vec<(u32, u32)> = Vec::new();
            for bucket in &buckets {
                if !bucket.is_empty() {
                    merged.clear();
                    merged.reserve(acc.len() + bucket.len());
                    let (mut x, mut y) = (0, 0);
                    while x < acc.len() && y < bucket.len() {
                        if acc[x].0 < bucket[y].0 {
                            merged.push(acc[x]);
                            x += 1;
                        } else {
                            merged.push(bucket[y]);
                            y += 1;
                        }
                    }
                    merged.extend_from_slice(&acc[x..]);
                    merged.extend_from_slice(&bucket[y..]);
                    std::mem::swap(&mut acc, &mut merged);
                }
                out.push(acc.iter().map(|&(_, c)| c).collect());
            }
            out
        })
    }

    /// Bulk distance fill over flat rows. Deliberately **not** the Gram
    /// trick: consumers of this method use the values themselves (GMM
    /// radii, memo vectors), so each entry is the exact
    /// `row_dist_sq(..).sqrt()` evaluation [`MetricSpace::dist`] performs —
    /// bit-identical, just without the per-pair `PointId` indirection.
    fn dists_into(&self, v: PointId, candidates: &[u32], out: &mut Vec<f64>) {
        out.clear();
        let dim = self.points.dim();
        let data = self.points.raw();
        let a = &data[v.idx() * dim..(v.idx() + 1) * dim];
        let fill = |chunk: &[u32]| -> Vec<f64> {
            chunk
                .iter()
                .map(|&c| {
                    let b = &data[c as usize * dim..c as usize * dim + dim];
                    Self::row_dist_sq(a, b).sqrt()
                })
                .collect()
        };
        if space::par_bulk_weighted(candidates.len(), dim) {
            use rayon::prelude::*;
            let parts: Vec<Vec<f64>> = candidates
                .par_chunks(space::par_chunk_size_weighted(candidates.len(), dim))
                .map(fill)
                .collect();
            for part in parts {
                out.extend(part);
            }
        } else {
            out.extend(candidates.iter().map(|&c| {
                let b = &data[c as usize * dim..c as usize * dim + dim];
                Self::row_dist_sq(a, b).sqrt()
            }));
        }
    }

    /// Flat-row minimum: folds the *squared* distances and takes one final
    /// `sqrt`. `x ↦ fl(√x)` is monotone non-decreasing, so the square root
    /// of the minimum squared distance equals the minimum of the per-pair
    /// square roots bit-for-bit — same result as the default per-pair fold,
    /// with |S| − 1 fewer square roots and no `PointId` indirection.
    fn dist_to_set(&self, p: PointId, set: &[PointId]) -> f64 {
        if set.is_empty() {
            return f64::INFINITY;
        }
        let dim = self.points.dim();
        let data = self.points.raw();
        let a = &data[p.idx() * dim..(p.idx() + 1) * dim];
        set.iter()
            .map(|s| {
                let b = &data[s.idx() * dim..s.idx() * dim + dim];
                Self::row_dist_sq(a, b)
            })
            .fold(f64::INFINITY, f64::min)
            .sqrt()
    }

    /// Snapshot of the cumulative fast-path kernel tallies (pairs routed
    /// through each SIMD classifier, sketch-certified rejects, exact band
    /// fallbacks) since this space was created.
    fn kernel_stats(&self) -> Option<KernelStats> {
        Some(self.counters.snapshot())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn space() -> EuclideanSpace {
        EuclideanSpace::new(PointSet::from_rows(&[
            vec![0.0, 0.0],
            vec![3.0, 4.0],
            vec![-3.0, -4.0],
        ]))
    }

    #[test]
    fn pythagoras() {
        let m = space();
        assert_eq!(m.dist(PointId(0), PointId(1)), 5.0);
        assert_eq!(m.dist(PointId(1), PointId(2)), 10.0);
    }

    #[test]
    fn identity_and_symmetry() {
        let m = space();
        assert_eq!(m.dist(PointId(1), PointId(1)), 0.0);
        assert_eq!(
            m.dist(PointId(0), PointId(2)),
            m.dist(PointId(2), PointId(0))
        );
    }

    #[test]
    fn within_avoids_sqrt_consistently() {
        let m = space();
        assert!(m.within(PointId(0), PointId(1), 5.0));
        assert!(!m.within(PointId(0), PointId(1), 4.999));
        assert!(!m.within(PointId(0), PointId(1), -1.0));
    }

    #[test]
    fn point_weight_is_dimension() {
        assert_eq!(space().point_weight(), 2);
    }

    #[test]
    fn cached_norms_match_rows() {
        let m = space();
        assert_eq!(m.sq_norms, vec![0.0, 25.0, 25.0]);
    }

    #[test]
    fn many_kernels_match_scalar_at_exact_boundaries() {
        // d(0,1) = d(0,2) = 5 exactly: τ = 5 must include both, τ just
        // below must not — the Gram estimate alone cannot make this call,
        // the band fallback must.
        let m = space();
        let vs = [0u32, 1, 2];
        let cands = [0u32, 1, 2, 1];
        for tau in [5.0, 4.999_999_999_999_999, 0.0, 10.0] {
            let want: Vec<usize> = vs
                .iter()
                .map(|&v| m.count_within(PointId(v), &cands, tau))
                .collect();
            assert_eq!(m.count_within_many(&vs, &cands, tau), want, "tau={tau}");
            let lists = m.neighbors_within_many(&vs, &cands, tau);
            for (i, &v) in vs.iter().enumerate() {
                let mut scalar = Vec::new();
                m.neighbors_within(PointId(v), &cands, tau, &mut scalar);
                assert_eq!(lists[i], scalar, "v={v} tau={tau}");
            }
        }
    }

    #[test]
    fn negative_tau_matches_scalar_kernels() {
        let m = space();
        assert_eq!(m.count_within_many(&[0, 1], &[0, 1, 2], -1.0), vec![0, 0]);
        assert_eq!(
            m.neighbors_within_many(&[0, 1], &[0, 1, 2], -1.0),
            vec![Vec::<u32>::new(), Vec::new()]
        );
    }

    #[test]
    fn dists_into_is_bitwise_dist() {
        let m = space();
        let cands = [2u32, 0, 1, 1];
        let mut out = Vec::new();
        m.dists_into(PointId(1), &cands, &mut out);
        let want: Vec<f64> = cands
            .iter()
            .map(|&c| m.dist(PointId(1), PointId(c)))
            .collect();
        assert_eq!(
            out.iter().map(|d| d.to_bits()).collect::<Vec<_>>(),
            want.iter().map(|d| d.to_bits()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn dist_to_set_matches_per_pair_fold() {
        let m = space();
        let set = [PointId(1), PointId(2)];
        let want = m
            .dist(PointId(0), PointId(1))
            .min(m.dist(PointId(0), PointId(2)));
        assert_eq!(m.dist_to_set(PointId(0), &set).to_bits(), want.to_bits());
        assert_eq!(m.dist_to_set(PointId(0), &[]), f64::INFINITY);
    }
}
