//! Shortest-path metric of a weighted undirected graph — an important
//! non-geometric metric family (e.g. road networks for facility location).

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::matrix::{MatrixSpace, MatrixSpaceError};
use crate::point::PointId;
use crate::space::MetricSpace;

/// The shortest-path metric of a connected weighted undirected graph,
/// precomputed into a distance matrix by running Dijkstra from every vertex
/// (in parallel via rayon).
#[derive(Debug, Clone)]
pub struct GraphMetricSpace {
    matrix: MatrixSpace,
}

/// Errors building a [`GraphMetricSpace`].
#[derive(Debug, Clone, PartialEq)]
pub enum GraphMetricError {
    /// An edge references a vertex `>= n`.
    VertexOutOfRange { edge: (usize, usize), n: usize },
    /// An edge weight is negative or non-finite.
    BadWeight { edge: (usize, usize) },
    /// The graph is disconnected, so some distances are infinite.
    Disconnected,
    /// Matrix validation failed (should not happen for valid graphs).
    Matrix(MatrixSpaceError),
}

impl std::fmt::Display for GraphMetricError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::VertexOutOfRange { edge, n } => {
                write!(f, "edge ({}, {}) references vertex >= {n}", edge.0, edge.1)
            }
            Self::BadWeight { edge } => {
                write!(
                    f,
                    "edge ({}, {}) has a negative or non-finite weight",
                    edge.0, edge.1
                )
            }
            Self::Disconnected => write!(f, "graph is disconnected"),
            Self::Matrix(e) => write!(f, "matrix validation failed: {e}"),
        }
    }
}

impl std::error::Error for GraphMetricError {}

#[derive(PartialEq)]
struct HeapEntry {
    dist: f64,
    v: usize,
}

impl Eq for HeapEntry {}

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Min-heap on distance; ties broken by vertex id for determinism.
        other
            .dist
            .partial_cmp(&self.dist)
            .unwrap_or(Ordering::Equal)
            .then_with(|| other.v.cmp(&self.v))
    }
}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

fn dijkstra(n: usize, adj: &[Vec<(usize, f64)>], src: usize) -> Vec<f64> {
    let mut dist = vec![f64::INFINITY; n];
    dist[src] = 0.0;
    let mut heap = BinaryHeap::new();
    heap.push(HeapEntry { dist: 0.0, v: src });
    while let Some(HeapEntry { dist: d, v }) = heap.pop() {
        if d > dist[v] {
            continue;
        }
        for &(u, w) in &adj[v] {
            let nd = d + w;
            if nd < dist[u] {
                dist[u] = nd;
                heap.push(HeapEntry { dist: nd, v: u });
            }
        }
    }
    dist
}

impl GraphMetricSpace {
    /// Builds the all-pairs shortest-path metric of the undirected graph with
    /// `n` vertices and weighted `edges`. The graph must be connected and all
    /// weights non-negative and finite.
    pub fn from_edges(n: usize, edges: &[(usize, usize, f64)]) -> Result<Self, GraphMetricError> {
        let mut adj = vec![Vec::new(); n];
        for &(a, b, w) in edges {
            if a >= n || b >= n {
                return Err(GraphMetricError::VertexOutOfRange { edge: (a, b), n });
            }
            if !w.is_finite() || w < 0.0 {
                return Err(GraphMetricError::BadWeight { edge: (a, b) });
            }
            adj[a].push((b, w));
            adj[b].push((a, w));
        }

        use rayon::prelude::*;
        let rows: Vec<Vec<f64>> = (0..n)
            .into_par_iter()
            .map(|s| dijkstra(n, &adj, s))
            .collect();

        let mut flat = Vec::with_capacity(n * n);
        for row in &rows {
            for &v in row {
                if !v.is_finite() {
                    return Err(GraphMetricError::Disconnected);
                }
                flat.push(v);
            }
        }
        // Shortest-path distances can be asymmetric only through float
        // nondeterminism; symmetrize by averaging to keep MatrixSpace happy.
        for i in 0..n {
            for j in (i + 1)..n {
                let avg = 0.5 * (flat[i * n + j] + flat[j * n + i]);
                flat[i * n + j] = avg;
                flat[j * n + i] = avg;
            }
        }
        let matrix = MatrixSpace::new(n, flat).map_err(GraphMetricError::Matrix)?;
        Ok(Self { matrix })
    }
}

impl MetricSpace for GraphMetricSpace {
    fn n(&self) -> usize {
        self.matrix.n()
    }

    #[inline]
    fn dist(&self, i: PointId, j: PointId) -> f64 {
        self.matrix.dist(i, j)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn path_graph_distances() {
        // 0 -2- 1 -3- 2, plus a long direct edge 0 -10- 2.
        let g = GraphMetricSpace::from_edges(3, &[(0, 1, 2.0), (1, 2, 3.0), (0, 2, 10.0)]).unwrap();
        assert_eq!(g.dist(PointId(0), PointId(2)), 5.0); // via vertex 1
        assert_eq!(g.dist(PointId(0), PointId(1)), 2.0);
        assert_eq!(g.dist(PointId(1), PointId(1)), 0.0);
    }

    #[test]
    fn rejects_disconnected() {
        let err = GraphMetricSpace::from_edges(3, &[(0, 1, 1.0)]).unwrap_err();
        assert_eq!(err, GraphMetricError::Disconnected);
    }

    #[test]
    fn rejects_bad_inputs() {
        assert!(matches!(
            GraphMetricSpace::from_edges(2, &[(0, 5, 1.0)]).unwrap_err(),
            GraphMetricError::VertexOutOfRange { .. }
        ));
        assert!(matches!(
            GraphMetricSpace::from_edges(2, &[(0, 1, -1.0)]).unwrap_err(),
            GraphMetricError::BadWeight { .. }
        ));
    }

    #[test]
    fn cycle_graph_uses_shorter_arc() {
        // 4-cycle with unit weights: opposite corners at distance 2.
        let g =
            GraphMetricSpace::from_edges(4, &[(0, 1, 1.0), (1, 2, 1.0), (2, 3, 1.0), (3, 0, 1.0)])
                .unwrap();
        assert_eq!(g.dist(PointId(0), PointId(2)), 2.0);
        assert_eq!(g.dist(PointId(1), PointId(3)), 2.0);
    }
}
