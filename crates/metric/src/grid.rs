//! `GridIndex` — a τ-scaled spatial hash over Euclidean points, the
//! substrate of the grid k-center engine (`mpc-core/src/grid.rs`).
//!
//! The index buckets points into axis-aligned cells of side `τ`. Any two
//! points at distance ≤ τ differ by at most τ per axis, so they land in
//! the same cell or in one of the `3^d − 1` adjacent cells — a coverage or
//! domination query therefore scans only the **stencil** of ≤ `3^d` cells
//! around the query point instead of every candidate, turning the
//! all-pairs `O(|queries|·|cands|)` rung kernels into `O(|queries|·3^d)`
//! cell lookups plus the exact checks on the points those cells hold.
//!
//! ## Cell keys and aliasing
//!
//! A cell is identified by packing its `d` per-axis coordinates (relative
//! to the per-axis minimum) into one `u64`, `⌊64/d⌋` bits per axis. When
//! an axis spans more cells than its bit budget, distant coordinates wrap
//! onto the same packed key (aliasing). This is deliberately allowed:
//! addition commutes with masking, so a true-adjacent cell's key is always
//! one of the 3^d wrapped stencil keys, and the exact distance check the
//! caller performs on scanned points rejects aliased far points. Aliasing
//! can therefore cost extra scanned pairs, never a wrong verdict.
//!
//! ## Deterministic parallel build
//!
//! Construction is a bucket sort of `(cell key, point id)` pairs: fixed
//! size chunks of the member list are keyed and sorted on the worker pool
//! (the chunk split is a function of the member count only — see
//! [`crate::space::par_chunk_size`]), then the sorted runs are merged
//! sequentially. Every step is independent of the thread count, so the
//! index — like every other structure in this codebase — is bit-identical
//! across `KCENTER_THREADS` settings.

use rayon::prelude::*;

use crate::point::PointSet;
use crate::space;

/// Tallies of one stencil scan: how many cells were looked up and how many
/// member points they surfaced (the pairs the caller then checks exactly).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GridScan {
    /// Stencil cells probed (≤ 3^d, counting empty lookups).
    pub cells: usize,
    /// Member points surfaced for exact distance checks.
    pub points: usize,
}

/// A flat spatial hash over a subset of a [`PointSet`]: cells of side
/// `side`, stored as a CSR over the sorted distinct occupied cell keys.
#[derive(Debug, Clone)]
pub struct GridIndex {
    dim: usize,
    side: f64,
    /// Per-axis minimum over the indexed members — the grid origin.
    origin: Vec<f64>,
    /// Bits of packed key budget per axis (`⌊64/d⌋`, clamped to [1, 63]).
    bits: u32,
    mask: u64,
    /// Sorted distinct occupied cell keys.
    keys: Vec<u64>,
    /// CSR offsets into `ids`; `keys.len() + 1` entries.
    starts: Vec<u32>,
    /// Member point ids grouped by cell, ascending id within a cell.
    ids: Vec<u32>,
    /// `slots[i]` = position in `ids` of the i-th input member, so callers
    /// can keep per-member state (e.g. domination flags) in scan order.
    slots: Vec<u32>,
}

impl GridIndex {
    /// Builds the index over `members` (distinct ids into `points`) with
    /// cell side `side`. Deterministic at every thread count.
    ///
    /// Panics if `side` is not a positive finite number.
    pub fn build(points: &PointSet, members: &[u32], side: f64) -> Self {
        assert!(
            side.is_finite() && side > 0.0,
            "grid cell side must be positive and finite, got {side}"
        );
        let dim = points.dim().max(1);
        let bits = ((64 / dim) as u32).clamp(1, 63);
        let mask = (1u64 << bits) - 1;
        let n = members.len();

        // Per-axis minima — the grid origin. min is exact and
        // order-independent on finite coordinates, so the chunked fold
        // equals the sequential one.
        let origin = if n == 0 {
            vec![0.0; dim]
        } else if space::par_bulk(n) {
            members
                .par_chunks(space::par_chunk_size(n))
                .map(|chunk| axis_minima(points, chunk, dim))
                .collect::<Vec<_>>()
                .into_iter()
                .reduce(|mut a, b| {
                    for (x, y) in a.iter_mut().zip(&b) {
                        *x = x.min(*y);
                    }
                    a
                })
                .unwrap()
        } else {
            axis_minima(points, members, dim)
        };

        // Bucket sort: key every member, sort fixed chunks on the pool,
        // merge the ≤ MAX_CHUNKS sorted runs sequentially.
        let key_chunk = |chunk: &[u32]| -> Vec<(u64, u32)> {
            let mut run: Vec<(u64, u32)> = chunk
                .iter()
                .map(|&id| {
                    (
                        pack_key(points.raw(), dim, id, &origin, side, bits, mask),
                        id,
                    )
                })
                .collect();
            run.sort_unstable();
            run
        };
        let runs: Vec<Vec<(u64, u32)>> = if space::par_bulk(n) {
            members
                .par_chunks(space::par_chunk_size(n))
                .map(key_chunk)
                .collect()
        } else if n == 0 {
            Vec::new()
        } else {
            vec![key_chunk(members)]
        };
        let sorted = merge_runs(runs, n);

        // CSR over the sorted (key, id) pairs + the input-order slot map.
        let mut keys = Vec::new();
        let mut starts = Vec::with_capacity(16);
        let mut ids = Vec::with_capacity(n);
        for (i, &(key, id)) in sorted.iter().enumerate() {
            if i == 0 || keys.last() != Some(&key) {
                keys.push(key);
                starts.push(i as u32);
            }
            ids.push(id);
        }
        starts.push(n as u32);
        let mut slots = vec![0u32; n];
        // Input members are distinct, so id → input position is injective;
        // invert through a dense id-indexed table (ids are bounded by the
        // point count, so this stays O(n) and allocation-cheap).
        let mut pos_of = vec![u32::MAX; points.len().max(1)];
        for (i, &id) in members.iter().enumerate() {
            pos_of[id as usize] = i as u32;
        }
        for (slot, &id) in ids.iter().enumerate() {
            slots[pos_of[id as usize] as usize] = slot as u32;
        }

        Self {
            dim,
            side,
            origin,
            bits,
            mask,
            keys,
            starts,
            ids,
            slots,
        }
    }

    /// Number of indexed members.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// True when the index holds no members.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// Number of distinct occupied cells.
    pub fn n_cells(&self) -> usize {
        self.keys.len()
    }

    /// The cell side the index was built with.
    pub fn side(&self) -> f64 {
        self.side
    }

    /// Resident size in ledger words (8-byte units): keys, CSR offsets,
    /// ids, slots, origin — what a machine holding this index pays beyond
    /// its input points.
    pub fn memory_words(&self) -> u64 {
        (self.keys.len() + self.origin.len()) as u64
            + (self.starts.len() as u64 + self.ids.len() as u64 + self.slots.len() as u64)
                .div_ceil(2)
    }

    /// Position in scan order of the `i`-th input member (the id at
    /// `members[i]` during [`GridIndex::build`]). Callers index per-member
    /// state (domination flags) by this slot.
    pub fn slot_of(&self, i: usize) -> usize {
        self.slots[i] as usize
    }

    /// The member id stored at `slot`.
    pub fn member(&self, slot: usize) -> u32 {
        self.ids[slot]
    }

    /// Scans the ≤ 3^d stencil cells around `coords`, invoking
    /// `visit(slot, id)` for every member point they hold, and returns the
    /// scan tallies. Every member within `side` of `coords` (in any `L_p`,
    /// since per-axis deltas are then ≤ side) is visited; aliased or
    /// corner points beyond `side` may also be visited — callers decide
    /// with an exact distance check.
    pub fn stencil<F: FnMut(usize, u32)>(&self, coords: &[f64], mut visit: F) -> GridScan {
        debug_assert_eq!(coords.len(), self.dim);
        let base: Vec<u64> = (0..self.dim)
            .map(|a| axis_cell(coords[a], self.origin[a], self.side))
            .collect();
        let mut scan = GridScan::default();
        // Mixed-radix counter over the 3^d per-axis offsets {-1, 0, +1}.
        let mut offs = vec![0u8; self.dim];
        loop {
            let mut key = 0u64;
            for a in 0..self.dim {
                let c = match offs[a] {
                    0 => base[a].wrapping_sub(1),
                    1 => base[a],
                    _ => base[a].wrapping_add(1),
                } & self.mask;
                key |= c << (a as u32 * self.bits);
            }
            scan.cells += 1;
            if let Ok(ci) = self.keys.binary_search(&key) {
                let (lo, hi) = (self.starts[ci] as usize, self.starts[ci + 1] as usize);
                scan.points += hi - lo;
                for slot in lo..hi {
                    visit(slot, self.ids[slot]);
                }
            }
            // Advance the counter; done after the all-(+1) combination.
            let mut a = 0;
            loop {
                if a == self.dim {
                    return scan;
                }
                offs[a] += 1;
                if offs[a] < 3 {
                    break;
                }
                offs[a] = 0;
                a += 1;
            }
        }
    }
}

/// Per-axis minima of `chunk`'s coordinates.
fn axis_minima(points: &PointSet, chunk: &[u32], dim: usize) -> Vec<f64> {
    let data = points.raw();
    let mut mins = vec![f64::INFINITY; dim];
    for &id in chunk {
        let row = &data[id as usize * dim..(id as usize + 1) * dim];
        for (m, &x) in mins.iter_mut().zip(row) {
            *m = m.min(x);
        }
    }
    mins
}

/// The (possibly wrapped) cell coordinate of `x` on one axis.
#[inline]
fn axis_cell(x: f64, origin: f64, side: f64) -> u64 {
    // x ≥ origin for indexed members, so the floor is ≥ 0 there; query
    // points below the origin saturate to cell 0, whose stencil still
    // covers everything within one side of the boundary.
    let c = ((x - origin) / side).floor();
    if c <= 0.0 {
        0
    } else if c >= u64::MAX as f64 {
        u64::MAX
    } else {
        c as u64
    }
}

/// Packs point `id`'s masked per-axis cell coordinates into one key.
#[inline]
fn pack_key(
    data: &[f64],
    dim: usize,
    id: u32,
    origin: &[f64],
    side: f64,
    bits: u32,
    mask: u64,
) -> u64 {
    let row = &data[id as usize * dim..(id as usize + 1) * dim];
    let mut key = 0u64;
    for (a, (&x, &o)) in row.iter().zip(origin).enumerate() {
        key |= (axis_cell(x, o, side) & mask) << (a as u32 * bits);
    }
    key
}

/// Sequential k-way merge of sorted `(key, id)` runs via a tournament over
/// run heads — O(n log runs), deterministic by construction.
fn merge_runs(runs: Vec<Vec<(u64, u32)>>, n: usize) -> Vec<(u64, u32)> {
    if runs.len() <= 1 {
        return runs.into_iter().next().unwrap_or_default();
    }
    let mut heads: Vec<usize> = vec![0; runs.len()];
    let mut out = Vec::with_capacity(n);
    // A binary heap keyed by (entry, run index) keeps ties deterministic;
    // ids are distinct so (key, id) never actually ties.
    let mut heap = std::collections::BinaryHeap::with_capacity(runs.len());
    for (r, run) in runs.iter().enumerate() {
        if let Some(&e) = run.first() {
            heap.push(std::cmp::Reverse((e, r)));
        }
    }
    while let Some(std::cmp::Reverse((e, r))) = heap.pop() {
        out.push(e);
        heads[r] += 1;
        if let Some(&next) = runs[r].get(heads[r]) {
            heap.push(std::cmp::Reverse((next, r)));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datasets;
    use crate::point::PointId;
    use crate::space::MetricSpace;
    use crate::EuclideanSpace;
    use rayon::with_threads;

    fn brute_neighbors(space: &EuclideanSpace, members: &[u32], p: u32, tau: f64) -> Vec<u32> {
        members
            .iter()
            .copied()
            .filter(|&q| space.dist(PointId(p), PointId(q)) <= tau)
            .collect()
    }

    #[test]
    fn stencil_finds_every_point_within_side() {
        for (n, dim, seed) in [(300usize, 2usize, 7u64), (200, 3, 11), (150, 5, 13)] {
            let points = datasets::uniform_cube(n, dim, seed);
            let space = EuclideanSpace::new(points.clone());
            let members: Vec<u32> = (0..n as u32).collect();
            let tau = 0.25;
            let grid = GridIndex::build(&points, &members, tau);
            for &p in members.iter().step_by(17) {
                let mut found = Vec::new();
                grid.stencil(points.coords(PointId(p)), |_, id| found.push(id));
                for q in brute_neighbors(&space, &members, p, tau) {
                    assert!(
                        found.contains(&q),
                        "point {q} within τ of {p} missed by stencil (d={dim})"
                    );
                }
            }
        }
    }

    #[test]
    fn build_is_thread_count_invariant() {
        let n = 6000; // above PAR_MIN_BULK so the parallel path engages
        let points = datasets::gaussian_clusters(n, 3, 5, 0.05, 3);
        let members: Vec<u32> = (0..n as u32).collect();
        let reference = with_threads(1, || GridIndex::build(&points, &members, 0.1));
        for threads in [2usize, 8] {
            let g = with_threads(threads, || GridIndex::build(&points, &members, 0.1));
            assert_eq!(g.keys, reference.keys, "t={threads}");
            assert_eq!(g.starts, reference.starts, "t={threads}");
            assert_eq!(g.ids, reference.ids, "t={threads}");
            assert_eq!(g.slots, reference.slots, "t={threads}");
        }
    }

    #[test]
    fn slots_invert_scan_order() {
        let points = datasets::uniform_cube(100, 2, 5);
        let members: Vec<u32> = (0..100u32).rev().collect(); // arbitrary order
        let grid = GridIndex::build(&points, &members, 0.3);
        for (i, &id) in members.iter().enumerate() {
            assert_eq!(grid.member(grid.slot_of(i)), id);
        }
    }

    #[test]
    fn cells_group_by_key_with_ascending_ids() {
        let points = datasets::uniform_cube(500, 2, 9);
        let members: Vec<u32> = (0..500u32).collect();
        let grid = GridIndex::build(&points, &members, 0.2);
        assert!(grid.keys.windows(2).all(|w| w[0] < w[1]));
        for ci in 0..grid.n_cells() {
            let cell = &grid.ids[grid.starts[ci] as usize..grid.starts[ci + 1] as usize];
            assert!(cell.windows(2).all(|w| w[0] < w[1]));
        }
        assert_eq!(grid.len(), 500);
        assert!(grid.memory_words() > 0);
    }

    #[test]
    fn tiny_side_isolates_distinct_points_despite_aliasing() {
        // Side far below the point spacing: every occupied cell holds one
        // point unless packed keys alias. The stencil must still find each
        // point from its own coordinates.
        let points = datasets::uniform_cube(64, 8, 21); // 8 bits per axis
        let members: Vec<u32> = (0..64u32).collect();
        let grid = GridIndex::build(&points, &members, 1e-4);
        for &p in &members {
            let mut found = Vec::new();
            grid.stencil(points.coords(PointId(p)), |_, id| found.push(id));
            assert!(found.contains(&p), "point {p} must find itself");
        }
    }

    #[test]
    fn empty_members_build() {
        let points = datasets::uniform_cube(10, 2, 1);
        let grid = GridIndex::build(&points, &[], 1.0);
        assert!(grid.is_empty());
        assert_eq!(grid.n_cells(), 0);
        let scan = grid.stencil(&[0.5, 0.5], |_, _| panic!("no members"));
        assert_eq!(scan.points, 0);
        assert_eq!(scan.cells, 9);
    }

    #[test]
    #[should_panic(expected = "positive and finite")]
    fn rejects_nonpositive_side() {
        let points = datasets::uniform_cube(10, 2, 1);
        GridIndex::build(&points, &[0], 0.0);
    }
}
