//! Hamming metric over packed bit vectors — a discrete metric space used to
//! demonstrate the algorithms beyond geometric inputs (e.g. feature-set
//! diversity in information retrieval, the paper's motivating application).

use crate::point::PointId;
use crate::space::MetricSpace;

/// Hamming distance over fixed-width binary strings, stored packed as
/// `u64` limbs.
#[derive(Debug, Clone)]
pub struct HammingSpace {
    /// `limbs_per_point` u64 words per point, row-major.
    limbs: Vec<u64>,
    limbs_per_point: usize,
    bits: usize,
    n: usize,
}

impl HammingSpace {
    /// Builds a space of `n` points, each a `bits`-wide binary string, from a
    /// per-point slice of bit indices that are set.
    pub fn from_set_bits(n: usize, bits: usize, set_bits: &[Vec<usize>]) -> Self {
        assert_eq!(set_bits.len(), n);
        assert!(bits > 0);
        let lpp = bits.div_ceil(64);
        let mut limbs = vec![0u64; n * lpp];
        for (p, row) in set_bits.iter().enumerate() {
            for &b in row {
                assert!(b < bits, "bit index {b} out of range {bits}");
                limbs[p * lpp + b / 64] |= 1u64 << (b % 64);
            }
        }
        Self {
            limbs,
            limbs_per_point: lpp,
            bits,
            n,
        }
    }

    /// Bit width of every point.
    pub fn bits(&self) -> usize {
        self.bits
    }

    #[inline]
    fn row(&self, i: PointId) -> &[u64] {
        let s = i.idx() * self.limbs_per_point;
        &self.limbs[s..s + self.limbs_per_point]
    }
}

impl MetricSpace for HammingSpace {
    fn n(&self) -> usize {
        self.n
    }

    #[inline]
    fn dist(&self, i: PointId, j: PointId) -> f64 {
        let (a, b) = (self.row(i), self.row(j));
        let mut acc = 0u32;
        for l in 0..a.len() {
            acc += (a[l] ^ b[l]).count_ones();
        }
        acc as f64
    }

    fn point_weight(&self) -> u64 {
        self.limbs_per_point as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_differing_bits() {
        let h = HammingSpace::from_set_bits(
            3,
            128,
            &[vec![0, 1, 2], vec![0, 1, 2, 100], vec![5, 64, 127]],
        );
        assert_eq!(h.dist(PointId(0), PointId(1)), 1.0);
        assert_eq!(h.dist(PointId(0), PointId(2)), 6.0);
        assert_eq!(h.dist(PointId(1), PointId(1)), 0.0);
    }

    #[test]
    fn symmetric_and_triangle() {
        let h = HammingSpace::from_set_bits(3, 8, &[vec![0], vec![0, 1], vec![2, 3, 4]]);
        for i in 0..3u32 {
            for j in 0..3u32 {
                assert_eq!(
                    h.dist(PointId(i), PointId(j)),
                    h.dist(PointId(j), PointId(i))
                );
                for k in 0..3u32 {
                    assert!(
                        h.dist(PointId(i), PointId(k))
                            <= h.dist(PointId(i), PointId(j)) + h.dist(PointId(j), PointId(k))
                    );
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_out_of_range_bits() {
        HammingSpace::from_set_bits(1, 8, &[vec![8]]);
    }
}
