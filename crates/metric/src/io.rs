//! Dataset persistence: ann-benchmarks vector formats and the compact
//! codec.
//!
//! Two interchange families, both little-endian:
//!
//! * **fvecs / bvecs** — the TEXMEX / ann-benchmarks layout: each vector
//!   is a 4-byte component count followed by that many `f32` (fvecs) or
//!   `u8` (bvecs) components. SIFT, GIST and friends ship this way, so
//!   the E-tables can run on real embedding workloads.
//! * **native `.kcps`** — a [`PointSet`] serialized through the compact
//!   [`serde`] codec behind a magic/version header. Exact (`f64` bits
//!   round-trip), unlike fvecs whose `f32` components narrow.
//!
//! Readers are hostile-input safe: truncated buffers, ragged dimensions,
//! and absurd length prefixes are errors, never panics or huge
//! allocations.

use serde::{Deserialize, Serialize};

use crate::point::PointSet;

/// `b"KCPS"` — k-center point set, the native codec container.
pub const POINTSET_MAGIC: u32 = u32::from_le_bytes(*b"KCPS");

/// Native container version.
pub const POINTSET_VERSION: u32 = 1;

/// Malformed dataset input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FormatError {
    /// Buffer ended inside a vector or header.
    Truncated { offset: usize },
    /// A vector's component count is zero, negative, or implausible.
    BadDim { offset: usize, dim: i64 },
    /// A vector's component count differs from the first vector's.
    RaggedDim {
        offset: usize,
        first: usize,
        got: usize,
    },
    /// The native container's magic or version is wrong.
    BadHeader,
    /// The native container's payload failed to decode.
    Codec(String),
}

impl std::fmt::Display for FormatError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Truncated { offset } => write!(f, "truncated at byte {offset}"),
            Self::BadDim { offset, dim } => {
                write!(f, "implausible dimension {dim} at byte {offset}")
            }
            Self::RaggedDim { offset, first, got } => {
                write!(
                    f,
                    "dimension {got} at byte {offset} (first vector had {first})"
                )
            }
            Self::BadHeader => write!(f, "not a KCPS container (bad magic/version)"),
            Self::Codec(e) => write!(f, "payload decode: {e}"),
        }
    }
}

impl std::error::Error for FormatError {}

/// Upper bound on accepted per-vector dimension — generous for any
/// embedding workload, small enough that a corrupted length prefix cannot
/// drive allocation.
const MAX_DIM: i64 = 1 << 20;

fn read_dim(bytes: &[u8], offset: usize, first: Option<usize>) -> Result<usize, FormatError> {
    let Some(raw) = bytes.get(offset..offset + 4) else {
        return Err(FormatError::Truncated { offset });
    };
    let dim = i32::from_le_bytes(raw.try_into().expect("4 bytes")) as i64;
    if dim <= 0 || dim > MAX_DIM {
        return Err(FormatError::BadDim { offset, dim });
    }
    let dim = dim as usize;
    if let Some(first) = first {
        if dim != first {
            return Err(FormatError::RaggedDim {
                offset,
                first,
                got: dim,
            });
        }
    }
    Ok(dim)
}

/// Parses fvecs bytes (`[d: i32][d × f32]` per vector) into a [`PointSet`]
/// (components widened to `f64`). Empty input is an empty 1-dimensional
/// set, mirroring the format's lack of a global header.
pub fn parse_fvecs(bytes: &[u8]) -> Result<PointSet, FormatError> {
    let mut data: Vec<f64> = Vec::new();
    let mut dim: Option<usize> = None;
    let mut offset = 0usize;
    while offset < bytes.len() {
        let d = read_dim(bytes, offset, dim)?;
        dim = Some(d);
        offset += 4;
        let Some(body) = bytes.get(offset..offset + 4 * d) else {
            return Err(FormatError::Truncated { offset });
        };
        for c in body.chunks_exact(4) {
            data.push(f32::from_le_bytes(c.try_into().expect("4 bytes")) as f64);
        }
        offset += 4 * d;
    }
    Ok(PointSet::new(data, dim.unwrap_or(1)))
}

/// Parses bvecs bytes (`[d: i32][d × u8]` per vector) into a [`PointSet`].
pub fn parse_bvecs(bytes: &[u8]) -> Result<PointSet, FormatError> {
    let mut data: Vec<f64> = Vec::new();
    let mut dim: Option<usize> = None;
    let mut offset = 0usize;
    while offset < bytes.len() {
        let d = read_dim(bytes, offset, dim)?;
        dim = Some(d);
        offset += 4;
        let Some(body) = bytes.get(offset..offset + d) else {
            return Err(FormatError::Truncated { offset });
        };
        data.extend(body.iter().map(|&b| b as f64));
        offset += d;
    }
    Ok(PointSet::new(data, dim.unwrap_or(1)))
}

/// Serializes a [`PointSet`] as fvecs bytes (components narrowed to
/// `f32` — lossy for general `f64` data; use the native container for
/// exact round-trips).
pub fn to_fvecs(ps: &PointSet) -> Vec<u8> {
    let dim = ps.dim();
    let mut out = Vec::with_capacity(ps.len() * (4 + 4 * dim));
    for id in ps.ids() {
        out.extend_from_slice(&(dim as i32).to_le_bytes());
        for &x in ps.coords(id) {
            out.extend_from_slice(&(x as f32).to_le_bytes());
        }
    }
    out
}

/// Serializes a [`PointSet`] into the native codec container (exact).
pub fn to_kcps(ps: &PointSet) -> Vec<u8> {
    let mut out = Vec::new();
    POINTSET_MAGIC.to_bytes(&mut out);
    POINTSET_VERSION.to_bytes(&mut out);
    ps.to_bytes(&mut out);
    out
}

/// Parses a native codec container back into a [`PointSet`] (exact).
pub fn parse_kcps(bytes: &[u8]) -> Result<PointSet, FormatError> {
    let mut cursor = bytes;
    let magic = u32::from_bytes(&mut cursor).map_err(|_| FormatError::BadHeader)?;
    let version = u32::from_bytes(&mut cursor).map_err(|_| FormatError::BadHeader)?;
    if magic != POINTSET_MAGIC || version != POINTSET_VERSION {
        return Err(FormatError::BadHeader);
    }
    let ps = PointSet::from_bytes(&mut cursor).map_err(|e| FormatError::Codec(e.to_string()))?;
    if !cursor.is_empty() {
        return Err(FormatError::Codec(format!(
            "{} trailing bytes",
            cursor.len()
        )));
    }
    Ok(ps)
}

/// Loads a dataset file by extension: `.fvecs`, `.bvecs`, or `.kcps`.
pub fn load_dataset(path: &std::path::Path) -> Result<PointSet, Box<dyn std::error::Error>> {
    let bytes = std::fs::read(path).map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    let ext = path
        .extension()
        .and_then(|e| e.to_str())
        .unwrap_or_default();
    let ps = match ext {
        "fvecs" => parse_fvecs(&bytes)?,
        "bvecs" => parse_bvecs(&bytes)?,
        "kcps" => parse_kcps(&bytes)?,
        other => {
            return Err(
                format!("unknown dataset extension {other:?} (expected fvecs|bvecs|kcps)").into(),
            )
        }
    };
    Ok(ps)
}

/// Saves a dataset by extension: `.fvecs` (lossy `f32`) or `.kcps` (exact).
pub fn save_dataset(
    path: &std::path::Path,
    ps: &PointSet,
) -> Result<(), Box<dyn std::error::Error>> {
    let ext = path
        .extension()
        .and_then(|e| e.to_str())
        .unwrap_or_default();
    let bytes = match ext {
        "fvecs" => to_fvecs(ps),
        "kcps" => to_kcps(ps),
        other => {
            return Err(format!("unknown dataset extension {other:?} (expected fvecs|kcps)").into())
        }
    };
    std::fs::write(path, bytes).map_err(|e| format!("cannot write {}: {e}", path.display()))?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datasets;

    #[test]
    fn fvecs_roundtrip_within_f32() {
        let ps = datasets::uniform_cube(37, 5, 9);
        let parsed = parse_fvecs(&to_fvecs(&ps)).unwrap();
        assert_eq!(parsed.len(), 37);
        assert_eq!(parsed.dim(), 5);
        for id in ps.ids() {
            for (a, b) in ps.coords(id).iter().zip(parsed.coords(id)) {
                assert_eq!(*a as f32, *b as f32, "f32-exact round trip");
            }
        }
    }

    #[test]
    fn bvecs_parses_byte_components() {
        let mut bytes = Vec::new();
        for v in [[0u8, 128, 255], [1, 2, 3]] {
            bytes.extend_from_slice(&3i32.to_le_bytes());
            bytes.extend_from_slice(&v);
        }
        let ps = parse_bvecs(&bytes).unwrap();
        assert_eq!(ps.len(), 2);
        assert_eq!(ps.coords(crate::PointId(0)), &[0.0, 128.0, 255.0]);
    }

    #[test]
    fn kcps_roundtrip_is_bit_exact() {
        let mut ps = datasets::gaussian_clusters(50, 3, 4, 0.1, 3);
        // Force awkward bit patterns through the container.
        ps = PointSet::new(
            ps.ids()
                .flat_map(|id| ps.coords(id).to_vec())
                .chain([f64::NAN, -0.0, f64::INFINITY])
                .collect(),
            3,
        );
        let back = parse_kcps(&to_kcps(&ps)).unwrap();
        assert_eq!(back.len(), ps.len());
        assert_eq!(back.dim(), 3);
        for (a, b) in ps
            .ids()
            .flat_map(|id| ps.coords(id).to_vec())
            .zip(back.ids().flat_map(|id| back.coords(id).to_vec()))
        {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn truncated_and_ragged_inputs_rejected() {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&4i32.to_le_bytes());
        bytes.extend_from_slice(&1.0f32.to_le_bytes()); // 1 of 4 components
        assert!(matches!(
            parse_fvecs(&bytes),
            Err(FormatError::Truncated { .. })
        ));

        let mut ragged = Vec::new();
        ragged.extend_from_slice(&1i32.to_le_bytes());
        ragged.extend_from_slice(&1.0f32.to_le_bytes());
        ragged.extend_from_slice(&2i32.to_le_bytes());
        ragged.extend_from_slice(&1.0f32.to_le_bytes());
        ragged.extend_from_slice(&1.0f32.to_le_bytes());
        assert!(matches!(
            parse_fvecs(&ragged),
            Err(FormatError::RaggedDim { .. })
        ));

        let mut hostile = Vec::new();
        hostile.extend_from_slice(&i32::MAX.to_le_bytes());
        assert!(matches!(
            parse_fvecs(&hostile),
            Err(FormatError::BadDim { .. })
        ));

        assert!(matches!(parse_kcps(b"nope"), Err(FormatError::BadHeader)));
    }

    #[test]
    fn dataset_files_roundtrip_by_extension() {
        let dir = std::env::temp_dir().join("kcps-io-test");
        std::fs::create_dir_all(&dir).unwrap();
        let ps = datasets::uniform_cube(20, 2, 5);
        for name in ["a.kcps", "a.fvecs"] {
            let path = dir.join(name);
            save_dataset(&path, &ps).unwrap();
            let back = load_dataset(&path).unwrap();
            assert_eq!(back.len(), 20);
            assert_eq!(back.dim(), 2);
        }
        assert!(load_dataset(&dir.join("missing.csv")).is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
