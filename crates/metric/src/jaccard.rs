//! Jaccard distance over sets (packed bit vectors) — the standard metric
//! for shingle/feature-set similarity in near-duplicate detection, another
//! "any metric space" instantiation from the paper's IR motivation.

use crate::point::PointId;
use crate::space::MetricSpace;

/// Jaccard distance `d(A, B) = 1 − |A ∩ B| / |A ∪ B|` over fixed-width
/// bit sets (a genuine metric; the empty set is at distance 1 from every
/// non-empty set and 0 from itself).
#[derive(Debug, Clone)]
pub struct JaccardSpace {
    limbs: Vec<u64>,
    limbs_per_point: usize,
    n: usize,
}

impl JaccardSpace {
    /// Builds from per-point lists of set-bit indices (`bits`-wide sets).
    pub fn from_set_bits(n: usize, bits: usize, set_bits: &[Vec<usize>]) -> Self {
        assert_eq!(set_bits.len(), n);
        assert!(bits > 0);
        let lpp = bits.div_ceil(64);
        let mut limbs = vec![0u64; n * lpp];
        for (p, row) in set_bits.iter().enumerate() {
            for &b in row {
                assert!(b < bits, "bit index {b} out of range {bits}");
                limbs[p * lpp + b / 64] |= 1u64 << (b % 64);
            }
        }
        Self {
            limbs,
            limbs_per_point: lpp,
            n,
        }
    }

    #[inline]
    fn row(&self, i: PointId) -> &[u64] {
        let s = i.idx() * self.limbs_per_point;
        &self.limbs[s..s + self.limbs_per_point]
    }
}

impl MetricSpace for JaccardSpace {
    fn n(&self) -> usize {
        self.n
    }

    #[inline]
    fn dist(&self, i: PointId, j: PointId) -> f64 {
        let (a, b) = (self.row(i), self.row(j));
        let mut inter = 0u32;
        let mut union = 0u32;
        for l in 0..a.len() {
            inter += (a[l] & b[l]).count_ones();
            union += (a[l] | b[l]).count_ones();
        }
        if union == 0 {
            0.0 // both empty: identical sets
        } else {
            1.0 - inter as f64 / union as f64
        }
    }

    fn point_weight(&self) -> u64 {
        self.limbs_per_point as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_values() {
        let j = JaccardSpace::from_set_bits(
            4,
            8,
            &[vec![0, 1, 2], vec![1, 2, 3], vec![], vec![0, 1, 2]],
        );
        // |∩| = 2, |∪| = 4 → d = 0.5
        assert_eq!(j.dist(PointId(0), PointId(1)), 0.5);
        // identical sets
        assert_eq!(j.dist(PointId(0), PointId(3)), 0.0);
        // empty vs non-empty
        assert_eq!(j.dist(PointId(0), PointId(2)), 1.0);
        // empty vs empty
        assert_eq!(j.dist(PointId(2), PointId(2)), 0.0);
    }

    #[test]
    fn satisfies_metric_axioms() {
        use crate::datasets;
        let bits = datasets::random_bitsets(100, 96, 0.25, 9);
        let j = JaccardSpace::from_set_bits(100, 96, &bits);
        assert_eq!(
            crate::validate::check_metric_axioms(&j, 2000, 1e-9, 4),
            None
        );
    }

    #[test]
    fn bounded_by_one() {
        let bits = datasets::random_bitsets(50, 64, 0.5, 3);
        let j = JaccardSpace::from_set_bits(50, 64, &bits);
        for i in 0..50u32 {
            for k in 0..50u32 {
                let d = j.dist(PointId(i), PointId(k));
                assert!((0.0..=1.0).contains(&d));
            }
        }
    }

    use crate::datasets;
}
