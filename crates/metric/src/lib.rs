//! Metric-space substrate for the MPC clustering algorithms.
//!
//! The paper's algorithms ("Almost Optimal Massively Parallel Algorithms for
//! k-Center Clustering and Diversity Maximization", SPAA 2023) work in **any
//! metric space** and touch the input only through a constant-time distance
//! oracle. This crate provides that oracle as the [`MetricSpace`] trait,
//! together with:
//!
//! * concrete spaces: [`EuclideanSpace`], [`ManhattanSpace`],
//!   [`ChebyshevSpace`], [`AngularSpace`], [`HammingSpace`],
//!   [`JaccardSpace`], [`EditDistanceSpace`], [`MatrixSpace`] (arbitrary
//!   precomputed metrics) and [`GraphMetricSpace`] (shortest-path metrics);
//! * the [`CountingSpace`] wrapper that counts distance evaluations, used by
//!   the benchmark harness;
//! * deterministic synthetic dataset generators in [`datasets`];
//! * a sampling-based metric-axiom checker in [`validate`].
//!
//! Points are identified by dense indices ([`PointId`]); coordinates live in
//! flat, cache-friendly arrays. All spaces are `Sync` so machine-local
//! computation can run under rayon.

pub mod angular;
pub mod counting;
pub mod datasets;
pub mod edit;
pub mod euclidean;
pub mod graph_metric;
pub mod grid;
pub mod hamming;
pub mod io;
pub mod jaccard;
pub mod matrix;
pub mod minkowski;
pub mod point;
pub mod simd;
pub mod sketch;
pub mod soa;
pub mod space;
pub mod validate;

pub use angular::AngularSpace;
pub use counting::CountingSpace;
pub use edit::EditDistanceSpace;
pub use euclidean::EuclideanSpace;
pub use graph_metric::GraphMetricSpace;
pub use grid::{GridIndex, GridScan};
pub use hamming::HammingSpace;
pub use io::{load_dataset, parse_bvecs, parse_fvecs, parse_kcps, save_dataset, to_fvecs, to_kcps};
pub use jaccard::JaccardSpace;
pub use matrix::MatrixSpace;
pub use minkowski::{ChebyshevSpace, ManhattanSpace};
pub use point::{PointId, PointSet};
pub use soa::SpeedTier;
pub use space::{
    dist_point_to_set, dist_set_to_set, min_pairwise_distance, par_bulk, par_bulk_pairs,
    par_bulk_weighted, par_chunk_size, par_chunk_size_weighted, par_count_chunks,
    par_count_chunks_weighted, par_filter_chunks, par_filter_chunks_weighted, par_query_chunks,
    KernelStats, MetricSpace, PAR_MIN_BULK,
};
