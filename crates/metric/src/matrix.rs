//! Explicit distance-matrix metric — the fully general "any metric space"
//! oracle, for metrics with no coordinate structure at all.

use std::sync::atomic::{AtomicU64, Ordering};

use crate::point::PointId;
use crate::space::{self, KernelStats, MetricSpace};

/// Pair tallies for [`MatrixSpace`]'s batched kernels, mirroring the
/// Euclidean counters so `MatrixSpace` runs report [`KernelStats`] too.
/// Row scans have no run/indexed or sketch split, so the mapping is by
/// kernel shape: single-query scans count as `run_pairs`, multi-query
/// scans as `indexed_pairs`, multi-τ scans as `taus_run_pairs`. Relaxed
/// atomics — tallies, not synchronization.
#[derive(Debug, Default)]
struct MatrixCounters {
    run_pairs: AtomicU64,
    indexed_pairs: AtomicU64,
    taus_run_pairs: AtomicU64,
}

impl MatrixCounters {
    fn add(counter: &AtomicU64, pairs: u64) {
        counter.fetch_add(pairs, Ordering::Relaxed);
    }

    fn snapshot(&self) -> KernelStats {
        KernelStats {
            run_pairs: self.run_pairs.load(Ordering::Relaxed),
            indexed_pairs: self.indexed_pairs.load(Ordering::Relaxed),
            taus_run_pairs: self.taus_run_pairs.load(Ordering::Relaxed),
            ..KernelStats::default()
        }
    }
}

impl Clone for MatrixCounters {
    fn clone(&self) -> Self {
        Self {
            run_pairs: AtomicU64::new(self.run_pairs.load(Ordering::Relaxed)),
            indexed_pairs: AtomicU64::new(self.indexed_pairs.load(Ordering::Relaxed)),
            taus_run_pairs: AtomicU64::new(self.taus_run_pairs.load(Ordering::Relaxed)),
        }
    }
}

/// A metric given by an explicit `n × n` distance matrix.
///
/// Stores the full matrix (not just the upper triangle) so lookups are a
/// single multiply-add; construction validates symmetry and zero diagonal
/// and optionally the triangle inequality.
#[derive(Debug, Clone)]
pub struct MatrixSpace {
    d: Vec<f64>,
    n: usize,
    counters: MatrixCounters,
}

/// Construction-time validation failures for [`MatrixSpace`].
#[derive(Debug, Clone, PartialEq)]
pub enum MatrixSpaceError {
    /// The flat buffer is not `n * n` long.
    BadShape { expected: usize, got: usize },
    /// `d[i][i] != 0` for some `i`.
    NonZeroDiagonal(usize),
    /// `d[i][j] != d[j][i]` for some pair.
    Asymmetric(usize, usize),
    /// Some entry is negative or non-finite.
    InvalidEntry(usize, usize),
    /// `d[i][k] > d[i][j] + d[j][k]` for some triple (only checked by
    /// [`MatrixSpace::new_checked`]).
    TriangleViolation(usize, usize, usize),
}

impl std::fmt::Display for MatrixSpaceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::BadShape { expected, got } => {
                write!(f, "matrix buffer has {got} entries, expected {expected}")
            }
            Self::NonZeroDiagonal(i) => write!(f, "d[{i}][{i}] is not zero"),
            Self::Asymmetric(i, j) => write!(f, "d[{i}][{j}] != d[{j}][{i}]"),
            Self::InvalidEntry(i, j) => write!(f, "d[{i}][{j}] is negative or non-finite"),
            Self::TriangleViolation(i, j, k) => {
                write!(f, "triangle inequality violated on ({i}, {j}, {k})")
            }
        }
    }
}

impl std::error::Error for MatrixSpaceError {}

impl MatrixSpace {
    /// Builds from a flat row-major `n × n` matrix, validating shape,
    /// symmetry, zero diagonal, and entry sanity (O(n²)).
    pub fn new(n: usize, d: Vec<f64>) -> Result<Self, MatrixSpaceError> {
        if d.len() != n * n {
            return Err(MatrixSpaceError::BadShape {
                expected: n * n,
                got: d.len(),
            });
        }
        for i in 0..n {
            if d[i * n + i] != 0.0 {
                return Err(MatrixSpaceError::NonZeroDiagonal(i));
            }
            for j in 0..n {
                let v = d[i * n + j];
                if !v.is_finite() || v < 0.0 {
                    return Err(MatrixSpaceError::InvalidEntry(i, j));
                }
                if v != d[j * n + i] {
                    return Err(MatrixSpaceError::Asymmetric(i, j));
                }
            }
        }
        Ok(Self {
            d,
            n,
            counters: MatrixCounters::default(),
        })
    }

    /// Like [`MatrixSpace::new`] but additionally verifies the triangle
    /// inequality over all triples (O(n³); intended for tests and small
    /// hand-built metrics).
    pub fn new_checked(n: usize, d: Vec<f64>) -> Result<Self, MatrixSpaceError> {
        let m = Self::new(n, d)?;
        const EPS: f64 = 1e-9;
        for i in 0..n {
            for j in 0..n {
                for k in 0..n {
                    if m.d[i * n + k] > m.d[i * n + j] + m.d[j * n + k] + EPS {
                        return Err(MatrixSpaceError::TriangleViolation(i, j, k));
                    }
                }
            }
        }
        Ok(m)
    }

    /// Builds the matrix by evaluating `f` on every ordered pair with
    /// `f(i,i) = 0` enforced; `f` must be symmetric.
    pub fn from_fn(
        n: usize,
        mut f: impl FnMut(usize, usize) -> f64,
    ) -> Result<Self, MatrixSpaceError> {
        let mut d = vec![0.0; n * n];
        for i in 0..n {
            for j in (i + 1)..n {
                let v = f(i, j);
                d[i * n + j] = v;
                d[j * n + i] = v;
            }
        }
        Self::new(n, d)
    }
}

impl MetricSpace for MatrixSpace {
    fn n(&self) -> usize {
        self.n
    }

    #[inline]
    fn dist(&self, i: PointId, j: PointId) -> f64 {
        self.d[i.idx() * self.n + j.idx()]
    }

    /// Batched kernel: borrow `v`'s matrix row once and scan it
    /// contiguously, instead of recomputing the row offset per pair. Large
    /// batches fan candidate chunks out across the worker pool (see
    /// [`space::par_bulk`]); integer chunk counts sum exactly, so the
    /// parallel and sequential answers coincide.
    fn count_within(&self, v: PointId, candidates: &[u32], tau: f64) -> usize {
        MatrixCounters::add(&self.counters.run_pairs, candidates.len() as u64);
        let row = &self.d[v.idx() * self.n..(v.idx() + 1) * self.n];
        let scan = |chunk: &[u32]| chunk.iter().filter(|&&c| row[c as usize] <= tau).count();
        if space::par_bulk(candidates.len()) {
            space::par_count_chunks(candidates, scan)
        } else {
            scan(candidates)
        }
    }

    /// Batched filter twin of [`MetricSpace::count_within`] over the same
    /// contiguous row slice; per-chunk survivors concatenate in chunk
    /// order, preserving the sequential output order.
    fn neighbors_within(&self, v: PointId, candidates: &[u32], tau: f64, out: &mut Vec<u32>) {
        MatrixCounters::add(&self.counters.run_pairs, candidates.len() as u64);
        out.clear();
        let row = &self.d[v.idx() * self.n..(v.idx() + 1) * self.n];
        if space::par_bulk(candidates.len()) {
            space::par_filter_chunks(candidates, out, |chunk| {
                chunk
                    .iter()
                    .copied()
                    .filter(|&c| row[c as usize] <= tau)
                    .collect()
            });
        } else {
            out.extend(
                candidates
                    .iter()
                    .copied()
                    .filter(|&c| row[c as usize] <= tau),
            );
        }
    }

    /// Row-sliced multi-query kernel: each query borrows its matrix row
    /// once and scans candidates against it, skipping the per-call row
    /// offset and `par_bulk` gating the single-query kernel would redo per
    /// query. Large query batches fan fixed query chunks across the worker
    /// pool; rows concatenate in query order.
    fn count_within_many(&self, vs: &[u32], candidates: &[u32], tau: f64) -> Vec<usize> {
        MatrixCounters::add(
            &self.counters.indexed_pairs,
            vs.len() as u64 * candidates.len() as u64,
        );
        let run = |qs: &[u32]| -> Vec<usize> {
            qs.iter()
                .map(|&v| {
                    let row = &self.d[v as usize * self.n..(v as usize + 1) * self.n];
                    candidates
                        .iter()
                        .filter(|&&c| row[c as usize] <= tau)
                        .count()
                })
                .collect()
        };
        if space::par_bulk_pairs(vs.len(), candidates.len()) {
            space::par_query_chunks(vs, run)
        } else {
            run(vs)
        }
    }

    /// Filter twin of [`MetricSpace::count_within_many`] over the same row
    /// slices; candidate order is preserved per query.
    fn neighbors_within_many(&self, vs: &[u32], candidates: &[u32], tau: f64) -> Vec<Vec<u32>> {
        MatrixCounters::add(
            &self.counters.indexed_pairs,
            vs.len() as u64 * candidates.len() as u64,
        );
        let run = |qs: &[u32]| -> Vec<Vec<u32>> {
            qs.iter()
                .map(|&v| {
                    let row = &self.d[v as usize * self.n..(v as usize + 1) * self.n];
                    candidates
                        .iter()
                        .copied()
                        .filter(|&c| row[c as usize] <= tau)
                        .collect()
                })
                .collect()
        };
        if space::par_bulk_pairs(vs.len(), candidates.len()) {
            space::par_query_chunks(vs, run)
        } else {
            run(vs)
        }
    }

    /// Multi-τ kernel: one row borrow, then each candidate's entry rung is
    /// a `partition_point` over the non-decreasing thresholds — the first
    /// rung `j` with `row[c] <= taus[j]`, exactly the per-rung scalar
    /// verdict. One pass answers every rung; per-rung counts are the prefix
    /// sums of the entry histogram.
    fn count_within_taus(&self, v: PointId, candidates: &[u32], taus: &[f64]) -> Vec<usize> {
        debug_assert!(
            taus.windows(2).all(|w| w[0] <= w[1]),
            "count_within_taus requires non-decreasing thresholds"
        );
        MatrixCounters::add(&self.counters.taus_run_pairs, candidates.len() as u64);
        let row = &self.d[v.idx() * self.n..(v.idx() + 1) * self.n];
        let mut counts = vec![0usize; taus.len()];
        let Some(&last) = taus.last() else {
            return counts;
        };
        let scan = |chunk: &[u32]| -> Vec<usize> {
            let mut entry = vec![0usize; taus.len()];
            for &c in chunk {
                let d = row[c as usize];
                if d <= last {
                    entry[taus.partition_point(|&t| t < d)] += 1;
                }
            }
            entry
        };
        let entry = if space::par_bulk_weighted(candidates.len(), taus.len()) {
            use rayon::prelude::*;
            candidates
                .par_chunks(space::par_chunk_size(candidates.len()))
                .map(scan)
                .reduce(
                    || vec![0usize; taus.len()],
                    |mut acc, part| {
                        for (a, b) in acc.iter_mut().zip(&part) {
                            *a += b;
                        }
                        acc
                    },
                )
        } else {
            scan(candidates)
        };
        let mut acc = 0usize;
        for (j, &e) in entry.iter().enumerate() {
            acc += e;
            counts[j] = acc;
        }
        counts
    }

    /// Filter twin of [`MetricSpace::count_within_taus`] over the same row
    /// slice; each rung's list preserves candidate order. Entry collection
    /// fans out over candidate chunks like the counting kernel (parts
    /// concatenate in candidate order, so the output matches the
    /// sequential scan at every thread count); the per-rung lists then
    /// come from one bucketizing pass plus a prefix-merge across rungs —
    /// O(entries + output), not O(rungs × entries).
    fn neighbors_within_taus(&self, v: PointId, candidates: &[u32], taus: &[f64]) -> Vec<Vec<u32>> {
        debug_assert!(
            taus.windows(2).all(|w| w[0] <= w[1]),
            "neighbors_within_taus requires non-decreasing thresholds"
        );
        MatrixCounters::add(&self.counters.taus_run_pairs, candidates.len() as u64);
        let row = &self.d[v.idx() * self.n..(v.idx() + 1) * self.n];
        let Some(&last) = taus.last() else {
            return Vec::new();
        };
        let scan = |chunk: &[u32]| -> Vec<(u32, u32)> {
            chunk
                .iter()
                .filter_map(|&c| {
                    let d = row[c as usize];
                    (d <= last).then(|| (c, taus.partition_point(|&t| t < d) as u32))
                })
                .collect()
        };
        let entries: Vec<(u32, u32)> = if space::par_bulk_weighted(candidates.len(), taus.len()) {
            use rayon::prelude::*;
            let parts: Vec<Vec<(u32, u32)>> = candidates
                .par_chunks(space::par_chunk_size(candidates.len()))
                .map(scan)
                .collect();
            parts.concat()
        } else {
            scan(candidates)
        };
        // Bucketize by entry rung (entries are already in candidate
        // order, so bucket order and merge order both preserve it), then
        // prefix-merge: rung j's list is every entry with rung ≤ j.
        let mut buckets: Vec<Vec<(u32, u32)>> = vec![Vec::new(); taus.len()];
        for (p, &(c, e)) in entries.iter().enumerate() {
            buckets[e as usize].push((p as u32, c));
        }
        let mut out: Vec<Vec<u32>> = Vec::with_capacity(taus.len());
        let mut acc: Vec<(u32, u32)> = Vec::new();
        let mut merged: Vec<(u32, u32)> = Vec::new();
        for bucket in &buckets {
            if !bucket.is_empty() {
                merged.clear();
                merged.reserve(acc.len() + bucket.len());
                let (mut x, mut y) = (0, 0);
                while x < acc.len() && y < bucket.len() {
                    if acc[x].0 < bucket[y].0 {
                        merged.push(acc[x]);
                        x += 1;
                    } else {
                        merged.push(bucket[y]);
                        y += 1;
                    }
                }
                merged.extend_from_slice(&acc[x..]);
                merged.extend_from_slice(&bucket[y..]);
                std::mem::swap(&mut acc, &mut merged);
            }
            out.push(acc.iter().map(|&(_, c)| c).collect());
        }
        out
    }

    /// Bulk distance fill: one row borrow, then a gather — each entry is
    /// the exact matrix lookup [`MetricSpace::dist`] performs.
    fn dists_into(&self, v: PointId, candidates: &[u32], out: &mut Vec<f64>) {
        out.clear();
        let row = &self.d[v.idx() * self.n..(v.idx() + 1) * self.n];
        out.extend(candidates.iter().map(|&c| row[c as usize]));
    }

    /// Row-sliced minimum over the set: same values as the per-pair fold,
    /// without recomputing the row offset per element.
    fn dist_to_set(&self, p: PointId, set: &[PointId]) -> f64 {
        let row = &self.d[p.idx() * self.n..(p.idx() + 1) * self.n];
        set.iter()
            .map(|s| row[s.idx()])
            .fold(f64::INFINITY, f64::min)
    }

    /// Cumulative pair tallies of the batched row-scan kernels.
    fn kernel_stats(&self) -> Option<KernelStats> {
        Some(self.counters.snapshot())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn valid_matrix_accepted() {
        // Path metric on a 3-path with unit edges: 0 -1- 1 -1- 2.
        let m =
            MatrixSpace::new_checked(3, vec![0.0, 1.0, 2.0, 1.0, 0.0, 1.0, 2.0, 1.0, 0.0]).unwrap();
        assert_eq!(m.dist(PointId(0), PointId(2)), 2.0);
    }

    #[test]
    fn rejects_asymmetry() {
        let err = MatrixSpace::new(2, vec![0.0, 1.0, 2.0, 0.0]).unwrap_err();
        assert_eq!(err, MatrixSpaceError::Asymmetric(0, 1));
    }

    #[test]
    fn rejects_nonzero_diagonal() {
        let err = MatrixSpace::new(2, vec![1.0, 1.0, 1.0, 0.0]).unwrap_err();
        assert_eq!(err, MatrixSpaceError::NonZeroDiagonal(0));
    }

    #[test]
    fn rejects_triangle_violation() {
        // d(0,2) = 10 > d(0,1) + d(1,2) = 2.
        let err = MatrixSpace::new_checked(3, vec![0.0, 1.0, 10.0, 1.0, 0.0, 1.0, 10.0, 1.0, 0.0])
            .unwrap_err();
        assert!(matches!(err, MatrixSpaceError::TriangleViolation(..)));
    }

    #[test]
    fn rejects_bad_shape_and_nan() {
        assert!(matches!(
            MatrixSpace::new(2, vec![0.0; 3]).unwrap_err(),
            MatrixSpaceError::BadShape { .. }
        ));
        assert!(matches!(
            MatrixSpace::new(2, vec![0.0, f64::NAN, f64::NAN, 0.0]).unwrap_err(),
            MatrixSpaceError::InvalidEntry(..)
        ));
    }

    #[test]
    fn kernel_stats_tally_batched_scans() {
        let m = MatrixSpace::from_fn(6, |i, j| (i as f64 - j as f64).abs()).unwrap();
        let cands: Vec<u32> = (0..6).collect();
        assert_eq!(m.count_within(PointId(0), &cands, 2.0), 3);
        let _ = m.count_within_many(&[0, 5], &cands, 2.0);
        let _ = m.count_within_taus(PointId(0), &cands, &[1.0, 3.0]);
        let ks = m.kernel_stats().unwrap();
        assert_eq!(ks.run_pairs, 6);
        assert_eq!(ks.indexed_pairs, 12);
        assert_eq!(ks.taus_run_pairs, 6);
        // Clones snapshot the tallies rather than sharing them.
        let c = m.clone();
        let _ = m.count_within(PointId(1), &cands, 2.0);
        assert_eq!(c.kernel_stats().unwrap().run_pairs, 6);
        assert_eq!(m.kernel_stats().unwrap().run_pairs, 12);
    }

    #[test]
    fn from_fn_symmetrizes() {
        let m = MatrixSpace::from_fn(4, |i, j| (i as f64 - j as f64).abs()).unwrap();
        assert_eq!(m.dist(PointId(3), PointId(1)), 2.0);
        assert_eq!(m.dist(PointId(1), PointId(3)), 2.0);
    }
}
