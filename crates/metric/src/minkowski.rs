//! Manhattan (L1) and Chebyshev (L∞) metrics — non-Euclidean spaces that
//! exercise the paper's "any metric space" claim.

use crate::point::{PointId, PointSet};
use crate::space::MetricSpace;

/// The Manhattan metric `d(x, y) = sum_d |x_d - y_d|`.
#[derive(Debug, Clone)]
pub struct ManhattanSpace {
    points: PointSet,
}

impl ManhattanSpace {
    /// Wraps a point set with the L1 metric.
    pub fn new(points: PointSet) -> Self {
        Self { points }
    }

    /// The underlying point set.
    pub fn points(&self) -> &PointSet {
        &self.points
    }
}

impl MetricSpace for ManhattanSpace {
    fn n(&self) -> usize {
        self.points.len()
    }

    #[inline]
    fn dist(&self, i: PointId, j: PointId) -> f64 {
        let a = self.points.coords(i);
        let b = self.points.coords(j);
        let mut acc = 0.0;
        for d in 0..a.len() {
            acc += (a[d] - b[d]).abs();
        }
        acc
    }

    fn point_weight(&self) -> u64 {
        self.points.dim() as u64
    }
}

/// The Chebyshev metric `d(x, y) = max_d |x_d - y_d|`.
#[derive(Debug, Clone)]
pub struct ChebyshevSpace {
    points: PointSet,
}

impl ChebyshevSpace {
    /// Wraps a point set with the L∞ metric.
    pub fn new(points: PointSet) -> Self {
        Self { points }
    }

    /// The underlying point set.
    pub fn points(&self) -> &PointSet {
        &self.points
    }
}

impl MetricSpace for ChebyshevSpace {
    fn n(&self) -> usize {
        self.points.len()
    }

    #[inline]
    fn dist(&self, i: PointId, j: PointId) -> f64 {
        let a = self.points.coords(i);
        let b = self.points.coords(j);
        let mut acc = 0.0f64;
        for d in 0..a.len() {
            acc = acc.max((a[d] - b[d]).abs());
        }
        acc
    }

    fn point_weight(&self) -> u64 {
        self.points.dim() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ps() -> PointSet {
        PointSet::from_rows(&[vec![0.0, 0.0], vec![3.0, 4.0], vec![1.0, -1.0]])
    }

    #[test]
    fn manhattan_sums_coordinates() {
        let m = ManhattanSpace::new(ps());
        assert_eq!(m.dist(PointId(0), PointId(1)), 7.0);
        assert_eq!(m.dist(PointId(0), PointId(2)), 2.0);
        assert_eq!(m.dist(PointId(1), PointId(1)), 0.0);
    }

    #[test]
    fn chebyshev_takes_max_coordinate() {
        let m = ChebyshevSpace::new(ps());
        assert_eq!(m.dist(PointId(0), PointId(1)), 4.0);
        assert_eq!(m.dist(PointId(1), PointId(2)), 5.0);
    }

    #[test]
    fn ordering_l1_ge_l2_ge_linf() {
        // For the same pair, L1 >= L2 >= Linf always holds.
        let l1 = ManhattanSpace::new(ps());
        let linf = ChebyshevSpace::new(ps());
        let l2 = crate::euclidean::EuclideanSpace::new(ps());
        for i in 0..3u32 {
            for j in 0..3u32 {
                let (i, j) = (PointId(i), PointId(j));
                assert!(l1.dist(i, j) >= l2.dist(i, j) - 1e-12);
                assert!(l2.dist(i, j) >= linf.dist(i, j) - 1e-12);
            }
        }
    }
}
