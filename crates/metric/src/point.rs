//! Dense point identifiers and flat coordinate storage.

use serde::{Deserialize, Serialize};

/// Identifier of a point in a metric space.
///
/// Points are dense indices `0..n`. Algorithms ship `PointId`s between
/// simulated machines; the communication ledger charges the *weight* of the
/// underlying point (e.g. its dimension), not the 4 bytes of the id, so the
/// accounting matches a real deployment where coordinates move.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct PointId(pub u32);

impl PointId {
    /// The index as a `usize`, for slice addressing.
    #[inline(always)]
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

impl From<usize> for PointId {
    #[inline(always)]
    fn from(i: usize) -> Self {
        PointId(i as u32)
    }
}

impl From<u32> for PointId {
    #[inline(always)]
    fn from(i: u32) -> Self {
        PointId(i)
    }
}

impl std::fmt::Display for PointId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "p{}", self.0)
    }
}

/// Flat, row-major storage for `n` points of fixed dimension `dim`.
///
/// Coordinates are stored contiguously (`data[i*dim..(i+1)*dim]` is point
/// `i`) so distance kernels stream through memory without pointer chasing.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PointSet {
    data: Vec<f64>,
    dim: usize,
}

impl PointSet {
    /// Builds a point set from flat data; `data.len()` must be a multiple of
    /// `dim` (and `dim > 0`).
    pub fn new(data: Vec<f64>, dim: usize) -> Self {
        assert!(dim > 0, "dimension must be positive");
        assert!(
            data.len().is_multiple_of(dim),
            "data length {} not a multiple of dim {}",
            data.len(),
            dim
        );
        Self { data, dim }
    }

    /// Builds a point set from per-point rows, all of equal length.
    pub fn from_rows(rows: &[Vec<f64>]) -> Self {
        assert!(!rows.is_empty(), "empty point set");
        let dim = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * dim);
        for r in rows {
            assert_eq!(r.len(), dim, "ragged rows");
            data.extend_from_slice(r);
        }
        Self::new(data, dim)
    }

    /// An empty set with the given dimension (useful for incremental builds).
    pub fn with_dim(dim: usize) -> Self {
        assert!(dim > 0);
        Self {
            data: Vec::new(),
            dim,
        }
    }

    /// Appends one point; `coords.len()` must equal `dim`.
    pub fn push(&mut self, coords: &[f64]) -> PointId {
        assert_eq!(coords.len(), self.dim);
        let id = PointId::from(self.len());
        self.data.extend_from_slice(coords);
        id
    }

    /// Number of points.
    #[inline(always)]
    pub fn len(&self) -> usize {
        self.data.len() / self.dim
    }

    /// True when the set holds no points.
    #[inline(always)]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Dimension of every point.
    #[inline(always)]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Coordinates of point `i`.
    #[inline(always)]
    pub fn coords(&self, i: PointId) -> &[f64] {
        let s = i.idx() * self.dim;
        &self.data[s..s + self.dim]
    }

    /// All point ids, `0..n`.
    pub fn ids(&self) -> impl Iterator<Item = PointId> + Clone + use<> {
        (0..self.len() as u32).map(PointId)
    }

    /// The raw flat coordinate buffer.
    pub fn raw(&self) -> &[f64] {
        &self.data
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flat_storage_round_trips() {
        let ps = PointSet::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0], vec![5.0, 6.0]]);
        assert_eq!(ps.len(), 3);
        assert_eq!(ps.dim(), 2);
        assert_eq!(ps.coords(PointId(1)), &[3.0, 4.0]);
        assert_eq!(ps.ids().count(), 3);
    }

    #[test]
    fn push_appends() {
        let mut ps = PointSet::with_dim(3);
        assert!(ps.is_empty());
        let a = ps.push(&[0.0, 0.0, 1.0]);
        let b = ps.push(&[1.0, 0.0, 0.0]);
        assert_eq!(a, PointId(0));
        assert_eq!(b, PointId(1));
        assert_eq!(ps.len(), 2);
        assert_eq!(ps.coords(b), &[1.0, 0.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "not a multiple")]
    fn ragged_flat_data_panics() {
        PointSet::new(vec![1.0, 2.0, 3.0], 2);
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn ragged_rows_panic() {
        PointSet::from_rows(&[vec![1.0], vec![1.0, 2.0]]);
    }

    #[test]
    fn point_id_display_and_conversion() {
        let id = PointId::from(7usize);
        assert_eq!(id.idx(), 7);
        assert_eq!(id.to_string(), "p7");
    }
}
