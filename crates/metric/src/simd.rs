//! Runtime-dispatched SIMD dot products for the Euclidean kernels.
//!
//! This module is the **only** unsafe surface in the crate. Everything in
//! it computes a plain dot product — the building block of both the f64
//! Gram estimate (PR 4) and the f32 SoA estimate (the `soa` speed tier) —
//! under one discipline:
//!
//! * **Runtime detection, cached once.** The widest lane the host supports
//!   is probed with `is_x86_feature_detected!` on first use and cached in a
//!   `OnceLock`. The choice is a function of the host only — never of
//!   thread count, input, or call order — so it cannot perturb determinism.
//! * **Estimates only.** Wide accumulators and FMA round differently than
//!   a serial fold. Every caller feeds the result into a *banded* estimate
//!   whose error band covers accumulation-order slack (FMA's fused rounding
//!   is strictly tighter than mul-then-add), and re-decides band hits with
//!   the exact scalar evaluation. Exact distance-returning paths never call
//!   this module.
//! * **Debug-asserted scalar equivalence.** In debug builds every dispatch
//!   checks the lane result against a widened serial fold, to the γ-style
//!   accumulation bound. A failure means a broken kernel, not rounding.
//!
//! Lanes: AVX-512F (16×f32, behind the `avx512` cargo feature), AVX2+FMA
//! (8×f32 / 4×f64), and a multi-accumulator baseline that rustc
//! auto-vectorizes to SSE2 on the default `x86-64` target (plain scalar on
//! other architectures). f64 uses the AVX2 path even on AVX-512 hosts: the
//! f64 dot only feeds the Gram estimate for wide rows, where it is
//! memory-bound, so the extra lanes buy nothing.

use std::sync::OnceLock;

/// Which SIMD implementation the dispatcher selected for this process.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Lane {
    /// 512-bit f32 FMA lanes (`avx512` cargo feature + runtime AVX-512F).
    Avx512,
    /// 256-bit FMA lanes (runtime AVX2 + FMA).
    Avx2Fma,
    /// Multi-accumulator loops; auto-vectorized SSE2 on x86-64, scalar
    /// elsewhere.
    Baseline,
}

impl Lane {
    /// Human-readable lane name for logs and bench annotations.
    pub fn name(self) -> &'static str {
        match self {
            Lane::Avx512 => "avx512f",
            Lane::Avx2Fma => "avx2+fma",
            Lane::Baseline => "baseline",
        }
    }
}

fn detect() -> Lane {
    #[cfg(target_arch = "x86_64")]
    {
        #[cfg(feature = "avx512")]
        if std::arch::is_x86_feature_detected!("avx512f")
            && std::arch::is_x86_feature_detected!("avx2")
            && std::arch::is_x86_feature_detected!("fma")
        {
            return Lane::Avx512;
        }
        if std::arch::is_x86_feature_detected!("avx2") && std::arch::is_x86_feature_detected!("fma")
        {
            return Lane::Avx2Fma;
        }
    }
    Lane::Baseline
}

/// One-time cpuid probe; a cached [`Lane`] thereafter.
#[inline]
pub fn lane() -> Lane {
    static LANE: OnceLock<Lane> = OnceLock::new();
    *LANE.get_or_init(detect)
}

/// One-time POPCNT probe (cached). Separate from [`lane`]: every AVX2 part
/// shipped also has POPCNT, but the baseline x86-64 target does *not*
/// include it, so `u64::count_ones` compiles to a ~20-op bit-twiddling
/// fallback unless the call site is compiled with the feature enabled —
/// which is exactly what [`sketch_lb2_indexed`] dispatches on.
#[inline]
fn has_popcnt() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        static POPCNT: OnceLock<bool> = OnceLock::new();
        *POPCNT.get_or_init(|| std::arch::is_x86_feature_detected!("popcnt"))
    }
    #[cfg(not(target_arch = "x86_64"))]
    false
}

/// f64 dot product on the widest available lane. Feeds the Gram
/// **estimate** only — see the module docs for why reordering is safe.
#[inline]
pub fn dot_f64(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    let dot = match lane() {
        #[cfg(target_arch = "x86_64")]
        Lane::Avx512 | Lane::Avx2Fma => {
            // SAFETY: `lane()` only returns these after runtime detection
            // of AVX2 + FMA on this host.
            unsafe { x86::dot_f64_avx2_fma(a, b) }
        }
        _ => dot_f64_baseline(a, b),
    };
    #[cfg(debug_assertions)]
    assert_close_f64(dot, a, b);
    dot
}

/// f32 dot product on the widest available lane. Feeds the SoA f32
/// **estimate** only — verdicts inside the f32 error band are re-decided
/// with the exact f64 evaluation by the caller.
#[inline]
pub fn dot_f32(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    let dot = match lane() {
        #[cfg(all(target_arch = "x86_64", feature = "avx512"))]
        Lane::Avx512 => {
            // SAFETY: `lane()` only returns `Avx512` after runtime
            // detection of AVX-512F on this host.
            unsafe { x86::dot_f32_avx512(a, b) }
        }
        #[cfg(target_arch = "x86_64")]
        Lane::Avx2Fma => {
            // SAFETY: `lane()` only returns `Avx2Fma` after runtime
            // detection of AVX2 + FMA on this host.
            unsafe { x86::dot_f32_avx2_fma(a, b) }
        }
        _ => dot_f32_baseline(a, b),
    };
    #[cfg(debug_assertions)]
    assert_close_f32(dot, a, b);
    dot
}

/// Batched indexed f64 dot products: `out[i] = ⟨q, rows[idx[i]]⟩` where
/// `rows` is a row-major slab of `dim`-wide rows. One dispatch and one
/// call-frame per **tile** instead of per pair — `#[target_feature]`
/// functions cannot be inlined into generic callers, so the per-pair
/// variant pays call + horizontal-sum overhead that dominates at d≈32.
/// Same estimate-only contract as [`dot_f64`].
#[inline]
pub fn dots_f64_indexed(q: &[f64], rows: &[f64], dim: usize, idx: &[u32], out: &mut [f64]) {
    debug_assert_eq!(idx.len(), out.len());
    match lane() {
        #[cfg(target_arch = "x86_64")]
        Lane::Avx512 | Lane::Avx2Fma => {
            // SAFETY: `lane()` only returns these after runtime detection
            // of AVX2 + FMA on this host.
            unsafe { x86::dots_f64_indexed_avx2_fma(q, rows, dim, idx, out) }
        }
        _ => {
            for (o, &c) in out.iter_mut().zip(idx) {
                let r = &rows[c as usize * dim..c as usize * dim + dim];
                *o = dot_f64_baseline(q, r);
            }
        }
    }
    #[cfg(debug_assertions)]
    for (o, &c) in out.iter().zip(idx) {
        assert_close_f64(*o, q, &rows[c as usize * dim..c as usize * dim + dim]);
    }
}

/// Batched indexed f32 dot products — the f32 twin of
/// [`dots_f64_indexed`], and the SoA tiers' hot loop. The AVX2 path blocks
/// four candidates per iteration so each query-register load is reused
/// fourfold and the four independent FMA chains hide the FMA latency.
/// Same estimate-only contract as [`dot_f32`].
#[inline]
pub fn dots_f32_indexed(q: &[f32], rows: &[f32], dim: usize, idx: &[u32], out: &mut [f32]) {
    debug_assert_eq!(idx.len(), out.len());
    match lane() {
        #[cfg(target_arch = "x86_64")]
        Lane::Avx512 | Lane::Avx2Fma => {
            // SAFETY: `lane()` only returns these after runtime detection
            // of AVX2 + FMA on this host.
            unsafe { x86::dots_f32_indexed_avx2_fma(q, rows, dim, idx, out) }
        }
        _ => {
            for (o, &c) in out.iter_mut().zip(idx) {
                let r = &rows[c as usize * dim..c as usize * dim + dim];
                *o = dot_f32_baseline(q, r);
            }
        }
    }
    #[cfg(debug_assertions)]
    for (o, &c) in out.iter().zip(idx) {
        assert_close_f32(*o, q, &rows[c as usize * dim..c as usize * dim + dim]);
    }
}

/// [`classify_f32_indexed`] verdict: the estimate certifies the pair is
/// within the threshold.
pub const CLASS_KEEP: u8 = 1;
/// [`classify_f32_indexed`] verdict: the estimate certifies the pair is
/// beyond the threshold.
pub const CLASS_REJECT: u8 = 0;
/// [`classify_f32_indexed`] verdict: inside the error band — the caller
/// must re-decide with the exact f64 evaluation.
pub const CLASS_EXACT: u8 = 2;

/// Batched banded classification — the SoA tiers' whole per-pair decision
/// in one tile call: for each candidate `c = idx[i]`, computes the f32 dot
/// `d`, widens, and classifies the Gram estimate
/// `est = (na + nb) − 2·d` against the band `band_scale · (na + nb + t2)`
/// exactly as the scalar judgment does (same f64 operation sequence, so
/// the verdicts are bit-identical to a scalar re-evaluation with the same
/// dot): `est ≤ t2 − band` → [`CLASS_KEEP`], `est > t2 + band` →
/// [`CLASS_REJECT`], else [`CLASS_EXACT`]. `na` is the query's f32 norm
/// widened to f64; `norms[c]` are the candidates' f32 norms.
#[allow(clippy::too_many_arguments)]
#[inline]
pub fn classify_f32_indexed(
    q: &[f32],
    rows: &[f32],
    norms: &[f32],
    dim: usize,
    idx: &[u32],
    na: f64,
    t2: f64,
    band_scale: f64,
    out: &mut [u8],
) {
    debug_assert_eq!(idx.len(), out.len());
    match lane() {
        #[cfg(target_arch = "x86_64")]
        Lane::Avx512 | Lane::Avx2Fma => {
            // SAFETY: `lane()` only returns these after runtime detection
            // of AVX2 + FMA on this host.
            unsafe {
                x86::classify_f32_indexed_avx2_fma(
                    q, rows, norms, dim, idx, na, t2, band_scale, out,
                )
            }
        }
        _ => {
            for (o, &c) in out.iter_mut().zip(idx) {
                let r = &rows[c as usize * dim..c as usize * dim + dim];
                *o = classify_one(
                    dot_f32_baseline(q, r),
                    norms[c as usize],
                    na,
                    t2,
                    band_scale,
                );
            }
        }
    }
    #[cfg(debug_assertions)]
    {
        // The classes must equal a scalar re-judgment of the *same* dot
        // values (`dots_f32_indexed` reproduces them exactly: same lane,
        // same blocking by position).
        let mut dots = vec![0.0f32; idx.len()];
        dots_f32_indexed(q, rows, dim, idx, &mut dots);
        for ((&o, &d), &c) in out.iter().zip(&dots).zip(idx) {
            let want = classify_one(d, norms[c as usize], na, t2, band_scale);
            assert_eq!(
                o, want,
                "classify_f32_indexed diverged from scalar judgment (candidate {c})"
            );
        }
    }
}

/// [`classify_f32_indexed`] for a **contiguous** candidate run
/// `first..first + out.len()`, fed from the dimension-major mirror
/// (`cols[d * n + i]`). This is the fast path's fast path: the AVX2 kernel
/// broadcasts one query coordinate and FMA-accumulates 32 consecutive
/// candidates per step, so there are **no index gathers and no horizontal
/// sums** — the dots land vertically in the accumulators and the banded
/// classification itself runs eight candidates per iteration in f64
/// vectors. `rows` (the row-major mirror) serves the sub-8 tail.
///
/// The per-candidate dot here is a single FMA chain over ascending `d`
/// (vs. the multi-accumulator folds elsewhere); its error is below
/// `d·ε·Σ|aᵢbᵢ|`, comfortably inside the `(4d + 32)·ε` band that
/// [`crate::soa::f32_band_scale`] budgets (see that module's analysis),
/// so band-hit fallbacks still catch every undecidable pair.
#[allow(clippy::too_many_arguments)]
#[inline]
pub fn classify_f32_run(
    q: &[f32],
    cols: &[f32],
    n: usize,
    rows: &[f32],
    norms: &[f32],
    dim: usize,
    first: usize,
    na: f64,
    t2: f64,
    band_scale: f64,
    out: &mut [u8],
) {
    debug_assert!(first + out.len() <= n);
    match lane() {
        #[cfg(target_arch = "x86_64")]
        Lane::Avx512 | Lane::Avx2Fma => {
            // SAFETY: `lane()` only returns these after runtime detection
            // of AVX2 + FMA on this host.
            unsafe {
                x86::classify_f32_run_avx2_fma(
                    q, cols, n, rows, norms, dim, first, na, t2, band_scale, out,
                )
            }
        }
        _ => {
            for (i, o) in out.iter_mut().enumerate() {
                let c = first + i;
                let r = &rows[c * dim..c * dim + dim];
                *o = classify_one(dot_f32_baseline(q, r), norms[c], na, t2, band_scale);
            }
        }
    }
    #[cfg(debug_assertions)]
    if matches!(lane(), Lane::Avx512 | Lane::Avx2Fma) {
        // Every lane of the run kernel — wide blocks and scalar tail alike
        // — is a single fused-multiply-add chain over ascending d, so a
        // scalar `mul_add` fold reproduces its dots (and hence classes)
        // bit-for-bit. (`f32::mul_add` is correctly rounded whether it
        // lowers to the FMA instruction or libm.)
        for (i, &o) in out.iter().enumerate() {
            let c = first + i;
            let r = &rows[c * dim..c * dim + dim];
            let dot = r
                .iter()
                .zip(q)
                .fold(0.0f32, |acc, (&x, &y)| x.mul_add(y, acc));
            let want = classify_one(dot, norms[c], na, t2, band_scale);
            assert_eq!(
                o, want,
                "classify_f32_run diverged from scalar judgment (candidate {c})"
            );
        }
    }
}

/// Multi-τ entry-index sentinel: the estimate certifies that **no** rung
/// admits the pair (its distance exceeds the largest τ²).
pub const RUNG_NONE: u8 = 0xFF;
/// Multi-τ entry-index sentinel: at least one rung's verdict landed inside
/// the f32 error band — the caller must re-derive the entry index from the
/// exact f64 distance.
pub const RUNG_EXACT: u8 = 0xFE;
/// Longest τ ladder the `u8` entry-index encoding supports: entry values
/// `0..MAX_RUNGS` stay clear of the two sentinels. Callers with longer
/// ladders must fall back to a non-entry-indexed path (verdicts are
/// identical either way; only cycles move).
pub const MAX_RUNGS: usize = 192;

/// Batched multi-τ classification over a **contiguous** candidate run
/// `first..first + out.len()` — the rung-ladder twin of
/// [`classify_f32_run`]. Computes each f32 dot **once** from the
/// dimension-major mirror (`cols[d * n + i]`, no gathers, no horizontal
/// sums), then buckets the banded Gram estimate against every `t2s[j]`
/// (ascending τ², all finite and ≥ 0) at once and writes a per-pair
/// **rung-entry index**: the first `j` with `d² ≤ t2s[j]`, [`RUNG_NONE`]
/// if every rung certifiably rejects, or [`RUNG_EXACT`] if any rung's
/// verdict fell inside its error band `band_scale · (na + nb + t2s[j])`.
/// A certain entry is bit-identical to what the exact-f64 sweep would
/// produce: it is only emitted when *every* rung is certified, and each
/// certification is sound, so the reject set is exactly the exact sweep's
/// reject prefix.
#[allow(clippy::too_many_arguments)]
#[inline]
pub fn classify_f32_run_taus(
    q: &[f32],
    cols: &[f32],
    n: usize,
    rows: &[f32],
    norms: &[f32],
    dim: usize,
    first: usize,
    na: f64,
    t2s: &[f64],
    band_scale: f64,
    out: &mut [u8],
) {
    debug_assert!(first + out.len() <= n);
    debug_assert!(!t2s.is_empty() && t2s.len() <= MAX_RUNGS);
    match lane() {
        #[cfg(all(target_arch = "x86_64", feature = "avx512"))]
        Lane::Avx512 => {
            // SAFETY: `lane()` only returns `Avx512` after runtime
            // detection of AVX-512F + AVX2 + FMA on this host.
            unsafe {
                x86::classify_f32_run_taus_avx512(
                    q, cols, n, rows, norms, dim, first, na, t2s, band_scale, out,
                )
            }
        }
        // Without the `avx512` feature `lane()` never returns `Avx512`,
        // so folding it in here (as the feature-independent kernels do)
        // keeps the arm reachable in both feature configurations.
        #[cfg(all(target_arch = "x86_64", feature = "avx512"))]
        Lane::Avx2Fma => {
            // SAFETY: `lane()` only returns this after runtime detection
            // of AVX2 + FMA on this host.
            unsafe {
                x86::classify_f32_run_taus_avx2_fma(
                    q, cols, n, rows, norms, dim, first, na, t2s, band_scale, out,
                )
            }
        }
        #[cfg(all(target_arch = "x86_64", not(feature = "avx512")))]
        Lane::Avx512 | Lane::Avx2Fma => {
            // SAFETY: `lane()` only returns these after runtime detection
            // of AVX2 + FMA on this host.
            unsafe {
                x86::classify_f32_run_taus_avx2_fma(
                    q, cols, n, rows, norms, dim, first, na, t2s, band_scale, out,
                )
            }
        }
        _ => {
            for (i, o) in out.iter_mut().enumerate() {
                let c = first + i;
                let r = &rows[c * dim..c * dim + dim];
                *o = classify_taus_one(dot_f32_baseline(q, r), norms[c], na, t2s, band_scale, 0);
            }
        }
    }
    #[cfg(debug_assertions)]
    if matches!(lane(), Lane::Avx512 | Lane::Avx2Fma) {
        // As in `classify_f32_run`: every lane of the run kernel is a
        // single FMA chain over ascending d, so a scalar `mul_add` fold
        // reproduces its dots — and hence its entry indices — bit-for-bit.
        for (i, &o) in out.iter().enumerate() {
            let c = first + i;
            let r = &rows[c * dim..c * dim + dim];
            let dot = r
                .iter()
                .zip(q)
                .fold(0.0f32, |acc, (&x, &y)| x.mul_add(y, acc));
            let want = classify_taus_one(dot, norms[c], na, t2s, band_scale, 0);
            assert_eq!(
                o, want,
                "classify_f32_run_taus diverged from scalar judgment (candidate {c})"
            );
        }
    }
}

/// Batched multi-τ classification for an **indexed** candidate list — the
/// rung-ladder twin of [`classify_f32_indexed`], blocking four candidates
/// per iteration exactly like [`dots_f32_indexed`]. `min_entries[i]`, when
/// present, is a certified per-pair lower bound on the entry index (from a
/// sketch rejection at rung `min_entries[i] − 1`): rungs below it count as
/// certified rejects without consulting the estimate. Writes the same
/// entry / [`RUNG_NONE`] / [`RUNG_EXACT`] encoding as
/// [`classify_f32_run_taus`].
#[allow(clippy::too_many_arguments)]
#[inline]
pub fn classify_f32_indexed_taus(
    q: &[f32],
    rows: &[f32],
    norms: &[f32],
    dim: usize,
    idx: &[u32],
    na: f64,
    t2s: &[f64],
    band_scale: f64,
    min_entries: Option<&[u8]>,
    out: &mut [u8],
) {
    debug_assert_eq!(idx.len(), out.len());
    debug_assert!(!t2s.is_empty() && t2s.len() <= MAX_RUNGS);
    debug_assert!(min_entries.is_none_or(|m| m.len() == idx.len()));
    match lane() {
        #[cfg(target_arch = "x86_64")]
        Lane::Avx512 | Lane::Avx2Fma => {
            // SAFETY: `lane()` only returns these after runtime detection
            // of AVX2 + FMA on this host.
            unsafe {
                x86::classify_f32_indexed_taus_avx2_fma(
                    q,
                    rows,
                    norms,
                    dim,
                    idx,
                    na,
                    t2s,
                    band_scale,
                    min_entries,
                    out,
                )
            }
        }
        _ => {
            for (i, (o, &c)) in out.iter_mut().zip(idx).enumerate() {
                let r = &rows[c as usize * dim..c as usize * dim + dim];
                let me = min_entries.map_or(0, |m| m[i]);
                *o = classify_taus_one(
                    dot_f32_baseline(q, r),
                    norms[c as usize],
                    na,
                    t2s,
                    band_scale,
                    me,
                );
            }
        }
    }
    #[cfg(debug_assertions)]
    {
        // The entries must equal a scalar re-judgment of the *same* dot
        // values (`dots_f32_indexed` reproduces them exactly: same lane,
        // same blocking by position).
        let mut dots = vec![0.0f32; idx.len()];
        dots_f32_indexed(q, rows, dim, idx, &mut dots);
        for (i, ((&o, &d), &c)) in out.iter().zip(&dots).zip(idx).enumerate() {
            let me = min_entries.map_or(0, |m| m[i]);
            let want = classify_taus_one(d, norms[c as usize], na, t2s, band_scale, me);
            assert_eq!(
                o, want,
                "classify_f32_indexed_taus diverged from scalar judgment (candidate {c})"
            );
        }
    }
}

/// The scalar multi-τ judgment shared by the `*_taus` kernels' baseline
/// paths and debug assertions; must mirror the vector paths' f64 operation
/// sequence exactly. Counts certified rejects `cr` and certified keeps
/// `ck` across the ladder: a rung `j` certifies reject when `j <
/// min_entry` (sketch) or `est > t2 + band`, certifies keep when not
/// sketch-rejected and `est ≤ t2 − band`. Because each certification is
/// sound and the exact reject set over ascending `t2s` is a prefix, `cr +
/// ck == len` forces the certified labels to equal the exact labels, so
/// the entry index is `cr`; `cr == len` means no rung admits; anything
/// else (including NaN estimates, which certify nothing) defers to the
/// exact path.
#[inline(always)]
fn classify_taus_one(
    dot: f32,
    nb32: f32,
    na: f64,
    t2s: &[f64],
    band_scale: f64,
    min_entry: u8,
) -> u8 {
    let nsum = na + nb32 as f64;
    let est = nsum - 2.0 * dot as f64;
    let mut cr = 0usize;
    let mut ck = 0usize;
    for (j, &t2) in t2s.iter().enumerate() {
        let band = band_scale * (nsum + t2);
        let low = j < min_entry as usize;
        cr += (low || est > t2 + band) as usize;
        ck += (!low && est <= t2 - band) as usize;
    }
    if cr == t2s.len() {
        RUNG_NONE
    } else if cr + ck == t2s.len() {
        cr as u8
    } else {
        RUNG_EXACT
    }
}

/// The scalar banded judgment shared by [`classify_f32_indexed`]'s
/// baseline path and debug assertions. Must mirror the vector path's f64
/// operation sequence exactly.
#[inline(always)]
fn classify_one(dot: f32, nb32: f32, na: f64, t2: f64, band_scale: f64) -> u8 {
    let nsum = na + nb32 as f64;
    let est = nsum - 2.0 * dot as f64;
    let band = band_scale * (nsum + t2);
    if est <= t2 - band {
        CLASS_KEEP
    } else if est > t2 + band {
        CLASS_REJECT
    } else {
        CLASS_EXACT
    }
}

/// Batched sketch lower bounds: `out[i] = Σ_j (max(H_j − pad_j, 0))² ·
/// w_lo_sq_j` over the `m` per-direction limbs, where `H_j` is the Hamming
/// distance between query limb `q[j]` and candidate limb `j` of point
/// `idx[i]`. This is [`crate::sketch::Sketch::lower_bound_sq`] batched per
/// tile and dispatched onto a POPCNT-enabled body when the host has it —
/// the scalar `count_ones` fallback alone costs more than the dot product
/// the sketch is trying to save.
#[inline]
pub fn sketch_lb2_indexed(
    q: &[u64],
    limbs: &[u64],
    m: usize,
    idx: &[u32],
    pad: &[u32],
    w_lo_sq: &[f64],
    out: &mut [f64],
) {
    debug_assert_eq!(idx.len(), out.len());
    debug_assert_eq!(q.len(), m);
    if has_popcnt() {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: POPCNT was runtime-detected on this host.
        unsafe {
            x86::sketch_lb2_indexed_popcnt(q, limbs, m, idx, pad, w_lo_sq, out)
        }
        #[cfg(not(target_arch = "x86_64"))]
        sketch_lb2_indexed_body(q, limbs, m, idx, pad, w_lo_sq, out)
    } else {
        sketch_lb2_indexed_body(q, limbs, m, idx, pad, w_lo_sq, out)
    }
}

/// The one shared body behind [`sketch_lb2_indexed`]: compiled once at the
/// crate's baseline features and once inlined into the POPCNT-enabled
/// wrapper (`#[inline(always)]` lets the wrapper's `#[target_feature]`
/// apply to this loop, turning `count_ones` into a single instruction).
#[inline(always)]
fn sketch_lb2_indexed_body(
    q: &[u64],
    limbs: &[u64],
    m: usize,
    idx: &[u32],
    pad: &[u32],
    w_lo_sq: &[f64],
    out: &mut [f64],
) {
    for (o, &c) in out.iter_mut().zip(idx) {
        let row = &limbs[c as usize * m..c as usize * m + m];
        let mut lb2 = 0.0;
        for j in 0..m {
            let h = (q[j] ^ row[j]).count_ones();
            let g = h.saturating_sub(pad[j]);
            lb2 += (g * g) as f64 * w_lo_sq[j];
        }
        *o = lb2;
    }
}

/// Dot product with four independent f64 accumulators. A single-accumulator
/// loop is a serial FP add chain the compiler must not reorder (adds aren't
/// associative), capping it at one add per cycle; splitting the chain four
/// ways lets it vectorize on the SSE2 baseline. The order is a fixed
/// function of the slice, so determinism is untouched.
#[inline]
fn dot_f64_baseline(a: &[f64], b: &[f64]) -> f64 {
    let split = a.len() & !3;
    let mut acc = [0.0f64; 4];
    for (ca, cb) in a[..split].chunks_exact(4).zip(b[..split].chunks_exact(4)) {
        acc[0] += ca[0] * cb[0];
        acc[1] += ca[1] * cb[1];
        acc[2] += ca[2] * cb[2];
        acc[3] += ca[3] * cb[3];
    }
    let mut dot = (acc[0] + acc[1]) + (acc[2] + acc[3]);
    for (x, y) in a[split..].iter().zip(&b[split..]) {
        dot += x * y;
    }
    dot
}

/// Eight-accumulator f32 twin of [`dot_f64_baseline`] (two SSE2 registers'
/// worth of f32 lanes).
#[inline]
fn dot_f32_baseline(a: &[f32], b: &[f32]) -> f32 {
    let split = a.len() & !7;
    let mut acc = [0.0f32; 8];
    for (ca, cb) in a[..split].chunks_exact(8).zip(b[..split].chunks_exact(8)) {
        for l in 0..8 {
            acc[l] += ca[l] * cb[l];
        }
    }
    let mut dot = ((acc[0] + acc[1]) + (acc[2] + acc[3])) + ((acc[4] + acc[5]) + (acc[6] + acc[7]));
    for (x, y) in a[split..].iter().zip(&b[split..]) {
        dot += x * y;
    }
    dot
}

/// Debug-only scalar-equivalence check: the lane result must match a serial
/// f64 fold to within the γ-style accumulation bound `(n + 8)·2ε·Σ|aᵢbᵢ|`.
/// Anything worse is a broken kernel, not rounding.
#[cfg(debug_assertions)]
fn assert_close_f64(dot: f64, a: &[f64], b: &[f64]) {
    let mut serial = 0.0f64;
    let mut mag = 0.0f64;
    for (x, y) in a.iter().zip(b) {
        let p = x * y;
        serial += p;
        mag += p.abs();
    }
    if !serial.is_finite() || !mag.is_finite() {
        return; // non-finite inputs: callers re-decide exactly anyway
    }
    let tol = (a.len() as f64 + 8.0) * 2.0 * f64::EPSILON * mag + f64::MIN_POSITIVE;
    assert!(
        (dot - serial).abs() <= tol,
        "SIMD f64 dot diverged from scalar: {dot} vs {serial} (tol {tol})"
    );
}

/// f32 twin of [`assert_close_f64`]; the serial reference accumulates in
/// f64 so the bound only has to cover the lane's own f32 rounding.
#[cfg(debug_assertions)]
fn assert_close_f32(dot: f32, a: &[f32], b: &[f32]) {
    let mut serial = 0.0f64;
    let mut mag = 0.0f64;
    for (x, y) in a.iter().zip(b) {
        let p = (*x as f64) * (*y as f64);
        serial += p;
        mag += p.abs();
    }
    if !serial.is_finite() || !mag.is_finite() || !dot.is_finite() {
        return;
    }
    let tol = (a.len() as f64 + 8.0) * 2.0 * f32::EPSILON as f64 * mag + f32::MIN_POSITIVE as f64;
    assert!(
        (dot as f64 - serial).abs() <= tol,
        "SIMD f32 dot diverged from scalar: {dot} vs {serial} (tol {tol})"
    );
}

#[cfg(target_arch = "x86_64")]
mod x86 {
    /// # Safety
    /// Caller must ensure the host supports AVX2 and FMA (see
    /// [`super::lane`]).
    #[target_feature(enable = "avx2", enable = "fma")]
    pub unsafe fn dot_f64_avx2_fma(a: &[f64], b: &[f64]) -> f64 {
        use std::arch::x86_64::*;
        let n = a.len();
        debug_assert_eq!(n, b.len());
        let mut acc0 = _mm256_setzero_pd();
        let mut acc1 = _mm256_setzero_pd();
        let mut i = 0;
        while i + 8 <= n {
            let a0 = _mm256_loadu_pd(a.as_ptr().add(i));
            let b0 = _mm256_loadu_pd(b.as_ptr().add(i));
            acc0 = _mm256_fmadd_pd(a0, b0, acc0);
            let a1 = _mm256_loadu_pd(a.as_ptr().add(i + 4));
            let b1 = _mm256_loadu_pd(b.as_ptr().add(i + 4));
            acc1 = _mm256_fmadd_pd(a1, b1, acc1);
            i += 8;
        }
        if i + 4 <= n {
            let a0 = _mm256_loadu_pd(a.as_ptr().add(i));
            let b0 = _mm256_loadu_pd(b.as_ptr().add(i));
            acc0 = _mm256_fmadd_pd(a0, b0, acc0);
            i += 4;
        }
        let acc = _mm256_add_pd(acc0, acc1);
        let lo = _mm256_castpd256_pd128(acc);
        let hi = _mm256_extractf128_pd(acc, 1);
        let pair = _mm_add_pd(lo, hi);
        let one = _mm_add_sd(pair, _mm_unpackhi_pd(pair, pair));
        let mut dot = _mm_cvtsd_f64(one);
        while i < n {
            dot += a.get_unchecked(i) * b.get_unchecked(i);
            i += 1;
        }
        dot
    }

    /// # Safety
    /// Caller must ensure the host supports AVX2 and FMA (see
    /// [`super::lane`]).
    #[target_feature(enable = "avx2", enable = "fma")]
    pub unsafe fn dot_f32_avx2_fma(a: &[f32], b: &[f32]) -> f32 {
        use std::arch::x86_64::*;
        let n = a.len();
        debug_assert_eq!(n, b.len());
        let mut acc0 = _mm256_setzero_ps();
        let mut acc1 = _mm256_setzero_ps();
        let mut i = 0;
        while i + 16 <= n {
            let a0 = _mm256_loadu_ps(a.as_ptr().add(i));
            let b0 = _mm256_loadu_ps(b.as_ptr().add(i));
            acc0 = _mm256_fmadd_ps(a0, b0, acc0);
            let a1 = _mm256_loadu_ps(a.as_ptr().add(i + 8));
            let b1 = _mm256_loadu_ps(b.as_ptr().add(i + 8));
            acc1 = _mm256_fmadd_ps(a1, b1, acc1);
            i += 16;
        }
        if i + 8 <= n {
            let a0 = _mm256_loadu_ps(a.as_ptr().add(i));
            let b0 = _mm256_loadu_ps(b.as_ptr().add(i));
            acc0 = _mm256_fmadd_ps(a0, b0, acc0);
            i += 8;
        }
        let acc = _mm256_add_ps(acc0, acc1);
        // Horizontal sum: 256 → 128 → 64 → 32 bits.
        let lo = _mm256_castps256_ps128(acc);
        let hi = _mm256_extractf128_ps(acc, 1);
        let quad = _mm_add_ps(lo, hi);
        let pair = _mm_add_ps(quad, _mm_movehl_ps(quad, quad));
        let one = _mm_add_ss(pair, _mm_shuffle_ps(pair, pair, 0b01));
        let mut dot = _mm_cvtss_f32(one);
        while i < n {
            dot += a.get_unchecked(i) * b.get_unchecked(i);
            i += 1;
        }
        dot
    }

    /// # Safety
    /// Caller must ensure the host supports AVX2 and FMA (see
    /// [`super::lane`]).
    #[target_feature(enable = "avx2", enable = "fma")]
    pub unsafe fn dots_f64_indexed_avx2_fma(
        q: &[f64],
        rows: &[f64],
        dim: usize,
        idx: &[u32],
        out: &mut [f64],
    ) {
        // `dot_f64_avx2_fma` inlines here (same target features), so the
        // whole tile runs in one call frame.
        for (o, &c) in out.iter_mut().zip(idx) {
            let r = &rows[c as usize * dim..c as usize * dim + dim];
            *o = dot_f64_avx2_fma(q, r);
        }
    }

    /// # Safety
    /// Caller must ensure the host supports AVX2 and FMA (see
    /// [`super::lane`]).
    #[target_feature(enable = "avx2", enable = "fma")]
    pub unsafe fn dots_f32_indexed_avx2_fma(
        q: &[f32],
        rows: &[f32],
        dim: usize,
        idx: &[u32],
        out: &mut [f32],
    ) {
        use std::arch::x86_64::*;
        // Four candidates per iteration: each 8-lane query load is reused
        // by four independent FMA chains, so the loop is FMA-throughput-
        // bound instead of latency- or load-bound. Remainders (tail of the
        // tile, or dim not a multiple of 8) fall back to the one-pair
        // kernel, which also inlines here.
        let mut i = 0;
        if dim >= 8 && dim.is_multiple_of(8) {
            while i + 4 <= idx.len() {
                let r0 = rows.as_ptr().add(idx[i] as usize * dim);
                let r1 = rows.as_ptr().add(idx[i + 1] as usize * dim);
                let r2 = rows.as_ptr().add(idx[i + 2] as usize * dim);
                let r3 = rows.as_ptr().add(idx[i + 3] as usize * dim);
                let mut a0 = _mm256_setzero_ps();
                let mut a1 = _mm256_setzero_ps();
                let mut a2 = _mm256_setzero_ps();
                let mut a3 = _mm256_setzero_ps();
                let mut d = 0;
                while d < dim {
                    let qv = _mm256_loadu_ps(q.as_ptr().add(d));
                    a0 = _mm256_fmadd_ps(_mm256_loadu_ps(r0.add(d)), qv, a0);
                    a1 = _mm256_fmadd_ps(_mm256_loadu_ps(r1.add(d)), qv, a1);
                    a2 = _mm256_fmadd_ps(_mm256_loadu_ps(r2.add(d)), qv, a2);
                    a3 = _mm256_fmadd_ps(_mm256_loadu_ps(r3.add(d)), qv, a3);
                    d += 8;
                }
                out[i] = hsum_ps(a0);
                out[i + 1] = hsum_ps(a1);
                out[i + 2] = hsum_ps(a2);
                out[i + 3] = hsum_ps(a3);
                i += 4;
            }
        }
        while i < idx.len() {
            let c = idx[i] as usize;
            out[i] = dot_f32_avx2_fma(q, &rows[c * dim..c * dim + dim]);
            i += 1;
        }
    }

    /// # Safety
    /// Caller must ensure the host supports AVX2 and FMA (see
    /// [`super::lane`]).
    #[allow(clippy::too_many_arguments)]
    #[target_feature(enable = "avx2", enable = "fma")]
    pub unsafe fn classify_f32_indexed_avx2_fma(
        q: &[f32],
        rows: &[f32],
        norms: &[f32],
        dim: usize,
        idx: &[u32],
        na: f64,
        t2: f64,
        band_scale: f64,
        out: &mut [u8],
    ) {
        use std::arch::x86_64::*;
        let na_v = _mm256_set1_pd(na);
        let t2_v = _mm256_set1_pd(t2);
        let two = _mm256_set1_pd(2.0);
        let scale_v = _mm256_set1_pd(band_scale);
        let mut i = 0;
        if dim >= 8 && dim.is_multiple_of(8) {
            while i + 4 <= idx.len() {
                let c0 = idx[i] as usize;
                let c1 = idx[i + 1] as usize;
                let c2 = idx[i + 2] as usize;
                let c3 = idx[i + 3] as usize;
                let r0 = rows.as_ptr().add(c0 * dim);
                let r1 = rows.as_ptr().add(c1 * dim);
                let r2 = rows.as_ptr().add(c2 * dim);
                let r3 = rows.as_ptr().add(c3 * dim);
                let mut a0 = _mm256_setzero_ps();
                let mut a1 = _mm256_setzero_ps();
                let mut a2 = _mm256_setzero_ps();
                let mut a3 = _mm256_setzero_ps();
                let mut d = 0;
                while d < dim {
                    let qv = _mm256_loadu_ps(q.as_ptr().add(d));
                    a0 = _mm256_fmadd_ps(_mm256_loadu_ps(r0.add(d)), qv, a0);
                    a1 = _mm256_fmadd_ps(_mm256_loadu_ps(r1.add(d)), qv, a1);
                    a2 = _mm256_fmadd_ps(_mm256_loadu_ps(r2.add(d)), qv, a2);
                    a3 = _mm256_fmadd_ps(_mm256_loadu_ps(r3.add(d)), qv, a3);
                    d += 8;
                }
                // Widen the four dots and candidate norms to f64 and run
                // the *same* operation sequence as `super::classify_one`,
                // four lanes at once: nsum = na + nb; est = nsum − 2·dot;
                // band = scale · (nsum + t2). The ordered non-signaling
                // compares match scalar `<=` / `>` on NaNs (false → the
                // pair classifies EXACT and is re-decided exactly).
                let dots = _mm_set_ps(hsum_ps(a3), hsum_ps(a2), hsum_ps(a1), hsum_ps(a0));
                let nb = _mm_set_ps(norms[c3], norms[c2], norms[c1], norms[c0]);
                let dots_pd = _mm256_cvtps_pd(dots);
                let nsum = _mm256_add_pd(na_v, _mm256_cvtps_pd(nb));
                let est = _mm256_sub_pd(nsum, _mm256_mul_pd(two, dots_pd));
                let band = _mm256_mul_pd(scale_v, _mm256_add_pd(nsum, t2_v));
                let keep = _mm256_cmp_pd::<_CMP_LE_OQ>(est, _mm256_sub_pd(t2_v, band));
                let rej = _mm256_cmp_pd::<_CMP_GT_OQ>(est, _mm256_add_pd(t2_v, band));
                let km = _mm256_movemask_pd(keep) as u32;
                let rm = _mm256_movemask_pd(rej) as u32;
                for l in 0..4 {
                    let k = (km >> l) & 1;
                    let r = (rm >> l) & 1;
                    // keep → 1, reject → 0, unclassified → 2 (see the
                    // CLASS_* constants).
                    out[i + l] = (k + 2 * (1 - k) * (1 - r)) as u8;
                }
                i += 4;
            }
        }
        while i < idx.len() {
            let c = idx[i] as usize;
            let dot = dot_f32_avx2_fma(q, &rows[c * dim..c * dim + dim]);
            out[i] = super::classify_one(dot, norms[c], na, t2, band_scale);
            i += 1;
        }
    }

    /// Contiguous-run twin of [`classify_f32_indexed_avx2_fma`], fed from
    /// the dimension-major mirror. Outer blocks of 32 candidates: per
    /// query coordinate, one broadcast is reused by four 8-lane FMA
    /// chains over consecutive candidates; the dots stay vertical, so the
    /// banded classification is pure f64 vector code with no shuffles.
    ///
    /// # Safety
    /// Caller must ensure the host supports AVX2 and FMA (see
    /// [`super::lane`]), and that `first + out.len() <= n` with `cols` a
    /// `dim × n` dimension-major slab.
    #[allow(clippy::too_many_arguments)]
    #[target_feature(enable = "avx2", enable = "fma")]
    pub unsafe fn classify_f32_run_avx2_fma(
        q: &[f32],
        cols: &[f32],
        n: usize,
        rows: &[f32],
        norms: &[f32],
        dim: usize,
        first: usize,
        na: f64,
        t2: f64,
        band_scale: f64,
        out: &mut [u8],
    ) {
        use std::arch::x86_64::*;
        let len = out.len();
        let na_v = _mm256_set1_pd(na);
        let t2_v = _mm256_set1_pd(t2);
        let two = _mm256_set1_pd(2.0);
        let scale_v = _mm256_set1_pd(band_scale);
        let mut i = 0;
        while i + 32 <= len {
            let base = first + i;
            let mut a0 = _mm256_setzero_ps();
            let mut a1 = _mm256_setzero_ps();
            let mut a2 = _mm256_setzero_ps();
            let mut a3 = _mm256_setzero_ps();
            for d in 0..dim {
                let qd = _mm256_broadcast_ss(q.get_unchecked(d));
                let col = cols.as_ptr().add(d * n + base);
                a0 = _mm256_fmadd_ps(_mm256_loadu_ps(col), qd, a0);
                a1 = _mm256_fmadd_ps(_mm256_loadu_ps(col.add(8)), qd, a1);
                a2 = _mm256_fmadd_ps(_mm256_loadu_ps(col.add(16)), qd, a2);
                a3 = _mm256_fmadd_ps(_mm256_loadu_ps(col.add(24)), qd, a3);
            }
            let outp = out.as_mut_ptr().add(i);
            let np = norms.as_ptr().add(base);
            classify8(a0, np, outp, na_v, t2_v, two, scale_v);
            classify8(a1, np.add(8), outp.add(8), na_v, t2_v, two, scale_v);
            classify8(a2, np.add(16), outp.add(16), na_v, t2_v, two, scale_v);
            classify8(a3, np.add(24), outp.add(24), na_v, t2_v, two, scale_v);
            i += 32;
        }
        while i + 8 <= len {
            let base = first + i;
            let mut a0 = _mm256_setzero_ps();
            for d in 0..dim {
                let qd = _mm256_broadcast_ss(q.get_unchecked(d));
                a0 = _mm256_fmadd_ps(_mm256_loadu_ps(cols.as_ptr().add(d * n + base)), qd, a0);
            }
            classify8(
                a0,
                norms.as_ptr().add(base),
                out.as_mut_ptr().add(i),
                na_v,
                t2_v,
                two,
                scale_v,
            );
            i += 8;
        }
        while i < len {
            // Scalar tail over the row-major mirror — the same single FMA
            // chain per candidate as the lanes above, so the debug
            // reference in the dispatcher covers every path.
            let c = first + i;
            let r = &rows[c * dim..c * dim + dim];
            let mut dot = 0.0f32;
            for d in 0..dim {
                dot = r[d].mul_add(q[d], dot);
            }
            out[i] = super::classify_one(dot, norms[c], na, t2, band_scale);
            i += 1;
        }
    }

    /// Banded classification of eight vertically-accumulated f32 dots:
    /// widens each 4-lane half to f64, runs `super::classify_one`'s exact
    /// operation sequence in vectors, and writes the eight `CLASS_*`
    /// bytes.
    ///
    /// # Safety
    /// Caller must ensure the host supports AVX2 and FMA, `nb` points at
    /// eight readable f32 norms, and `out` at eight writable bytes.
    #[target_feature(enable = "avx2", enable = "fma")]
    unsafe fn classify8(
        dots: std::arch::x86_64::__m256,
        nb: *const f32,
        out: *mut u8,
        na_v: std::arch::x86_64::__m256d,
        t2_v: std::arch::x86_64::__m256d,
        two: std::arch::x86_64::__m256d,
        scale_v: std::arch::x86_64::__m256d,
    ) {
        use std::arch::x86_64::*;
        let nbv = _mm256_loadu_ps(nb);
        let mut km = 0u32;
        let mut rm = 0u32;
        for h in 0..2u32 {
            let (dp, nbp) = if h == 0 {
                (
                    _mm256_cvtps_pd(_mm256_castps256_ps128(dots)),
                    _mm256_cvtps_pd(_mm256_castps256_ps128(nbv)),
                )
            } else {
                (
                    _mm256_cvtps_pd(_mm256_extractf128_ps(dots, 1)),
                    _mm256_cvtps_pd(_mm256_extractf128_ps(nbv, 1)),
                )
            };
            let nsum = _mm256_add_pd(na_v, nbp);
            let est = _mm256_sub_pd(nsum, _mm256_mul_pd(two, dp));
            let band = _mm256_mul_pd(scale_v, _mm256_add_pd(nsum, t2_v));
            let keep = _mm256_cmp_pd::<_CMP_LE_OQ>(est, _mm256_sub_pd(t2_v, band));
            let rej = _mm256_cmp_pd::<_CMP_GT_OQ>(est, _mm256_add_pd(t2_v, band));
            km |= (_mm256_movemask_pd(keep) as u32) << (4 * h);
            rm |= (_mm256_movemask_pd(rej) as u32) << (4 * h);
        }
        for l in 0..8 {
            let k = (km >> l) & 1;
            let r = (rm >> l) & 1;
            *out.add(l) = (k + 2 * (1 - k) * (1 - r)) as u8;
        }
    }

    /// Contiguous-run multi-τ twin of [`classify_f32_run_avx2_fma`]: one
    /// dot per candidate from the dimension-major mirror (broadcast-FMA,
    /// no gathers, no horizontal sums), then one vectorized pass over the
    /// rung ladder per 8-candidate group.
    ///
    /// # Safety
    /// Caller must ensure the host supports AVX2 and FMA (see
    /// [`super::lane`]), and that `first + out.len() <= n` with `cols` a
    /// `dim × n` dimension-major slab.
    #[allow(clippy::too_many_arguments)]
    #[target_feature(enable = "avx2", enable = "fma")]
    pub unsafe fn classify_f32_run_taus_avx2_fma(
        q: &[f32],
        cols: &[f32],
        n: usize,
        rows: &[f32],
        norms: &[f32],
        dim: usize,
        first: usize,
        na: f64,
        t2s: &[f64],
        band_scale: f64,
        out: &mut [u8],
    ) {
        use std::arch::x86_64::*;
        let len = out.len();
        let na_v = _mm256_set1_pd(na);
        let scale_v = _mm256_set1_pd(band_scale);
        let mut i = 0;
        while i + 32 <= len {
            let base = first + i;
            let mut a0 = _mm256_setzero_ps();
            let mut a1 = _mm256_setzero_ps();
            let mut a2 = _mm256_setzero_ps();
            let mut a3 = _mm256_setzero_ps();
            for d in 0..dim {
                let qd = _mm256_broadcast_ss(q.get_unchecked(d));
                let col = cols.as_ptr().add(d * n + base);
                a0 = _mm256_fmadd_ps(_mm256_loadu_ps(col), qd, a0);
                a1 = _mm256_fmadd_ps(_mm256_loadu_ps(col.add(8)), qd, a1);
                a2 = _mm256_fmadd_ps(_mm256_loadu_ps(col.add(16)), qd, a2);
                a3 = _mm256_fmadd_ps(_mm256_loadu_ps(col.add(24)), qd, a3);
            }
            let outp = out.as_mut_ptr().add(i);
            let np = norms.as_ptr().add(base);
            classify8_taus(a0, np, outp, na_v, t2s, scale_v);
            classify8_taus(a1, np.add(8), outp.add(8), na_v, t2s, scale_v);
            classify8_taus(a2, np.add(16), outp.add(16), na_v, t2s, scale_v);
            classify8_taus(a3, np.add(24), outp.add(24), na_v, t2s, scale_v);
            i += 32;
        }
        while i + 8 <= len {
            let base = first + i;
            let mut a0 = _mm256_setzero_ps();
            for d in 0..dim {
                let qd = _mm256_broadcast_ss(q.get_unchecked(d));
                a0 = _mm256_fmadd_ps(_mm256_loadu_ps(cols.as_ptr().add(d * n + base)), qd, a0);
            }
            classify8_taus(
                a0,
                norms.as_ptr().add(base),
                out.as_mut_ptr().add(i),
                na_v,
                t2s,
                scale_v,
            );
            i += 8;
        }
        while i < len {
            // Scalar tail over the row-major mirror — the same single FMA
            // chain per candidate as the lanes above, so the debug
            // reference in the dispatcher covers every path.
            let c = first + i;
            let r = &rows[c * dim..c * dim + dim];
            let mut dot = 0.0f32;
            for d in 0..dim {
                dot = r[d].mul_add(q[d], dot);
            }
            out[i] = super::classify_taus_one(dot, norms[c], na, t2s, band_scale, 0);
            i += 1;
        }
    }

    /// Indexed multi-τ twin of [`classify_f32_indexed_avx2_fma`]: dots are
    /// gathered four candidates per iteration (identical blocking to
    /// [`dots_f32_indexed_avx2_fma`], so debug re-judgments reproduce them
    /// exactly), then each 4-lane group runs one vectorized ladder pass.
    ///
    /// # Safety
    /// Caller must ensure the host supports AVX2 and FMA (see
    /// [`super::lane`]).
    #[allow(clippy::too_many_arguments)]
    #[target_feature(enable = "avx2", enable = "fma")]
    pub unsafe fn classify_f32_indexed_taus_avx2_fma(
        q: &[f32],
        rows: &[f32],
        norms: &[f32],
        dim: usize,
        idx: &[u32],
        na: f64,
        t2s: &[f64],
        band_scale: f64,
        mins: Option<&[u8]>,
        out: &mut [u8],
    ) {
        use std::arch::x86_64::*;
        let na_v = _mm256_set1_pd(na);
        let two = _mm256_set1_pd(2.0);
        let scale_v = _mm256_set1_pd(band_scale);
        let mut i = 0;
        if dim >= 8 && dim.is_multiple_of(8) {
            while i + 4 <= idx.len() {
                let c0 = idx[i] as usize;
                let c1 = idx[i + 1] as usize;
                let c2 = idx[i + 2] as usize;
                let c3 = idx[i + 3] as usize;
                let r0 = rows.as_ptr().add(c0 * dim);
                let r1 = rows.as_ptr().add(c1 * dim);
                let r2 = rows.as_ptr().add(c2 * dim);
                let r3 = rows.as_ptr().add(c3 * dim);
                let mut a0 = _mm256_setzero_ps();
                let mut a1 = _mm256_setzero_ps();
                let mut a2 = _mm256_setzero_ps();
                let mut a3 = _mm256_setzero_ps();
                let mut d = 0;
                while d < dim {
                    let qv = _mm256_loadu_ps(q.as_ptr().add(d));
                    a0 = _mm256_fmadd_ps(_mm256_loadu_ps(r0.add(d)), qv, a0);
                    a1 = _mm256_fmadd_ps(_mm256_loadu_ps(r1.add(d)), qv, a1);
                    a2 = _mm256_fmadd_ps(_mm256_loadu_ps(r2.add(d)), qv, a2);
                    a3 = _mm256_fmadd_ps(_mm256_loadu_ps(r3.add(d)), qv, a3);
                    d += 8;
                }
                let dots = _mm_set_ps(hsum_ps(a3), hsum_ps(a2), hsum_ps(a1), hsum_ps(a0));
                let nb = _mm_set_ps(norms[c3], norms[c2], norms[c1], norms[c0]);
                let dots_pd = _mm256_cvtps_pd(dots);
                let nsum = _mm256_add_pd(na_v, _mm256_cvtps_pd(nb));
                let est = _mm256_sub_pd(nsum, _mm256_mul_pd(two, dots_pd));
                let me = match mins {
                    Some(m) => _mm256_set_pd(
                        m[i + 3] as f64,
                        m[i + 2] as f64,
                        m[i + 1] as f64,
                        m[i] as f64,
                    ),
                    None => _mm256_setzero_pd(),
                };
                rung_entries4(est, nsum, me, t2s, scale_v, out.as_mut_ptr().add(i));
                i += 4;
            }
        }
        while i < idx.len() {
            let c = idx[i] as usize;
            let dot = dot_f32_avx2_fma(q, &rows[c * dim..c * dim + dim]);
            let me = mins.map_or(0, |m| m[i]);
            out[i] = super::classify_taus_one(dot, norms[c], na, t2s, band_scale, me);
            i += 1;
        }
    }

    /// One vectorized ladder pass over four f64 Gram estimates: per rung
    /// `j`, runs `super::classify_taus_one`'s exact operation sequence in
    /// vectors (`band = scale · (nsum + t2)`; reject iff sketch-floored or
    /// `est > t2 + band`; keep iff not floored and `est ≤ t2 − band`),
    /// counting certified rejects/keeps per lane by subtracting the
    /// all-ones compare masks, then resolves each lane to an entry index
    /// or sentinel. `me` holds the per-lane sketch entry floors as f64.
    ///
    /// # Safety
    /// Caller must ensure the host supports AVX2 and FMA, and that `out`
    /// points at four writable bytes.
    #[target_feature(enable = "avx2", enable = "fma")]
    unsafe fn rung_entries4(
        est: std::arch::x86_64::__m256d,
        nsum: std::arch::x86_64::__m256d,
        me: std::arch::x86_64::__m256d,
        t2s: &[f64],
        scale_v: std::arch::x86_64::__m256d,
        out: *mut u8,
    ) {
        use std::arch::x86_64::*;
        let mut cr = _mm256_setzero_si256();
        let mut ck = _mm256_setzero_si256();
        for (j, &t2) in t2s.iter().enumerate() {
            let t2_v = _mm256_set1_pd(t2);
            let band = _mm256_mul_pd(scale_v, _mm256_add_pd(nsum, t2_v));
            let low = _mm256_cmp_pd::<_CMP_LT_OQ>(_mm256_set1_pd(j as f64), me);
            let rej = _mm256_or_pd(
                low,
                _mm256_cmp_pd::<_CMP_GT_OQ>(est, _mm256_add_pd(t2_v, band)),
            );
            let keep = _mm256_andnot_pd(
                low,
                _mm256_cmp_pd::<_CMP_LE_OQ>(est, _mm256_sub_pd(t2_v, band)),
            );
            cr = _mm256_sub_epi64(cr, _mm256_castpd_si256(rej));
            ck = _mm256_sub_epi64(ck, _mm256_castpd_si256(keep));
        }
        let mut crs = [0i64; 4];
        let mut cks = [0i64; 4];
        _mm256_storeu_si256(crs.as_mut_ptr() as *mut __m256i, cr);
        _mm256_storeu_si256(cks.as_mut_ptr() as *mut __m256i, ck);
        let len = t2s.len() as i64;
        for l in 0..4 {
            *out.add(l) = if crs[l] == len {
                super::RUNG_NONE
            } else if crs[l] + cks[l] == len {
                crs[l] as u8
            } else {
                super::RUNG_EXACT
            };
        }
    }

    /// Ladder classification of eight vertically-accumulated f32 dots:
    /// widens each 4-lane half to f64 and delegates to [`rung_entries4`]
    /// with a zero sketch floor (the run path never carries one).
    ///
    /// # Safety
    /// Caller must ensure the host supports AVX2 and FMA, `nb` points at
    /// eight readable f32 norms, and `out` at eight writable bytes.
    #[target_feature(enable = "avx2", enable = "fma")]
    unsafe fn classify8_taus(
        dots: std::arch::x86_64::__m256,
        nb: *const f32,
        out: *mut u8,
        na_v: std::arch::x86_64::__m256d,
        t2s: &[f64],
        scale_v: std::arch::x86_64::__m256d,
    ) {
        use std::arch::x86_64::*;
        let two = _mm256_set1_pd(2.0);
        let nbv = _mm256_loadu_ps(nb);
        for h in 0..2u32 {
            let (dp, nbp) = if h == 0 {
                (
                    _mm256_cvtps_pd(_mm256_castps256_ps128(dots)),
                    _mm256_cvtps_pd(_mm256_castps256_ps128(nbv)),
                )
            } else {
                (
                    _mm256_cvtps_pd(_mm256_extractf128_ps(dots, 1)),
                    _mm256_cvtps_pd(_mm256_extractf128_ps(nbv, 1)),
                )
            };
            let nsum = _mm256_add_pd(na_v, nbp);
            let est = _mm256_sub_pd(nsum, _mm256_mul_pd(two, dp));
            rung_entries4(
                est,
                nsum,
                _mm256_setzero_pd(),
                t2s,
                scale_v,
                out.add(4 * h as usize),
            );
        }
    }

    /// AVX-512 variant of [`classify_f32_run_taus_avx2_fma`]: the dot
    /// blocks run 32 consecutive candidates as two 16-lane FMA chains per
    /// query coordinate (halving the broadcast traffic), then the ladder
    /// classification reuses the 8-wide AVX2 pass on each extracted
    /// quarter. Each candidate's dot is still a single FMA chain over
    /// ascending `d`, so the scalar `mul_add` debug reference reproduces
    /// it bit-for-bit; the sub-32 remainder delegates to the AVX2 body.
    ///
    /// # Safety
    /// Caller must ensure the host supports AVX-512F, AVX2, and FMA (see
    /// [`super::lane`]), and that `first + out.len() <= n` with `cols` a
    /// `dim × n` dimension-major slab.
    #[cfg(feature = "avx512")]
    #[allow(clippy::too_many_arguments)]
    #[target_feature(enable = "avx512f", enable = "avx2", enable = "fma")]
    pub unsafe fn classify_f32_run_taus_avx512(
        q: &[f32],
        cols: &[f32],
        n: usize,
        rows: &[f32],
        norms: &[f32],
        dim: usize,
        first: usize,
        na: f64,
        t2s: &[f64],
        band_scale: f64,
        out: &mut [u8],
    ) {
        use std::arch::x86_64::*;
        let len = out.len();
        let na_v = _mm256_set1_pd(na);
        let scale_v = _mm256_set1_pd(band_scale);
        // Low/high 256-bit halves of a 512-bit f32 accumulator. Plain
        // AVX-512F has no f32×8 extract (that is AVX-512DQ), so the high
        // half goes through the f64×4 extract and a bitcast.
        #[target_feature(enable = "avx512f")]
        unsafe fn halves(acc: __m512) -> (__m256, __m256) {
            (
                _mm512_castps512_ps256(acc),
                _mm256_castpd_ps(_mm512_extractf64x4_pd(_mm512_castps_pd(acc), 1)),
            )
        }
        let mut i = 0;
        while i + 32 <= len {
            let base = first + i;
            let mut a0 = _mm512_setzero_ps();
            let mut a1 = _mm512_setzero_ps();
            for d in 0..dim {
                let qd = _mm512_set1_ps(*q.get_unchecked(d));
                let col = cols.as_ptr().add(d * n + base);
                a0 = _mm512_fmadd_ps(_mm512_loadu_ps(col), qd, a0);
                a1 = _mm512_fmadd_ps(_mm512_loadu_ps(col.add(16)), qd, a1);
            }
            let outp = out.as_mut_ptr().add(i);
            let np = norms.as_ptr().add(base);
            let (l0, h0) = halves(a0);
            let (l1, h1) = halves(a1);
            classify8_taus(l0, np, outp, na_v, t2s, scale_v);
            classify8_taus(h0, np.add(8), outp.add(8), na_v, t2s, scale_v);
            classify8_taus(l1, np.add(16), outp.add(16), na_v, t2s, scale_v);
            classify8_taus(h1, np.add(24), outp.add(24), na_v, t2s, scale_v);
            i += 32;
        }
        if i < len {
            classify_f32_run_taus_avx2_fma(
                q,
                cols,
                n,
                rows,
                norms,
                dim,
                first + i,
                na,
                t2s,
                band_scale,
                &mut out[i..],
            );
        }
    }

    /// Horizontal sum of 8 f32 lanes: 256 → 128 → 64 → 32 bits.
    ///
    /// # Safety
    /// Caller must ensure the host supports AVX2 (see [`super::lane`]).
    #[target_feature(enable = "avx2")]
    unsafe fn hsum_ps(acc: std::arch::x86_64::__m256) -> f32 {
        use std::arch::x86_64::*;
        let lo = _mm256_castps256_ps128(acc);
        let hi = _mm256_extractf128_ps(acc, 1);
        let quad = _mm_add_ps(lo, hi);
        let pair = _mm_add_ps(quad, _mm_movehl_ps(quad, quad));
        _mm_cvtss_f32(_mm_add_ss(pair, _mm_shuffle_ps(pair, pair, 0b01)))
    }

    /// # Safety
    /// Caller must ensure the host supports POPCNT (see
    /// [`super::sketch_lb2_indexed`]).
    #[target_feature(enable = "popcnt")]
    pub unsafe fn sketch_lb2_indexed_popcnt(
        q: &[u64],
        limbs: &[u64],
        m: usize,
        idx: &[u32],
        pad: &[u32],
        w_lo_sq: &[f64],
        out: &mut [f64],
    ) {
        super::sketch_lb2_indexed_body(q, limbs, m, idx, pad, w_lo_sq, out);
    }

    /// # Safety
    /// Caller must ensure the host supports AVX-512F (see [`super::lane`]).
    #[cfg(feature = "avx512")]
    #[target_feature(enable = "avx512f")]
    pub unsafe fn dot_f32_avx512(a: &[f32], b: &[f32]) -> f32 {
        use std::arch::x86_64::*;
        let n = a.len();
        debug_assert_eq!(n, b.len());
        let mut acc0 = _mm512_setzero_ps();
        let mut acc1 = _mm512_setzero_ps();
        let mut i = 0;
        while i + 32 <= n {
            let a0 = _mm512_loadu_ps(a.as_ptr().add(i));
            let b0 = _mm512_loadu_ps(b.as_ptr().add(i));
            acc0 = _mm512_fmadd_ps(a0, b0, acc0);
            let a1 = _mm512_loadu_ps(a.as_ptr().add(i + 16));
            let b1 = _mm512_loadu_ps(b.as_ptr().add(i + 16));
            acc1 = _mm512_fmadd_ps(a1, b1, acc1);
            i += 32;
        }
        if i + 16 <= n {
            let a0 = _mm512_loadu_ps(a.as_ptr().add(i));
            let b0 = _mm512_loadu_ps(b.as_ptr().add(i));
            acc0 = _mm512_fmadd_ps(a0, b0, acc0);
            i += 16;
        }
        let mut dot = _mm512_reduce_add_ps(_mm512_add_ps(acc0, acc1));
        while i < n {
            dot += a.get_unchecked(i) * b.get_unchecked(i);
            i += 1;
        }
        dot
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rows(n: usize) -> (Vec<f64>, Vec<f64>) {
        // Deterministic, sign-mixed, magnitude-mixed inputs.
        let a: Vec<f64> = (0..n)
            .map(|i| ((i * 2654435761 % 1000) as f64 - 500.0) / 37.0)
            .collect();
        let b: Vec<f64> = (0..n)
            .map(|i| ((i * 40503 % 1000) as f64 - 499.0) / 13.0)
            .collect();
        (a, b)
    }

    #[test]
    fn lane_is_stable() {
        assert_eq!(lane(), lane());
        assert!(!lane().name().is_empty());
    }

    #[test]
    fn dot_f64_matches_serial_fold() {
        for n in [0, 1, 3, 4, 7, 8, 15, 16, 33, 64, 100] {
            let (a, b) = rows(n);
            let serial: f64 = a.iter().zip(&b).map(|(x, y)| x * y).sum();
            let got = dot_f64(&a, &b);
            let mag: f64 = a.iter().zip(&b).map(|(x, y)| (x * y).abs()).sum();
            let tol = (n as f64 + 8.0) * 2.0 * f64::EPSILON * mag;
            assert!((got - serial).abs() <= tol, "n={n}: {got} vs {serial}");
        }
    }

    #[test]
    fn dot_f32_matches_widened_serial_fold() {
        for n in [0, 1, 7, 8, 9, 16, 17, 31, 32, 33, 64, 100] {
            let (a64, b64) = rows(n);
            let a: Vec<f32> = a64.iter().map(|&x| x as f32).collect();
            let b: Vec<f32> = b64.iter().map(|&x| x as f32).collect();
            let serial: f64 = a
                .iter()
                .zip(&b)
                .map(|(x, y)| (*x as f64) * (*y as f64))
                .sum();
            let mag: f64 = a
                .iter()
                .zip(&b)
                .map(|(x, y)| ((*x as f64) * (*y as f64)).abs())
                .sum();
            let got = dot_f32(&a, &b) as f64;
            let tol = (n as f64 + 8.0) * 2.0 * f32::EPSILON as f64 * mag + f32::MIN_POSITIVE as f64;
            assert!((got - serial).abs() <= tol, "n={n}: {got} vs {serial}");
        }
    }

    #[test]
    fn empty_and_unit_dots() {
        assert_eq!(dot_f64(&[], &[]), 0.0);
        assert_eq!(dot_f32(&[], &[]), 0.0);
        assert_eq!(dot_f64(&[2.0], &[3.5]), 7.0);
        assert_eq!(dot_f32(&[2.0], &[3.5]), 7.0);
    }
}
