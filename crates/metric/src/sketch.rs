//! Hamming-sketch τ-prefilter with a **certified** distance lower bound.
//!
//! The classic signed-random-projection sketch gives a *probabilistic*
//! Hamming/τ relation — useless here, because the speed-tier contract is
//! bit-identical verdicts, so a prefilter may only reject a candidate when
//! the rejection is provable. This module builds a sketch whose popcount
//! Hamming distance yields a deterministic **lower bound** on the true
//! squared distance; a pair is skipped only when that bound alone proves
//! `dist² > τ²`, i.e. exactly when the exact kernel would have rejected it
//! anyway. Uncertain pairs always go on to the estimate/exact path.
//!
//! ## Construction
//!
//! * `m = min(dim, 4)` random directions are drawn from a ChaCha8 stream
//!   seeded by the point-set shape (deterministic; independent of threads
//!   and call order), Gram–Schmidt-orthonormalized in f64, then deflated by
//!   `(1 − 1e-6)`. A build-time check verifies `‖UUᵀ − I‖∞ ≤ 1e-9`; with
//!   Gershgorin this certifies `λ_max(UUᵀ) < 1` after deflation, so
//!   **Bessel's inequality holds with certainty**:
//!   `Σ_j ⟨x−y, û_j⟩² ≤ ‖x−y‖²` for every pair. (If the check ever fails,
//!   the sketch silently disables itself — soundness over speed.)
//! * Each point stores, per direction, a 64-bit **thermometer code** of its
//!   quantized projection: the projection range `[min_j, max_j]` observed
//!   over the dataset splits into 64 buckets of width `w_j`, and level
//!   `b ∈ [0, 64]` is encoded as `b` one-bits. ≤ 256 bits per point.
//! * XOR + popcount of two thermometer limbs is exactly `|b₁ − b₂|`, so
//!   one popcount per direction recovers the level gap `h_j`.
//!
//! ## The certified bound
//!
//! Two projections whose levels differ by `h_j` are at least
//! `(h_j − 1)·w_j` apart — up to the floating-point error in computing the
//! projections and bucket indices. That error is bounded *at build time*
//! per direction (via the maximum absolute-value projection `Σ_k|x_k u_jk|`
//! and the range magnitudes) and converted to an integer level slack `s_j`;
//! the per-pair certificate is then
//!
//! ```text
//! |⟨x−y, û_j⟩| ≥ max(h_j − (1 + 2·s_j), 0) · w_j⁻   (w_j⁻ = w_j·(1−1e-9))
//! LB² = Σ_j (…)² ≤ ‖x−y‖²  (Bessel)
//! ```
//!
//! and the kernel's own evaluation `fl(dist²)` undershoots the true value
//! by at most a relative `(d+2)·ε`, so `LB²·(1 − (d+16)·ε) > τ²` implies
//! `fl(dist²) > τ²` with certainty — the exact kernel's verdict. Every
//! constant above is deliberately generous: slack overshoot only shrinks
//! the set of certified rejections (more exact work), never correctness.
//! Non-finite data degrades the same way — an infinite or NaN projection
//! kills its direction's weight at build time, and a pair containing a
//! non-finite point has `fl(dist²)` NaN or +∞, which the exact kernel
//! rejects too, so any verdict the sketch emits for it is vacuously right.

use rand::{RngExt, SeedableRng};
use rand_chacha::ChaCha8Rng;

use crate::point::PointSet;

/// Thermometer levels per direction: 64 one-bit steps in a single `u64`
/// limb (levels `0..=64`).
const LEVELS: u32 = 64;

/// Maximum number of projection directions (× 64 bits = 256-bit sketch).
const MAX_DIRS: usize = 4;

/// Direction deflation factor; dwarfs the certified `1e-9` orthonormality
/// defect so Bessel's inequality survives floating point.
const DEFLATE: f64 = 1.0 - 1e-6;

/// Per-point Hamming sketch storage for one [`PointSet`].
#[derive(Debug, Clone)]
pub struct Sketch {
    /// Directions per point; `limbs[p*m + j]` is point `p`'s thermometer
    /// limb for direction `j`.
    m: usize,
    limbs: Vec<u64>,
    /// `(w_j·(1−1e-9))²` per direction; `0.0` for dead directions (zero
    /// range, non-finite data, failed certification, oversized slack).
    w_lo_sq: Vec<f64>,
    /// `1 + 2·s_j` per direction: levels of gap consumed by quantization
    /// (−1) and the two endpoints' floating-point slack (±s_j each).
    pad: Vec<u32>,
    /// `1 − (d+16)·ε`: shrinks LB² so it certifies against the kernel's
    /// *floating-point* `dist²`, not just the true one.
    margin: f64,
}

/// One standard-normal draw via Box–Muller (same construction as
/// `datasets`, kept local so the sketch seed stream is self-contained).
fn gaussian(rng: &mut impl RngExt) -> f64 {
    let u1: f64 = rng.random_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.random_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

fn dot(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// Thermometer code of level `v ∈ 0..=64`: `v` one-bits.
#[inline]
fn thermometer(v: u32) -> u64 {
    if v >= LEVELS {
        u64::MAX
    } else {
        (1u64 << v) - 1
    }
}

impl Sketch {
    /// Builds the sketch for `points`. Deterministic: the direction stream
    /// is seeded from the point-set shape, and every fold runs in index
    /// order on one thread — bit-identical across runs and thread counts.
    pub fn build(points: &PointSet) -> Sketch {
        let dim = points.dim();
        let n = points.len();
        let m = dim.min(MAX_DIRS);
        let margin = 1.0 - (dim as f64 + 16.0) * f64::EPSILON;
        let dead = |m: usize| Sketch {
            m,
            limbs: vec![0; n * m],
            w_lo_sq: vec![0.0; m],
            pad: vec![0; m],
            margin,
        };
        if m == 0 || n == 0 {
            return dead(m);
        }

        // Draw and Gram–Schmidt-orthonormalize m unit directions in f64.
        let seed = 0x5EED_C0DE_u64 ^ (dim as u64) << 32 ^ n as u64;
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut dirs: Vec<Vec<f64>> = Vec::with_capacity(m);
        for _ in 0..m {
            let mut v: Vec<f64> = (0..dim).map(|_| gaussian(&mut rng)).collect();
            for u in &dirs {
                let c = dot(&v, u);
                for (vi, ui) in v.iter_mut().zip(u) {
                    *vi -= c * ui;
                }
            }
            let norm = dot(&v, &v).sqrt();
            if !norm.is_finite() || norm <= 1e-9 {
                return dead(m); // degenerate draw: disable, stay sound
            }
            for vi in &mut v {
                *vi /= norm;
            }
            dirs.push(v);
        }
        // Certify near-orthonormality: `‖UUᵀ − I‖∞ ≤ 1e-9` ⇒ by
        // Gershgorin `λ_max(UUᵀ) ≤ 1 + m·1e-9`, so after the `DEFLATE`
        // scaling below `λ_max < 1` — which is all Bessel needs.
        for (i, u) in dirs.iter().enumerate() {
            for (j, v) in dirs.iter().enumerate() {
                let want = if i == j { 1.0 } else { 0.0 };
                if (dot(u, v) - want).abs() > 1e-9 {
                    return dead(m);
                }
            }
        }
        for u in &mut dirs {
            for ui in u.iter_mut() {
                *ui *= DEFLATE;
            }
        }

        // Project every point; track per-direction min/max and the largest
        // absolute-value projection (the fp-error scale).
        let mut proj = vec![0.0f64; n * m];
        let mut lo = vec![f64::INFINITY; m];
        let mut hi = vec![f64::NEG_INFINITY; m];
        let mut abs_max = vec![0.0f64; m];
        for p in 0..n {
            let row = &points.raw()[p * dim..(p + 1) * dim];
            for (j, u) in dirs.iter().enumerate() {
                let v = dot(row, u);
                let a: f64 = row.iter().zip(u).map(|(x, y)| (x * y).abs()).sum();
                proj[p * m + j] = v;
                // f64::min/max shed NaN: a NaN projection (NaN coordinate)
                // simply doesn't move the range — see the module docs for
                // why pairs containing such points stay sound.
                lo[j] = lo[j].min(v);
                hi[j] = hi[j].max(v);
                abs_max[j] = abs_max[j].max(a);
            }
        }

        // Bucket widths, fp slack in integer levels, per-direction weights.
        let mut w = vec![0.0f64; m];
        let mut w_lo_sq = vec![0.0f64; m];
        let mut pad = vec![0u32; m];
        for j in 0..m {
            let range = hi[j] - lo[j];
            if !range.is_finite() || range <= 0.0 {
                continue; // dead: zero spread or non-finite data
            }
            w[j] = range / LEVELS as f64;
            // Value-space slack per endpoint: projection fold error
            // ((d+8)·ε·Σ|x_k u_k|) plus bucketing arithmetic error
            // (4·ε·(range + |lo| + |hi|)); generous on both counts.
            let dev = (dim as f64 + 8.0) * f64::EPSILON * abs_max[j]
                + 4.0 * f64::EPSILON * (range + lo[j].abs() + hi[j].abs());
            let slack = (dev / w[j]).ceil() as u32 + 1;
            let p = 1 + 2 * slack;
            if p >= LEVELS {
                continue; // dead: slack eats the whole level span
            }
            let w_lo = w[j] * (1.0 - 1e-9);
            w_lo_sq[j] = w_lo * w_lo;
            pad[j] = p;
        }

        // Thermometer-encode the quantized levels.
        let mut limbs = vec![0u64; n * m];
        for p in 0..n {
            for j in 0..m {
                if w_lo_sq[j] == 0.0 {
                    continue; // dead direction: limb 0 for everyone
                }
                let t = (proj[p * m + j] - lo[j]) / w[j];
                // NaN → 0.0 via clamp-then-cast saturation; fine, because
                // such a point never survives an exact verdict either.
                let level = t.clamp(0.0, LEVELS as f64) as u32;
                limbs[p * m + j] = thermometer(level);
            }
        }
        Sketch {
            m,
            limbs,
            w_lo_sq,
            pad,
            margin,
        }
    }

    /// Point `i`'s sketch limbs (one per direction).
    #[inline]
    pub fn limbs(&self, i: usize) -> &[u64] {
        &self.limbs[i * self.m..(i + 1) * self.m]
    }

    /// Certified lower bound on the *true* squared distance between the
    /// two sketched points, from popcount Hamming gaps alone.
    #[inline]
    pub fn lower_bound_sq(&self, a: &[u64], b: &[u64]) -> f64 {
        let mut lb2 = 0.0;
        for j in 0..self.m {
            let h = (a[j] ^ b[j]).count_ones();
            let g = h.saturating_sub(self.pad[j]);
            lb2 += (g * g) as f64 * self.w_lo_sq[j];
        }
        lb2
    }

    /// `true` iff the sketch alone **proves** the exact kernel would
    /// reject this pair at squared threshold `t2` — i.e. that
    /// `fl(dist²) > t2`. May only rule pairs *out*; a `false` means
    /// "unknown", never "within".
    #[inline]
    pub fn certified_reject(&self, a: &[u64], b: &[u64], t2: f64) -> bool {
        self.lower_bound_sq(a, b) * self.margin > t2
    }

    /// Batched [`Sketch::lower_bound_sq`] for one query against a tile of
    /// candidate ids: `out[i] = lower_bound_sq(q, limbs(idx[i]))`, computed
    /// by the POPCNT-dispatched tile kernel ([`crate::simd`]) — one call
    /// frame per tile instead of per pair. `q` is the query's own limb row
    /// (from [`Sketch::limbs`]).
    #[inline]
    pub fn lower_bounds_sq_indexed(&self, q: &[u64], idx: &[u32], out: &mut [f64]) {
        crate::simd::sketch_lb2_indexed(q, &self.limbs, self.m, idx, &self.pad, &self.w_lo_sq, out);
    }

    /// The soundness multiplier a caller applies to a lower bound before
    /// comparing with `t2` (covers the exact kernel's own `fl(dist²)`
    /// undershoot): reject iff `lb2 * margin() > t2` — exactly
    /// [`Sketch::certified_reject`]'s predicate.
    #[inline]
    pub fn margin(&self) -> f64 {
        self.margin
    }

    /// Number of projection directions (64 bits each).
    #[inline]
    pub fn dirs(&self) -> usize {
        self.m
    }

    /// Directions that can actually certify rejections (non-zero weight).
    pub fn live_dirs(&self) -> usize {
        self.w_lo_sq.iter().filter(|&&w| w > 0.0).count()
    }

    /// Sketch width per point, in bits.
    pub fn bits_per_point(&self) -> usize {
        self.m * 64
    }

    /// Approximate heap footprint in bytes.
    pub fn bytes(&self) -> usize {
        self.limbs.len() * 8 + self.m * (8 + 4)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datasets;

    fn exact_d2(ps: &PointSet, a: usize, b: usize) -> f64 {
        let dim = ps.dim();
        let ra = &ps.raw()[a * dim..(a + 1) * dim];
        let rb = &ps.raw()[b * dim..(b + 1) * dim];
        ra.iter()
            .zip(rb)
            .map(|(x, y)| (x - y) * (x - y))
            .sum::<f64>()
    }

    #[test]
    fn thermometer_popcount_is_level_gap() {
        for a in 0..=LEVELS {
            for b in 0..=LEVELS {
                let h = (thermometer(a) ^ thermometer(b)).count_ones();
                assert_eq!(h, a.abs_diff(b));
            }
        }
    }

    #[test]
    fn lower_bound_never_exceeds_exact_distance() {
        // The whole soundness claim, brute-forced: LB² ≤ fl(dist²) on
        // every pair of several shaped datasets.
        for (ps, tag) in [
            (datasets::uniform_cube(160, 24, 11), "cube"),
            (datasets::gaussian_clusters(160, 32, 5, 0.05, 13), "gauss"),
            (datasets::uniform_cube(80, 3, 7), "lowdim"),
        ] {
            let sk = Sketch::build(&ps);
            assert!(sk.live_dirs() > 0, "{tag}: sketch should be live");
            for a in 0..ps.len() {
                for b in 0..ps.len() {
                    let lb2 = sk.lower_bound_sq(sk.limbs(a), sk.limbs(b)) * sk.margin;
                    let d2 = exact_d2(&ps, a, b);
                    assert!(
                        lb2 <= d2
                            || sk.certified_reject(sk.limbs(a), sk.limbs(b), d2) == (lb2 > d2),
                        "{tag}: pair ({a},{b}) lb2={lb2} d2={d2}"
                    );
                    assert!(lb2 <= d2, "{tag}: pair ({a},{b}) lb2={lb2} > d2={d2}");
                }
            }
        }
    }

    #[test]
    fn rejects_are_consistent_with_exact_verdicts() {
        let ps = datasets::gaussian_clusters(200, 32, 6, 0.03, 99);
        let sk = Sketch::build(&ps);
        // τ chosen near typical inter-cluster gaps so both verdicts occur.
        for tau in [0.05, 0.2, 0.5, 1.0, 2.0] {
            let t2 = tau * tau;
            let mut rejected = 0usize;
            for a in 0..ps.len() {
                for b in 0..ps.len() {
                    if sk.certified_reject(sk.limbs(a), sk.limbs(b), t2) {
                        rejected += 1;
                        assert!(exact_d2(&ps, a, b) > t2, "false reject at tau={tau}");
                    }
                }
            }
            if tau <= 0.2 {
                assert!(rejected > 0, "sketch should prune something at tau={tau}");
            }
        }
    }

    #[test]
    fn build_is_deterministic() {
        let ps = datasets::uniform_cube(120, 16, 5);
        let a = Sketch::build(&ps);
        let b = Sketch::build(&ps);
        assert_eq!(a.limbs, b.limbs);
        assert_eq!(a.pad, b.pad);
        assert_eq!(
            a.w_lo_sq.iter().map(|w| w.to_bits()).collect::<Vec<_>>(),
            b.w_lo_sq.iter().map(|w| w.to_bits()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn degenerate_inputs_disable_cleanly() {
        // Zero spread: every projection identical → dead directions, no
        // rejects ever.
        let ps = PointSet::from_rows(&vec![vec![1.0; 8]; 10]);
        let sk = Sketch::build(&ps);
        assert_eq!(sk.live_dirs(), 0);
        assert!(!sk.certified_reject(sk.limbs(0), sk.limbs(1), 0.0));

        // Non-finite coordinates: directions touched by ±∞ die; pairs with
        // the poisoned point would be exact-rejected anyway.
        let mut rows = vec![vec![0.5; 8]; 12];
        rows[3][2] = f64::INFINITY;
        let ps = PointSet::from_rows(&rows);
        let sk = Sketch::build(&ps);
        for a in 0..ps.len() {
            for b in 0..ps.len() {
                if sk.certified_reject(sk.limbs(a), sk.limbs(b), 1e9) {
                    let d2 = exact_d2(&ps, a, b);
                    assert!(d2 > 1e9 || d2.is_nan());
                }
            }
        }

        // n = 0 (PointSet guarantees dim ≥ 1) must not panic.
        let sk = Sketch::build(&PointSet::new(Vec::new(), 5));
        assert!(!sk.certified_reject(&[0; 4], &[0; 4], 0.0));
    }
}
