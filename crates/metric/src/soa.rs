//! Speed tiers and the f32 SoA mirror for [`crate::EuclideanSpace`].
//!
//! The paper's Alg 3–5 cost model counts distance *evaluations*; PR 2–5
//! attacked the number of exact evaluations (batching, Gram tiles, the
//! τ-sweep ladder). This module attacks the cost of each remaining
//! evaluation: an opt-in f32 copy of the points whose 8–16-lane FMA dot is
//! 2–4× cheaper than the f64 one and whose rows move half the memory.
//!
//! Exactness discipline (same as the PR-4 Gram band): the f32 estimate of a
//! squared distance decides a `dist² ≤ τ²` verdict **only when it clears a
//! conservative error band** around τ²; every pair inside the band is
//! re-decided with the exact f64 evaluation. Threshold verdicts — and hence
//! centers, radii, rounds, and ledgers — stay bit-identical to the exact
//! tier on every host. Distance-*returning* paths (`dist`, `dists_into`,
//! memo fills, GMM radii) never consult the mirror.
//!
//! ## f32 error band
//!
//! For the f32 Gram estimate `g = na32 + nb32 − 2·dot32(a32, b32)` (widened
//! to f64 for the final combine) against the exact `‖a − b‖²`, the error
//! sources are (ε = `f32::EPSILON`, d = dimension):
//!
//! * rounding each coordinate to f32: ≤ 2ε·(‖a‖² + ‖b‖²) over the row;
//! * the f32 norm folds: ≤ (d + 2)·ε·(‖a‖² + ‖b‖²);
//! * the f32 dot fold (FMA's fused rounding is strictly tighter than
//!   mul-then-add): ≤ (d + 8)·ε·(‖a‖² + ‖b‖²)/2 via |aᵢbᵢ| ≤ (aᵢ²+bᵢ²)/2.
//!
//! Their sum is below `(2d + 16)·ε·(‖a‖² + ‖b‖²)`; the band used is
//! `(4d + 32)·ε·(na + nb + τ²)` — the PR-4 constant with f32's ε — leaving
//! ≥2× slack. Overshooting the band only costs speed (more exact
//! fallbacks), never correctness. Overflow to `±inf` or NaN anywhere makes
//! the band infinite or the comparisons false, so non-finite inputs always
//! take the exact branch.
//!
//! ## Layout
//!
//! The mirror keeps **both** orientations of the f32 coordinates:
//!
//! * **row-major** (`rows`) for arbitrary candidate lists — round-robin
//!   partitions and sketch survivors hand the kernels scattered id sets,
//!   where dimension-major storage would gather every candidate across
//!   `dim` cache lines;
//! * **dimension-major** (`cols`, the transpose the issue sketched) for
//!   *contiguous* candidate runs — the common case when a kernel scans all
//!   of `0..n`. There the run kernel broadcasts one query coordinate and
//!   FMA-accumulates eight consecutive candidates per register with **no
//!   horizontal sums and no index gather**, which is the difference
//!   between a load-port-bound and an FMA-throughput-bound loop.
//!
//! Both are derived from the same f64 truth in one pass; the duplication
//! costs `4·n·d` extra bytes (half the f64 input) and buys the fastest
//! kernel shape for each access pattern. See DESIGN.md §6.4.

use std::sync::OnceLock;

use crate::point::PointSet;

/// How much estimation machinery the Euclidean bulk kernels may use.
/// Verdicts are bit-identical at every tier; tiers only trade where the
/// cycles go. Parsed from `KCENTER_SPEED` (default [`SpeedTier::Exact`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SpeedTier {
    /// f64 arithmetic only (the PR-4/PR-5 kernels, unchanged).
    #[default]
    Exact,
    /// f32 SoA mirror + banded f32 estimates in the bulk threshold kernels.
    Soa,
    /// [`SpeedTier::Soa`] plus the Hamming sketch prefilter
    /// ([`crate::sketch`]) in front of the estimate.
    SoaSketch,
}

impl SpeedTier {
    /// Parses a `KCENTER_SPEED` value. Unrecognized strings yield `None`.
    pub fn parse(s: &str) -> Option<SpeedTier> {
        match s.trim() {
            "exact" => Some(SpeedTier::Exact),
            "soa" => Some(SpeedTier::Soa),
            "soa+sketch" | "sketch" => Some(SpeedTier::SoaSketch),
            _ => None,
        }
    }

    /// The process-default tier: `KCENTER_SPEED` if set and valid, else
    /// [`SpeedTier::Exact`]. Read once and cached (mirrors
    /// `KCENTER_THREADS` in the rayon shim); invalid values fall back to
    /// `Exact`, matching the shim's lenient env handling.
    pub fn from_env() -> SpeedTier {
        static TIER: OnceLock<SpeedTier> = OnceLock::new();
        *TIER.get_or_init(|| {
            std::env::var("KCENTER_SPEED")
                .ok()
                .and_then(|s| SpeedTier::parse(&s))
                .unwrap_or_default()
        })
    }

    /// The `KCENTER_SPEED` spelling of this tier.
    pub fn name(self) -> &'static str {
        match self {
            SpeedTier::Exact => "exact",
            SpeedTier::Soa => "soa",
            SpeedTier::SoaSketch => "soa+sketch",
        }
    }

    /// Whether this tier consults the f32 SoA mirror.
    #[inline]
    pub fn uses_soa(self) -> bool {
        !matches!(self, SpeedTier::Exact)
    }

    /// Whether this tier consults the Hamming sketch prefilter.
    #[inline]
    pub fn uses_sketch(self) -> bool {
        matches!(self, SpeedTier::SoaSketch)
    }
}

/// Per-pair error band scale for the f32 Gram estimate (see the module
/// docs): multiply by `na + nb + τ²` (in f64) to get the band width.
#[inline]
pub fn f32_band_scale(dim: usize) -> f64 {
    (4.0 * dim as f64 + 32.0) * f32::EPSILON as f64
}

/// The f32 mirror: row-major f32 copies of the points plus f32 squared
/// norms, both derived deterministically from the f64 truth (round-to-
/// nearest conversion, fixed-order norm fold — no thread-count or call-
/// order dependence). Built lazily on first bulk kernel call at a tier
/// that uses it.
#[derive(Debug, Clone)]
pub struct SoaStorage {
    rows: Vec<f32>,
    /// The transpose of `rows`, padded per dimension to `stride` slots:
    /// `cols[d * stride + i] = rows[i * dim + d]`. Feeds the
    /// contiguous-run kernels (see the module docs on layout).
    cols: Vec<f32>,
    /// `norms[i] = ‖rows[i]‖²` accumulated in f32 — the same values the
    /// estimate's error analysis assumes.
    norms: Vec<f32>,
    dim: usize,
    n: usize,
    /// Capacity of each dimension lane of `cols` (`≥ n`). Batch builds use
    /// `stride == n` (the PR-6 layout, byte-identical); the serving
    /// index's incremental [`SoaStorage::push`] grows it geometrically so
    /// an insert extends the mirror in amortized O(d) instead of
    /// re-transposing all n points.
    stride: usize,
}

impl SoaStorage {
    /// Converts a point set's rows to f32 (both orientations) and folds
    /// the f32 norms.
    pub fn build(points: &PointSet) -> SoaStorage {
        let dim = points.dim();
        let rows: Vec<f32> = points.raw().iter().map(|&x| x as f32).collect();
        let n = rows.len().checked_div(dim).unwrap_or(0);
        let mut cols = vec![0.0f32; rows.len()];
        for (i, row) in rows.chunks_exact(dim.max(1)).enumerate() {
            for (d, &x) in row.iter().enumerate() {
                cols[d * n + i] = x;
            }
        }
        let norms = rows
            .chunks(dim.max(1))
            .map(|row| row.iter().map(|x| x * x).sum())
            .collect();
        SoaStorage {
            rows,
            cols,
            norms,
            dim,
            n,
            stride: n,
        }
    }

    /// Appends one point to the mirror in place: the f32 row, its norm
    /// (same fixed-order fold as [`SoaStorage::build`]), and the
    /// dimension-major lanes. Amortized O(dim): lanes are re-strided to
    /// doubled capacity only when the current `stride` is full, so a
    /// stream of inserts never pays the full O(n·dim) re-transpose per
    /// point. The mirrored values are bit-identical to a from-scratch
    /// build over the extended point set.
    pub fn push(&mut self, row: &[f64]) {
        assert_eq!(row.len(), self.dim, "row arity must match the mirror");
        if self.n == self.stride {
            let new_stride = (self.stride * 2).max(64);
            let mut cols = vec![0.0f32; self.dim * new_stride];
            for d in 0..self.dim {
                cols[d * new_stride..d * new_stride + self.n]
                    .copy_from_slice(&self.cols[d * self.stride..d * self.stride + self.n]);
            }
            self.cols = cols;
            self.stride = new_stride;
        }
        let mut norm = 0.0f32;
        for (d, &x) in row.iter().enumerate() {
            let x32 = x as f32;
            self.rows.push(x32);
            self.cols[d * self.stride + self.n] = x32;
            norm += x32 * x32;
        }
        self.norms.push(norm);
        self.n += 1;
    }

    /// The flat row-major f32 coordinate buffer.
    #[inline]
    pub fn raw(&self) -> &[f32] {
        &self.rows
    }

    /// The flat dimension-major f32 buffer: `cols()[d * col_stride() + i]`
    /// is coordinate `d` of point `i` (slots past `len()` in each lane are
    /// padding, present only on incrementally grown mirrors).
    #[inline]
    pub fn cols(&self) -> &[f32] {
        &self.cols
    }

    /// The per-dimension lane stride of [`SoaStorage::cols`]: `len()` for
    /// batch-built mirrors, the padded capacity for incrementally grown
    /// ones. Kernels must index `cols` with this, never with `len()`.
    #[inline]
    pub fn col_stride(&self) -> usize {
        self.stride
    }

    /// Number of mirrored points.
    #[inline]
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the mirror is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Row `i` as an f32 slice.
    #[inline]
    pub fn row(&self, i: usize) -> &[f32] {
        &self.rows[i * self.dim..(i + 1) * self.dim]
    }

    /// f32 squared norm of row `i`.
    #[inline]
    pub fn norm(&self, i: usize) -> f32 {
        self.norms[i]
    }

    /// All f32 squared norms.
    #[inline]
    pub fn norms(&self) -> &[f32] {
        &self.norms
    }

    /// Approximate heap footprint in bytes (both orientations + norms).
    pub fn bytes(&self) -> usize {
        (self.rows.len() + self.cols.len() + self.norms.len()) * std::mem::size_of::<f32>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_round_trips_names() {
        for tier in [SpeedTier::Exact, SpeedTier::Soa, SpeedTier::SoaSketch] {
            assert_eq!(SpeedTier::parse(tier.name()), Some(tier));
        }
        assert_eq!(SpeedTier::parse(" soa "), Some(SpeedTier::Soa));
        assert_eq!(SpeedTier::parse("warp9"), None);
        assert_eq!(SpeedTier::default(), SpeedTier::Exact);
    }

    #[test]
    fn tier_layer_gates() {
        assert!(!SpeedTier::Exact.uses_soa() && !SpeedTier::Exact.uses_sketch());
        assert!(SpeedTier::Soa.uses_soa() && !SpeedTier::Soa.uses_sketch());
        assert!(SpeedTier::SoaSketch.uses_soa() && SpeedTier::SoaSketch.uses_sketch());
    }

    #[test]
    fn storage_mirrors_rows_and_norms() {
        let ps = PointSet::from_rows(&[vec![3.0, 4.0], vec![-1.5, 2.0]]);
        let soa = SoaStorage::build(&ps);
        assert_eq!(soa.row(0), &[3.0f32, 4.0]);
        assert_eq!(soa.row(1), &[-1.5f32, 2.0]);
        assert_eq!(soa.norm(0), 25.0);
        assert_eq!(soa.norm(1), 6.25);
        assert_eq!(soa.bytes(), (4 + 4 + 2) * 4);
    }

    #[test]
    fn cols_is_the_transpose_of_rows() {
        let ps = PointSet::from_rows(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]);
        let soa = SoaStorage::build(&ps);
        assert_eq!(soa.len(), 2);
        assert!(!soa.is_empty());
        // cols[d * n + i] == rows[i * dim + d]
        assert_eq!(soa.cols(), &[1.0f32, 4.0, 2.0, 5.0, 3.0, 6.0]);
        for i in 0..2 {
            for d in 0..3 {
                assert_eq!(soa.cols()[d * 2 + i], soa.row(i)[d]);
            }
        }
    }

    #[test]
    fn band_scale_mirrors_pr4_constant_at_f32_epsilon() {
        let s = f32_band_scale(32);
        assert!((s - 160.0 * f32::EPSILON as f64).abs() < 1e-20);
    }

    /// Incremental pushes must mirror exactly what a from-scratch build
    /// over the extended point set would hold — rows, norms, and every
    /// dimension lane (modulo the padded stride).
    #[test]
    fn push_matches_from_scratch_build() {
        let dim = 3;
        let rows: Vec<Vec<f64>> = (0..137)
            .map(|i| (0..dim).map(|d| (i * 7 + d) as f64 * 0.31 - 5.0).collect())
            .collect();
        let mut grown = SoaStorage::build(&PointSet::from_rows(&rows[..1]));
        for row in &rows[1..] {
            grown.push(row);
        }
        let batch = SoaStorage::build(&PointSet::from_rows(&rows));
        assert_eq!(grown.len(), batch.len());
        assert_eq!(grown.raw(), batch.raw());
        assert_eq!(grown.norms(), batch.norms());
        assert!(grown.col_stride() >= grown.len());
        assert_eq!(batch.col_stride(), batch.len());
        for i in 0..batch.len() {
            for d in 0..dim {
                assert_eq!(
                    grown.cols()[d * grown.col_stride() + i].to_bits(),
                    batch.cols()[d * batch.col_stride() + i].to_bits(),
                    "lane {d} point {i}"
                );
            }
        }
    }

    /// The stride grows geometrically, so n pushes re-stride O(log n)
    /// times rather than once per push.
    #[test]
    fn push_amortizes_restrides() {
        let mut soa = SoaStorage::build(&PointSet::from_rows(&[vec![1.0, 2.0]]));
        let mut strides = vec![soa.col_stride()];
        for i in 0..500 {
            soa.push(&[i as f64, -1.0]);
            if *strides.last().unwrap() != soa.col_stride() {
                strides.push(soa.col_stride());
            }
        }
        assert_eq!(soa.len(), 501);
        assert!(
            strides.len() <= 12,
            "500 pushes must not re-stride per push: {strides:?}"
        );
        assert!(soa.col_stride() >= soa.len());
    }
}
