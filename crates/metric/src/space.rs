//! The distance-oracle trait and common set-distance helpers.

use crate::point::PointId;
use rayon::prelude::*;

/// Minimum candidate-batch size before a bulk kernel fans out across the
/// worker pool. Below this the pool's publish/claim overhead (an op push,
/// a condvar wake, one atomic per chunk) is on the order of the scan
/// itself; above it the scan cost dominates.
pub const PAR_MIN_BULK: usize = 4096;

/// Whether a bulk kernel over `n_candidates` items should take its
/// parallel path: the batch is at least [`PAR_MIN_BULK`] *and* the calling
/// thread's effective pool width exceeds 1. At `threads = 1` kernels never
/// enter the chunked path, so the single-thread mode runs the exact
/// sequential scans it always has.
pub fn par_bulk(n_candidates: usize) -> bool {
    n_candidates >= PAR_MIN_BULK && rayon::current_num_threads() > 1
}

/// Gate for kernels that scan a `rows × cols` pair grid (e.g.
/// `degrees_among`): parallelize over rows only when there are at least
/// two and the grid is big enough to amortize the op overhead.
pub fn par_bulk_pairs(rows: usize, cols: usize) -> bool {
    rows >= 2 && rows.saturating_mul(cols) >= PAR_MIN_BULK && rayon::current_num_threads() > 1
}

/// Work-weighted variant of [`par_bulk`]: gates on `items × words_per_item`
/// instead of the bare item count. [`PAR_MIN_BULK`] was calibrated for
/// ~1-word items (a matrix-row lookup); a d-dimensional Euclidean candidate
/// costs d multiply-adds, so a d=32 batch amortizes the pool's op overhead
/// 32× sooner. Gating on the raw count left exactly that on the table —
/// the d=32 batched≈scalar parity recorded in `BENCH_kernels.json`
/// (see DESIGN.md §6.2).
pub fn par_bulk_weighted(n_items: usize, words_per_item: usize) -> bool {
    n_items.saturating_mul(words_per_item.max(1)) >= PAR_MIN_BULK
        && rayon::current_num_threads() > 1
}

/// Work-weighted variant of [`par_chunk_size`]: the floor that keeps tail
/// chunks worth claiming shrinks with the per-item cost, so high-d rows
/// split into more (still fixed-count) chunks. Like [`par_chunk_size`],
/// a function of the item count and the per-item weight **only** — never
/// of the thread count — preserving the determinism contract.
pub fn par_chunk_size_weighted(n_items: usize, words_per_item: usize) -> usize {
    let floor = (1024 / words_per_item.max(1)).max(16);
    n_items.div_ceil(rayon::pool::MAX_CHUNKS).max(floor)
}

/// Chunk size the parallel kernels split candidate batches into: an even
/// split over the pool's fixed [`rayon::pool::MAX_CHUNKS`], floored at
/// 1024 items so the tail chunks stay worth claiming. A function of the
/// item count **only** — the same batch splits identically at every
/// thread count ≥ 2, which (with associative combines) is what keeps
/// kernel outputs bit-for-bit reproducible across pool sizes.
pub fn par_chunk_size(n_candidates: usize) -> usize {
    n_candidates.div_ceil(rayon::pool::MAX_CHUNKS).max(1024)
}

/// Runs `chunk_kernel` over fixed-size chunks of `candidates` on the
/// worker pool and sums the per-chunk counts. Counts are exact integers,
/// so the chunked sum equals the sequential count no matter how chunks
/// were scheduled. Callers gate on [`par_bulk`] first.
pub fn par_count_chunks(
    candidates: &[u32],
    chunk_kernel: impl Fn(&[u32]) -> usize + Sync,
) -> usize {
    candidates
        .par_chunks(par_chunk_size(candidates.len()))
        .map(chunk_kernel)
        .sum()
}

/// [`par_count_chunks`] with the work-weighted split of
/// [`par_chunk_size_weighted`]; callers gate on [`par_bulk_weighted`].
pub fn par_count_chunks_weighted(
    candidates: &[u32],
    words_per_item: usize,
    chunk_kernel: impl Fn(&[u32]) -> usize + Sync,
) -> usize {
    candidates
        .par_chunks(par_chunk_size_weighted(candidates.len(), words_per_item))
        .map(chunk_kernel)
        .sum()
}

/// Filter twin of [`par_count_chunks`]: runs `chunk_kernel` over fixed
/// chunks and concatenates the surviving ids in chunk order, preserving
/// candidate order exactly as the sequential filter would.
pub fn par_filter_chunks(
    candidates: &[u32],
    out: &mut Vec<u32>,
    chunk_kernel: impl Fn(&[u32]) -> Vec<u32> + Sync,
) {
    let parts: Vec<Vec<u32>> = candidates
        .par_chunks(par_chunk_size(candidates.len()))
        .map(chunk_kernel)
        .collect();
    for part in parts {
        out.extend(part);
    }
}

/// [`par_filter_chunks`] with the work-weighted split of
/// [`par_chunk_size_weighted`]; callers gate on [`par_bulk_weighted`].
pub fn par_filter_chunks_weighted(
    candidates: &[u32],
    words_per_item: usize,
    out: &mut Vec<u32>,
    chunk_kernel: impl Fn(&[u32]) -> Vec<u32> + Sync,
) {
    let parts: Vec<Vec<u32>> = candidates
        .par_chunks(par_chunk_size_weighted(candidates.len(), words_per_item))
        .map(chunk_kernel)
        .collect();
    for part in parts {
        out.extend(part);
    }
}

/// Multi-query twin of [`par_count_chunks`] and friends: runs
/// `chunk_kernel` over fixed-size chunks of the *query* list `vs` and
/// concatenates the per-chunk answer rows in chunk order. The chunk split
/// is a function of the query count and per-item weight only, and whole
/// queries never straddle a chunk, so the concatenation is identical to
/// the sequential loop at every thread count. Callers gate on
/// [`par_bulk_pairs`] (or its weighted analogue) first.
pub fn par_query_chunks<T: Send>(
    vs: &[u32],
    chunk_kernel: impl Fn(&[u32]) -> Vec<T> + Sync,
) -> Vec<T> {
    let chunk = vs.len().div_ceil(rayon::pool::MAX_CHUNKS).max(1);
    let parts: Vec<Vec<T>> = vs.par_chunks(chunk).map(chunk_kernel).collect();
    parts.into_iter().flatten().collect()
}

/// A finite metric space with an O(1) distance oracle, mirroring the paper's
/// model (§2): "the distance between any two points in the space can be
/// obtained in O(1) time".
///
/// Implementations must satisfy the metric axioms on the id range
/// `0..n()`:
///
/// * identity: `dist(i, i) == 0`;
/// * symmetry: `dist(i, j) == dist(j, i)`;
/// * triangle inequality: `dist(i, k) <= dist(i, j) + dist(j, k)`.
///
/// [`crate::validate::check_metric_axioms`] spot-checks these on samples;
/// the property-based tests in this crate exercise them exhaustively on
/// small instances.
pub trait MetricSpace: Sync {
    /// Number of points in the space.
    fn n(&self) -> usize;

    /// Distance between points `i` and `j`.
    fn dist(&self, i: PointId, j: PointId) -> f64;

    /// Communication weight of shipping one point between machines, in
    /// abstract machine words. Euclidean points weigh their dimension;
    /// id-only metrics weigh 1.
    fn point_weight(&self) -> u64 {
        1
    }

    /// True iff `dist(i, j) <= tau`, i.e. `i` and `j` are adjacent in the
    /// threshold graph `G_tau`.
    #[inline]
    fn within(&self, i: PointId, j: PointId, tau: f64) -> bool {
        self.dist(i, j) <= tau
    }

    /// Batched threshold count: how many of `candidates` are within `tau`
    /// of `v`. Pure oracle semantics — a candidate equal to `v` counts
    /// whenever `within(v, v, tau)` does (graph layers subtract self-loops
    /// themselves).
    ///
    /// The default is the scalar loop; coordinate-backed spaces override it
    /// with kernels that stream the flat storage directly (see
    /// `EuclideanSpace` and `MatrixSpace`), which is where the hot
    /// adjacency scans of Algorithms 3–5 spend their time.
    fn count_within(&self, v: PointId, candidates: &[u32], tau: f64) -> usize {
        candidates
            .iter()
            .filter(|&&c| self.within(v, PointId(c), tau))
            .count()
    }

    /// Batched threshold filter: appends to `out` (after clearing it) every
    /// candidate within `tau` of `v`, preserving candidate order. Same
    /// self-pair semantics as [`MetricSpace::count_within`].
    fn neighbors_within(&self, v: PointId, candidates: &[u32], tau: f64, out: &mut Vec<u32>) {
        out.clear();
        out.extend(
            candidates
                .iter()
                .copied()
                .filter(|&c| self.within(v, PointId(c), tau)),
        );
    }

    /// Multi-query threshold count: `result[i]` is how many of `candidates`
    /// are within `tau` of `vs[i]` — exactly
    /// [`MetricSpace::count_within`]`(vs[i], candidates, tau)`, query by
    /// query. The hot loops of Algorithms 3–5 evaluate *many* queries
    /// against one shared candidate set; this entry point hands the whole
    /// batch to the space at once so coordinate-backed implementations can
    /// tile candidates through cache across queries (see `EuclideanSpace`)
    /// instead of re-streaming the buffer per query.
    ///
    /// The default is the per-query loop, fanned out over fixed query
    /// chunks on the worker pool for large grids; chunk splits depend on
    /// counts only and rows concatenate in query order, so the output is
    /// identical at every thread count.
    fn count_within_many(&self, vs: &[u32], candidates: &[u32], tau: f64) -> Vec<usize> {
        let run = |qs: &[u32]| -> Vec<usize> {
            qs.iter()
                .map(|&v| self.count_within(PointId(v), candidates, tau))
                .collect()
        };
        if par_bulk_pairs(vs.len(), candidates.len()) {
            par_query_chunks(vs, run)
        } else {
            run(vs)
        }
    }

    /// Multi-query threshold filter: `result[i]` is the ordered neighbor
    /// list [`MetricSpace::neighbors_within`] would produce for `vs[i]`.
    /// Same batching rationale and determinism contract as
    /// [`MetricSpace::count_within_many`].
    fn neighbors_within_many(&self, vs: &[u32], candidates: &[u32], tau: f64) -> Vec<Vec<u32>> {
        let run = |qs: &[u32]| -> Vec<Vec<u32>> {
            let mut out = Vec::new();
            qs.iter()
                .map(|&v| {
                    self.neighbors_within(PointId(v), candidates, tau, &mut out);
                    out.clone()
                })
                .collect()
        };
        if par_bulk_pairs(vs.len(), candidates.len()) {
            par_query_chunks(vs, run)
        } else {
            run(vs)
        }
    }

    /// Bulk distance fill: clears `out` and appends `dist(v, c)` for every
    /// candidate `c`, in candidate order, **bit-identical** to the per-pair
    /// [`MetricSpace::dist`] loop. Distance-*returning* consumers (GMM's
    /// relaxation, the ladder memo's miss fills, set-distance helpers) ride
    /// this instead of the threshold kernels: they need the actual values,
    /// so implementations must use the same floating-point evaluation as
    /// `dist` — not an algebraic rearrangement (see DESIGN.md §6.2).
    ///
    /// The default fills per pair, fanning fixed candidate chunks across
    /// the worker pool past the [`par_bulk`] gate; chunks concatenate in
    /// order, so the filled vector is identical at every thread count.
    fn dists_into(&self, v: PointId, candidates: &[u32], out: &mut Vec<f64>) {
        out.clear();
        if par_bulk(candidates.len()) {
            let parts: Vec<Vec<f64>> = candidates
                .par_chunks(par_chunk_size(candidates.len()))
                .map(|chunk| chunk.iter().map(|&c| self.dist(v, PointId(c))).collect())
                .collect();
            for part in parts {
                out.extend(part);
            }
        } else {
            out.extend(candidates.iter().map(|&c| self.dist(v, PointId(c))));
        }
    }

    /// `d(p, S) = min_{s in S} d(p, s)`; `f64::INFINITY` when `S` is empty.
    /// The bulk entry point behind [`dist_point_to_set`]: coordinate-backed
    /// spaces override it to scan flat storage without per-pair `PointId`
    /// indirection (and, for L2, to defer the `sqrt` to the winning
    /// minimum — a monotone map, so the result is bit-identical to the
    /// per-pair fold).
    fn dist_to_set(&self, p: PointId, set: &[PointId]) -> f64 {
        set.iter()
            .map(|&s| self.dist(p, s))
            .fold(f64::INFINITY, f64::min)
    }

    /// Multi-τ threshold count: `result[j]` is exactly
    /// [`MetricSpace::count_within`]`(v, candidates, taus[j])`, for a
    /// **monotone non-decreasing** batch of finite thresholds (the ladder's
    /// rung schedule). One candidate pass classifies each candidate into
    /// its *entry rung* — the first rung that admits it — and the per-rung
    /// counts fall out as a prefix sum, so `|taus|` rungs cost one scan
    /// instead of `|taus|`.
    ///
    /// The entry-rung representation is sound because every implementation's
    /// `within` answers `dist <= τ`, which is monotone in τ: once a
    /// candidate is admitted it stays admitted at every larger rung.
    /// Verdicts per rung are bit-identical to the scalar kernel's (the
    /// consistency proptests pin this for every space in the crate).
    fn count_within_taus(&self, v: PointId, candidates: &[u32], taus: &[f64]) -> Vec<usize> {
        debug_assert!(
            taus.windows(2).all(|w| w[0] <= w[1]),
            "count_within_taus requires non-decreasing thresholds"
        );
        let mut counts = vec![0usize; taus.len()];
        for &c in candidates {
            let mut j = 0;
            while j < taus.len() && !self.within(v, PointId(c), taus[j]) {
                j += 1;
            }
            if j < taus.len() {
                counts[j] += 1;
            }
        }
        for j in 1..counts.len() {
            counts[j] += counts[j - 1];
        }
        counts
    }

    /// Multi-τ threshold filter: `result[j]` is the ordered neighbor list
    /// [`MetricSpace::neighbors_within`] would produce at `taus[j]`. Same
    /// monotone-batch contract and entry-rung argument as
    /// [`MetricSpace::count_within_taus`]; each per-rung list preserves
    /// candidate order exactly.
    fn neighbors_within_taus(&self, v: PointId, candidates: &[u32], taus: &[f64]) -> Vec<Vec<u32>> {
        debug_assert!(
            taus.windows(2).all(|w| w[0] <= w[1]),
            "neighbors_within_taus requires non-decreasing thresholds"
        );
        // (candidate, entry rung) for candidates admitted by some rung,
        // in candidate order.
        let mut entries: Vec<(u32, u32)> = Vec::new();
        for &c in candidates {
            let mut j = 0;
            while j < taus.len() && !self.within(v, PointId(c), taus[j]) {
                j += 1;
            }
            if j < taus.len() {
                entries.push((c, j as u32));
            }
        }
        (0..taus.len())
            .map(|j| {
                entries
                    .iter()
                    .filter(|&&(_, e)| e as usize <= j)
                    .map(|&(c, _)| c)
                    .collect()
            })
            .collect()
    }

    /// Snapshot of the space's fast-path kernel tallies, when it keeps
    /// any. The default is `None`: purely oracle-backed spaces have no
    /// SIMD kernels to count. Wrappers forward to their inner space so
    /// the counters surface through memoization and instrumentation
    /// layers (see `Telemetry` in `mpc-core`).
    fn kernel_stats(&self) -> Option<KernelStats> {
        None
    }
}

/// Cumulative fast-path kernel hit counts for one metric space — which
/// SIMD classifier each pair went through, how many pairs the sketch
/// certified away, and how often the banded estimate had to fall back to
/// the exact evaluation. Pure observability: tallies never influence any
/// verdict. All counts are in pairs.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct KernelStats {
    /// Pairs classified by the single-τ contiguous-run kernel
    /// (`classify_f32_run`).
    pub run_pairs: u64,
    /// Pairs classified by the single-τ indexed kernel
    /// (`classify_f32_indexed`).
    pub indexed_pairs: u64,
    /// Pairs classified by the multi-τ contiguous-run kernel
    /// (`classify_f32_run_taus`).
    pub taus_run_pairs: u64,
    /// Pairs classified by the multi-τ indexed kernel
    /// (`classify_f32_indexed_taus`).
    pub taus_indexed_pairs: u64,
    /// Pairs the sketch sieve certified as rejects (no dot computed).
    pub sketch_rejects: u64,
    /// Pairs re-decided by the exact f64 evaluation after a band hit.
    pub exact_fallbacks: u64,
    /// Occupied cells across every `GridIndex` built (grid engine only).
    pub grid_cells: u64,
    /// Stencil cell lookups answered by grid queries (≤ 3^d per query,
    /// empty lookups included).
    pub grid_stencil_cells: u64,
    /// Candidate pairs surfaced by stencil scans — the exact distance
    /// checks the grid engine performs instead of an all-pairs scan.
    pub grid_pairs: u64,
}

impl KernelStats {
    /// Total pairs the fast-path classifiers judged (excluding
    /// sketch-rejected pairs, which never reach a classifier).
    pub fn classified_pairs(&self) -> u64 {
        self.run_pairs + self.indexed_pairs + self.taus_run_pairs + self.taus_indexed_pairs
    }

    /// Folds another tally into this one field-by-field — used to combine
    /// a space's own counters with an engine's grid-side tallies.
    pub fn merge(&mut self, other: &KernelStats) {
        self.run_pairs += other.run_pairs;
        self.indexed_pairs += other.indexed_pairs;
        self.taus_run_pairs += other.taus_run_pairs;
        self.taus_indexed_pairs += other.taus_indexed_pairs;
        self.sketch_rejects += other.sketch_rejects;
        self.exact_fallbacks += other.exact_fallbacks;
        self.grid_cells += other.grid_cells;
        self.grid_stencil_cells += other.grid_stencil_cells;
        self.grid_pairs += other.grid_pairs;
    }
}

impl<M: MetricSpace + ?Sized> MetricSpace for &M {
    fn n(&self) -> usize {
        (**self).n()
    }
    fn dist(&self, i: PointId, j: PointId) -> f64 {
        (**self).dist(i, j)
    }
    fn point_weight(&self) -> u64 {
        (**self).point_weight()
    }
    fn within(&self, i: PointId, j: PointId, tau: f64) -> bool {
        (**self).within(i, j, tau)
    }
    fn count_within(&self, v: PointId, candidates: &[u32], tau: f64) -> usize {
        (**self).count_within(v, candidates, tau)
    }
    fn neighbors_within(&self, v: PointId, candidates: &[u32], tau: f64, out: &mut Vec<u32>) {
        (**self).neighbors_within(v, candidates, tau, out)
    }
    fn count_within_many(&self, vs: &[u32], candidates: &[u32], tau: f64) -> Vec<usize> {
        (**self).count_within_many(vs, candidates, tau)
    }
    fn neighbors_within_many(&self, vs: &[u32], candidates: &[u32], tau: f64) -> Vec<Vec<u32>> {
        (**self).neighbors_within_many(vs, candidates, tau)
    }
    fn dists_into(&self, v: PointId, candidates: &[u32], out: &mut Vec<f64>) {
        (**self).dists_into(v, candidates, out)
    }
    fn dist_to_set(&self, p: PointId, set: &[PointId]) -> f64 {
        (**self).dist_to_set(p, set)
    }
    fn count_within_taus(&self, v: PointId, candidates: &[u32], taus: &[f64]) -> Vec<usize> {
        (**self).count_within_taus(v, candidates, taus)
    }
    fn neighbors_within_taus(&self, v: PointId, candidates: &[u32], taus: &[f64]) -> Vec<Vec<u32>> {
        (**self).neighbors_within_taus(v, candidates, taus)
    }
    fn kernel_stats(&self) -> Option<KernelStats> {
        (**self).kernel_stats()
    }
}

/// `d(p, S) = min_{s in S} d(p, s)`; `f64::INFINITY` when `S` is empty.
/// Routed through [`MetricSpace::dist_to_set`] so coordinate-backed spaces
/// apply their bulk specializations.
pub fn dist_point_to_set<M: MetricSpace + ?Sized>(metric: &M, p: PointId, set: &[PointId]) -> f64 {
    metric.dist_to_set(p, set)
}

/// `r(X, Y) = max_{x in X} d(x, Y)` — the covering radius of `X` by `Y`
/// (paper §6.1). Returns 0 for empty `X` and `f64::INFINITY` for empty `Y`
/// with non-empty `X`. Each `d(x, Y)` goes through the bulk
/// [`MetricSpace::dist_to_set`] kernel; large `|X| × |Y|` grids fan fixed
/// chunks of `X` across the worker pool, and the chunked `max` fold equals
/// the sequential fold exactly (`f64::max` is associative on the
/// non-negative distances involved).
pub fn dist_set_to_set<M: MetricSpace + ?Sized>(metric: &M, xs: &[PointId], ys: &[PointId]) -> f64 {
    if par_bulk_pairs(xs.len(), ys.len()) {
        let chunk = xs.len().div_ceil(rayon::pool::MAX_CHUNKS).max(1);
        xs.par_chunks(chunk)
            .map(|part| {
                part.iter()
                    .map(|&x| metric.dist_to_set(x, ys))
                    .fold(0.0, f64::max)
            })
            .collect::<Vec<f64>>()
            .into_iter()
            .fold(0.0, f64::max)
    } else {
        xs.iter()
            .map(|&x| metric.dist_to_set(x, ys))
            .fold(0.0, f64::max)
    }
}

/// `div(S)`: minimum pairwise distance in `S` (paper §2.1).
/// Returns `f64::INFINITY` when `|S| < 2`.
pub fn min_pairwise_distance<M: MetricSpace + ?Sized>(metric: &M, set: &[PointId]) -> f64 {
    let mut best = f64::INFINITY;
    for (a, &i) in set.iter().enumerate() {
        for &j in &set[a + 1..] {
            let d = metric.dist(i, j);
            if d < best {
                best = d;
            }
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::euclidean::EuclideanSpace;
    use crate::point::PointSet;

    fn line_space() -> EuclideanSpace {
        // Points at x = 0, 1, 3, 7 on a line.
        EuclideanSpace::new(PointSet::from_rows(&[
            vec![0.0],
            vec![1.0],
            vec![3.0],
            vec![7.0],
        ]))
    }

    #[test]
    fn point_to_set_minimizes() {
        let m = line_space();
        let set = [PointId(0), PointId(2)];
        assert_eq!(dist_point_to_set(&m, PointId(1), &set), 1.0);
        assert_eq!(dist_point_to_set(&m, PointId(3), &set), 4.0);
    }

    #[test]
    fn point_to_empty_set_is_infinite() {
        let m = line_space();
        assert_eq!(dist_point_to_set(&m, PointId(0), &[]), f64::INFINITY);
    }

    #[test]
    fn set_to_set_is_covering_radius() {
        let m = line_space();
        // r({0,1,3,7}, {1}) = max distance to x=1 is 6 (point at 7).
        let all = [PointId(0), PointId(1), PointId(2), PointId(3)];
        assert_eq!(dist_set_to_set(&m, &all, &[PointId(1)]), 6.0);
        assert_eq!(dist_set_to_set(&m, &[], &[PointId(1)]), 0.0);
    }

    #[test]
    fn diversity_is_min_pairwise() {
        let m = line_space();
        let all = [PointId(0), PointId(1), PointId(2), PointId(3)];
        assert_eq!(min_pairwise_distance(&m, &all), 1.0);
        assert_eq!(min_pairwise_distance(&m, &[PointId(0), PointId(3)]), 7.0);
        assert_eq!(min_pairwise_distance(&m, &[PointId(0)]), f64::INFINITY);
    }

    #[test]
    fn within_matches_threshold_adjacency() {
        let m = line_space();
        assert!(m.within(PointId(0), PointId(1), 1.0)); // d = 1 <= 1
        assert!(!m.within(PointId(0), PointId(2), 2.9)); // d = 3 > 2.9
    }
}
