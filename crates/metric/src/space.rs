//! The distance-oracle trait and common set-distance helpers.

use crate::point::PointId;
use rayon::prelude::*;

/// Minimum candidate-batch size before a bulk kernel fans out across the
/// worker pool. Below this the pool's publish/claim overhead (an op push,
/// a condvar wake, one atomic per chunk) is on the order of the scan
/// itself; above it the scan cost dominates.
pub const PAR_MIN_BULK: usize = 4096;

/// Whether a bulk kernel over `n_candidates` items should take its
/// parallel path: the batch is at least [`PAR_MIN_BULK`] *and* the calling
/// thread's effective pool width exceeds 1. At `threads = 1` kernels never
/// enter the chunked path, so the single-thread mode runs the exact
/// sequential scans it always has.
pub fn par_bulk(n_candidates: usize) -> bool {
    n_candidates >= PAR_MIN_BULK && rayon::current_num_threads() > 1
}

/// Gate for kernels that scan a `rows × cols` pair grid (e.g.
/// `degrees_among`): parallelize over rows only when there are at least
/// two and the grid is big enough to amortize the op overhead.
pub fn par_bulk_pairs(rows: usize, cols: usize) -> bool {
    rows >= 2 && rows.saturating_mul(cols) >= PAR_MIN_BULK && rayon::current_num_threads() > 1
}

/// Chunk size the parallel kernels split candidate batches into: an even
/// split over the pool's fixed [`rayon::pool::MAX_CHUNKS`], floored at
/// 1024 items so the tail chunks stay worth claiming. A function of the
/// item count **only** — the same batch splits identically at every
/// thread count ≥ 2, which (with associative combines) is what keeps
/// kernel outputs bit-for-bit reproducible across pool sizes.
pub fn par_chunk_size(n_candidates: usize) -> usize {
    n_candidates.div_ceil(rayon::pool::MAX_CHUNKS).max(1024)
}

/// Runs `chunk_kernel` over fixed-size chunks of `candidates` on the
/// worker pool and sums the per-chunk counts. Counts are exact integers,
/// so the chunked sum equals the sequential count no matter how chunks
/// were scheduled. Callers gate on [`par_bulk`] first.
pub fn par_count_chunks(
    candidates: &[u32],
    chunk_kernel: impl Fn(&[u32]) -> usize + Sync,
) -> usize {
    candidates
        .par_chunks(par_chunk_size(candidates.len()))
        .map(chunk_kernel)
        .sum()
}

/// Filter twin of [`par_count_chunks`]: runs `chunk_kernel` over fixed
/// chunks and concatenates the surviving ids in chunk order, preserving
/// candidate order exactly as the sequential filter would.
pub fn par_filter_chunks(
    candidates: &[u32],
    out: &mut Vec<u32>,
    chunk_kernel: impl Fn(&[u32]) -> Vec<u32> + Sync,
) {
    let parts: Vec<Vec<u32>> = candidates
        .par_chunks(par_chunk_size(candidates.len()))
        .map(chunk_kernel)
        .collect();
    for part in parts {
        out.extend(part);
    }
}

/// A finite metric space with an O(1) distance oracle, mirroring the paper's
/// model (§2): "the distance between any two points in the space can be
/// obtained in O(1) time".
///
/// Implementations must satisfy the metric axioms on the id range
/// `0..n()`:
///
/// * identity: `dist(i, i) == 0`;
/// * symmetry: `dist(i, j) == dist(j, i)`;
/// * triangle inequality: `dist(i, k) <= dist(i, j) + dist(j, k)`.
///
/// [`crate::validate::check_metric_axioms`] spot-checks these on samples;
/// the property-based tests in this crate exercise them exhaustively on
/// small instances.
pub trait MetricSpace: Sync {
    /// Number of points in the space.
    fn n(&self) -> usize;

    /// Distance between points `i` and `j`.
    fn dist(&self, i: PointId, j: PointId) -> f64;

    /// Communication weight of shipping one point between machines, in
    /// abstract machine words. Euclidean points weigh their dimension;
    /// id-only metrics weigh 1.
    fn point_weight(&self) -> u64 {
        1
    }

    /// True iff `dist(i, j) <= tau`, i.e. `i` and `j` are adjacent in the
    /// threshold graph `G_tau`.
    #[inline]
    fn within(&self, i: PointId, j: PointId, tau: f64) -> bool {
        self.dist(i, j) <= tau
    }

    /// Batched threshold count: how many of `candidates` are within `tau`
    /// of `v`. Pure oracle semantics — a candidate equal to `v` counts
    /// whenever `within(v, v, tau)` does (graph layers subtract self-loops
    /// themselves).
    ///
    /// The default is the scalar loop; coordinate-backed spaces override it
    /// with kernels that stream the flat storage directly (see
    /// `EuclideanSpace` and `MatrixSpace`), which is where the hot
    /// adjacency scans of Algorithms 3–5 spend their time.
    fn count_within(&self, v: PointId, candidates: &[u32], tau: f64) -> usize {
        candidates
            .iter()
            .filter(|&&c| self.within(v, PointId(c), tau))
            .count()
    }

    /// Batched threshold filter: appends to `out` (after clearing it) every
    /// candidate within `tau` of `v`, preserving candidate order. Same
    /// self-pair semantics as [`MetricSpace::count_within`].
    fn neighbors_within(&self, v: PointId, candidates: &[u32], tau: f64, out: &mut Vec<u32>) {
        out.clear();
        out.extend(
            candidates
                .iter()
                .copied()
                .filter(|&c| self.within(v, PointId(c), tau)),
        );
    }
}

impl<M: MetricSpace + ?Sized> MetricSpace for &M {
    fn n(&self) -> usize {
        (**self).n()
    }
    fn dist(&self, i: PointId, j: PointId) -> f64 {
        (**self).dist(i, j)
    }
    fn point_weight(&self) -> u64 {
        (**self).point_weight()
    }
    fn within(&self, i: PointId, j: PointId, tau: f64) -> bool {
        (**self).within(i, j, tau)
    }
    fn count_within(&self, v: PointId, candidates: &[u32], tau: f64) -> usize {
        (**self).count_within(v, candidates, tau)
    }
    fn neighbors_within(&self, v: PointId, candidates: &[u32], tau: f64, out: &mut Vec<u32>) {
        (**self).neighbors_within(v, candidates, tau, out)
    }
}

/// `d(p, S) = min_{s in S} d(p, s)`; `f64::INFINITY` when `S` is empty.
pub fn dist_point_to_set<M: MetricSpace + ?Sized>(metric: &M, p: PointId, set: &[PointId]) -> f64 {
    set.iter()
        .map(|&s| metric.dist(p, s))
        .fold(f64::INFINITY, f64::min)
}

/// `r(X, Y) = max_{x in X} d(x, Y)` — the covering radius of `X` by `Y`
/// (paper §6.1). Returns 0 for empty `X` and `f64::INFINITY` for empty `Y`
/// with non-empty `X`.
pub fn dist_set_to_set<M: MetricSpace + ?Sized>(metric: &M, xs: &[PointId], ys: &[PointId]) -> f64 {
    xs.iter()
        .map(|&x| dist_point_to_set(metric, x, ys))
        .fold(0.0, f64::max)
}

/// `div(S)`: minimum pairwise distance in `S` (paper §2.1).
/// Returns `f64::INFINITY` when `|S| < 2`.
pub fn min_pairwise_distance<M: MetricSpace + ?Sized>(metric: &M, set: &[PointId]) -> f64 {
    let mut best = f64::INFINITY;
    for (a, &i) in set.iter().enumerate() {
        for &j in &set[a + 1..] {
            let d = metric.dist(i, j);
            if d < best {
                best = d;
            }
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::euclidean::EuclideanSpace;
    use crate::point::PointSet;

    fn line_space() -> EuclideanSpace {
        // Points at x = 0, 1, 3, 7 on a line.
        EuclideanSpace::new(PointSet::from_rows(&[
            vec![0.0],
            vec![1.0],
            vec![3.0],
            vec![7.0],
        ]))
    }

    #[test]
    fn point_to_set_minimizes() {
        let m = line_space();
        let set = [PointId(0), PointId(2)];
        assert_eq!(dist_point_to_set(&m, PointId(1), &set), 1.0);
        assert_eq!(dist_point_to_set(&m, PointId(3), &set), 4.0);
    }

    #[test]
    fn point_to_empty_set_is_infinite() {
        let m = line_space();
        assert_eq!(dist_point_to_set(&m, PointId(0), &[]), f64::INFINITY);
    }

    #[test]
    fn set_to_set_is_covering_radius() {
        let m = line_space();
        // r({0,1,3,7}, {1}) = max distance to x=1 is 6 (point at 7).
        let all = [PointId(0), PointId(1), PointId(2), PointId(3)];
        assert_eq!(dist_set_to_set(&m, &all, &[PointId(1)]), 6.0);
        assert_eq!(dist_set_to_set(&m, &[], &[PointId(1)]), 0.0);
    }

    #[test]
    fn diversity_is_min_pairwise() {
        let m = line_space();
        let all = [PointId(0), PointId(1), PointId(2), PointId(3)];
        assert_eq!(min_pairwise_distance(&m, &all), 1.0);
        assert_eq!(min_pairwise_distance(&m, &[PointId(0), PointId(3)]), 7.0);
        assert_eq!(min_pairwise_distance(&m, &[PointId(0)]), f64::INFINITY);
    }

    #[test]
    fn within_matches_threshold_adjacency() {
        let m = line_space();
        assert!(m.within(PointId(0), PointId(1), 1.0)); // d = 1 <= 1
        assert!(!m.within(PointId(0), PointId(2), 2.9)); // d = 3 > 2.9
    }
}
