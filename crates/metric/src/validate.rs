//! Sampling-based metric-axiom checker.
//!
//! The algorithms' guarantees hold only in genuine metric spaces; this
//! module lets tests and examples assert that a custom oracle behaves like
//! one without paying O(n³) on large inputs.

use rand::{RngExt, SeedableRng};
use rand_chacha::ChaCha8Rng;

use crate::point::PointId;
use crate::space::MetricSpace;

/// A detected violation of the metric axioms.
#[derive(Debug, Clone, PartialEq)]
pub enum MetricViolation {
    /// `dist(i, i) != 0`.
    Identity { i: PointId, got: f64 },
    /// `dist(i, j) != dist(j, i)`.
    Symmetry {
        i: PointId,
        j: PointId,
        forward: f64,
        backward: f64,
    },
    /// `dist(i, k) > dist(i, j) + dist(j, k)` beyond tolerance.
    Triangle {
        i: PointId,
        j: PointId,
        k: PointId,
        direct: f64,
        via: f64,
    },
    /// A distance is negative or non-finite.
    Invalid { i: PointId, j: PointId, got: f64 },
}

impl std::fmt::Display for MetricViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Identity { i, got } => write!(f, "d({i},{i}) = {got}, expected 0"),
            Self::Symmetry {
                i,
                j,
                forward,
                backward,
            } => {
                write!(f, "d({i},{j}) = {forward} but d({j},{i}) = {backward}")
            }
            Self::Triangle {
                i,
                j,
                k,
                direct,
                via,
            } => {
                write!(f, "d({i},{k}) = {direct} > d({i},{j}) + d({j},{k}) = {via}")
            }
            Self::Invalid { i, j, got } => write!(f, "d({i},{j}) = {got} is not a distance"),
        }
    }
}

/// Checks the metric axioms on `samples` random triples (and the full
/// diagonal when `n` is small). Returns the first violation found, if any.
///
/// `tolerance` absorbs floating-point slack in the triangle inequality;
/// `1e-9` relative is appropriate for double-precision coordinate metrics.
pub fn check_metric_axioms<M: MetricSpace + ?Sized>(
    metric: &M,
    samples: usize,
    tolerance: f64,
    seed: u64,
) -> Option<MetricViolation> {
    let n = metric.n();
    if n == 0 {
        return None;
    }
    let mut rng = ChaCha8Rng::seed_from_u64(seed);

    // Identity on the diagonal: exhaustive when affordable, sampled otherwise.
    let diagonal: Vec<usize> = if n <= samples {
        (0..n).collect()
    } else {
        (0..samples).map(|_| rng.random_range(0..n)).collect()
    };
    for i in diagonal {
        let i = PointId::from(i);
        let d = metric.dist(i, i);
        if d != 0.0 {
            return Some(MetricViolation::Identity { i, got: d });
        }
    }

    for _ in 0..samples {
        let i = PointId::from(rng.random_range(0..n));
        let j = PointId::from(rng.random_range(0..n));
        let k = PointId::from(rng.random_range(0..n));
        let dij = metric.dist(i, j);
        let dji = metric.dist(j, i);
        let djk = metric.dist(j, k);
        let dik = metric.dist(i, k);
        for (&a, &b, &d) in [(&i, &j, &dij), (&j, &k, &djk), (&i, &k, &dik)] {
            if !d.is_finite() || d < 0.0 {
                return Some(MetricViolation::Invalid { i: a, j: b, got: d });
            }
        }
        if (dij - dji).abs() > tolerance * (1.0 + dij.abs()) {
            return Some(MetricViolation::Symmetry {
                i,
                j,
                forward: dij,
                backward: dji,
            });
        }
        let via = dij + djk;
        if dik > via + tolerance * (1.0 + via.abs()) {
            return Some(MetricViolation::Triangle {
                i,
                j,
                k,
                direct: dik,
                via,
            });
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::MatrixSpace;
    use crate::{datasets, EuclideanSpace};

    #[test]
    fn euclidean_passes() {
        let m = EuclideanSpace::new(datasets::uniform_cube(100, 4, 11));
        assert_eq!(check_metric_axioms(&m, 500, 1e-9, 1), None);
    }

    #[test]
    fn catches_triangle_violation() {
        // A "metric" where one long edge breaks the triangle inequality.
        let bad = MatrixSpace::new(3, vec![0.0, 1.0, 10.0, 1.0, 0.0, 1.0, 10.0, 1.0, 0.0]).unwrap();
        let v = check_metric_axioms(&bad, 1000, 1e-9, 1);
        assert!(
            matches!(v, Some(MetricViolation::Triangle { .. })),
            "got {v:?}"
        );
    }

    #[test]
    fn empty_space_is_fine() {
        struct Empty;
        impl MetricSpace for Empty {
            fn n(&self) -> usize {
                0
            }
            fn dist(&self, _: PointId, _: PointId) -> f64 {
                unreachable!()
            }
        }
        assert_eq!(check_metric_axioms(&Empty, 100, 1e-9, 1), None);
    }
}
