//! Property-based tests: every metric implementation satisfies the metric
//! axioms on randomly generated instances.

use mpc_metric::validate::check_metric_axioms;
use mpc_metric::{
    AngularSpace, ChebyshevSpace, EditDistanceSpace, EuclideanSpace, HammingSpace, JaccardSpace,
    ManhattanSpace, MatrixSpace, MetricSpace, PointId, PointSet,
};
use proptest::prelude::*;

fn arb_rows(max_n: usize, dim: usize) -> impl Strategy<Value = Vec<Vec<f64>>> {
    prop::collection::vec(prop::collection::vec(-100.0f64..100.0, dim..=dim), 2..max_n)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn coordinate_metrics_satisfy_axioms(rows in arb_rows(30, 3), seed in any::<u64>()) {
        let ps = PointSet::from_rows(&rows);
        let n = ps.len();
        prop_assert_eq!(
            check_metric_axioms(&EuclideanSpace::new(ps.clone()), 4 * n * n, 1e-9, seed),
            None
        );
        prop_assert_eq!(
            check_metric_axioms(&ManhattanSpace::new(ps.clone()), 4 * n * n, 1e-9, seed),
            None
        );
        prop_assert_eq!(
            check_metric_axioms(&ChebyshevSpace::new(ps), 4 * n * n, 1e-9, seed),
            None
        );
    }

    #[test]
    fn angular_metric_satisfies_axioms(rows in arb_rows(25, 3), seed in any::<u64>()) {
        // Shift coordinates to be strictly positive so no vector is zero.
        let shifted: Vec<Vec<f64>> = rows
            .iter()
            .map(|r| r.iter().map(|c| c.abs() + 0.5).collect())
            .collect();
        let m = AngularSpace::new(PointSet::from_rows(&shifted));
        prop_assert_eq!(check_metric_axioms(&m, 3000, 1e-8, seed), None);
    }

    #[test]
    fn bitset_metrics_satisfy_axioms(
        masks in prop::collection::vec(prop::collection::vec(any::<bool>(), 48), 2..25),
        seed in any::<u64>(),
    ) {
        let n = masks.len();
        let bits: Vec<Vec<usize>> = masks
            .iter()
            .map(|row| row.iter().enumerate().filter(|(_, &b)| b).map(|(i, _)| i).collect())
            .collect();
        let h = HammingSpace::from_set_bits(n, 48, &bits);
        prop_assert_eq!(check_metric_axioms(&h, 4000, 1e-9, seed), None);
        let j = JaccardSpace::from_set_bits(n, 48, &bits);
        prop_assert_eq!(check_metric_axioms(&j, 4000, 1e-9, seed), None);
    }

    #[test]
    fn edit_distance_satisfies_axioms(
        words in prop::collection::vec("[a-d]{0,8}", 2..15),
        seed in any::<u64>(),
    ) {
        let m = EditDistanceSpace::new(&words);
        prop_assert_eq!(check_metric_axioms(&m, 2500, 1e-9, seed), None);
    }

    /// Building a MatrixSpace from any of the concrete metrics round-trips
    /// the distances exactly.
    #[test]
    fn matrix_space_round_trips(rows in arb_rows(15, 2)) {
        let ps = PointSet::from_rows(&rows);
        let n = ps.len();
        let e = EuclideanSpace::new(ps);
        let m = MatrixSpace::from_fn(n, |i, j| {
            e.dist(PointId(i as u32), PointId(j as u32))
        }).unwrap();
        for i in 0..n as u32 {
            for j in 0..n as u32 {
                prop_assert_eq!(m.dist(PointId(i), PointId(j)), e.dist(PointId(i), PointId(j)));
            }
        }
    }
}
