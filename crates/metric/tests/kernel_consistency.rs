//! Property-based tests: for **every** [`MetricSpace`] implementation the
//! batched threshold kernels (`count_within` / `neighbors_within`) agree
//! exactly with the scalar oracle (`within`), and the scalar oracle agrees
//! with `dist(i, j) <= tau` away from floating-point threshold boundaries.
//!
//! This pins the contract the graph layer relies on: `ThresholdGraph`
//! answers `degree_among` through `count_within`, so a kernel that drifted
//! from the scalar path would silently change every algorithm built on it.

use mpc_metric::{
    AngularSpace, ChebyshevSpace, CountingSpace, EditDistanceSpace, EuclideanSpace,
    GraphMetricSpace, HammingSpace, JaccardSpace, ManhattanSpace, MatrixSpace, MetricSpace,
    PointId, PointSet,
};
use proptest::prelude::*;

/// Thresholds worth probing: below zero, zero, and for a sample of actual
/// distances both the exact value and `±1e-9`-relative nudges. The exact
/// values exercise tie handling inside each space's own comparison; the
/// nudged values sit far enough (≫ 1 ulp) from every boundary that the
/// `within ⇔ dist <= tau` cross-check is well-posed even for spaces whose
/// `within` uses an algebraically equal but differently-rounded test
/// (`EuclideanSpace` compares squared distances).
fn probe_taus<M: MetricSpace + ?Sized>(m: &M) -> Vec<f64> {
    let n = m.n() as u32;
    let mut ds: Vec<f64> = Vec::new();
    for i in 0..n {
        for j in (i + 1)..n {
            ds.push(m.dist(PointId(i), PointId(j)));
        }
    }
    ds.sort_by(f64::total_cmp);
    let mut taus = vec![-1.0, 0.0];
    let picks = [0, ds.len() / 4, ds.len() / 2, (3 * ds.len()) / 4];
    for &p in &picks {
        if let Some(&d) = ds.get(p) {
            taus.push(d);
            taus.push(d * (1.0 - 1e-9) - 1e-12);
            taus.push(d * (1.0 + 1e-9) + 1e-12);
        }
    }
    if let Some(&d) = ds.last() {
        taus.push(d + 1.0);
    }
    taus
}

/// The invariants every implementation must satisfy, for every probed
/// vertex / candidate-set / threshold combination:
///
/// 1. `count_within == |{c : within(v, c, tau)}|` — bulk count vs scalar;
/// 2. `neighbors_within` filters by the same predicate, preserving order;
/// 3. the `&M` blanket impl forwards the kernels (not the loop defaults);
/// 4. away from threshold boundaries, `within(i, j, tau) ⇔ dist(i, j) <= tau`;
/// 5. the multi-query kernels (`count_within_many` / `neighbors_within_many`)
///    equal the per-query scalar kernels row for row, including at exact
///    boundary thresholds (for `EuclideanSpace` this exercises the Gram
///    band's exact-recompute fallback);
/// 6. `dists_into` is bitwise `dist` per candidate, and `dist_to_set` is
///    bitwise the min-fold of `dist` over the set (`INFINITY` on empty);
/// 7. the multi-τ kernels (`count_within_taus` / `neighbors_within_taus`)
///    over the full sorted probe batch equal the per-τ kernels rung for
///    rung — including exact boundary thresholds, negative rungs, and
///    duplicated rungs (for `EuclideanSpace` this exercises the one-pass
///    entry-rung classification against the Gram band).
fn check_kernels<M: MetricSpace>(m: &M) -> Result<(), TestCaseError> {
    let n = m.n() as u32;
    let all: Vec<u32> = (0..n).collect();
    let evens: Vec<u32> = (0..n).step_by(2).collect();
    let with_dup: Vec<u32> = {
        let mut v = vec![0u32, 0];
        v.extend((0..n).rev());
        v
    };
    let empty: Vec<u32> = Vec::new();
    let probes: Vec<u32> = vec![0, n / 2, n - 1];
    // (6) — τ-independent, so checked once per candidate set.
    for &v in &probes {
        let v = PointId(v);
        for cands in [&all, &evens, &with_dup, &empty] {
            let mut bulk = Vec::new();
            m.dists_into(v, cands, &mut bulk);
            prop_assert_eq!(bulk.len(), cands.len());
            for (&c, &d) in cands.iter().zip(&bulk) {
                prop_assert_eq!(
                    d.to_bits(),
                    m.dist(v, PointId(c)).to_bits(),
                    "dists_into vs dist: v={:?} c={}",
                    v,
                    c
                );
            }
            let ids: Vec<PointId> = cands.iter().map(|&c| PointId(c)).collect();
            let scalar_min = ids
                .iter()
                .map(|&c| m.dist(v, c))
                .fold(f64::INFINITY, f64::min);
            prop_assert_eq!(
                m.dist_to_set(v, &ids).to_bits(),
                scalar_min.to_bits(),
                "dist_to_set vs min-fold: v={:?} |set|={}",
                v,
                ids.len()
            );
        }
    }
    // (7) — the multi-τ kernels over the whole sorted probe batch. The
    // kernels require non-decreasing thresholds (`probe_taus` is not
    // sorted), and `total_cmp` keeps duplicates adjacent.
    {
        let mut batch = probe_taus(m);
        batch.sort_by(f64::total_cmp);
        for &v in &probes {
            let v = PointId(v);
            for cands in [&all, &evens, &with_dup, &empty] {
                let per_tau_counts: Vec<usize> = batch
                    .iter()
                    .map(|&tau| m.count_within(v, cands, tau))
                    .collect();
                prop_assert_eq!(
                    m.count_within_taus(v, cands, &batch),
                    per_tau_counts,
                    "count_within_taus vs per-τ: v={:?} |cands|={}",
                    v,
                    cands.len()
                );
                let rows = m.neighbors_within_taus(v, cands, &batch);
                prop_assert_eq!(rows.len(), batch.len());
                for (&tau, row) in batch.iter().zip(&rows) {
                    let mut per = Vec::new();
                    m.neighbors_within(v, cands, tau, &mut per);
                    prop_assert_eq!(
                        row,
                        &per,
                        "neighbors_within_taus vs per-τ: v={:?} tau={}",
                        v,
                        tau
                    );
                }
                let fwd = &m;
                prop_assert_eq!(fwd.count_within_taus(v, cands, &batch), per_tau_counts);
            }
        }
    }
    for tau in probe_taus(m) {
        // (5) — the whole probe batch against every candidate set.
        for cands in [&all, &evens, &with_dup, &empty] {
            let scalar_counts: Vec<usize> = probes
                .iter()
                .map(|&v| m.count_within(PointId(v), cands, tau))
                .collect();
            prop_assert_eq!(
                m.count_within_many(&probes, cands, tau),
                scalar_counts,
                "count_within_many vs per-query: tau={} |cands|={}",
                tau,
                cands.len()
            );
            let many = m.neighbors_within_many(&probes, cands, tau);
            prop_assert_eq!(many.len(), probes.len());
            for (&v, row) in probes.iter().zip(&many) {
                let mut per = Vec::new();
                m.neighbors_within(PointId(v), cands, tau, &mut per);
                prop_assert_eq!(
                    row,
                    &per,
                    "neighbors_within_many vs per-query: v={} tau={}",
                    v,
                    tau
                );
            }
        }
        let exact_boundary = (0..n)
            .flat_map(|i| ((i + 1)..n).map(move |j| (i, j)))
            .any(|(i, j)| m.dist(PointId(i), PointId(j)) == tau);
        for &v in &probes {
            let v = PointId(v);
            for cands in [&all, &evens, &with_dup, &empty] {
                let scalar: Vec<u32> = cands
                    .iter()
                    .copied()
                    .filter(|&c| m.within(v, PointId(c), tau))
                    .collect();
                prop_assert_eq!(
                    m.count_within(v, cands, tau),
                    scalar.len(),
                    "count_within vs scalar within: v={:?} tau={} |cands|={}",
                    v,
                    tau,
                    cands.len()
                );
                let mut bulk = Vec::new();
                m.neighbors_within(v, cands, tau, &mut bulk);
                prop_assert_eq!(
                    &bulk,
                    &scalar,
                    "neighbors_within vs scalar filter: v={:?} tau={}",
                    v,
                    tau
                );
                let fwd = &m;
                prop_assert_eq!(fwd.count_within(v, cands, tau), scalar.len());
                if !exact_boundary {
                    for &c in cands {
                        prop_assert_eq!(
                            m.within(v, PointId(c), tau),
                            m.dist(v, PointId(c)) <= tau,
                            "within vs dist<=tau: v={:?} c={} tau={}",
                            v,
                            c,
                            tau
                        );
                    }
                }
            }
        }
    }
    Ok(())
}

fn arb_rows(max_n: usize, dim: usize) -> impl Strategy<Value = Vec<Vec<f64>>> {
    prop::collection::vec(prop::collection::vec(-50.0f64..50.0, dim..=dim), 3..max_n)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn euclidean_kernels_match_scalar(rows in arb_rows(24, 3)) {
        check_kernels(&EuclideanSpace::new(PointSet::from_rows(&rows)))?;
    }

    #[test]
    fn euclidean_gram_kernels_match_scalar(rows in arb_rows(20, 18)) {
        // dim ≥ GRAM_MIN_DIM: the many-kernels take the norm-cached
        // Gram-estimate path (with the banded exact fallback) instead of
        // the tiled diff loop — both must match the scalar oracle exactly.
        check_kernels(&EuclideanSpace::new(PointSet::from_rows(&rows)))?;
    }

    #[test]
    fn minkowski_kernels_match_scalar(rows in arb_rows(20, 3)) {
        let ps = PointSet::from_rows(&rows);
        check_kernels(&ManhattanSpace::new(ps.clone()))?;
        check_kernels(&ChebyshevSpace::new(ps))?;
    }

    #[test]
    fn angular_kernels_match_scalar(rows in arb_rows(18, 3)) {
        let shifted: Vec<Vec<f64>> = rows
            .iter()
            .map(|r| r.iter().map(|c| c.abs() + 0.5).collect())
            .collect();
        check_kernels(&AngularSpace::new(PointSet::from_rows(&shifted)))?;
    }

    #[test]
    fn bitset_kernels_match_scalar(
        masks in prop::collection::vec(prop::collection::vec(any::<bool>(), 32), 3..18),
    ) {
        let n = masks.len();
        let bits: Vec<Vec<usize>> = masks
            .iter()
            .map(|row| row.iter().enumerate().filter(|(_, &b)| b).map(|(i, _)| i).collect())
            .collect();
        check_kernels(&HammingSpace::from_set_bits(n, 32, &bits))?;
        check_kernels(&JaccardSpace::from_set_bits(n, 32, &bits))?;
    }

    #[test]
    fn edit_distance_kernels_match_scalar(words in prop::collection::vec("[a-d]{0,6}", 3..12)) {
        check_kernels(&EditDistanceSpace::new(&words))?;
    }

    #[test]
    fn counting_kernels_match_scalar_and_charge(rows in arb_rows(16, 3)) {
        let m = CountingSpace::new(EuclideanSpace::new(PointSet::from_rows(&rows)));
        check_kernels(&m)?;
        // The wrapper must charge exactly what the per-query loop would:
        // |vs|·|candidates| for the grid kernels, |candidates| for a
        // distance fill, |set| for a set distance — so batching never
        // changes reported oracle counts.
        let n = m.n() as u32;
        let all: Vec<u32> = (0..n).collect();
        let vs = vec![0u32, n - 1];
        m.reset();
        let _ = m.count_within_many(&vs, &all, 1.0);
        prop_assert_eq!(m.calls(), (vs.len() * all.len()) as u64);
        m.reset();
        let _ = m.neighbors_within_many(&vs, &all, 1.0);
        prop_assert_eq!(m.calls(), (vs.len() * all.len()) as u64);
        let taus = {
            let mut t = vec![0.5, 1.0, 1.0, 2.0];
            t.sort_by(f64::total_cmp);
            t
        };
        m.reset();
        let _ = m.count_within_taus(PointId(0), &all, &taus);
        prop_assert_eq!(m.calls(), (all.len() * taus.len()) as u64);
        m.reset();
        let _ = m.neighbors_within_taus(PointId(0), &all, &taus);
        prop_assert_eq!(m.calls(), (all.len() * taus.len()) as u64);
        m.reset();
        let mut out = Vec::new();
        m.dists_into(PointId(0), &all, &mut out);
        prop_assert_eq!(m.calls(), all.len() as u64);
        m.reset();
        let ids: Vec<PointId> = all.iter().map(|&c| PointId(c)).collect();
        let _ = m.dist_to_set(PointId(0), &ids);
        prop_assert_eq!(m.calls(), ids.len() as u64);
    }

    #[test]
    fn matrix_kernels_match_scalar(rows in arb_rows(16, 2)) {
        let ps = PointSet::from_rows(&rows);
        let n = ps.len();
        let e = EuclideanSpace::new(ps);
        let m = MatrixSpace::from_fn(n, |i, j| {
            e.dist(PointId(i as u32), PointId(j as u32))
        }).unwrap();
        check_kernels(&m)?;
    }

    #[test]
    fn graph_metric_kernels_match_scalar(
        weights in prop::collection::vec(0.1f64..10.0, 3..14),
        extra in prop::collection::vec((0u32..14, 0u32..14, 0.1f64..20.0), 0..6),
    ) {
        // A path graph keeps everything connected; extra edges add shortcuts.
        let n = weights.len() + 1;
        let mut edges: Vec<(usize, usize, f64)> = weights
            .iter()
            .enumerate()
            .map(|(i, &w)| (i, i + 1, w))
            .collect();
        for &(a, b, w) in &extra {
            let (a, b) = (a as usize % n, b as usize % n);
            if a != b {
                edges.push((a, b, w));
            }
        }
        let m = GraphMetricSpace::from_edges(n, &edges).unwrap();
        check_kernels(&m)?;
    }
}
