//! Property-based pinning of the speed tiers: for every [`SpeedTier`] the
//! `EuclideanSpace` bulk threshold kernels must return **bit-identical**
//! answers to the exact-f64 tier — on thresholds deliberately placed at and
//! around exact pairwise distances, where a naive f32 path would flip
//! verdicts — and the answers must not depend on the worker thread count.
//!
//! Together with `kernel_consistency.rs` (exact tier ≡ scalar oracle) this
//! gives `tier ≡ scalar oracle` for every tier, which is the contract the
//! ladder digest check relies on: `KCENTER_SPEED` may change wall-clock
//! time, never a single output bit.

use mpc_metric::{simd, CountingSpace, EuclideanSpace, MetricSpace, PointId, PointSet, SpeedTier};
use proptest::prelude::*;
use rayon::with_threads;

/// Adversarial thresholds: every quartile pairwise distance exactly, plus
/// `±1e-9`-relative nudges. Exact distances sit dead-center in the f32
/// error band (the band is ~`(4d+32)·ε_f32` relative, vastly wider than
/// 1e-9), so every probe forces the banded estimate into its exact-f64
/// re-decide branch — precisely the region where a sloppy fast path would
/// diverge from the oracle. `-1.0`, `0.0`, and `max+1` pin the edges.
fn probe_taus(m: &EuclideanSpace) -> Vec<f64> {
    let n = m.n() as u32;
    let mut ds: Vec<f64> = Vec::new();
    for i in 0..n {
        for j in (i + 1)..n {
            ds.push(m.dist(PointId(i), PointId(j)));
        }
    }
    ds.sort_by(f64::total_cmp);
    let mut taus = vec![-1.0, 0.0];
    for &p in &[0, ds.len() / 4, ds.len() / 2, (3 * ds.len()) / 4] {
        if let Some(&d) = ds.get(p) {
            taus.push(d);
            taus.push(d * (1.0 - 1e-9) - 1e-12);
            taus.push(d * (1.0 + 1e-9) + 1e-12);
        }
    }
    if let Some(&d) = ds.last() {
        taus.push(d + 1.0);
    }
    taus
}

const TIERS: [SpeedTier; 3] = [SpeedTier::Exact, SpeedTier::Soa, SpeedTier::SoaSketch];

/// One full kernel transcript — everything the six bulk kernels return for
/// a fixed dataset, over every probe τ and candidate-set shape. Two spaces
/// agree iff their transcripts are `==` (counts are `usize`, neighbor rows
/// are `Vec<u32>`; no floats, so `==` is exact).
#[derive(Debug, PartialEq, Eq)]
struct Transcript {
    counts: Vec<usize>,
    neighbors: Vec<Vec<u32>>,
    counts_many: Vec<Vec<usize>>,
    neighbors_many: Vec<Vec<Vec<u32>>>,
    counts_taus: Vec<Vec<usize>>,
    neighbors_taus: Vec<Vec<Vec<u32>>>,
}

fn transcript(m: &EuclideanSpace, taus: &[f64]) -> Transcript {
    let n = m.n() as u32;
    let all: Vec<u32> = (0..n).collect();
    let evens: Vec<u32> = (0..n).step_by(2).collect();
    let with_dup: Vec<u32> = {
        let mut v = vec![0u32, 0];
        v.extend((0..n).rev());
        v
    };
    let empty: Vec<u32> = Vec::new();
    let cand_sets = [&all, &evens, &with_dup, &empty];
    let probes: Vec<u32> = vec![0, n / 2, n - 1];
    let sorted_taus = {
        let mut t = taus.to_vec();
        t.sort_by(f64::total_cmp);
        t
    };
    let mut out = Transcript {
        counts: Vec::new(),
        neighbors: Vec::new(),
        counts_many: Vec::new(),
        neighbors_many: Vec::new(),
        counts_taus: Vec::new(),
        neighbors_taus: Vec::new(),
    };
    for &tau in taus {
        for cands in cand_sets {
            for &v in &probes {
                out.counts.push(m.count_within(PointId(v), cands, tau));
                let mut row = Vec::new();
                m.neighbors_within(PointId(v), cands, tau, &mut row);
                out.neighbors.push(row);
            }
            out.counts_many
                .push(m.count_within_many(&probes, cands, tau));
            out.neighbors_many
                .push(m.neighbors_within_many(&probes, cands, tau));
        }
    }
    for cands in cand_sets {
        for &v in &probes {
            out.counts_taus
                .push(m.count_within_taus(PointId(v), cands, &sorted_taus));
            out.neighbors_taus
                .push(m.neighbors_within_taus(PointId(v), cands, &sorted_taus));
        }
    }
    out
}

/// Builds one space per tier over the same rows. `with_speed_tier`
/// overrides whatever `KCENTER_SPEED` says, so the test is hermetic.
fn spaces(rows: &[Vec<f64>]) -> Vec<(SpeedTier, EuclideanSpace)> {
    TIERS
        .iter()
        .map(|&t| {
            (
                t,
                EuclideanSpace::new(PointSet::from_rows(rows)).with_speed_tier(t),
            )
        })
        .collect()
}

/// Wide rows (dim ≥ 16 = `GRAM_MIN_DIM`) so the SoA/sketch paths actually
/// engage; narrow rows would make the tier comparison vacuous.
fn arb_wide_rows(max_n: usize, dim: usize) -> impl Strategy<Value = Vec<Vec<f64>>> {
    prop::collection::vec(prop::collection::vec(-50.0f64..50.0, dim..=dim), 4..max_n)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Every tier's transcript is identical to the exact tier's, on
    /// thresholds engineered to land inside the f32 error band.
    #[test]
    fn tiers_match_exact_oracle(rows in arb_wide_rows(18, 18)) {
        let spaces = spaces(&rows);
        let taus = probe_taus(&spaces[0].1);
        let oracle = transcript(&spaces[0].1, &taus);
        for (tier, space) in &spaces[1..] {
            prop_assert_eq!(
                &transcript(space, &taus),
                &oracle,
                "tier {} diverged from exact", tier.name()
            );
        }
    }

    /// Same check at dim=32 — the width the benchmarks target, and a
    /// multiple of both the AVX2 f32 lane width (8) and the sketch's
    /// direction count, so every SIMD remainder path is the empty one.
    #[test]
    fn tiers_match_exact_oracle_d32(rows in arb_wide_rows(12, 32)) {
        let spaces = spaces(&rows);
        let taus = probe_taus(&spaces[0].1);
        let oracle = transcript(&spaces[0].1, &taus);
        for (tier, space) in &spaces[1..] {
            prop_assert_eq!(
                &transcript(space, &taus),
                &oracle,
                "tier {} diverged from exact", tier.name()
            );
        }
    }

    /// Clustered duplicates and near-duplicates: many identical rows give
    /// zero distances (degenerate sketch ranges) and maximal tie pressure
    /// at τ = 0.
    #[test]
    fn tiers_match_on_duplicates(base in prop::collection::vec(-5.0f64..5.0, 20), copies in 3usize..8) {
        let mut rows: Vec<Vec<f64>> = (0..copies).map(|_| base.clone()).collect();
        // One near-duplicate inside f32 rounding range and one far point.
        let mut near = base.clone();
        near[0] += 1e-8;
        rows.push(near);
        rows.push(base.iter().map(|c| c + 100.0).collect());
        let spaces = spaces(&rows);
        let taus = probe_taus(&spaces[0].1);
        let oracle = transcript(&spaces[0].1, &taus);
        for (tier, space) in &spaces[1..] {
            prop_assert_eq!(
                &transcript(space, &taus),
                &oracle,
                "tier {} diverged from exact", tier.name()
            );
        }
    }

    /// Every tier is deterministic across worker thread counts {1, 2, 8}:
    /// the transcript at t=1 equals the transcripts at t=2 and t=8. (The
    /// tiled kernels split candidate lists into parallel chunks; chunk
    /// boundaries must never leak into results.)
    #[test]
    fn tiers_thread_count_deterministic(rows in arb_wide_rows(14, 18)) {
        for (tier, space) in &spaces(&rows) {
            let taus = probe_taus(space);
            let t1 = with_threads(1, || transcript(space, &taus));
            for threads in [2usize, 8] {
                let tn = with_threads(threads, || transcript(space, &taus));
                prop_assert_eq!(
                    &tn,
                    &t1,
                    "tier {} changed output at {} threads", tier.name(), threads
                );
            }
        }
    }
}

/// Non-finite coordinates must not break tier equivalence: the f32 band
/// goes infinite (forcing the exact branch) and the sketch deadens itself.
/// Deterministic, so a plain test rather than a proptest.
#[test]
fn tiers_match_with_non_finite_rows() {
    let mut rows: Vec<Vec<f64>> = (0..8)
        .map(|i| {
            (0..18)
                .map(|j| ((i * 31 + j * 7) % 13) as f64 - 6.0)
                .collect()
        })
        .collect();
    rows[2][5] = f64::INFINITY;
    rows[5][0] = f64::NAN;
    let spaces = spaces(&rows);
    let taus = vec![-1.0, 0.0, 5.0, 25.0, f64::INFINITY];
    let oracle = transcript(&spaces[0].1, &taus);
    for (tier, space) in &spaces[1..] {
        assert_eq!(
            transcript(space, &taus),
            oracle,
            "tier {} diverged on non-finite data",
            tier.name()
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The serving-index insert path: growing a space with `push_point`
    /// after its lazy SoA mirror / sketch already exist (so the mirror is
    /// *extended* in place, padded-stride lanes and all, and the sketch is
    /// invalidated + lazily rebuilt) must leave every tier bit-identical
    /// to the exact tier over a from-scratch build of the full data.
    #[test]
    fn tiers_match_after_incremental_growth(
        rows in arb_wide_rows(16, 18),
        split in 4usize..12,
    ) {
        let split = split.min(rows.len() - 1).max(1);
        let oracle_space = EuclideanSpace::new(PointSet::from_rows(&rows));
        let oracle_taus = probe_taus(&oracle_space);
        let oracle = transcript(&oracle_space, &oracle_taus);
        for tier in TIERS {
            let mut space =
                EuclideanSpace::new(PointSet::from_rows(&rows[..split])).with_speed_tier(tier);
            // Force the lazy fast-path builds on the prefix so the pushes
            // below exercise extension, not a fresh build.
            let prefix_ids: Vec<u32> = (0..split as u32).collect();
            let _ = space.count_within(PointId(0), &prefix_ids, 1.0);
            for row in &rows[split..] {
                space.push_point(row);
            }
            prop_assert_eq!(
                &transcript(&space, &oracle_taus),
                &oracle,
                "tier {} diverged after incremental growth (split {})",
                tier.name(),
                split
            );
        }
    }

    /// Thread counts must not leak into grown spaces either.
    #[test]
    fn grown_space_thread_count_deterministic(rows in arb_wide_rows(12, 18)) {
        let split = rows.len() / 2;
        let mut space = EuclideanSpace::new(PointSet::from_rows(&rows[..split.max(1)]))
            .with_speed_tier(SpeedTier::SoaSketch);
        let warm: Vec<u32> = (0..space.n() as u32).collect();
        let _ = space.count_within(PointId(0), &warm, 1.0);
        for row in &rows[split.max(1)..] {
            space.push_point(row);
        }
        let taus = probe_taus(&space);
        let t1 = with_threads(1, || transcript(&space, &taus));
        for threads in [2usize, 8] {
            let tn = with_threads(threads, || transcript(&space, &taus));
            prop_assert_eq!(&tn, &t1, "grown space changed output at {} threads", threads);
        }
    }
}

/// A dense, adversarial multi-τ ladder: every probe threshold (exact
/// pairwise distances with near-rung nudges, the edges) plus a handful of
/// rungs duplicated verbatim — sorted non-decreasing as the multi-τ
/// kernels require. Equal rungs force the rung-entry classification to
/// settle ties identically to the scalar sweep, and the nudged rungs land
/// inside the per-rung f32 error band, forcing exact re-decides.
fn dense_ladder(m: &EuclideanSpace) -> Vec<f64> {
    let mut taus = probe_taus(m);
    let dups: Vec<f64> = taus.iter().copied().take(4).collect();
    taus.extend(dups);
    taus.sort_by(f64::total_cmp);
    taus
}

/// Ground-truth oracle for the multi-τ kernels: per-rung counts and
/// neighbor rows computed with nothing but the scalar `within` predicate —
/// the same oracle `kernel_consistency.rs` pins the single-τ kernels to,
/// and one no speed tier touches. NaN distances fail `within` at every
/// rung, matching the kernels' shedding of non-finite pairs.
fn taus_oracle(
    m: &EuclideanSpace,
    v: u32,
    cands: &[u32],
    taus: &[f64],
) -> (Vec<usize>, Vec<Vec<u32>>) {
    let counts = taus
        .iter()
        .map(|&t| {
            cands
                .iter()
                .filter(|&&c| m.within(PointId(v), PointId(c), t))
                .count()
        })
        .collect();
    let neighbors = taus
        .iter()
        .map(|&t| {
            cands
                .iter()
                .copied()
                .filter(|&c| m.within(PointId(v), PointId(c), t))
                .collect()
        })
        .collect();
    (counts, neighbors)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The multi-τ kernels match the scalar `dist` oracle bit-for-bit on
    /// every tier, over dense ladders with duplicated and near-rung
    /// thresholds and candidate lists with duplicates.
    #[test]
    fn multi_tau_matches_scalar_oracle(rows in arb_wide_rows(14, 32)) {
        let spaces = spaces(&rows);
        let ladder = dense_ladder(&spaces[0].1);
        let n = spaces[0].1.n() as u32;
        let all: Vec<u32> = (0..n).collect();
        let with_dup: Vec<u32> = {
            let mut v = vec![0u32, 0];
            v.extend((0..n).rev());
            v
        };
        for cands in [&all, &with_dup] {
            for &v in &[0u32, n - 1] {
                let (counts, neighbors) = taus_oracle(&spaces[0].1, v, cands, &ladder);
                for (tier, space) in &spaces {
                    prop_assert_eq!(
                        &space.count_within_taus(PointId(v), cands, &ladder),
                        &counts,
                        "tier {} multi-τ counts diverged from the scalar oracle", tier.name()
                    );
                    prop_assert_eq!(
                        &space.neighbors_within_taus(PointId(v), cands, &ladder),
                        &neighbors,
                        "tier {} multi-τ neighbors diverged from the scalar oracle", tier.name()
                    );
                }
            }
        }
    }
}

/// Ladders longer than [`simd::MAX_RUNGS`] exceed what a `u8` rung-entry
/// index can encode; the fast path must bow out and the gram fallback must
/// stay verdict-identical to the scalar oracle on every tier.
#[test]
fn multi_tau_overlong_ladder_falls_back() {
    let rows: Vec<Vec<f64>> = (0..24)
        .map(|i| {
            (0..32)
                .map(|j| ((i * 37 + j * 11) % 19) as f64 - 9.0)
                .collect()
        })
        .collect();
    let spaces = spaces(&rows);
    let base = probe_taus(&spaces[0].1);
    let hi = base.iter().copied().fold(1.0f64, f64::max);
    // MAX_RUNGS + 17 rungs spanning [0, 2·max distance], strictly sorted.
    let m = simd::MAX_RUNGS + 17;
    let ladder: Vec<f64> = (0..m)
        .map(|i| 2.0 * hi * i as f64 / (m - 1) as f64)
        .collect();
    let cands: Vec<u32> = (0..rows.len() as u32).collect();
    let (counts, neighbors) = taus_oracle(&spaces[0].1, 0, &cands, &ladder);
    for (tier, space) in &spaces {
        assert_eq!(
            space.count_within_taus(PointId(0), &cands, &ladder),
            counts,
            "tier {} diverged on an overlong ladder",
            tier.name()
        );
        assert_eq!(
            space.neighbors_within_taus(PointId(0), &cands, &ladder),
            neighbors,
            "tier {} neighbors diverged on an overlong ladder",
            tier.name()
        );
    }
}

/// Non-finite coordinates through the dense multi-τ ladder, including an
/// infinite rung: the f32 estimates go NaN/∞ (forcing exact re-decides)
/// and verdicts must still match the scalar oracle on every tier.
#[test]
fn multi_tau_matches_oracle_on_non_finite_rows() {
    let mut rows: Vec<Vec<f64>> = (0..12)
        .map(|i| {
            (0..32)
                .map(|j| ((i * 31 + j * 7) % 13) as f64 - 6.0)
                .collect()
        })
        .collect();
    rows[3][4] = f64::INFINITY;
    rows[7][0] = f64::NAN;
    let spaces = spaces(&rows);
    let mut ladder = vec![-1.0, 0.0, 3.0, 9.0, 27.0, f64::INFINITY];
    ladder.sort_by(f64::total_cmp);
    let cands: Vec<u32> = (0..rows.len() as u32).collect();
    for &v in &[0u32, 3, 7] {
        let (counts, neighbors) = taus_oracle(&spaces[0].1, v, &cands, &ladder);
        for (tier, space) in &spaces {
            assert_eq!(
                space.count_within_taus(PointId(v), &cands, &ladder),
                counts,
                "tier {} diverged on non-finite data (probe {v})",
                tier.name()
            );
            assert_eq!(
                space.neighbors_within_taus(PointId(v), &cands, &ladder),
                neighbors,
                "tier {} neighbors diverged on non-finite data (probe {v})",
                tier.name()
            );
        }
    }
}

/// Multi-τ thread determinism on a workload big enough to cross the
/// weighted parallel-dispatch gate (`candidates × dim × rungs`): chunk
/// boundaries must never leak into per-rung counts or neighbor order.
#[test]
fn multi_tau_thread_count_deterministic_at_scale() {
    let rows: Vec<Vec<f64>> = (0..1500)
        .map(|i| {
            (0..32)
                .map(|j| ((i * 53 + j * 17) % 101) as f64 / 7.0)
                .collect()
        })
        .collect();
    let cands: Vec<u32> = (0..rows.len() as u32).collect();
    for tier in TIERS {
        let space = EuclideanSpace::new(PointSet::from_rows(&rows)).with_speed_tier(tier);
        let base = space.dist(PointId(0), PointId(750));
        let ladder: Vec<f64> = (0..24).map(|i| base * 0.2 * 1.15f64.powi(i)).collect();
        let t1 = with_threads(1, || {
            (
                space.count_within_taus(PointId(0), &cands, &ladder),
                space.neighbors_within_taus(PointId(0), &cands, &ladder),
            )
        });
        for threads in [2usize, 8] {
            let tn = with_threads(threads, || {
                (
                    space.count_within_taus(PointId(0), &cands, &ladder),
                    space.neighbors_within_taus(PointId(0), &cands, &ladder),
                )
            });
            assert_eq!(
                tn,
                t1,
                "tier {} multi-τ output changed at {threads} threads",
                tier.name()
            );
        }
    }
}

/// `CountingSpace` charges the multi-τ kernels `|candidates| × |taus|`
/// oracle calls — the per-τ loop's bill — identically on every tier, so
/// evaluation counts stay comparable no matter which fast path ran.
#[test]
fn multi_tau_counting_charge_is_tier_invariant() {
    let rows: Vec<Vec<f64>> = (0..40)
        .map(|i| (0..32).map(|j| ((i * 29 + j * 13) % 23) as f64).collect())
        .collect();
    let cands: Vec<u32> = (0..rows.len() as u32).collect();
    for tier in TIERS {
        let m = CountingSpace::new(
            EuclideanSpace::new(PointSet::from_rows(&rows)).with_speed_tier(tier),
        );
        let ladder = dense_ladder(m.inner());
        let expected = (cands.len() * ladder.len()) as u64;
        m.reset();
        let _ = m.count_within_taus(PointId(0), &cands, &ladder);
        assert_eq!(m.calls(), expected, "tier {} count charge", tier.name());
        m.reset();
        let _ = m.neighbors_within_taus(PointId(0), &cands, &ladder);
        assert_eq!(m.calls(), expected, "tier {} neighbors charge", tier.name());
    }
}
