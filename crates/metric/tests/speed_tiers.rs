//! Property-based pinning of the speed tiers: for every [`SpeedTier`] the
//! `EuclideanSpace` bulk threshold kernels must return **bit-identical**
//! answers to the exact-f64 tier — on thresholds deliberately placed at and
//! around exact pairwise distances, where a naive f32 path would flip
//! verdicts — and the answers must not depend on the worker thread count.
//!
//! Together with `kernel_consistency.rs` (exact tier ≡ scalar oracle) this
//! gives `tier ≡ scalar oracle` for every tier, which is the contract the
//! ladder digest check relies on: `KCENTER_SPEED` may change wall-clock
//! time, never a single output bit.

use mpc_metric::{EuclideanSpace, MetricSpace, PointId, PointSet, SpeedTier};
use proptest::prelude::*;
use rayon::with_threads;

/// Adversarial thresholds: every quartile pairwise distance exactly, plus
/// `±1e-9`-relative nudges. Exact distances sit dead-center in the f32
/// error band (the band is ~`(4d+32)·ε_f32` relative, vastly wider than
/// 1e-9), so every probe forces the banded estimate into its exact-f64
/// re-decide branch — precisely the region where a sloppy fast path would
/// diverge from the oracle. `-1.0`, `0.0`, and `max+1` pin the edges.
fn probe_taus(m: &EuclideanSpace) -> Vec<f64> {
    let n = m.n() as u32;
    let mut ds: Vec<f64> = Vec::new();
    for i in 0..n {
        for j in (i + 1)..n {
            ds.push(m.dist(PointId(i), PointId(j)));
        }
    }
    ds.sort_by(f64::total_cmp);
    let mut taus = vec![-1.0, 0.0];
    for &p in &[0, ds.len() / 4, ds.len() / 2, (3 * ds.len()) / 4] {
        if let Some(&d) = ds.get(p) {
            taus.push(d);
            taus.push(d * (1.0 - 1e-9) - 1e-12);
            taus.push(d * (1.0 + 1e-9) + 1e-12);
        }
    }
    if let Some(&d) = ds.last() {
        taus.push(d + 1.0);
    }
    taus
}

const TIERS: [SpeedTier; 3] = [SpeedTier::Exact, SpeedTier::Soa, SpeedTier::SoaSketch];

/// One full kernel transcript — everything the six bulk kernels return for
/// a fixed dataset, over every probe τ and candidate-set shape. Two spaces
/// agree iff their transcripts are `==` (counts are `usize`, neighbor rows
/// are `Vec<u32>`; no floats, so `==` is exact).
#[derive(Debug, PartialEq, Eq)]
struct Transcript {
    counts: Vec<usize>,
    neighbors: Vec<Vec<u32>>,
    counts_many: Vec<Vec<usize>>,
    neighbors_many: Vec<Vec<Vec<u32>>>,
    counts_taus: Vec<Vec<usize>>,
    neighbors_taus: Vec<Vec<Vec<u32>>>,
}

fn transcript(m: &EuclideanSpace, taus: &[f64]) -> Transcript {
    let n = m.n() as u32;
    let all: Vec<u32> = (0..n).collect();
    let evens: Vec<u32> = (0..n).step_by(2).collect();
    let with_dup: Vec<u32> = {
        let mut v = vec![0u32, 0];
        v.extend((0..n).rev());
        v
    };
    let empty: Vec<u32> = Vec::new();
    let cand_sets = [&all, &evens, &with_dup, &empty];
    let probes: Vec<u32> = vec![0, n / 2, n - 1];
    let sorted_taus = {
        let mut t = taus.to_vec();
        t.sort_by(f64::total_cmp);
        t
    };
    let mut out = Transcript {
        counts: Vec::new(),
        neighbors: Vec::new(),
        counts_many: Vec::new(),
        neighbors_many: Vec::new(),
        counts_taus: Vec::new(),
        neighbors_taus: Vec::new(),
    };
    for &tau in taus {
        for cands in cand_sets {
            for &v in &probes {
                out.counts.push(m.count_within(PointId(v), cands, tau));
                let mut row = Vec::new();
                m.neighbors_within(PointId(v), cands, tau, &mut row);
                out.neighbors.push(row);
            }
            out.counts_many
                .push(m.count_within_many(&probes, cands, tau));
            out.neighbors_many
                .push(m.neighbors_within_many(&probes, cands, tau));
        }
    }
    for cands in cand_sets {
        for &v in &probes {
            out.counts_taus
                .push(m.count_within_taus(PointId(v), cands, &sorted_taus));
            out.neighbors_taus
                .push(m.neighbors_within_taus(PointId(v), cands, &sorted_taus));
        }
    }
    out
}

/// Builds one space per tier over the same rows. `with_speed_tier`
/// overrides whatever `KCENTER_SPEED` says, so the test is hermetic.
fn spaces(rows: &[Vec<f64>]) -> Vec<(SpeedTier, EuclideanSpace)> {
    TIERS
        .iter()
        .map(|&t| {
            (
                t,
                EuclideanSpace::new(PointSet::from_rows(rows)).with_speed_tier(t),
            )
        })
        .collect()
}

/// Wide rows (dim ≥ 16 = `GRAM_MIN_DIM`) so the SoA/sketch paths actually
/// engage; narrow rows would make the tier comparison vacuous.
fn arb_wide_rows(max_n: usize, dim: usize) -> impl Strategy<Value = Vec<Vec<f64>>> {
    prop::collection::vec(prop::collection::vec(-50.0f64..50.0, dim..=dim), 4..max_n)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Every tier's transcript is identical to the exact tier's, on
    /// thresholds engineered to land inside the f32 error band.
    #[test]
    fn tiers_match_exact_oracle(rows in arb_wide_rows(18, 18)) {
        let spaces = spaces(&rows);
        let taus = probe_taus(&spaces[0].1);
        let oracle = transcript(&spaces[0].1, &taus);
        for (tier, space) in &spaces[1..] {
            prop_assert_eq!(
                &transcript(space, &taus),
                &oracle,
                "tier {} diverged from exact", tier.name()
            );
        }
    }

    /// Same check at dim=32 — the width the benchmarks target, and a
    /// multiple of both the AVX2 f32 lane width (8) and the sketch's
    /// direction count, so every SIMD remainder path is the empty one.
    #[test]
    fn tiers_match_exact_oracle_d32(rows in arb_wide_rows(12, 32)) {
        let spaces = spaces(&rows);
        let taus = probe_taus(&spaces[0].1);
        let oracle = transcript(&spaces[0].1, &taus);
        for (tier, space) in &spaces[1..] {
            prop_assert_eq!(
                &transcript(space, &taus),
                &oracle,
                "tier {} diverged from exact", tier.name()
            );
        }
    }

    /// Clustered duplicates and near-duplicates: many identical rows give
    /// zero distances (degenerate sketch ranges) and maximal tie pressure
    /// at τ = 0.
    #[test]
    fn tiers_match_on_duplicates(base in prop::collection::vec(-5.0f64..5.0, 20), copies in 3usize..8) {
        let mut rows: Vec<Vec<f64>> = (0..copies).map(|_| base.clone()).collect();
        // One near-duplicate inside f32 rounding range and one far point.
        let mut near = base.clone();
        near[0] += 1e-8;
        rows.push(near);
        rows.push(base.iter().map(|c| c + 100.0).collect());
        let spaces = spaces(&rows);
        let taus = probe_taus(&spaces[0].1);
        let oracle = transcript(&spaces[0].1, &taus);
        for (tier, space) in &spaces[1..] {
            prop_assert_eq!(
                &transcript(space, &taus),
                &oracle,
                "tier {} diverged from exact", tier.name()
            );
        }
    }

    /// Every tier is deterministic across worker thread counts {1, 2, 8}:
    /// the transcript at t=1 equals the transcripts at t=2 and t=8. (The
    /// tiled kernels split candidate lists into parallel chunks; chunk
    /// boundaries must never leak into results.)
    #[test]
    fn tiers_thread_count_deterministic(rows in arb_wide_rows(14, 18)) {
        for (tier, space) in &spaces(&rows) {
            let taus = probe_taus(space);
            let t1 = with_threads(1, || transcript(space, &taus));
            for threads in [2usize, 8] {
                let tn = with_threads(threads, || transcript(space, &taus));
                prop_assert_eq!(
                    &tn,
                    &t1,
                    "tier {} changed output at {} threads", tier.name(), threads
                );
            }
        }
    }
}

/// Non-finite coordinates must not break tier equivalence: the f32 band
/// goes infinite (forcing the exact branch) and the sketch deadens itself.
/// Deterministic, so a plain test rather than a proptest.
#[test]
fn tiers_match_with_non_finite_rows() {
    let mut rows: Vec<Vec<f64>> = (0..8)
        .map(|i| {
            (0..18)
                .map(|j| ((i * 31 + j * 7) % 13) as f64 - 6.0)
                .collect()
        })
        .collect();
    rows[2][5] = f64::INFINITY;
    rows[5][0] = f64::NAN;
    let spaces = spaces(&rows);
    let taus = vec![-1.0, 0.0, 5.0, 25.0, f64::INFINITY];
    let oracle = transcript(&spaces[0].1, &taus);
    for (tier, space) in &spaces[1..] {
        assert_eq!(
            transcript(space, &taus),
            oracle,
            "tier {} diverged on non-finite data",
            tier.name()
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The serving-index insert path: growing a space with `push_point`
    /// after its lazy SoA mirror / sketch already exist (so the mirror is
    /// *extended* in place, padded-stride lanes and all, and the sketch is
    /// invalidated + lazily rebuilt) must leave every tier bit-identical
    /// to the exact tier over a from-scratch build of the full data.
    #[test]
    fn tiers_match_after_incremental_growth(
        rows in arb_wide_rows(16, 18),
        split in 4usize..12,
    ) {
        let split = split.min(rows.len() - 1).max(1);
        let oracle_space = EuclideanSpace::new(PointSet::from_rows(&rows));
        let oracle_taus = probe_taus(&oracle_space);
        let oracle = transcript(&oracle_space, &oracle_taus);
        for tier in TIERS {
            let mut space =
                EuclideanSpace::new(PointSet::from_rows(&rows[..split])).with_speed_tier(tier);
            // Force the lazy fast-path builds on the prefix so the pushes
            // below exercise extension, not a fresh build.
            let prefix_ids: Vec<u32> = (0..split as u32).collect();
            let _ = space.count_within(PointId(0), &prefix_ids, 1.0);
            for row in &rows[split..] {
                space.push_point(row);
            }
            prop_assert_eq!(
                &transcript(&space, &oracle_taus),
                &oracle,
                "tier {} diverged after incremental growth (split {})",
                tier.name(),
                split
            );
        }
    }

    /// Thread counts must not leak into grown spaces either.
    #[test]
    fn grown_space_thread_count_deterministic(rows in arb_wide_rows(12, 18)) {
        let split = rows.len() / 2;
        let mut space = EuclideanSpace::new(PointSet::from_rows(&rows[..split.max(1)]))
            .with_speed_tier(SpeedTier::SoaSketch);
        let warm: Vec<u32> = (0..space.n() as u32).collect();
        let _ = space.count_within(PointId(0), &warm, 1.0);
        for row in &rows[split.max(1)..] {
            space.push_point(row);
        }
        let taus = probe_taus(&space);
        let t1 = with_threads(1, || transcript(&space, &taus));
        for threads in [2usize, 8] {
            let tn = with_threads(threads, || transcript(&space, &taus));
            prop_assert_eq!(&tn, &t1, "grown space changed output at {} threads", threads);
        }
    }
}
