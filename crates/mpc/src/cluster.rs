//! The simulated MPC cluster and its collective operations.

use rand_chacha::ChaCha8Rng;
use rayon::prelude::*;

use crate::ledger::{Ledger, MachineIo};
use crate::rng::machine_rng;
use crate::transport::{
    ship_setup, wire_round, wire_round_synthetic, Backend, Dst, TransportKind, WireMsg, WireStats,
    WireSummary,
};
use crate::wire::Wire;

/// A simulated MPC cluster of `m` machines.
///
/// Algorithms keep their own per-machine state (typically a `Vec` with one
/// entry per machine) and drive it through two kinds of operations:
///
/// * [`Cluster::map`] — machine-local computation, executed for all
///   machines concurrently on the worker pool behind the `rayon` shim
///   (`KCENTER_THREADS` / [`rayon::with_threads`] control the width). Free
///   in the MPC model (no round, no communication), as the model allows
///   arbitrary polynomial local work.
/// * collectives ([`Cluster::all_broadcast`], [`Cluster::gather`],
///   [`Cluster::broadcast`], [`Cluster::scatter`], and the reduction
///   helpers) — each consumes exactly **one MPC round** and charges every
///   machine's sent/received word counts to the [`Ledger`].
///
/// The ledger stays **single-writer** under real threads: machine closures
/// run on pool workers but never touch the ledger (local work is free, so
/// there is nothing to record); each collective computes its per-machine
/// [`MachineIo`] rows from the contribution sizes on the driving thread and
/// commits them in one `record_round` call — the round barrier at which the
/// per-machine sub-ledgers merge. Word and round counts are therefore a
/// pure function of the simulated communication pattern, independent of how
/// the OS schedules worker threads.
///
/// Machine 0 plays the paper's *central machine*.
///
/// ### Transports
///
/// Collective *semantics* and ledger charges are identical everywhere;
/// `KCENTER_TRANSPORT=sim|loopback|process` selects how payloads
/// physically move (see [`crate::transport`]). On the wire backends every
/// collective's payload is encoded into length-prefixed little-endian
/// frames, transited (in-process copy or worker pipes), and **decoded
/// values are what the algorithm continues with** — encode/decode
/// asymmetry changes answers loudly instead of silently. `sim` remains
/// the bit-exact zero-copy reference.
///
/// ```
/// use mpc_sim::Cluster;
///
/// let mut cluster = Cluster::new(3, 42);
/// // Local compute (free), then a one-round gather to the central machine.
/// let squares = cluster.map(&[1, 2, 3], |_, &x| vec![x * x]);
/// let all = cluster.gather("collect", squares, 1);
/// assert_eq!(all, vec![1, 4, 9]);
/// assert_eq!(cluster.rounds(), 1);
/// ```
///
/// ### Communication-cost conventions
///
/// Items carry a caller-supplied `weight` in machine words (coordinates of
/// a point, 1 for a scalar). Point-to-point traffic charges the sender and
/// the receiver once per item; one-to-many traffic charges the sender once
/// per (item, recipient) pair — i.e. no magic multicast, matching the MPC
/// model where the total size of messages sent by a machine is bounded.
#[derive(Debug)]
pub struct Cluster {
    m: usize,
    seed: u64,
    ledger: Ledger,
    backend: Backend,
}

impl Cluster {
    /// A cluster of `m >= 1` machines with the given RNG seed and no
    /// communication budget, on the transport named by
    /// `KCENTER_TRANSPORT` (default: the in-memory simulator).
    pub fn new(m: usize, seed: u64) -> Self {
        Self::with_transport(m, seed, TransportKind::from_env())
    }

    /// Like [`Cluster::new`] but with an explicit transport backend,
    /// ignoring the environment.
    pub fn with_transport(m: usize, seed: u64, kind: TransportKind) -> Self {
        Self {
            m,
            seed,
            ledger: Ledger::new(m),
            backend: Backend::new(kind, m, seed),
        }
    }

    /// Like [`Cluster::new`] but with a per-round per-machine word budget;
    /// breaches are recorded on the ledger.
    pub fn with_budget(m: usize, seed: u64, budget_words: u64) -> Self {
        let mut c = Self::new(m, seed);
        c.ledger.set_budget(budget_words);
        c
    }

    /// Number of machines.
    pub fn m(&self) -> usize {
        self.m
    }

    /// The cluster RNG seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Which transport this cluster runs on.
    pub fn transport_kind(&self) -> TransportKind {
        self.backend.kind()
    }

    /// The wire backends' measurements (`None` on the sim backend, which
    /// moves no bytes).
    pub fn wire_stats(&self) -> Option<&WireStats> {
        self.backend.wire_stats()
    }

    /// Serializable snapshot of [`Cluster::wire_stats`].
    pub fn wire_summary(&self) -> Option<WireSummary> {
        self.backend.wire_stats().map(WireStats::summary)
    }

    /// Ships per-machine shards through the transport's *setup plane*:
    /// frames are encoded, transited, and decode-validated (workers hold
    /// them resident on the process backend), but the [`Ledger`] is never
    /// touched — it meters algorithm rounds, and the one-time input
    /// distribution is the dataset load, not part of any algorithm's
    /// round/word count. Bytes land in `WireStats::setup_bytes`.
    pub fn ship_shards<T: Wire>(&mut self, label: &str, shards: &[Vec<T>], weight: u64) {
        assert_eq!(shards.len(), self.m, "one shard per machine");
        ship_setup(&mut self.backend, label, shards, weight);
    }

    /// Read access to the accounting ledger.
    pub fn ledger(&self) -> &Ledger {
        &self.ledger
    }

    /// Consumes the cluster, returning its ledger.
    pub fn into_ledger(self) -> Ledger {
        self.ledger
    }

    /// Rounds consumed so far.
    pub fn rounds(&self) -> u64 {
        self.ledger.rounds()
    }

    /// Notes machine-resident memory (see [`Ledger::note_memory`]).
    pub fn note_memory(&mut self, machine: usize, words: u64) {
        self.ledger.note_memory(machine, words);
    }

    /// Notes one resident-memory figure per machine.
    pub fn note_memory_all(&mut self, words: &[u64]) {
        assert_eq!(words.len(), self.m);
        for (machine, &w) in words.iter().enumerate() {
            self.ledger.note_memory(machine, w);
        }
    }

    /// A deterministic RNG for `machine` at the current round; `salt`
    /// distinguishes call sites within one round.
    pub fn rng(&self, machine: usize, salt: u64) -> ChaCha8Rng {
        machine_rng(self.seed, machine, self.ledger.rounds(), salt)
    }

    /// Machine-local computation: runs `f(machine, &input[machine])` for
    /// every machine across the worker pool and collects the outputs in
    /// machine order. Costs no round and no communication. Outputs are
    /// deterministic regardless of scheduling: the collect is
    /// order-preserving and `f` sees only its own machine's input (plus
    /// the per-machine RNG streams of [`Cluster::rng`], which are keyed by
    /// machine index, not by thread).
    pub fn map<T, U, F>(&self, inputs: &[T], f: F) -> Vec<U>
    where
        T: Sync,
        U: Send,
        F: Fn(usize, &T) -> U + Sync,
    {
        assert_eq!(inputs.len(), self.m, "one input per machine");
        inputs
            .par_iter()
            .enumerate()
            .map(|(i, t)| f(i, t))
            .collect()
    }

    /// Like [`Cluster::map`] with mutable access to the per-machine state.
    pub fn map_mut<T, U, F>(&self, states: &mut [T], f: F) -> Vec<U>
    where
        T: Send,
        U: Send,
        F: Fn(usize, &mut T) -> U + Sync,
    {
        assert_eq!(states.len(), self.m, "one state per machine");
        states
            .par_iter_mut()
            .enumerate()
            .map(|(i, t)| f(i, t))
            .collect()
    }

    /// All-to-all broadcast: every machine contributes a set of items and
    /// every machine ends up with the full union (in machine order).
    /// One round. Machine `i` sends `|c_i| · w` words to each of the other
    /// `m − 1` machines and receives everyone else's contributions.
    pub fn all_broadcast<T: Clone + Send + Sync + Wire>(
        &mut self,
        label: &str,
        contributions: Vec<Vec<T>>,
        weight: u64,
    ) -> Vec<T> {
        assert_eq!(contributions.len(), self.m);
        let sizes: Vec<u64> = contributions
            .iter()
            .map(|c| c.len() as u64 * weight)
            .collect();
        let total: u64 = sizes.iter().sum();
        let per_machine = sizes
            .iter()
            .map(|&s| MachineIo {
                sent: s * (self.m as u64 - 1),
                received: total - s,
            })
            .collect();
        self.ledger.record_round(label, per_machine);
        if !self.backend.is_wire() {
            return contributions.into_iter().flatten().collect();
        }
        // Wire path: every machine's contribution transits (each peer
        // receives it), so the union is assembled from decoded frames.
        // With m == 1 nothing leaves the machine and the round is empty.
        let msgs: Vec<WireMsg<'_, T>> = if self.m > 1 {
            contributions
                .iter()
                .enumerate()
                .map(|(src, c)| WireMsg {
                    src,
                    dst: Dst::AllOthers,
                    items: c,
                })
                .collect()
        } else {
            Vec::new()
        };
        let decoded = wire_round(&mut self.backend, self.m, label, weight, &msgs);
        if self.m == 1 {
            return contributions.into_iter().flatten().collect();
        }
        decoded.into_iter().flatten().collect()
    }

    /// Gather to the central machine (machine 0): returns the concatenation
    /// of all contributions in machine order. One round.
    pub fn gather<T: Send + Wire>(
        &mut self,
        label: &str,
        contributions: Vec<Vec<T>>,
        weight: u64,
    ) -> Vec<T> {
        assert_eq!(contributions.len(), self.m);
        let sizes: Vec<u64> = contributions
            .iter()
            .map(|c| c.len() as u64 * weight)
            .collect();
        let total: u64 = sizes.iter().sum();
        let per_machine = sizes
            .iter()
            .enumerate()
            .map(|(i, &s)| {
                if i == 0 {
                    MachineIo {
                        sent: 0,
                        received: total - s,
                    }
                } else {
                    MachineIo {
                        sent: s,
                        received: 0,
                    }
                }
            })
            .collect();
        self.ledger.record_round(label, per_machine);
        if !self.backend.is_wire() {
            return contributions.into_iter().flatten().collect();
        }
        // Wire path: machines 1.. ship to the central machine; its own
        // share stays local (the ledger charges zero for it).
        let msgs: Vec<WireMsg<'_, T>> = contributions
            .iter()
            .enumerate()
            .skip(1)
            .map(|(src, c)| WireMsg {
                src,
                dst: Dst::One(0),
                items: c,
            })
            .collect();
        let decoded = wire_round(&mut self.backend, self.m, label, weight, &msgs);
        let mut out = contributions
            .into_iter()
            .next()
            .expect("m >= 1 guarantees a central share");
        for d in decoded {
            out.extend(d);
        }
        out
    }

    /// Broadcast `count` items of the given weight from the central machine
    /// to all others. One round. The caller keeps the data (it is already
    /// globally visible in the simulation); this records the traffic. On
    /// the wire backends a synthetic frame of exactly `count × weight`
    /// words transits (integrity-checked, never decoded), so broadcast
    /// rounds move real bytes too.
    pub fn broadcast(&mut self, label: &str, count: usize, weight: u64) {
        let words = count as u64 * weight;
        let per_machine = (0..self.m)
            .map(|i| {
                if i == 0 {
                    MachineIo {
                        sent: words * (self.m as u64 - 1),
                        received: 0,
                    }
                } else {
                    MachineIo {
                        sent: 0,
                        received: words,
                    }
                }
            })
            .collect();
        self.ledger.record_round(label, per_machine);
        if self.backend.is_wire() {
            wire_round_synthetic(&mut self.backend, self.m, label, 0, count as u64, weight);
        }
    }

    /// Scatter from the central machine: machine `i` receives
    /// `per_machine[i]`. One round. Returns the input unchanged (ownership
    /// transfer to the recipients).
    pub fn scatter<T: Send + Wire>(
        &mut self,
        label: &str,
        per_machine: Vec<Vec<T>>,
        weight: u64,
    ) -> Vec<Vec<T>> {
        assert_eq!(per_machine.len(), self.m);
        let sizes: Vec<u64> = per_machine
            .iter()
            .map(|c| c.len() as u64 * weight)
            .collect();
        let outbound: u64 = sizes
            .iter()
            .enumerate()
            .filter(|&(i, _)| i != 0)
            .map(|(_, &s)| s)
            .sum();
        let io = (0..self.m)
            .map(|i| {
                if i == 0 {
                    MachineIo {
                        sent: outbound,
                        received: 0,
                    }
                } else {
                    MachineIo {
                        sent: 0,
                        received: sizes[i],
                    }
                }
            })
            .collect();
        self.ledger.record_round(label, io);
        if !self.backend.is_wire() {
            return per_machine;
        }
        // Wire path: the central machine ships each non-central share; its
        // own share stays local.
        let msgs: Vec<WireMsg<'_, T>> = per_machine
            .iter()
            .enumerate()
            .skip(1)
            .map(|(dst, c)| WireMsg {
                src: 0,
                dst: Dst::One(dst),
                items: c,
            })
            .collect();
        let decoded = wire_round(&mut self.backend, self.m, label, weight, &msgs);
        let central = per_machine
            .into_iter()
            .next()
            .expect("m >= 1 guarantees a central share");
        let mut out = Vec::with_capacity(self.m);
        out.push(central);
        out.extend(decoded);
        out
    }

    /// All-to-all personalized exchange: `msgs[src][dst]` is what machine
    /// `src` sends to machine `dst`; the result `inbox` satisfies
    /// `inbox[dst][src] == msgs[src][dst]`. One round. Self-addressed
    /// messages move no words.
    pub fn exchange<T: Send + Wire>(
        &mut self,
        label: &str,
        msgs: Vec<Vec<Vec<T>>>,
        weight: u64,
    ) -> Vec<Vec<Vec<T>>> {
        assert_eq!(msgs.len(), self.m);
        for row in &msgs {
            assert_eq!(row.len(), self.m, "one outbox per destination");
        }
        let mut io = vec![MachineIo::default(); self.m];
        for (src, row) in msgs.iter().enumerate() {
            for (dst, items) in row.iter().enumerate() {
                if src != dst {
                    let words = items.len() as u64 * weight;
                    io[src].sent += words;
                    io[dst].received += words;
                }
            }
        }
        self.ledger.record_round(label, io);
        let decoded = if self.backend.is_wire() {
            // Wire path: each non-empty cross pair is one frame
            // (self-boxes and empty outboxes move nothing, matching the
            // zero the ledger charges for them).
            let mut pairs: Vec<(usize, usize)> = Vec::new();
            let mut wire_msgs: Vec<WireMsg<'_, T>> = Vec::new();
            for (src, row) in msgs.iter().enumerate() {
                for (dst, items) in row.iter().enumerate() {
                    if src != dst && !items.is_empty() {
                        pairs.push((src, dst));
                        wire_msgs.push(WireMsg {
                            src,
                            dst: Dst::One(dst),
                            items,
                        });
                    }
                }
            }
            let d = wire_round(&mut self.backend, self.m, label, weight, &wire_msgs);
            Some((pairs, d))
        } else {
            None
        };
        // Transpose ownership: inbox[dst][src] = msgs[src][dst].
        let mut inbox: Vec<Vec<Vec<T>>> = (0..self.m).map(|_| Vec::with_capacity(self.m)).collect();
        for row in msgs {
            for (dst, items) in row.into_iter().enumerate() {
                inbox[dst].push(items);
            }
        }
        // Replace cross-machine boxes with the transited values.
        if let Some((pairs, decoded)) = decoded {
            for ((src, dst), items) in pairs.into_iter().zip(decoded) {
                inbox[dst][src] = items;
            }
        }
        inbox
    }

    /// Reduction to the central machine: gathers one value per machine and
    /// folds them. One round. `weight` is the word width of one value —
    /// scalars weigh 1; wider values (points, tuples) must charge what they
    /// would actually ship.
    pub fn reduce<T, F>(&mut self, label: &str, values: Vec<T>, weight: u64, fold: F) -> T
    where
        T: Send + Wire,
        F: FnMut(T, T) -> T,
    {
        assert_eq!(values.len(), self.m);
        let gathered = self.gather(label, values.into_iter().map(|v| vec![v]).collect(), weight);
        gathered
            .into_iter()
            .reduce(fold)
            .expect("m >= 1 guarantees a value")
    }

    /// All-reduce: reduction to the central machine followed by a broadcast
    /// of the result. Two rounds; every machine knows the answer. The
    /// result broadcast is charged at the same `weight` as the gathered
    /// values (an earlier version hardcoded a 1-word broadcast, which
    /// undercharged every non-scalar reduction).
    pub fn all_reduce<T, F>(&mut self, label: &str, values: Vec<T>, weight: u64, fold: F) -> T
    where
        T: Send + Clone + Wire,
        F: FnMut(T, T) -> T,
    {
        let result = self.reduce(label, values, weight, fold);
        self.broadcast(&format!("{label}/bcast"), 1, weight);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_runs_every_machine() {
        let c = Cluster::new(4, 0);
        let out = c.map(&[10, 20, 30, 40], |i, &x| x + i);
        assert_eq!(out, vec![10, 21, 32, 43]);
        assert_eq!(c.rounds(), 0, "local compute is free");
    }

    #[test]
    fn map_mut_mutates_in_place() {
        let c = Cluster::new(2, 0);
        let mut states = vec![vec![1], vec![2]];
        c.map_mut(&mut states, |_, s| s.push(9));
        assert_eq!(states, vec![vec![1, 9], vec![2, 9]]);
    }

    #[test]
    fn all_broadcast_unions_and_charges() {
        let mut c = Cluster::new(3, 0);
        let union = c.all_broadcast("s", vec![vec![1], vec![2, 3], vec![]], 2);
        assert_eq!(union, vec![1, 2, 3]);
        assert_eq!(c.rounds(), 1);
        let rec = &c.ledger().records()[0];
        // machine 1 contributed 2 items of weight 2 => sends 4 words to each
        // of 2 peers, receives the remaining 1 item (2 words).
        assert_eq!(
            rec.per_machine[1],
            MachineIo {
                sent: 8,
                received: 2
            }
        );
        assert_eq!(
            rec.per_machine[2],
            MachineIo {
                sent: 0,
                received: 6
            }
        );
    }

    #[test]
    fn gather_concatenates_in_machine_order() {
        let mut c = Cluster::new(3, 0);
        let all = c.gather("g", vec![vec![5], vec![], vec![7, 8]], 1);
        assert_eq!(all, vec![5, 7, 8]);
        let rec = &c.ledger().records()[0];
        assert_eq!(
            rec.per_machine[0],
            MachineIo {
                sent: 0,
                received: 2
            }
        );
        assert_eq!(
            rec.per_machine[2],
            MachineIo {
                sent: 2,
                received: 0
            }
        );
    }

    #[test]
    fn broadcast_charges_fanout() {
        let mut c = Cluster::new(4, 0);
        c.broadcast("b", 5, 3);
        let rec = &c.ledger().records()[0];
        assert_eq!(rec.per_machine[0].sent, 5 * 3 * 3);
        assert_eq!(rec.per_machine[1].received, 15);
        assert_eq!(c.rounds(), 1);
    }

    #[test]
    fn scatter_keeps_shape_and_charges_central() {
        let mut c = Cluster::new(3, 0);
        let out = c.scatter("sc", vec![vec![1, 2], vec![3], vec![4]], 1);
        assert_eq!(out, vec![vec![1, 2], vec![3], vec![4]]);
        let rec = &c.ledger().records()[0];
        // central keeps its own share without network traffic
        assert_eq!(
            rec.per_machine[0],
            MachineIo {
                sent: 2,
                received: 0
            }
        );
        assert_eq!(
            rec.per_machine[1],
            MachineIo {
                sent: 0,
                received: 1
            }
        );
    }

    #[test]
    fn exchange_transposes_and_charges() {
        let mut c = Cluster::new(2, 0);
        let inbox = c.exchange(
            "x",
            vec![vec![vec![1], vec![2, 3]], vec![vec![4], vec![]]],
            2,
        );
        assert_eq!(
            inbox,
            vec![vec![vec![1], vec![4]], vec![vec![2, 3], vec![]]]
        );
        let rec = &c.ledger().records()[0];
        // machine 0 sends 2 items to machine 1 (self-box free): 4 words.
        assert_eq!(
            rec.per_machine[0],
            MachineIo {
                sent: 4,
                received: 2
            }
        );
        assert_eq!(
            rec.per_machine[1],
            MachineIo {
                sent: 2,
                received: 4
            }
        );
    }

    #[test]
    fn reduce_and_all_reduce() {
        let mut c = Cluster::new(4, 0);
        let max = c.reduce("r", vec![3, 9, 1, 7], 1, i64::max);
        assert_eq!(max, 9);
        assert_eq!(c.rounds(), 1);
        let sum = c.all_reduce("ar", vec![1, 2, 3, 4], 1, |a, b| a + b);
        assert_eq!(sum, 10);
        assert_eq!(c.rounds(), 3);
    }

    #[test]
    fn all_reduce_charges_result_broadcast_at_value_weight() {
        // Non-scalar reduction: each contribution is a 3-element vector —
        // 3 data words plus its length word, 4 words on the wire — so the
        // gather charges 4 words per non-central machine AND the result
        // broadcast ships 4 words to each non-central machine.
        let mut c = Cluster::new(4, 0);
        let w = 4;
        let merged = c.all_reduce(
            "ar3",
            vec![
                vec![1u64, 0, 0],
                vec![0, 2, 0],
                vec![0, 0, 3],
                vec![1, 1, 1],
            ],
            w,
            |a, b| a.iter().zip(&b).map(|(x, y)| x + y).collect(),
        );
        assert_eq!(merged, vec![2, 3, 4]);
        let recs = c.ledger().records();
        assert_eq!(recs.len(), 2);
        // Gather leg: machines 1..3 each send w words, machine 0 receives.
        assert_eq!(recs[0].label, "ar3");
        assert_eq!(
            recs[0].per_machine[0],
            MachineIo {
                sent: 0,
                received: 3 * w
            }
        );
        for io in &recs[0].per_machine[1..] {
            assert_eq!(
                *io,
                MachineIo {
                    sent: w,
                    received: 0
                }
            );
        }
        // Result leg: machine 0 ships the w-word result to 3 machines.
        assert_eq!(recs[1].label, "ar3/bcast");
        assert_eq!(
            recs[1].per_machine[0],
            MachineIo {
                sent: 3 * w,
                received: 0
            }
        );
        for io in &recs[1].per_machine[1..] {
            assert_eq!(
                *io,
                MachineIo {
                    sent: 0,
                    received: w
                }
            );
        }
    }

    #[test]
    fn single_machine_cluster_works() {
        let mut c = Cluster::new(1, 0);
        let union = c.all_broadcast("s", vec![vec![1, 2]], 1);
        assert_eq!(union, vec![1, 2]);
        let rec = &c.ledger().records()[0];
        assert_eq!(
            rec.per_machine[0],
            MachineIo {
                sent: 0,
                received: 0
            }
        );
    }

    #[test]
    fn rng_changes_with_round() {
        use rand::RngExt;
        let mut c = Cluster::new(2, 42);
        let a: u64 = c.rng(0, 0).random();
        c.broadcast("tick", 1, 1);
        let b: u64 = c.rng(0, 0).random();
        assert_ne!(a, b, "advancing the round must refresh streams");
    }

    #[test]
    fn budget_violations_recorded() {
        let mut c = Cluster::with_budget(2, 0, 4);
        c.gather("big", vec![vec![], vec![0u32; 100]], 1);
        assert_eq!(c.ledger().violations().len(), 2);
    }

    /// Drives every collective once on a cluster; returns the values each
    /// produced so backends can be compared end to end.
    #[allow(clippy::type_complexity)]
    fn drive_all_collectives(
        c: &mut Cluster,
    ) -> (
        Vec<u32>,
        Vec<i64>,
        Vec<Vec<u64>>,
        Vec<Vec<Vec<u32>>>,
        f64,
        u64,
    ) {
        let union = c.all_broadcast("t/ab", vec![vec![1u32, 2], vec![], vec![3]], 2);
        let gathered = c.gather("t/g", vec![vec![-5i64], vec![7, 8], vec![]], 1);
        c.broadcast("t/b", 3, 2);
        let scattered = c.scatter("t/sc", vec![vec![10u64, 11], vec![12], vec![]], 1);
        let inbox = c.exchange(
            "t/x",
            vec![
                vec![vec![1u32], vec![2], vec![]],
                vec![vec![], vec![3], vec![4, 5]],
                vec![vec![6], vec![], vec![]],
            ],
            1,
        );
        let rmax = c.reduce("t/r", vec![0.5f64, -1.0, 2.25], 1, f64::max);
        let ar = c.all_reduce("t/ar", vec![1u64, 2, 3], 1, |a, b| a + b);
        (union, gathered, scattered, inbox, rmax, ar)
    }

    #[test]
    fn loopback_values_and_ledger_match_sim() {
        let mut sim = Cluster::with_transport(3, 9, TransportKind::Sim);
        let mut lb = Cluster::with_transport(3, 9, TransportKind::Loopback);
        let a = drive_all_collectives(&mut sim);
        let b = drive_all_collectives(&mut lb);
        assert_eq!(a, b, "loopback must be value-neutral");
        sim.ledger()
            .assert_identical(lb.ledger(), "sim vs loopback");
        assert!(sim.wire_stats().is_none());
        let stats = lb.wire_stats().expect("loopback measures");
        assert_eq!(stats.conformance_violations, 0);
        // Wire rounds align 1:1 with ledger records and carry exactly
        // 8 bytes per charged word, per machine.
        assert_eq!(stats.rounds.len(), lb.ledger().records().len());
        for (wr, lr) in stats.rounds.iter().zip(lb.ledger().records()) {
            assert_eq!(wr.label, lr.label);
            for (bio, mio) in wr.per_machine.iter().zip(&lr.per_machine) {
                assert_eq!(bio.sent, mio.sent * 8, "round {}", lr.label);
                assert_eq!(bio.received, mio.received * 8, "round {}", lr.label);
            }
        }
    }

    #[test]
    fn loopback_single_machine_matches_sim() {
        let mut sim = Cluster::with_transport(1, 3, TransportKind::Sim);
        let mut lb = Cluster::with_transport(1, 3, TransportKind::Loopback);
        let a = sim.all_broadcast("s", vec![vec![1u32, 2]], 1);
        let b = lb.all_broadcast("s", vec![vec![1u32, 2]], 1);
        sim.broadcast("b", 4, 2);
        lb.broadcast("b", 4, 2);
        assert_eq!(a, b);
        sim.ledger().assert_identical(lb.ledger(), "m=1");
        let stats = lb.wire_stats().unwrap();
        assert_eq!(stats.rounds.len(), 2, "empty rounds still align");
        assert_eq!(stats.payload_bytes, 0);
    }

    #[test]
    fn ship_shards_moves_bytes_off_ledger() {
        let mut lb = Cluster::with_transport(2, 0, TransportKind::Loopback);
        lb.ship_shards("setup", &[vec![1u32, 2, 3], vec![4, 5]], 2);
        assert_eq!(lb.rounds(), 0, "setup plane never touches the ledger");
        assert!(lb.ledger().records().is_empty());
        let stats = lb.wire_stats().unwrap();
        assert_eq!(stats.setup_bytes, 5 * 2 * 8);
        assert_eq!(stats.payload_bytes, 0);
    }

    #[test]
    fn wire_decoded_values_are_authoritative() {
        // The loopback union must be assembled from decoded frames, which
        // preserve exact bit patterns (NaN payloads included).
        let mut lb = Cluster::with_transport(2, 0, TransportKind::Loopback);
        let vals = lb.all_broadcast("nan", vec![vec![f64::NAN], vec![-0.0f64]], 1);
        assert_eq!(vals.len(), 2);
        assert_eq!(vals[0].to_bits(), f64::NAN.to_bits());
        assert_eq!(vals[1].to_bits(), (-0.0f64).to_bits());
    }
}
