//! Cost model: project a [`crate::Ledger`] onto a modeled physical
//! cluster to estimate wall-clock time.
//!
//! The MPC model counts rounds and words; a deployment pays
//! `latency + bytes/bandwidth` per round (the classic alpha–beta model,
//! using the per-round *maximum* machine traffic since the round ends when
//! the slowest machine finishes). This turns the simulator's exact counts
//! into "what would this cost on a Spark-like cluster" estimates — used by
//! experiment E12 and the `cluster_projection` example.

use serde::Serialize;

use crate::ledger::Ledger;

/// An alpha–beta cluster communication model.
///
/// ```
/// use mpc_sim::{Cluster, CostModel};
///
/// let mut cluster = Cluster::new(4, 0);
/// cluster.broadcast("round-1", 1000, 2);
/// let ledger = cluster.into_ledger();
/// let secs = CostModel::mapreduce().estimate_seconds(&ledger);
/// assert!(secs >= 5.0); // one round costs at least the 5 s barrier
/// ```
#[derive(Debug, Clone, Copy, Serialize)]
pub struct CostModel {
    /// Per-round synchronization overhead in seconds (scheduling + barrier).
    pub round_latency_s: f64,
    /// Per-machine network bandwidth in words/second (1 word = 8 bytes).
    pub words_per_second: f64,
}

impl CostModel {
    /// A datacenter-style profile: 50 ms barrier, 10 Gbit/s ≈ 156 M words/s.
    pub fn datacenter() -> Self {
        Self {
            round_latency_s: 0.05,
            words_per_second: 156.25e6,
        }
    }

    /// A MapReduce/Spark-style profile with heavyweight per-round job
    /// scheduling: 5 s barrier, 1 Gbit/s.
    pub fn mapreduce() -> Self {
        Self {
            round_latency_s: 5.0,
            words_per_second: 15.625e6,
        }
    }

    /// A geo-distributed profile: 300 ms barrier, 100 Mbit/s.
    pub fn wide_area() -> Self {
        Self {
            round_latency_s: 0.3,
            words_per_second: 1.5625e6,
        }
    }

    /// Estimated communication wall-clock for an execution:
    /// `Σ_rounds (latency + max_machine_words / bandwidth)`.
    pub fn estimate_seconds(&self, ledger: &Ledger) -> f64 {
        ledger
            .records()
            .iter()
            .map(|r| self.round_latency_s + r.max_machine_words() as f64 / self.words_per_second)
            .sum()
    }

    /// Breaks the estimate into (latency-bound, bandwidth-bound) parts —
    /// constant-round algorithms exist because the first term dominates on
    /// real clusters.
    pub fn breakdown(&self, ledger: &Ledger) -> (f64, f64) {
        let latency = ledger.rounds() as f64 * self.round_latency_s;
        let transfer: f64 = ledger
            .records()
            .iter()
            .map(|r| r.max_machine_words() as f64 / self.words_per_second)
            .sum();
        (latency, transfer)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ledger::MachineIo;

    fn ledger() -> Ledger {
        let mut l = Ledger::new(2);
        l.record_round(
            "a",
            vec![
                MachineIo {
                    sent: 100,
                    received: 0,
                },
                MachineIo {
                    sent: 0,
                    received: 100,
                },
            ],
        );
        l.record_round(
            "b",
            vec![
                MachineIo {
                    sent: 50,
                    received: 0,
                },
                MachineIo {
                    sent: 0,
                    received: 50,
                },
            ],
        );
        l
    }

    #[test]
    fn estimate_sums_latency_and_transfer() {
        let model = CostModel {
            round_latency_s: 1.0,
            words_per_second: 100.0,
        };
        let l = ledger();
        // 2 rounds × 1 s + (100 + 50) / 100 s = 3.5 s
        assert!((model.estimate_seconds(&l) - 3.5).abs() < 1e-12);
        let (lat, xfer) = model.breakdown(&l);
        assert_eq!(lat, 2.0);
        assert!((xfer - 1.5).abs() < 1e-12);
    }

    #[test]
    fn profiles_are_ordered_by_round_cost() {
        let l = ledger();
        let dc = CostModel::datacenter().estimate_seconds(&l);
        let mr = CostModel::mapreduce().estimate_seconds(&l);
        let wa = CostModel::wide_area().estimate_seconds(&l);
        assert!(
            dc < wa && wa < mr,
            "dc {dc} < wide-area {wa} < mapreduce {mr}"
        );
    }

    #[test]
    fn empty_ledger_costs_nothing() {
        let l = Ledger::new(3);
        assert_eq!(CostModel::datacenter().estimate_seconds(&l), 0.0);
    }
}
