//! Round and communication accounting.
//!
//! The ledger is the measurement instrument behind experiments E4 (round
//! complexity), E5 (per-machine communication) and E7 (edge decay): every
//! collective in [`crate::Cluster`] appends one [`RoundRecord`] with the
//! exact number of words each machine sent and received.

use serde::Serialize;

/// Words sent and received by one machine in one round.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize)]
pub struct MachineIo {
    /// Words this machine sent during the round.
    pub sent: u64,
    /// Words this machine received during the round.
    pub received: u64,
}

impl MachineIo {
    /// Total traffic through the machine (the quantity the MPC model
    /// bounds by local memory).
    pub fn total(&self) -> u64 {
        self.sent + self.received
    }
}

/// Accounting for one MPC round.
#[derive(Debug, Clone, Serialize)]
pub struct RoundRecord {
    /// 1-based round index.
    pub round: u64,
    /// Human-readable label of the collective that consumed the round.
    pub label: String,
    /// Per-machine traffic.
    pub per_machine: Vec<MachineIo>,
}

impl RoundRecord {
    /// The largest per-machine traffic in this round.
    pub fn max_machine_words(&self) -> u64 {
        self.per_machine
            .iter()
            .map(MachineIo::total)
            .max()
            .unwrap_or(0)
    }

    /// Total words moved in this round (each word counted once on the send
    /// side).
    pub fn total_sent(&self) -> u64 {
        self.per_machine.iter().map(|io| io.sent).sum()
    }
}

/// A recorded breach of the per-round, per-machine communication budget.
///
/// The simulator never aborts on a breach — the paper's bounds are
/// with-high-probability, so rare breaches under aggressive "practical"
/// constants are data, not errors.
#[derive(Debug, Clone, Serialize)]
pub struct Violation {
    /// Round in which the breach happened.
    pub round: u64,
    /// Label of the offending collective.
    pub label: String,
    /// Machine that exceeded the budget.
    pub machine: usize,
    /// Words the machine moved.
    pub words: u64,
    /// The configured budget.
    pub budget: u64,
}

/// The complete round-by-round communication ledger of one simulated
/// MPC execution.
#[derive(Debug, Clone, Serialize)]
pub struct Ledger {
    m: usize,
    rounds: Vec<RoundRecord>,
    budget: Option<u64>,
    violations: Vec<Violation>,
    peak_memory: Vec<u64>,
}

impl Ledger {
    /// A fresh ledger for `m` machines with no communication budget.
    pub fn new(m: usize) -> Self {
        assert!(m > 0, "need at least one machine");
        Self {
            m,
            rounds: Vec::new(),
            budget: None,
            violations: Vec::new(),
            peak_memory: vec![0; m],
        }
    }

    /// Sets the per-round per-machine word budget; traffic beyond it is
    /// recorded as a [`Violation`].
    pub fn set_budget(&mut self, words: u64) {
        self.budget = Some(words);
    }

    /// Number of machines.
    pub fn m(&self) -> usize {
        self.m
    }

    /// Number of rounds consumed so far.
    pub fn rounds(&self) -> u64 {
        self.rounds.len() as u64
    }

    /// The per-round records.
    pub fn records(&self) -> &[RoundRecord] {
        &self.rounds
    }

    /// All recorded budget violations.
    pub fn violations(&self) -> &[Violation] {
        &self.violations
    }

    /// Maximum words any single machine moved in any single round — the
    /// quantity the MPC model constrains.
    pub fn max_machine_words_per_round(&self) -> u64 {
        self.rounds
            .iter()
            .map(RoundRecord::max_machine_words)
            .max()
            .unwrap_or(0)
    }

    /// Maximum total words any single machine moved across the whole
    /// execution (the paper's `Õ(mk)` communication-per-machine measure).
    pub fn max_machine_words(&self) -> u64 {
        let mut per_machine = vec![0u64; self.m];
        for r in &self.rounds {
            for (i, io) in r.per_machine.iter().enumerate() {
                per_machine[i] += io.total();
            }
        }
        per_machine.into_iter().max().unwrap_or(0)
    }

    /// Total words sent across all machines and rounds.
    pub fn total_words(&self) -> u64 {
        self.rounds.iter().map(RoundRecord::total_sent).sum()
    }

    /// Raises machine `machine`'s peak resident memory to at least `words`
    /// (the paper's third resource, `Õ(n/m + mk)` per machine). Collectives
    /// raise it automatically by each round's traffic; algorithms
    /// additionally note their resident state.
    pub fn note_memory(&mut self, machine: usize, words: u64) {
        let slot = &mut self.peak_memory[machine];
        *slot = (*slot).max(words);
    }

    /// The largest peak resident memory noted on any machine.
    pub fn max_machine_memory(&self) -> u64 {
        self.peak_memory.iter().copied().max().unwrap_or(0)
    }

    /// Panics unless `self` and `other` recorded the same execution:
    /// equal round counts, round-by-round equal labels and per-machine
    /// traffic, and equal peak memory. `ctx` prefixes every panic
    /// message.
    ///
    /// This is the assertion behind the determinism and kernel-neutrality
    /// suites: local compute — thread counts, batched kernels,
    /// memoization — must never perturb the communication ledger.
    pub fn assert_identical(&self, other: &Ledger, ctx: &str) {
        assert_eq!(self.rounds(), other.rounds(), "{ctx}: round counts");
        for (ra, rb) in self.rounds.iter().zip(&other.rounds) {
            assert_eq!(ra.label, rb.label, "{ctx}: round {} label", ra.round);
            assert_eq!(
                ra.per_machine, rb.per_machine,
                "{ctx}: round {} ({}) traffic",
                ra.round, ra.label
            );
        }
        assert_eq!(
            self.max_machine_memory(),
            other.max_machine_memory(),
            "{ctx}: peak memory"
        );
    }

    /// Records one finished round. `per_machine.len()` must equal `m`.
    pub fn record_round(&mut self, label: &str, per_machine: Vec<MachineIo>) {
        assert_eq!(
            per_machine.len(),
            self.m,
            "round record must cover every machine"
        );
        let round = self.rounds() + 1;
        if let Some(budget) = self.budget {
            for (machine, io) in per_machine.iter().enumerate() {
                if io.total() > budget {
                    self.violations.push(Violation {
                        round,
                        label: label.to_string(),
                        machine,
                        words: io.total(),
                        budget,
                    });
                }
            }
        }
        for (machine, io) in per_machine.iter().enumerate() {
            // A machine must at least buffer what it moves in a round.
            self.note_memory(machine, io.total());
        }
        self.rounds.push(RoundRecord {
            round,
            label: label.to_string(),
            per_machine,
        });
    }

    /// Aggregates rounds and sent words by collective label — where does
    /// the round/communication budget actually go? Returned sorted by
    /// total words, descending.
    pub fn summary_by_label(&self) -> Vec<(String, u64, u64)> {
        let mut acc: std::collections::BTreeMap<&str, (u64, u64)> =
            std::collections::BTreeMap::new();
        for r in &self.rounds {
            let e = acc.entry(&r.label).or_insert((0, 0));
            e.0 += 1;
            e.1 += r.total_sent();
        }
        let mut out: Vec<(String, u64, u64)> = acc
            .into_iter()
            .map(|(label, (rounds, words))| (label.to_string(), rounds, words))
            .collect();
        out.sort_by(|a, b| b.2.cmp(&a.2).then(a.0.cmp(&b.0)));
        out
    }

    /// Serializes the per-round records as CSV
    /// (`round,label,machine,sent,received`) — the raw material for
    /// plotting round/communication profiles outside Rust.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("round,label,machine,sent,received\n");
        for r in &self.rounds {
            for (machine, io) in r.per_machine.iter().enumerate() {
                out.push_str(&format!(
                    "{},{},{},{},{}\n",
                    r.round, r.label, machine, io.sent, io.received
                ));
            }
        }
        out
    }

    /// Absorbs the rounds of another ledger (used when a sub-algorithm ran
    /// on its own cluster handle), renumbering them to follow this one.
    pub fn absorb(&mut self, other: Ledger) {
        assert_eq!(
            other.m, self.m,
            "cannot merge ledgers of different cluster sizes"
        );
        for r in other.rounds {
            self.record_round(&r.label, r.per_machine);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn io(sent: u64, received: u64) -> MachineIo {
        MachineIo { sent, received }
    }

    #[test]
    fn round_counting_and_maxima() {
        let mut l = Ledger::new(3);
        assert_eq!(l.rounds(), 0);
        l.record_round("a", vec![io(10, 0), io(0, 5), io(0, 5)]);
        l.record_round("b", vec![io(1, 1), io(2, 2), io(30, 0)]);
        assert_eq!(l.rounds(), 2);
        assert_eq!(l.max_machine_words_per_round(), 30);
        // machine 2 moved (0+5) + (30+0) = 35 total, the largest
        assert_eq!(l.max_machine_words(), 35);
        assert_eq!(l.total_words(), 10 + 33);
    }

    #[test]
    fn budget_violations_are_recorded_not_fatal() {
        let mut l = Ledger::new(2);
        l.set_budget(10);
        l.record_round("ok", vec![io(5, 5), io(3, 3)]);
        l.record_round("too-big", vec![io(50, 0), io(0, 50)]);
        assert_eq!(l.violations().len(), 2);
        assert_eq!(l.violations()[0].round, 2);
        assert_eq!(l.violations()[0].words, 50);
        assert_eq!(l.rounds(), 2);
    }

    #[test]
    fn absorb_renumbers() {
        let mut a = Ledger::new(2);
        a.record_round("x", vec![io(1, 0), io(0, 1)]);
        let mut b = Ledger::new(2);
        b.record_round("y", vec![io(2, 0), io(0, 2)]);
        b.record_round("z", vec![io(3, 0), io(0, 3)]);
        a.absorb(b);
        assert_eq!(a.rounds(), 3);
        assert_eq!(a.records()[2].round, 3);
        assert_eq!(a.records()[2].label, "z");
    }

    #[test]
    #[should_panic(expected = "different cluster sizes")]
    fn absorb_rejects_mismatched_m() {
        let mut a = Ledger::new(2);
        a.absorb(Ledger::new(3));
    }

    #[test]
    fn summary_groups_by_label() {
        let mut l = Ledger::new(2);
        l.record_round("x", vec![io(5, 0), io(0, 5)]);
        l.record_round("y", vec![io(1, 0), io(0, 1)]);
        l.record_round("x", vec![io(2, 0), io(0, 2)]);
        let s = l.summary_by_label();
        assert_eq!(s, vec![("x".to_string(), 2, 7), ("y".to_string(), 1, 1)]);
    }

    #[test]
    fn csv_export_lists_every_machine_round() {
        let mut l = Ledger::new(2);
        l.record_round("alpha", vec![io(3, 0), io(0, 3)]);
        let csv = l.to_csv();
        assert!(csv.starts_with("round,label,machine,sent,received\n"));
        assert!(csv.contains("1,alpha,0,3,0"));
        assert!(csv.contains("1,alpha,1,0,3"));
        assert_eq!(csv.lines().count(), 3);
    }

    #[test]
    fn memory_tracking_takes_maxima() {
        let mut l = Ledger::new(2);
        assert_eq!(l.max_machine_memory(), 0);
        l.note_memory(0, 10);
        l.note_memory(0, 5);
        l.note_memory(1, 7);
        assert_eq!(l.max_machine_memory(), 10);
        // record_round raises memory to at least the traffic
        l.record_round("big", vec![io(50, 0), io(0, 2)]);
        assert_eq!(l.max_machine_memory(), 50);
    }

    #[test]
    fn empty_ledger_maxima_are_zero() {
        let l = Ledger::new(4);
        assert_eq!(l.max_machine_words(), 0);
        assert_eq!(l.max_machine_words_per_round(), 0);
        assert_eq!(l.total_words(), 0);
    }
}
