//! Instrumented simulator for the massively parallel computation (MPC)
//! model of Karloff, Suri and Vassilvitskii (SODA 2010) — the substrate the
//! paper's algorithms run on.
//!
//! The MPC model is defined by three resources, and this simulator measures
//! all of them:
//!
//! * **rounds** — computation proceeds in synchronous supersteps; messages
//!   sent in round `r` are delivered at the start of round `r + 1`;
//! * **communication** — the total volume sent *and* received by each
//!   machine in a round must not exceed its local memory;
//! * **memory** — each machine holds `Õ(n/m + mk)` words in the paper's
//!   regime.
//!
//! [`Cluster`] executes machine-local computation in parallel (rayon) and
//! exposes the collective operations the paper's algorithms use
//! (all-to-all broadcast, gather/scatter through the *central machine*,
//! scalar reductions). Every collective advances the round counter and
//! charges per-machine sent/received words to the [`Ledger`]; budget
//! violations are recorded, never silently ignored, so experiments can
//! verify the paper's `Õ(mk)` claims empirically.
//!
//! Randomness is deterministic: each (machine, round, call-site salt)
//! triple derives an independent ChaCha8 stream from the cluster seed, so
//! results are reproducible across runs and rayon schedules.

pub mod cluster;
pub mod cost;
pub mod ledger;
pub mod partition;
pub mod process;
pub mod rng;
pub mod transport;
pub mod wire;

pub use cluster::Cluster;
pub use cost::CostModel;
pub use ledger::{Ledger, MachineIo, RoundRecord, Violation};
pub use partition::Partition;
pub use process::transport_worker_main;
pub use rng::machine_rng;
pub use transport::{ByteIo, TransportKind, WireRound, WireStats, WireSummary};
pub use wire::Wire;
