//! Distribution of input items across machines.
//!
//! The paper assumes "the input set V is initially partitioned into m
//! subsets V_1, …, V_m, each stored in one of the machines" (§2) and its
//! guarantees are oblivious to *how*. These constructors let experiments
//! probe that obliviousness, from balanced to adversarially skewed layouts.

use rand::{RngExt, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::Serialize;

/// An assignment of items `0..n` to machines `0..m`.
///
/// ```
/// use mpc_sim::Partition;
///
/// let p = Partition::round_robin(10, 3);
/// assert_eq!(p.items(0), &[0, 3, 6, 9]);
/// assert_eq!(p.owner(4), 1);
/// assert_eq!(p.max_load(), 4);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct Partition {
    per_machine: Vec<Vec<u32>>,
    owner: Vec<u32>,
}

impl Partition {
    fn from_owner(m: usize, owner: Vec<u32>) -> Self {
        let mut per_machine = vec![Vec::new(); m];
        for (item, &mach) in owner.iter().enumerate() {
            per_machine[mach as usize].push(item as u32);
        }
        Self { per_machine, owner }
    }

    /// Item `i` goes to machine `i mod m` (perfectly balanced, every
    /// machine sees an interleaved slice of the input order).
    pub fn round_robin(n: usize, m: usize) -> Self {
        assert!(m > 0);
        Self::from_owner(m, (0..n as u32).map(|i| i % m as u32).collect())
    }

    /// Items are split into `m` contiguous blocks in input order (the
    /// layout a distributed file system produces).
    pub fn contiguous(n: usize, m: usize) -> Self {
        assert!(m > 0);
        let owner = (0..n)
            .map(|i| ((i * m) / n.max(1)).min(m - 1) as u32)
            .collect();
        Self::from_owner(m, owner)
    }

    /// Each item goes to a uniformly random machine.
    pub fn random(n: usize, m: usize, seed: u64) -> Self {
        assert!(m > 0);
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        Self::from_owner(m, (0..n).map(|_| rng.random_range(0..m) as u32).collect())
    }

    /// Adversarially skewed: machine `j` receives a share proportional to
    /// `1/(j+1)^alpha`, assigned in input order. `alpha = 0` degenerates to
    /// [`Partition::contiguous`]; larger `alpha` concentrates most items on
    /// machine 0.
    pub fn skewed(n: usize, m: usize, alpha: f64, seed: u64) -> Self {
        assert!(m > 0);
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let weights: Vec<f64> = (0..m).map(|j| 1.0 / ((j + 1) as f64).powf(alpha)).collect();
        let total: f64 = weights.iter().sum();
        let mut owner = Vec::with_capacity(n);
        for _ in 0..n {
            let mut x = rng.random_range(0.0..total);
            let mut mach = m - 1;
            for (j, &w) in weights.iter().enumerate() {
                if x < w {
                    mach = j;
                    break;
                }
                x -= w;
            }
            owner.push(mach as u32);
        }
        Self::from_owner(m, owner)
    }

    /// Number of machines.
    pub fn m(&self) -> usize {
        self.per_machine.len()
    }

    /// Number of items.
    pub fn n(&self) -> usize {
        self.owner.len()
    }

    /// Items stored on machine `i`.
    pub fn items(&self, machine: usize) -> &[u32] {
        &self.per_machine[machine]
    }

    /// All machines' item lists.
    pub fn all_items(&self) -> &[Vec<u32>] {
        &self.per_machine
    }

    /// The machine storing `item`.
    pub fn owner(&self, item: u32) -> usize {
        self.owner[item as usize] as usize
    }

    /// Size of the largest machine (the `n/m` term of the memory bound).
    pub fn max_load(&self) -> usize {
        self.per_machine.iter().map(Vec::len).max().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn covers_all(p: &Partition, n: usize) {
        let mut seen = vec![false; n];
        for m in 0..p.m() {
            for &it in p.items(m) {
                assert!(!seen[it as usize], "item {it} assigned twice");
                seen[it as usize] = true;
                assert_eq!(p.owner(it), m);
            }
        }
        assert!(seen.into_iter().all(|s| s), "some item unassigned");
    }

    #[test]
    fn round_robin_is_balanced() {
        let p = Partition::round_robin(10, 3);
        covers_all(&p, 10);
        assert_eq!(p.items(0), &[0, 3, 6, 9]);
        assert_eq!(p.max_load(), 4);
    }

    #[test]
    fn contiguous_blocks() {
        let p = Partition::contiguous(9, 3);
        covers_all(&p, 9);
        assert_eq!(p.items(0), &[0, 1, 2]);
        assert_eq!(p.items(2), &[6, 7, 8]);
    }

    #[test]
    fn contiguous_handles_n_less_than_m() {
        let p = Partition::contiguous(2, 5);
        covers_all(&p, 2);
        assert_eq!(p.n(), 2);
    }

    #[test]
    fn random_is_deterministic_and_total() {
        let p1 = Partition::random(100, 7, 3);
        let p2 = Partition::random(100, 7, 3);
        assert_eq!(p1, p2);
        covers_all(&p1, 100);
        assert_ne!(p1, Partition::random(100, 7, 4));
    }

    #[test]
    fn skewed_concentrates_on_low_machines() {
        let p = Partition::skewed(10_000, 8, 2.0, 1);
        covers_all(&p, 10_000);
        assert!(
            p.items(0).len() > 3 * p.items(7).len(),
            "alpha=2 should load machine 0 far more than machine 7 ({} vs {})",
            p.items(0).len(),
            p.items(7).len()
        );
    }

    #[test]
    fn empty_input_is_fine() {
        let p = Partition::round_robin(0, 4);
        assert_eq!(p.n(), 0);
        assert_eq!(p.max_load(), 0);
    }
}
