//! The multi-process transport: a coordinator driving `m` worker
//! processes over stdin/stdout pipes.
//!
//! ### Architecture
//!
//! The driver (the process that built the [`crate::Cluster`]) keeps
//! running the algorithm exactly as in the `sim` and `loopback` backends —
//! per-machine state, `map` closures, collective semantics are untouched.
//! What changes is the **data plane**: at setup each worker receives its
//! machine's point shard (shipped once, held resident), and every
//! collective's payload physically transits the worker processes as
//! [`crate::wire`] frames:
//!
//! 1. **send leg** — the coordinator hands worker `i` the frames machine
//!    `i` originates this round (with their destination lists); the worker
//!    parses the headers, tallies its own sent bytes, and sends the frames
//!    back up the pipe. The echoed bytes — which made a full round trip
//!    through the process playing machine `i` — become the authoritative
//!    payload the coordinator decodes.
//! 2. **deliver leg** — the coordinator forwards each frame to its
//!    destination workers; each worker tallies received bytes and replies
//!    with an FNV-1a fingerprint of what arrived plus its per-round
//!    `sent/received` byte counters.
//!
//! At the `record_round` barrier the coordinator merges the worker-side
//! rows into [`crate::transport::WireStats`] and cross-checks them against
//! the ledger's `MachineIo` (× 8 bytes/word): ledger accounting stays
//! single-writer and deterministic, and any disagreement between what the
//! ledger charged and what the workers measured is recorded as a
//! conformance violation (it would be a transport bug, never data).
//!
//! Known limitation, stated plainly: workers own the data plane and the
//! shard residency, but machine-local *compute* still runs in the
//! coordinator's worker pool — shipping `map` closures across process
//! boundaries needs a serializable task vocabulary, which is the named
//! headroom in ROADMAP item 4's closure note. Wall-clock numbers from this
//! backend measure real IPC framing, not parallel local work.
//!
//! ### Protocol
//!
//! Every message is `[op: u8][len: u32 LE][payload]`; payloads use the
//! compact [`serde`] codec. Workers are in lockstep with the coordinator
//! by construction (strict request/response, one exchange in flight per
//! worker), so a protocol error is always fatal and loud.

use std::io::{BufReader, Read, Write};
use std::process::{Child, ChildStdin, ChildStdout, Command, Stdio};

use serde::{Deserialize, Serialize};

use crate::wire::{FrameHeader, FRAME_HEADER_BYTES};

/// Protocol version; bumped on any message-shape change.
pub const PROTOCOL_VERSION: u32 = 1;

/// `b"KCTW"` — k-center transport worker.
pub const HELLO_MAGIC: u32 = u32::from_le_bytes(*b"KCTW");

const OP_HELLO: u8 = 1;
const OP_SHARD: u8 = 2;
const OP_SEND: u8 = 3;
const OP_DELIVER: u8 = 4;
const OP_SHUTDOWN: u8 = 5;
const OP_READY: u8 = 101;
const OP_SHARDED: u8 = 102;
const OP_SENT: u8 = 103;
const OP_DELIVERED: u8 = 104;
const OP_BYE: u8 = 105;

/// Maximum accepted message payload (1 GiB) — a corrupted length prefix
/// must not look like an allocation request.
const MAX_MSG_BYTES: u32 = 1 << 30;

fn write_msg<W: Write>(w: &mut W, op: u8, payload: &[u8]) -> std::io::Result<()> {
    w.write_all(&[op])?;
    w.write_all(&(payload.len() as u32).to_le_bytes())?;
    w.write_all(payload)?;
    w.flush()
}

fn read_msg<R: Read>(r: &mut R, buf: &mut Vec<u8>) -> std::io::Result<u8> {
    let mut head = [0u8; 5];
    r.read_exact(&mut head)?;
    let op = head[0];
    let len = u32::from_le_bytes(head[1..5].try_into().expect("4 bytes"));
    if len > MAX_MSG_BYTES {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!("transport message claims {len} bytes"),
        ));
    }
    buf.clear();
    buf.resize(len as usize, 0);
    r.read_exact(buf)?;
    Ok(op)
}

fn protocol_err(context: &str) -> std::io::Error {
    std::io::Error::new(std::io::ErrorKind::InvalidData, context.to_string())
}

/// Resolves the worker executable: `KCENTER_WORKER_EXE` wins; otherwise
/// look for the `mpc-clustering` binary next to (or one directory above,
/// for `examples/`) the current executable; a binary already named
/// `mpc-clustering` re-executes itself.
pub fn worker_exe() -> Result<std::path::PathBuf, String> {
    if let Ok(exe) = std::env::var("KCENTER_WORKER_EXE") {
        let p = std::path::PathBuf::from(exe);
        if p.is_file() {
            return Ok(p);
        }
        return Err(format!("KCENTER_WORKER_EXE={} does not exist", p.display()));
    }
    let me = std::env::current_exe().map_err(|e| format!("current_exe: {e}"))?;
    if me
        .file_stem()
        .is_some_and(|s| s.to_string_lossy().starts_with("mpc-clustering"))
    {
        return Ok(me);
    }
    let name = format!("mpc-clustering{}", std::env::consts::EXE_SUFFIX);
    for dir in [me.parent(), me.parent().and_then(|p| p.parent())]
        .into_iter()
        .flatten()
    {
        let cand = dir.join(&name);
        if cand.is_file() {
            return Ok(cand);
        }
    }
    Err(
        "cannot locate the worker executable for KCENTER_TRANSPORT=process: set \
         KCENTER_WORKER_EXE to the mpc-clustering binary (it hosts the \
         `transport-worker` entry point)"
            .to_string(),
    )
}

/// One spawned worker process and its pipes.
struct Worker {
    child: Child,
    tx: ChildStdin,
    rx: BufReader<ChildStdout>,
}

/// The coordinator's handle on the `m` worker processes.
pub(crate) struct ProcessPool {
    workers: Vec<Worker>,
    /// Reused reply buffer — steady-state rounds allocate nothing here.
    reply: Vec<u8>,
    /// Reused request buffer.
    request: Vec<u8>,
}

impl std::fmt::Debug for ProcessPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ProcessPool")
            .field("workers", &self.workers.len())
            .finish()
    }
}

impl ProcessPool {
    /// Spawns and handshakes `m` workers. Panics on any failure — a
    /// process cluster that silently fell back to in-process simulation
    /// would invalidate every measurement taken on it.
    pub(crate) fn spawn(m: usize, seed: u64) -> Self {
        let exe = worker_exe().unwrap_or_else(|e| panic!("{e}"));
        let mut workers = Vec::with_capacity(m);
        for machine in 0..m {
            let mut child = Command::new(&exe)
                .arg("transport-worker")
                .stdin(Stdio::piped())
                .stdout(Stdio::piped())
                .stderr(Stdio::inherit())
                .spawn()
                .unwrap_or_else(|e| panic!("spawn worker {machine} ({}): {e}", exe.display()));
            let tx = child.stdin.take().expect("piped stdin");
            let rx = BufReader::new(child.stdout.take().expect("piped stdout"));
            workers.push(Worker { child, tx, rx });
        }
        let mut pool = Self {
            workers,
            reply: Vec::new(),
            request: Vec::new(),
        };
        for machine in 0..m {
            let mut payload = Vec::new();
            (
                HELLO_MAGIC,
                PROTOCOL_VERSION,
                machine as u64,
                m as u64,
                seed,
            )
                .to_bytes(&mut payload);
            let echoed: u64 = pool
                .roundtrip(machine, OP_HELLO, &payload, OP_READY)
                .and_then(|()| {
                    u64::from_bytes_exact(&pool.reply).map_err(|e| protocol_err(&e.to_string()))
                })
                .unwrap_or_else(|e| panic!("worker {machine} handshake: {e}"));
            assert_eq!(echoed, machine as u64, "worker answered for wrong machine");
        }
        pool
    }

    /// One strict request/response exchange with worker `machine`; the
    /// reply payload lands in `self.reply`.
    fn roundtrip(
        &mut self,
        machine: usize,
        op: u8,
        payload: &[u8],
        expect: u8,
    ) -> std::io::Result<()> {
        let w = &mut self.workers[machine];
        write_msg(&mut w.tx, op, payload)?;
        let got = read_msg(&mut w.rx, &mut self.reply)?;
        if got != expect {
            return Err(protocol_err(&format!(
                "worker {machine}: expected op {expect}, got {got}"
            )));
        }
        Ok(())
    }

    /// Ships worker `machine` its resident shard frame; returns the
    /// worker-reported total resident bytes.
    pub(crate) fn ship_shard(&mut self, machine: usize, frame: &[u8]) -> u64 {
        self.roundtrip(machine, OP_SHARD, frame, OP_SHARDED)
            .and_then(|()| {
                u64::from_bytes_exact(&self.reply).map_err(|e| protocol_err(&e.to_string()))
            })
            .unwrap_or_else(|e| panic!("worker {machine} shard: {e}"))
    }

    /// Send leg: hands worker `machine` the frames it originates
    /// (`frames[k] = (dsts, frame_bytes)`), receives the echoed frames
    /// appended to `rx` (returning one range per frame, in order) plus the
    /// worker's own sent-byte tally.
    pub(crate) fn send_leg(
        &mut self,
        machine: usize,
        label: &str,
        frames: &[(Vec<u32>, &[u8])],
        rx: &mut Vec<u8>,
    ) -> (Vec<std::ops::Range<usize>>, u64, u64) {
        self.request.clear();
        label.to_bytes(&mut self.request);
        (frames.len() as u64).to_bytes(&mut self.request);
        for (dsts, bytes) in frames {
            dsts.to_bytes(&mut self.request);
            (bytes.len() as u64).to_bytes(&mut self.request);
            self.request.extend_from_slice(bytes);
        }
        let req = std::mem::take(&mut self.request);
        let res = self.roundtrip(machine, OP_SEND, &req, OP_SENT);
        self.request = req;
        res.unwrap_or_else(|e| panic!("worker {machine} send leg ({label}): {e}"));

        fn parse_sent(
            mut cursor: &[u8],
            frames: &[(Vec<u32>, &[u8])],
            rx: &mut Vec<u8>,
        ) -> Result<(Vec<std::ops::Range<usize>>, u64, u64), serde::DecodeError> {
            let n = u64::from_bytes(&mut cursor)? as usize;
            let mut ranges = Vec::with_capacity(n);
            let mut mismatches = 0u64;
            for k in 0..n {
                let len = u64::from_bytes(&mut cursor)? as usize;
                let bytes = serde::take(&mut cursor, len)?;
                let start = rx.len();
                rx.extend_from_slice(bytes);
                ranges.push(start..rx.len());
                if k >= frames.len() || bytes != frames[k].1 {
                    mismatches += 1;
                }
            }
            let sent_bytes = u64::from_bytes(&mut cursor)?;
            Ok((ranges, sent_bytes, mismatches))
        }
        parse_sent(&self.reply, frames, rx)
            .unwrap_or_else(|e| panic!("worker {machine} SENT reply ({label}): {e}"))
    }

    /// Deliver leg: forwards `frames` (byte slices out of `rx`) to worker
    /// `machine`; returns `(fnv, sent_bytes, received_bytes)` as measured
    /// by the worker for this round.
    pub(crate) fn deliver_leg(
        &mut self,
        machine: usize,
        label: &str,
        frames: &[&[u8]],
    ) -> (u64, u64, u64) {
        self.request.clear();
        label.to_bytes(&mut self.request);
        (frames.len() as u64).to_bytes(&mut self.request);
        for bytes in frames {
            (bytes.len() as u64).to_bytes(&mut self.request);
            self.request.extend_from_slice(bytes);
        }
        let req = std::mem::take(&mut self.request);
        let res = self.roundtrip(machine, OP_DELIVER, &req, OP_DELIVERED);
        self.request = req;
        res.unwrap_or_else(|e| panic!("worker {machine} deliver leg ({label}): {e}"));
        <(u64, u64, u64)>::from_bytes_exact(&self.reply)
            .unwrap_or_else(|e| panic!("worker {machine} DELIVERED reply ({label}): {e}"))
    }
}

impl Drop for ProcessPool {
    fn drop(&mut self) {
        for (machine, w) in self.workers.iter_mut().enumerate() {
            let _ = write_msg(&mut w.tx, OP_SHUTDOWN, &[]);
            let mut buf = Vec::new();
            let _ = read_msg(&mut w.rx, &mut buf); // BYE, best effort
            if w.child.wait().is_err() {
                let _ = w.child.kill();
                eprintln!("transport worker {machine} did not exit cleanly");
            }
        }
    }
}

/// Entry point of the `transport-worker` hidden subcommand: serve the
/// coordinator over stdin/stdout until SHUTDOWN. Never prints to stdout
/// outside the protocol (stderr is inherited and free-form).
pub fn transport_worker_main() -> std::process::ExitCode {
    match worker_loop() {
        Ok(()) => std::process::ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("transport-worker: {e}");
            std::process::ExitCode::FAILURE
        }
    }
}

fn worker_loop() -> std::io::Result<()> {
    let stdin = std::io::stdin();
    let stdout = std::io::stdout();
    let mut rx = stdin.lock();
    let mut tx = stdout.lock();

    let mut machine: u64 = u64::MAX;
    let mut shard_resident: u64 = 0;
    let mut round_label = String::new();
    let mut round_sent: u64 = 0;
    let mut round_received: u64 = 0;

    let mut buf: Vec<u8> = Vec::new();
    let mut reply: Vec<u8> = Vec::new();
    loop {
        let op = read_msg(&mut rx, &mut buf)?;
        reply.clear();
        match op {
            OP_HELLO => {
                let (magic, version, mach, _m, _seed) =
                    <(u32, u32, u64, u64, u64)>::from_bytes_exact(&buf)
                        .map_err(|e| protocol_err(&e.to_string()))?;
                if magic != HELLO_MAGIC || version != PROTOCOL_VERSION {
                    return Err(protocol_err("bad hello magic/version"));
                }
                machine = mach;
                mach.to_bytes(&mut reply);
                write_msg(&mut tx, OP_READY, &reply)?;
            }
            OP_SHARD => {
                // Validate the frame header, hold the shard resident.
                let mut cursor = buf.as_slice();
                FrameHeader::read(&mut cursor).map_err(|e| protocol_err(&e.to_string()))?;
                shard_resident += buf.len() as u64;
                shard_resident.to_bytes(&mut reply);
                write_msg(&mut tx, OP_SHARDED, &reply)?;
            }
            OP_SEND => {
                // This worker *is* machine `machine`: it originates these
                // frames. Parse, tally sent bytes (payload × fan-out, the
                // ledger's convention), echo the frames back up.
                let mut cursor = buf.as_slice();
                round_label =
                    String::from_bytes(&mut cursor).map_err(|e| protocol_err(&e.to_string()))?;
                round_sent = 0;
                round_received = 0;
                let n = u64::from_bytes(&mut cursor).map_err(|e| protocol_err(&e.to_string()))?;
                n.to_bytes(&mut reply);
                for _ in 0..n {
                    let dsts = Vec::<u32>::from_bytes(&mut cursor)
                        .map_err(|e| protocol_err(&e.to_string()))?;
                    let len =
                        u64::from_bytes(&mut cursor).map_err(|e| protocol_err(&e.to_string()))?;
                    let frame = serde::take(&mut cursor, len as usize)
                        .map_err(|e| protocol_err(&e.to_string()))?;
                    let mut hc = frame;
                    let header =
                        FrameHeader::read(&mut hc).map_err(|e| protocol_err(&e.to_string()))?;
                    debug_assert_eq!(
                        frame.len(),
                        FRAME_HEADER_BYTES + header.payload_len as usize
                    );
                    round_sent += header.payload_len as u64 * dsts.len() as u64;
                    (frame.len() as u64).to_bytes(&mut reply);
                    reply.extend_from_slice(frame);
                }
                round_sent.to_bytes(&mut reply);
                write_msg(&mut tx, OP_SENT, &reply)?;
            }
            OP_DELIVER => {
                // Frames addressed to this machine arrive; tally received
                // payload bytes and fingerprint exactly what came in.
                let mut cursor = buf.as_slice();
                let label =
                    String::from_bytes(&mut cursor).map_err(|e| protocol_err(&e.to_string()))?;
                if label != round_label {
                    return Err(protocol_err(&format!(
                        "machine {machine}: deliver label {label:?} != send label {round_label:?} \
                         (coordinator/worker desync)"
                    )));
                }
                let n = u64::from_bytes(&mut cursor).map_err(|e| protocol_err(&e.to_string()))?;
                let mut h: u64 = 0xcbf2_9ce4_8422_2325;
                for _ in 0..n {
                    let len =
                        u64::from_bytes(&mut cursor).map_err(|e| protocol_err(&e.to_string()))?;
                    let frame = serde::take(&mut cursor, len as usize)
                        .map_err(|e| protocol_err(&e.to_string()))?;
                    let mut hc = frame;
                    let header =
                        FrameHeader::read(&mut hc).map_err(|e| protocol_err(&e.to_string()))?;
                    round_received += header.payload_len as u64;
                    for &b in frame {
                        h ^= b as u64;
                        h = h.wrapping_mul(0x0000_0100_0000_01b3);
                    }
                }
                (h, round_sent, round_received).to_bytes(&mut reply);
                write_msg(&mut tx, OP_DELIVERED, &reply)?;
            }
            OP_SHUTDOWN => {
                write_msg(&mut tx, OP_BYE, &[])?;
                return Ok(());
            }
            other => return Err(protocol_err(&format!("unknown opcode {other}"))),
        }
    }
}

/// Coordinator-side fingerprint matching the worker's DELIVERED hash:
/// FNV-1a over the concatenation of the frames, in delivery order.
pub(crate) fn frames_fnv(frames: &[&[u8]]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for f in frames {
        for &b in *f {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::fnv64;

    #[test]
    fn msg_framing_roundtrip() {
        let mut pipe: Vec<u8> = Vec::new();
        write_msg(&mut pipe, OP_SEND, b"hello").unwrap();
        let mut r = pipe.as_slice();
        let mut buf = Vec::new();
        assert_eq!(read_msg(&mut r, &mut buf).unwrap(), OP_SEND);
        assert_eq!(buf, b"hello");
        assert!(r.is_empty());
    }

    #[test]
    fn oversized_message_rejected() {
        let mut pipe: Vec<u8> = Vec::new();
        pipe.push(OP_SEND);
        pipe.extend_from_slice(&u32::MAX.to_le_bytes());
        let mut r = pipe.as_slice();
        let mut buf = Vec::new();
        assert!(read_msg(&mut r, &mut buf).is_err());
    }

    #[test]
    fn frames_fnv_matches_streaming_definition() {
        let a = b"abc".as_slice();
        let b = b"de".as_slice();
        assert_eq!(frames_fnv(&[a, b]), fnv64(b"abcde"));
    }
}
