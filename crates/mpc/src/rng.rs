//! Deterministic per-(machine, round, salt) random streams.
//!
//! Machine-local computation runs under rayon, so drawing from one shared
//! RNG would make results depend on the thread schedule. Instead, every
//! call site derives an independent ChaCha8 stream from
//! `(cluster seed, machine, round, salt)` with a SplitMix64-style mix, so
//! executions are bit-reproducible regardless of parallelism.

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

#[inline]
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// An independent RNG for machine `machine` at round `round`, distinguished
/// from other call sites in the same round by `salt`.
pub fn machine_rng(seed: u64, machine: usize, round: u64, salt: u64) -> ChaCha8Rng {
    let mixed = splitmix64(seed)
        ^ splitmix64(machine as u64 ^ 0xA5A5_A5A5_A5A5_A5A5)
        ^ splitmix64(round ^ 0x0F0F_0F0F_0F0F_0F0F)
        ^ splitmix64(salt ^ 0x3C3C_3C3C_3C3C_3C3C);
    ChaCha8Rng::seed_from_u64(mixed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::RngExt;

    fn first(seed: u64, machine: usize, round: u64, salt: u64) -> u64 {
        machine_rng(seed, machine, round, salt).random()
    }

    #[test]
    fn deterministic() {
        assert_eq!(first(1, 2, 3, 4), first(1, 2, 3, 4));
    }

    #[test]
    fn streams_differ_across_coordinates() {
        let base = first(1, 2, 3, 4);
        assert_ne!(base, first(2, 2, 3, 4), "seed must matter");
        assert_ne!(base, first(1, 3, 3, 4), "machine must matter");
        assert_ne!(base, first(1, 2, 4, 4), "round must matter");
        assert_ne!(base, first(1, 2, 3, 5), "salt must matter");
    }

    #[test]
    fn machines_are_pairwise_distinct_in_one_round() {
        let vals: Vec<u64> = (0..64).map(|i| first(7, i, 1, 0)).collect();
        let uniq: std::collections::HashSet<_> = vals.iter().collect();
        assert_eq!(uniq.len(), vals.len());
    }
}
