//! Pluggable cluster transports: how collective payloads physically move.
//!
//! [`crate::Cluster`] computes collective *semantics* (who sends what to
//! whom, what the ledger charges) identically everywhere; the transport
//! decides what happens to the bytes:
//!
//! * [`TransportKind::Sim`] — the direct in-memory path, bit-exact
//!   reference. Values move by ownership transfer; nothing is encoded.
//! * [`TransportKind::Loopback`] — same process, but every collective
//!   round-trips its payload through the byte-level wire format
//!   ([`crate::wire`]): encode into per-machine arena buffers, copy across
//!   a wire buffer, decode on the far side. The *decoded* values are what
//!   the algorithm continues with, so any encode/decode asymmetry changes
//!   answers loudly instead of silently. Arenas and the wire buffer are
//!   reused across rounds — steady-state rounds allocate nothing for
//!   framing.
//! * [`TransportKind::Process`] — `m` spawned worker processes carry the
//!   frames over OS pipes (see [`crate::process`]); workers tally their
//!   own sent/received bytes, which are cross-checked against the ledger
//!   at every round barrier.
//!
//! Selected by `KCENTER_TRANSPORT=sim|loopback|process` (default `sim`).
//!
//! ### Accounting invariant
//!
//! Per round and per machine, **accountable wire bytes equal the ledger's
//! charged words × 8** — by construction (slots are `weight × 8` bytes)
//! and by measurement ([`WireStats::rounds`] is populated from the actual
//! frames, 1:1 with ledger records, and the conformance suite compares
//! them). Frame headers are transport overhead, tracked separately in
//! [`WireStats::overhead_bytes`], never charged to the model.
//!
//! Self-traffic ships nothing: a machine's own `all_broadcast`
//! contribution, the central machine's own `gather`/`scatter` share, and
//! `exchange` self-boxes stay local, exactly as the ledger charges zero
//! for them.

use std::time::Instant;

use serde::{Deserialize, Serialize};

use crate::process::{frames_fnv, ProcessPool};
use crate::wire::{
    decode_frame, encode_frame, fnv64, FrameHeader, Wire, FRAME_HEADER_BYTES, WORD_BYTES,
};

/// Which transport a cluster runs on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TransportKind {
    /// Direct in-memory simulation (the reference).
    #[default]
    Sim,
    /// In-process byte-level wire round-trip.
    Loopback,
    /// Multi-process workers over pipes.
    Process,
}

impl TransportKind {
    /// Reads `KCENTER_TRANSPORT`; unset or empty means [`Self::Sim`].
    /// Unknown values panic — a typo must not silently fall back to the
    /// simulator when the caller asked for real wire traffic.
    pub fn from_env() -> Self {
        match std::env::var("KCENTER_TRANSPORT") {
            Err(_) => Self::Sim,
            Ok(v) => match v.as_str() {
                "" | "sim" => Self::Sim,
                "loopback" => Self::Loopback,
                "process" => Self::Process,
                other => panic!("KCENTER_TRANSPORT={other:?} is not one of sim|loopback|process"),
            },
        }
    }

    /// Stable lowercase name (matches the env-var vocabulary).
    pub fn name(self) -> &'static str {
        match self {
            Self::Sim => "sim",
            Self::Loopback => "loopback",
            Self::Process => "process",
        }
    }
}

/// Per-machine accountable wire bytes for one collective round.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ByteIo {
    /// Payload bytes sent (fan-out counted, like the ledger's words).
    pub sent: u64,
    /// Payload bytes received.
    pub received: u64,
}

/// One collective round's measured wire traffic; aligned 1:1 with
/// [`crate::Ledger::records`].
#[derive(Debug, Clone)]
pub struct WireRound {
    /// The collective's label (same string the ledger records).
    pub label: String,
    /// Accountable payload bytes per machine.
    pub per_machine: Vec<ByteIo>,
}

/// Cumulative transport measurements for one cluster.
#[derive(Debug)]
pub struct WireStats {
    /// Which backend produced these numbers.
    pub kind: TransportKind,
    /// Per-round rows, 1:1 with the ledger's records.
    pub rounds: Vec<WireRound>,
    /// Total accountable payload bytes (fan-out counted; equals
    /// `8 × total ledger words` when conformant).
    pub payload_bytes: u64,
    /// Frame headers and other framing bytes — transport overhead, never
    /// charged to the MPC model. Counted per logical delivery.
    pub overhead_bytes: u64,
    /// One-time setup-plane bytes ([`crate::Cluster::ship_shards`]);
    /// deliberately outside the ledger, which meters algorithm rounds.
    pub setup_bytes: u64,
    /// Frames encoded.
    pub frames: u64,
    /// Wall-clock spent encoding frames, in seconds.
    pub encode_s: f64,
    /// Wall-clock spent decoding frames, in seconds.
    pub decode_s: f64,
    /// Wall-clock spent moving bytes (memcpy or pipe IPC), in seconds.
    pub transit_s: f64,
    /// High-water mark of arena + wire buffer capacity, in bytes.
    pub arena_high_water: u64,
    /// Cross-check failures: echoed bytes differing from what was encoded,
    /// worker-measured byte counters disagreeing with the ledger × 8, or
    /// delivery fingerprints not matching. Always a transport bug; the
    /// acceptance bar is zero.
    pub conformance_violations: u64,
}

impl WireStats {
    fn new(kind: TransportKind) -> Self {
        Self {
            kind,
            rounds: Vec::new(),
            payload_bytes: 0,
            overhead_bytes: 0,
            setup_bytes: 0,
            frames: 0,
            encode_s: 0.0,
            decode_s: 0.0,
            transit_s: 0.0,
            arena_high_water: 0,
            conformance_violations: 0,
        }
    }

    /// Flattens into the serializable summary Telemetry carries.
    pub fn summary(&self) -> WireSummary {
        WireSummary {
            backend: self.kind.name().to_string(),
            rounds: self.rounds.len() as u64,
            payload_bytes: self.payload_bytes,
            overhead_bytes: self.overhead_bytes,
            setup_bytes: self.setup_bytes,
            frames: self.frames,
            encode_s: self.encode_s,
            decode_s: self.decode_s,
            transit_s: self.transit_s,
            arena_high_water_bytes: self.arena_high_water,
            conformance_violations: self.conformance_violations,
        }
    }
}

/// Serializable snapshot of [`WireStats`] (no per-round rows).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WireSummary {
    /// Backend name (`sim` clusters produce no summary at all).
    pub backend: String,
    /// Collective rounds the transport carried.
    pub rounds: u64,
    /// Accountable payload bytes (== 8 × ledger words when conformant).
    pub payload_bytes: u64,
    /// Framing overhead bytes.
    pub overhead_bytes: u64,
    /// Setup-plane (shard shipping) bytes.
    pub setup_bytes: u64,
    /// Frames encoded.
    pub frames: u64,
    /// Seconds encoding.
    pub encode_s: f64,
    /// Seconds decoding.
    pub decode_s: f64,
    /// Seconds in transit (memcpy / pipes).
    pub transit_s: f64,
    /// Arena + wire buffer capacity high-water mark.
    pub arena_high_water_bytes: u64,
    /// Cross-check failures (acceptance bar: zero).
    pub conformance_violations: u64,
}

/// Buffers and counters shared by the wire backends.
#[derive(Debug)]
pub(crate) struct WireState {
    /// Per-machine encode arenas, reused every round.
    arenas: Vec<Vec<u8>>,
    /// The "wire": bytes land here after transiting, decode reads from it.
    rx: Vec<u8>,
    /// Measurements.
    pub(crate) stats: WireStats,
}

impl WireState {
    fn new(kind: TransportKind, m: usize) -> Self {
        Self {
            arenas: vec![Vec::new(); m],
            rx: Vec::new(),
            stats: WireStats::new(kind),
        }
    }
}

/// The process backend's state: wire buffers plus the worker pool.
#[derive(Debug)]
pub(crate) struct ProcessTransport {
    pub(crate) state: WireState,
    pub(crate) pool: ProcessPool,
}

/// A cluster's transport backend.
#[derive(Debug)]
pub(crate) enum Backend {
    Sim,
    Loopback(Box<WireState>),
    Process(Box<ProcessTransport>),
}

impl Backend {
    pub(crate) fn new(kind: TransportKind, m: usize, seed: u64) -> Self {
        match kind {
            TransportKind::Sim => Self::Sim,
            TransportKind::Loopback => Self::Loopback(Box::new(WireState::new(kind, m))),
            TransportKind::Process => Self::Process(Box::new(ProcessTransport {
                state: WireState::new(kind, m),
                pool: ProcessPool::spawn(m, seed),
            })),
        }
    }

    pub(crate) fn kind(&self) -> TransportKind {
        match self {
            Self::Sim => TransportKind::Sim,
            Self::Loopback(_) => TransportKind::Loopback,
            Self::Process(_) => TransportKind::Process,
        }
    }

    pub(crate) fn is_wire(&self) -> bool {
        !matches!(self, Self::Sim)
    }

    pub(crate) fn wire_stats(&self) -> Option<&WireStats> {
        match self {
            Self::Sim => None,
            Self::Loopback(s) => Some(&s.stats),
            Self::Process(p) => Some(&p.state.stats),
        }
    }

    fn wire_parts(&mut self) -> Option<(&mut WireState, Option<&mut ProcessPool>)> {
        match self {
            Self::Sim => None,
            Self::Loopback(s) => Some((s, None)),
            Self::Process(p) => Some((&mut p.state, Some(&mut p.pool))),
        }
    }
}

/// Destination set of one frame.
#[derive(Debug, Clone, Copy)]
pub(crate) enum Dst {
    /// Every machine except the source (broadcast-shaped traffic).
    AllOthers,
    /// Exactly one machine (gather/scatter/exchange edges).
    One(usize),
}

impl Dst {
    fn fanout(self, m: usize) -> u64 {
        match self {
            Self::AllOthers => m as u64 - 1,
            Self::One(_) => 1,
        }
    }

    fn targets(self, src: usize, dst: usize) -> bool {
        match self {
            Self::AllOthers => dst != src,
            Self::One(d) => d == dst,
        }
    }
}

/// One logical message of a collective round: `src` ships `items` to
/// `dst`. Call sites only create messages with at least one destination
/// (self-traffic and `m == 1` cases never reach the wire).
pub(crate) struct WireMsg<'a, T> {
    pub(crate) src: usize,
    pub(crate) dst: Dst,
    pub(crate) items: &'a [T],
}

/// An encoded frame parked in its source arena, awaiting transit.
struct FrameRef {
    src: usize,
    dst: Dst,
    range: std::ops::Range<usize>,
    payload: u64,
}

/// Runs one collective round over the wire: encode every message into its
/// source arena, transit the frames (memcpy or worker pipes), decode from
/// the transited bytes. Returns the decoded payloads, one per message in
/// order — these are authoritative; callers continue with them, not with
/// the originals. Also appends the round's [`WireRound`] row (1:1 with the
/// ledger record the caller just committed).
pub(crate) fn wire_round<T: Wire>(
    backend: &mut Backend,
    m: usize,
    label: &str,
    weight: u64,
    msgs: &[WireMsg<'_, T>],
) -> Vec<Vec<T>> {
    let (state, pool) = backend.wire_parts().expect("wire_round on a sim backend");

    let t0 = Instant::now();
    for arena in &mut state.arenas {
        arena.clear();
    }
    state.rx.clear();
    let mut frames = Vec::with_capacity(msgs.len());
    for msg in msgs {
        let arena = &mut state.arenas[msg.src];
        let start = arena.len();
        let payload = encode_frame(label, msg.items, weight, arena);
        frames.push(FrameRef {
            src: msg.src,
            dst: msg.dst,
            range: start..arena.len(),
            payload,
        });
    }
    state.stats.encode_s += t0.elapsed().as_secs_f64();

    let rx_ranges = transit_and_record(state, pool, m, label, &frames);

    let t2 = Instant::now();
    let mut out = Vec::with_capacity(msgs.len());
    for (msg, range) in msgs.iter().zip(&rx_ranges) {
        let mut cursor = &state.rx[range.clone()];
        let decoded: Vec<T> = decode_frame(&mut cursor)
            .unwrap_or_else(|e| panic!("wire decode failed in `{label}`: {e}"));
        assert!(cursor.is_empty(), "trailing bytes after frame in `{label}`");
        assert_eq!(
            decoded.len(),
            msg.items.len(),
            "item count changed in transit in `{label}`"
        );
        out.push(decoded);
    }
    state.stats.decode_s += t2.elapsed().as_secs_f64();
    out
}

/// The payload-less variant for [`crate::Cluster::broadcast`]: the caller
/// declares `count` items of `weight` words from `src` to everyone else,
/// with no values attached. The wire backends ship a synthetic
/// deterministic pattern of exactly that size (integrity-checked, never
/// decoded) so broadcast rounds still move real bytes.
pub(crate) fn wire_round_synthetic(
    backend: &mut Backend,
    m: usize,
    label: &str,
    src: usize,
    count: u64,
    weight: u64,
) {
    let (state, pool) = backend.wire_parts().expect("wire_round on a sim backend");

    let t0 = Instant::now();
    for arena in &mut state.arenas {
        arena.clear();
    }
    state.rx.clear();
    let frames = if m > 1 {
        let payload = count * weight * WORD_BYTES as u64;
        let arena = &mut state.arenas[src];
        FrameHeader {
            items: count as u32,
            weight: weight as u32,
            payload_len: payload as u32,
        }
        .write(arena);
        let pattern = fnv64(label.as_bytes()).to_le_bytes();
        for i in 0..payload as usize {
            arena.push(pattern[i % pattern.len()]);
        }
        vec![FrameRef {
            src,
            dst: Dst::AllOthers,
            range: 0..arena.len(),
            payload,
        }]
    } else {
        Vec::new()
    };
    state.stats.encode_s += t0.elapsed().as_secs_f64();

    let rx_ranges = transit_and_record(state, pool, m, label, &frames);

    let t2 = Instant::now();
    for (frame, range) in frames.iter().zip(&rx_ranges) {
        let transited = &state.rx[range.clone()];
        assert_eq!(
            transited,
            &state.arenas[frame.src][frame.range.clone()],
            "synthetic broadcast bytes corrupted in transit in `{label}`"
        );
        let mut cursor = transited;
        FrameHeader::read(&mut cursor)
            .unwrap_or_else(|e| panic!("synthetic frame header in `{label}`: {e}"));
    }
    state.stats.decode_s += t2.elapsed().as_secs_f64();
}

/// Ships encoded frames, updates all counters, appends the round row.
/// Returns where each frame's transited bytes landed in the wire buffer.
fn transit_and_record(
    state: &mut WireState,
    pool: Option<&mut ProcessPool>,
    m: usize,
    label: &str,
    frames: &[FrameRef],
) -> Vec<std::ops::Range<usize>> {
    let mut io = vec![ByteIo::default(); m];
    let mut deliveries: u64 = 0;
    for f in frames {
        let fanout = f.dst.fanout(m);
        io[f.src].sent += f.payload * fanout;
        deliveries += fanout;
        for (dst, dio) in io.iter_mut().enumerate() {
            if f.dst.targets(f.src, dst) {
                dio.received += f.payload;
            }
        }
    }

    let t1 = Instant::now();
    let rx_ranges = match pool {
        None => {
            // Loopback: one physical copy per frame across the wire buffer
            // (the logical fan-out is accounting, not extra memcpy — same
            // as a real broadcast medium).
            let WireState { arenas, rx, .. } = state;
            frames
                .iter()
                .map(|f| {
                    let start = rx.len();
                    rx.extend_from_slice(&arenas[f.src][f.range.clone()]);
                    start..rx.len()
                })
                .collect()
        }
        Some(pool) => process_transit(state, pool, m, label, frames, &io),
    };
    state.stats.transit_s += t1.elapsed().as_secs_f64();

    let stats = &mut state.stats;
    stats.payload_bytes += io.iter().map(|b| b.sent).sum::<u64>();
    stats.overhead_bytes += FRAME_HEADER_BYTES as u64 * deliveries;
    stats.frames += frames.len() as u64;
    stats.rounds.push(WireRound {
        label: label.to_string(),
        per_machine: io,
    });
    let held = state
        .arenas
        .iter()
        .map(|a| a.capacity() as u64)
        .sum::<u64>()
        + state.rx.capacity() as u64;
    state.stats.arena_high_water = state.stats.arena_high_water.max(held);
    rx_ranges
}

/// The process backend's transit: every frame makes a send leg through its
/// source worker (the echoed bytes become authoritative) and a deliver leg
/// to each destination worker; worker-measured counters are cross-checked
/// against the coordinator's expected [`ByteIo`] rows.
fn process_transit(
    state: &mut WireState,
    pool: &mut ProcessPool,
    m: usize,
    label: &str,
    frames: &[FrameRef],
    expected: &[ByteIo],
) -> Vec<std::ops::Range<usize>> {
    let WireState { arenas, rx, stats } = state;
    let mut rx_ranges: Vec<std::ops::Range<usize>> = vec![0..0; frames.len()];

    // Send legs: every worker participates every round (lockstep), even
    // with zero frames to originate.
    for src in 0..m {
        let idxs: Vec<usize> = frames
            .iter()
            .enumerate()
            .filter(|(_, f)| f.src == src)
            .map(|(i, _)| i)
            .collect();
        let batch: Vec<(Vec<u32>, &[u8])> = idxs
            .iter()
            .map(|&i| {
                let f = &frames[i];
                let dsts: Vec<u32> = match f.dst {
                    Dst::AllOthers => (0..m).filter(|&j| j != src).map(|j| j as u32).collect(),
                    Dst::One(d) => vec![d as u32],
                };
                (dsts, &arenas[src][f.range.clone()])
            })
            .collect();
        let (ranges, worker_sent, echo_mismatches) = pool.send_leg(src, label, &batch, rx);
        stats.conformance_violations += echo_mismatches;
        if worker_sent != expected[src].sent {
            stats.conformance_violations += 1;
        }
        for (k, &i) in idxs.iter().enumerate() {
            rx_ranges[i] = ranges[k].clone();
        }
    }

    // Deliver legs: route each transited frame to its destinations.
    for (dst, exp) in expected.iter().enumerate() {
        let slices: Vec<&[u8]> = frames
            .iter()
            .enumerate()
            .filter(|(_, f)| f.dst.targets(f.src, dst))
            .map(|(i, _)| &rx[rx_ranges[i].clone()])
            .collect();
        let (worker_fnv, worker_sent, worker_received) = pool.deliver_leg(dst, label, &slices);
        if worker_fnv != frames_fnv(&slices) {
            stats.conformance_violations += 1;
        }
        if worker_sent != exp.sent || worker_received != exp.received {
            stats.conformance_violations += 1;
        }
    }
    rx_ranges
}

/// Setup-plane shard shipping (see [`crate::Cluster::ship_shards`]): the
/// frames move (and are validated) but the ledger is never touched, so
/// algorithm round/word counts stay identical across backends.
pub(crate) fn ship_setup<T: Wire>(
    backend: &mut Backend,
    label: &str,
    shards: &[Vec<T>],
    weight: u64,
) {
    let Some((state, pool)) = backend.wire_parts() else {
        return; // sim: shards are already "everywhere" — one address space
    };
    let t0 = Instant::now();
    for arena in &mut state.arenas {
        arena.clear();
    }
    state.rx.clear();
    let mut total_payload = 0u64;
    for (machine, shard) in shards.iter().enumerate() {
        let arena = &mut state.arenas[machine];
        total_payload += encode_frame(label, shard, weight, arena);
    }
    state.stats.encode_s += t0.elapsed().as_secs_f64();

    let t1 = Instant::now();
    match pool {
        None => {
            let WireState { arenas, rx, .. } = state;
            for arena in arenas.iter() {
                rx.extend_from_slice(arena);
            }
        }
        Some(pool) => {
            let WireState { arenas, rx, .. } = state;
            for (machine, arena) in arenas.iter().enumerate() {
                pool.ship_shard(machine, arena);
                rx.extend_from_slice(arena);
            }
        }
    }
    state.stats.transit_s += t1.elapsed().as_secs_f64();

    // Decode-validate the transited bytes shard by shard.
    let t2 = Instant::now();
    let mut cursor = state.rx.as_slice();
    for (machine, shard) in shards.iter().enumerate() {
        let decoded: Vec<T> = decode_frame(&mut cursor)
            .unwrap_or_else(|e| panic!("shard {machine} decode in `{label}`: {e}"));
        assert_eq!(
            decoded.len(),
            shard.len(),
            "shard {machine} item count changed in transit in `{label}`"
        );
    }
    state.stats.decode_s += t2.elapsed().as_secs_f64();

    let stats = &mut state.stats;
    stats.setup_bytes += total_payload;
    stats.overhead_bytes += FRAME_HEADER_BYTES as u64 * shards.len() as u64;
    stats.frames += shards.len() as u64;
}
