//! The byte-level wire format of the cluster transports.
//!
//! Collectives charge the [`crate::Ledger`] in **words** (8 bytes each, the
//! MPC model's unit); the wire format makes that charge literal. Every item
//! shipped by a collective occupies exactly `weight × 8` bytes on the wire —
//! a *slot*. Inside the slot sits the item's compact [`serde`] encoding,
//! zero-padded up to the slot size. Two consequences, both load-bearing:
//!
//! 1. **`wire bytes == 8 × charged words` by construction**, per machine
//!    and per round — the ledger becomes a checkable contract instead of a
//!    bookkeeping convention (the conformance suite re-derives both sides
//!    independently and compares).
//! 2. **Undercharging is a hard error.** If an item's compact encoding
//!    does not fit its slot, the collective charged fewer words than the
//!    data physically needs, and [`encode_slots`] panics — the class of
//!    bug fixed by hand in PR 1 (`all_reduce` result-leg undercharge) is
//!    now structurally impossible to reintroduce silently.
//!
//! A frame is one logical message (one source machine's payload for one
//! collective): a fixed 16-byte little-endian header — magic, item count,
//! weight, payload length — followed by `items × weight × 8` payload
//! bytes. Frames are written into per-machine arena buffers that are
//! reused across rounds, so steady-state rounds allocate nothing on the
//! encode side.

use serde::{DecodeError, Deserialize, Serialize};

/// Marker for types a collective can move: encodable and decodable with
/// the compact codec. Blanket-implemented; callers never implement it.
pub trait Wire: Serialize + for<'de> Deserialize<'de> {}

impl<T: Serialize + for<'de> Deserialize<'de>> Wire for T {}

/// Bytes per MPC word — the model's unit of account.
pub const WORD_BYTES: usize = 8;

/// `b"KCWF"` — k-center wire frame.
pub const FRAME_MAGIC: u32 = u32::from_le_bytes(*b"KCWF");

/// Length of the fixed frame header.
pub const FRAME_HEADER_BYTES: usize = 16;

/// Parsed frame header: `magic | items | weight | payload_len`, all
/// little-endian `u32`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrameHeader {
    /// Number of item slots in the payload.
    pub items: u32,
    /// Slot width in words; each slot is `weight * 8` bytes.
    pub weight: u32,
    /// Payload length in bytes (`items * weight * 8`).
    pub payload_len: u32,
}

impl FrameHeader {
    /// Appends the 16-byte header to `out`.
    pub fn write(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&FRAME_MAGIC.to_le_bytes());
        out.extend_from_slice(&self.items.to_le_bytes());
        out.extend_from_slice(&self.weight.to_le_bytes());
        out.extend_from_slice(&self.payload_len.to_le_bytes());
    }

    /// Parses and validates a header off the front of `input`.
    pub fn read(input: &mut &[u8]) -> Result<Self, WireError> {
        let magic = u32::from_bytes(input).map_err(WireError::Decode)?;
        if magic != FRAME_MAGIC {
            return Err(WireError::BadMagic(magic));
        }
        let items = u32::from_bytes(input).map_err(WireError::Decode)?;
        let weight = u32::from_bytes(input).map_err(WireError::Decode)?;
        let payload_len = u32::from_bytes(input).map_err(WireError::Decode)?;
        let expect = (items as u64) * (weight as u64) * WORD_BYTES as u64;
        if expect != payload_len as u64 {
            return Err(WireError::Inconsistent {
                items,
                weight,
                payload_len,
            });
        }
        Ok(Self {
            items,
            weight,
            payload_len,
        })
    }
}

/// Wire-level failure. Unlike ledger budget violations (data), these are
/// always bugs: the transports ship exactly what was encoded, so any
/// decode failure means a corrupted or mis-framed byte stream.
#[derive(Debug)]
pub enum WireError {
    /// Frame did not start with [`FRAME_MAGIC`].
    BadMagic(u32),
    /// Header fields disagree (`items * weight * 8 != payload_len`).
    Inconsistent {
        items: u32,
        weight: u32,
        payload_len: u32,
    },
    /// Item codec failure inside a slot.
    Decode(DecodeError),
    /// An item's compact encoding spilled past its zero padding.
    SlotOverrun {
        slot: usize,
        used: usize,
        cap: usize,
    },
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::BadMagic(m) => write!(f, "bad frame magic {m:#010x}"),
            Self::Inconsistent {
                items,
                weight,
                payload_len,
            } => write!(
                f,
                "inconsistent frame header: {items} items x {weight} words != {payload_len} bytes"
            ),
            Self::Decode(e) => write!(f, "slot decode: {e}"),
            Self::SlotOverrun { slot, used, cap } => {
                write!(f, "slot {slot} decoded {used} bytes, slot holds {cap}")
            }
        }
    }
}

impl std::error::Error for WireError {}

/// Encodes `items` into fixed `weight * 8`-byte slots appended to `out`.
///
/// # Panics
///
/// Panics if any item's compact encoding exceeds its slot — the ledger
/// charged `weight` words for an item that needs more. That is an
/// accounting bug at the call site (`label` names it), never valid data.
pub fn encode_slots<T: Wire>(label: &str, items: &[T], weight: u64, out: &mut Vec<u8>) {
    let slot = weight as usize * WORD_BYTES;
    for (idx, item) in items.iter().enumerate() {
        let start = out.len();
        item.to_bytes(out);
        let used = out.len() - start;
        assert!(
            used <= slot,
            "wire undercharge in `{label}`: item {idx} encodes to {used} bytes but the \
             ledger charged {weight} words ({slot} bytes) — raise the collective's weight"
        );
        out.resize(start + slot, 0);
    }
}

/// Decodes `count` items out of `weight * 8`-byte slots. Padding must be
/// zero-extendable garbage-free: each slot's codec must consume a prefix
/// and the remainder is ignored (it was written as zeros).
pub fn decode_slots<T: Wire>(bytes: &[u8], count: usize, weight: u64) -> Result<Vec<T>, WireError> {
    let slot = weight as usize * WORD_BYTES;
    if bytes.len() != count * slot {
        return Err(WireError::Inconsistent {
            items: count as u32,
            weight: weight as u32,
            payload_len: bytes.len() as u32,
        });
    }
    let mut out = Vec::with_capacity(count);
    for idx in 0..count {
        let chunk = &bytes[idx * slot..(idx + 1) * slot];
        let mut cursor = chunk;
        let v = T::from_bytes(&mut cursor).map_err(WireError::Decode)?;
        let used = slot - cursor.len();
        if used > slot {
            return Err(WireError::SlotOverrun {
                slot: idx,
                used,
                cap: slot,
            });
        }
        out.push(v);
    }
    Ok(out)
}

/// Encodes one full frame (header + slotted payload) for `items` into
/// `out`; returns the payload byte length (the wire-accountable part —
/// headers are transport overhead, tracked separately).
pub fn encode_frame<T: Wire>(label: &str, items: &[T], weight: u64, out: &mut Vec<u8>) -> u64 {
    let payload_len = items.len() as u64 * weight * WORD_BYTES as u64;
    FrameHeader {
        items: items.len() as u32,
        weight: weight as u32,
        payload_len: payload_len as u32,
    }
    .write(out);
    encode_slots(label, items, weight, out);
    payload_len
}

/// Decodes one full frame off the front of `input`, advancing it.
pub fn decode_frame<T: Wire>(input: &mut &[u8]) -> Result<Vec<T>, WireError> {
    let header = FrameHeader::read(input)?;
    let payload = serde::take(input, header.payload_len as usize).map_err(WireError::Decode)?;
    decode_slots(payload, header.items as usize, header.weight as u64)
}

/// FNV-1a over a byte slice — the integrity fingerprint the process
/// transport's delivery acknowledgements carry.
pub fn fnv64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slots_roundtrip_with_padding() {
        let items: Vec<u32> = vec![1, 2, 0xFFFF_FFFF];
        let mut buf = Vec::new();
        encode_slots("t", &items, 2, &mut buf); // 4 used of 16 per slot
        assert_eq!(buf.len(), 3 * 16);
        assert_eq!(decode_slots::<u32>(&buf, 3, 2).unwrap(), items);
    }

    #[test]
    fn exact_fit_slots_roundtrip() {
        let items: Vec<(u64, f64)> = vec![(7, 2.5), (u64::MAX, f64::NEG_INFINITY)];
        let mut buf = Vec::new();
        encode_slots("t", &items, 2, &mut buf); // 16 of 16 — no padding
        assert_eq!(buf.len(), 2 * 16);
        let back = decode_slots::<(u64, f64)>(&buf, 2, 2).unwrap();
        assert_eq!(back, items);
    }

    #[test]
    #[should_panic(expected = "wire undercharge in `cheap`")]
    fn undercharged_weight_panics() {
        // A (u64, f64) item is 16 bytes; weight 1 gives it an 8-byte slot.
        let mut buf = Vec::new();
        encode_slots("cheap", &[(1u64, 2.0f64)], 1, &mut buf);
    }

    #[test]
    fn frame_roundtrip_and_header_checks() {
        let items: Vec<f64> = vec![1.5, -0.0, f64::NAN];
        let mut buf = Vec::new();
        let payload = encode_frame("t", &items, 1, &mut buf);
        assert_eq!(payload, 24);
        assert_eq!(buf.len(), FRAME_HEADER_BYTES + 24);
        let mut cursor = buf.as_slice();
        let back = decode_frame::<f64>(&mut cursor).unwrap();
        assert!(cursor.is_empty());
        assert_eq!(back.len(), 3);
        assert_eq!(back[0].to_bits(), 1.5f64.to_bits());
        assert_eq!(back[1].to_bits(), (-0.0f64).to_bits());
        assert_eq!(back[2].to_bits(), f64::NAN.to_bits());
    }

    #[test]
    fn corrupt_magic_rejected() {
        let mut buf = Vec::new();
        encode_frame("t", &[1u32], 1, &mut buf);
        buf[0] ^= 0xFF;
        let mut cursor = buf.as_slice();
        assert!(matches!(
            decode_frame::<u32>(&mut cursor),
            Err(WireError::BadMagic(_))
        ));
    }

    #[test]
    fn inconsistent_header_rejected() {
        let mut buf = Vec::new();
        encode_frame("t", &[1u32, 2], 1, &mut buf);
        // Lie about the item count without touching the payload length.
        buf[4..8].copy_from_slice(&9u32.to_le_bytes());
        let mut cursor = buf.as_slice();
        assert!(matches!(
            decode_frame::<u32>(&mut cursor),
            Err(WireError::Inconsistent { .. })
        ));
    }

    #[test]
    fn empty_frame_roundtrips() {
        let mut buf = Vec::new();
        assert_eq!(encode_frame::<u32>("t", &[], 3, &mut buf), 0);
        let mut cursor = buf.as_slice();
        assert_eq!(decode_frame::<u32>(&mut cursor).unwrap(), Vec::<u32>::new());
    }
}
