//! Property-based tests of the simulator's collectives: conservation of
//! words, correctness of data movement, and round accounting — for
//! arbitrary cluster sizes and payload shapes.

use mpc_sim::{Cluster, Partition};
use proptest::prelude::*;

fn arb_contributions() -> impl Strategy<Value = Vec<Vec<u32>>> {
    (1usize..8)
        .prop_flat_map(|m| prop::collection::vec(prop::collection::vec(any::<u32>(), 0..20), m..=m))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// all_broadcast delivers the exact multiset union in machine order,
    /// and the ledger conserves words: what everyone received equals what
    /// was sent divided by the fan-out.
    #[test]
    fn all_broadcast_union_and_conservation(contribs in arb_contributions(), weight in 1u64..8) {
        let m = contribs.len();
        let mut c = Cluster::new(m, 0);
        let expect: Vec<u32> = contribs.iter().flatten().copied().collect();
        let total_items: u64 = contribs.iter().map(|v| v.len() as u64).sum();
        let got = c.all_broadcast("t", contribs, weight);
        prop_assert_eq!(got, expect);
        prop_assert_eq!(c.rounds(), 1);
        let rec = &c.ledger().records()[0];
        let sent: u64 = rec.per_machine.iter().map(|io| io.sent).sum();
        let received: u64 = rec.per_machine.iter().map(|io| io.received).sum();
        prop_assert_eq!(sent, total_items * weight * (m as u64 - 1));
        prop_assert_eq!(received, total_items * weight * (m as u64 - 1));
    }

    /// gather: machine 0 receives everything; senders are only charged for
    /// what they contributed.
    #[test]
    fn gather_conservation(contribs in arb_contributions(), weight in 1u64..8) {
        let m = contribs.len();
        let mut c = Cluster::new(m, 0);
        let expect: Vec<u32> = contribs.iter().flatten().copied().collect();
        let own = contribs[0].len() as u64;
        let total: u64 = contribs.iter().map(|v| v.len() as u64).sum();
        let got = c.gather("t", contribs, weight);
        prop_assert_eq!(got, expect);
        let rec = &c.ledger().records()[0];
        prop_assert_eq!(rec.per_machine[0].received, (total - own) * weight);
        prop_assert_eq!(rec.per_machine[0].sent, 0);
        let sent: u64 = rec.per_machine.iter().map(|io| io.sent).sum();
        prop_assert_eq!(sent, (total - own) * weight);
    }

    /// exchange is an exact transpose, and sent == received globally.
    #[test]
    fn exchange_transpose_and_conservation(
        m in 1usize..6,
        seed in any::<u64>(),
        weight in 1u64..5,
    ) {
        // Deterministic payload derived from (src, dst).
        let msgs: Vec<Vec<Vec<u64>>> = (0..m)
            .map(|s| (0..m).map(|d| {
                let len = ((seed ^ (s as u64) << 8 ^ d as u64) % 5) as usize;
                vec![(s * 100 + d) as u64; len]
            }).collect())
            .collect();
        let expected: Vec<Vec<Vec<u64>>> = (0..m)
            .map(|d| (0..m).map(|s| msgs[s][d].clone()).collect())
            .collect();
        let mut c = Cluster::new(m, 0);
        let inbox = c.exchange("t", msgs, weight);
        prop_assert_eq!(inbox, expected);
        let rec = &c.ledger().records()[0];
        let sent: u64 = rec.per_machine.iter().map(|io| io.sent).sum();
        let received: u64 = rec.per_machine.iter().map(|io| io.received).sum();
        prop_assert_eq!(sent, received);
    }

    /// Every partition constructor covers each item exactly once.
    #[test]
    fn partitions_are_total(n in 0usize..300, m in 1usize..10, seed in any::<u64>()) {
        for p in [
            Partition::round_robin(n, m),
            Partition::contiguous(n, m),
            Partition::random(n, m, seed),
            Partition::skewed(n, m, 1.5, seed),
        ] {
            let mut seen = vec![false; n];
            for mach in 0..m {
                for &it in p.items(mach) {
                    prop_assert!(!std::mem::replace(&mut seen[it as usize], true));
                    prop_assert_eq!(p.owner(it), mach);
                }
            }
            prop_assert!(seen.into_iter().all(|s| s));
            prop_assert_eq!(p.n(), n);
            prop_assert_eq!(p.m(), m);
        }
    }

    /// reduce agrees with a sequential fold for arbitrary inputs.
    #[test]
    fn reduce_matches_sequential(values in prop::collection::vec(any::<i64>(), 1..9)) {
        let m = values.len();
        let mut c = Cluster::new(m, 0);
        let expect = values.iter().copied().fold(i64::MIN, i64::max);
        let got = c.reduce("t", values, 1, i64::max);
        prop_assert_eq!(got, expect);
    }
}
