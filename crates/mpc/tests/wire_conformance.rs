//! Wire-conformance properties for the byte-level transport backends.
//!
//! The contract under test: for every collective, on every wire backend,
//! the payload bytes a machine physically moves in a round equal exactly
//! `8 ×` the words the ledger charges that machine in that round — the
//! ledger is not an estimate of the wire, it *is* the wire, in words.
//! And because decoded frames are what the algorithms keep computing
//! with, loopback must reproduce the `sim` values bit-for-bit.

use mpc_sim::{Cluster, TransportKind};
use proptest::prelude::*;

fn arb_contributions() -> impl Strategy<Value = Vec<Vec<u32>>> {
    (1usize..7)
        .prop_flat_map(|m| prop::collection::vec(prop::collection::vec(any::<u32>(), 0..16), m..=m))
}

/// Drives one instance of every collective and returns everything the
/// caller can observe, so sim/loopback runs can be compared wholesale.
fn drive_all(c: &mut Cluster, contribs: &[Vec<u32>], weight: u64) -> Vec<Vec<u32>> {
    let m = c.m();
    let mut observed: Vec<Vec<u32>> = Vec::new();
    observed.push(c.all_broadcast("t/all_broadcast", contribs.to_vec(), weight));
    observed.push(c.gather("t/gather", contribs.to_vec(), weight));
    c.broadcast("t/broadcast", contribs[0].len(), weight);
    let shares: Vec<Vec<u32>> = (0..m)
        .map(|dst| contribs[dst % contribs.len()].clone())
        .collect();
    for part in c.scatter("t/scatter", shares, weight) {
        observed.push(part);
    }
    let outboxes: Vec<Vec<Vec<u32>>> = (0..m)
        .map(|src| {
            (0..m)
                .map(|dst| {
                    contribs[(src + dst) % contribs.len()]
                        .iter()
                        .map(|&v| v.wrapping_add((src * m + dst) as u32))
                        .collect()
                })
                .collect()
        })
        .collect();
    for inbox in c.exchange("t/exchange", outboxes, weight) {
        for slot in inbox {
            observed.push(slot);
        }
    }
    let sums: Vec<u32> = contribs
        .iter()
        .map(|v| v.iter().fold(0u32, |a, &b| a.wrapping_add(b)))
        .collect();
    observed.push(vec![
        c.reduce("t/reduce", sums.clone(), 1, |a, b| a.wrapping_add(b))
    ]);
    observed.push(vec![
        c.all_reduce("t/all_reduce", sums, 1, |a, b| a.wrapping_add(b))
    ]);
    observed
}

/// Asserts the conformance identity on a wire-backed cluster: wire rounds
/// align 1:1 with ledger records and every machine's bytes are exactly
/// `8 ×` its charged words, with zero recorded violations.
fn assert_wire_matches_ledger(c: &Cluster) {
    let stats = c.wire_stats().expect("wire backend keeps stats");
    assert_eq!(stats.conformance_violations, 0, "conformance violations");
    let records = c.ledger().records();
    assert_eq!(
        stats.rounds.len(),
        records.len(),
        "wire rounds align 1:1 with ledger records"
    );
    for (wr, rec) in stats.rounds.iter().zip(records) {
        assert_eq!(wr.label, rec.label, "round labels align");
        assert_eq!(wr.per_machine.len(), rec.per_machine.len());
        for (mach, (bio, mio)) in wr.per_machine.iter().zip(&rec.per_machine).enumerate() {
            assert_eq!(
                bio.sent,
                mio.sent * 8,
                "machine {mach} sent bytes == 8 x words in `{}`",
                rec.label
            );
            assert_eq!(
                bio.received,
                mio.received * 8,
                "machine {mach} received bytes == 8 x words in `{}`",
                rec.label
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every collective on the loopback backend: decoded values and the
    /// ledger are identical to sim, and bytes == 8 × words per machine per
    /// round.
    #[test]
    fn loopback_is_conformant_and_value_identical(
        contribs in arb_contributions(),
        weight in 1u64..6,
        seed in any::<u64>(),
    ) {
        let m = contribs.len();
        let mut sim = Cluster::with_transport(m, seed, TransportKind::Sim);
        let mut loop_ = Cluster::with_transport(m, seed, TransportKind::Loopback);
        let sim_vals = drive_all(&mut sim, &contribs, weight);
        let loop_vals = drive_all(&mut loop_, &contribs, weight);
        prop_assert_eq!(sim_vals, loop_vals);
        loop_.ledger().assert_identical(sim.ledger(), "loopback vs sim");
        assert_wire_matches_ledger(&loop_);
    }

    /// Setup-plane shard shipping moves bytes but never touches the
    /// ledger, at any shard shape.
    #[test]
    fn ship_shards_stays_off_ledger(contribs in arb_contributions()) {
        let m = contribs.len();
        let mut c = Cluster::with_transport(m, 7, TransportKind::Loopback);
        c.ship_shards("setup/shards", &contribs, 1);
        prop_assert_eq!(c.rounds(), 0);
        let stats = c.wire_stats().unwrap();
        let total: u64 = contribs.iter().map(|v| v.len() as u64).sum();
        prop_assert_eq!(stats.setup_bytes, total * 8);
        prop_assert_eq!(stats.payload_bytes, 0);
        prop_assert_eq!(stats.conformance_violations, 0);
    }
}

/// A payload whose compact encoding exceeds its charged slot must abort
/// loudly on a wire backend — silent undercharging would let the ledger
/// drift below the bytes a real deployment moves.
#[test]
#[should_panic(expected = "wire undercharge")]
fn undercharged_weight_panics_on_wire() {
    let mut c = Cluster::with_transport(2, 0, TransportKind::Loopback);
    // A 3-element Vec<u64> item encodes to 4 words (length prefix + data)
    // but is charged only 3 here.
    let vals: Vec<Vec<Vec<u64>>> = vec![vec![vec![1, 2, 3]], vec![vec![4, 5, 6]]];
    c.all_broadcast("t/undercharged", vals, 3);
}

/// The sim backend keeps no wire stats at all — zero-overhead reference.
#[test]
fn sim_has_no_wire_state() {
    let mut c = Cluster::with_transport(3, 0, TransportKind::Sim);
    let _ = c.all_broadcast("t", vec![vec![1u32], vec![2], vec![3]], 1);
    assert!(c.wire_stats().is_none());
    assert!(c.wire_summary().is_none());
}
